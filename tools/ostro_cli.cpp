// ostro — command-line front end for the placement engine.
//
// Usage:
//   ostro place    --datacenter dc.json --template app.json
//                  [--occupancy occ.json] [--algorithm eg|egc|egbw|ba|dba]
//                  [--deadline SECONDS] [--theta-bw X --theta-c Y]
//                  [--out placement.json] [--annotated annotated.json]
//                  [--commit-out occ2.json] [--service-threads N]
//   ostro serve    --datacenter dc.json [--occupancy occ.json]
//                  [--in FIFO|-] [--results FILE|-]
//                  [--stream-queue-capacity N] [--stream-batch K]
//                  [--stream-dispatch-threads D]
//   ostro validate --datacenter dc.json --template app.json
//                  --placement placement.json [--occupancy occ.json]
//   ostro report   --datacenter dc.json [--occupancy occ.json]
//
// All files are JSON: the data-center grammar lives in
// src/datacenter/dc_io.h, the QoS-enhanced Heat template grammar in
// src/openstack/heat_template.h, placements in src/core/placement_io.h.
// `serve` is the daemon mode: newline-delimited JSON placement requests on
// stdin (or a FIFO), NDJSON results out — see cmd_serve below.
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "core/placement_io.h"
#include "core/scheduler.h"
#include "core/service.h"
#include "core/shard_router.h"
#include "core/stream.h"
#include "core/verify.h"
#include "datacenter/dc_io.h"
#include "datacenter/dot.h"
#include "datacenter/report.h"
#include "net/reservation.h"
#include "openstack/heat_template.h"
#include "util/args.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace {

using namespace ostro;

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot write " + path);
  file << content << '\n';
}

dc::Occupancy load_occupancy(const dc::DataCenter& datacenter,
                             const std::string& path) {
  if (path.empty()) return dc::Occupancy(datacenter);
  return dc::occupancy_from_text(datacenter, read_file(path));
}

[[nodiscard]] bool parse_on_off(const std::string& value, const char* flag) {
  if (value == "on") return true;
  if (value == "off") return false;
  throw std::invalid_argument(std::string("--") + flag +
                              " must be on|off, got " + value);
}

/// --service-threads N: places N copies of the stack concurrently through
/// core::PlacementService — a smoke/demo mode for the optimistic
/// snapshot/plan/validate-commit protocol.  Reports per-request outcomes
/// plus the conflict/retry totals; --commit-out captures the occupancy
/// after every committed stack.
int cmd_place_service(util::ArgParser& args, int threads) {
  const auto datacenter =
      dc::datacenter_from_text(read_file(args.get_string("datacenter")));
  const auto occupancy =
      load_occupancy(datacenter, args.get_string("occupancy"));
  const auto parsed =
      os::HeatTemplate::parse_text(read_file(args.get_string("template")));

  core::SearchConfig config;
  config.theta_bw = args.get_double("theta-bw");
  config.theta_c = args.get_double("theta-c");
  config.deadline_seconds = args.get_double("deadline");
  config.budget_mode = core::parse_budget_mode(args.get_string("budget"));
  config.search_core = core::parse_search_core(args.get_string("search-core"));
  config.use_prune_labels =
      parse_on_off(args.get_string("use-prune-labels"), "use-prune-labels");
  const auto algorithm = core::parse_algorithm(args.get_string("algorithm"));

  core::OstroScheduler scheduler(datacenter, config);
  scheduler.occupancy() = occupancy;
  core::PlacementService service(scheduler);

  std::vector<core::ServiceResult> results(
      static_cast<std::size_t>(threads));
  // run_workers (not bare std::thread): a place() exception propagates to
  // main's handler after every worker joined instead of std::terminate.
  util::run_workers(static_cast<std::size_t>(threads), [&](std::size_t t) {
    results[t] = service.place(parsed.topology, algorithm, config);
  });

  int committed = 0;
  std::uint32_t conflicts = 0, retries = 0;
  for (int t = 0; t < threads; ++t) {
    const core::ServiceResult& result =
        results[static_cast<std::size_t>(t)];
    conflicts += result.conflicts;
    retries += result.retries;
    if (result.placement.committed) {
      ++committed;
    } else {
      std::cerr << "request " << t
                << " not committed: " << result.placement.failure_reason
                << "\n";
    }
  }
  std::cout << "service placed " << committed << "/" << threads
            << " concurrent stacks with " << core::to_string(algorithm)
            << ": " << conflicts << " commit conflicts, " << retries
            << " replans\n";
  if (!args.get_string("commit-out").empty()) {
    write_file(args.get_string("commit-out"),
               dc::occupancy_to_json(scheduler.occupancy()).pretty());
  }
  return committed > 0 ? 0 : 2;
}

/// `place --shards N --service-threads T` — the sharded front end.  Routes
/// T concurrent copies of the stack through a core::ShardRouter over an
/// N-shard partition of the cluster; reports committed/cross-shard counts
/// and, with --commit-out, the stitched global occupancy.  Sharded mode
/// always starts from an idle cluster: shard occupancies are internal, so a
/// pre-loaded --occupancy snapshot cannot be decomposed onto them.
int cmd_place_shards(util::ArgParser& args, int threads,
                     std::uint32_t shards) {
  if (!args.get_string("occupancy").empty()) {
    throw std::runtime_error(
        "--shards > 1 starts from an idle cluster and cannot load an "
        "--occupancy snapshot");
  }
  const auto datacenter =
      dc::datacenter_from_text(read_file(args.get_string("datacenter")));
  const auto parsed =
      os::HeatTemplate::parse_text(read_file(args.get_string("template")));
  const auto topology =
      std::make_shared<const topo::AppTopology>(parsed.topology);

  core::SearchConfig config;
  config.theta_bw = args.get_double("theta-bw");
  config.theta_c = args.get_double("theta-c");
  config.deadline_seconds = args.get_double("deadline");
  config.budget_mode = core::parse_budget_mode(args.get_string("budget"));
  config.search_core = core::parse_search_core(args.get_string("search-core"));
  config.use_prune_labels =
      parse_on_off(args.get_string("use-prune-labels"), "use-prune-labels");
  const auto algorithm = core::parse_algorithm(args.get_string("algorithm"));

  core::ShardConfig shard_config;
  shard_config.shards = shards;
  core::ShardRouter router(datacenter, shard_config, config);

  std::vector<core::ShardRouter::Result> results(
      static_cast<std::size_t>(threads));
  util::run_workers(static_cast<std::size_t>(threads), [&](std::size_t t) {
    results[t] = router.place(topology, algorithm, config);
  });

  int committed = 0;
  int cross_shard = 0;
  std::uint32_t conflicts = 0, retries = 0;
  for (int t = 0; t < threads; ++t) {
    const core::ShardRouter::Result& result =
        results[static_cast<std::size_t>(t)];
    conflicts += result.service.conflicts;
    retries += result.service.retries;
    if (result.service.placement.committed) {
      ++committed;
      if (result.cross_shard) ++cross_shard;
    } else {
      std::cerr << "request " << t << " not committed: "
                << result.service.placement.failure_reason << "\n";
    }
  }
  std::cout << "router placed " << committed << "/" << threads
            << " concurrent stacks across " << shards << " shards with "
            << core::to_string(algorithm) << ": " << cross_shard
            << " cross-shard, " << conflicts << " commit conflicts, "
            << retries << " replans\n";
  if (!args.get_string("commit-out").empty()) {
    write_file(args.get_string("commit-out"),
               dc::occupancy_to_json(router.stitched_snapshot()).pretty());
  }
  return committed > 0 ? 0 : 2;
}

int cmd_place(util::ArgParser& args) {
  const int service_threads =
      static_cast<int>(args.get_int("service-threads"));
  // Reject negatives instead of silently falling through to the serial
  // path: "--service-threads -2" is a mistake, not a mode selection.
  if (service_threads < 0) {
    throw std::invalid_argument("--service-threads must be >= 0, got " +
                                std::to_string(service_threads));
  }
  const std::int64_t shards = args.get_int("shards");
  if (shards < 1) {
    throw std::invalid_argument("--shards must be >= 1, got " +
                                std::to_string(shards));
  }
  if (shards > 1) {
    if (service_threads == 0) {
      throw std::invalid_argument(
          "--shards > 1 requires --service-threads > 0 (the sharded front "
          "end is a concurrent-service mode)");
    }
    return cmd_place_shards(args, service_threads,
                            static_cast<std::uint32_t>(shards));
  }
  if (service_threads > 0) return cmd_place_service(args, service_threads);
  const auto datacenter =
      dc::datacenter_from_text(read_file(args.get_string("datacenter")));
  const auto occupancy =
      load_occupancy(datacenter, args.get_string("occupancy"));
  const auto parsed =
      os::HeatTemplate::parse_text(read_file(args.get_string("template")));

  core::SearchConfig config;
  config.theta_bw = args.get_double("theta-bw");
  config.theta_c = args.get_double("theta-c");
  config.deadline_seconds = args.get_double("deadline");
  config.budget_mode = core::parse_budget_mode(args.get_string("budget"));
  config.search_core = core::parse_search_core(args.get_string("search-core"));
  config.use_prune_labels =
      parse_on_off(args.get_string("use-prune-labels"), "use-prune-labels");
  const auto algorithm = core::parse_algorithm(args.get_string("algorithm"));

  const core::Placement placement = core::place_topology(
      occupancy, parsed.topology, algorithm, config, nullptr, nullptr);
  if (!placement.feasible) {
    std::cerr << "no feasible placement: " << placement.failure_reason
              << "\n";
    return 2;
  }
  std::cout << "placed " << parsed.topology.node_count() << " nodes with "
            << core::to_string(algorithm) << ": utility "
            << placement.utility << ", "
            << placement.reserved_bandwidth_mbps << " Mbps reserved, "
            << placement.new_active_hosts << " newly active hosts"
            << (placement.bandwidth_overcommitted
                    ? " (WARNING: overcommits link bandwidth)"
                    : "")
            << "\n";
  if (config.budget_mode == core::BudgetMode::kAuto &&
      (algorithm == core::Algorithm::kBaStar ||
       algorithm == core::Algorithm::kDbaStar)) {
    std::cout << "search budget: " << placement.stats.effective_max_open_paths
              << " open paths (beam " << placement.stats.effective_beam_width
              << ") after " << placement.stats.budget_retries
              << " widened retries\n";
  }
  const std::string placement_text =
      core::placement_to_text(placement, parsed.topology, datacenter);
  if (args.get_string("out").empty()) {
    std::cout << placement_text << "\n";
  } else {
    write_file(args.get_string("out"), placement_text);
  }
  if (!args.get_string("annotated").empty()) {
    const auto document =
        util::Json::parse(read_file(args.get_string("template")));
    write_file(args.get_string("annotated"),
               os::annotate_with_placement(document, parsed,
                                           placement.assignment, datacenter)
                   .pretty());
  }
  if (!args.get_string("dot").empty()) {
    write_file(args.get_string("dot"),
               dc::placement_to_dot(parsed.topology, placement.assignment,
                                    datacenter));
  }
  if (!args.get_string("commit-out").empty()) {
    if (placement.bandwidth_overcommitted) {
      std::cerr << "refusing to commit an overcommitted placement\n";
      return 2;
    }
    dc::Occupancy committed = occupancy;
    net::commit_placement(committed, parsed.topology, placement.assignment);
    write_file(args.get_string("commit-out"),
               dc::occupancy_to_json(committed).pretty());
  }
  return 0;
}

/// `ostro serve` — the long-running daemon mode.  Reads newline-delimited
/// JSON placement requests from --in (a path, typically a FIFO; "-" =
/// stdin) and writes one NDJSON result line per request to --results in
/// submission order.  Request grammar:
///
///   {"id": "r1", "template": "stack.json"}            // path form
///   {"id": "r2", "stack": { ...heat template... },    // inline form
///    "algorithm": "dba", "priority": "high", "deadline": 0.25}
///
/// "algorithm" defaults to --algorithm, "priority" (low|normal|high) to
/// normal, "deadline" is the per-request ADMISSION deadline in seconds
/// (how long the request may wait queued; --deadline stays the DBA*
/// search deadline).  A line reading "quit" (or EOF) ends the session;
/// queued requests still drain before exit.
int cmd_serve(util::ArgParser& args) {
  const auto datacenter =
      dc::datacenter_from_text(read_file(args.get_string("datacenter")));
  const auto occupancy =
      load_occupancy(datacenter, args.get_string("occupancy"));

  core::SearchConfig config;
  config.theta_bw = args.get_double("theta-bw");
  config.theta_c = args.get_double("theta-c");
  config.deadline_seconds = args.get_double("deadline");
  config.budget_mode = core::parse_budget_mode(args.get_string("budget"));
  config.search_core = core::parse_search_core(args.get_string("search-core"));
  config.use_prune_labels =
      parse_on_off(args.get_string("use-prune-labels"), "use-prune-labels");
  const auto default_algorithm =
      core::parse_algorithm(args.get_string("algorithm"));

  // Negative or zero stream knobs are argument errors, not silent modes
  // (the --service-threads lesson applied to the new flags).
  const auto stream_knob = [&](const char* name) {
    const std::int64_t value = args.get_int(name);
    if (value <= 0) {
      throw std::invalid_argument(std::string("--") + name +
                                  " must be >= 1, got " +
                                  std::to_string(value));
    }
    return static_cast<std::size_t>(value);
  };
  config.stream_queue_capacity = stream_knob("stream-queue-capacity");
  config.stream_max_batch = stream_knob("stream-batch");
  config.stream_dispatch_threads = stream_knob("stream-dispatch-threads");

  core::OstroScheduler scheduler(datacenter, config);
  scheduler.occupancy() = occupancy;
  core::PlacementService service(scheduler);
  core::StreamingService stream(service, config);

  std::ifstream in_file;
  std::istream* in = &std::cin;
  if (args.get_string("in") != "-") {
    in_file.open(args.get_string("in"));
    if (!in_file) {
      throw std::runtime_error("cannot open " + args.get_string("in"));
    }
    in = &in_file;
  }
  std::ofstream out_file;
  std::ostream* out = &std::cout;
  if (args.get_string("results") != "-") {
    out_file.open(args.get_string("results"));
    if (!out_file) {
      throw std::runtime_error("cannot write " + args.get_string("results"));
    }
    out = &out_file;
  }

  // The reader (this thread) submits requests; the writer thread resolves
  // futures in submission order and streams result lines out, so results
  // flow back while stdin is still open.
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::pair<std::string, std::future<core::StreamResult>>>
      inflight;
  bool input_done = false;
  struct Tally {
    std::uint64_t committed = 0, failed = 0, expired = 0, rejected = 0,
                  errors = 0;
  } tally;

  std::thread writer([&] {
    for (;;) {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return !inflight.empty() || input_done; });
      if (inflight.empty()) return;
      auto item = std::move(inflight.front());
      inflight.pop_front();
      lock.unlock();

      util::JsonObject response;
      response["id"] = item.first;
      try {
        const core::StreamResult result = item.second.get();
        response["status"] = core::to_string(result.status);
        response["wait_seconds"] = result.wait_seconds;
        response["batch_size"] = static_cast<int>(result.batch_size);
        response["spills"] = static_cast<int>(result.spills);
        response["conflicts"] =
            static_cast<int>(result.service.conflicts);
        response["retries"] = static_cast<int>(result.service.retries);
        const core::Placement& placement = result.service.placement;
        if (result.status == core::StreamStatus::kCommitted) {
          response["utility"] = placement.utility;
          response["reserved_bandwidth_mbps"] =
              placement.reserved_bandwidth_mbps;
          response["new_active_hosts"] = placement.new_active_hosts;
          response["commit_epoch"] =
              static_cast<std::int64_t>(result.service.commit_epoch);
          ++tally.committed;
        } else {
          if (!placement.failure_reason.empty()) {
            response["failure"] = placement.failure_reason;
          }
          switch (result.status) {
            case core::StreamStatus::kFailed: ++tally.failed; break;
            case core::StreamStatus::kExpired: ++tally.expired; break;
            case core::StreamStatus::kRejected: ++tally.rejected; break;
            case core::StreamStatus::kCommitted: break;
          }
        }
      } catch (const std::exception& e) {
        response["status"] = "error";
        response["failure"] = e.what();
        ++tally.errors;
      }
      (*out) << util::Json(std::move(response)).dump() << '\n'
             << std::flush;
    }
  });

  std::string line;
  std::uint64_t next_id = 0;
  while (std::getline(*in, line)) {
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    if (trimmed == "quit" || trimmed == "exit") break;

    std::string id = "req-" + std::to_string(next_id);
    std::future<core::StreamResult> future;
    try {
      const util::Json doc = util::Json::parse(trimmed);
      id = doc.string_or("id", id);
      os::HeatTemplate parsed;
      if (doc.contains("stack")) {
        parsed = os::HeatTemplate::parse(doc.at("stack"));
      } else if (doc.contains("template")) {
        parsed =
            os::HeatTemplate::parse_text(read_file(doc.at("template").as_string()));
      } else {
        throw std::runtime_error(
            "request needs \"template\" (path) or \"stack\" (inline)");
      }
      core::StreamRequest request;
      request.topology = parsed.topology;
      request.algorithm = doc.contains("algorithm")
                              ? core::parse_algorithm(
                                    doc.at("algorithm").as_string())
                              : default_algorithm;
      request.priority =
          core::parse_stream_priority(doc.string_or("priority", "normal"));
      request.deadline_seconds = doc.number_or("deadline", 0.0);
      future = stream.submit(std::move(request));
    } catch (const std::exception& e) {
      // A malformed request fails that request, not the daemon.
      std::promise<core::StreamResult> bad;
      core::StreamResult result;
      result.status = core::StreamStatus::kRejected;
      result.service.placement.failure_reason =
          std::string("bad request: ") + e.what();
      bad.set_value(std::move(result));
      future = bad.get_future();
    }
    ++next_id;
    {
      const std::lock_guard<std::mutex> lock(mutex);
      inflight.emplace_back(std::move(id), std::move(future));
    }
    cv.notify_one();
  }

  stream.close();  // no new admissions; dispatchers drain the queue
  {
    const std::lock_guard<std::mutex> lock(mutex);
    input_done = true;
  }
  cv.notify_all();
  writer.join();
  stream.shutdown();

  std::cerr << "served " << next_id << " request(s): " << tally.committed
            << " committed, " << tally.failed << " failed, " << tally.expired
            << " expired, " << tally.rejected << " rejected, " << tally.errors
            << " errors\n";
  return tally.errors == 0 ? 0 : 2;
}

int cmd_validate(util::ArgParser& args) {
  const auto datacenter =
      dc::datacenter_from_text(read_file(args.get_string("datacenter")));
  const auto occupancy =
      load_occupancy(datacenter, args.get_string("occupancy"));
  const auto parsed =
      os::HeatTemplate::parse_text(read_file(args.get_string("template")));
  try {
    const core::Placement placement = core::placement_from_text(
        read_file(args.get_string("placement")), parsed.topology, occupancy,
        core::SearchConfig{});
    std::cout << "placement is valid: utility " << placement.utility << ", "
              << placement.reserved_bandwidth_mbps << " Mbps reserved\n";
    return 0;
  } catch (const core::PlacementIoError& e) {
    std::cerr << "placement is INVALID: " << e.what() << "\n";
    return 2;
  }
}

/// Dumps the metrics registry after the command ran: to a file with
/// --metrics-out, to stderr with --metrics (stderr keeps placement JSON on
/// stdout pipeable).
void dump_metrics(const util::ArgParser& args) {
  const std::string json =
      util::metrics::Registry::global().to_json().pretty();
  if (!args.get_string("metrics-out").empty()) {
    write_file(args.get_string("metrics-out"), json);
  } else if (args.flag("metrics")) {
    std::cerr << json << "\n";
  }
}

int cmd_report(util::ArgParser& args) {
  const auto datacenter =
      dc::datacenter_from_text(read_file(args.get_string("datacenter")));
  const auto occupancy =
      load_occupancy(datacenter, args.get_string("occupancy"));
  std::cout << dc::utilization_report(occupancy).to_string();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: ostro <place|serve|validate|report> [options]\n"
                 "       ostro <command> --help\n";
    return 1;
  }
  const std::string command = argv[1];
  util::ArgParser args("ostro " + command,
                       "Ostro placement engine command-line front end");
  args.add_string("datacenter", "", "data-center JSON (required)");
  args.add_string("occupancy", "", "occupancy snapshot JSON (optional)");
  args.add_flag("metrics",
                "dump the metrics registry (JSON) to stderr after the run");
  args.add_string("metrics-out", "",
                  "write the metrics registry JSON to this file instead");
  if (command == "place" || command == "validate") {
    args.add_string("template", "", "QoS-enhanced Heat template JSON");
  }
  if (command == "place" || command == "serve") {
    args.add_string("algorithm", "eg", "eg | egc | egbw | ba | dba");
    args.add_string("budget", "fixed",
                    "BA*/DBA* search-budget mode: fixed (paper constants) | "
                    "auto (adaptive sizing + widened retries)");
    args.add_string("search-core", "pooled",
                    "BA*/DBA* memory model: pooled (per-thread arena, "
                    "bit-identical) | reference (original containers)");
    args.add_string("use-prune-labels", "on",
                    "precomputed subtree pruning labels for the admissible "
                    "bounds: on (bit-identical, fewer expansions) | off "
                    "(reference bounds)");
    args.add_double("deadline", 0.0, "DBA* deadline (seconds)");
    args.add_double("theta-bw", 0.6, "bandwidth objective weight");
    args.add_double("theta-c", 0.4, "host-count objective weight");
  }
  if (command == "place") {
    args.add_string("out", "", "write placement JSON here (default stdout)");
    args.add_string("annotated", "", "write annotated template here");
    args.add_string("dot", "", "write a Graphviz rendering of the placement");
    args.add_string("commit-out", "", "write post-commit occupancy here");
    args.add_int("service-threads", 0,
                 "place this many copies of the stack concurrently through "
                 "the placement service (0 = classic single placement)");
    args.add_int("shards", 1,
                 "partition the data center into this many pod/site shards "
                 "and route placements through the sharded front end "
                 "(requires --service-threads > 0 and an empty starting "
                 "occupancy; 1 = unsharded)");
  }
  if (command == "serve") {
    args.add_string("in", "-",
                    "NDJSON request source: a path (FIFO or file) or - for "
                    "stdin");
    args.add_string("results", "-",
                    "NDJSON result sink: a path or - for stdout");
    args.add_int("stream-queue-capacity", 1024,
                 "bounded admission-queue capacity (submits beyond it are "
                 "rejected)");
    args.add_int("stream-batch", 8,
                 "requests batched against one shared occupancy snapshot");
    args.add_int("stream-dispatch-threads", 1,
                 "dispatcher threads draining the admission queue");
  }
  if (command == "validate") {
    args.add_string("placement", "", "placement JSON to validate");
  }

  try {
    if (!args.parse(argc - 1, argv + 1)) return 0;
    if (args.get_string("datacenter").empty()) {
      throw std::runtime_error("--datacenter is required");
    }
    int status = 1;
    if (command == "place") {
      status = cmd_place(args);
    } else if (command == "serve") {
      status = cmd_serve(args);
    } else if (command == "validate") {
      status = cmd_validate(args);
    } else if (command == "report") {
      status = cmd_report(args);
    } else {
      std::cerr << "unknown command: " << command << "\n";
      return 1;
    }
    dump_metrics(args);
    return status;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
