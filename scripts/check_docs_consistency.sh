#!/usr/bin/env bash
# Docs-consistency check (CI): the user-facing docs must keep up with the
# code.  Two sources of truth are extracted from the sources and every
# token must appear in README.md or DESIGN.md:
#
#   1. Every field of core::SearchConfig (src/core/types.h) — the README
#      "Configuration" section documents each knob.
#   2. Every metrics counter/summary registered in src/ or tools/ — the
#      README metrics glossary documents each name.  bench/-local metrics
#      (bench.*) are out of scope: they are bench implementation detail.
#   3. Every field of core::DefragConfig (src/core/defrag.h),
#      sim::LifecycleConfig (src/sim/lifecycle.h), and core::ShardConfig
#      (src/core/shard_router.h) — the lifecycle/defragmentation and shard
#      docs document each knob.
#   4. Every flag bench_lifecycle and bench_shard declare themselves
#      (beyond the common bench flags) — the README lists them.
#
# Exits non-zero listing every undocumented token, so a PR adding a config
# knob or a counter without documenting it fails CI.
set -euo pipefail
cd "$(dirname "$0")/.."

docs=(README.md DESIGN.md)
status=0

check() {
  local kind="$1" token="$2"
  if ! grep -qF -- "$token" "${docs[@]}"; then
    echo "UNDOCUMENTED $kind: '$token' (not found in ${docs[*]})" >&2
    status=1
  fi
}

config_fields=$(sed -n '/^struct SearchConfig {/,/^};/p' src/core/types.h |
  grep -E '^\s+[A-Za-z_][A-Za-z0-9_:]*\s+[a-z_][a-z0-9_]*\s*=' |
  sed -E 's/^\s*\S+\s+([a-z_][a-z0-9_]*)\s*=.*/\1/' | sort -u)
if [[ -z "$config_fields" ]]; then
  echo "extraction failure: no SearchConfig fields found in src/core/types.h" >&2
  exit 1
fi
for field in $config_fields; do
  check "SearchConfig field" "$field"
done

struct_fields() {
  local file="$1" name="$2"
  sed -n "/^struct $name {/,/^};/p" "$file" |
    grep -E '^\s+[A-Za-z_][A-Za-z0-9_:]*\s+[a-z_][a-z0-9_]*\s*(=|;)' |
    sed -E 's/^\s*\S+\s+([a-z_][a-z0-9_]*)\s*(=|;).*/\1/' | sort -u
}

for spec in "src/core/defrag.h DefragConfig" "src/sim/lifecycle.h LifecycleConfig" \
            "src/core/shard_router.h ShardConfig"; do
  read -r file name <<<"$spec"
  fields=$(struct_fields "$file" "$name")
  if [[ -z "$fields" ]]; then
    echo "extraction failure: no $name fields found in $file" >&2
    exit 1
  fi
  for field in $fields; do
    check "$name field" "$field"
  done
done

for bench in bench_lifecycle bench_shard; do
  bench_flags=$(grep -hoE 'args\.add_(int|double|flag)\("[a-z-]+"' \
      "bench/$bench.cpp" | sed -E 's/.*\("([a-z-]+)".*/\1/' | sort -u)
  if [[ -z "$bench_flags" ]]; then
    echo "extraction failure: no flags found in bench/$bench.cpp" >&2
    exit 1
  fi
  for flag in $bench_flags; do
    check "$bench flag" "--$flag"
  done
done

metric_names=$(grep -rhoE '(counter|summary)\("[a-z_.]+"\)' src tools |
  sed -E 's/.*\("([a-z_.]+)"\).*/\1/' | sort -u)
if [[ -z "$metric_names" ]]; then
  echo "extraction failure: no metrics registrations found in src/ tools/" >&2
  exit 1
fi
for name in $metric_names; do
  check "metrics name" "$name"
done

if [[ "$status" -eq 0 ]]; then
  count_fields=$(wc -w <<<"$config_fields")
  count_metrics=$(wc -w <<<"$metric_names")
  echo "docs consistent: $count_fields SearchConfig fields and" \
       "$count_metrics metrics names all documented"
fi
exit "$status"
