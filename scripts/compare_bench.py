#!/usr/bin/env python3
"""Compare two BENCH_*.json files and fail on regressions.

The bench binaries emit flat JSON objects of numeric metrics (see
bench/common.h).  This script diffs selected keys between a baseline file
and a candidate file and exits nonzero when the candidate regresses by
more than the tolerance (default 10%).

Keys are higher-is-better by default (throughput-style metrics).  Append
``:lower`` for latency-style metrics where smaller is better.  When the
two files name a metric differently, map with ``baseline_key=candidate_key``.

Examples:
  compare_bench.py BENCH_search_core.json BENCH_labels.json \
      --key pooled_expansions_per_sec
  compare_bench.py old.json new.json --key seconds_per_plan:lower \
      --tolerance 0.05
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"error: cannot read {path}: {err}")
    if not isinstance(data, dict):
        sys.exit(f"error: {path}: expected a JSON object of metrics")
    return data


def parse_key(spec):
    """Return (baseline_key, candidate_key, lower_is_better)."""
    lower = False
    if spec.endswith(":lower"):
        lower = True
        spec = spec[: -len(":lower")]
    elif spec.endswith(":higher"):
        spec = spec[: -len(":higher")]
    base_key, _, cand_key = spec.partition("=")
    return base_key, cand_key or base_key, lower


def fetch(data, key, path):
    if key not in data:
        sys.exit(f"error: key '{key}' missing from {path}")
    value = data[key]
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        sys.exit(f"error: key '{key}' in {path} is not numeric: {value!r}")
    return float(value)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("candidate", help="candidate BENCH_*.json")
    parser.add_argument(
        "--key",
        action="append",
        required=True,
        metavar="K",
        help="metric to compare; forms: name | base=cand | name:lower "
        "(repeatable)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional regression before failing (default 0.10)",
    )
    args = parser.parse_args()

    base_data = load(args.baseline)
    cand_data = load(args.candidate)

    failed = False
    print(f"{'metric':<40} {'baseline':>14} {'candidate':>14} {'delta':>9}  verdict")
    for spec in args.key:
        base_key, cand_key, lower = parse_key(spec)
        base = fetch(base_data, base_key, args.baseline)
        cand = fetch(cand_data, cand_key, args.candidate)
        if base == 0.0:
            delta = 0.0 if cand == 0.0 else float("inf")
        else:
            delta = cand / base - 1.0
        regressed = (delta < -args.tolerance) if not lower else (delta > args.tolerance)
        label = base_key if base_key == cand_key else f"{base_key}={cand_key}"
        if lower:
            label += " (lower better)"
        verdict = "REGRESSION" if regressed else "ok"
        print(f"{label:<40} {base:>14.4f} {cand:>14.4f} {delta:>+8.1%}  {verdict}")
        failed |= regressed

    if failed:
        print(
            f"FAIL: candidate regressed beyond {args.tolerance:.0%} tolerance",
            file=sys.stderr,
        )
        return 1
    print("all compared metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
