// End-to-end OpenStack flow with the extension properties: a template
// using hardware tags, latency budgets and an affinity group goes through
// the Ostro wrapper onto a tagged data center, and the Heat engine enforces
// the annotated decision.
#include <gtest/gtest.h>

#include "core/verify.h"
#include "openstack/ostro_wrapper.h"
#include "util/string_util.h"

namespace ostro::os {
namespace {

dc::DataCenter tagged_two_racks() {
  dc::DataCenterBuilder builder;
  const auto site = builder.add_site("s", 64000.0);
  const auto pod = builder.add_pod(site, "p", 64000.0);
  for (int r = 0; r < 2; ++r) {
    const auto rack =
        builder.add_rack(pod, "rack" + std::to_string(r), 32000.0);
    for (int h = 0; h < 3; ++h) {
      std::vector<std::string> tags;
      if (h == 2) tags = {"ssd"};  // one ssd host per rack
      builder.add_host(rack,
                       "r" + std::to_string(r) + "h" + std::to_string(h),
                       {16.0, 32.0, 1000.0}, 10000.0, std::move(tags));
    }
  }
  return builder.build();
}

constexpr const char* kTemplate = R"({
  "description": "extension flow",
  "resources": {
    "app": {"type": "OS::Nova::Server", "properties": {"flavor": "m1.medium"}},
    "db":  {"type": "OS::Nova::Server",
            "properties": {"flavor": "m1.large", "required_tags": ["ssd"]}},
    "vol": {"type": "OS::Cinder::Volume", "properties": {"size_gb": 250}},
    "p0":  {"type": "ATT::QoS::Pipe",
            "properties": {"from": "app", "to": "db",
                           "bandwidth_mbps": 300, "max_latency_us": 30}},
    "p1":  {"type": "ATT::QoS::Pipe",
            "properties": {"from": "db", "to": "vol",
                           "bandwidth_mbps": 500, "max_latency_us": 30}},
    "ag":  {"type": "ATT::Valet::AffinityGroup",
            "properties": {"level": "rack", "members": ["db", "vol"]}}
  }
})";

TEST(ExtensionFlowTest, WrapperHonorsTagsLatencyAndAffinity) {
  const auto datacenter = tagged_two_racks();
  core::OstroScheduler scheduler(datacenter);
  HeatEngine engine(scheduler.occupancy());
  OstroHeatWrapper wrapper(scheduler, engine);

  const WrapperResult result =
      wrapper.process_text(kTemplate, core::Algorithm::kBaStar);
  ASSERT_TRUE(result.placement.feasible)
      << result.placement.failure_reason;
  ASSERT_TRUE(result.deployment.success) << result.deployment.failure;

  const HeatTemplate parsed = HeatTemplate::parse_text(kTemplate);
  const auto& assignment = result.deployment.assignment;
  const auto db = parsed.topology.node_id("db");
  const auto app = parsed.topology.node_id("app");
  const auto vol = parsed.topology.node_id("vol");

  // db landed on an ssd host.
  EXPECT_TRUE(datacenter.host(assignment[db]).has_all_tags({"ssd"}));
  // 30us budget: app within db's rack (host 5us or rack 25us).
  EXPECT_LE(static_cast<int>(
                datacenter.scope_between(assignment[app], assignment[db])),
            static_cast<int>(dc::Scope::kSameRack));
  // affinity: db and vol share a rack.
  EXPECT_EQ(datacenter.host(assignment[db]).rack,
            datacenter.host(assignment[vol]).rack);
}

TEST(ExtensionFlowTest, ImpossibleTagMakesWholeStackFail) {
  const auto datacenter = tagged_two_racks();
  core::OstroScheduler scheduler(datacenter);
  HeatEngine engine(scheduler.occupancy());
  OstroHeatWrapper wrapper(scheduler, engine);
  const std::string text = util::format(R"({
    "resources": {
      "a": {"type": "OS::Nova::Server",
            "properties": {"flavor": "m1.tiny",
                           "required_tags": ["%s"]}}
    }
  })", "fpga");
  const WrapperResult result =
      wrapper.process_text(text, core::Algorithm::kEg);
  EXPECT_FALSE(result.placement.feasible);
  EXPECT_FALSE(result.deployment.success);
  EXPECT_EQ(scheduler.occupancy().active_host_count(), 0u);
}

TEST(ExtensionFlowTest, LatencyVsAffinityConflictReported) {
  const auto datacenter = tagged_two_racks();
  core::OstroScheduler scheduler(datacenter);
  HeatEngine engine(scheduler.occupancy());
  OstroHeatWrapper wrapper(scheduler, engine);
  // Two ssd-tagged servers (one ssd host per rack forces different racks
  // via the zone) with a same-host latency budget: unsatisfiable.
  const WrapperResult result = wrapper.process_text(R"({
    "resources": {
      "a": {"type": "OS::Nova::Server",
            "properties": {"flavor": "m1.tiny", "required_tags": ["ssd"]}},
      "b": {"type": "OS::Nova::Server",
            "properties": {"flavor": "m1.tiny", "required_tags": ["ssd"]}},
      "z": {"type": "ATT::Valet::DiversityZone",
            "properties": {"level": "rack", "members": ["a", "b"]}},
      "p": {"type": "ATT::QoS::Pipe",
            "properties": {"from": "a", "to": "b",
                           "bandwidth_mbps": 10, "max_latency_us": 10}}
    }
  })",
                                                    core::Algorithm::kBaStar);
  EXPECT_FALSE(result.placement.feasible);
}

}  // namespace
}  // namespace ostro::os
