#include "openstack/nova.h"

#include <gtest/gtest.h>

#include "helpers.h"

namespace ostro::os {
namespace {

using ostro::testing::small_dc;

TEST(NovaTest, SpreadsOntoEmptiestHost) {
  const auto dc = small_dc(2, 2);
  dc::Occupancy occupancy(dc);
  occupancy.add_host_load(0, {4.0, 8.0, 0.0});
  occupancy.add_host_load(1, {2.0, 4.0, 0.0});
  // Hosts 2 and 3 are empty; weigher prefers them over 0/1.
  const auto host = NovaScheduler::select_host(occupancy, {1.0, 1.0, 0.0});
  ASSERT_TRUE(host.has_value());
  EXPECT_TRUE(*host == 2 || *host == 3);
}

TEST(NovaTest, FiltersFullHosts) {
  const auto dc = small_dc(1, 2);
  dc::Occupancy occupancy(dc);
  occupancy.add_host_load(0, {7.0, 0.0, 0.0});
  occupancy.add_host_load(1, {7.0, 0.0, 0.0});
  EXPECT_FALSE(
      NovaScheduler::select_host(occupancy, {2.0, 1.0, 0.0}).has_value());
  EXPECT_TRUE(
      NovaScheduler::select_host(occupancy, {1.0, 1.0, 0.0}).has_value());
}

TEST(NovaTest, ForcedHostValidated) {
  const auto dc = small_dc(1, 2);
  dc::Occupancy occupancy(dc);
  occupancy.add_host_load(0, {7.0, 0.0, 0.0});
  EXPECT_FALSE(NovaScheduler::select_forced(occupancy, {2.0, 1.0, 0.0},
                                            "h0-0")
                   .has_value());
  const auto ok =
      NovaScheduler::select_forced(occupancy, {2.0, 1.0, 0.0}, "h0-1");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(*ok, 1u);
  EXPECT_FALSE(NovaScheduler::select_forced(occupancy, {1.0, 1.0, 0.0},
                                            "ghost")
                   .has_value());
}

TEST(CinderTest, PicksMostFreeDisk) {
  const auto dc = small_dc(1, 2);
  dc::Occupancy occupancy(dc);
  occupancy.add_host_load(0, {0.0, 0.0, 300.0});  // 200 GB free
  const auto host = CinderScheduler::select_host(occupancy, 100.0);
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(*host, 1u);  // 500 GB free
}

TEST(CinderTest, FiltersByCapacity) {
  const auto dc = small_dc(1, 1);
  dc::Occupancy occupancy(dc);
  occupancy.add_host_load(0, {0.0, 0.0, 450.0});
  EXPECT_FALSE(CinderScheduler::select_host(occupancy, 100.0).has_value());
  EXPECT_TRUE(CinderScheduler::select_host(occupancy, 50.0).has_value());
}

TEST(CinderTest, ForcedHost) {
  const auto dc = small_dc(1, 2);
  dc::Occupancy occupancy(dc);
  occupancy.add_host_load(0, {0.0, 0.0, 480.0});
  EXPECT_FALSE(
      CinderScheduler::select_forced(occupancy, 100.0, "h0-0").has_value());
  EXPECT_TRUE(
      CinderScheduler::select_forced(occupancy, 100.0, "h0-1").has_value());
}

TEST(FindHostTest, ByName) {
  const auto dc = small_dc(1, 2);
  EXPECT_EQ(find_host_by_name(dc, "h0-1"), 1u);
  EXPECT_FALSE(find_host_by_name(dc, "nope").has_value());
}

}  // namespace
}  // namespace ostro::os
