#include "openstack/ostro_wrapper.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "helpers.h"

namespace ostro::os {
namespace {

using ostro::testing::small_dc;

constexpr const char* kTemplate = R"({
  "description": "wrapper demo",
  "resources": {
    "a": {"type": "OS::Nova::Server", "properties": {"flavor": "m1.small"}},
    "b": {"type": "OS::Nova::Server", "properties": {"flavor": "m1.small"}},
    "v": {"type": "OS::Cinder::Volume", "properties": {"size_gb": 50}},
    "p0": {"type": "ATT::QoS::Pipe",
           "properties": {"from": "a", "to": "b", "bandwidth_mbps": 100}},
    "p1": {"type": "ATT::QoS::Pipe",
           "properties": {"from": "b", "to": "v", "bandwidth_mbps": 200}}
  }
})";

TEST(WrapperTest, FullPipelineCoLocates) {
  const auto datacenter = small_dc(2, 2);
  core::OstroScheduler scheduler(datacenter);
  HeatEngine engine(scheduler.occupancy());
  OstroHeatWrapper wrapper(scheduler, engine);

  const WrapperResult result =
      wrapper.process_text(kTemplate, core::Algorithm::kEg);
  ASSERT_TRUE(result.placement.feasible);
  ASSERT_TRUE(result.deployment.success) << result.deployment.failure;
  // Ostro co-locates the whole stack: zero reserved bandwidth, unlike the
  // naive per-request path (see HeatEngineTest).
  EXPECT_DOUBLE_EQ(result.deployment.reserved_bandwidth_mbps, 0.0);
  EXPECT_EQ(result.deployment.new_active_hosts, 1);
  // The annotated template carries hints for every server/volume.
  for (const char* key : {"a", "b", "v"}) {
    EXPECT_TRUE(result.annotated_template.at("resources")
                    .at(key)
                    .contains("scheduler_hints"))
        << key;
  }
}

TEST(WrapperTest, DeploymentMatchesOstroDecision) {
  const auto datacenter = small_dc(2, 2);
  core::OstroScheduler scheduler(datacenter);
  HeatEngine engine(scheduler.occupancy());
  OstroHeatWrapper wrapper(scheduler, engine);
  const WrapperResult result =
      wrapper.process_text(kTemplate, core::Algorithm::kBaStar);
  ASSERT_TRUE(result.deployment.success);
  EXPECT_EQ(result.deployment.assignment, result.placement.assignment);
}

TEST(WrapperTest, InfeasiblePlacementReported) {
  const auto datacenter = small_dc(1, 1);
  core::OstroScheduler scheduler(datacenter);
  scheduler.occupancy().add_host_load(0, {7.0, 15.0, 0.0});
  HeatEngine engine(scheduler.occupancy());
  OstroHeatWrapper wrapper(scheduler, engine);
  const WrapperResult result =
      wrapper.process_text(kTemplate, core::Algorithm::kEg);
  EXPECT_FALSE(result.placement.feasible);
  EXPECT_FALSE(result.deployment.success);
  EXPECT_NE(result.deployment.failure.find("Ostro"), std::string::npos);
}

TEST(WrapperTest, BadTemplateReported) {
  const auto datacenter = small_dc();
  core::OstroScheduler scheduler(datacenter);
  HeatEngine engine(scheduler.occupancy());
  OstroHeatWrapper wrapper(scheduler, engine);
  EXPECT_FALSE(
      wrapper.process_text("not json", core::Algorithm::kEg).deployment.success);
  EXPECT_FALSE(wrapper.process_text(R"({"resources": {"x": {"type": "Bad"}}})",
                                    core::Algorithm::kEg)
                   .deployment.success);
}

TEST(WrapperTest, SuccessiveStacksShareTheDataCenter) {
  const auto datacenter = small_dc(2, 2);
  core::OstroScheduler scheduler(datacenter);
  HeatEngine engine(scheduler.occupancy());
  OstroHeatWrapper wrapper(scheduler, engine);
  ASSERT_TRUE(
      wrapper.process_text(kTemplate, core::Algorithm::kEg).deployment.success);
  const WrapperResult second =
      wrapper.process_text(kTemplate, core::Algorithm::kEg);
  ASSERT_TRUE(second.deployment.success);
  // Ostro prefers the already-active host; no new activations needed.
  EXPECT_EQ(second.deployment.new_active_hosts, 0);
}

TEST(WrapperTest, ConcurrentStacksNeverFailEngineValidation) {
  // Concurrent stacks through one shared service: a competing commit
  // between Ostro's plan and the Heat deploy must surface as a clean
  // replan inside the service, never as the engine's own "placement
  // validation failed" (the deploy runs under the service's writer lock
  // after the re-validation gate).
  const auto datacenter = small_dc(2, 2);
  core::OstroScheduler scheduler(datacenter);
  core::PlacementService service(scheduler);
  HeatEngine engine(scheduler.occupancy());

  constexpr int kThreads = 4;
  std::vector<WrapperResult> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      OstroHeatWrapper wrapper(service, engine);
      results[static_cast<std::size_t>(t)] =
          wrapper.process_text(kTemplate, core::Algorithm::kEg);
    });
  }
  for (auto& thread : threads) thread.join();

  int committed = 0;
  for (const WrapperResult& result : results) {
    if (result.deployment.success) {
      EXPECT_TRUE(result.placement.committed);
      ++committed;
    } else {
      // Only service-level outcomes are acceptable failures.
      EXPECT_EQ(result.deployment.failure.find("validation"),
                std::string::npos)
          << result.deployment.failure;
    }
  }
  // The DC has room for all four small stacks.
  EXPECT_EQ(committed, kThreads);
}

TEST(WrapperStreamTest, StreamedStackDeploysLikeProcess) {
  const auto datacenter = small_dc(2, 2);
  core::OstroScheduler scheduler(datacenter);
  core::PlacementService service(scheduler);
  HeatEngine engine(scheduler.occupancy());
  OstroHeatWrapper wrapper(service, engine);

  core::SearchConfig config;
  config.threads = 1;
  core::StreamingService stream(service, config, /*start_dispatchers=*/false);

  auto streamed = wrapper.submit_streamed(
      stream, util::Json::parse(kTemplate), core::Algorithm::kEg,
      core::StreamPriority::kHigh);
  EXPECT_EQ(stream.dispatch_once(), 1u);

  const core::StreamResult result = streamed.result.get();
  ASSERT_EQ(result.status, core::StreamStatus::kCommitted);
  ASSERT_TRUE(result.service.placement.committed);
  // The commit step ran the engine deploy and filled the shared stack.
  ASSERT_TRUE(streamed.stack->deployment.success)
      << streamed.stack->deployment.failure;
  EXPECT_EQ(streamed.stack->deployment.assignment,
            result.service.placement.assignment);
  EXPECT_DOUBLE_EQ(streamed.stack->deployment.reserved_bandwidth_mbps, 0.0);
  EXPECT_EQ(streamed.stack->deployment.new_active_hosts, 1);
  for (const char* key : {"a", "b", "v"}) {
    EXPECT_TRUE(streamed.stack->annotated_template.at("resources")
                    .at(key)
                    .contains("scheduler_hints"))
        << key;
  }
}

TEST(WrapperStreamTest, BadTemplateResolvesImmediatelyAsFailed) {
  const auto datacenter = small_dc(2, 2);
  core::OstroScheduler scheduler(datacenter);
  core::PlacementService service(scheduler);
  HeatEngine engine(scheduler.occupancy());
  OstroHeatWrapper wrapper(service, engine);

  core::SearchConfig config;
  config.threads = 1;
  core::StreamingService stream(service, config, /*start_dispatchers=*/false);

  auto streamed = wrapper.submit_streamed(
      stream, util::Json::parse(R"({"resources": {"x": {"type": "Bad"}}})"),
      core::Algorithm::kEg);
  // Parse failures never enter the queue: the future is already resolved.
  ASSERT_EQ(streamed.result.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const core::StreamResult result = streamed.result.get();
  EXPECT_EQ(result.status, core::StreamStatus::kFailed);
  EXPECT_FALSE(result.service.placement.failure_reason.empty());
  EXPECT_FALSE(streamed.stack->deployment.success);
  EXPECT_EQ(streamed.stack->deployment.failure,
            result.service.placement.failure_reason);
  EXPECT_EQ(stream.queue_depth(), 0u);
}

}  // namespace
}  // namespace ostro::os
