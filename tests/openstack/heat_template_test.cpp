#include "openstack/heat_template.h"

#include <gtest/gtest.h>

#include "helpers.h"

namespace ostro::os {
namespace {

constexpr const char* kTemplate = R"({
  "heat_template_version": "2014-10-16",
  "description": "two tier",
  "resources": {
    "web0": {"type": "OS::Nova::Server", "properties": {"flavor": "m1.small"}},
    "db0": {"type": "OS::Nova::Server",
            "properties": {"flavor": {"vcpus": 4, "ram_gb": 8}}},
    "vol0": {"type": "OS::Cinder::Volume", "properties": {"size_gb": 120}},
    "p0": {"type": "ATT::QoS::Pipe",
           "properties": {"from": "web0", "to": "db0", "bandwidth_mbps": 100}},
    "p1": {"type": "ATT::QoS::Pipe",
           "properties": {"from": "db0", "to": "vol0", "bandwidth_mbps": 200}},
    "dz0": {"type": "ATT::Valet::DiversityZone",
            "properties": {"level": "host", "members": ["web0", "db0"]}}
  }
})";

TEST(HeatTemplateTest, ParsesFullTemplate) {
  const HeatTemplate parsed = HeatTemplate::parse_text(kTemplate);
  EXPECT_EQ(parsed.description, "two tier");
  EXPECT_EQ(parsed.topology.node_count(), 3u);
  EXPECT_EQ(parsed.topology.edge_count(), 2u);
  ASSERT_EQ(parsed.topology.zones().size(), 1u);
  EXPECT_EQ(parsed.topology.zones()[0].level, topo::DiversityLevel::kHost);

  const auto web = parsed.topology.node(parsed.topology.node_id("web0"));
  EXPECT_EQ(web.requirements, (topo::Resources{2.0, 2.0, 0.0}));
  const auto db = parsed.topology.node(parsed.topology.node_id("db0"));
  EXPECT_EQ(db.requirements, (topo::Resources{4.0, 8.0, 0.0}));
  const auto vol = parsed.topology.node(parsed.topology.node_id("vol0"));
  EXPECT_EQ(vol.kind, topo::NodeKind::kVolume);
  EXPECT_DOUBLE_EQ(vol.requirements.disk_gb, 120.0);
}

TEST(HeatTemplateTest, FlavorNames) {
  EXPECT_EQ(flavor_by_name("m1.tiny"), (topo::Resources{1.0, 0.5, 0.0}));
  EXPECT_EQ(flavor_by_name("m1.xlarge"), (topo::Resources{8.0, 16.0, 0.0}));
  EXPECT_THROW((void)flavor_by_name("z9.mega"), TemplateError);
}

TEST(HeatTemplateTest, AllDiversityLevelsParse) {
  for (const char* level : {"host", "rack", "pod", "datacenter"}) {
    const std::string text = std::string(R"({
      "resources": {
        "a": {"type": "OS::Nova::Server", "properties": {"flavor": "m1.tiny"}},
        "b": {"type": "OS::Nova::Server", "properties": {"flavor": "m1.tiny"}},
        "z": {"type": "ATT::Valet::DiversityZone",
              "properties": {"level": ")") +
                             level + R"(", "members": ["a", "b"]}}
      }
    })";
    EXPECT_NO_THROW((void)HeatTemplate::parse_text(text)) << level;
  }
}

TEST(HeatTemplateTest, ErrorsAreDescriptive) {
  // Not JSON.
  EXPECT_THROW((void)HeatTemplate::parse_text("not json"), TemplateError);
  // No resources.
  EXPECT_THROW((void)HeatTemplate::parse_text(R"({"a": 1})"), TemplateError);
  // Unknown resource type.
  EXPECT_THROW((void)HeatTemplate::parse_text(R"({
    "resources": {"x": {"type": "OS::Neutron::Port", "properties": {}}}
  })"),
               TemplateError);
  // Pipe to a missing node.
  EXPECT_THROW((void)HeatTemplate::parse_text(R"({
    "resources": {
      "a": {"type": "OS::Nova::Server", "properties": {"flavor": "m1.tiny"}},
      "p": {"type": "ATT::QoS::Pipe",
            "properties": {"from": "a", "to": "ghost", "bandwidth_mbps": 10}}
    }
  })"),
               TemplateError);
  // Missing flavor.
  EXPECT_THROW((void)HeatTemplate::parse_text(R"({
    "resources": {"a": {"type": "OS::Nova::Server", "properties": {}}}
  })"),
               TemplateError);
  // Bad diversity level.
  EXPECT_THROW((void)HeatTemplate::parse_text(R"({
    "resources": {
      "a": {"type": "OS::Nova::Server", "properties": {"flavor": "m1.tiny"}},
      "b": {"type": "OS::Nova::Server", "properties": {"flavor": "m1.tiny"}},
      "z": {"type": "ATT::Valet::DiversityZone",
            "properties": {"level": "galaxy", "members": ["a", "b"]}}
    }
  })"),
               TemplateError);
  // Negative bandwidth.
  EXPECT_THROW((void)HeatTemplate::parse_text(R"({
    "resources": {
      "a": {"type": "OS::Nova::Server", "properties": {"flavor": "m1.tiny"}},
      "b": {"type": "OS::Nova::Server", "properties": {"flavor": "m1.tiny"}},
      "p": {"type": "ATT::QoS::Pipe",
            "properties": {"from": "a", "to": "b", "bandwidth_mbps": -10}}
    }
  })"),
               TemplateError);
}

TEST(HeatTemplateTest, AnnotateAddsForceHostHints) {
  const HeatTemplate parsed = HeatTemplate::parse_text(kTemplate);
  const auto datacenter = ostro::testing::small_dc(2, 2);
  net::Assignment assignment(parsed.topology.node_count());
  assignment[parsed.topology.node_id("web0")] = 0;
  assignment[parsed.topology.node_id("db0")] = 1;
  assignment[parsed.topology.node_id("vol0")] = 1;

  const util::Json original = util::Json::parse(kTemplate);
  const util::Json annotated =
      annotate_with_placement(original, parsed, assignment, datacenter);
  const auto& resources = annotated.at("resources");
  EXPECT_EQ(resources.at("web0")
                .at("scheduler_hints")
                .at("ATT::Ostro::force_host")
                .as_string(),
            datacenter.host(0).name);
  EXPECT_EQ(resources.at("vol0")
                .at("scheduler_hints")
                .at("ATT::Ostro::force_host")
                .as_string(),
            datacenter.host(1).name);
  // Pipes and zones untouched.
  EXPECT_FALSE(resources.at("p0").contains("scheduler_hints"));
  // The original document is unchanged (deep copy).
  EXPECT_FALSE(original.at("resources").at("web0").contains("scheduler_hints"));
}

TEST(HeatTemplateTest, AnnotateRejectsBadAssignments) {
  const HeatTemplate parsed = HeatTemplate::parse_text(kTemplate);
  const auto datacenter = ostro::testing::small_dc();
  const util::Json original = util::Json::parse(kTemplate);
  EXPECT_THROW((void)annotate_with_placement(original, parsed, {0}, datacenter),
               TemplateError);
  net::Assignment unplaced(parsed.topology.node_count(), dc::kInvalidHost);
  EXPECT_THROW(
      (void)annotate_with_placement(original, parsed, unplaced, datacenter),
      TemplateError);
}

TEST(HeatTemplateTest, ResourceKeysTrackNodes) {
  const HeatTemplate parsed = HeatTemplate::parse_text(kTemplate);
  ASSERT_EQ(parsed.resource_keys.size(), parsed.topology.node_count());
  for (std::size_t i = 0; i < parsed.resource_keys.size(); ++i) {
    EXPECT_EQ(parsed.resource_keys[i], parsed.topology.nodes()[i].name);
  }
}

}  // namespace
}  // namespace ostro::os
