#include "openstack/heat_engine.h"

#include <gtest/gtest.h>

#include "helpers.h"

namespace ostro::os {
namespace {

using ostro::testing::small_dc;

constexpr const char* kPlainTemplate = R"({
  "resources": {
    "a": {"type": "OS::Nova::Server", "properties": {"flavor": "m1.small"}},
    "b": {"type": "OS::Nova::Server", "properties": {"flavor": "m1.small"}},
    "v": {"type": "OS::Cinder::Volume", "properties": {"size_gb": 50}},
    "p": {"type": "ATT::QoS::Pipe",
          "properties": {"from": "a", "to": "b", "bandwidth_mbps": 100}}
  }
})";

TEST(HeatEngineTest, DeploysWithoutHints) {
  const auto dc = small_dc(2, 2);
  dc::Occupancy occupancy(dc);
  HeatEngine engine(occupancy);
  const StackDeployment result = engine.deploy_text(kPlainTemplate);
  ASSERT_TRUE(result.success) << result.failure;
  EXPECT_EQ(result.assignment.size(), 3u);
  EXPECT_GT(occupancy.active_host_count(), 0u);
}

TEST(HeatEngineTest, NaiveSchedulerSpreadsAndWastesBandwidth) {
  // The stock weighers spread the two VMs across empty hosts, so the pipe
  // costs bandwidth — the paper's core criticism of per-request scheduling.
  const auto dc = small_dc(2, 2);
  dc::Occupancy occupancy(dc);
  HeatEngine engine(occupancy);
  const StackDeployment result = engine.deploy_text(kPlainTemplate);
  ASSERT_TRUE(result.success);
  EXPECT_NE(result.assignment[0], result.assignment[1]);
  EXPECT_GT(result.reserved_bandwidth_mbps, 0.0);
}

TEST(HeatEngineTest, HonorsForceHostHints) {
  const auto dc = small_dc(2, 2);
  dc::Occupancy occupancy(dc);
  HeatEngine engine(occupancy);
  util::Json doc = util::Json::parse(kPlainTemplate);
  for (const char* key : {"a", "b", "v"}) {
    util::JsonObject hints;
    hints["ATT::Ostro::force_host"] = dc.host(3).name;
    doc.as_object()["resources"].as_object()[key].as_object()
        ["scheduler_hints"] = util::Json(std::move(hints));
  }
  const StackDeployment result = engine.deploy(doc);
  ASSERT_TRUE(result.success) << result.failure;
  for (const auto host : result.assignment) EXPECT_EQ(host, 3u);
  EXPECT_DOUBLE_EQ(result.reserved_bandwidth_mbps, 0.0);
  EXPECT_EQ(result.new_active_hosts, 1);
}

TEST(HeatEngineTest, FailsWhenForcedHostFull) {
  const auto dc = small_dc(1, 2);
  dc::Occupancy occupancy(dc);
  occupancy.add_host_load(0, {7.0, 0.0, 0.0});
  HeatEngine engine(occupancy);
  util::Json doc = util::Json::parse(kPlainTemplate);
  util::JsonObject hints;
  hints["ATT::Ostro::force_host"] = dc.host(0).name;
  doc.as_object()["resources"].as_object()["a"].as_object()
      ["scheduler_hints"] = util::Json(std::move(hints));
  const dc::Occupancy before = occupancy;
  const StackDeployment result = engine.deploy(doc);
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.failure.find("a"), std::string::npos);
  EXPECT_TRUE(occupancy == before);  // nothing committed
}

TEST(HeatEngineTest, ZoneViolationCaughtAtValidation) {
  // Force both zone members onto one host: the engine's validation gate
  // must refuse the whole stack.
  const auto dc = small_dc(2, 2);
  dc::Occupancy occupancy(dc);
  HeatEngine engine(occupancy);
  util::Json doc = util::Json::parse(R"({
    "resources": {
      "a": {"type": "OS::Nova::Server", "properties": {"flavor": "m1.tiny"}},
      "b": {"type": "OS::Nova::Server", "properties": {"flavor": "m1.tiny"}},
      "z": {"type": "ATT::Valet::DiversityZone",
            "properties": {"level": "host", "members": ["a", "b"]}}
    }
  })");
  for (const char* key : {"a", "b"}) {
    util::JsonObject hints;
    hints["ATT::Ostro::force_host"] = dc.host(0).name;
    doc.as_object()["resources"].as_object()[key].as_object()
        ["scheduler_hints"] = util::Json(std::move(hints));
  }
  const StackDeployment result = engine.deploy(doc);
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.failure.find("zone"), std::string::npos);
  EXPECT_EQ(occupancy.active_host_count(), 0u);
}

TEST(HeatEngineTest, BandwidthShortageFailsCleanly) {
  const auto dc = small_dc(1, 2);
  dc::Occupancy occupancy(dc);
  occupancy.reserve_link(dc.host_link(0), 950.0);
  occupancy.reserve_link(dc.host_link(1), 950.0);
  HeatEngine engine(occupancy);
  // Naive scheduling spreads a and b; the 100 pipe cannot fit anywhere.
  const dc::Occupancy before = occupancy;
  const StackDeployment result = engine.deploy_text(kPlainTemplate);
  EXPECT_FALSE(result.success);
  EXPECT_TRUE(occupancy == before);
}

TEST(HeatEngineTest, MalformedTemplateReported) {
  const auto dc = small_dc();
  dc::Occupancy occupancy(dc);
  HeatEngine engine(occupancy);
  EXPECT_FALSE(engine.deploy_text("{oops").success);
  EXPECT_FALSE(engine.deploy_text(R"({"no_resources": 1})").success);
}

TEST(HeatEngineTest, SequentialStacksAccumulate) {
  const auto dc = small_dc(2, 2);
  dc::Occupancy occupancy(dc);
  HeatEngine engine(occupancy);
  ASSERT_TRUE(engine.deploy_text(kPlainTemplate).success);
  const auto active_after_first = occupancy.active_host_count();
  ASSERT_TRUE(engine.deploy_text(kPlainTemplate).success);
  EXPECT_GE(occupancy.active_host_count(), active_after_first);
}

}  // namespace
}  // namespace ostro::os
