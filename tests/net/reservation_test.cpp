#include "net/reservation.h"

#include <gtest/gtest.h>

#include "helpers.h"

namespace ostro::net {
namespace {

using ostro::testing::small_dc;
using ostro::testing::tiny_app;

TEST(ReservationTest, CommitConsumesHostAndLinkResources) {
  const dc::DataCenter dc = small_dc(2, 2);
  dc::Occupancy occupancy(dc);
  const topo::AppTopology app = tiny_app();
  // web->h0, db->h1 (same rack), data->h1 (co-located with db).
  const Assignment assignment{0, 1, 1};
  commit_placement(occupancy, app, assignment);

  EXPECT_EQ(occupancy.used(0), (topo::Resources{2.0, 2.0, 0.0}));
  EXPECT_EQ(occupancy.used(1), (topo::Resources{4.0, 4.0, 100.0}));
  // Only the web--db pipe (100) crosses hosts: both host uplinks.
  EXPECT_DOUBLE_EQ(occupancy.link_used_mbps(dc.host_link(0)), 100.0);
  EXPECT_DOUBLE_EQ(occupancy.link_used_mbps(dc.host_link(1)), 100.0);
  EXPECT_DOUBLE_EQ(occupancy.link_used_mbps(dc.rack_link(0)), 0.0);
}

TEST(ReservationTest, CrossRackReservesTorLinks) {
  const dc::DataCenter dc = small_dc(2, 2);
  dc::Occupancy occupancy(dc);
  const topo::AppTopology app = tiny_app();
  const Assignment assignment{0, 2, 2};  // web rack0, db+data rack1
  commit_placement(occupancy, app, assignment);
  EXPECT_DOUBLE_EQ(occupancy.link_used_mbps(dc.rack_link(0)), 100.0);
  EXPECT_DOUBLE_EQ(occupancy.link_used_mbps(dc.rack_link(1)), 100.0);
}

TEST(ReservationTest, FailureRollsBackEverything) {
  const dc::DataCenter dc = small_dc(1, 2);
  dc::Occupancy occupancy(dc);
  // Consume so much bandwidth that the web--db pipe cannot fit.
  occupancy.reserve_link(dc.host_link(1), 950.0);
  const dc::Occupancy before = occupancy;

  const topo::AppTopology app = tiny_app();
  const Assignment assignment{0, 1, 1};
  EXPECT_THROW(commit_placement(occupancy, app, assignment),
               std::invalid_argument);
  EXPECT_TRUE(occupancy == before);
}

TEST(ReservationTest, HostOverCapacityRollsBack) {
  const dc::DataCenter dc = small_dc(1, 2);
  dc::Occupancy occupancy(dc);
  occupancy.add_host_load(1, {6.0, 14.0, 0.0});  // db (4,4) will not fit
  const dc::Occupancy before = occupancy;
  const topo::AppTopology app = tiny_app();
  EXPECT_THROW(commit_placement(occupancy, app, {0, 1, 0}),
               std::invalid_argument);
  EXPECT_TRUE(occupancy == before);
}

TEST(ReservationTest, TransactionRollbackOnDestruction) {
  const dc::DataCenter dc = small_dc(1, 2);
  dc::Occupancy occupancy(dc);
  const dc::Occupancy before = occupancy;
  {
    PlacementTransaction txn(occupancy);
    txn.apply(tiny_app(), {0, 1, 1});
    EXPECT_FALSE(occupancy == before);
    // no commit -> rollback at scope exit
  }
  EXPECT_TRUE(occupancy == before);
}

TEST(ReservationTest, TransactionCommitKeeps) {
  const dc::DataCenter dc = small_dc(1, 2);
  dc::Occupancy occupancy(dc);
  const dc::Occupancy before = occupancy;
  {
    PlacementTransaction txn(occupancy);
    txn.apply(tiny_app(), {0, 1, 1});
    txn.commit();
  }
  EXPECT_FALSE(occupancy == before);
}

TEST(ReservationTest, ExplicitRollback) {
  const dc::DataCenter dc = small_dc(1, 2);
  dc::Occupancy occupancy(dc);
  const dc::Occupancy before = occupancy;
  PlacementTransaction txn(occupancy);
  txn.apply(tiny_app(), {0, 1, 1});
  txn.rollback();
  EXPECT_TRUE(occupancy == before);
}

TEST(ReservationTest, MidEdgeFailureLeavesOccupancyBitIdentical) {
  const dc::DataCenter dc = small_dc(2, 2);
  dc::Occupancy occupancy(dc);
  // The web--db pipe (100 Mbps) of the cross-rack assignment {0, 2, 2}
  // traverses both hosts' uplinks and both ToR uplinks.  Leave only 50 Mbps
  // on rack1's uplink: the reservation fails partway through the edge's
  // link list, after the host loads and some links were already reserved.
  occupancy.reserve_link(dc.rack_link(1), 3950.0);
  const dc::Occupancy before = occupancy;

  PlacementTransaction txn(occupancy);
  EXPECT_THROW(txn.apply(tiny_app(), {0, 2, 2}), std::invalid_argument);
  EXPECT_TRUE(txn.empty());
  EXPECT_TRUE(occupancy == before);
  // Spell the invariant out field by field as well: host loads, active
  // flags, and link reservations all match the pre-apply snapshot.
  for (std::size_t h = 0; h < dc.host_count(); ++h) {
    const auto host = static_cast<dc::HostId>(h);
    EXPECT_EQ(occupancy.used(host), before.used(host)) << "host " << h;
    EXPECT_EQ(occupancy.is_active(host), before.is_active(host))
        << "host " << h;
  }
  for (std::size_t l = 0; l < dc.link_count(); ++l) {
    const auto link = static_cast<dc::LinkId>(l);
    EXPECT_DOUBLE_EQ(occupancy.link_used_mbps(link),
                     before.link_used_mbps(link))
        << "link " << l;
  }

  // The failed transaction is reusable: free the uplink and the same
  // assignment goes through on the same transaction object.
  occupancy.release_link(dc.rack_link(1), 3950.0);
  txn.apply(tiny_app(), {0, 2, 2});
  txn.commit();
  EXPECT_DOUBLE_EQ(occupancy.link_used_mbps(dc.rack_link(0)), 100.0);
  EXPECT_DOUBLE_EQ(occupancy.link_used_mbps(dc.rack_link(1)), 100.0);
  EXPECT_EQ(occupancy.used(2), (topo::Resources{4.0, 4.0, 100.0}));
}

TEST(ReservationTest, ApplyAfterRollbackStillRollsBackOnDestruction) {
  const dc::DataCenter dc = small_dc(1, 2);
  dc::Occupancy occupancy(dc);
  const dc::Occupancy before = occupancy;
  {
    PlacementTransaction txn(occupancy);
    txn.apply(tiny_app(), {0, 1, 1});
    txn.rollback();
    EXPECT_TRUE(occupancy == before);
    // Regression: re-using the transaction after an explicit rollback must
    // still roll the new reservations back at scope exit (an earlier
    // version latched a "done" flag on the first rollback and leaked them).
    txn.apply(tiny_app(), {0, 1, 1});
    EXPECT_FALSE(occupancy == before);
  }
  EXPECT_TRUE(occupancy == before);
}

TEST(ReservationTest, CommitThenReuseKeepsOnlyCommittedWork) {
  const dc::DataCenter dc = small_dc(1, 2);
  dc::Occupancy occupancy(dc);
  {
    PlacementTransaction txn(occupancy);
    txn.apply(tiny_app(), {0, 1, 1});
    txn.commit();
    EXPECT_TRUE(txn.empty());
    // Second application on the same transaction, not committed: rolled
    // back at scope exit without disturbing the committed first one.
    txn.apply(tiny_app(), {0, 1, 1});
  }
  EXPECT_EQ(occupancy.used(0), (topo::Resources{2.0, 2.0, 0.0}));
  EXPECT_EQ(occupancy.used(1), (topo::Resources{4.0, 4.0, 100.0}));
  EXPECT_DOUBLE_EQ(occupancy.link_used_mbps(dc.host_link(0)), 100.0);
  EXPECT_DOUBLE_EQ(occupancy.link_used_mbps(dc.host_link(1)), 100.0);
}

TEST(ReservationTest, MalformedAssignmentsRejected) {
  const dc::DataCenter dc = small_dc(1, 2);
  dc::Occupancy occupancy(dc);
  const topo::AppTopology app = tiny_app();
  EXPECT_THROW(commit_placement(occupancy, app, {0, 1}),
               std::invalid_argument);  // size mismatch
  EXPECT_THROW(commit_placement(occupancy, app, {0, 1, dc::kInvalidHost}),
               std::invalid_argument);  // unplaced node
  EXPECT_THROW(commit_placement(occupancy, app, {0, 1, 77}),
               std::invalid_argument);  // bad host
}

TEST(ReservedBandwidthTest, HopWeightedSum) {
  const dc::DataCenter dc = small_dc(2, 2);
  const topo::AppTopology app = tiny_app();
  // All on one host: zero.
  EXPECT_DOUBLE_EQ(reserved_bandwidth_mbps(dc, app, {0, 0, 0}), 0.0);
  // web-db same rack (100*2), db-data co-located: 200.
  EXPECT_DOUBLE_EQ(reserved_bandwidth_mbps(dc, app, {0, 1, 1}), 200.0);
  // web-db cross rack (100*4), db-data cross rack (200*4): 1200.
  EXPECT_DOUBLE_EQ(reserved_bandwidth_mbps(dc, app, {0, 2, 1}), 1200.0);
}

TEST(ReservedBandwidthTest, SizeMismatchThrows) {
  const dc::DataCenter dc = small_dc();
  EXPECT_THROW((void)reserved_bandwidth_mbps(dc, tiny_app(), {0, 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace ostro::net
