// Edge cases of the max-min fair solver: saturated (zero-available) links
// under an Occupancy, co-located flows with empty paths, equal-demand ties
// at the saturation level, and the progress guarantee of the freezing loop.
#include "net/maxmin.h"

#include <gtest/gtest.h>

#include "helpers.h"

namespace ostro::net {
namespace {

using ostro::testing::small_dc;

TEST(MaxMinEdgeTest, SaturatedLinkStarvesOnlyItsFlows) {
  const dc::DataCenter dc = small_dc(2, 2);  // hosts 0,1 rack0; 2,3 rack1
  dc::Occupancy occupancy(dc);
  occupancy.reserve_link(dc.host_link(0), 1000.0);  // h0 uplink: 0 available

  const std::vector<Flow> flows = {{0, 1, 500.0}, {2, 3, 400.0}};
  const FairShareResult result = max_min_fair_rates(occupancy, flows);
  ASSERT_EQ(result.rate_mbps.size(), 2u);
  EXPECT_DOUBLE_EQ(result.rate_mbps[0], 0.0);
  EXPECT_DOUBLE_EQ(result.rate_mbps[1], 400.0);
  EXPECT_DOUBLE_EQ(result.total_mbps, 400.0);
}

TEST(MaxMinEdgeTest, AllFlowsThroughSaturatedLinksGetZero) {
  const dc::DataCenter dc = small_dc(2, 2);
  dc::Occupancy occupancy(dc);
  occupancy.reserve_link(dc.host_link(0), 1000.0);
  occupancy.reserve_link(dc.host_link(2), 1000.0);

  const std::vector<Flow> flows = {{0, 1, 500.0}, {2, 3, 400.0}};
  const FairShareResult result = max_min_fair_rates(occupancy, flows);
  EXPECT_DOUBLE_EQ(result.rate_mbps[0], 0.0);
  EXPECT_DOUBLE_EQ(result.rate_mbps[1], 0.0);
  EXPECT_DOUBLE_EQ(result.total_mbps, 0.0);
  // Zero-capacity flows must freeze immediately, not loop.
  EXPECT_LE(result.rounds, static_cast<int>(flows.size()));
}

TEST(MaxMinEdgeTest, CoLocatedFlowUnaffectedBySaturation) {
  const dc::DataCenter dc = small_dc(2, 2);
  dc::Occupancy occupancy(dc);
  occupancy.reserve_link(dc.host_link(0), 1000.0);

  // The co-located flow traverses no physical link; the cross-host flow
  // shares a fully reserved uplink.
  const std::vector<Flow> flows = {{0, 0, 250.0}, {0, 1, 500.0}};
  const FairShareResult result = max_min_fair_rates(occupancy, flows);
  EXPECT_DOUBLE_EQ(result.rate_mbps[0], 250.0);
  EXPECT_DOUBLE_EQ(result.rate_mbps[1], 0.0);
  EXPECT_DOUBLE_EQ(result.total_mbps, 250.0);
}

TEST(MaxMinEdgeTest, EqualDemandTieAtSaturationFreezesBoth) {
  const dc::DataCenter dc = small_dc(1, 2);
  // Both flows share h0's 1000 Mbps uplink; the fair share (500) equals the
  // demand of each flow, so demand-freezing and saturation-freezing
  // coincide — both must freeze in the same round.
  const std::vector<Flow> flows = {{0, 1, 500.0}, {0, 1, 500.0}};
  const FairShareResult result = max_min_fair_rates(dc, flows);
  EXPECT_DOUBLE_EQ(result.rate_mbps[0], 500.0);
  EXPECT_DOUBLE_EQ(result.rate_mbps[1], 500.0);
  EXPECT_DOUBLE_EQ(result.total_mbps, 1000.0);
  EXPECT_EQ(result.rounds, 1);
}

TEST(MaxMinEdgeTest, SaturationBelowEqualDemandsSplitsEvenly) {
  const dc::DataCenter dc = small_dc(1, 2);
  const std::vector<Flow> flows = {
      {0, 1, 300.0}, {0, 1, 300.0}, {0, 1, 300.0}, {0, 1, 300.0}};
  const FairShareResult result = max_min_fair_rates(dc, flows);
  for (double rate : result.rate_mbps) EXPECT_DOUBLE_EQ(rate, 250.0);
  EXPECT_DOUBLE_EQ(result.total_mbps, 1000.0);
  // One saturation event freezes everyone: a single round.
  EXPECT_EQ(result.rounds, 1);
}

// Guards the defensive stall branch: each round must freeze at least one
// flow (froze_any), so the round count is bounded by the flow count even on
// instances mixing zero-capacity links, co-located flows, ties, and
// demand-limited flows.
TEST(MaxMinEdgeTest, EveryRoundMakesProgress) {
  const dc::DataCenter dc = small_dc(2, 2);
  dc::Occupancy occupancy(dc);
  occupancy.reserve_link(dc.host_link(3), 1000.0);

  const std::vector<Flow> flows = {
      {0, 1, 800.0},   // bottlenecked on shared h0/h1 uplinks
      {0, 1, 800.0},   // ties with the flow above
      {2, 2, 50.0},    // co-located, demand-limited
      {2, 3, 400.0},   // h3 uplink fully reserved: rate 0
      {0, 2, 100.0},   // cross-rack, demand-limited
  };
  const FairShareResult result = max_min_fair_rates(occupancy, flows);
  ASSERT_EQ(result.rate_mbps.size(), flows.size());
  EXPECT_GE(result.rounds, 1);
  EXPECT_LE(result.rounds, static_cast<int>(flows.size()));
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_GE(result.rate_mbps[i], 0.0);
    EXPECT_LE(result.rate_mbps[i], flows[i].demand_mbps + 1e-9);
  }
  EXPECT_DOUBLE_EQ(result.rate_mbps[2], 50.0);
  EXPECT_DOUBLE_EQ(result.rate_mbps[3], 0.0);
  EXPECT_DOUBLE_EQ(result.rate_mbps[4], 100.0);
  // The tied pair splits h0's uplink after the cross-rack flow took its
  // share: (1000 - 100) / 2 each.
  EXPECT_DOUBLE_EQ(result.rate_mbps[0], 450.0);
  EXPECT_DOUBLE_EQ(result.rate_mbps[1], 450.0);
}

}  // namespace
}  // namespace ostro::net
