// net::release_placement as the exact inverse of commit_placement: a
// place-then-release roundtrip leaves the occupancy bit-identical to fresh
// (FeasibilityIndex and PruneLabels included), double releases throw
// without touching anything, and a randomized place/release soak keeps the
// incremental un-index equal to a fresh rebuild.
#include "net/reservation.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "datacenter/occupancy.h"
#include "helpers.h"
#include "util/rng.h"

namespace ostro::net {
namespace {

using ostro::testing::small_dc;
using ostro::testing::tiny_app;

TEST(ReleasePlacementTest, RoundtripIsBitIdenticalToFresh) {
  const auto datacenter = small_dc(2, 2);
  dc::Occupancy occupancy(datacenter);
  const dc::Occupancy fresh = occupancy;

  const Assignment assignment{0, 1, 2};  // web, db, volume on three hosts
  commit_placement(occupancy, tiny_app(), assignment);
  EXPECT_FALSE(occupancy == fresh);
  EXPECT_TRUE(occupancy.is_active(0));

  release_placement(occupancy, tiny_app(), assignment);
  EXPECT_TRUE(occupancy == fresh);
  EXPECT_EQ(occupancy.active_host_count(), 0u);
  EXPECT_TRUE(occupancy.feasibility().selfcheck());
  EXPECT_TRUE(occupancy.labels().selfcheck(occupancy.feasibility()));
}

TEST(ReleasePlacementTest, DoubleReleaseThrowsAndTouchesNothing) {
  const auto datacenter = small_dc(2, 2);
  dc::Occupancy occupancy(datacenter);
  const Assignment assignment{0, 1, 2};
  commit_placement(occupancy, tiny_app(), assignment);
  release_placement(occupancy, tiny_app(), assignment);

  const dc::Occupancy before = occupancy;
  EXPECT_THROW(release_placement(occupancy, tiny_app(), assignment),
               std::invalid_argument);
  EXPECT_TRUE(occupancy == before);
}

TEST(ReleasePlacementTest, SharedHostStaysActiveUntilLastTenantLeaves) {
  const auto datacenter = small_dc(1, 2);
  dc::Occupancy occupancy(datacenter);
  // Two stacks overlapping on host 0: releasing one must not deactivate
  // the host or disturb the other stack's reservations.
  const Assignment a{0, 0, 1};
  const Assignment b{0, 1, 1};
  commit_placement(occupancy, tiny_app(), a);
  const dc::Occupancy only_a = occupancy;
  commit_placement(occupancy, tiny_app(), b);

  release_placement(occupancy, tiny_app(), b);
  EXPECT_TRUE(occupancy == only_a);
  EXPECT_TRUE(occupancy.is_active(0));

  release_placement(occupancy, tiny_app(), a);
  EXPECT_TRUE(occupancy == dc::Occupancy(datacenter));
}

TEST(ReleasePlacementTest, DeactivateOptOutLeavesHostsActive) {
  const auto datacenter = small_dc(1, 2);
  dc::Occupancy occupancy(datacenter);
  const Assignment assignment{0, 1, 1};
  commit_placement(occupancy, tiny_app(), assignment);
  release_placement(occupancy, tiny_app(), assignment,
                    /*deactivate_emptied=*/false);
  // Hosts modeling untracked background tenants keep their active flag;
  // everything else is back to fresh.
  EXPECT_TRUE(occupancy.is_active(0));
  EXPECT_TRUE(occupancy.is_active(1));
  EXPECT_DOUBLE_EQ(occupancy.used(0).vcpus, 0.0);
  EXPECT_DOUBLE_EQ(occupancy.total_reserved_mbps(), 0.0);
}

TEST(ReleasePlacementTest, RandomizedPlacementSoakDrainsToFresh) {
  const auto datacenter = small_dc(2, 4);
  dc::Occupancy occupancy(datacenter);
  util::Rng rng(23);

  struct Live {
    topo::AppTopology topology;
    Assignment assignment;
  };
  std::vector<Live> live;
  for (int step = 0; step < 200; ++step) {
    if (!live.empty() && rng.chance(0.45)) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(live.size()) - 1));
      release_placement(occupancy, live[pick].topology,
                        live[pick].assignment);
      live.erase(live.begin() + static_cast<long>(pick));
    } else {
      // Random host pair for the tiny web/db/volume app; skip infeasible
      // draws — the soak only needs legal interleavings.
      Assignment assignment(3);
      for (auto& h : assignment) {
        h = static_cast<dc::HostId>(rng.uniform_int(
            0, static_cast<int>(datacenter.host_count()) - 1));
      }
      try {
        commit_placement(occupancy, tiny_app(), assignment);
      } catch (const std::invalid_argument&) {
        continue;
      }
      live.push_back({tiny_app(), assignment});
    }
    if (step % 40 == 0) {
      ASSERT_TRUE(occupancy.feasibility().selfcheck());
      ASSERT_TRUE(occupancy.labels().selfcheck(occupancy.feasibility()));
    }
  }
  while (!live.empty()) {
    release_placement(occupancy, live.back().topology,
                      live.back().assignment);
    live.pop_back();
  }
  EXPECT_TRUE(occupancy == dc::Occupancy(datacenter));
}

}  // namespace
}  // namespace ostro::net
