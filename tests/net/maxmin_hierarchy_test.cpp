// Max-min fairness across the deeper hierarchy: ToR-, pod- and site-level
// bottlenecks, and conservation/monotonicity properties under randomized
// flow sets.
#include <gtest/gtest.h>

#include "helpers.h"
#include "net/maxmin.h"
#include "sim/clusters.h"

namespace ostro::net {
namespace {

using ostro::testing::two_site_dc;

/// 1 site, 2 pods x 2 racks x 2 hosts with a deliberately thin pod uplink.
dc::DataCenter thin_pod_dc(double pod_uplink) {
  dc::DataCenterBuilder builder;
  const auto site = builder.add_site("s", 100000.0);
  for (int p = 0; p < 2; ++p) {
    const auto pod =
        builder.add_pod(site, "p" + std::to_string(p), pod_uplink);
    for (int r = 0; r < 2; ++r) {
      const auto rack = builder.add_rack(
          pod, "p" + std::to_string(p) + "r" + std::to_string(r), 50000.0);
      for (int h = 0; h < 2; ++h) {
        builder.add_host(rack,
                         "p" + std::to_string(p) + "r" + std::to_string(r) +
                             "h" + std::to_string(h),
                         {8.0, 16.0, 500.0}, 50000.0);
      }
    }
  }
  return builder.build();
}

TEST(MaxMinHierarchyTest, PodUplinkIsTheBottleneck) {
  const auto dc = thin_pod_dc(1000.0);  // 1 Gbps pod uplinks
  // Four cross-pod flows from distinct hosts of pod 0 to pod 1: each pod
  // uplink carries all four, so each flow gets 250.
  std::vector<Flow> flows;
  for (dc::HostId h = 0; h < 4; ++h) {
    flows.push_back({h, static_cast<dc::HostId>(h + 4), 10000.0});
  }
  const FairShareResult result = max_min_fair_rates(dc, flows);
  for (const double rate : result.rate_mbps) {
    EXPECT_NEAR(rate, 250.0, 1e-6);
  }
}

TEST(MaxMinHierarchyTest, IntraPodTrafficIgnoresPodUplink) {
  const auto dc = thin_pod_dc(1000.0);
  // Cross-rack but intra-pod: only host + ToR links involved.
  const FairShareResult result =
      max_min_fair_rates(dc, {{0, 2, 30000.0}});
  EXPECT_NEAR(result.rate_mbps[0], 30000.0, 1e-6);  // demand-limited
}

TEST(MaxMinHierarchyTest, SiteInterconnectBottleneck) {
  const auto dc = two_site_dc(1, 2);  // site uplinks 8000
  std::vector<Flow> flows;
  for (int i = 0; i < 4; ++i) {
    flows.push_back({0, 2, 100000.0});  // host0 site0 -> host2 site1
    flows.push_back({1, 3, 100000.0});
  }
  const FairShareResult result = max_min_fair_rates(dc, flows);
  double total = 0.0;
  for (const double rate : result.rate_mbps) total += rate;
  // All eight flows share the two hosts' 1000-uplinks first: 4 flows per
  // host uplink -> 250 each.
  EXPECT_NEAR(total, 2000.0, 1e-6);
}

TEST(MaxMinHierarchyTest, RandomFlowsRespectEveryCapacity) {
  util::Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    const auto dc = thin_pod_dc(2000.0 + 500.0 * trial);
    std::vector<Flow> flows;
    const int n = 3 + static_cast<int>(rng.next_below(10));
    for (int i = 0; i < n; ++i) {
      const auto src = static_cast<dc::HostId>(rng.next_below(8));
      auto dst = static_cast<dc::HostId>(rng.next_below(8));
      if (dst == src) dst = (dst + 1) % 8;
      flows.push_back({src, dst, 100.0 * static_cast<double>(rng.uniform_int(1, 400))});
    }
    const FairShareResult result = max_min_fair_rates(dc, flows);
    std::vector<double> used(dc.link_count(), 0.0);
    std::vector<dc::LinkId> links;
    for (std::size_t f = 0; f < flows.size(); ++f) {
      EXPECT_GE(result.rate_mbps[f], -1e-9);
      EXPECT_LE(result.rate_mbps[f], flows[f].demand_mbps + 1e-6);
      links.clear();
      dc.path_links(flows[f].src, flows[f].dst, links);
      for (const auto link : links) used[link] += result.rate_mbps[f];
    }
    for (std::size_t l = 0; l < used.size(); ++l) {
      EXPECT_LE(used[l],
                dc.link_capacity(static_cast<dc::LinkId>(l)) + 1e-6)
          << "trial " << trial << " link " << l;
    }
  }
}

TEST(MaxMinHierarchyTest, AddingAFlowNeverHelpsExistingOnes) {
  const auto dc = thin_pod_dc(1000.0);
  std::vector<Flow> flows{{0, 4, 10000.0}, {1, 5, 10000.0}};
  const FairShareResult before = max_min_fair_rates(dc, flows);
  flows.push_back({2, 6, 10000.0});
  const FairShareResult after = max_min_fair_rates(dc, flows);
  for (std::size_t f = 0; f < 2; ++f) {
    EXPECT_LE(after.rate_mbps[f], before.rate_mbps[f] + 1e-6);
  }
}

}  // namespace
}  // namespace ostro::net
