#include "net/maxmin.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "helpers.h"

namespace ostro::net {
namespace {

using ostro::testing::small_dc;

TEST(MaxMinTest, EmptyFlows) {
  const dc::DataCenter dc = small_dc();
  const FairShareResult result = max_min_fair_rates(dc, {});
  EXPECT_TRUE(result.rate_mbps.empty());
  EXPECT_DOUBLE_EQ(result.total_mbps, 0.0);
}

TEST(MaxMinTest, SingleFlowLimitedByDemand) {
  const dc::DataCenter dc = small_dc();  // host uplinks 1000
  const FairShareResult result =
      max_min_fair_rates(dc, {{0, 1, 300.0}});
  ASSERT_EQ(result.rate_mbps.size(), 1u);
  EXPECT_NEAR(result.rate_mbps[0], 300.0, 1e-6);
}

TEST(MaxMinTest, SingleFlowLimitedByLink) {
  const dc::DataCenter dc = small_dc();
  const FairShareResult result =
      max_min_fair_rates(dc, {{0, 1, 5000.0}});
  EXPECT_NEAR(result.rate_mbps[0], 1000.0, 1e-6);  // host uplink cap
}

TEST(MaxMinTest, CoLocatedFlowGetsFullDemand) {
  const dc::DataCenter dc = small_dc();
  const FairShareResult result =
      max_min_fair_rates(dc, {{0, 0, 123456.0}});
  EXPECT_NEAR(result.rate_mbps[0], 123456.0, 1e-6);
}

TEST(MaxMinTest, EqualShareOnSharedBottleneck) {
  const dc::DataCenter dc = small_dc(2, 2);
  // Two flows out of host 0 share its 1000 Mbps uplink.
  const FairShareResult result = max_min_fair_rates(
      dc, {{0, 1, 10000.0}, {0, 2, 10000.0}});
  EXPECT_NEAR(result.rate_mbps[0], 500.0, 1e-6);
  EXPECT_NEAR(result.rate_mbps[1], 500.0, 1e-6);
}

TEST(MaxMinTest, SmallDemandReleasesShareToOthers) {
  const dc::DataCenter dc = small_dc(2, 2);
  const FairShareResult result = max_min_fair_rates(
      dc, {{0, 1, 100.0}, {0, 2, 10000.0}});
  EXPECT_NEAR(result.rate_mbps[0], 100.0, 1e-6);
  EXPECT_NEAR(result.rate_mbps[1], 900.0, 1e-6);
}

TEST(MaxMinTest, TorBottleneckAcrossRacks) {
  // 4 hosts in 2 racks; rack uplink 4000, host uplink 1000.  Eight
  // cross-rack flows from distinct sources saturate... host links first
  // (1000 each); with 2 flows per source host they get 500 each.
  const dc::DataCenter dc = small_dc(2, 2);
  std::vector<Flow> flows;
  for (int i = 0; i < 2; ++i) {
    flows.push_back({0, 2, 10000.0});
    flows.push_back({1, 3, 10000.0});
  }
  const FairShareResult result = max_min_fair_rates(dc, flows);
  for (const double rate : result.rate_mbps) EXPECT_NEAR(rate, 500.0, 1e-6);
  EXPECT_NEAR(result.total_mbps, 2000.0, 1e-6);
}

TEST(MaxMinTest, MaxMinProperty) {
  // No flow can be increased without decreasing a flow of smaller-or-equal
  // rate: verify every non-demand-capped flow crosses a saturated link.
  const dc::DataCenter dc = small_dc(2, 3);
  std::vector<Flow> flows = {
      {0, 3, 800.0}, {0, 4, 600.0}, {1, 3, 900.0},
      {2, 5, 400.0}, {1, 0, 200.0},
  };
  const FairShareResult result = max_min_fair_rates(dc, flows);
  // Recompute link usage.
  std::vector<double> used(dc.link_count(), 0.0);
  std::vector<std::vector<dc::LinkId>> paths(flows.size());
  for (std::size_t f = 0; f < flows.size(); ++f) {
    dc.path_links(flows[f].src, flows[f].dst, paths[f]);
    for (const auto link : paths[f]) used[link] += result.rate_mbps[f];
  }
  for (std::size_t l = 0; l < used.size(); ++l) {
    EXPECT_LE(used[l],
              dc.link_capacity(static_cast<dc::LinkId>(l)) + 1e-6);
  }
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (result.rate_mbps[f] >= flows[f].demand_mbps - 1e-6) continue;
    bool crosses_saturated = false;
    for (const auto link : paths[f]) {
      if (used[link] >=
          dc.link_capacity(static_cast<dc::LinkId>(link)) - 1e-6) {
        crosses_saturated = true;
        break;
      }
    }
    EXPECT_TRUE(crosses_saturated) << "flow " << f << " is not bottlenecked";
  }
}

TEST(MaxMinTest, RatesNeverExceedDemand) {
  const dc::DataCenter dc = small_dc(2, 3);
  std::vector<Flow> flows;
  for (dc::HostId h = 0; h < 6; ++h) {
    flows.push_back({h, static_cast<dc::HostId>((h + 1) % 6),
                     100.0 * static_cast<double>(h + 1)});
  }
  const FairShareResult result = max_min_fair_rates(dc, flows);
  for (std::size_t f = 0; f < flows.size(); ++f) {
    EXPECT_LE(result.rate_mbps[f], flows[f].demand_mbps + 1e-6);
    EXPECT_GE(result.rate_mbps[f], 0.0);
  }
}

TEST(MaxMinTest, NonPositiveDemandThrows) {
  const dc::DataCenter dc = small_dc();
  EXPECT_THROW((void)max_min_fair_rates(dc, {{0, 1, 0.0}}),
               std::invalid_argument);
  EXPECT_THROW((void)max_min_fair_rates(dc, {{0, 1, -5.0}}),
               std::invalid_argument);
}

TEST(MaxMinTest, OccupancyReducesCapacity) {
  const dc::DataCenter dc = small_dc();
  dc::Occupancy occupancy(dc);
  occupancy.reserve_link(dc.host_link(0), 800.0);  // 200 left
  const FairShareResult result =
      max_min_fair_rates(occupancy, {{0, 1, 10000.0}});
  EXPECT_NEAR(result.rate_mbps[0], 200.0, 1e-6);
}

TEST(MaxMinTest, FullyReservedLinkGivesZero) {
  const dc::DataCenter dc = small_dc();
  dc::Occupancy occupancy(dc);
  occupancy.reserve_link(dc.host_link(0), 1000.0);
  const FairShareResult result =
      max_min_fair_rates(occupancy, {{0, 1, 500.0}});
  EXPECT_NEAR(result.rate_mbps[0], 0.0, 1e-6);
}

}  // namespace
}  // namespace ostro::net
