#include "datacenter/dot.h"

#include <gtest/gtest.h>

#include "core/scheduler.h"
#include "helpers.h"

namespace ostro::dc {
namespace {

using ostro::testing::small_dc;

topo::AppTopology dot_app() {
  topo::TopologyBuilder builder;
  builder.add_vm("web", {2.0, 4.0, 0.0});
  builder.add_vm("db", {4.0, 8.0, 0.0});
  builder.require_tags("db", {"ssd"});
  builder.add_volume("data", 120.0);
  builder.connect("web", "db", 100.0, 30.0);
  builder.connect("db", "data", 200.0);
  builder.add_zone("apart", topo::DiversityLevel::kHost,
                   std::vector<std::string>{"web", "db"});
  builder.add_affinity("near", topo::DiversityLevel::kRack,
                       std::vector<std::string>{"db", "data"});
  return builder.build();
}

TEST(DotTest, TopologyDotMentionsEverything) {
  const std::string dot = topology_to_dot(dot_app());
  EXPECT_NE(dot.find("graph application"), std::string::npos);
  EXPECT_NE(dot.find("\"web\""), std::string::npos);
  EXPECT_NE(dot.find("shape=cylinder"), std::string::npos);  // the volume
  EXPECT_NE(dot.find("100 Mbps"), std::string::npos);
  EXPECT_NE(dot.find("<= 30 us"), std::string::npos);   // latency budget
  EXPECT_NE(dot.find("dz:apart"), std::string::npos);
  EXPECT_NE(dot.find("affinity:near"), std::string::npos);
  EXPECT_NE(dot.find("[ssd]"), std::string::npos);      // required tags
  // Balanced braces (cheap well-formedness check).
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(DotTest, PlacementDotClustersByHost) {
  const auto datacenter = small_dc(2, 2);
  const Occupancy occupancy(datacenter);
  const auto app = dot_app();
  // The small_dc hosts carry no tags; drop the requirement via a fresh app.
  topo::TopologyBuilder builder;
  builder.add_vm("web", {2.0, 4.0, 0.0});
  builder.add_vm("db", {4.0, 8.0, 0.0});
  builder.connect("web", "db", 100.0);
  const auto simple = builder.build();
  const core::Placement placement = core::place_topology(
      occupancy, simple, core::Algorithm::kEg, core::SearchConfig{}, nullptr,
      nullptr);
  ASSERT_TRUE(placement.feasible);
  const std::string dot =
      placement_to_dot(simple, placement.assignment, datacenter);
  EXPECT_NE(dot.find("graph placement"), std::string::npos);
  EXPECT_NE(dot.find("rack"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_0"), std::string::npos);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(DotTest, PlacementDotRejectsBadAssignments) {
  const auto datacenter = small_dc();
  const auto app = dot_app();
  EXPECT_THROW((void)placement_to_dot(app, {0}, datacenter),
               std::invalid_argument);
  EXPECT_THROW(
      (void)placement_to_dot(app, {0, 1, topo::kInvalidNode}, datacenter),
      std::invalid_argument);
}

TEST(DotTest, EscapingHandlesQuotes) {
  topo::TopologyBuilder builder;
  builder.add_vm("a\"b", {1.0, 1.0, 0.0});
  const std::string dot = topology_to_dot(builder.build());
  EXPECT_NE(dot.find("a\\\"b"), std::string::npos);
}

}  // namespace
}  // namespace ostro::dc
