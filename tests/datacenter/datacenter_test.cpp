#include "datacenter/datacenter.h"

#include <gtest/gtest.h>

#include "helpers.h"

namespace ostro::dc {
namespace {

using ostro::testing::small_dc;
using ostro::testing::two_site_dc;

TEST(DataCenterBuilderTest, BuildsHierarchy) {
  const DataCenter dc = small_dc(2, 2);
  EXPECT_EQ(dc.host_count(), 4u);
  EXPECT_EQ(dc.racks().size(), 2u);
  EXPECT_EQ(dc.pods().size(), 1u);
  EXPECT_EQ(dc.sites().size(), 1u);
  EXPECT_EQ(dc.racks()[0].hosts.size(), 2u);
  EXPECT_EQ(dc.host(0).rack, 0u);
  EXPECT_EQ(dc.host(3).rack, 1u);
}

TEST(DataCenterBuilderTest, RejectsInvalidReferences) {
  DataCenterBuilder builder;
  EXPECT_THROW((void)builder.add_pod(0, "pod", 100.0), std::invalid_argument);
  const auto site = builder.add_site("s", 100.0);
  EXPECT_THROW((void)builder.add_rack(5, "rack", 100.0),
               std::invalid_argument);
  const auto pod = builder.add_pod(site, "pod", 100.0);
  EXPECT_THROW(
      (void)builder.add_host(9, "h", {1.0, 1.0, 1.0}, 100.0),
      std::invalid_argument);
  const auto rack = builder.add_rack(pod, "rack", 100.0);
  EXPECT_THROW(
      (void)builder.add_host(rack, "h", {-1.0, 1.0, 1.0}, 100.0),
      std::invalid_argument);
  EXPECT_THROW((void)builder.add_host(rack, "h", {1.0, 1.0, 1.0}, -5.0),
               std::invalid_argument);
}

TEST(DataCenterBuilderTest, EmptyBuildThrows) {
  DataCenterBuilder builder;
  (void)builder.add_site("s", 100.0);
  EXPECT_THROW((void)builder.build(), std::invalid_argument);
}

TEST(DataCenterTest, ScopeBetween) {
  const DataCenter dc = two_site_dc(2, 2);  // 2 sites x 2 racks x 2 hosts
  EXPECT_EQ(dc.scope_between(0, 0), Scope::kSameHost);
  EXPECT_EQ(dc.scope_between(0, 1), Scope::kSameRack);
  EXPECT_EQ(dc.scope_between(0, 2), Scope::kSamePod);
  EXPECT_EQ(dc.scope_between(0, 4), Scope::kCrossSite);
}

TEST(DataCenterTest, HopCounts) {
  EXPECT_EQ(hop_count(Scope::kSameHost), 0);
  EXPECT_EQ(hop_count(Scope::kSameRack), 2);
  EXPECT_EQ(hop_count(Scope::kSamePod), 4);
  EXPECT_EQ(hop_count(Scope::kSameSite), 6);
  EXPECT_EQ(hop_count(Scope::kCrossSite), 8);
}

TEST(DataCenterTest, SeparatedAt) {
  const DataCenter dc = two_site_dc(2, 2);
  using topo::DiversityLevel;
  EXPECT_FALSE(dc.separated_at(0, 0, DiversityLevel::kHost));
  EXPECT_TRUE(dc.separated_at(0, 1, DiversityLevel::kHost));
  EXPECT_FALSE(dc.separated_at(0, 1, DiversityLevel::kRack));
  EXPECT_TRUE(dc.separated_at(0, 2, DiversityLevel::kRack));
  EXPECT_FALSE(dc.separated_at(0, 2, DiversityLevel::kDatacenter));
  EXPECT_TRUE(dc.separated_at(0, 4, DiversityLevel::kDatacenter));
}

TEST(DataCenterTest, PathLinksSameHostIsEmpty) {
  const DataCenter dc = small_dc();
  std::vector<LinkId> links;
  dc.path_links(0, 0, links);
  EXPECT_TRUE(links.empty());
}

TEST(DataCenterTest, PathLinksSameRack) {
  const DataCenter dc = small_dc(2, 2);
  std::vector<LinkId> links;
  dc.path_links(0, 1, links);
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links[0], dc.host_link(0));
  EXPECT_EQ(links[1], dc.host_link(1));
}

TEST(DataCenterTest, PathLinksCrossRack) {
  const DataCenter dc = small_dc(2, 2);
  std::vector<LinkId> links;
  dc.path_links(0, 2, links);
  ASSERT_EQ(links.size(), 4u);
  EXPECT_EQ(links[2], dc.rack_link(0));
  EXPECT_EQ(links[3], dc.rack_link(1));
}

TEST(DataCenterTest, PathLinksCrossSite) {
  const DataCenter dc = two_site_dc(1, 1);  // 2 hosts, one per site
  std::vector<LinkId> links;
  dc.path_links(0, 1, links);
  // host, host, tor, tor, pod, pod, site, site.
  ASSERT_EQ(links.size(), 8u);
  EXPECT_EQ(links[6], dc.site_link(0));
  EXPECT_EQ(links[7], dc.site_link(1));
}

TEST(DataCenterTest, LinkCapacityByLevel) {
  const DataCenter dc = small_dc(2, 2);
  EXPECT_DOUBLE_EQ(dc.link_capacity(dc.host_link(0)), 1000.0);
  EXPECT_DOUBLE_EQ(dc.link_capacity(dc.rack_link(1)), 4000.0);
  EXPECT_DOUBLE_EQ(dc.link_capacity(dc.pod_link(0)), 16000.0);
  EXPECT_DOUBLE_EQ(dc.link_capacity(dc.site_link(0)), 16000.0);
  EXPECT_THROW((void)dc.link_capacity(static_cast<LinkId>(dc.link_count())),
               std::out_of_range);
}

TEST(DataCenterTest, LinkNames) {
  const DataCenter dc = small_dc(1, 1);
  EXPECT_EQ(dc.link_name(dc.host_link(0)), "host:h0-0");
  EXPECT_EQ(dc.link_name(dc.rack_link(0)), "tor:rack0");
  EXPECT_EQ(dc.link_name(dc.pod_link(0)), "pod:pod0");
  EXPECT_EQ(dc.link_name(dc.site_link(0)), "site:site0");
}

TEST(DataCenterTest, LinkCountLayout) {
  const DataCenter dc = small_dc(2, 3);  // 6 hosts + 2 racks + 1 pod + 1 site
  EXPECT_EQ(dc.link_count(), 10u);
}

TEST(DataCenterTest, MaxHostCapacityIsComponentwiseMax) {
  DataCenterBuilder builder;
  const auto site = builder.add_site("s", 1000.0);
  const auto pod = builder.add_pod(site, "p", 1000.0);
  const auto rack = builder.add_rack(pod, "r", 1000.0);
  builder.add_host(rack, "big-cpu", {32.0, 8.0, 100.0}, 500.0);
  builder.add_host(rack, "big-mem", {4.0, 64.0, 200.0}, 800.0);
  const DataCenter dc = builder.build();
  EXPECT_EQ(dc.max_host_capacity(), (topo::Resources{32.0, 64.0, 200.0}));
  EXPECT_DOUBLE_EQ(dc.max_host_uplink_mbps(), 800.0);
}

TEST(DataCenterTest, MaxScopeByStructure) {
  EXPECT_EQ(small_dc(1, 1).max_scope(), Scope::kSameHost);
  EXPECT_EQ(small_dc(1, 2).max_scope(), Scope::kSameRack);
  EXPECT_EQ(small_dc(3, 2).max_scope(), Scope::kSamePod);
  EXPECT_EQ(two_site_dc().max_scope(), Scope::kCrossSite);
}

TEST(DataCenterTest, BadHostAccessThrows) {
  const DataCenter dc = small_dc();
  EXPECT_THROW((void)dc.host(999), std::out_of_range);
  EXPECT_THROW((void)dc.scope_between(0, 999), std::out_of_range);
}

}  // namespace
}  // namespace ostro::dc
