// dc::ShardLayout: the partitioning invariant (whole sites, or pods of one
// site), deterministic policy, id-mapping round trips, link-ownership
// totality, the single-shard identity mapping, and the overlay stitch.
#include "datacenter/shard.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <stdexcept>
#include <vector>

#include "datacenter/occupancy.h"
#include "helpers.h"
#include "sim/clusters.h"

namespace ostro::dc {
namespace {

using ostro::testing::small_dc;
using ostro::testing::two_site_dc;

// Every host maps into exactly one shard, round trips through the local id
// mapping, and lands in the shard of its pod.
void check_partition_invariants(const DataCenter& global,
                                std::uint32_t shard_count) {
  const ShardLayout layout(global, shard_count);
  ASSERT_EQ(layout.shard_count(), shard_count);

  std::size_t total_hosts = 0;
  for (std::uint32_t k = 0; k < shard_count; ++k) {
    const DataCenter& shard = layout.shard_datacenter(k);
    ASSERT_GT(shard.host_count(), 0u) << "empty shard " << k;
    total_hosts += shard.host_count();
    for (HostId local = 0; local < shard.host_count(); ++local) {
      const HostId g = layout.to_global_host(k, local);
      EXPECT_EQ(layout.shard_of_host(g), k);
      EXPECT_EQ(layout.to_local_host(g), local);
      // The rebuilt host carries the global host's physical identity.
      EXPECT_EQ(shard.host(local).name, global.host(g).name);
      EXPECT_EQ(shard.host(local).capacity.vcpus,
                global.host(g).capacity.vcpus);
      EXPECT_EQ(shard.host(local).uplink_mbps, global.host(g).uplink_mbps);
    }
  }
  EXPECT_EQ(total_hosts, global.host_count());

  // Pods never split, and each shard is whole-sites or pods-of-one-site.
  for (std::uint32_t k = 0; k < shard_count; ++k) {
    std::set<std::uint32_t> sites;
    bool any_split = false;
    for (const Pod& pod : global.pods()) {
      if (layout.shard_of_pod(pod.id) != k) continue;
      sites.insert(pod.datacenter);
      if (layout.site_split(pod.datacenter)) any_split = true;
    }
    if (any_split) {
      // Pods of a split site: the shard must hold pods of that ONE site.
      EXPECT_EQ(sites.size(), 1u) << "shard " << k
                                  << " mixes a split site with others";
    }
  }

  // A site is marked split iff its pods are spread over >1 shard.
  for (const Site& site : global.sites()) {
    std::set<std::uint32_t> shards;
    for (const std::uint32_t pod : site.pods) {
      shards.insert(layout.shard_of_pod(pod));
    }
    EXPECT_EQ(layout.site_split(site.id), shards.size() > 1);
  }

  // Link ownership is total: every global link is either owned (with a
  // valid round-tripping local id) or ledger-owned (split-site uplink).
  std::size_t shared_seen = 0;
  for (LinkId link = 0; link < global.link_count(); ++link) {
    const std::uint32_t owner = layout.link_owner(link);
    if (owner == ShardLayout::kLedgerOwned) {
      ++shared_seen;
      continue;
    }
    ASSERT_LT(owner, shard_count);
    const LinkId local = layout.to_local_link(link);
    EXPECT_EQ(layout.to_global_link(owner, local), link);
    // Same physical capacity on both sides of the mapping.
    EXPECT_EQ(layout.shard_datacenter(owner).link_capacity(local),
              global.link_capacity(link));
  }
  EXPECT_EQ(shared_seen, layout.shared_links().size());
  for (const LinkId link : layout.shared_links()) {
    EXPECT_EQ(layout.link_owner(link), ShardLayout::kLedgerOwned);
  }
}

TEST(ShardLayoutTest, PartitionInvariantsAcrossShardCounts) {
  const DataCenter wan = sim::make_wan(3, 2, 2, 2);  // 3 sites x 2 pods
  for (const std::uint32_t n : {1u, 2u, 3u, 4u, 6u}) {
    SCOPED_TRACE(n);
    check_partition_invariants(wan, n);
  }
}

TEST(ShardLayoutTest, WholeSiteBinningLeavesNoSharedLinks) {
  const DataCenter wan = sim::make_wan(4, 2, 1, 2);
  const ShardLayout layout(wan, 2);  // 2 shards over 4 sites: whole sites
  EXPECT_TRUE(layout.shared_links().empty());
  for (const Site& site : wan.sites()) {
    EXPECT_FALSE(layout.site_split(site.id));
  }
}

TEST(ShardLayoutTest, SplitSiteUplinksAreLedgerOwned) {
  const DataCenter wan = sim::make_wan(2, 2, 1, 2);
  const ShardLayout layout(wan, 4);  // 4 shards over 2 sites: both split
  ASSERT_EQ(layout.shared_links().size(), 2u);
  for (const Site& site : wan.sites()) {
    EXPECT_TRUE(layout.site_split(site.id));
    EXPECT_EQ(layout.link_owner(wan.site_link(site.id)),
              ShardLayout::kLedgerOwned);
  }
}

TEST(ShardLayoutTest, SingleShardIsIdentityMapping) {
  const DataCenter global = two_site_dc(2, 3);
  const ShardLayout layout(global, 1);
  const DataCenter& shard = layout.shard_datacenter(0);
  ASSERT_EQ(shard.host_count(), global.host_count());
  ASSERT_EQ(shard.link_count(), global.link_count());
  for (HostId h = 0; h < global.host_count(); ++h) {
    EXPECT_EQ(layout.to_local_host(h), h);
    EXPECT_EQ(layout.to_global_host(0, h), h);
    EXPECT_EQ(shard.host(h).name, global.host(h).name);
  }
  for (LinkId l = 0; l < global.link_count(); ++l) {
    EXPECT_EQ(layout.link_owner(l), 0u);
    EXPECT_EQ(layout.to_local_link(l), l);
    EXPECT_EQ(shard.link_capacity(l), global.link_capacity(l));
  }
  // Same paths, link for link: placements plan identically.
  for (HostId a = 0; a < global.host_count(); ++a) {
    for (HostId b = 0; b < global.host_count(); ++b) {
      const PathLinks gp = global.path_between(a, b);
      const PathLinks sp = shard.path_between(a, b);
      ASSERT_EQ(gp.size(), sp.size());
      for (std::size_t i = 0; i < gp.size(); ++i) {
        EXPECT_EQ(gp[i], sp[i]);
      }
    }
  }
}

TEST(ShardLayoutTest, ConstructorRejectsBadShardCounts) {
  const DataCenter global = small_dc(2, 2);  // one site, one pod
  EXPECT_THROW(ShardLayout(global, 0), std::invalid_argument);
  EXPECT_THROW(ShardLayout(global, 2), std::invalid_argument);  // > pods
}

TEST(ShardLayoutTest, OverlayStitchesLoadsLinksAndActiveFlags) {
  const DataCenter global = two_site_dc(1, 2);  // 2 sites x 1 pod x 2 hosts
  const ShardLayout layout(global, 2);
  Occupancy shard0(layout.shard_datacenter(0));
  Occupancy shard1(layout.shard_datacenter(1));
  shard0.add_host_load(0, {2.0, 4.0, 0.0});
  shard0.reserve_link(layout.shard_datacenter(0).host_link(0), 150.0);
  shard1.add_host_load(1, {1.0, 1.0, 10.0});

  Occupancy stitched(global);
  layout.overlay(stitched, 0, shard0);
  layout.overlay(stitched, 1, shard1);

  const HostId g0 = layout.to_global_host(0, 0);
  const HostId g1 = layout.to_global_host(1, 1);
  EXPECT_EQ(stitched.used(g0).vcpus, 2.0);
  EXPECT_EQ(stitched.used(g0).mem_gb, 4.0);
  EXPECT_EQ(stitched.used(g1).disk_gb, 10.0);
  EXPECT_TRUE(stitched.is_active(g0));
  EXPECT_TRUE(stitched.is_active(g1));
  EXPECT_EQ(stitched.active_host_count(), 2u);
  EXPECT_EQ(stitched.link_used_mbps(global.host_link(g0)), 150.0);

  // Overlaying empty shard occupancies touches nothing.
  Occupancy pristine(global);
  layout.overlay(pristine, 0, Occupancy(layout.shard_datacenter(0)));
  layout.overlay(pristine, 1, Occupancy(layout.shard_datacenter(1)));
  EXPECT_EQ(pristine.active_host_count(), 0u);
  for (LinkId l = 0; l < global.link_count(); ++l) {
    EXPECT_EQ(pristine.link_used_mbps(l), 0.0);
  }
}

}  // namespace
}  // namespace ostro::dc
