// dc::fragmentation: the unusable-free accounting against a reference VM,
// the stranded-uplink and dispersion measures, and the degenerate cases
// (empty cluster, full cluster, zero-dimension reference).
#include "datacenter/fragmentation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "datacenter/occupancy.h"
#include "helpers.h"

namespace ostro::dc {
namespace {

using ostro::testing::small_dc;

TEST(FragmentationTest, EmptyClusterHasNoCpuFragmentation) {
  const auto datacenter = small_dc(2, 2);  // 8-core/16-GB hosts
  const Occupancy occupancy(datacenter);
  const FragmentationStats stats =
      compute_fragmentation(occupancy, {2.0, 2.0, 0.0});

  EXPECT_DOUBLE_EQ(stats.used_cpu_fraction, 0.0);
  EXPECT_DOUBLE_EQ(stats.active_host_fraction, 0.0);
  EXPECT_DOUBLE_EQ(stats.feasible_host_fraction, 1.0);
  // Every free vcpu is reachable by 2/2 VMs (8 = 4 units of 2)...
  EXPECT_DOUBLE_EQ(stats.unusable_free_cpu_fraction, 0.0);
  // ...but each host strands the memory beyond its cpu-bound unit count:
  // 4 units use 8 of 16 GB.
  EXPECT_DOUBLE_EQ(stats.unusable_free_mem_fraction, 0.5);
  EXPECT_DOUBLE_EQ(stats.frag_index, 0.5);
  EXPECT_DOUBLE_EQ(stats.stranded_uplink_fraction, 0.0);
  EXPECT_EQ(stats.total_placeable_vms, 16u);   // 4 hosts x 4 units
  EXPECT_EQ(stats.largest_placeable_stack_vms, 8u);  // best single rack
  EXPECT_DOUBLE_EQ(stats.rack_free_cpu_cv, 0.0);  // perfectly even
}

TEST(FragmentationTest, SliversCountAsUnusable) {
  const auto datacenter = small_dc(1, 2);
  Occupancy occupancy(datacenter);
  // Host 0: 7 of 8 cores used -> 1 free cpu, below one 2/2 unit.
  occupancy.add_host_load(0, {7.0, 7.0, 0.0});
  const FragmentationStats stats =
      compute_fragmentation(occupancy, {2.0, 2.0, 0.0});

  // Free cpu: 1 (host 0, unusable) + 8 (host 1, all usable).
  EXPECT_DOUBLE_EQ(stats.total_free_cpu, 9.0);
  EXPECT_DOUBLE_EQ(stats.usable_free_cpu, 8.0);
  EXPECT_DOUBLE_EQ(stats.unusable_free_cpu_fraction, 1.0 / 9.0);
  // Host 0 cannot fit one reference VM, so its free uplink is stranded.
  EXPECT_DOUBLE_EQ(stats.stranded_uplink_fraction, 0.5);
  EXPECT_DOUBLE_EQ(stats.feasible_host_fraction, 1.0);  // both still free
}

TEST(FragmentationTest, FullClusterIsFullyFragmentedByConvention) {
  const auto datacenter = small_dc(1, 1);
  Occupancy occupancy(datacenter);
  occupancy.add_host_load(0, {8.0, 16.0, 0.0});
  const FragmentationStats stats =
      compute_fragmentation(occupancy, {2.0, 2.0, 0.0});
  // Nothing free at all: unusable fractions are 0 by the 0/0 convention,
  // and nothing is placeable.
  EXPECT_DOUBLE_EQ(stats.total_free_cpu, 0.0);
  EXPECT_DOUBLE_EQ(stats.frag_index, 0.0);
  EXPECT_EQ(stats.total_placeable_vms, 0u);
  EXPECT_EQ(stats.largest_placeable_stack_vms, 0u);
  EXPECT_DOUBLE_EQ(stats.used_cpu_fraction, 1.0);
}

TEST(FragmentationTest, ZeroDimensionsOfReferenceAreIgnored) {
  const auto datacenter = small_dc(1, 1);
  Occupancy occupancy(datacenter);
  occupancy.add_host_load(0, {6.0, 0.0, 0.0});
  // Reference with mem = 0: units counted on cpu alone (2 free / 1 = 2).
  const FragmentationStats stats =
      compute_fragmentation(occupancy, {1.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(stats.usable_free_cpu, 2.0);
  EXPECT_DOUBLE_EQ(stats.unusable_free_cpu_fraction, 0.0);
  EXPECT_EQ(stats.total_placeable_vms, 2u);
}

TEST(FragmentationTest, DispersionRisesWhenFreeCpuConcentrates) {
  const auto datacenter = small_dc(2, 2);
  Occupancy occupancy(datacenter);
  const FragmentationStats even = compute_fragmentation(occupancy);
  // Empty rack 0, full rack 1: same total free as half-full everywhere,
  // maximally uneven across racks.
  occupancy.add_host_load(2, {8.0, 16.0, 0.0});
  occupancy.add_host_load(3, {8.0, 16.0, 0.0});
  const FragmentationStats skewed = compute_fragmentation(occupancy);
  EXPECT_GT(skewed.rack_free_cpu_cv, even.rack_free_cpu_cv);
  EXPECT_DOUBLE_EQ(skewed.rack_free_cpu_cv, 1.0);  // one rack 16, one 0
}

// Regression: a host-less rack combined with zero free CPU anywhere drove
// the dispersion mean to 0/0 — every frag.* consumer downstream (the
// lifecycle reports via observe_fragmentation) then saw NaN.  The
// degenerate case must report exactly 0.
TEST(FragmentationTest, HostlessRackWithNoFreeCpuReportsZeroNotNaN) {
  DataCenterBuilder builder;
  const auto site = builder.add_site("site0", 16000.0);
  const auto pod = builder.add_pod(site, "pod0", 16000.0);
  const auto rack0 = builder.add_rack(pod, "rack0", 4000.0);
  builder.add_rack(pod, "rack1-empty", 4000.0);  // host-less rack
  builder.add_host(rack0, "h0", {8.0, 16.0, 500.0}, 1000.0);
  const DataCenter datacenter = builder.build();

  Occupancy occupancy(datacenter);
  occupancy.add_host_load(0, {8.0, 16.0, 500.0});  // zero free CPU anywhere

  // Both entry points — the raw computation and the metrics-observing path
  // the lifecycle reports go through — must yield finite stats.
  for (const FragmentationStats& stats :
       {compute_fragmentation(occupancy, {2.0, 2.0, 0.0}),
        observe_fragmentation(occupancy, {2.0, 2.0, 0.0})}) {
    EXPECT_DOUBLE_EQ(stats.rack_free_cpu_cv, 0.0);
    EXPECT_FALSE(std::isnan(stats.rack_free_cpu_cv));
    EXPECT_FALSE(std::isnan(stats.frag_index));
    EXPECT_FALSE(std::isnan(stats.stranded_uplink_fraction));
    EXPECT_DOUBLE_EQ(stats.used_cpu_fraction, 1.0);
  }
}

}  // namespace
}  // namespace ostro::dc
