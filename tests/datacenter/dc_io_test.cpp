#include "datacenter/dc_io.h"

#include <gtest/gtest.h>

#include "helpers.h"
#include "net/reservation.h"
#include "sim/clusters.h"

namespace ostro::dc {
namespace {

using ostro::testing::small_dc;
using ostro::testing::tiny_app;

TEST(DcIoTest, DataCenterRoundTripPreservesStructure) {
  const DataCenter original = sim::make_wan(2, 2, 2, 3);
  const util::Json document = datacenter_to_json(original);
  const DataCenter restored = datacenter_from_json(document);

  EXPECT_EQ(restored.sites().size(), original.sites().size());
  EXPECT_EQ(restored.pods().size(), original.pods().size());
  EXPECT_EQ(restored.racks().size(), original.racks().size());
  ASSERT_EQ(restored.host_count(), original.host_count());
  for (HostId h = 0; h < original.host_count(); ++h) {
    EXPECT_EQ(restored.host(h).name, original.host(h).name);
    EXPECT_EQ(restored.host(h).capacity, original.host(h).capacity);
    EXPECT_DOUBLE_EQ(restored.host(h).uplink_mbps,
                     original.host(h).uplink_mbps);
    EXPECT_EQ(restored.host(h).rack, original.host(h).rack);
  }
  for (int s = 0; s <= static_cast<int>(Scope::kCrossSite); ++s) {
    EXPECT_DOUBLE_EQ(restored.scope_latency_us(static_cast<Scope>(s)),
                     original.scope_latency_us(static_cast<Scope>(s)));
  }
}

TEST(DcIoTest, TagsSurviveRoundTrip) {
  DataCenterBuilder builder;
  const auto site = builder.add_site("s", 1000.0);
  const auto pod = builder.add_pod(site, "p", 1000.0);
  const auto rack = builder.add_rack(pod, "r", 1000.0);
  builder.add_host(rack, "h", {8.0, 16.0, 100.0}, 500.0, {"ssd", "gpu"});
  const DataCenter original = builder.build();
  const DataCenter restored =
      datacenter_from_json(datacenter_to_json(original));
  EXPECT_EQ(restored.host(0).tags,
            (std::vector<std::string>{"gpu", "ssd"}));  // sorted
}

TEST(DcIoTest, MalformedDataCenterRejected) {
  EXPECT_THROW((void)datacenter_from_text("not json"), DcIoError);
  EXPECT_THROW((void)datacenter_from_text("[]"), DcIoError);
  EXPECT_THROW((void)datacenter_from_text(R"({"sites": 5})"), DcIoError);
  EXPECT_THROW((void)datacenter_from_text(R"({"sites": []})"), DcIoError);
  // host missing capacity fields
  EXPECT_THROW((void)datacenter_from_text(R"({
    "sites": [{"name": "s", "pods": [{"name": "p", "racks": [
      {"name": "r", "hosts": [{"name": "h"}]}]}]}]
  })"),
               DcIoError);
  // bad latency vector length
  EXPECT_THROW((void)datacenter_from_text(R"({
    "scope_latencies_us": [1, 2, 3],
    "sites": [{"name": "s", "pods": [{"name": "p", "racks": [
      {"name": "r", "hosts": [
        {"name": "h", "vcpus": 1, "mem_gb": 1, "disk_gb": 1}]}]}]}]
  })"),
               DcIoError);
}

TEST(DcIoTest, OccupancyRoundTripExact) {
  const DataCenter datacenter = small_dc(2, 2);
  Occupancy original(datacenter);
  net::commit_placement(original, tiny_app(), {0, 2, 2});
  original.mark_active(3);  // active-without-load survives too

  const util::Json document = occupancy_to_json(original);
  const Occupancy restored = occupancy_from_json(datacenter, document);
  EXPECT_TRUE(restored == original);
}

TEST(DcIoTest, EmptyOccupancyRoundTrip) {
  const DataCenter datacenter = small_dc();
  const Occupancy original(datacenter);
  const Occupancy restored =
      occupancy_from_json(datacenter, occupancy_to_json(original));
  EXPECT_TRUE(restored == original);
}

TEST(DcIoTest, OccupancyUnknownNamesRejected) {
  const DataCenter datacenter = small_dc();
  EXPECT_THROW((void)occupancy_from_text(
                   datacenter, R"({"hosts": {"ghost": {"vcpus": 1}}})"),
               DcIoError);
  EXPECT_THROW(
      (void)occupancy_from_text(datacenter,
                                R"({"links": {"host:ghost": 10}})"),
      DcIoError);
}

TEST(DcIoTest, OccupancyOverCapacityRejected) {
  const DataCenter datacenter = small_dc();  // 8-core hosts
  EXPECT_THROW((void)occupancy_from_text(
                   datacenter, R"({"hosts": {"h0-0": {"vcpus": 99}}})"),
               DcIoError);
  EXPECT_THROW((void)occupancy_from_text(
                   datacenter, R"({"links": {"host:h0-0": 99999}})"),
               DcIoError);
}

TEST(DcIoTest, PlacementSurvivesPersistenceCycle) {
  // dc -> json -> dc' and occ -> json -> occ' still accept a placement
  // computed against the originals.
  const DataCenter datacenter = small_dc(2, 2);
  Occupancy occupancy(datacenter);
  occupancy.add_host_load(0, {4.0, 4.0, 0.0});

  const DataCenter datacenter2 =
      datacenter_from_json(datacenter_to_json(datacenter));
  const Occupancy occupancy2 =
      occupancy_from_json(datacenter2, occupancy_to_json(occupancy));
  EXPECT_EQ(occupancy2.used(0), occupancy.used(0));
  EXPECT_EQ(occupancy2.active_host_count(), occupancy.active_host_count());
}

}  // namespace
}  // namespace ostro::dc
