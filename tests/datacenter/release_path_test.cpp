// The release direction of OccupancyDelta and Occupancy::deactivate_if_idle:
// staged releases validate against the overlay, replay with the exact
// arithmetic of the direct mutators, never touch active flags, and a
// fill-then-release roundtrip leaves the occupancy (including its
// FeasibilityIndex and PruneLabels) bit-identical to a fresh one.
#include <gtest/gtest.h>

#include <stdexcept>

#include "datacenter/occupancy.h"
#include "datacenter/state_delta.h"
#include "helpers.h"
#include "util/rng.h"

namespace ostro::dc {
namespace {

using ostro::testing::small_dc;

TEST(ReleasePathTest, ReleaseStagingLeavesBaseUntouched) {
  const auto datacenter = small_dc(2, 2);
  Occupancy occupancy(datacenter);
  occupancy.add_host_load(0, {4.0, 4.0, 0.0});
  occupancy.reserve_link(datacenter.host_link(0), 300.0);
  const Occupancy before = occupancy;

  OccupancyDelta delta(occupancy);
  EXPECT_FALSE(delta.has_releases());
  delta.remove_host_load(0, {2.0, 2.0, 0.0});
  delta.release_link(datacenter.host_link(0), 100.0);
  EXPECT_TRUE(delta.has_releases());

  EXPECT_TRUE(occupancy == before);
  const auto avail = delta.available(0);
  EXPECT_DOUBLE_EQ(avail.vcpus, 6.0);
  EXPECT_DOUBLE_EQ(delta.link_available_mbps(datacenter.host_link(0)), 800.0);
}

TEST(ReleasePathTest, OverReleaseThrowsAndStagesNothing) {
  const auto datacenter = small_dc(1, 2);
  Occupancy occupancy(datacenter);
  occupancy.add_host_load(0, {2.0, 2.0, 0.0});
  occupancy.reserve_link(datacenter.host_link(0), 100.0);

  OccupancyDelta delta(occupancy);
  EXPECT_THROW(delta.remove_host_load(0, {3.0, 1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(delta.release_link(datacenter.host_link(0), 200.0),
               std::invalid_argument);
  EXPECT_TRUE(delta.empty());
  EXPECT_FALSE(delta.has_releases());

  // Validation is against the *overlay*: a staged release frees room for a
  // later release of the remainder, and a staged add covers releases the
  // base alone could not.
  delta.remove_host_load(0, {1.0, 1.0, 0.0});
  delta.remove_host_load(0, {1.0, 1.0, 0.0});
  EXPECT_THROW(delta.remove_host_load(0, {1.0, 1.0, 0.0}),
               std::invalid_argument);
  delta.add_host_load(0, {4.0, 4.0, 0.0});
  delta.remove_host_load(0, {4.0, 4.0, 0.0});
  EXPECT_EQ(delta.host_op_count(), 4u);
}

TEST(ReleasePathTest, MixedAddReleaseReplayIsBitIdentical) {
  const auto datacenter = small_dc(2, 4);
  Occupancy staged(datacenter);
  Occupancy direct(datacenter);
  util::Rng rng(7);

  // Random interleaving of fills and releases, applied via one delta batch
  // on `staged` and op by op on `direct`.  Every op that stages cleanly is
  // mirrored directly (validation states coincide, so the direct op cannot
  // throw when the staged one succeeded); apply_delta's replay must then
  // reproduce the direct arithmetic exactly (operator== covers index and
  // labels too).
  for (int round = 0; round < 20; ++round) {
    OccupancyDelta delta(staged);
    for (int op = 0; op < 6; ++op) {
      const HostId h = static_cast<HostId>(
          rng.uniform_int(0, static_cast<int>(datacenter.host_count()) - 1));
      const double cpu = static_cast<double>(rng.uniform_int(1, 2));
      const topo::Resources load{cpu, cpu, 0.0};
      const LinkId link = datacenter.host_link(h);
      if (rng.chance(0.5)) {
        try {
          delta.add_host_load(h, load);
          direct.add_host_load(h, load);
        } catch (const std::invalid_argument&) {
        }
        try {
          delta.reserve_link(link, 50.0);
          direct.reserve_link(link, 50.0);
        } catch (const std::invalid_argument&) {
        }
      } else {
        try {
          delta.remove_host_load(h, load);
          direct.remove_host_load(h, load);
        } catch (const std::invalid_argument&) {
        }
        try {
          delta.release_link(link, 50.0);
          direct.release_link(link, 50.0);
        } catch (const std::invalid_argument&) {
        }
      }
    }
    staged.apply_delta(delta);
  }
  EXPECT_TRUE(staged == direct);
  EXPECT_TRUE(staged.feasibility().selfcheck());
  EXPECT_TRUE(staged.labels().selfcheck(staged.feasibility()));
}

TEST(ReleasePathTest, ReleasesDoNotDeactivate) {
  const auto datacenter = small_dc(1, 2);
  Occupancy occupancy(datacenter);
  occupancy.add_host_load(0, {2.0, 2.0, 0.0});

  OccupancyDelta delta(occupancy);
  delta.remove_host_load(0, {2.0, 2.0, 0.0});
  occupancy.apply_delta(delta);

  // Activation is sticky through the release itself (mirrors the direct
  // remove_host_load contract); deactivation is a separate, explicit step.
  EXPECT_TRUE(occupancy.is_active(0));
  EXPECT_DOUBLE_EQ(occupancy.used(0).vcpus, 0.0);
  EXPECT_TRUE(occupancy.deactivate_if_idle(0));
  EXPECT_FALSE(occupancy.is_active(0));
}

TEST(ReleasePathTest, DeactivateIfIdleRequiresIdleAndActive) {
  const auto datacenter = small_dc(1, 2);
  Occupancy occupancy(datacenter);

  EXPECT_FALSE(occupancy.deactivate_if_idle(0));  // already idle
  occupancy.add_host_load(0, {1.0, 1.0, 0.0});
  EXPECT_FALSE(occupancy.deactivate_if_idle(0));  // still loaded
  occupancy.remove_host_load(0, {1.0, 1.0, 0.0});
  const std::uint64_t version = occupancy.version();
  EXPECT_TRUE(occupancy.deactivate_if_idle(0));
  EXPECT_GT(occupancy.version(), version);
  EXPECT_FALSE(occupancy.deactivate_if_idle(0));  // second call is a no-op
  EXPECT_EQ(occupancy.active_host_count(), 0u);
}

TEST(ReleasePathTest, StaleBaseRejectsReleaseDelta) {
  const auto datacenter = small_dc(1, 2);
  Occupancy occupancy(datacenter);
  occupancy.add_host_load(0, {4.0, 4.0, 0.0});

  // Staleness is tracked per touched entry: a concurrent change to a host
  // the delta never staged against does not invalidate it...
  OccupancyDelta untouched(occupancy);
  untouched.remove_host_load(0, {2.0, 2.0, 0.0});
  occupancy.add_host_load(1, {1.0, 1.0, 0.0});
  occupancy.apply_delta(untouched);
  EXPECT_DOUBLE_EQ(occupancy.used(0).vcpus, 2.0);

  // ...but a change to the staged host does: the snapshot taken at first
  // touch no longer matches, and the reject leaves the base untouched.
  OccupancyDelta delta(occupancy);
  delta.remove_host_load(0, {1.0, 1.0, 0.0});
  occupancy.add_host_load(0, {1.0, 1.0, 0.0});  // staged host moved on
  const Occupancy before = occupancy;
  EXPECT_THROW(occupancy.apply_delta(delta), std::logic_error);
  EXPECT_TRUE(occupancy == before);
}

TEST(ReleasePathTest, FloatingPointResidueClampsToZero) {
  const auto datacenter = small_dc(1, 2);
  Occupancy occupancy(datacenter);
  // 0.1 + 0.2 != 0.3 in binary; releasing the parts of a sum must not throw
  // for the eps-sized residue, and the residue itself clamps to exactly 0.
  occupancy.add_host_load(0, {0.3, 0.3, 0.0});
  OccupancyDelta delta(occupancy);
  delta.remove_host_load(0, {0.1, 0.1, 0.0});
  delta.remove_host_load(0, {0.2, 0.2, 0.0});
  occupancy.apply_delta(delta);
  EXPECT_EQ(occupancy.used(0).vcpus, 0.0);
  EXPECT_EQ(occupancy.used(0).mem_gb, 0.0);
  EXPECT_TRUE(occupancy.feasibility().selfcheck());
}

TEST(ReleasePathTest, RandomizedFillReleaseSoakMatchesFreshRebuild) {
  const auto datacenter = small_dc(2, 4);
  Occupancy occupancy(datacenter);
  util::Rng rng(11);

  // Track exactly what is currently held so every release is legal, then
  // drain everything: the incremental un-index must land bit-identical to a
  // freshly built occupancy, index and labels included.
  struct Held {
    HostId host;
    topo::Resources load;
    double mbps;
  };
  std::vector<Held> held;
  for (int step = 0; step < 400; ++step) {
    const bool release = !held.empty() && rng.chance(0.45);
    if (release) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(held.size()) - 1));
      const Held h = held[pick];
      held.erase(held.begin() + static_cast<long>(pick));
      occupancy.release_link(datacenter.host_link(h.host), h.mbps);
      occupancy.remove_host_load(h.host, h.load);
      occupancy.deactivate_if_idle(h.host);
    } else {
      const HostId h = static_cast<HostId>(
          rng.uniform_int(0, static_cast<int>(datacenter.host_count()) - 1));
      const double cpu = static_cast<double>(rng.uniform_int(1, 2));
      const Held entry{h, {cpu, cpu, 0.0}, 25.0};
      try {
        occupancy.add_host_load(h, entry.load);
      } catch (const std::invalid_argument&) {
        continue;
      }
      occupancy.reserve_link(datacenter.host_link(h), entry.mbps);
      held.push_back(entry);
    }
    if (step % 50 == 0) {
      ASSERT_TRUE(occupancy.feasibility().selfcheck());
      ASSERT_TRUE(occupancy.labels().selfcheck(occupancy.feasibility()));
    }
  }
  for (const Held& h : held) {
    occupancy.release_link(datacenter.host_link(h.host), h.mbps);
    occupancy.remove_host_load(h.host, h.load);
    occupancy.deactivate_if_idle(h.host);
  }
  EXPECT_TRUE(occupancy == Occupancy(datacenter));
}

}  // namespace
}  // namespace ostro::dc
