// FeasibilityIndex invariants: every aggregate must equal a from-scratch
// rebuild after any sequence of Occupancy mutations (the incremental O(depth)
// maintenance is exact, not an upper bound), and the argmax-shrink rescan
// path must find the runner-up host.  The aggregates themselves are checked
// against an independent brute-force computation over Occupancy::available.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "datacenter/datacenter.h"
#include "datacenter/feasibility_index.h"
#include "datacenter/occupancy.h"
#include "datacenter/state_delta.h"
#include "helpers.h"
#include "util/rng.h"

namespace ostro::dc {
namespace {

using ostro::testing::small_dc;
using ostro::testing::two_site_dc;

/// Independent reference: aggregates computed directly from Occupancy's
/// public queries, without going through FeasibilityIndex at all.
FeasibilityIndex::Aggregate brute_force(const Occupancy& occupancy,
                                        const std::vector<HostId>& hosts) {
  const DataCenter& dc = occupancy.datacenter();
  FeasibilityIndex::Aggregate agg;
  agg.max_free = {std::numeric_limits<double>::lowest(),
                  std::numeric_limits<double>::lowest(),
                  std::numeric_limits<double>::lowest()};
  agg.max_free_uplink_mbps = std::numeric_limits<double>::lowest();
  agg.host_count = static_cast<std::uint32_t>(hosts.size());
  for (const HostId h : hosts) {
    const topo::Resources free = occupancy.available(h);
    agg.max_free.vcpus = std::max(agg.max_free.vcpus, free.vcpus);
    agg.max_free.mem_gb = std::max(agg.max_free.mem_gb, free.mem_gb);
    agg.max_free.disk_gb = std::max(agg.max_free.disk_gb, free.disk_gb);
    agg.max_free_uplink_mbps =
        std::max(agg.max_free_uplink_mbps,
                 occupancy.link_available_mbps(dc.host_link(h)));
    if (free.vcpus > 0.0 && free.mem_gb > 0.0 && free.disk_gb > 0.0) {
      ++agg.feasible_hosts;
    }
  }
  return agg;
}

/// Every rack/pod/site aggregate plus the root against brute force.
void expect_aggregates_exact(const Occupancy& occupancy) {
  const DataCenter& dc = occupancy.datacenter();
  const FeasibilityIndex& index = occupancy.feasibility();
  std::vector<HostId> all_hosts;
  for (const Rack& rack : dc.racks()) {
    EXPECT_EQ(index.rack(rack.id), brute_force(occupancy, rack.hosts))
        << "rack " << rack.id;
    all_hosts.insert(all_hosts.end(), rack.hosts.begin(), rack.hosts.end());
  }
  for (const Pod& pod : dc.pods()) {
    std::vector<HostId> hosts;
    for (const std::uint32_t r : pod.racks) {
      const auto& rack_hosts = dc.racks()[r].hosts;
      hosts.insert(hosts.end(), rack_hosts.begin(), rack_hosts.end());
    }
    EXPECT_EQ(index.pod(pod.id), brute_force(occupancy, hosts))
        << "pod " << pod.id;
  }
  for (const Site& site : dc.sites()) {
    std::vector<HostId> hosts;
    for (const std::uint32_t p : site.pods) {
      for (const std::uint32_t r : dc.pods()[p].racks) {
        const auto& rack_hosts = dc.racks()[r].hosts;
        hosts.insert(hosts.end(), rack_hosts.begin(), rack_hosts.end());
      }
    }
    EXPECT_EQ(index.site(site.id), brute_force(occupancy, hosts))
        << "site " << site.id;
  }
  EXPECT_EQ(index.root(), brute_force(occupancy, all_hosts));
  EXPECT_TRUE(index.selfcheck());
}

TEST(FeasibilityIndexTest, FreshOccupancyAggregatesMatchCapacities) {
  const auto dc = small_dc(2, 3);
  const Occupancy occupancy(dc);
  const FeasibilityIndex& index = occupancy.feasibility();
  // helpers.h hosts: 8 cores / 16 GB / 500 GB, 1000 Mbps uplink.
  EXPECT_EQ(index.root().max_free.vcpus, 8.0);
  EXPECT_EQ(index.root().max_free.mem_gb, 16.0);
  EXPECT_EQ(index.root().max_free.disk_gb, 500.0);
  EXPECT_EQ(index.root().max_free_uplink_mbps, 1000.0);
  EXPECT_EQ(index.root().feasible_hosts, 6u);
  EXPECT_EQ(index.root().host_count, 6u);
  expect_aggregates_exact(occupancy);
}

TEST(FeasibilityIndexTest, MaxMovesToRunnerUpWhenArgmaxShrinks) {
  const auto dc = small_dc(1, 3);  // hosts 0..2 in one rack
  Occupancy occupancy(dc);
  // Make host 1 the clear capacity argmax by loading the others first.
  occupancy.add_host_load(0, {4.0, 8.0, 100.0});
  occupancy.add_host_load(2, {2.0, 4.0, 50.0});
  EXPECT_EQ(occupancy.feasibility().rack(0).max_free.vcpus, 8.0);
  // Now shrink the argmax below the runner-up: the rack must rescan and
  // find host 2's 6 free cores, not keep a stale 8.
  occupancy.add_host_load(1, {5.0, 2.0, 10.0});
  EXPECT_EQ(occupancy.feasibility().rack(0).max_free.vcpus, 6.0);
  EXPECT_EQ(occupancy.feasibility().rack(0).max_free.mem_gb, 14.0);
  expect_aggregates_exact(occupancy);
  // Releasing restores the old maximum exactly.
  occupancy.remove_host_load(1, {5.0, 2.0, 10.0});
  EXPECT_EQ(occupancy.feasibility().rack(0).max_free.vcpus, 8.0);
  expect_aggregates_exact(occupancy);
}

TEST(FeasibilityIndexTest, FeasibleHostCountTracksExhaustedDimensions) {
  const auto dc = small_dc(1, 2);
  Occupancy occupancy(dc);
  EXPECT_EQ(occupancy.feasibility().rack(0).feasible_hosts, 2u);
  // Exhaust one dimension (all 8 cores) on host 0: no longer feasible even
  // though memory and disk remain.
  occupancy.add_host_load(0, {8.0, 1.0, 1.0});
  EXPECT_EQ(occupancy.feasibility().rack(0).feasible_hosts, 1u);
  occupancy.add_host_load(1, {0.0, 16.0, 0.0});
  EXPECT_EQ(occupancy.feasibility().rack(0).feasible_hosts, 0u);
  occupancy.remove_host_load(0, {8.0, 1.0, 1.0});
  EXPECT_EQ(occupancy.feasibility().rack(0).feasible_hosts, 1u);
  expect_aggregates_exact(occupancy);
}

TEST(FeasibilityIndexTest, UplinkAggregateTracksLinkReservations) {
  const auto dc = small_dc(2, 2);
  Occupancy occupancy(dc);
  for (HostId h = 0; h < dc.host_count(); ++h) {
    occupancy.reserve_link(dc.host_link(h), 100.0 * (h + 1));
  }
  EXPECT_EQ(occupancy.feasibility().rack(0).max_free_uplink_mbps, 900.0);
  EXPECT_EQ(occupancy.feasibility().rack(1).max_free_uplink_mbps, 700.0);
  EXPECT_EQ(occupancy.feasibility().root().max_free_uplink_mbps, 900.0);
  // Rack-level (non-uplink) reservations must not disturb host aggregates.
  occupancy.reserve_link(dc.rack_link(0), 2000.0);
  EXPECT_EQ(occupancy.feasibility().rack(0).max_free_uplink_mbps, 900.0);
  occupancy.release_link(dc.host_link(0), 100.0);
  EXPECT_EQ(occupancy.feasibility().rack(0).max_free_uplink_mbps, 1000.0);
  expect_aggregates_exact(occupancy);
}

TEST(FeasibilityIndexTest, RandomizedOpSoakStaysExact) {
  util::Rng rng(20260806);
  for (int trial = 0; trial < 8; ++trial) {
    const auto dc = trial % 2 == 0 ? small_dc(3, 3) : two_site_dc(2, 3);
    Occupancy occupancy(dc);
    // Track per-host loads so removals never exceed what was added.
    std::vector<topo::Resources> added(dc.host_count(), {0.0, 0.0, 0.0});
    std::vector<double> reserved(dc.host_count(), 0.0);
    for (int op = 0; op < 120; ++op) {
      const auto h = static_cast<HostId>(
          rng.uniform_int(0, static_cast<int>(dc.host_count()) - 1));
      switch (rng.uniform_int(0, 3)) {
        case 0: {
          const topo::Resources load = {
              static_cast<double>(rng.uniform_int(0, 2)),
              static_cast<double>(rng.uniform_int(0, 4)),
              static_cast<double>(rng.uniform_int(0, 50))};
          if (load.fits_within(occupancy.available(h))) {
            occupancy.add_host_load(h, load);
            added[h] = added[h] + load;
          }
          break;
        }
        case 1:
          if (added[h].vcpus > 0.0 || added[h].mem_gb > 0.0 ||
              added[h].disk_gb > 0.0) {
            occupancy.remove_host_load(h, added[h]);
            added[h] = {0.0, 0.0, 0.0};
          }
          break;
        case 2: {
          const double mbps = static_cast<double>(rng.uniform_int(1, 4)) * 50.0;
          if (occupancy.link_available_mbps(dc.host_link(h)) >= mbps) {
            occupancy.reserve_link(dc.host_link(h), mbps);
            reserved[h] += mbps;
          }
          break;
        }
        default:
          if (reserved[h] > 0.0) {
            occupancy.release_link(dc.host_link(h), reserved[h]);
            reserved[h] = 0.0;
          }
          break;
      }
      ASSERT_TRUE(occupancy.feasibility().selfcheck())
          << "trial " << trial << " op " << op;
    }
    expect_aggregates_exact(occupancy);
  }
}

TEST(FeasibilityIndexTest, ApplyDeltaMatchesDirectMutation) {
  util::Rng rng(777);
  for (int trial = 0; trial < 10; ++trial) {
    const auto dc = two_site_dc(2, 2);
    Occupancy staged(dc);
    Occupancy direct(dc);
    OccupancyDelta delta(staged);
    for (int op = 0; op < 20; ++op) {
      const auto h = static_cast<HostId>(
          rng.uniform_int(0, static_cast<int>(dc.host_count()) - 1));
      if (rng.chance(0.5)) {
        const topo::Resources load = {1.0, 2.0, 10.0};
        if (load.fits_within(delta.available(h))) {
          delta.add_host_load(h, load);
          direct.add_host_load(h, load);
        }
      } else {
        const LinkId link = dc.host_link(h);
        if (delta.link_available_mbps(link) >= 75.0) {
          delta.reserve_link(link, 75.0);
          direct.reserve_link(link, 75.0);
        }
      }
    }
    staged.apply_delta(delta);
    // Occupancy::operator== includes the index, so this checks both the
    // resource state and the aggregates in one shot.
    EXPECT_TRUE(staged == direct) << "trial " << trial;
    EXPECT_TRUE(staged.feasibility().selfcheck()) << "trial " << trial;
    expect_aggregates_exact(staged);
  }
}

}  // namespace
}  // namespace ostro::dc
