#include "datacenter/occupancy.h"

#include <gtest/gtest.h>

#include "helpers.h"

namespace ostro::dc {
namespace {

using ostro::testing::small_dc;

TEST(OccupancyTest, StartsIdleAndEmpty) {
  const DataCenter dc = small_dc();
  const Occupancy occupancy(dc);
  EXPECT_EQ(occupancy.active_host_count(), 0u);
  EXPECT_FALSE(occupancy.is_active(0));
  EXPECT_EQ(occupancy.available(0), dc.host(0).capacity);
  EXPECT_DOUBLE_EQ(occupancy.link_available_mbps(dc.host_link(0)), 1000.0);
  EXPECT_DOUBLE_EQ(occupancy.total_reserved_mbps(), 0.0);
}

TEST(OccupancyTest, AddLoadActivatesAndConsumes) {
  const DataCenter dc = small_dc();
  Occupancy occupancy(dc);
  occupancy.add_host_load(0, {2.0, 4.0, 50.0});
  EXPECT_TRUE(occupancy.is_active(0));
  EXPECT_EQ(occupancy.active_host_count(), 1u);
  EXPECT_EQ(occupancy.used(0), (topo::Resources{2.0, 4.0, 50.0}));
  EXPECT_EQ(occupancy.available(0), (topo::Resources{6.0, 12.0, 450.0}));
}

TEST(OccupancyTest, OvercommitThrowsAndLeavesStateIntact) {
  const DataCenter dc = small_dc();
  Occupancy occupancy(dc);
  occupancy.add_host_load(0, {6.0, 10.0, 100.0});
  const Occupancy before = occupancy;
  EXPECT_THROW(occupancy.add_host_load(0, {3.0, 1.0, 1.0}),
               std::invalid_argument);
  EXPECT_TRUE(occupancy == before);
}

TEST(OccupancyTest, RemoveLoadRestores) {
  const DataCenter dc = small_dc();
  Occupancy occupancy(dc);
  occupancy.add_host_load(0, {2.0, 4.0, 50.0});
  occupancy.remove_host_load(0, {2.0, 4.0, 50.0});
  EXPECT_TRUE(occupancy.used(0).is_zero());
  // Active flag is sticky by design.
  EXPECT_TRUE(occupancy.is_active(0));
}

TEST(OccupancyTest, RemoveMoreThanUsedThrows) {
  const DataCenter dc = small_dc();
  Occupancy occupancy(dc);
  occupancy.add_host_load(0, {1.0, 1.0, 1.0});
  EXPECT_THROW(occupancy.remove_host_load(0, {2.0, 1.0, 1.0}),
               std::invalid_argument);
}

TEST(OccupancyTest, LinkReserveAndRelease) {
  const DataCenter dc = small_dc();
  Occupancy occupancy(dc);
  const LinkId link = dc.host_link(0);
  occupancy.reserve_link(link, 400.0);
  EXPECT_DOUBLE_EQ(occupancy.link_used_mbps(link), 400.0);
  EXPECT_DOUBLE_EQ(occupancy.link_available_mbps(link), 600.0);
  occupancy.reserve_link(link, 600.0);  // exactly full
  EXPECT_THROW(occupancy.reserve_link(link, 0.1), std::invalid_argument);
  occupancy.release_link(link, 1000.0);
  EXPECT_DOUBLE_EQ(occupancy.link_used_mbps(link), 0.0);
  EXPECT_THROW(occupancy.release_link(link, 0.1), std::invalid_argument);
}

TEST(OccupancyTest, NegativeAmountsRejected) {
  const DataCenter dc = small_dc();
  Occupancy occupancy(dc);
  EXPECT_THROW(occupancy.reserve_link(dc.host_link(0), -1.0),
               std::invalid_argument);
  EXPECT_THROW(occupancy.add_host_load(0, {-1.0, 0.0, 0.0}),
               std::invalid_argument);
}

TEST(OccupancyTest, MarkActiveWithoutLoad) {
  const DataCenter dc = small_dc();
  Occupancy occupancy(dc);
  occupancy.mark_active(2);
  EXPECT_TRUE(occupancy.is_active(2));
  EXPECT_EQ(occupancy.active_host_count(), 1u);
  occupancy.mark_active(2);  // idempotent
  EXPECT_EQ(occupancy.active_host_count(), 1u);
}

TEST(OccupancyTest, TotalReservedSumsLinks) {
  const DataCenter dc = small_dc();
  Occupancy occupancy(dc);
  occupancy.reserve_link(dc.host_link(0), 100.0);
  occupancy.reserve_link(dc.rack_link(0), 250.0);
  EXPECT_DOUBLE_EQ(occupancy.total_reserved_mbps(), 350.0);
}

TEST(OccupancyTest, BadIdsThrow) {
  const DataCenter dc = small_dc();
  Occupancy occupancy(dc);
  EXPECT_THROW((void)occupancy.available(99), std::out_of_range);
  EXPECT_THROW((void)occupancy.link_available_mbps(static_cast<LinkId>(
                   dc.link_count())),
               std::out_of_range);
  EXPECT_THROW(occupancy.mark_active(99), std::out_of_range);
}

TEST(OccupancyTest, CopySnapshotRestores) {
  const DataCenter dc = small_dc();
  Occupancy occupancy(dc);
  const Occupancy snapshot = occupancy;
  occupancy.add_host_load(1, {2.0, 2.0, 10.0});
  occupancy.reserve_link(dc.host_link(1), 100.0);
  EXPECT_FALSE(occupancy == snapshot);
  occupancy = snapshot;
  EXPECT_TRUE(occupancy == snapshot);
  EXPECT_FALSE(occupancy.is_active(1));
}

TEST(OccupancyTest, VersionAdvancesOnEveryMutation) {
  const DataCenter dc = small_dc();
  Occupancy occupancy(dc);
  EXPECT_EQ(occupancy.version(), 0u);
  occupancy.add_host_load(0, {2.0, 2.0, 10.0});
  EXPECT_EQ(occupancy.version(), 1u);
  occupancy.reserve_link(dc.host_link(0), 100.0);
  EXPECT_EQ(occupancy.version(), 2u);
  occupancy.release_link(dc.host_link(0), 100.0);
  occupancy.remove_host_load(0, {2.0, 2.0, 10.0});
  EXPECT_EQ(occupancy.version(), 4u);
  occupancy.mark_active(1);
  EXPECT_EQ(occupancy.version(), 5u);
  occupancy.mark_active(1);  // already active: no state change, no bump
  EXPECT_EQ(occupancy.version(), 5u);
  occupancy.set_active(1, false);
  EXPECT_EQ(occupancy.version(), 6u);
}

TEST(OccupancyTest, EqualityIgnoresVersionHistory) {
  const DataCenter dc = small_dc();
  Occupancy a(dc);
  Occupancy b(dc);
  // Same state via different mutation histories: equal, versions differ.
  a.add_host_load(0, {2.0, 2.0, 10.0});
  a.remove_host_load(0, {2.0, 2.0, 10.0});
  a.set_active(0, false);
  EXPECT_NE(a.version(), b.version());
  EXPECT_TRUE(a == b);
}

TEST(OccupancyTest, CopyCarriesVersion) {
  const DataCenter dc = small_dc();
  Occupancy occupancy(dc);
  occupancy.add_host_load(0, {1.0, 1.0, 0.0});
  const Occupancy snapshot = occupancy;
  EXPECT_EQ(snapshot.version(), occupancy.version());
  occupancy.add_host_load(1, {1.0, 1.0, 0.0});
  EXPECT_GT(occupancy.version(), snapshot.version());
}

}  // namespace
}  // namespace ostro::dc
