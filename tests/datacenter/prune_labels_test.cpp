// dc::PruneLabels invariants.  The separation-feasibility counters must
// equal a from-scratch rebuild after any sequence of Occupancy mutations
// (direct, via apply_delta batches, and across discarded deltas — the
// incremental O(depth) refresh is exact), the scope tighteners must
// escalate exactly when no completion can realize the entry scope, and the
// tag bitmaps must mirror the per-host tag sets.
#include "datacenter/prune_labels.h"

#include <gtest/gtest.h>

#include <vector>

#include "datacenter/datacenter.h"
#include "datacenter/occupancy.h"
#include "datacenter/state_delta.h"
#include "helpers.h"
#include "util/rng.h"

namespace ostro::dc {
namespace {

using ostro::testing::small_dc;
using ostro::testing::two_site_dc;

topo::Resources full_host() { return {8.0, 16.0, 500.0}; }

TEST(PruneLabelsTest, FreshOccupancyCounters) {
  const auto dc = small_dc(2, 3);  // 1 site, 1 pod, 2 racks x 3 hosts
  const Occupancy occupancy(dc);
  const PruneLabels& labels = occupancy.labels();
  EXPECT_EQ(labels.racks_with_multi_feasible(), 2u);
  EXPECT_EQ(labels.pods_with_multi_feasible_racks(), 1u);
  EXPECT_EQ(labels.sites_with_multi_feasible_pods(), 0u);  // one pod only
  EXPECT_EQ(labels.static_multi_host_racks(), 2u);
  EXPECT_EQ(labels.static_multi_rack_pods(), 1u);
  EXPECT_EQ(labels.static_multi_pod_sites(), 0u);
  EXPECT_TRUE(labels.selfcheck(occupancy.feasibility()));
}

TEST(PruneLabelsTest, StaticFloorsEscalateImpossibleSeparations) {
  // two_site_dc: each site holds exactly one pod, so a same-site
  // different-pod placement is structurally impossible — the ladder must
  // push kSameSite to kCrossSite regardless of occupancy or positivity.
  const auto dc = two_site_dc(2, 2);
  const Occupancy occupancy(dc);
  const PruneLabels& labels = occupancy.labels();
  EXPECT_EQ(labels.static_multi_pod_sites(), 0u);
  EXPECT_EQ(labels.tighten_separation(Scope::kSameSite, false),
            Scope::kCrossSite);
  EXPECT_EQ(labels.tighten_separation(Scope::kSameSite, true),
            Scope::kCrossSite);
  // Same-rack and same-pod separations are realizable in the fresh DC.
  EXPECT_EQ(labels.tighten_separation(Scope::kSameRack, true),
            Scope::kSameRack);
  EXPECT_EQ(labels.tighten_separation(Scope::kSamePod, true), Scope::kSamePod);
  // Identity on the endpoints of the ladder.
  EXPECT_EQ(labels.tighten_separation(Scope::kSameHost, true),
            Scope::kSameHost);
  EXPECT_EQ(labels.tighten_separation(Scope::kCrossSite, true),
            Scope::kCrossSite);
}

TEST(PruneLabelsTest, DynamicLadderChainsAsCapacityDrains) {
  const auto dc = small_dc(2, 2);  // racks {0,1}, {2,3}
  Occupancy occupancy(dc);
  const PruneLabels& labels = occupancy.labels();
  EXPECT_EQ(labels.tighten_separation(Scope::kSameRack, true),
            Scope::kSameRack);

  // Exhaust one host per rack: no rack keeps two feasible hosts, so a
  // positive-positive same-rack pair must price at same-pod hops — but a
  // zero-requirement pair (both_positive=false) must not escalate.
  occupancy.add_host_load(0, full_host());
  occupancy.add_host_load(2, full_host());
  EXPECT_EQ(labels.racks_with_multi_feasible(), 0u);
  EXPECT_EQ(labels.tighten_separation(Scope::kSameRack, true), Scope::kSamePod);
  EXPECT_EQ(labels.tighten_separation(Scope::kSameRack, false),
            Scope::kSameRack);

  // Exhaust rack 1 entirely: the pod no longer holds two feasible racks,
  // so the ladder chains same-rack all the way to same-site, and same-site
  // (single-pod site) to cross-site.
  occupancy.add_host_load(3, full_host());
  EXPECT_EQ(labels.pods_with_multi_feasible_racks(), 0u);
  EXPECT_EQ(labels.tighten_separation(Scope::kSameRack, true),
            Scope::kCrossSite);
  EXPECT_TRUE(labels.selfcheck(occupancy.feasibility()));

  // Releasing restores the fresh answers exactly.
  occupancy.remove_host_load(0, full_host());
  occupancy.remove_host_load(2, full_host());
  occupancy.remove_host_load(3, full_host());
  EXPECT_EQ(labels.tighten_separation(Scope::kSameRack, true),
            Scope::kSameRack);
  EXPECT_TRUE(labels.selfcheck(occupancy.feasibility()));
}

TEST(PruneLabelsTest, TightenToHostClimbsOnFeasibilityAndUplink) {
  const auto dc = small_dc(2, 2);  // rack 0: hosts {0,1}, rack 1: {2,3}
  Occupancy occupancy(dc);
  const PruneLabels& labels = occupancy.labels();
  const topo::Resources req{1.0, 1.0, 1.0};

  // Fresh DC: a same-rack neighbor for host 0 exists (host 1).
  EXPECT_EQ(labels.tighten_to_host(Scope::kSameRack, 0, req, true, 10.0,
                                   occupancy.feasibility()),
            Scope::kSameRack);

  // Exhaust host 1: rack 0's only feasible host is host 0 itself, so a
  // positive free node separated from it at host level must leave the rack.
  occupancy.add_host_load(1, full_host());
  EXPECT_EQ(labels.tighten_to_host(Scope::kSameRack, 0, req, true, 10.0,
                                   occupancy.feasibility()),
            Scope::kSamePod);
  // The pod still offers feasible hosts outside rack 0 (hosts 2, 3).
  EXPECT_EQ(labels.tighten_to_host(Scope::kSamePod, 0, req, true, 10.0,
                                   occupancy.feasibility()),
            Scope::kSamePod);
  // Without strictly positive requirements the feasibility argument does
  // not apply (host 1 could still take a zero-requirement node).
  EXPECT_EQ(labels.tighten_to_host(Scope::kSameRack, 0, req, false, 10.0,
                                   occupancy.feasibility()),
            Scope::kSameRack);
  occupancy.remove_host_load(1, full_host());

  // A pipe wider than every free host uplink (1000 Mbps in helpers.h) can
  // never terminate below the root: the climb runs to cross-site.
  EXPECT_EQ(labels.tighten_to_host(Scope::kSameRack, 0, req, true, 1500.0,
                                   occupancy.feasibility()),
            Scope::kCrossSite);
}

TEST(PruneLabelsTest, TagBitmapsMirrorHostTags) {
  DataCenterBuilder builder;
  const auto site = builder.add_site("site0", 16000.0);
  const auto pod = builder.add_pod(site, "pod0", 16000.0);
  const auto rack0 = builder.add_rack(pod, "rack0", 4000.0);
  const auto rack1 = builder.add_rack(pod, "rack1", 4000.0);
  builder.add_host(rack0, "h0", {8.0, 16.0, 500.0}, 1000.0, {"gpu", "ssd"});
  builder.add_host(rack0, "h1", {8.0, 16.0, 500.0}, 1000.0, {"ssd"});
  builder.add_host(rack1, "h2", {8.0, 16.0, 500.0}, 1000.0, {"sriov"});
  const auto dc = builder.build();
  const Occupancy occupancy(dc);
  const PruneLabels& labels = occupancy.labels();
  ASSERT_TRUE(labels.tags_indexable());

  const std::uint64_t gpu = labels.required_tag_mask({"gpu"});
  const std::uint64_t ssd = labels.required_tag_mask({"ssd"});
  const std::uint64_t sriov = labels.required_tag_mask({"sriov"});
  EXPECT_EQ(labels.required_tag_mask({"gpu", "ssd"}), gpu | ssd);
  EXPECT_EQ(labels.host_tag_mask(0), gpu | ssd);
  EXPECT_EQ(labels.host_tag_mask(1), ssd);
  EXPECT_EQ(labels.host_tag_mask(2), sriov);
  EXPECT_EQ(labels.rack_tag_mask(rack0), gpu | ssd);
  EXPECT_EQ(labels.rack_tag_mask(rack1), sriov);
  EXPECT_EQ(labels.pod_tag_mask(pod), gpu | ssd | sriov);
  EXPECT_EQ(labels.site_tag_mask(site), gpu | ssd | sriov);
  // rack1's mask cannot cover "ssd": the descent would prune it, exactly
  // matching the per-host tag check that rejects h2.
  EXPECT_NE(labels.rack_tag_mask(rack1) & ssd, ssd);
  // A tag no host carries yields the all-ones mask, which nothing covers.
  EXPECT_EQ(labels.required_tag_mask({"fpga"}), ~0ULL);
}

// The satellite property test: labels rebuilt from scratch equal labels
// maintained through a randomized soak of direct mutations, apply_delta
// commits, and discarded (rolled back) deltas.
TEST(PruneLabelsTest, RandomizedOpSoakMatchesFreshRebuild) {
  util::Rng rng(20260807);
  for (int trial = 0; trial < 6; ++trial) {
    const auto dc = trial % 2 == 0 ? small_dc(3, 3) : two_site_dc(2, 3);
    Occupancy occupancy(dc);
    std::vector<topo::Resources> added(dc.host_count(), {0.0, 0.0, 0.0});
    for (int op = 0; op < 100; ++op) {
      const auto h = static_cast<HostId>(
          rng.uniform_int(0, static_cast<int>(dc.host_count()) - 1));
      switch (rng.uniform_int(0, 3)) {
        case 0: {
          // Loads biased toward exhausting whole dimensions so feasibility
          // boundaries (the only transitions the counters react to) are
          // crossed often.
          const topo::Resources load = {
              static_cast<double>(rng.uniform_int(0, 8)),
              static_cast<double>(rng.uniform_int(0, 8)) * 2.0,
              static_cast<double>(rng.uniform_int(0, 10)) * 50.0};
          if (load.fits_within(occupancy.available(h))) {
            occupancy.add_host_load(h, load);
            added[h] = added[h] + load;
          }
          break;
        }
        case 1:
          if (!added[h].is_zero()) {
            occupancy.remove_host_load(h, added[h]);
            added[h] = {0.0, 0.0, 0.0};
          }
          break;
        case 2: {
          // A staged batch, sometimes committed, sometimes discarded: the
          // rollback path must leave the labels untouched.
          OccupancyDelta delta(occupancy);
          const topo::Resources load = {2.0, 4.0, 50.0};
          std::vector<HostId> staged;
          for (int k = 0; k < 3; ++k) {
            const auto g = static_cast<HostId>(
                rng.uniform_int(0, static_cast<int>(dc.host_count()) - 1));
            if (load.fits_within(delta.available(g))) {
              delta.add_host_load(g, load);
              staged.push_back(g);
            }
          }
          if (rng.chance(0.5)) {
            const PruneLabels before = occupancy.labels();
            delta.clear();  // rollback: nothing may change
            EXPECT_TRUE(occupancy.labels() == before);
          } else if (!delta.empty()) {
            for (const HostId g : staged) added[g] = added[g] + load;
            occupancy.apply_delta(delta);
          }
          break;
        }
        default: {
          const double mbps = static_cast<double>(rng.uniform_int(1, 4)) * 50.0;
          const LinkId link = dc.host_link(h);
          if (occupancy.link_available_mbps(link) >= mbps) {
            occupancy.reserve_link(link, mbps);
          }
          break;
        }
      }
      ASSERT_TRUE(occupancy.labels().selfcheck(occupancy.feasibility()))
          << "trial " << trial << " op " << op;
    }
    // Final cross-check: an occupancy rebuilt from the same datacenter and
    // driven to the same state compares equal labels-included.
    PruneLabels fresh;
    fresh.rebuild(dc, occupancy.feasibility());
    EXPECT_TRUE(occupancy.labels() == fresh) << "trial " << trial;
  }
}

TEST(PruneLabelsTest, ApplyDeltaMatchesDirectMutation) {
  util::Rng rng(4242);
  const auto dc = two_site_dc(2, 2);
  Occupancy staged(dc);
  Occupancy direct(dc);
  OccupancyDelta delta(staged);
  for (int op = 0; op < 24; ++op) {
    const auto h = static_cast<HostId>(
        rng.uniform_int(0, static_cast<int>(dc.host_count()) - 1));
    const topo::Resources load = {4.0, 8.0, 250.0};  // two of these fill a host
    if (load.fits_within(delta.available(h))) {
      delta.add_host_load(h, load);
      direct.add_host_load(h, load);
    }
  }
  staged.apply_delta(delta);
  // Occupancy::operator== now includes the labels, so this checks the
  // counters and bitmaps along with the resource state and the index.
  EXPECT_TRUE(staged == direct);
  EXPECT_TRUE(staged.labels().selfcheck(staged.feasibility()));
}

}  // namespace
}  // namespace ostro::dc
