// OccupancyDelta: staging never touches the base, overlay queries reflect
// staged ops, and apply_delta yields an Occupancy bit-identical to applying
// the same op sequence directly.
#include <gtest/gtest.h>

#include <stdexcept>

#include "datacenter/occupancy.h"
#include "datacenter/state_delta.h"
#include "helpers.h"
#include "util/rng.h"

namespace ostro::dc {
namespace {

using ostro::testing::small_dc;

TEST(OccupancyDeltaTest, StagingLeavesBaseUntouched) {
  const auto datacenter = small_dc(2, 2);
  Occupancy occupancy(datacenter);
  const Occupancy pristine = occupancy;

  OccupancyDelta delta(occupancy);
  delta.add_host_load(0, {2.0, 4.0, 10.0});
  delta.reserve_link(datacenter.host_link(0), 300.0);
  delta.add_host_load(0, {1.0, 1.0, 0.0});

  EXPECT_TRUE(occupancy == pristine);
  EXPECT_FALSE(delta.empty());
  EXPECT_EQ(delta.host_op_count(), 2u);
  EXPECT_EQ(delta.link_op_count(), 1u);
}

TEST(OccupancyDeltaTest, OverlayQueriesSeeStagedState) {
  const auto datacenter = small_dc(2, 2);
  Occupancy occupancy(datacenter);
  occupancy.add_host_load(1, {3.0, 3.0, 0.0});

  OccupancyDelta delta(occupancy);
  EXPECT_EQ(delta.available(0), occupancy.available(0));
  EXPECT_TRUE(delta.is_active(1));
  EXPECT_FALSE(delta.is_active(0));

  delta.add_host_load(0, {2.0, 4.0, 10.0});
  EXPECT_TRUE(delta.is_active(0));
  const auto avail = delta.available(0);
  EXPECT_DOUBLE_EQ(avail.vcpus, 6.0);
  EXPECT_DOUBLE_EQ(avail.mem_gb, 12.0);
  EXPECT_DOUBLE_EQ(avail.disk_gb, 490.0);
  // The base still reports the host idle and untouched.
  EXPECT_FALSE(occupancy.is_active(0));
  EXPECT_DOUBLE_EQ(occupancy.available(0).vcpus, 8.0);

  const LinkId link = datacenter.host_link(0);
  delta.reserve_link(link, 250.0);
  EXPECT_DOUBLE_EQ(delta.link_available_mbps(link), 750.0);
  EXPECT_DOUBLE_EQ(occupancy.link_available_mbps(link), 1000.0);
}

TEST(OccupancyDeltaTest, ApplyDeltaMatchesDirectOpSequence) {
  const auto datacenter = small_dc(3, 3);
  util::Rng rng(20260806);
  for (int trial = 0; trial < 20; ++trial) {
    Occupancy via_delta(datacenter);
    Occupancy via_direct(datacenter);
    // Random pre-existing load so the delta snapshots non-zero base values.
    via_delta.add_host_load(2, {1.5, 2.5, 5.0});
    via_direct.add_host_load(2, {1.5, 2.5, 5.0});

    OccupancyDelta delta(via_delta);
    for (int op = 0; op < 12; ++op) {
      if (rng.chance(0.5)) {
        const auto h = static_cast<HostId>(
            rng.uniform_int(0, static_cast<int>(datacenter.host_count()) - 1));
        const topo::Resources load{
            static_cast<double>(rng.uniform_int(0, 2)) * 0.5,
            static_cast<double>(rng.uniform_int(0, 2)) * 0.5, 1.0};
        delta.add_host_load(h, load);
        via_direct.add_host_load(h, load);
      } else {
        const auto link = static_cast<LinkId>(
            rng.uniform_int(0, static_cast<int>(datacenter.link_count()) - 1));
        const double mbps = static_cast<double>(rng.uniform_int(1, 4)) * 10.0;
        delta.reserve_link(link, mbps);
        via_direct.reserve_link(link, mbps);
      }
    }
    via_delta.apply_delta(delta);
    EXPECT_TRUE(via_delta == via_direct) << "trial " << trial;
  }
}

TEST(OccupancyDeltaTest, CapacityChecksMatchDirectSemantics) {
  const auto datacenter = small_dc(1, 2);
  Occupancy occupancy(datacenter);
  OccupancyDelta delta(occupancy);

  // Exactly-full is accepted, just like Occupancy::add_host_load.
  delta.add_host_load(0, {8.0, 16.0, 500.0});
  EXPECT_THROW(delta.add_host_load(0, {0.5, 0.0, 0.0}),
               std::invalid_argument);

  const LinkId link = datacenter.host_link(1);
  delta.reserve_link(link, 1000.0);  // exactly the uplink capacity
  EXPECT_THROW(delta.reserve_link(link, 1.0), std::invalid_argument);

  // The failures above must not have left phantom staged ops behind.
  occupancy.apply_delta(delta);
  EXPECT_DOUBLE_EQ(occupancy.available(0).vcpus, 0.0);
  EXPECT_DOUBLE_EQ(occupancy.link_available_mbps(link), 0.0);
}

TEST(OccupancyDeltaTest, FailedStagingKeepsDeltaUsable) {
  const auto datacenter = small_dc(1, 2);
  Occupancy occupancy(datacenter);
  const Occupancy pristine = occupancy;

  OccupancyDelta delta(occupancy);
  delta.add_host_load(0, {4.0, 4.0, 0.0});
  EXPECT_THROW(delta.add_host_load(1, {100.0, 0.0, 0.0}),
               std::invalid_argument);
  EXPECT_TRUE(occupancy == pristine);

  // The successfully staged op is still there and flushes fine.
  delta.add_host_load(1, {2.0, 2.0, 0.0});
  occupancy.apply_delta(delta);
  EXPECT_DOUBLE_EQ(occupancy.used(0).vcpus, 4.0);
  EXPECT_DOUBLE_EQ(occupancy.used(1).vcpus, 2.0);
}

TEST(OccupancyDeltaTest, StaleDeltaIsRejectedUntouched) {
  const auto datacenter = small_dc(2, 2);
  Occupancy occupancy(datacenter);

  OccupancyDelta delta(occupancy);
  delta.add_host_load(0, {2.0, 2.0, 0.0});
  delta.reserve_link(datacenter.host_link(0), 100.0);

  // Mutating the base after staging invalidates the delta's snapshots.
  occupancy.add_host_load(0, {1.0, 1.0, 0.0});
  const Occupancy before = occupancy;
  EXPECT_THROW(occupancy.apply_delta(delta), std::logic_error);
  EXPECT_TRUE(occupancy == before);
}

TEST(OccupancyDeltaTest, WrongBaseIsRejected) {
  const auto datacenter = small_dc(2, 2);
  Occupancy a(datacenter);
  Occupancy b(datacenter);
  OccupancyDelta delta(a);
  delta.add_host_load(0, {1.0, 1.0, 0.0});
  EXPECT_THROW(b.apply_delta(delta), std::logic_error);
}

TEST(OccupancyDeltaTest, ClearMakesDeltaReusable) {
  const auto datacenter = small_dc(2, 2);
  Occupancy occupancy(datacenter);
  OccupancyDelta delta(occupancy);

  delta.add_host_load(0, {2.0, 2.0, 0.0});
  delta.clear();
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.host_op_count(), 0u);

  // Re-stage after a base mutation: the snapshots must be taken fresh.
  occupancy.add_host_load(1, {1.0, 1.0, 0.0});
  delta.add_host_load(1, {2.0, 2.0, 0.0});
  occupancy.apply_delta(delta);
  EXPECT_DOUBLE_EQ(occupancy.used(1).vcpus, 3.0);
  EXPECT_DOUBLE_EQ(occupancy.used(0).vcpus, 0.0);
}

}  // namespace
}  // namespace ostro::dc
