// The precomputed topology tables (per-host ancestors, uplink chains) must
// reproduce the tree-walking reference implementations exactly, across every
// scope pair and on single- and multi-datacenter hierarchies.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "datacenter/datacenter.h"
#include "helpers.h"
#include "util/string_util.h"

namespace ostro::dc {
namespace {

using ostro::testing::small_dc;
using ostro::testing::two_site_dc;

/// Two sites x two pods x two racks x two hosts: every scope from kSameHost
/// to kCrossSite occurs among its host pairs.
DataCenter deep_dc() {
  DataCenterBuilder builder;
  for (int s = 0; s < 2; ++s) {
    const auto site = builder.add_site(util::format("site%d", s), 32000.0);
    for (int p = 0; p < 2; ++p) {
      const auto pod =
          builder.add_pod(site, util::format("s%d-pod%d", s, p), 16000.0);
      for (int r = 0; r < 2; ++r) {
        const auto rack = builder.add_rack(
            pod, util::format("s%d-p%d-rack%d", s, p, r), 4000.0);
        for (int h = 0; h < 2; ++h) {
          builder.add_host(rack, util::format("s%d-p%d-r%d-h%d", s, p, r, h),
                           {8.0, 16.0, 500.0}, 1000.0);
        }
      }
    }
  }
  return builder.build();
}

/// Exhaustive pairwise comparison of the table-driven queries against the
/// tree-walk references; returns per-scope pair counts so callers can assert
/// which scopes the fixture actually exercised.
std::array<int, 5> expect_tables_match(const DataCenter& dc) {
  std::array<int, 5> scope_pairs{};
  const auto n = static_cast<HostId>(dc.host_count());
  for (HostId a = 0; a < n; ++a) {
    const Host& host = dc.host(a);
    const HostAncestors& anc = dc.ancestors(a);
    EXPECT_EQ(anc.rack, host.rack);
    EXPECT_EQ(anc.pod, host.pod);
    EXPECT_EQ(anc.site, host.datacenter);
    const auto chain = dc.uplink_chain(a);
    EXPECT_EQ(chain[0], dc.host_link(a));
    EXPECT_EQ(chain[1], dc.rack_link(host.rack));
    EXPECT_EQ(chain[2], dc.pod_link(host.pod));
    EXPECT_EQ(chain[3], dc.site_link(host.datacenter));

    for (HostId b = 0; b < n; ++b) {
      const Scope fast = dc.scope_between(a, b);
      const Scope walk = dc.scope_between_walk(a, b);
      EXPECT_EQ(fast, walk) << "hosts " << a << ", " << b;
      ++scope_pairs[static_cast<std::size_t>(fast)];

      std::vector<LinkId> via_walk;
      dc.path_links_walk(a, b, via_walk);
      std::vector<LinkId> via_table;
      dc.path_links(a, b, via_table);
      EXPECT_EQ(via_table, via_walk) << "hosts " << a << ", " << b;

      const PathLinks path = dc.path_between(a, b);
      EXPECT_EQ(path.size(), via_walk.size());
      EXPECT_EQ(std::vector<LinkId>(path.begin(), path.end()), via_walk)
          << "hosts " << a << ", " << b;
      EXPECT_EQ(static_cast<int>(path.size()), hop_count(fast));

      for (const auto level :
           {topo::DiversityLevel::kHost, topo::DiversityLevel::kRack,
            topo::DiversityLevel::kPod, topo::DiversityLevel::kDatacenter}) {
        const Host& hb = dc.host(b);
        bool walk_separated = false;
        switch (level) {
          case topo::DiversityLevel::kHost: walk_separated = a != b; break;
          case topo::DiversityLevel::kRack:
            walk_separated = host.rack != hb.rack;
            break;
          case topo::DiversityLevel::kPod:
            walk_separated = host.pod != hb.pod;
            break;
          case topo::DiversityLevel::kDatacenter:
            walk_separated = host.datacenter != hb.datacenter;
            break;
        }
        EXPECT_EQ(dc.separated_at(a, b, level), walk_separated)
            << "hosts " << a << ", " << b;
      }
    }
  }
  return scope_pairs;
}

TEST(DataCenterFastPathTest, SingleSiteSinglePodMatchesWalk) {
  const auto scope_pairs = expect_tables_match(small_dc(3, 3));
  EXPECT_GT(scope_pairs[static_cast<int>(Scope::kSameHost)], 0);
  EXPECT_GT(scope_pairs[static_cast<int>(Scope::kSameRack)], 0);
  EXPECT_GT(scope_pairs[static_cast<int>(Scope::kSamePod)], 0);
  EXPECT_EQ(scope_pairs[static_cast<int>(Scope::kSameSite)], 0);
  EXPECT_EQ(scope_pairs[static_cast<int>(Scope::kCrossSite)], 0);
}

TEST(DataCenterFastPathTest, TwoSiteMatchesWalk) {
  const auto scope_pairs = expect_tables_match(two_site_dc(2, 2));
  EXPECT_GT(scope_pairs[static_cast<int>(Scope::kCrossSite)], 0);
}

TEST(DataCenterFastPathTest, DeepHierarchyCoversEveryScope) {
  const auto scope_pairs = expect_tables_match(deep_dc());
  for (int s = 0; s <= static_cast<int>(Scope::kCrossSite); ++s) {
    EXPECT_GT(scope_pairs[static_cast<std::size_t>(s)], 0) << "scope " << s;
  }
}

TEST(DataCenterFastPathTest, SingleHostDataCenter) {
  DataCenterBuilder builder;
  const auto site = builder.add_site("s", 100.0);
  const auto pod = builder.add_pod(site, "p", 100.0);
  const auto rack = builder.add_rack(pod, "r", 100.0);
  builder.add_host(rack, "h", {1.0, 1.0, 1.0}, 100.0);
  const DataCenter dc = builder.build();
  EXPECT_EQ(dc.scope_between(0, 0), Scope::kSameHost);
  EXPECT_EQ(dc.path_between(0, 0).size(), 0u);
}

TEST(DataCenterFastPathTest, BadHostIdThrows) {
  const auto dc = small_dc(2, 2);
  EXPECT_THROW((void)dc.scope_between(0, 999), std::out_of_range);
  EXPECT_THROW((void)dc.scope_between(999, 0), std::out_of_range);
  EXPECT_THROW((void)dc.path_between(0, 999), std::out_of_range);
  EXPECT_THROW(
      (void)dc.separated_at(999, 0, topo::DiversityLevel::kHost),
      std::out_of_range);
}

}  // namespace
}  // namespace ostro::dc
