#include "datacenter/report.h"

#include <gtest/gtest.h>

#include "helpers.h"
#include "net/reservation.h"

namespace ostro::dc {
namespace {

using ostro::testing::small_dc;
using ostro::testing::tiny_app;

TEST(UtilizationReportTest, IdleDataCenterIsAllZero) {
  const DataCenter dc = small_dc(2, 2);
  const Occupancy occupancy(dc);
  const UtilizationReport report = utilization_report(occupancy);
  EXPECT_EQ(report.hosts, 4u);
  EXPECT_EQ(report.active_hosts, 0u);
  EXPECT_DOUBLE_EQ(report.cpu_used, 0.0);
  EXPECT_DOUBLE_EQ(report.cpu_capacity, 32.0);  // 4 x 8 cores
  EXPECT_DOUBLE_EQ(report.cpu_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(report.bandwidth_reserved_mbps, 0.0);
  ASSERT_EQ(report.racks.size(), 2u);
  EXPECT_EQ(report.racks[0].hosts, 2u);
}

TEST(UtilizationReportTest, TracksCommittedPlacement) {
  const DataCenter dc = small_dc(2, 2);
  Occupancy occupancy(dc);
  const auto app = tiny_app();  // web(2,2) db(4,4) data(100GB)
  net::commit_placement(occupancy, app, {0, 2, 2});  // web rack0, db rack1
  const UtilizationReport report = utilization_report(occupancy);
  EXPECT_EQ(report.active_hosts, 2u);
  EXPECT_DOUBLE_EQ(report.cpu_used, 6.0);
  EXPECT_DOUBLE_EQ(report.mem_used_gb, 6.0);
  EXPECT_DOUBLE_EQ(report.disk_used_gb, 100.0);
  // web--db crosses racks: 100 Mbps on 4 links.
  EXPECT_DOUBLE_EQ(report.bandwidth_reserved_mbps, 400.0);
  EXPECT_DOUBLE_EQ(report.racks[0].cpu_used, 2.0);
  EXPECT_DOUBLE_EQ(report.racks[1].cpu_used, 4.0);
  EXPECT_DOUBLE_EQ(report.racks[0].tor_used_mbps, 100.0);
  EXPECT_DOUBLE_EQ(report.racks[0].host_uplink_used_mbps, 100.0);
}

TEST(UtilizationReportTest, RackTotalsSumToGlobal) {
  const DataCenter dc = small_dc(3, 3);
  Occupancy occupancy(dc);
  util::Rng rng(4);
  for (HostId h = 0; h < dc.host_count(); ++h) {
    if (rng.chance(0.6)) {
      occupancy.add_host_load(
          h, {static_cast<double>(rng.uniform_int(1, 4)),
              static_cast<double>(rng.uniform_int(1, 8)), 10.0});
    }
  }
  const UtilizationReport report = utilization_report(occupancy);
  double cpu = 0.0, mem = 0.0, disk = 0.0;
  std::size_t active = 0;
  for (const auto& rack : report.racks) {
    cpu += rack.cpu_used;
    mem += rack.mem_used_gb;
    disk += rack.disk_used_gb;
    active += rack.active_hosts;
  }
  EXPECT_DOUBLE_EQ(cpu, report.cpu_used);
  EXPECT_DOUBLE_EQ(mem, report.mem_used_gb);
  EXPECT_DOUBLE_EQ(disk, report.disk_used_gb);
  EXPECT_EQ(active, report.active_hosts);
}

TEST(UtilizationReportTest, ToStringMentionsEveryRack) {
  const DataCenter dc = small_dc(2, 2);
  const Occupancy occupancy(dc);
  const std::string text = utilization_report(occupancy).to_string();
  EXPECT_NE(text.find("rack0"), std::string::npos);
  EXPECT_NE(text.find("rack1"), std::string::npos);
  EXPECT_NE(text.find("data center"), std::string::npos);
}

}  // namespace
}  // namespace ostro::dc
