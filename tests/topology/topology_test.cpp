#include "topology/app_topology.h"

#include <gtest/gtest.h>

namespace ostro::topo {
namespace {

AppTopology three_node_app() {
  TopologyBuilder builder;
  builder.add_vm("web", {2.0, 2.0, 0.0});
  builder.add_vm("db", {4.0, 8.0, 0.0});
  builder.add_volume("data", 120.0);
  builder.connect("web", "db", 100.0);
  builder.connect("db", "data", 200.0);
  builder.add_zone("anti", DiversityLevel::kRack,
                   std::vector<std::string>{"web", "db"});
  return builder.build();
}

TEST(TopologyBuilderTest, BuildsNodesEdgesZones) {
  const AppTopology topology = three_node_app();
  EXPECT_EQ(topology.node_count(), 3u);
  EXPECT_EQ(topology.edge_count(), 2u);
  EXPECT_EQ(topology.zones().size(), 1u);
  EXPECT_EQ(topology.node(topology.node_id("web")).kind, NodeKind::kVm);
  EXPECT_EQ(topology.node(topology.node_id("data")).kind, NodeKind::kVolume);
  EXPECT_DOUBLE_EQ(topology.node(topology.node_id("data")).requirements.disk_gb,
                   120.0);
}

TEST(TopologyBuilderTest, NeighborsAndIncidentBandwidth) {
  const AppTopology topology = three_node_app();
  const NodeId db = topology.node_id("db");
  const auto neighbors = topology.neighbors(db);
  EXPECT_EQ(neighbors.size(), 2u);
  EXPECT_DOUBLE_EQ(topology.incident_bandwidth(db), 300.0);
  EXPECT_DOUBLE_EQ(topology.incident_bandwidth(topology.node_id("web")), 100.0);
  EXPECT_DOUBLE_EQ(topology.total_edge_bandwidth(), 300.0);
}

TEST(TopologyBuilderTest, TotalRequirements) {
  const AppTopology topology = three_node_app();
  const Resources total = topology.total_requirements();
  EXPECT_DOUBLE_EQ(total.vcpus, 6.0);
  EXPECT_DOUBLE_EQ(total.mem_gb, 10.0);
  EXPECT_DOUBLE_EQ(total.disk_gb, 120.0);
}

TEST(TopologyBuilderTest, ZonesOfAndSeparation) {
  const AppTopology topology = three_node_app();
  const NodeId web = topology.node_id("web");
  const NodeId db = topology.node_id("db");
  const NodeId data = topology.node_id("data");
  EXPECT_EQ(topology.zones_of(web).size(), 1u);
  EXPECT_EQ(topology.zones_of(data).size(), 0u);
  EXPECT_TRUE(topology.must_separate(web, db));
  EXPECT_FALSE(topology.must_separate(web, data));
  EXPECT_EQ(topology.required_separation(web, db), DiversityLevel::kRack);
  EXPECT_FALSE(topology.required_separation(web, web).has_value());
}

TEST(TopologyBuilderTest, StrongestSharedZoneWins) {
  TopologyBuilder builder;
  builder.add_vm("a", {1.0, 1.0, 0.0});
  builder.add_vm("b", {1.0, 1.0, 0.0});
  builder.add_zone("weak", DiversityLevel::kHost,
                   std::vector<std::string>{"a", "b"});
  builder.add_zone("strong", DiversityLevel::kPod,
                   std::vector<std::string>{"a", "b"});
  const AppTopology topology = builder.build();
  EXPECT_EQ(topology.required_separation(0, 1), DiversityLevel::kPod);
}

TEST(TopologyBuilderTest, FindNode) {
  const AppTopology topology = three_node_app();
  EXPECT_TRUE(topology.find_node("web").has_value());
  EXPECT_FALSE(topology.find_node("nope").has_value());
  EXPECT_THROW((void)topology.node_id("nope"), std::out_of_range);
}

TEST(TopologyBuilderTest, EdgeOther) {
  const AppTopology topology = three_node_app();
  const Edge& edge = topology.edges().front();
  EXPECT_EQ(edge.other(edge.a), edge.b);
  EXPECT_EQ(edge.other(edge.b), edge.a);
  const NodeId neither = topology.node_id("data");
  EXPECT_THROW((void)edge.other(neither), std::invalid_argument);
}

TEST(TopologyBuilderTest, RejectsDuplicateNames) {
  TopologyBuilder builder;
  builder.add_vm("x", {1.0, 1.0, 0.0});
  EXPECT_THROW(builder.add_vm("x", {1.0, 1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(builder.add_volume("x", 10.0), std::invalid_argument);
}

TEST(TopologyBuilderTest, RejectsEmptyNameAndNegativeResources) {
  TopologyBuilder builder;
  EXPECT_THROW(builder.add_vm("", {1.0, 1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(builder.add_vm("neg", {-1.0, 1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(builder.add_volume("vol", 0.0), std::invalid_argument);
  EXPECT_THROW(builder.add_volume("vol", -5.0), std::invalid_argument);
}

TEST(TopologyBuilderTest, RejectsBadPipes) {
  TopologyBuilder builder;
  builder.add_vm("a", {1.0, 1.0, 0.0});
  builder.add_vm("b", {1.0, 1.0, 0.0});
  builder.add_volume("v1", 10.0);
  builder.add_volume("v2", 10.0);
  EXPECT_THROW(builder.connect("a", "a", 10.0), std::invalid_argument);
  EXPECT_THROW(builder.connect("a", "b", 0.0), std::invalid_argument);
  EXPECT_THROW(builder.connect("a", "b", -3.0), std::invalid_argument);
  EXPECT_THROW(builder.connect("a", "nope", 10.0), std::invalid_argument);
  EXPECT_THROW(builder.connect("v1", "v2", 10.0), std::invalid_argument);
}

TEST(TopologyBuilderTest, RejectsBadZones) {
  TopologyBuilder builder;
  builder.add_vm("a", {1.0, 1.0, 0.0});
  builder.add_vm("b", {1.0, 1.0, 0.0});
  EXPECT_THROW(builder.add_zone("z", DiversityLevel::kHost, {"a"}),
               std::invalid_argument);
  EXPECT_THROW(
      builder.add_zone("z", DiversityLevel::kHost,
                       std::vector<std::string>{"a", "a"}),
      std::invalid_argument);
  EXPECT_THROW(
      builder.add_zone("", DiversityLevel::kHost,
                       std::vector<std::string>{"a", "b"}),
      std::invalid_argument);
  EXPECT_THROW(
      builder.add_zone("z", DiversityLevel::kHost,
                       std::vector<std::string>{"a", "nope"}),
      std::invalid_argument);
}

TEST(TopologyBuilderTest, EmptyBuildThrows) {
  TopologyBuilder builder;
  EXPECT_THROW((void)builder.build(), std::invalid_argument);
}

TEST(TopologyBuilderTest, BuilderResetsAfterBuild) {
  TopologyBuilder builder;
  builder.add_vm("a", {1.0, 1.0, 0.0});
  (void)builder.build();
  EXPECT_EQ(builder.node_count(), 0u);
  // Names from the previous build are free again.
  EXPECT_NO_THROW(builder.add_vm("a", {1.0, 1.0, 0.0}));
}

TEST(TopologyBuilderTest, VolumeVmPipeAllowed) {
  TopologyBuilder builder;
  builder.add_vm("vm", {1.0, 1.0, 0.0});
  builder.add_volume("vol", 10.0);
  EXPECT_NO_THROW(builder.connect("vol", "vm", 50.0));
}

TEST(TopologyEnumTest, ToStringCoverage) {
  EXPECT_STREQ(to_string(NodeKind::kVm), "vm");
  EXPECT_STREQ(to_string(NodeKind::kVolume), "volume");
  EXPECT_STREQ(to_string(DiversityLevel::kHost), "host");
  EXPECT_STREQ(to_string(DiversityLevel::kRack), "rack");
  EXPECT_STREQ(to_string(DiversityLevel::kPod), "pod");
  EXPECT_STREQ(to_string(DiversityLevel::kDatacenter), "datacenter");
}

TEST(TopologyTest, OutOfRangeAccessThrows) {
  const AppTopology topology = three_node_app();
  EXPECT_THROW((void)topology.node(99), std::out_of_range);
  EXPECT_THROW((void)topology.neighbors(99), std::out_of_range);
  EXPECT_THROW((void)topology.zones_of(99), std::out_of_range);
}

}  // namespace
}  // namespace ostro::topo
