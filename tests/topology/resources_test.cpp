#include "topology/resources.h"

#include <gtest/gtest.h>

namespace ostro::topo {
namespace {

TEST(ResourcesTest, ArithmeticOperators) {
  const Resources a{2.0, 4.0, 100.0};
  const Resources b{1.0, 1.0, 50.0};
  EXPECT_EQ(a + b, (Resources{3.0, 5.0, 150.0}));
  EXPECT_EQ(a - b, (Resources{1.0, 3.0, 50.0}));
  Resources c = a;
  c += b;
  EXPECT_EQ(c, (Resources{3.0, 5.0, 150.0}));
  c -= b;
  EXPECT_EQ(c, a);
}

TEST(ResourcesTest, FitsWithin) {
  const Resources req{2.0, 4.0, 100.0};
  EXPECT_TRUE(req.fits_within({2.0, 4.0, 100.0}));  // exact fit
  EXPECT_TRUE(req.fits_within({3.0, 5.0, 200.0}));
  EXPECT_FALSE(req.fits_within({1.9, 5.0, 200.0}));
  EXPECT_FALSE(req.fits_within({3.0, 3.9, 200.0}));
  EXPECT_FALSE(req.fits_within({3.0, 5.0, 99.0}));
}

TEST(ResourcesTest, FitsWithinToleratesFloatNoise) {
  Resources capacity{1.0, 1.0, 1.0};
  // Accumulate 0.1 ten times: classic floating-point residue.
  Resources req{0.0, 0.0, 0.0};
  for (int i = 0; i < 10; ++i) req += Resources{0.1, 0.1, 0.1};
  EXPECT_TRUE(req.fits_within(capacity));
}

TEST(ResourcesTest, ZeroAlwaysFits) {
  EXPECT_TRUE(Resources{}.fits_within({0.0, 0.0, 0.0}));
  EXPECT_TRUE(Resources{}.is_zero());
  EXPECT_FALSE((Resources{0.0, 0.1, 0.0}).is_zero());
}

TEST(ResourcesTest, NonNegativeCheck) {
  EXPECT_TRUE((Resources{0.0, 0.0, 0.0}).is_nonnegative());
  EXPECT_TRUE((Resources{1.0, 2.0, 3.0}).is_nonnegative());
  EXPECT_FALSE((Resources{-0.1, 2.0, 3.0}).is_nonnegative());
  EXPECT_NO_THROW(require_nonnegative({1.0, 1.0, 1.0}, "ok"));
  EXPECT_THROW(require_nonnegative({-1.0, 1.0, 1.0}, "bad"),
               std::invalid_argument);
}

TEST(ResourcesTest, ToStringMentionsAllComponents) {
  const std::string text = Resources{2.0, 4.0, 100.0}.to_string();
  EXPECT_NE(text.find('2'), std::string::npos);
  EXPECT_NE(text.find('4'), std::string::npos);
  EXPECT_NE(text.find("100"), std::string::npos);
}

}  // namespace
}  // namespace ostro::topo
