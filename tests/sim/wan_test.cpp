#include <gtest/gtest.h>

#include <set>

#include "core/scheduler.h"
#include "core/verify.h"
#include "sim/clusters.h"

namespace ostro::sim {
namespace {

TEST(WanTest, StructureMatchesParameters) {
  const auto dc = make_wan(3, 2, 4, 8);
  EXPECT_EQ(dc.sites().size(), 3u);
  EXPECT_EQ(dc.pods().size(), 6u);
  EXPECT_EQ(dc.racks().size(), 24u);
  EXPECT_EQ(dc.host_count(), 192u);
  EXPECT_EQ(dc.max_scope(), dc::Scope::kCrossSite);
}

TEST(WanTest, CrossSiteLatencyIsWideArea) {
  const auto dc = make_wan();
  EXPECT_GE(dc.scope_latency_us(dc::Scope::kCrossSite), 10'000.0);
  EXPECT_LE(dc.scope_latency_us(dc::Scope::kSameRack), 100.0);
}

TEST(WanTest, ParameterValidation) {
  EXPECT_THROW((void)make_wan(0), std::invalid_argument);
  EXPECT_THROW((void)make_wan(2, 0), std::invalid_argument);
  EXPECT_THROW((void)make_wan(2, 1, 0), std::invalid_argument);
  EXPECT_THROW((void)make_wan(2, 1, 1, 0), std::invalid_argument);
  EXPECT_THROW((void)make_wan(2, 1, 1, 1, -1.0), std::invalid_argument);
}

TEST(WanTest, GeoReplicationSpreadsAcrossSites) {
  const auto datacenter = make_wan(3, 1, 2, 4);
  const dc::Occupancy occupancy(datacenter);
  topo::TopologyBuilder builder;
  std::vector<std::string> dbs;
  for (int i = 0; i < 3; ++i) {
    const std::string name = "db" + std::to_string(i);
    builder.add_vm(name, {4.0, 8.0, 0.0});
    dbs.push_back(name);
  }
  builder.connect("db0", "db1", 100.0);
  builder.connect("db1", "db2", 100.0);
  builder.add_zone("geo", topo::DiversityLevel::kDatacenter, dbs);
  const auto app = builder.build();
  const core::Placement placement = core::place_topology(
      occupancy, app, core::Algorithm::kEg, core::SearchConfig{}, nullptr,
      nullptr);
  ASSERT_TRUE(placement.feasible) << placement.failure_reason;
  std::set<std::uint32_t> sites;
  for (const auto host : placement.assignment) {
    sites.insert(datacenter.host(host).datacenter);
  }
  EXPECT_EQ(sites.size(), 3u);
  EXPECT_TRUE(
      core::verify_placement(occupancy, app, placement.assignment).empty());
}

TEST(WanTest, TightLatencyCannotCrossTheWan) {
  const auto datacenter = make_wan(2, 1, 1, 2);
  const dc::Occupancy occupancy(datacenter);
  topo::TopologyBuilder builder;
  builder.add_vm("a", {2.0, 2.0, 0.0});
  builder.add_vm("b", {2.0, 2.0, 0.0});
  // Latency budget allows same-site (200us) but not cross-site (20ms)...
  builder.connect("a", "b", 100.0, 500.0);
  // ...while the zone demands different sites: infeasible.
  builder.add_zone("apart", topo::DiversityLevel::kDatacenter,
                   std::vector<std::string>{"a", "b"});
  const auto app = builder.build();
  const core::Placement placement = core::place_topology(
      occupancy, app, core::Algorithm::kBaStar, core::SearchConfig{},
      nullptr, nullptr);
  EXPECT_FALSE(placement.feasible);
}

}  // namespace
}  // namespace ostro::sim
