#include "sim/clusters.h"

#include <gtest/gtest.h>

namespace ostro::sim {
namespace {

TEST(TestbedTest, SixteenHostsOneRack) {
  const auto dc = make_testbed();
  EXPECT_EQ(dc.host_count(), 16u);
  EXPECT_EQ(dc.racks().size(), 1u);
  for (const auto& host : dc.hosts()) {
    EXPECT_EQ(host.capacity, (topo::Resources{16.0, 32.0, 1000.0}));
    EXPECT_DOUBLE_EQ(host.uplink_mbps, 3200.0);
  }
  EXPECT_EQ(dc.max_scope(), dc::Scope::kSameRack);
}

TEST(TestbedTest, PreloadBands) {
  const auto dc = make_testbed();
  dc::Occupancy occupancy(dc);
  util::Rng rng(42);
  apply_testbed_preload(occupancy, rng);

  // Hosts 0-3: 8 or 10 available cores, > 20 GB free memory.
  for (dc::HostId h = 0; h < 4; ++h) {
    const auto avail = occupancy.available(h);
    EXPECT_TRUE(avail.vcpus == 8.0 || avail.vcpus == 10.0) << h;
    EXPECT_GT(avail.mem_gb, 20.0);
    EXPECT_TRUE(occupancy.is_active(h));
  }
  // Hosts 4-7: 5-6 cores, 15-19 GB.
  for (dc::HostId h = 4; h < 8; ++h) {
    const auto avail = occupancy.available(h);
    EXPECT_GE(avail.vcpus, 5.0);
    EXPECT_LE(avail.vcpus, 6.0);
    EXPECT_GE(avail.mem_gb, 15.0);
    EXPECT_LE(avail.mem_gb, 19.0);
  }
  // Hosts 8-11: < 5 cores, < 15 GB.
  for (dc::HostId h = 8; h < 12; ++h) {
    const auto avail = occupancy.available(h);
    EXPECT_LT(avail.vcpus, 5.0);
    EXPECT_LT(avail.mem_gb, 15.0);
  }
  // Hosts 12-15: idle.
  for (dc::HostId h = 12; h < 16; ++h) {
    EXPECT_FALSE(occupancy.is_active(h));
    EXPECT_EQ(occupancy.available(h), dc.host(h).capacity);
  }
  EXPECT_EQ(occupancy.active_host_count(), 12u);
}

TEST(TestbedTest, PreloadRejectsWrongDc) {
  const auto dc = make_sim_datacenter(2, 4);
  dc::Occupancy occupancy(dc);
  util::Rng rng(1);
  EXPECT_THROW(apply_testbed_preload(occupancy, rng), std::invalid_argument);
}

TEST(SimDatacenterTest, PaperScaleStructure) {
  const auto dc = make_sim_datacenter();
  EXPECT_EQ(dc.host_count(), 2400u);
  EXPECT_EQ(dc.racks().size(), 150u);
  EXPECT_EQ(dc.pods().size(), 1u);  // ToRs directly under the root
  for (const auto& rack : dc.racks()) {
    EXPECT_EQ(rack.hosts.size(), 16u);
    EXPECT_DOUBLE_EQ(rack.uplink_mbps, 100'000.0);
  }
  EXPECT_DOUBLE_EQ(dc.host(0).uplink_mbps, 10'000.0);
  // Cross-rack paths use exactly 4 links (no pod hop).
  std::vector<dc::LinkId> links;
  dc.path_links(0, 16, links);
  EXPECT_EQ(links.size(), 4u);
}

TEST(SimDatacenterTest, CustomSizeAndValidation) {
  const auto dc = make_sim_datacenter(3, 5);
  EXPECT_EQ(dc.host_count(), 15u);
  EXPECT_THROW((void)make_sim_datacenter(0, 4), std::invalid_argument);
  EXPECT_THROW((void)make_sim_datacenter(4, -1), std::invalid_argument);
}

TEST(SimDatacenterTest, PreloadQuartiles) {
  const auto dc = make_sim_datacenter(4, 16);
  dc::Occupancy occupancy(dc);
  util::Rng rng(7);
  apply_sim_preload(occupancy, rng);
  for (const auto& rack : dc.racks()) {
    for (std::size_t i = 0; i < rack.hosts.size(); ++i) {
      const dc::HostId h = rack.hosts[i];
      const auto avail = occupancy.available(h);
      const double avail_bw =
          occupancy.link_available_mbps(dc.host_link(h));
      switch ((i * 4) / rack.hosts.size()) {
        case 0:
          EXPECT_GE(avail.vcpus, 9.0);
          EXPECT_LE(avail_bw, 1500.0 + 1e-9);
          break;
        case 1:
          EXPECT_GE(avail.vcpus, 6.0);
          EXPECT_LE(avail.vcpus, 8.0);
          EXPECT_GE(avail_bw, 2000.0 - 1e-9);
          EXPECT_LE(avail_bw, 5000.0 + 1e-9);
          break;
        case 2:
          EXPECT_LE(avail.vcpus, 5.0);
          EXPECT_GE(avail_bw, 6000.0 - 1e-9);
          EXPECT_LE(avail_bw, 8000.0 + 1e-9);
          break;
        default:
          EXPECT_EQ(avail, dc.host(h).capacity);
          EXPECT_DOUBLE_EQ(avail_bw, 10'000.0);
          EXPECT_FALSE(occupancy.is_active(h));
      }
    }
  }
  // 3 quartiles of every rack are busy.
  EXPECT_EQ(occupancy.active_host_count(), 4u * 16u * 3u / 4u);
}

TEST(SimDatacenterTest, PreloadDeterministicPerSeed) {
  const auto dc = make_sim_datacenter(2, 8);
  dc::Occupancy a(dc), b(dc);
  util::Rng rng1(5), rng2(5);
  apply_sim_preload(a, rng1);
  apply_sim_preload(b, rng2);
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace ostro::sim
