// sim::Lifecycle: bit-exact determinism from one seed, the differential
// soak (randomized arrival/departure churn, then drain every live stack and
// compare against a fresh occupancy — proving the incremental release path
// un-indexes FeasibilityIndex and PruneLabels exactly), and the
// failure/repair accounting.
#include "sim/lifecycle.h"

#include <gtest/gtest.h>

#include "core/scheduler.h"
#include "core/service.h"
#include "datacenter/occupancy.h"
#include "helpers.h"

namespace ostro::sim {
namespace {

using ostro::testing::small_dc;

core::SearchConfig serial_config() {
  core::SearchConfig config;
  config.threads = 1;
  return config;
}

/// Churny-but-small config: 5-VM stacks (all-large tiers) on a 4-host
/// cluster, enough arrivals to cycle capacity several times over.
LifecycleConfig churn_config() {
  LifecycleConfig config;
  config.arrival_rate_per_s = 0.05;
  config.mean_lifetime_s = 120.0;
  config.duration_s = 600.0;
  config.stack_vms = 5;
  config.sample_interval_s = 50.0;
  config.seed = 7;
  return config;
}

TEST(LifecycleSimTest, SameSeedReproducesTheRunBitForBit) {
  const auto datacenter = small_dc(2, 2);
  LifecycleStats runs[2];
  dc::Occupancy finals[2] = {dc::Occupancy(datacenter),
                             dc::Occupancy(datacenter)};
  for (int i = 0; i < 2; ++i) {
    core::OstroScheduler scheduler(datacenter, serial_config());
    core::PlacementService service(scheduler);
    Lifecycle lifecycle(service, churn_config());
    runs[i] = lifecycle.run();
    finals[i] = scheduler.occupancy();
  }

  EXPECT_EQ(runs[0].arrivals, runs[1].arrivals);
  EXPECT_EQ(runs[0].placements_committed, runs[1].placements_committed);
  EXPECT_EQ(runs[0].placements_failed, runs[1].placements_failed);
  EXPECT_EQ(runs[0].departures, runs[1].departures);
  ASSERT_EQ(runs[0].trajectory.size(), runs[1].trajectory.size());
  for (std::size_t i = 0; i < runs[0].trajectory.size(); ++i) {
    const TrajectoryPoint& a = runs[0].trajectory[i];
    const TrajectoryPoint& b = runs[1].trajectory[i];
    EXPECT_DOUBLE_EQ(a.time_s, b.time_s);
    EXPECT_DOUBLE_EQ(a.frag_index, b.frag_index);
    EXPECT_DOUBLE_EQ(a.unusable_free_cpu_fraction,
                     b.unusable_free_cpu_fraction);
    EXPECT_EQ(a.live_stacks, b.live_stacks);
    EXPECT_EQ(a.active_hosts, b.active_hosts);
  }
  EXPECT_TRUE(finals[0] == finals[1]);
  EXPECT_GT(runs[0].arrivals, 10u);  // the run actually exercised churn
}

TEST(LifecycleSimTest, SoakThenDrainMatchesFreshRebuild) {
  const auto datacenter = small_dc(2, 2);
  core::OstroScheduler scheduler(datacenter, serial_config());
  core::PlacementService service(scheduler);

  LifecycleConfig config = churn_config();
  config.defrag = true;
  config.defrag_interval_s = 60.0;
  Lifecycle lifecycle(service, config);
  const LifecycleStats stats = lifecycle.run();

  // Arrival accounting: every arrival either committed or failed, and only
  // committed stacks can depart.
  EXPECT_EQ(stats.arrivals,
            stats.placements_committed + stats.placements_failed);
  EXPECT_LE(stats.departures, stats.placements_committed);
  EXPECT_GT(stats.departures, 0u);
  EXPECT_FALSE(stats.trajectory.empty());

  // The differential soak: after hundreds of interleaved placements,
  // releases, and defrag migrations, draining the survivors through the
  // same release path must land on a bit-identical fresh occupancy —
  // host loads, link reservations, active flags, FeasibilityIndex, and
  // PruneLabels all compare.
  for (const core::DeployedStack& stack : lifecycle.registry().snapshot()) {
    EXPECT_TRUE(service.release_stack(lifecycle.registry(), stack.id));
  }
  EXPECT_EQ(lifecycle.registry().size(), 0u);
  EXPECT_TRUE(scheduler.occupancy() == dc::Occupancy(datacenter));
}

TEST(LifecycleSimTest, HostFailureAndRepairAccounting) {
  const auto datacenter = small_dc(2, 2);
  core::OstroScheduler scheduler(datacenter, serial_config());
  core::PlacementService service(scheduler);

  LifecycleConfig config = churn_config();
  config.host_mtbf_s = 300.0;  // ~8 expected failures over the horizon
  config.host_repair_s = 100.0;
  Lifecycle lifecycle(service, config);
  const LifecycleStats stats = lifecycle.run();

  EXPECT_GT(stats.host_failures, 0u);
  EXPECT_LE(stats.host_repairs, stats.host_failures);
  EXPECT_EQ(stats.arrivals,
            stats.placements_committed + stats.placements_failed);
  // Killed stacks never depart on their lifetime timer.
  EXPECT_LE(stats.departures + stats.stacks_killed,
            stats.placements_committed);
}

}  // namespace
}  // namespace ostro::sim
