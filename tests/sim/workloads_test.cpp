#include "sim/workloads.h"

#include <gtest/gtest.h>

namespace ostro::sim {
namespace {

TEST(MultitierTest, StructureAtSize25) {
  util::Rng rng(1);
  const auto app = make_multitier(25, RequirementMix::kHomogeneous, rng);
  EXPECT_EQ(app.node_count(), 25u);
  // Complete bipartite between 5 tiers of 5: 4 boundaries x 25 pipes.
  EXPECT_EQ(app.edge_count(), 100u);
  // Two host-level zones per tier (5 -> 2+3).
  EXPECT_EQ(app.zones().size(), 10u);
  for (const auto& zone : app.zones()) {
    EXPECT_EQ(zone.level, topo::DiversityLevel::kHost);
    EXPECT_GE(zone.members.size(), 2u);
  }
}

TEST(MultitierTest, HomogeneousRequirements) {
  util::Rng rng(2);
  const auto app = make_multitier(50, RequirementMix::kHomogeneous, rng);
  for (const auto& node : app.nodes()) {
    EXPECT_EQ(node.requirements, (topo::Resources{2.0, 2.0, 0.0}));
  }
  for (const auto& edge : app.edges()) {
    EXPECT_DOUBLE_EQ(edge.bandwidth_mbps, 50.0);
  }
}

TEST(MultitierTest, HeterogeneousMixProportions) {
  util::Rng rng(3);
  const auto app = make_multitier(200, RequirementMix::kHeterogeneous, rng);
  int small = 0, medium = 0, large = 0;
  for (const auto& node : app.nodes()) {
    if (node.requirements.vcpus == 1.0) ++small;
    if (node.requirements.vcpus == 2.0) ++medium;
    if (node.requirements.vcpus == 4.0) ++large;
  }
  EXPECT_EQ(small + medium + large, 200);
  EXPECT_EQ(small, 80);   // 40%
  EXPECT_EQ(medium, 40);  // 20%
  EXPECT_EQ(large, 80);   // 40%
}

TEST(MultitierTest, EdgeBandwidthIsMinOfClasses) {
  util::Rng rng(4);
  const auto app = make_multitier(25, RequirementMix::kHeterogeneous, rng);
  for (const auto& edge : app.edges()) {
    EXPECT_TRUE(edge.bandwidth_mbps == 10.0 || edge.bandwidth_mbps == 50.0 ||
                edge.bandwidth_mbps == 100.0);
  }
}

TEST(MultitierTest, RejectsBadSizes) {
  util::Rng rng(5);
  EXPECT_THROW((void)make_multitier(0, RequirementMix::kHomogeneous, rng),
               std::invalid_argument);
  EXPECT_THROW((void)make_multitier(23, RequirementMix::kHomogeneous, rng),
               std::invalid_argument);
  EXPECT_THROW((void)make_multitier(-5, RequirementMix::kHomogeneous, rng),
               std::invalid_argument);
}

TEST(MultitierTest, DeterministicPerSeed) {
  util::Rng rng1(42), rng2(42), rng3(43);
  const auto a = make_multitier(50, RequirementMix::kHeterogeneous, rng1);
  const auto b = make_multitier(50, RequirementMix::kHeterogeneous, rng2);
  const auto c = make_multitier(50, RequirementMix::kHeterogeneous, rng3);
  for (std::size_t i = 0; i < a.node_count(); ++i) {
    EXPECT_EQ(a.nodes()[i].requirements, b.nodes()[i].requirements);
  }
  bool any_diff = false;
  for (std::size_t i = 0; i < a.node_count(); ++i) {
    if (!(a.nodes()[i].requirements == c.nodes()[i].requirements)) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(MeshTest, ZoneStructure) {
  util::Rng rng(6);
  const auto app = make_mesh(8, RequirementMix::kHomogeneous, rng);
  EXPECT_EQ(app.node_count(), 40u);  // 8 zones x 5 VMs
  EXPECT_EQ(app.zones().size(), 8u);
  for (const auto& zone : app.zones()) {
    EXPECT_EQ(zone.members.size(), 5u);
    EXPECT_EQ(zone.level, topo::DiversityLevel::kHost);
  }
}

TEST(MeshTest, ConnectivityRoughlyEightyPercent) {
  util::Rng rng(7);
  const auto app = make_mesh(20, RequirementMix::kHomogeneous, rng);
  // Each linked zone pair contributes exactly 5 pipes.
  const double pairs = static_cast<double>(app.edge_count()) / 5.0;
  const double max_pairs = 20.0 * 19.0 / 2.0;
  EXPECT_GT(pairs / max_pairs, 0.6);
  EXPECT_LE(pairs / max_pairs, 1.0);
}

TEST(MeshTest, ZeroConnectivityMeansNoEdges) {
  util::Rng rng(8);
  const auto app = make_mesh(5, RequirementMix::kHomogeneous, rng, 0.0);
  EXPECT_EQ(app.edge_count(), 0u);
}

TEST(MeshTest, RejectsBadParameters) {
  util::Rng rng(9);
  EXPECT_THROW((void)make_mesh(1, RequirementMix::kHomogeneous, rng),
               std::invalid_argument);
  EXPECT_THROW((void)make_mesh(5, RequirementMix::kHomogeneous, rng, 1.5),
               std::invalid_argument);
}

TEST(QfsTest, MatchesFigure5) {
  const auto app = make_qfs();
  // 14 VMs? 1 meta + 1 client + 12 chunks = 14 VMs, 15 volumes.
  std::size_t vms = 0, volumes = 0;
  for (const auto& node : app.nodes()) {
    if (node.kind == topo::NodeKind::kVm) ++vms;
    if (node.kind == topo::NodeKind::kVolume) ++volumes;
  }
  EXPECT_EQ(vms, 14u);
  EXPECT_EQ(volumes, 15u);
  // Pipes: 12 chunk-vol + 12 client-chunk + client-meta + 2 meta-vol +
  // client-vol = 28.
  EXPECT_EQ(app.edge_count(), 28u);
  // Total bandwidth: 12*100 + 12*100 + 10 + 20 + 10 = 2440.
  EXPECT_DOUBLE_EQ(app.total_edge_bandwidth(), 2440.0);
  // Chunk volumes in one host-level zone of 12.
  ASSERT_EQ(app.zones().size(), 1u);
  EXPECT_EQ(app.zones()[0].members.size(), 12u);
  EXPECT_EQ(app.zones()[0].level, topo::DiversityLevel::kHost);
  // Client is the large VM of Figure 5.
  const auto client = app.node(app.node_id("client"));
  EXPECT_EQ(client.requirements, (topo::Resources{4.0, 8.0, 0.0}));
}

TEST(GrowMultitierTest, PreservesPrefixAndAddsExtras) {
  util::Rng rng(10);
  const auto base = make_multitier(25, RequirementMix::kHeterogeneous, rng);
  util::Rng rng2(11);
  const auto grown = grow_multitier(base, 25, 3, 1,
                                    RequirementMix::kHeterogeneous, rng2);
  EXPECT_EQ(grown.node_count(), 28u);
  for (std::size_t i = 0; i < base.node_count(); ++i) {
    EXPECT_EQ(grown.nodes()[i].name, base.nodes()[i].name);
    EXPECT_EQ(grown.nodes()[i].requirements, base.nodes()[i].requirements);
  }
  EXPECT_GT(grown.edge_count(), base.edge_count());
  // New VMs join the tier's zones.
  std::size_t zone_members = 0;
  for (const auto& zone : grown.zones()) zone_members += zone.members.size();
  std::size_t base_members = 0;
  for (const auto& zone : base.zones()) base_members += zone.members.size();
  EXPECT_EQ(zone_members, base_members + 3);
}

TEST(GrowMultitierTest, RejectsBadArguments) {
  util::Rng rng(12);
  const auto base = make_multitier(25, RequirementMix::kHomogeneous, rng);
  EXPECT_THROW((void)grow_multitier(base, 25, 0, 1,
                                    RequirementMix::kHomogeneous, rng),
               std::invalid_argument);
  EXPECT_THROW((void)grow_multitier(base, 25, 2, 9,
                                    RequirementMix::kHomogeneous, rng),
               std::invalid_argument);
}

TEST(RequirementMixTest, ToString) {
  EXPECT_STREQ(to_string(RequirementMix::kHeterogeneous), "heterogeneous");
  EXPECT_STREQ(to_string(RequirementMix::kHomogeneous), "homogeneous");
}

}  // namespace
}  // namespace ostro::sim
