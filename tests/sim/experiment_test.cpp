#include "sim/experiment.h"

#include <gtest/gtest.h>

#include "sim/clusters.h"
#include "sim/workloads.h"

namespace ostro::sim {
namespace {

ExperimentSpec small_spec(core::Algorithm algorithm) {
  ExperimentSpec spec;
  spec.make_occupancy = [](util::Rng& rng) {
    static const auto dc = make_sim_datacenter(4, 8);
    dc::Occupancy occupancy(dc);
    apply_sim_preload(occupancy, rng);
    return occupancy;
  };
  spec.make_topology = [](util::Rng& rng) {
    return make_multitier(25, RequirementMix::kHeterogeneous, rng);
  };
  spec.algorithm = algorithm;
  spec.config.deadline_seconds = 0.2;
  spec.runs = 3;
  return spec;
}

TEST(ExperimentTest, CollectsAllRuns) {
  const ExperimentMetrics metrics = run_experiment(small_spec(
      core::Algorithm::kEg));
  EXPECT_EQ(metrics.reserved_bw_gbps.count(), 3u);
  EXPECT_EQ(metrics.runtime_seconds.count(), 3u);
  EXPECT_EQ(metrics.infeasible_runs, 0);
  EXPECT_GE(metrics.reserved_bw_gbps.mean(), 0.0);
  EXPECT_GE(metrics.total_active_hosts.mean(),
            metrics.new_active_hosts.mean());
}

TEST(ExperimentTest, SameSeedSameResults) {
  const ExperimentMetrics a = run_experiment(small_spec(core::Algorithm::kEg));
  const ExperimentMetrics b = run_experiment(small_spec(core::Algorithm::kEg));
  EXPECT_DOUBLE_EQ(a.reserved_bw_gbps.mean(), b.reserved_bw_gbps.mean());
  EXPECT_DOUBLE_EQ(a.new_active_hosts.mean(), b.new_active_hosts.mean());
}

TEST(ExperimentTest, AlgorithmsSeeIdenticalInputsPerRun) {
  // EG_C ignores pipes entirely, so its bandwidth should (weakly) exceed
  // EG's on the same seeds; mainly this checks the shared-input plumbing
  // doesn't crash and produces comparable series.
  const ExperimentMetrics eg = run_experiment(small_spec(core::Algorithm::kEg));
  const ExperimentMetrics egc =
      run_experiment(small_spec(core::Algorithm::kEgC));
  EXPECT_EQ(eg.reserved_bw_gbps.count(), egc.reserved_bw_gbps.count());
  EXPECT_GE(egc.reserved_bw_gbps.mean() + 1e-9, eg.reserved_bw_gbps.mean());
}

TEST(ExperimentTest, RejectsBadSpecs) {
  ExperimentSpec spec;
  EXPECT_THROW((void)run_experiment(spec), std::invalid_argument);
  spec = small_spec(core::Algorithm::kEg);
  spec.runs = 0;
  EXPECT_THROW((void)run_experiment(spec), std::invalid_argument);
}

TEST(ExperimentTest, InfeasibleRunsCounted) {
  ExperimentSpec spec = small_spec(core::Algorithm::kEg);
  // One-host data center cannot hold a 25-VM zoned multi-tier app.
  spec.make_occupancy = [](util::Rng&) {
    static const auto dc = make_sim_datacenter(1, 1);
    return dc::Occupancy(dc);
  };
  const ExperimentMetrics metrics = run_experiment(spec);
  EXPECT_EQ(metrics.infeasible_runs, 3);
  EXPECT_FALSE(metrics.first_failure.empty());
  EXPECT_EQ(metrics.reserved_bw_gbps.count(), 0u);
}

}  // namespace
}  // namespace ostro::sim
