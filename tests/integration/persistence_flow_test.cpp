// The CLI's file-based workflow, exercised through the same library calls
// the `ostro` tool makes: fleet JSON -> occupancy JSON -> template ->
// placement -> export -> re-validate -> commit -> snapshot -> next session.
#include <gtest/gtest.h>

#include "core/placement_io.h"
#include "core/scheduler.h"
#include "datacenter/dc_io.h"
#include "datacenter/report.h"
#include "net/reservation.h"
#include "openstack/heat_template.h"

namespace ostro {
namespace {

constexpr const char* kFleet = R"({
  "sites": [
    {"name": "east", "uplink_mbps": 100000,
     "pods": [
       {"name": "pod", "uplink_mbps": 50000,
        "racks": [
          {"name": "ra", "uplink_mbps": 20000,
           "hosts": [
             {"name": "a1", "vcpus": 16, "mem_gb": 64, "disk_gb": 1000,
              "uplink_mbps": 10000},
             {"name": "a2", "vcpus": 16, "mem_gb": 64, "disk_gb": 1000,
              "uplink_mbps": 10000, "tags": ["ssd"]}
           ]},
          {"name": "rb", "uplink_mbps": 20000,
           "hosts": [
             {"name": "b1", "vcpus": 16, "mem_gb": 64, "disk_gb": 1000,
              "uplink_mbps": 10000},
             {"name": "b2", "vcpus": 16, "mem_gb": 64, "disk_gb": 1000,
              "uplink_mbps": 10000}
           ]}
        ]}
     ]}
  ]
})";

constexpr const char* kApp = R"({
  "resources": {
    "fe": {"type": "OS::Nova::Server", "properties": {"flavor": "m1.medium"}},
    "db": {"type": "OS::Nova::Server",
           "properties": {"flavor": "m1.large", "required_tags": ["ssd"]}},
    "vol": {"type": "OS::Cinder::Volume", "properties": {"size_gb": 300}},
    "p0": {"type": "ATT::QoS::Pipe",
           "properties": {"from": "fe", "to": "db", "bandwidth_mbps": 200}},
    "p1": {"type": "ATT::QoS::Pipe",
           "properties": {"from": "db", "to": "vol", "bandwidth_mbps": 400}}
  }
})";

TEST(PersistenceFlowTest, FullSessionRoundTrip) {
  // Session 1: load fleet, place, persist everything.
  const dc::DataCenter datacenter = dc::datacenter_from_text(kFleet);
  const dc::Occupancy fresh(datacenter);
  const os::HeatTemplate parsed = os::HeatTemplate::parse_text(kApp);

  const core::Placement placement = core::place_topology(
      fresh, parsed.topology, core::Algorithm::kBaStar, core::SearchConfig{},
      nullptr, nullptr);
  ASSERT_TRUE(placement.feasible);
  EXPECT_EQ(datacenter
                .host(placement.assignment[parsed.topology.node_id("db")])
                .name,
            "a2");  // the only ssd host

  const std::string placement_text =
      core::placement_to_text(placement, parsed.topology, datacenter);
  dc::Occupancy committed = fresh;
  net::commit_placement(committed, parsed.topology, placement.assignment);
  const std::string fleet_text = dc::datacenter_to_json(datacenter).pretty();
  const std::string occupancy_text =
      dc::occupancy_to_json(committed).pretty();

  // Session 2: everything restored from text.
  const dc::DataCenter datacenter2 = dc::datacenter_from_text(fleet_text);
  const dc::Occupancy occupancy2 =
      dc::occupancy_from_text(datacenter2, occupancy_text);
  EXPECT_EQ(occupancy2.active_host_count(), committed.active_host_count());

  // The persisted placement validates against the *empty* restored fleet...
  const dc::Occupancy fresh2(datacenter2);
  const core::Placement restored = core::placement_from_text(
      placement_text, parsed.topology, fresh2, core::SearchConfig{});
  EXPECT_EQ(restored.assignment, placement.assignment);
  EXPECT_NEAR(restored.reserved_bandwidth_mbps,
              placement.reserved_bandwidth_mbps, 1e-9);

  // ...and a second copy of the app can still be planned on the restored
  // occupied fleet (capacity permitting), seeing the first one's load.
  const core::Placement second = core::place_topology(
      occupancy2, parsed.topology, core::Algorithm::kEg,
      core::SearchConfig{}, nullptr, nullptr);
  ASSERT_TRUE(second.feasible);
  EXPECT_EQ(second.new_active_hosts, 0);  // reuses the active hosts

  // The utilization report reflects the restored load.
  const auto report = dc::utilization_report(occupancy2);
  EXPECT_GT(report.cpu_used, 0.0);
  // BA* may have co-located the whole stack (all pipes free), so reserved
  // bandwidth is only weakly bounded.
  EXPECT_GE(report.bandwidth_reserved_mbps, 0.0);
}

TEST(PersistenceFlowTest, TamperedOccupancyRejected) {
  const dc::DataCenter datacenter = dc::datacenter_from_text(kFleet);
  EXPECT_THROW((void)dc::occupancy_from_text(
                   datacenter, R"({"hosts": {"a1": {"vcpus": 1e9}}})"),
               dc::DcIoError);
}

}  // namespace
}  // namespace ostro
