// Integration tests across module boundaries: the full Figure-1 pipeline on
// the paper's testbed, Ostro vs the naive Nova path, the QFS story end to
// end, and online adaptation.
#include <gtest/gtest.h>

#include <set>

#include "core/scheduler.h"
#include "core/verify.h"
#include "openstack/ostro_wrapper.h"
#include "qfs/qfs.h"
#include "sim/clusters.h"
#include "sim/workloads.h"
#include "util/string_util.h"

namespace ostro {
namespace {

/// QFS application as a QoS-enhanced Heat template (Figure 5 as JSON).
std::string qfs_template() {
  std::string resources;
  const auto add = [&](const std::string& entry) {
    if (!resources.empty()) resources += ",\n";
    resources += entry;
  };
  add(R"("meta": {"type": "OS::Nova::Server", "properties": {"flavor": "m1.small"}})");
  add(R"("client": {"type": "OS::Nova::Server", "properties": {"flavor": "m1.large"}})");
  std::string members;
  for (int i = 0; i < 12; ++i) {
    add(util::format(R"("chunk%d": {"type": "OS::Nova::Server",
        "properties": {"flavor": "m1.small"}})", i));
    add(util::format(R"("chunk%d-vol": {"type": "OS::Cinder::Volume",
        "properties": {"size_gb": 120}})", i));
    add(util::format(R"("pipe-cv%d": {"type": "ATT::QoS::Pipe",
        "properties": {"from": "chunk%d", "to": "chunk%d-vol",
                       "bandwidth_mbps": 100}})", i, i, i));
    add(util::format(R"("pipe-cc%d": {"type": "ATT::QoS::Pipe",
        "properties": {"from": "client", "to": "chunk%d",
                       "bandwidth_mbps": 100}})", i, i));
    if (!members.empty()) members += ", ";
    members += util::format(R"("chunk%d-vol")", i);
  }
  add(R"("pipe-cm": {"type": "ATT::QoS::Pipe",
      "properties": {"from": "client", "to": "meta", "bandwidth_mbps": 10}})");
  add(util::format(R"("dz-vols": {"type": "ATT::Valet::DiversityZone",
      "properties": {"level": "host", "members": [%s]}})", members.c_str()));
  return "{\n\"description\": \"QFS\",\n\"resources\": {\n" + resources +
         "\n}\n}";
}

TEST(EndToEndTest, Figure1PipelineOnTestbed) {
  const auto datacenter = sim::make_testbed();
  core::OstroScheduler scheduler(datacenter);
  util::Rng rng(42);
  sim::apply_testbed_preload(scheduler.occupancy(), rng);

  os::HeatEngine engine(scheduler.occupancy());
  os::OstroHeatWrapper wrapper(scheduler, engine);
  const os::WrapperResult result =
      wrapper.process_text(qfs_template(), core::Algorithm::kEg);
  ASSERT_TRUE(result.placement.feasible) << result.placement.failure_reason;
  ASSERT_TRUE(result.deployment.success) << result.deployment.failure;

  // The 12 chunk volumes ended up on 12 distinct hosts.
  const os::HeatTemplate parsed =
      os::HeatTemplate::parse(result.annotated_template);
  std::set<dc::HostId> volume_hosts;
  for (const auto& node : parsed.topology.nodes()) {
    if (node.kind == topo::NodeKind::kVolume &&
        node.name.find("chunk") == 0) {
      volume_hosts.insert(result.deployment.assignment[node.id]);
    }
  }
  EXPECT_EQ(volume_hosts.size(), 12u);
}

TEST(EndToEndTest, OstroBeatsNaiveNovaPathOnBandwidth) {
  const auto datacenter = sim::make_testbed();

  // Naive path: no Ostro, Nova/Cinder decide per resource.
  dc::Occupancy naive_occupancy(datacenter);
  os::HeatEngine naive_engine(naive_occupancy);
  const os::StackDeployment naive = naive_engine.deploy_text(qfs_template());

  // Ostro path.
  core::OstroScheduler scheduler(datacenter);
  os::HeatEngine engine(scheduler.occupancy());
  os::OstroHeatWrapper wrapper(scheduler, engine);
  const os::WrapperResult ostro =
      wrapper.process_text(qfs_template(), core::Algorithm::kEg);

  ASSERT_TRUE(ostro.deployment.success) << ostro.deployment.failure;
  if (naive.success) {
    EXPECT_LT(ostro.deployment.reserved_bandwidth_mbps,
              naive.reserved_bandwidth_mbps);
  }
}

TEST(EndToEndTest, QfsThroughputReflectsPlacementQuality) {
  const auto datacenter = sim::make_testbed();
  const auto app = sim::make_qfs();
  core::SearchConfig config;
  config.theta_bw = 0.99;
  config.theta_c = 0.01;

  double egc_rate = 0.0;
  double eg_rate = 0.0;
  for (const auto algorithm : {core::Algorithm::kEgC, core::Algorithm::kEg}) {
    dc::Occupancy occupancy(datacenter);
    util::Rng rng(3);
    sim::apply_testbed_preload(occupancy, rng);
    const core::Placement placement = core::place_topology(
        occupancy, app, algorithm, config, nullptr, nullptr);
    ASSERT_TRUE(placement.feasible) << core::to_string(algorithm);
    net::commit_placement(occupancy, app, placement.assignment);
    const qfs::QfsCluster cluster(app, placement.assignment, occupancy);
    const double rate = cluster.write_benchmark(4096.0, 2).aggregate_mbps;
    if (algorithm == core::Algorithm::kEgC) {
      egc_rate = rate;
    } else {
      eg_rate = rate;
    }
  }
  EXPECT_GT(eg_rate, 0.0);
  EXPECT_GT(egc_rate, 0.0);
  // Holistic placement should never do materially worse than bin packing.
  EXPECT_GE(eg_rate, egc_rate * 0.9);
}

TEST(EndToEndTest, OnlineAdaptationSectionIvE) {
  // Place a multi-tier app, grow it by 10% small VMs on tier 1, re-place
  // with everything old pinned: fast and valid.
  const auto datacenter = sim::make_sim_datacenter(10, 16);
  core::OstroScheduler scheduler(datacenter);
  util::Rng rng(21);
  sim::apply_sim_preload(scheduler.occupancy(), rng);

  const auto base = sim::make_multitier(50, sim::RequirementMix::kHeterogeneous,
                                        rng);
  core::SearchConfig config;
  config.deadline_seconds = 1.0;
  const core::Placement first =
      scheduler.deploy(base, core::Algorithm::kDbaStar, config);
  ASSERT_TRUE(first.feasible) << first.failure_reason;

  const auto grown = sim::grow_multitier(
      base, 50, 5, 1, sim::RequirementMix::kHeterogeneous, rng);
  core::PlacementRequest request;
  request.topology = &grown;
  request.config = config;
  request.pinned.assign(grown.node_count(), dc::kInvalidHost);
  for (topo::NodeId v = 0; v < base.node_count(); ++v) {
    request.pinned[v] = first.assignment[v];
  }
  // Note: the old application's reservations must be released before
  // re-placement, otherwise its resources double-count.
  core::OstroScheduler replan(datacenter);
  util::Rng rng2(21);
  sim::apply_sim_preload(replan.occupancy(), rng2);
  const core::Placement delta =
      replan.plan(request, core::Algorithm::kDbaStar);
  if (delta.feasible) {
    for (topo::NodeId v = 0; v < base.node_count(); ++v) {
      EXPECT_EQ(delta.assignment[v], first.assignment[v]);
    }
    EXPECT_TRUE(core::verify_placement(replan.occupancy(), grown,
                                       delta.assignment)
                    .empty());
  } else {
    // Section IV-E: a growing delta can force re-positioning of previously
    // placed nodes.  Unpin everything and require the full re-plan to work.
    core::PlacementRequest full = request;
    full.pinned.clear();
    const core::Placement replaced =
        replan.plan(full, core::Algorithm::kDbaStar);
    ASSERT_TRUE(replaced.feasible) << replaced.failure_reason;
    EXPECT_TRUE(core::verify_placement(replan.occupancy(), grown,
                                       replaced.assignment)
                    .empty());
  }
}

TEST(EndToEndTest, MeshWorkloadThroughFullStack) {
  const auto datacenter = sim::make_sim_datacenter(8, 16);
  core::OstroScheduler scheduler(datacenter);
  util::Rng rng(99);
  const auto app = sim::make_mesh(6, sim::RequirementMix::kHeterogeneous, rng);
  core::SearchConfig config;
  config.deadline_seconds = 0.5;
  const core::Placement placement =
      scheduler.deploy(app, core::Algorithm::kDbaStar, config);
  ASSERT_TRUE(placement.feasible) << placement.failure_reason;
  EXPECT_TRUE(core::verify_placement(dc::Occupancy(datacenter), app,
                                     placement.assignment)
                  .empty());
}

}  // namespace
}  // namespace ostro
