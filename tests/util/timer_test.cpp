#include "util/timer.h"

#include <gtest/gtest.h>

#include <thread>

namespace ostro::util {
namespace {

TEST(WallTimerTest, ElapsedGrowsMonotonically) {
  WallTimer timer;
  const double t0 = timer.elapsed_seconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double t1 = timer.elapsed_seconds();
  EXPECT_GE(t0, 0.0);
  EXPECT_GT(t1, t0);
  EXPECT_GE(t1, 0.004);
}

TEST(WallTimerTest, ResetRestarts) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  timer.reset();
  EXPECT_LT(timer.elapsed_seconds(), 0.004);
}

TEST(WallTimerTest, MillisMatchSeconds) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double s = timer.elapsed_seconds();
  const double ms = timer.elapsed_millis();
  EXPECT_NEAR(ms, s * 1000.0, 5.0);
}

TEST(DeadlineTest, UnlimitedNeverExpires) {
  const Deadline deadline = Deadline::unlimited();
  EXPECT_TRUE(deadline.is_unlimited());
  EXPECT_FALSE(deadline.expired());
  EXPECT_GT(deadline.remaining_seconds(), 1e9);
}

TEST(DeadlineTest, NonPositiveBudgetIsUnlimited) {
  const Deadline deadline(-1.0);
  EXPECT_TRUE(deadline.is_unlimited());
  EXPECT_FALSE(deadline.expired());
}

TEST(DeadlineTest, ExpiresAfterBudget) {
  const Deadline deadline(0.01);
  EXPECT_FALSE(deadline.is_unlimited());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(deadline.expired());
  EXPECT_DOUBLE_EQ(deadline.remaining_seconds(), 0.0);
}

TEST(DeadlineTest, RemainingDecreases) {
  const Deadline deadline(10.0);
  const double r0 = deadline.remaining_seconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double r1 = deadline.remaining_seconds();
  EXPECT_LT(r1, r0);
  EXPECT_GT(r1, 9.0);
  EXPECT_DOUBLE_EQ(deadline.budget_seconds(), 10.0);
}

}  // namespace
}  // namespace ostro::util
