#include "util/args.h"

#include <gtest/gtest.h>

namespace ostro::util {
namespace {

ArgParser make_parser() {
  ArgParser parser("prog", "test program");
  parser.add_flag("verbose", "enable chatter");
  parser.add_int("runs", 3, "number of runs");
  parser.add_double("theta", 0.6, "weight");
  parser.add_string("algo", "eg", "algorithm");
  return parser;
}

bool parse(ArgParser& parser, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return parser.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParserTest, DefaultsApply) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parse(parser, {}));
  EXPECT_FALSE(parser.flag("verbose"));
  EXPECT_EQ(parser.get_int("runs"), 3);
  EXPECT_DOUBLE_EQ(parser.get_double("theta"), 0.6);
  EXPECT_EQ(parser.get_string("algo"), "eg");
}

TEST(ArgParserTest, SpaceSeparatedValues) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parse(parser, {"--runs", "10", "--theta", "0.9", "--algo",
                             "dba", "--verbose"}));
  EXPECT_TRUE(parser.flag("verbose"));
  EXPECT_EQ(parser.get_int("runs"), 10);
  EXPECT_DOUBLE_EQ(parser.get_double("theta"), 0.9);
  EXPECT_EQ(parser.get_string("algo"), "dba");
}

TEST(ArgParserTest, EqualsSeparatedValues) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parse(parser, {"--runs=7", "--theta=0.25", "--algo=ba"}));
  EXPECT_EQ(parser.get_int("runs"), 7);
  EXPECT_DOUBLE_EQ(parser.get_double("theta"), 0.25);
  EXPECT_EQ(parser.get_string("algo"), "ba");
}

TEST(ArgParserTest, PositionalArguments) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parse(parser, {"input.json", "--runs", "2", "extra"}));
  EXPECT_EQ(parser.positional(),
            (std::vector<std::string>{"input.json", "extra"}));
}

TEST(ArgParserTest, UnknownOptionThrows) {
  ArgParser parser = make_parser();
  EXPECT_THROW(parse(parser, {"--nope"}), std::invalid_argument);
}

TEST(ArgParserTest, MissingValueThrows) {
  ArgParser parser = make_parser();
  EXPECT_THROW(parse(parser, {"--runs"}), std::invalid_argument);
}

// Regression test: the seed parser silently consumed a following --option
// token as the value, so "--algo --verbose" set algo to the literal string
// "--verbose" and swallowed the flag.  A value slot followed by another
// option must be a hard "requires a value" error instead.
TEST(ArgParserTest, OptionTokenIsNeverConsumedAsValue) {
  ArgParser parser = make_parser();
  EXPECT_THROW(parse(parser, {"--algo", "--verbose"}), std::invalid_argument);
  ArgParser parser2 = make_parser();
  EXPECT_THROW(parse(parser2, {"--runs", "--theta", "0.5"}),
               std::invalid_argument);
  // The error must steer toward the --option=VALUE escape hatch.
  ArgParser parser3 = make_parser();
  try {
    parse(parser3, {"--algo", "--verbose"});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("requires a value"),
              std::string::npos);
  }
}

// Negative numbers start with a single dash and must still parse as
// space-separated values; "--" itself is only rejected as a prefix.
TEST(ArgParserTest, NegativeNumbersStillParseAsValues) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parse(parser, {"--runs", "-2", "--theta", "-0.5"}));
  EXPECT_EQ(parser.get_int("runs"), -2);
  EXPECT_DOUBLE_EQ(parser.get_double("theta"), -0.5);
  // --algo=--verbose remains expressible via the equals form.
  ArgParser parser2 = make_parser();
  ASSERT_TRUE(parse(parser2, {"--algo=--verbose"}));
  EXPECT_EQ(parser2.get_string("algo"), "--verbose");
}

TEST(ArgParserTest, BadValueThrows) {
  ArgParser parser = make_parser();
  EXPECT_THROW(parse(parser, {"--runs", "abc"}), std::invalid_argument);
  ArgParser parser2 = make_parser();
  EXPECT_THROW(parse(parser2, {"--theta", "1.2.3"}), std::invalid_argument);
  ArgParser parser3 = make_parser();
  EXPECT_THROW(parse(parser3, {"--verbose=1"}), std::invalid_argument);
}

TEST(ArgParserTest, HelpReturnsFalse) {
  ArgParser parser = make_parser();
  EXPECT_FALSE(parse(parser, {"--help"}));
}

TEST(ArgParserTest, UndeclaredLookupIsLogicError) {
  ArgParser parser = make_parser();
  ASSERT_TRUE(parse(parser, {}));
  EXPECT_THROW((void)parser.get_int("theta"), std::logic_error);  // wrong kind
  EXPECT_THROW((void)parser.flag("runs"), std::logic_error);
  EXPECT_THROW((void)parser.get_string("nope"), std::logic_error);
}

TEST(ArgParserTest, DuplicateDeclarationThrows) {
  ArgParser parser("p", "d");
  parser.add_int("x", 1, "first");
  EXPECT_THROW(parser.add_flag("x", "dup"), std::logic_error);
}

TEST(ArgParserTest, UsageMentionsOptionsAndDefaults) {
  ArgParser parser = make_parser();
  const std::string usage = parser.usage();
  EXPECT_NE(usage.find("--runs"), std::string::npos);
  EXPECT_NE(usage.find("default: 3"), std::string::npos);
  EXPECT_NE(usage.find("--algo"), std::string::npos);
}

}  // namespace
}  // namespace ostro::util
