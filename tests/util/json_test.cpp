#include "util/json.h"

#include <gtest/gtest.h>

namespace ostro::util {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(Json::parse("3.5").as_number(), 3.5);
  EXPECT_DOUBLE_EQ(Json::parse("-42").as_number(), -42.0);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_number(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParseTest, NestedStructure) {
  const Json doc = Json::parse(R"({
    "name": "stack",
    "count": 3,
    "resources": [{"id": 1}, {"id": 2}],
    "nested": {"deep": {"value": true}}
  })");
  EXPECT_EQ(doc.at("name").as_string(), "stack");
  EXPECT_EQ(doc.at("count").as_int(), 3);
  EXPECT_EQ(doc.at("resources").size(), 2u);
  EXPECT_EQ(doc.at("resources").at(1).at("id").as_int(), 2);
  EXPECT_TRUE(doc.at("nested").at("deep").at("value").as_bool());
}

TEST(JsonParseTest, StringEscapes) {
  const Json doc = Json::parse(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(doc.as_string(), "a\"b\\c\nd\teA");
}

TEST(JsonParseTest, UnicodeEscapeUtf8) {
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");   // é
  EXPECT_EQ(Json::parse(R"("€")").as_string(), "\xe2\x82\xac");  // €
}

TEST(JsonParseTest, WhitespaceTolerant) {
  const Json doc = Json::parse("  {\n\t\"a\" : [ 1 , 2 ] }\r\n");
  EXPECT_EQ(doc.at("a").size(), 2u);
}

TEST(JsonParseTest, EmptyContainers) {
  EXPECT_EQ(Json::parse("[]").size(), 0u);
  EXPECT_EQ(Json::parse("{}").size(), 0u);
}

TEST(JsonParseTest, MalformedDocumentsThrow) {
  const char* bad[] = {
      "",          "{",        "[1,",     "tru",      "\"unterminated",
      "{\"a\":}",  "[1 2]",    "{1: 2}",  "1 2",      "nul",
      "\"\\q\"",   "{\"a\" 1}", "[,]",    "--3",      "\"\\u12\"",
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)Json::parse(text), JsonError) << text;
  }
}

TEST(JsonParseTest, ControlCharacterInStringThrows) {
  EXPECT_THROW((void)Json::parse("\"a\nb\""), JsonError);
}

TEST(JsonParseTest, SurrogateEscapeRejected) {
  EXPECT_THROW((void)Json::parse(R"("\ud834")"), JsonError);
}

TEST(JsonAccessTest, TypeMismatchThrows) {
  const Json doc = Json::parse(R"({"a": 1})");
  EXPECT_THROW((void)doc.as_array(), JsonError);
  EXPECT_THROW((void)doc.at("a").as_string(), JsonError);
  EXPECT_THROW((void)doc.at("missing"), JsonError);
  EXPECT_THROW((void)doc.at(std::size_t{0}), JsonError);
  EXPECT_THROW((void)Json(1.5).as_int(), JsonError);
}

TEST(JsonAccessTest, GetOrAndDefaults) {
  const Json doc = Json::parse(R"({"a": 1, "s": "x"})");
  EXPECT_DOUBLE_EQ(doc.number_or("a", 9.0), 1.0);
  EXPECT_DOUBLE_EQ(doc.number_or("b", 9.0), 9.0);
  EXPECT_EQ(doc.string_or("s", "d"), "x");
  EXPECT_EQ(doc.string_or("t", "d"), "d");
  EXPECT_TRUE(doc.contains("a"));
  EXPECT_FALSE(doc.contains("zz"));
}

TEST(JsonDumpTest, RoundTripEquality) {
  const char* documents[] = {
      R"({"b":[1,2,{"c":null}],"a":true})",
      R"([1.5,"x",false,{}])",
      R"("plain")",
      R"({"nested":{"deep":[[],[1]]}})",
  };
  for (const char* text : documents) {
    const Json parsed = Json::parse(text);
    const Json reparsed = Json::parse(parsed.dump());
    EXPECT_EQ(parsed, reparsed) << text;
    const Json repretty = Json::parse(parsed.pretty());
    EXPECT_EQ(parsed, repretty) << text;
  }
}

TEST(JsonDumpTest, IntegersPrintWithoutDecimals) {
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-3.0).dump(), "-3");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
}

TEST(JsonDumpTest, EscapesSpecialCharacters) {
  const Json doc(std::string("a\"b\\c\nd"));
  EXPECT_EQ(doc.dump(), R"("a\"b\\c\nd")");
  EXPECT_EQ(Json::parse(doc.dump()), doc);
}

TEST(JsonDumpTest, ObjectKeysSorted) {
  const Json doc = Json::parse(R"({"z":1,"a":2})");
  EXPECT_EQ(doc.dump(), R"({"a":2,"z":1})");
}

TEST(JsonEqualityTest, DeepEquality) {
  EXPECT_EQ(Json::parse("[1,[2,3]]"), Json::parse("[1,[2,3]]"));
  EXPECT_FALSE(Json::parse("[1]") == Json::parse("[2]"));
  EXPECT_FALSE(Json(1) == Json("1"));
}

TEST(JsonBuildTest, ProgrammaticConstruction) {
  JsonObject object;
  object["list"] = Json(JsonArray{Json(1), Json("two"), Json(nullptr)});
  object["flag"] = Json(true);
  const Json doc{std::move(object)};
  EXPECT_EQ(doc.at("list").at(1).as_string(), "two");
  EXPECT_TRUE(doc.at("list").at(2).is_null());
  EXPECT_TRUE(doc.at("flag").as_bool());
}

}  // namespace
}  // namespace ostro::util
