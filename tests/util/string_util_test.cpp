#include "util/string_util.h"

#include <gtest/gtest.h>

namespace ostro::util {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(split("solo", ','), (std::vector<std::string>{"solo"}));
}

TEST(TrimTest, StripsBothEnds) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\na b\r "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("nospace"), "nospace");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-f", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
  EXPECT_FALSE(starts_with("", "a"));
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(to_lower("AbC-12"), "abc-12");
  EXPECT_EQ(to_lower(""), "");
}

TEST(FormatTest, PrintfSemantics) {
  EXPECT_EQ(format("x=%d y=%.2f s=%s", 3, 1.5, "ok"), "x=3 y=1.50 s=ok");
  EXPECT_EQ(format("%s", ""), "");
  // Long output beyond any small internal buffer.
  const std::string long_arg(500, 'a');
  EXPECT_EQ(format("%s", long_arg.c_str()).size(), 500u);
}

TEST(ParseIntListTest, ValidLists) {
  EXPECT_EQ(parse_int_list("1,2,3"), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(parse_int_list(" 25 , 50 "), (std::vector<int>{25, 50}));
  EXPECT_EQ(parse_int_list("-7"), (std::vector<int>{-7}));
}

TEST(ParseIntListTest, MalformedThrows) {
  EXPECT_THROW((void)parse_int_list("1,,2"), std::invalid_argument);
  EXPECT_THROW((void)parse_int_list("a"), std::invalid_argument);
  EXPECT_THROW((void)parse_int_list("1x"), std::invalid_argument);
  EXPECT_THROW((void)parse_int_list(""), std::invalid_argument);
}

}  // namespace
}  // namespace ostro::util
