#include "util/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ostro::util::metrics {
namespace {

TEST(MetricsTest, CounterCountsAndResets) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.inc();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(MetricsTest, SummaryTracksCountSumMinMaxMean) {
  Summary summary;
  summary.observe(2.0);
  summary.observe(8.0);
  summary.observe(5.0);
  const Summary::Snapshot snap = summary.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 15.0);
  EXPECT_DOUBLE_EQ(snap.min, 2.0);
  EXPECT_DOUBLE_EQ(snap.max, 8.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 5.0);
  summary.reset();
  const Summary::Snapshot zero = summary.snapshot();
  EXPECT_EQ(zero.count, 0u);
  EXPECT_DOUBLE_EQ(zero.sum, 0.0);
  EXPECT_DOUBLE_EQ(zero.min, 0.0);
  EXPECT_DOUBLE_EQ(zero.max, 0.0);
  EXPECT_DOUBLE_EQ(zero.mean(), 0.0);
}

TEST(MetricsTest, RegistryReturnsStableInstruments) {
  Registry& registry = Registry::global();
  Counter& a = registry.counter("metrics_test.stable");
  Counter& b = registry.counter("metrics_test.stable");
  EXPECT_EQ(&a, &b);
  Summary& s1 = registry.summary("metrics_test.stable_summary");
  Summary& s2 = registry.summary("metrics_test.stable_summary");
  EXPECT_EQ(&s1, &s2);
}

TEST(MetricsTest, SetEnabledStopsCollection) {
  Counter& counter = Registry::global().counter("metrics_test.switch");
  counter.reset();
  counter.inc();
  EXPECT_EQ(counter.value(), 1u);
  set_enabled(false);
  counter.inc();
  counter.add(10);
  Summary& summary = Registry::global().summary("metrics_test.switch_sum");
  summary.reset();
  summary.observe(3.0);
  set_enabled(true);
  EXPECT_EQ(counter.value(), 1u);
  EXPECT_EQ(summary.snapshot().count, 0u);
}

TEST(MetricsTest, ScopedTimerObservesOnScopeExit) {
  Summary& summary = Registry::global().summary("metrics_test.timer");
  summary.reset();
  {
    const ScopedTimer timer(summary);
    EXPECT_EQ(summary.snapshot().count, 0u);  // nothing until scope exit
  }
  const Summary::Snapshot snap = summary.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_GE(snap.sum, 0.0);
}

TEST(MetricsTest, CountersAreExactUnderConcurrency) {
  Counter& counter = Registry::global().counter("metrics_test.concurrent");
  counter.reset();
  Summary& summary = Registry::global().summary("metrics_test.concurrent_sum");
  summary.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &summary] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.inc();
        summary.observe(1.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  const Summary::Snapshot snap = summary.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(snap.sum, static_cast<double>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 1.0);
}

TEST(MetricsTest, JsonExportCarriesCountersAndSummaries) {
  Registry& registry = Registry::global();
  registry.counter("metrics_test.json_counter").reset();
  registry.counter("metrics_test.json_counter").add(7);
  registry.summary("metrics_test.json_summary").reset();
  registry.summary("metrics_test.json_summary").observe(2.5);
  registry.summary("metrics_test.json_summary").observe(4.5);

  const Json json = registry.to_json();
  const Json& counters = json.at("counters");
  EXPECT_DOUBLE_EQ(counters.at("metrics_test.json_counter").as_number(), 7.0);
  const Json& summary = json.at("summaries").at("metrics_test.json_summary");
  EXPECT_DOUBLE_EQ(summary.at("count").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(summary.at("sum").as_number(), 7.0);
  EXPECT_DOUBLE_EQ(summary.at("min").as_number(), 2.5);
  EXPECT_DOUBLE_EQ(summary.at("max").as_number(), 4.5);
  EXPECT_DOUBLE_EQ(summary.at("mean").as_number(), 3.5);
  // Round-trips through the parser (the bench JSON block consumers rely on
  // this).
  EXPECT_EQ(Json::parse(json.dump()), json);
}

TEST(MetricsTest, RegistryResetZeroesEverything) {
  Registry& registry = Registry::global();
  Counter& counter = registry.counter("metrics_test.reset_counter");
  Summary& summary = registry.summary("metrics_test.reset_summary");
  counter.add(3);
  summary.observe(1.0);
  registry.reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(summary.snapshot().count, 0u);
  EXPECT_EQ(registry.counter_value("metrics_test.reset_counter"), 0u);
}

TEST(MetricsTest, LookupOfAbsentInstrumentsIsZero) {
  const Registry& registry = Registry::global();
  EXPECT_EQ(registry.counter_value("metrics_test.never_created"), 0u);
  EXPECT_EQ(registry.summary_snapshot("metrics_test.never_created").count, 0u);
}

}  // namespace
}  // namespace ostro::util::metrics
