#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ostro::util {
namespace {

TEST(ThreadPoolTest, SizeDefaultsToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPoolTest, ParallelForSmallRunsInline) {
  ThreadPool pool(4);
  std::vector<int> order;
  // n < 2*workers runs inline and therefore in order.
  pool.parallel_for(3, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ThreadPoolTest, ParallelForComputesCorrectSum) {
  ThreadPool pool(4);
  std::vector<long> partial(1000);
  pool.parallel_for(1000, [&](std::size_t i) {
    partial[i] = static_cast<long>(i);
  });
  EXPECT_EQ(std::accumulate(partial.begin(), partial.end(), 0L),
            999L * 1000L / 2);
}

TEST(ThreadPoolTest, ParallelForRethrowsBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 57) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

// Regression test: parallel_for must wait for ALL blocks before rethrowing.
// The seed implementation rethrew from the first failed future while later
// blocks were still executing; the workers then held a dangling reference to
// the caller's `body` and captures (`data` below) after the stack unwound —
// a use-after-free that ASan/TSan flag.  Without sanitizers the test still
// fails on the seed: blocks that were mid-flight when the exception escaped
// have `started` incremented but not `finished`.
TEST(ThreadPoolTest, ParallelForWaitsForAllBlocksBeforeRethrow) {
  ThreadPool pool(4);
  std::atomic<int> started{0};
  std::atomic<int> finished{0};
  const std::size_t n = 16;  // 4 blocks of 4 on a 4-worker pool
  try {
    std::vector<int> data(n, 0);
    pool.parallel_for(n, [&](std::size_t i) {
      if (i == 0) {
        // Let at least one other block get going before throwing, so the
        // seed's early rethrow provably races with live blocks.
        while (started.load() == 0) std::this_thread::yield();
        throw std::runtime_error("boom");
      }
      ++started;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      data[i] = 1;  // dangling write if parallel_for already returned
      ++finished;
    });
    FAIL() << "parallel_for should have rethrown";
  } catch (const std::runtime_error&) {
    // At the instant the exception escapes, no block may still be running.
    EXPECT_EQ(started.load(), finished.load());
  }
}

TEST(RunWorkersTest, CoversAllWorkerIndices) {
  std::vector<std::atomic<int>> hits(8);
  run_workers(8, [&](std::size_t t) { ++hits[t]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RunWorkersTest, ZeroWorkersIsNoop) {
  bool touched = false;
  run_workers(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

// Regression test: bench worker fan-out used bare std::thread, so a body
// exception escaped the thread and took the whole process down with
// std::terminate.  run_workers must deliver it to the caller instead —
// and only after every worker joined, so no capture dangles.
TEST(RunWorkersTest, RethrowsBodyExceptionAfterAllWorkersJoin) {
  std::atomic<int> started{0};
  std::atomic<int> finished{0};
  try {
    run_workers(4, [&](std::size_t t) {
      if (t == 0) {
        while (started.load() == 0) std::this_thread::yield();
        throw std::runtime_error("boom");
      }
      ++started;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      ++finished;
    });
    FAIL() << "run_workers should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
    // At the instant the exception escapes, every worker has joined.
    EXPECT_EQ(started.load(), finished.load());
    EXPECT_EQ(finished.load(), 3);
  }
}

TEST(RunWorkersTest, FirstWorkerIndexExceptionWinsWhenSeveralThrow) {
  try {
    run_workers(3, [](std::size_t t) {
      throw std::runtime_error("worker " + std::to_string(t));
    });
    FAIL() << "run_workers should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "worker 0");
  }
}

TEST(ThreadPoolTest, SingleWorkerPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.parallel_for(50, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace ostro::util
