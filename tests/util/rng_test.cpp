#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace ostro::util {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(RngTest, NextBelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW((void)rng.next_below(0), std::invalid_argument);
}

TEST(RngTest, NextBelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(99);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values should appear
}

TEST(RngTest, UniformIntDegenerate) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(RngTest, UniformIntBadRangeThrows) {
  Rng rng(5);
  EXPECT_THROW((void)rng.uniform_int(5, 4), std::invalid_argument);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(RngTest, Uniform01MeanIsPlausible) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleSingletonAndEmptyAreNoops) {
  Rng rng(23);
  std::vector<int> empty;
  std::vector<int> one{42};
  rng.shuffle(empty);
  rng.shuffle(one);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(one.front(), 42);
}

TEST(RngTest, SampleIndicesDistinct) {
  Rng rng(31);
  const auto sample = rng.sample_indices(20, 8);
  ASSERT_EQ(sample.size(), 8u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 8u);
  for (const auto index : sample) EXPECT_LT(index, 20u);
}

TEST(RngTest, SampleIndicesFullAndOverflow) {
  Rng rng(31);
  EXPECT_EQ(rng.sample_indices(5, 5).size(), 5u);
  EXPECT_THROW((void)rng.sample_indices(3, 4), std::invalid_argument);
}

TEST(RngTest, ForkIsDeterministicAndIndependent) {
  const Rng parent(77);
  Rng a = parent.fork(0);
  Rng b = parent.fork(0);
  Rng c = parent.fork(1);
  EXPECT_EQ(a.next(), b.next());
  // Streams 0 and 1 should differ immediately with high probability.
  Rng a2 = parent.fork(0);
  EXPECT_NE(a2.next(), c.next());
}

TEST(RngTest, PickThrowsOnEmpty) {
  Rng rng(1);
  const std::vector<int> empty;
  EXPECT_THROW((void)rng.pick(std::span<const int>(empty)),
               std::invalid_argument);
}

TEST(RngTest, PickReturnsMember) {
  Rng rng(1);
  const std::vector<int> items{5, 6, 7};
  for (int i = 0; i < 50; ++i) {
    const int v = rng.pick(std::span<const int>(items));
    EXPECT_TRUE(v == 5 || v == 6 || v == 7);
  }
}

}  // namespace
}  // namespace ostro::util
