#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ostro::util {
namespace {

TEST(TablePrinterTest, AlignedOutput) {
  TablePrinter table({"Algo", "Bandwidth"});
  table.add_row({"EG", "2000"});
  table.add_row({"DBA*", "1980"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Algo"), std::string::npos);
  EXPECT_NE(out.find("DBA*"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.add_row({"1", "x,y"});
  table.add_row({"he said \"hi\"", "2"});
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,\"x,y\"\n\"he said \"\"hi\"\"\",2\n");
}

TEST(TablePrinterTest, RowWidthMismatchThrows) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(table.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(TablePrinterTest, NoHeadersThrows) {
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

TEST(TablePrinterTest, CellFormatting) {
  EXPECT_EQ(TablePrinter::cell(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::cell(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::cell(std::int64_t{42}), "42");
}

TEST(TablePrinterTest, RowCount) {
  TablePrinter table({"x"});
  EXPECT_EQ(table.rows(), 0u);
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.rows(), 2u);
}

}  // namespace
}  // namespace ostro::util
