// Forced epoch-wraparound regression tests for the epoch-stamped
// containers (util/arena.h).  Both StampedSet64 and FlatMap64 implement
// clear() as an epoch bump; when the 32-bit epoch overflows, the guard must
// scrub every stale stamp and restart at epoch 1 — otherwise entries
// written ~4 billion clears ago would alias the restarted epoch and read
// as present.  debug_force_epoch() jumps straight to the overflow edge so
// the guard runs in a unit test.  Tables are reserved up front: grow()
// also resets the epoch, which would bypass the code path under test.
#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace ostro::util {
namespace {

TEST(StampedSet64Test, EpochWrapScrubsStaleStamps) {
  StampedSet64 set;
  set.reserve(16);
  EXPECT_TRUE(set.insert(1));
  EXPECT_TRUE(set.insert(2));
  EXPECT_TRUE(set.insert(3));
  ASSERT_TRUE(set.contains(2));

  // The entries above are stamped with epoch 1.  Jump to the last epoch
  // and clear: the wrap restarts at epoch 1 — exactly the value of the
  // stale stamps, which only the scrub keeps from reading as current.
  set.debug_force_epoch(0xFFFFFFFFU);
  set.clear();
  EXPECT_EQ(set.size(), 0U);
  EXPECT_FALSE(set.contains(1));
  EXPECT_FALSE(set.contains(2));
  EXPECT_FALSE(set.contains(3));

  // The set keeps working after the wrap.
  EXPECT_TRUE(set.insert(2));
  EXPECT_FALSE(set.insert(2));
  EXPECT_TRUE(set.contains(2));
  EXPECT_FALSE(set.contains(1));
  set.clear();  // ordinary post-wrap clear (epoch 1 -> 2)
  EXPECT_FALSE(set.contains(2));
  EXPECT_TRUE(set.insert(2));
}

TEST(StampedSet64Test, RepeatedForcedWrapsStayConsistent) {
  StampedSet64 set;
  set.reserve(16);
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t k = 0; k < 8; ++k) {
      EXPECT_TRUE(set.insert(k * 1000 + static_cast<std::uint64_t>(round)));
    }
    EXPECT_EQ(set.size(), 8U);
    set.debug_force_epoch(0xFFFFFFFFU);
    set.clear();
    for (std::uint64_t k = 0; k < 8; ++k) {
      EXPECT_FALSE(set.contains(k * 1000 + static_cast<std::uint64_t>(round)));
    }
  }
}

TEST(FlatMap64Test, EpochWrapScrubsStaleSlots) {
  FlatMap64<int> map;
  map.reserve(16);
  EXPECT_TRUE(map.insert_if_absent(1, 10));
  EXPECT_TRUE(map.insert_if_absent(2, 20));
  ASSERT_NE(map.find(1), nullptr);
  EXPECT_EQ(*map.find(1), 10);

  // Same aliasing hazard as the set: slots stamped (epoch 1) must not
  // resurface when the wrapped clear restarts the epoch at 1.
  map.debug_force_epoch(0xFFFFFFFFU);
  map.clear();
  EXPECT_EQ(map.size(), 0U);
  EXPECT_EQ(map.find(1), nullptr);
  EXPECT_EQ(map.find(2), nullptr);

  EXPECT_TRUE(map.insert_if_absent(2, 99));
  ASSERT_NE(map.find(2), nullptr);
  EXPECT_EQ(*map.find(2), 99);
  std::vector<std::pair<std::uint64_t, int>> seen;
  map.for_each([&](std::uint64_t key, int value) {
    seen.emplace_back(key, value);
  });
  ASSERT_EQ(seen.size(), 1U);
  EXPECT_EQ(seen[0].first, 2U);
  EXPECT_EQ(seen[0].second, 99);
}

TEST(FlatMap64Test, GetOrInsertAfterForcedWrapTreatsSlotsAsEmpty) {
  FlatMap64<double> map;
  map.reserve(16);
  bool inserted = false;
  map.get_or_insert(7, inserted) = 1.5;
  EXPECT_TRUE(inserted);
  map.debug_force_epoch(0xFFFFFFFFU);
  map.clear();
  map.get_or_insert(7, inserted) = 2.5;
  EXPECT_TRUE(inserted);  // pre-wrap slot must not be found
  ASSERT_NE(map.find(7), nullptr);
  EXPECT_EQ(*map.find(7), 2.5);
}

}  // namespace
}  // namespace ostro::util
