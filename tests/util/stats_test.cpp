#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ostro::util {
namespace {

TEST(AccumulatorTest, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(AccumulatorTest, SingleSample) {
  Accumulator acc;
  acc.add(5.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 5.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
}

TEST(AccumulatorTest, KnownMoments) {
  Accumulator acc;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(AccumulatorTest, NegativeValues) {
  Accumulator acc;
  acc.add(-3.0);
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), -3.0);
  EXPECT_DOUBLE_EQ(acc.max(), 3.0);
}

TEST(SamplesTest, MeanAndStddev) {
  Samples s;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(SamplesTest, PercentileInterpolates) {
  Samples s;
  for (const double v : {10.0, 20.0, 30.0, 40.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(25.0), 17.5);
}

TEST(SamplesTest, PercentileSingleValue) {
  Samples s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(99.0), 7.0);
}

TEST(SamplesTest, PercentileAfterLaterAdds) {
  Samples s;
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.0);
  s.add(3.0);  // cache must invalidate
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(SamplesTest, ErrorsOnEmptyAndBadP) {
  Samples s;
  EXPECT_THROW((void)s.percentile(50.0), std::logic_error);
  EXPECT_THROW((void)s.min(), std::logic_error);
  s.add(1.0);
  EXPECT_THROW((void)s.percentile(-1.0), std::invalid_argument);
  EXPECT_THROW((void)s.percentile(101.0), std::invalid_argument);
}

TEST(SamplesTest, EmptyMeanIsZero) {
  const Samples s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

}  // namespace
}  // namespace ostro::util
