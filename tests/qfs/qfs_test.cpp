#include "qfs/qfs.h"

#include <gtest/gtest.h>

#include "core/scheduler.h"
#include "sim/clusters.h"
#include "sim/workloads.h"

namespace ostro::qfs {
namespace {

/// Places the QFS topology on the testbed with the given algorithm and
/// returns (cluster, committed occupancy) for benchmarking.
struct PlacedQfs {
  topo::AppTopology app = sim::make_qfs();
  dc::DataCenter datacenter = sim::make_testbed();
  dc::Occupancy occupancy{datacenter};
  net::Assignment assignment;

  explicit PlacedQfs(core::Algorithm algorithm, bool preload = false) {
    if (preload) {
      util::Rng rng(7);
      sim::apply_testbed_preload(occupancy, rng);
    }
    core::SearchConfig config;
    config.theta_bw = 0.99;
    config.theta_c = 0.01;
    config.deadline_seconds = 0.5;
    const core::Placement placement = core::place_topology(
        occupancy, app, algorithm, config, nullptr, nullptr);
    if (!placement.feasible) {
      throw std::runtime_error("QFS placement failed: " +
                               placement.failure_reason);
    }
    assignment = placement.assignment;
    net::commit_placement(occupancy, app, assignment);
  }
};

TEST(QfsClusterTest, ConstructsFromPlacedTopology) {
  const PlacedQfs placed(core::Algorithm::kEg);
  const QfsCluster cluster(placed.app, placed.assignment, placed.occupancy);
  EXPECT_EQ(cluster.chunk_server_count(), 12u);
}

TEST(QfsClusterTest, RejectsForeignTopology) {
  const PlacedQfs placed(core::Algorithm::kEg);
  topo::TopologyBuilder builder;
  builder.add_vm("solo", {1.0, 1.0, 0.0});
  const auto other = builder.build();
  EXPECT_THROW(QfsCluster(other, {0}, placed.occupancy),
               std::invalid_argument);
}

TEST(QfsClusterTest, RejectsSizeMismatch) {
  const PlacedQfs placed(core::Algorithm::kEg);
  EXPECT_THROW(QfsCluster(placed.app, {0, 1}, placed.occupancy),
               std::invalid_argument);
}

TEST(QfsClusterTest, WriteBenchmarkProducesFlows) {
  const PlacedQfs placed(core::Algorithm::kEg);
  const QfsCluster cluster(placed.app, placed.assignment, placed.occupancy);
  const BenchmarkResult result = cluster.write_benchmark(1024.0, 2);
  EXPECT_GT(result.flows, 0u);
  EXPECT_GT(result.aggregate_mbps, 0.0);
  EXPECT_GT(result.completion_seconds, 0.0);
  EXPECT_LT(result.completion_seconds, 1e6);
}

TEST(QfsClusterTest, ReadBenchmarkProducesFlows) {
  const PlacedQfs placed(core::Algorithm::kEg);
  const QfsCluster cluster(placed.app, placed.assignment, placed.occupancy);
  const BenchmarkResult result = cluster.read_benchmark(1024.0);
  EXPECT_GT(result.flows, 0u);
  EXPECT_GT(result.aggregate_mbps, 0.0);
}

TEST(QfsClusterTest, ReplicationMovesMoreBytes) {
  const PlacedQfs placed(core::Algorithm::kEg);
  const QfsCluster cluster(placed.app, placed.assignment, placed.occupancy);
  const BenchmarkResult r1 = cluster.write_benchmark(1024.0, 1);
  const BenchmarkResult r3 = cluster.write_benchmark(1024.0, 3);
  EXPECT_GT(r3.flows, r1.flows);
}

TEST(QfsClusterTest, BadParametersThrow) {
  const PlacedQfs placed(core::Algorithm::kEg);
  const QfsCluster cluster(placed.app, placed.assignment, placed.occupancy);
  EXPECT_THROW((void)cluster.write_benchmark(0.0), std::invalid_argument);
  EXPECT_THROW((void)cluster.write_benchmark(100.0, 0),
               std::invalid_argument);
  EXPECT_THROW((void)cluster.read_benchmark(-1.0), std::invalid_argument);
}

TEST(QfsClusterTest, TopologyAwarePlacementBeatsBinPacking) {
  // The observable of the paper's testbed story: EG_C's bin-packing starves
  // the network relative to the holistic placements.
  const PlacedQfs packed(core::Algorithm::kEgC);
  const PlacedQfs holistic(core::Algorithm::kEg);
  const QfsCluster packed_cluster(packed.app, packed.assignment,
                                  packed.occupancy);
  const QfsCluster holistic_cluster(holistic.app, holistic.assignment,
                                    holistic.occupancy);
  const double packed_rate =
      packed_cluster.write_benchmark(2048.0, 2).aggregate_mbps;
  const double holistic_rate =
      holistic_cluster.write_benchmark(2048.0, 2).aggregate_mbps;
  EXPECT_GE(holistic_rate, packed_rate * 0.95);
}

TEST(QfsClusterTest, CoLocatedFlowsAreFree) {
  // Put everything on one giant host: all flows co-located.
  const topo::AppTopology app = sim::make_qfs();
  dc::DataCenterBuilder builder;
  const auto site = builder.add_site("s", 1e6);
  const auto pod = builder.add_pod(site, "p", 1e6);
  const auto rack = builder.add_rack(pod, "r", 1e6);
  builder.add_host(rack, "jumbo", {1000.0, 1000.0, 100000.0}, 1e6);
  // Zone requires 12 distinct hosts, so bypass placement and assign
  // directly (the cluster model itself does not enforce zones).
  const auto datacenter = builder.build();
  const dc::Occupancy occupancy(datacenter);
  const net::Assignment assignment(app.node_count(), 0);
  const QfsCluster cluster(app, assignment, occupancy);
  const BenchmarkResult result = cluster.write_benchmark(512.0, 2);
  EXPECT_EQ(result.colocated_flows, result.flows);
}

TEST(QfsDegradedTest, FailureReroutesToReplicas) {
  const PlacedQfs placed(core::Algorithm::kEg);
  const QfsCluster cluster(placed.app, placed.assignment, placed.occupancy);
  // Fail the host of chunk0: its primaries reroute to chunk1's host.
  const dc::HostId failed =
      placed.assignment[placed.app.node_id("chunk0")];
  const auto result = cluster.degraded_read_benchmark(4096.0, failed);
  EXPECT_GT(result.benchmark.aggregate_mbps, 0.0);
  // chunk0 and its ring-neighbors may share a host; chunks are only lost
  // when primary and replica coincide on the failed host.
  EXPECT_GE(result.rerouted_chunks + result.lost_chunks, 1u);
}

TEST(QfsDegradedTest, UnrelatedFailureIsHarmless) {
  const PlacedQfs placed(core::Algorithm::kEg);
  const QfsCluster cluster(placed.app, placed.assignment, placed.occupancy);
  // Fail a host that serves no chunk server.
  dc::HostId unused = dc::kInvalidHost;
  for (dc::HostId h = 0; h < placed.datacenter.host_count(); ++h) {
    bool serves = false;
    for (const auto& node : placed.app.nodes()) {
      if (node.kind == topo::NodeKind::kVm &&
          node.name.rfind("chunk", 0) == 0 &&
          placed.assignment[node.id] == h) {
        serves = true;
        break;
      }
    }
    if (!serves) {
      unused = h;
      break;
    }
  }
  ASSERT_NE(unused, dc::kInvalidHost);
  const auto degraded = cluster.degraded_read_benchmark(4096.0, unused);
  const auto healthy = cluster.read_benchmark(4096.0);
  EXPECT_EQ(degraded.rerouted_chunks, 0u);
  EXPECT_EQ(degraded.lost_chunks, 0u);
  EXPECT_NEAR(degraded.benchmark.aggregate_mbps, healthy.aggregate_mbps,
              healthy.aggregate_mbps * 0.05 + 11.0);
}

TEST(QfsDegradedTest, LossArithmeticMatchesPlacement) {
  // A chunk is lost iff its primary server AND the replica server (next in
  // the stripe ring) both sit on the failed host; it is rerouted iff only
  // the primary does.  Recompute both counts independently from the
  // placement and compare for every possible host failure.
  const PlacedQfs placed(core::Algorithm::kEg);
  const QfsCluster cluster(placed.app, placed.assignment, placed.occupancy);
  const std::size_t servers = cluster.chunk_server_count();
  const auto chunks = static_cast<std::size_t>(4096.0 / 64.0);
  std::vector<dc::HostId> server_host(servers);
  for (std::size_t s = 0; s < servers; ++s) {
    server_host[s] = placed.assignment[placed.app.node_id(
        "chunk" + std::to_string(s))];
  }
  for (dc::HostId h = 0; h < placed.datacenter.host_count(); ++h) {
    std::size_t expect_lost = 0, expect_rerouted = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t primary = c % servers;
      const std::size_t replica = (primary + 1) % servers;
      if (server_host[primary] != h) continue;
      if (server_host[replica] == h) {
        ++expect_lost;
      } else {
        ++expect_rerouted;
      }
    }
    const auto result = cluster.degraded_read_benchmark(4096.0, h);
    EXPECT_EQ(result.lost_chunks, expect_lost) << "host " << h;
    EXPECT_EQ(result.rerouted_chunks, expect_rerouted) << "host " << h;
  }
}

TEST(QfsDegradedTest, BadParametersThrow) {
  const PlacedQfs placed(core::Algorithm::kEg);
  const QfsCluster cluster(placed.app, placed.assignment, placed.occupancy);
  EXPECT_THROW((void)cluster.degraded_read_benchmark(0.0, 0),
               std::invalid_argument);
  EXPECT_THROW((void)cluster.degraded_read_benchmark(100.0, 0, -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace ostro::qfs
