// Shared fixtures for the test suite: small data centers and application
// topologies with hand-checkable optima, plus random instance generators
// for the property-based sweeps.
#pragma once

#include <string>
#include <vector>

#include "core/objective.h"
#include "core/partial.h"
#include "datacenter/datacenter.h"
#include "datacenter/occupancy.h"
#include "topology/app_topology.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace ostro::testing {

/// One site, `racks` racks, `hosts_per_rack` hosts of (8 cores, 16 GB,
/// 500 GB, 1000 Mbps uplink); ToR uplinks 4000 Mbps, pod/site 16000.
inline dc::DataCenter small_dc(int racks = 2, int hosts_per_rack = 2) {
  dc::DataCenterBuilder builder;
  const auto site = builder.add_site("site0", 16000.0);
  const auto pod = builder.add_pod(site, "pod0", 16000.0);
  for (int r = 0; r < racks; ++r) {
    const auto rack =
        builder.add_rack(pod, util::format("rack%d", r), 4000.0);
    for (int h = 0; h < hosts_per_rack; ++h) {
      builder.add_host(rack, util::format("h%d-%d", r, h),
                       {8.0, 16.0, 500.0}, 1000.0);
    }
  }
  return builder.build();
}

/// Two-site variant for datacenter-level diversity tests.
inline dc::DataCenter two_site_dc(int racks_per_site = 1,
                                  int hosts_per_rack = 2) {
  dc::DataCenterBuilder builder;
  for (int s = 0; s < 2; ++s) {
    const auto site = builder.add_site(util::format("site%d", s), 8000.0);
    const auto pod = builder.add_pod(site, util::format("s%d-pod", s), 8000.0);
    for (int r = 0; r < racks_per_site; ++r) {
      const auto rack = builder.add_rack(
          pod, util::format("s%d-rack%d", s, r), 4000.0);
      for (int h = 0; h < hosts_per_rack; ++h) {
        builder.add_host(rack, util::format("s%d-h%d-%d", s, r, h),
                         {8.0, 16.0, 500.0}, 1000.0);
      }
    }
  }
  return builder.build();
}

/// Classic pair: two VMs + a volume, one pipe each, no zones.
inline topo::AppTopology tiny_app() {
  topo::TopologyBuilder builder;
  builder.add_vm("web", {2.0, 2.0, 0.0});
  builder.add_vm("db", {4.0, 4.0, 0.0});
  builder.add_volume("data", 100.0);
  builder.connect("web", "db", 100.0);
  builder.connect("db", "data", 200.0);
  return builder.build();
}

/// Random feasible-ish instance for property sweeps: `vms` VMs with small
/// requirements, random pipes with probability `edge_p`, and an optional
/// host-level zone over a random subset.
inline topo::AppTopology random_app(util::Rng& rng, int vms,
                                    double edge_p = 0.4,
                                    bool with_zone = true) {
  topo::TopologyBuilder builder;
  for (int i = 0; i < vms; ++i) {
    const double cpu = static_cast<double>(rng.uniform_int(1, 3));
    builder.add_vm(util::format("vm%d", i), {cpu, cpu, 0.0});
  }
  for (int a = 0; a < vms; ++a) {
    for (int b = a + 1; b < vms; ++b) {
      if (rng.chance(edge_p)) {
        builder.connect(static_cast<topo::NodeId>(a),
                        static_cast<topo::NodeId>(b),
                        static_cast<double>(rng.uniform_int(1, 8)) * 25.0);
      }
    }
  }
  if (with_zone && vms >= 3 && rng.chance(0.7)) {
    std::vector<topo::NodeId> members;
    for (int i = 0; i < vms; ++i) {
      if (rng.chance(0.5)) members.push_back(static_cast<topo::NodeId>(i));
    }
    if (members.size() >= 2) {
      builder.add_zone("dz", topo::DiversityLevel::kHost, std::move(members));
    }
  }
  return builder.build();
}

}  // namespace ostro::testing
