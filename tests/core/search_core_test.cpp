// Unit tests for the pooled search-core primitives (DESIGN.md section 11):
// the packed f-cost key, the preallocated OpenHeap (fuzzed against
// std::priority_queue over the reference comparator), the epoch-stamped and
// open-addressing tables, the chunked slab arena, and PartialPlacement's
// copy-on-write branch_from (fuzzed bitwise against copy + place).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/partial.h"
#include "core/search_core.h"
#include "helpers.h"
#include "util/arena.h"
#include "util/rng.h"

namespace ostro::core {
namespace {

using ostro::testing::random_app;
using ostro::testing::small_dc;
using ostro::testing::two_site_dc;

// ---------------------------------------------------------------------------
// pack_priority: unsigned order over keys == double order over priorities.

TEST(PackPriorityTest, OrderMatchesDoubleOrder) {
  const std::vector<double> values = {
      -std::numeric_limits<double>::infinity(),
      -1e300,
      -1.0,
      -1e-300,
      -std::numeric_limits<double>::denorm_min(),
      -0.0,
      0.0,
      std::numeric_limits<double>::denorm_min(),
      1e-300,
      0.5,
      1.0,
      1.0 + std::numeric_limits<double>::epsilon(),
      1e300,
      std::numeric_limits<double>::infinity(),
  };
  for (std::size_t i = 0; i < values.size(); ++i) {
    for (std::size_t j = 0; j < values.size(); ++j) {
      const std::uint64_t a = pack_priority(values[i]);
      const std::uint64_t b = pack_priority(values[j]);
      EXPECT_EQ(values[i] < values[j], a < b) << values[i] << " vs " << values[j];
      EXPECT_EQ(values[i] == values[j], a == b)
          << values[i] << " vs " << values[j];
    }
  }
}

TEST(PackPriorityTest, NegativeZeroCollapsesOntoPositiveZero) {
  // -0.0 == +0.0 as doubles, so they must produce the same key or the
  // heap's key tiebreak would diverge from the reference comparator.
  EXPECT_EQ(pack_priority(-0.0), pack_priority(0.0));
  EXPECT_EQ(unpack_priority(pack_priority(-0.0)), 0.0);
}

TEST(PackPriorityTest, RoundTripsExactly) {
  util::Rng rng(101);
  for (int i = 0; i < 10000; ++i) {
    const double v = (rng.uniform01() - 0.5) * std::pow(10.0, rng.uniform_int(-30, 30));
    const double back = unpack_priority(pack_priority(v));
    EXPECT_EQ(back, v);
  }
  EXPECT_EQ(unpack_priority(pack_priority(1e308)), 1e308);
  EXPECT_TRUE(std::isinf(
      unpack_priority(pack_priority(std::numeric_limits<double>::infinity()))));
}

// ---------------------------------------------------------------------------
// OpenHeap vs std::priority_queue over the reference comparator.

struct RefEntry {
  double priority = 0.0;
  std::uint32_t depth = 0;
  std::uint64_t sequence = 0;
};

struct RefOrder {
  bool depth_first = false;
  bool operator()(const RefEntry& a, const RefEntry& b) const noexcept {
    if (depth_first && a.depth != b.depth) return a.depth < b.depth;
    if (a.priority != b.priority) return a.priority > b.priority;
    if (a.depth != b.depth) return a.depth < b.depth;
    return a.sequence > b.sequence;
  }
};

void fuzz_heap_against_priority_queue(bool depth_first, std::uint64_t seed) {
  util::Rng rng(seed);
  OpenHeap heap;
  heap.configure(depth_first, 64);
  std::priority_queue<RefEntry, std::vector<RefEntry>, RefOrder> reference(
      RefOrder{depth_first});
  std::uint64_t sequence = 0;
  for (int round = 0; round < 5000; ++round) {
    const bool push = reference.empty() || rng.uniform01() < 0.55;
    if (push) {
      RefEntry entry;
      // Coarse priorities force frequent ties so the depth/sequence
      // tiebreaks actually run.
      entry.priority = static_cast<double>(rng.uniform_int(0, 8)) * 0.25;
      if (rng.uniform01() < 0.1) entry.priority = 0.0;
      entry.depth = static_cast<std::uint32_t>(rng.uniform_int(0, 5));
      entry.sequence = sequence++;
      reference.push(entry);
      heap.push(HeapEntry{pack_priority(entry.priority), entry.sequence,
                          nullptr, topo::kInvalidNode, dc::kInvalidHost,
                          entry.depth, false});
    } else {
      const RefEntry expected = reference.top();
      reference.pop();
      const HeapEntry got = heap.pop();
      ASSERT_EQ(got.sequence, expected.sequence) << "round " << round;
      ASSERT_EQ(got.depth, expected.depth) << "round " << round;
      ASSERT_EQ(unpack_priority(got.key), expected.priority)
          << "round " << round;
    }
    ASSERT_EQ(heap.size(), reference.size());
  }
  while (!reference.empty()) {
    ASSERT_EQ(heap.pop().sequence, reference.top().sequence);
    reference.pop();
  }
  EXPECT_TRUE(heap.empty());
}

TEST(OpenHeapTest, MatchesPriorityQueueBestFirst) {
  fuzz_heap_against_priority_queue(false, 2024);
}

TEST(OpenHeapTest, MatchesPriorityQueueDepthFirst) {
  fuzz_heap_against_priority_queue(true, 2025);
}

// ---------------------------------------------------------------------------
// StampedSet64 vs std::unordered_set, including epoch-based clear.

TEST(StampedSet64Test, MatchesUnorderedSetAcrossClears) {
  util::Rng rng(7);
  util::StampedSet64 set;
  std::unordered_set<std::uint64_t> reference;
  for (int epoch = 0; epoch < 50; ++epoch) {
    set.clear();
    reference.clear();
    const int ops = static_cast<int>(rng.uniform_int(1, 400));
    for (int i = 0; i < ops; ++i) {
      const auto key = static_cast<std::uint64_t>(rng.uniform_int(0, 300));
      const bool inserted = set.insert(key);
      EXPECT_EQ(inserted, reference.insert(key).second);
      EXPECT_TRUE(set.contains(key));
    }
    for (std::uint64_t key = 0; key <= 300; ++key) {
      EXPECT_EQ(set.contains(key), reference.count(key) == 1);
    }
  }
}

TEST(StampedSet64Test, ClearIsConstantTimeEpochBump) {
  util::StampedSet64 set;
  for (std::uint64_t i = 0; i < 2000; ++i) set.insert(i * 0x9e3779b9ULL);
  const std::size_t bytes_before = set.capacity_bytes();
  set.clear();  // O(1): bumps the epoch, does not touch the slots
  EXPECT_EQ(set.capacity_bytes(), bytes_before);
  EXPECT_FALSE(set.contains(0));
  EXPECT_TRUE(set.insert(0));
}

// ---------------------------------------------------------------------------
// FlatMap64 vs std::unordered_map.

TEST(FlatMap64Test, MatchesUnorderedMap) {
  util::Rng rng(9);
  util::FlatMap64<double> map;
  std::unordered_map<std::uint64_t, double> reference;
  for (int i = 0; i < 5000; ++i) {
    const auto key = static_cast<std::uint64_t>(rng.uniform_int(0, 500));
    if (rng.uniform01() < 0.7) {
      const double value = rng.uniform01();
      bool inserted = false;
      map.get_or_insert(key, inserted) += value;
      EXPECT_EQ(inserted, reference.find(key) == reference.end());
      reference[key] += value;
    } else {
      const double* found = map.find(key);
      const auto it = reference.find(key);
      ASSERT_EQ(found != nullptr, it != reference.end());
      if (found != nullptr) {
        EXPECT_EQ(*found, it->second);
      }
    }
  }
  std::size_t visited = 0;
  map.for_each([&](std::uint64_t key, const double& value) {
    ++visited;
    const auto it = reference.find(key);
    ASSERT_NE(it, reference.end());
    EXPECT_EQ(value, it->second);
  });
  EXPECT_EQ(visited, reference.size());
}

TEST(FlatMap64Test, ClearCyclesInvalidateStaleSlots) {
  // clear() is an epoch bump, not a wipe: slots written in earlier epochs
  // must read as empty, even when a later epoch probes straight across
  // them, and the dense iteration index must forget them too.
  util::FlatMap64<int> map;
  map.reserve(64);
  for (int cycle = 0; cycle < 1000; ++cycle) {
    for (std::uint64_t key = 0; key < 40; ++key) {
      if (key % 2 == static_cast<std::uint64_t>(cycle % 2)) {
        map.insert_if_absent(key, cycle);
      }
    }
    std::size_t visited = 0;
    map.for_each([&](std::uint64_t key, const int& value) {
      ++visited;
      EXPECT_EQ(key % 2, static_cast<std::uint64_t>(cycle % 2));
      EXPECT_EQ(value, cycle);
    });
    EXPECT_EQ(visited, 20u);
    EXPECT_EQ(map.size(), 20u);
    for (std::uint64_t key = 0; key < 40; ++key) {
      const bool expect_present =
          key % 2 == static_cast<std::uint64_t>(cycle % 2);
      EXPECT_EQ(map.find(key) != nullptr, expect_present) << key;
    }
    map.clear();
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.find(0), nullptr);
  }
}

TEST(FlatMap64Test, InsertIfAbsentKeepsNewestValue) {
  // flatten_tables_from walks a chain newest-level-first and relies on
  // insert_if_absent dropping older (later-visited) values.
  util::FlatMap64<double> map;
  map.insert_if_absent(42, 1.0);
  map.insert_if_absent(42, 2.0);
  ASSERT_NE(map.find(42), nullptr);
  EXPECT_EQ(*map.find(42), 1.0);
}

// ---------------------------------------------------------------------------
// ChunkArena.

TEST(ChunkArenaTest, ResetRetainsSlabStorage) {
  util::ChunkArena arena;
  for (int i = 0; i < 100; ++i) {
    void* p = arena.allocate(1024, 16);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u);
  }
  const std::size_t reserved = arena.bytes_reserved();
  EXPECT_GE(reserved, 100u * 1024u);
  arena.reset();
  EXPECT_EQ(arena.bytes_reserved(), reserved);  // slabs survive reset
  EXPECT_EQ(arena.bytes_used(), 0u);
  void* again = arena.allocate(64, 8);
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(arena.bytes_reserved(), reserved);  // recycled, no growth
}

TEST(ChunkArenaTest, OversizeRequestGetsDedicatedSlab) {
  util::ChunkArena arena;
  void* big = arena.allocate(1 << 20, 64);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big) % 64, 0u);
  EXPECT_GE(arena.bytes_reserved(), std::size_t{1} << 20);
}

// ---------------------------------------------------------------------------
// PartialPlacement branch_from: the COW chain must be observationally
// identical to copy + place, and copying a chain state must flatten it.

PartialPlacement random_prefix(const topo::AppTopology& app,
                               const dc::Occupancy& occupancy,
                               const Objective& objective, util::Rng& rng,
                               int max_placed) {
  PartialPlacement state(app, occupancy, objective);
  const int target = static_cast<int>(rng.uniform_int(0, max_placed));
  for (int i = 0; i < target; ++i) {
    const auto node = static_cast<topo::NodeId>(i);
    if (node >= app.node_count()) break;
    const auto host = static_cast<dc::HostId>(rng.uniform_int(
        0, static_cast<int>(occupancy.datacenter().host_count()) - 1));
    if (state.can_place(node, host)) state.place(node, host);
  }
  return state;
}

void expect_bitwise_equal(const PartialPlacement& a, const PartialPlacement& b,
                          const dc::DataCenter& datacenter, int trial) {
  ASSERT_EQ(a.assignment(), b.assignment()) << "trial " << trial;
  EXPECT_EQ(a.ubw(), b.ubw()) << "trial " << trial;
  EXPECT_EQ(a.remaining_bw_bound(), b.remaining_bw_bound())
      << "trial " << trial;
  EXPECT_EQ(a.new_active_hosts(), b.new_active_hosts()) << "trial " << trial;
  EXPECT_EQ(a.utility_bound(), b.utility_bound()) << "trial " << trial;
  for (dc::HostId h = 0; h < datacenter.host_count(); ++h) {
    const topo::Resources ra = a.available(h);
    const topo::Resources rb = b.available(h);
    EXPECT_EQ(ra.vcpus, rb.vcpus) << "trial " << trial << " host " << h;
    EXPECT_EQ(ra.mem_gb, rb.mem_gb) << "trial " << trial << " host " << h;
    EXPECT_EQ(ra.disk_gb, rb.disk_gb) << "trial " << trial << " host " << h;
    EXPECT_EQ(a.is_active(h), b.is_active(h)) << "trial " << trial;
    EXPECT_EQ(a.pending_uplink_mbps(h), b.pending_uplink_mbps(h))
        << "trial " << trial << " host " << h;
  }
  for (dc::LinkId l = 0; l < datacenter.link_count(); ++l) {
    EXPECT_EQ(a.link_available(l), b.link_available(l))
        << "trial " << trial << " link " << l;
  }
  EXPECT_EQ(a.has_link_overcommit(), b.has_link_overcommit())
      << "trial " << trial;
}

TEST(PooledBranchTest, ChainMatchesCopyPlaceBitwise) {
  util::Rng rng(31337);
  for (int trial = 0; trial < 20; ++trial) {
    const auto datacenter =
        trial % 2 == 0 ? small_dc(2, 3) : two_site_dc(2, 2);
    const dc::Occupancy occupancy(datacenter);
    const auto app = random_app(rng, 6);
    SearchConfig config;
    const Objective objective(app, datacenter, config);
    const PartialPlacement root =
        random_prefix(app, occupancy, objective, rng, 2);

    SearchArena arena;
    arena.begin_plan(false, 64);
    PartialPlacement& pooled_root = arena.acquire(root);
    pooled_root.assign_pooled_flat(root);
    expect_bitwise_equal(pooled_root, root, datacenter, trial);

    // Grow a chain deeper than kFlattenThreshold so both the chain walk and
    // the flatten-on-branch path run; mirror with copy + place.
    const PartialPlacement* pooled = &pooled_root;
    PartialPlacement reference = root;
    for (topo::NodeId node = 0; node < app.node_count(); ++node) {
      if (reference.is_placed(node)) continue;
      dc::HostId placed_on = dc::kInvalidHost;
      for (dc::HostId h = 0; h < datacenter.host_count(); ++h) {
        const auto host = static_cast<dc::HostId>(
            (h + static_cast<dc::HostId>(trial)) % datacenter.host_count());
        if (reference.can_place(node, host)) {
          placed_on = host;
          break;
        }
      }
      if (placed_on == dc::kInvalidHost) continue;

      PartialPlacement& child = arena.acquire(*pooled);
      child.branch_from(*pooled);
      ASSERT_TRUE(child.can_place(node, placed_on)) << "trial " << trial;
      child.place(node, placed_on);

      PartialPlacement ref_child = reference;  // copy + place reference
      ref_child.place(node, placed_on);

      expect_bitwise_equal(child, ref_child, datacenter, trial);
      pooled = &child;
      reference = std::move(ref_child);
    }

    // Copying the deepest chain state must yield a self-contained (flat)
    // equal state — this is what Incumbent::offer relies on.
    const PartialPlacement copied = *pooled;
    expect_bitwise_equal(copied, reference, datacenter, trial);
    arena.end_plan();
    // The arena states are recycled now; the copy must remain valid.
    expect_bitwise_equal(copied, reference, datacenter, trial);
  }
}

TEST(SearchArenaTest, RecyclesStatesAndReportsWarmth) {
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  util::Rng rng(5);
  const auto app = random_app(rng, 4);
  SearchConfig config;
  const Objective objective(app, datacenter, config);
  const PartialPlacement proto(app, occupancy, objective);

  SearchArena arena;
  EXPECT_FALSE(arena.active());

  arena.begin_plan(false, 16);
  EXPECT_TRUE(arena.active());
  EXPECT_FALSE(arena.warm());
  PartialPlacement* first = &arena.acquire(proto);
  arena.acquire(proto);
  EXPECT_EQ(arena.states_in_use(), 2u);
  arena.end_plan();
  EXPECT_FALSE(arena.active());
  EXPECT_EQ(arena.plans_served(), 1u);

  arena.begin_plan(true, 16);
  EXPECT_TRUE(arena.warm());
  // Same slots come back in order: recycled, not reallocated.
  EXPECT_EQ(&arena.acquire(proto), first);
  arena.end_plan();
  EXPECT_GT(arena.bytes_retained(), 0u);
}

TEST(SearchArenaTest, ThreadArenaIsStablePerThread) {
  SearchArena& a = thread_search_arena();
  SearchArena& b = thread_search_arena();
  EXPECT_EQ(&a, &b);
  EXPECT_FALSE(a.active());
}

}  // namespace
}  // namespace ostro::core
