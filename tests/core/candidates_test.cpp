#include "core/candidates.h"

#include <gtest/gtest.h>

#include "helpers.h"

namespace ostro::core {
namespace {

using ostro::testing::small_dc;
using ostro::testing::tiny_app;

TEST(CandidatesTest, AllHostsWhenUnconstrained) {
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const auto app = tiny_app();
  const Objective objective(app, datacenter, SearchConfig{});
  const PartialPlacement p(app, occupancy, objective);
  EXPECT_EQ(get_candidates(p, 0).size(), 4u);
}

TEST(CandidatesTest, CapacityFiltersHosts) {
  const auto datacenter = small_dc(2, 2);
  dc::Occupancy occupancy(datacenter);
  occupancy.add_host_load(0, {5.0, 0.0, 0.0});  // 3 cores left
  occupancy.add_host_load(1, {7.0, 0.0, 0.0});  // 1 core left
  const auto app = tiny_app();
  const Objective objective(app, datacenter, SearchConfig{});
  const PartialPlacement p(app, occupancy, objective);
  // db needs 4 cores.
  EXPECT_EQ(get_candidates(p, 1), (std::vector<dc::HostId>{2, 3}));
  // web needs 2 cores.
  EXPECT_EQ(get_candidates(p, 0), (std::vector<dc::HostId>{0, 2, 3}));
}

TEST(CandidatesTest, DiversityZoneFilters) {
  topo::TopologyBuilder builder;
  builder.add_vm("a", {1.0, 1.0, 0.0});
  builder.add_vm("b", {1.0, 1.0, 0.0});
  builder.add_zone("z", topo::DiversityLevel::kRack,
                   std::vector<std::string>{"a", "b"});
  const auto app = builder.build();
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const Objective objective(app, datacenter, SearchConfig{});
  PartialPlacement p(app, occupancy, objective);
  p.place(0, 0);
  EXPECT_EQ(get_candidates(p, 1), (std::vector<dc::HostId>{2, 3}));
}

TEST(CandidatesTest, BandwidthFilters) {
  const auto datacenter = small_dc(2, 2);
  dc::Occupancy occupancy(datacenter);
  // Host 1's uplink nearly full: the 100 Mbps pipe to web cannot leave.
  occupancy.reserve_link(datacenter.host_link(1), 950.0);
  const auto app = tiny_app();
  const Objective objective(app, datacenter, SearchConfig{});
  PartialPlacement p(app, occupancy, objective);
  p.place(0, 1);  // web on the constrained host
  const auto candidates = get_candidates(p, 1);  // db, pipe 100 to web
  // db can share host 1 (no uplink needed) or... nothing else.
  EXPECT_EQ(candidates, (std::vector<dc::HostId>{1}));
}

TEST(CandidatesTest, EmptyWhenImpossible) {
  const auto datacenter = small_dc(1, 1);
  dc::Occupancy occupancy(datacenter);
  occupancy.add_host_load(0, {8.0, 0.0, 0.0});
  const auto app = tiny_app();
  const Objective objective(app, datacenter, SearchConfig{});
  const PartialPlacement p(app, occupancy, objective);
  EXPECT_TRUE(get_candidates(p, 0).empty());
}

}  // namespace
}  // namespace ostro::core
