#include "core/brute_force.h"

#include <gtest/gtest.h>

#include "core/verify.h"
#include "helpers.h"

namespace ostro::core {
namespace {

using ostro::testing::random_app;
using ostro::testing::small_dc;
using ostro::testing::tiny_app;

TEST(BruteForceTest, FindsZeroCostCoLocation) {
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const auto app = tiny_app();
  SearchConfig config;
  config.theta_bw = 1.0;
  config.theta_c = 0.0;
  const Objective objective(app, datacenter, config);
  const PartialPlacement initial(app, occupancy, objective);
  const BruteForceResult result = brute_force_optimal(initial);
  ASSERT_TRUE(result.feasible);
  EXPECT_DOUBLE_EQ(result.utility, 0.0);
  EXPECT_DOUBLE_EQ(result.state->ubw(), 0.0);
}

TEST(BruteForceTest, RespectsConstraints) {
  topo::TopologyBuilder builder;
  builder.add_vm("a", {1.0, 1.0, 0.0});
  builder.add_vm("b", {1.0, 1.0, 0.0});
  builder.connect("a", "b", 100.0);
  builder.add_zone("z", topo::DiversityLevel::kRack,
                   std::vector<std::string>{"a", "b"});
  const auto app = builder.build();
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const Objective objective(app, datacenter, SearchConfig{});
  const BruteForceResult result =
      brute_force_optimal({app, occupancy, objective});
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(
      verify_placement(occupancy, app, result.state->assignment()).empty());
  // Forced one rack apart: the 100 pipe costs exactly 4 links.
  EXPECT_DOUBLE_EQ(result.state->ubw(), 400.0);
}

TEST(BruteForceTest, InfeasibleWhenNothingFits) {
  const auto datacenter = small_dc(1, 1);
  dc::Occupancy occupancy(datacenter);
  occupancy.add_host_load(0, {7.0, 0.0, 0.0});
  const auto app = tiny_app();
  const Objective objective(app, datacenter, SearchConfig{});
  const BruteForceResult result =
      brute_force_optimal({app, occupancy, objective});
  EXPECT_FALSE(result.feasible);
  EXPECT_FALSE(result.state.has_value());
}

TEST(BruteForceTest, PrunedAndUnprunedAgree) {
  util::Rng rng(808);
  for (int trial = 0; trial < 15; ++trial) {
    const auto datacenter = small_dc(2, 2);
    const dc::Occupancy occupancy(datacenter);
    const auto app = random_app(rng, 4);
    const Objective objective(app, datacenter, SearchConfig{});
    const PartialPlacement initial(app, occupancy, objective);
    const BruteForceResult pruned = brute_force_optimal(initial, true);
    const BruteForceResult full = brute_force_optimal(initial, false);
    ASSERT_EQ(pruned.feasible, full.feasible) << "trial " << trial;
    if (pruned.feasible) {
      EXPECT_NEAR(pruned.utility, full.utility, 1e-9) << "trial " << trial;
      EXPECT_LE(pruned.nodes_visited, full.nodes_visited);
    }
  }
}

TEST(BruteForceTest, HonorsPrePlacedNodes) {
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const auto app = tiny_app();
  const Objective objective(app, datacenter, SearchConfig{});
  PartialPlacement initial(app, occupancy, objective);
  initial.place(0, 3);
  const BruteForceResult result = brute_force_optimal(initial);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.state->host_of(0), 3u);
}

}  // namespace
}  // namespace ostro::core
