// core::ShardRouter: the single-shard bit-identical differential against a
// plain PlacementService, shard routing, the cross-shard two-phase commit
// (shared-uplink ledger accounting, exact release, abort semantics), and
// ShardConfig validation.
#include "core/shard_router.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/service.h"
#include "core/stack_registry.h"
#include "datacenter/occupancy.h"
#include "helpers.h"
#include "net/reservation.h"
#include "sim/clusters.h"
#include "util/rng.h"

namespace ostro::core {
namespace {

using ostro::testing::random_app;
using ostro::testing::tiny_app;
using ostro::testing::two_site_dc;

std::shared_ptr<const topo::AppTopology> shared(topo::AppTopology app) {
  return std::make_shared<const topo::AppTopology>(std::move(app));
}

/// Two VMs that fill a whole host each, forced onto distinct sites — the
/// canonical shard-straddling stack for a make_wan cluster (16-core hosts).
topo::AppTopology cross_site_pair(double pipe_mbps) {
  topo::TopologyBuilder builder;
  builder.add_vm("a", {16.0, 16.0, 0.0});
  builder.add_vm("b", {16.0, 16.0, 0.0});
  builder.connect("a", "b", pipe_mbps);
  builder.add_zone("spread", topo::DiversityLevel::kDatacenter,
                   std::vector<std::string>{"a", "b"});
  return builder.build();
}

TEST(ShardRouterTest, ConfigValidation) {
  const dc::DataCenter global = two_site_dc(1, 2);
  ShardConfig config;
  config.shards = 0;
  EXPECT_THROW(ShardRouter(global, config), std::invalid_argument);
  config.shards = 1;
  config.router_max_shard_attempts = 0;
  EXPECT_THROW(ShardRouter(global, config), std::invalid_argument);
}

// shards=1 must behave exactly like a plain PlacementService over the same
// global datacenter: identical assignments and, after every commit and
// release, an occupancy equal bit for bit (operator== compares every load,
// link accumulator, and active flag).
TEST(ShardRouterTest, SingleShardBitIdenticalToPlacementService) {
  const dc::DataCenter global = two_site_dc(2, 2);  // 8 hosts
  OstroScheduler mono_scheduler(global);
  PlacementService mono(mono_scheduler);
  StackRegistry mono_registry;

  ShardConfig config;
  config.shards = 1;
  ShardRouter router(global, config);

  util::Rng rng(20260807);
  std::vector<StackId> routed_ids;
  std::vector<StackId> mono_ids;
  for (int i = 0; i < 8; ++i) {
    const auto app = shared(random_app(rng, 3, 0.5, /*with_zone=*/false));
    const Algorithm algorithm = (i % 2 == 0) ? Algorithm::kEg
                                             : Algorithm::kBaStar;
    const ServiceResult expect = mono.place(*app, algorithm);
    ShardRouter::Result got = router.place(app, algorithm);

    ASSERT_EQ(got.service.placement.committed, expect.placement.committed);
    ASSERT_EQ(got.service.placement.feasible, expect.placement.feasible);
    if (expect.placement.committed) {
      EXPECT_EQ(got.service.placement.assignment,
                expect.placement.assignment);
      EXPECT_FALSE(got.cross_shard);
      EXPECT_EQ(got.shard, 0u);
      mono_registry.add(got.stack_id, app, expect.placement.assignment);
      routed_ids.push_back(got.stack_id);
      mono_ids.push_back(got.stack_id);
    }
    EXPECT_EQ(router.stitched_snapshot(), mono.snapshot());
  }
  ASSERT_FALSE(routed_ids.empty());

  // Release every other stack from both sides; stay bit-identical.
  for (std::size_t i = 0; i < routed_ids.size(); i += 2) {
    EXPECT_TRUE(router.release_stack(routed_ids[i]));
    EXPECT_TRUE(mono.release_stack(mono_registry, mono_ids[i]));
    EXPECT_EQ(router.stitched_snapshot(), mono.snapshot());
  }
  EXPECT_EQ(router.live_stacks(),
            routed_ids.size() - (routed_ids.size() + 1) / 2);
}

TEST(ShardRouterTest, SingleShardStackStaysInsideOneShard) {
  const dc::DataCenter wan = sim::make_wan(2, 2, 1, 2);  // 8 hosts
  ShardConfig config;
  config.shards = 2;  // one whole site per shard
  ShardRouter router(wan, config);

  const auto app = shared(tiny_app());
  const ShardRouter::Result result = router.place(app, Algorithm::kEg);
  ASSERT_TRUE(result.service.placement.committed);
  EXPECT_FALSE(result.cross_shard);
  const dc::ShardLayout& layout = router.layout();
  for (const dc::HostId host : result.service.placement.assignment) {
    EXPECT_EQ(layout.shard_of_host(host), result.shard);
  }
  EXPECT_EQ(router.live_stacks(), 1u);
}

// Satellite: a topology straddling two shards reserves the shared wide-area
// uplink bandwidth exactly once per edge (through the ledger), the stitched
// state matches a monolithic single-Occupancy run bit for bit, and
// release_stack restores everything exactly.
TEST(ShardRouterTest, CrossShardReservesSharedUplinksExactlyOnce) {
  const dc::DataCenter wan = sim::make_wan(2, 2, 1, 2);  // 2 sites x 2 pods
  ShardConfig config;
  config.shards = 4;  // every pod a shard; both sites split
  ShardRouter router(wan, config);
  const dc::ShardLayout& layout = router.layout();
  ASSERT_EQ(layout.shared_links().size(), 2u);

  const double pipe_mbps = 100.0;
  const auto app = shared(cross_site_pair(pipe_mbps));
  const ShardRouter::Result result = router.place(app, Algorithm::kEg);
  ASSERT_TRUE(result.service.placement.committed)
      << result.service.placement.failure_reason;
  EXPECT_TRUE(result.cross_shard);
  const net::Assignment& assignment = result.service.placement.assignment;
  ASSERT_EQ(layout.global()
                .scope_between(assignment[0], assignment[1]),
            dc::Scope::kCrossSite);

  // Exactly one reservation of the pipe's bandwidth per shared site uplink.
  for (const dc::Site& site : wan.sites()) {
    EXPECT_DOUBLE_EQ(router.ledger().used_mbps(wan.site_link(site.id)),
                     pipe_mbps);
  }

  // Bit-for-bit against a monolithic occupancy performing the same
  // reservation over the SAME global datacenter.
  dc::Occupancy mono(wan);
  net::commit_placement(mono, *app, assignment);
  EXPECT_EQ(router.stitched_snapshot(), mono);

  // Exact release: back to pristine, ledger drained, registry empty.
  EXPECT_TRUE(router.release_stack(result.stack_id));
  EXPECT_EQ(router.stitched_snapshot(), dc::Occupancy(wan));
  for (const dc::LinkId link : layout.shared_links()) {
    EXPECT_DOUBLE_EQ(router.ledger().used_mbps(link), 0.0);
  }
  EXPECT_EQ(router.live_stacks(), 0u);
  EXPECT_FALSE(router.release_stack(result.stack_id));  // double release
}

// A competing commit between planning and the two-phase commit aborts the
// 2PC with nothing touched; the replan sees the new state.  Here the
// competitor consumes the last free host, so the replan is infeasible and
// the request fails cleanly, leaving exactly the competitor's stack.
TEST(ShardRouterTest, TwoPhaseCommitAbortsAndReplansOnConflict) {
  const dc::DataCenter global = two_site_dc(1, 2);  // 4 hosts, 8 cores each
  ShardConfig config;
  config.shards = 2;
  config.router_max_cross_retries = 1;
  ShardRouter router(global, config);

  topo::TopologyBuilder big;
  for (int i = 0; i < 4; ++i) {
    big.add_vm("vm" + std::to_string(i), {8.0, 8.0, 0.0});
  }
  const auto four_hosts = shared(big.build());

  topo::TopologyBuilder small;
  small.add_vm("blocker", {8.0, 8.0, 0.0});
  const auto blocker = shared(small.build());

  StackId blocker_id = 0;
  std::unique_ptr<dc::Occupancy> after_blocker;
  router.set_pre_commit_hook([&](std::uint32_t attempt) {
    if (attempt != 0) return;
    const ShardRouter::Result r = router.place(blocker, Algorithm::kEg);
    ASSERT_TRUE(r.service.placement.committed);
    blocker_id = r.stack_id;
    after_blocker =
        std::make_unique<dc::Occupancy>(router.stitched_snapshot());
  });

  const ShardRouter::Result result = router.place(four_hosts, Algorithm::kEg);
  EXPECT_FALSE(result.service.placement.committed);
  EXPECT_GE(result.service.conflicts, 1u);
  ASSERT_NE(after_blocker, nullptr);
  // The aborted 2PC left nothing behind: only the blocker's state remains.
  EXPECT_EQ(router.stitched_snapshot(), *after_blocker);
  EXPECT_EQ(router.live_stacks(), 1u);
  EXPECT_TRUE(router.release_stack(blocker_id));
  EXPECT_EQ(router.stitched_snapshot(), dc::Occupancy(global));
}

TEST(ShardRouterTest, CrossShardDisabledFailsStraddlingStack) {
  const dc::DataCenter wan = sim::make_wan(2, 2, 1, 2);
  ShardConfig config;
  config.shards = 4;
  config.router_allow_cross_shard = false;
  ShardRouter router(wan, config);
  const ShardRouter::Result result =
      router.place(shared(cross_site_pair(50.0)), Algorithm::kEg);
  EXPECT_FALSE(result.service.placement.committed);
  EXPECT_EQ(router.live_stacks(), 0u);
  EXPECT_EQ(router.stitched_snapshot(), dc::Occupancy(wan));
}

}  // namespace
}  // namespace ostro::core
