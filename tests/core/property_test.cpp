// Parameterized property sweeps: every algorithm, across seeds and sizes,
// must produce placements that an independent verifier accepts, and the
// algorithm family must respect its quality ordering (BA* optimal, EG no
// worse than random-feasible, DBA*(no deadline) == BA*).
#include <gtest/gtest.h>

#include <tuple>

#include "core/brute_force.h"
#include "core/scheduler.h"
#include "core/verify.h"
#include "helpers.h"
#include "sim/clusters.h"
#include "sim/workloads.h"

namespace ostro::core {
namespace {

using ostro::testing::random_app;
using ostro::testing::small_dc;

// ---------------------------------------------------------------------------
// Validity: every algorithm, random instances, with and without preload.

struct ValidityParam {
  Algorithm algorithm;
  int vms;
  std::uint64_t seed;
  bool preload;
};

class PlacementValidity : public ::testing::TestWithParam<ValidityParam> {};

TEST_P(PlacementValidity, OutputSatisfiesAllConstraints) {
  const ValidityParam param = GetParam();
  util::Rng rng(param.seed);
  const auto datacenter = small_dc(3, 3);
  dc::Occupancy occupancy(datacenter);
  if (param.preload) {
    // Background tenants on a random half of the hosts.
    for (dc::HostId h = 0; h < datacenter.host_count(); ++h) {
      if (rng.chance(0.5)) {
        occupancy.add_host_load(
            h, {static_cast<double>(rng.uniform_int(1, 5)),
                static_cast<double>(rng.uniform_int(1, 8)), 0.0});
      }
    }
  }
  const auto app = random_app(rng, param.vms);
  SearchConfig config;
  config.deadline_seconds = 0.2;
  config.seed = param.seed;
  const Placement placement = place_topology(occupancy, app, param.algorithm,
                                             config, nullptr, nullptr);
  if (!placement.feasible) {
    // Infeasibility must come with a reason; nothing else to check.
    EXPECT_FALSE(placement.failure_reason.empty());
    return;
  }
  const auto violations =
      verify_placement(occupancy, app, placement.assignment);
  if (placement.bandwidth_overcommitted) {
    // Only EG_C may overcommit, and then only on links.
    EXPECT_EQ(param.algorithm, Algorithm::kEgC);
    for (const auto& violation : violations) {
      EXPECT_NE(violation.find("link"), std::string::npos) << violation;
    }
  } else {
    EXPECT_TRUE(violations.empty())
        << to_string(param.algorithm) << " seed=" << param.seed << ": "
        << (violations.empty() ? "" : violations.front());
  }
}

std::vector<ValidityParam> validity_params() {
  std::vector<ValidityParam> params;
  for (const auto algorithm :
       {Algorithm::kEg, Algorithm::kEgC, Algorithm::kEgBw, Algorithm::kBaStar,
        Algorithm::kDbaStar}) {
    for (const int vms : {3, 5, 7}) {
      for (const std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
        params.push_back({algorithm, vms, seed, false});
        params.push_back({algorithm, vms, seed, true});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, PlacementValidity, ::testing::ValuesIn(validity_params()),
    [](const ::testing::TestParamInfo<ValidityParam>& param_info) {
      return std::string(to_string(param_info.param.algorithm) == std::string("BA*")
                             ? "BA"
                             : to_string(param_info.param.algorithm) ==
                                       std::string("DBA*")
                                 ? "DBA"
                                 : to_string(param_info.param.algorithm)) +
             "_v" + std::to_string(param_info.param.vms) + "_s" +
             std::to_string(param_info.param.seed) +
             (param_info.param.preload ? "_loaded" : "_idle");
    });

// ---------------------------------------------------------------------------
// Optimality: BA* == brute force on exhaustive instances.

class BaStarOptimality
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(BaStarOptimality, MatchesBruteForce) {
  const auto [vms, seed] = GetParam();
  util::Rng rng(seed);
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const auto app = random_app(rng, vms);
  SearchConfig config;
  config.symmetry_reduction = (seed % 2) == 0;  // both modes over the sweep
  const Objective objective(app, datacenter, config);
  const BruteForceResult best =
      brute_force_optimal({app, occupancy, objective}, true);
  const Placement placement = place_topology(occupancy, app,
                                             Algorithm::kBaStar, config,
                                             nullptr, nullptr);
  ASSERT_EQ(placement.feasible, best.feasible);
  if (best.feasible) {
    EXPECT_NEAR(placement.utility, best.utility, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallInstances, BaStarOptimality,
    ::testing::Combine(::testing::Values(3, 4, 5),
                       ::testing::Values(101, 202, 303, 404, 505)),
    [](const ::testing::TestParamInfo<std::tuple<int, std::uint64_t>>& param_info) {
      return "v" + std::to_string(std::get<0>(param_info.param)) + "_s" +
             std::to_string(std::get<1>(param_info.param));
    });

// ---------------------------------------------------------------------------
// Dominance: BA* <= EG <= 1.0; utilities well-formed for all algorithms.

class UtilityOrdering : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UtilityOrdering, BaStarNeverWorseThanGreedy) {
  util::Rng rng(GetParam());
  const auto datacenter = small_dc(2, 3);
  const dc::Occupancy occupancy(datacenter);
  const auto app = random_app(rng, 6);
  const SearchConfig config;
  const Placement eg = place_topology(occupancy, app, Algorithm::kEg, config,
                                      nullptr, nullptr);
  const Placement ba = place_topology(occupancy, app, Algorithm::kBaStar,
                                      config, nullptr, nullptr);
  if (!eg.feasible) return;
  ASSERT_TRUE(ba.feasible);
  EXPECT_LE(ba.utility, eg.utility + 1e-9);
  EXPECT_GE(ba.utility, 0.0);
  EXPECT_LE(eg.utility, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UtilityOrdering,
                         ::testing::Range<std::uint64_t>(1000, 1012));

// ---------------------------------------------------------------------------
// The paper's workloads at small scale on the paper's testbed.

class WorkloadSweep
    : public ::testing::TestWithParam<std::tuple<Algorithm, bool>> {};

TEST_P(WorkloadSweep, MultitierOnSimDatacenterIsValid) {
  const auto [algorithm, heterogeneous] = GetParam();
  util::Rng rng(99);
  const auto datacenter = sim::make_sim_datacenter(6, 8);  // shrunk
  dc::Occupancy occupancy(datacenter);
  sim::apply_sim_preload(occupancy, rng);
  const auto app = sim::make_multitier(
      25,
      heterogeneous ? sim::RequirementMix::kHeterogeneous
                    : sim::RequirementMix::kHomogeneous,
      rng);
  SearchConfig config;
  config.deadline_seconds = 0.3;
  const Placement placement = place_topology(occupancy, app, algorithm,
                                             config, nullptr, nullptr);
  ASSERT_TRUE(placement.feasible) << placement.failure_reason;
  if (!placement.bandwidth_overcommitted) {
    EXPECT_TRUE(
        verify_placement(occupancy, app, placement.assignment).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, WorkloadSweep,
    ::testing::Combine(::testing::Values(Algorithm::kEg, Algorithm::kEgC,
                                         Algorithm::kEgBw,
                                         Algorithm::kDbaStar),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<Algorithm, bool>>& param_info) {
      std::string name = to_string(std::get<0>(param_info.param));
      for (auto& c : name) {
        if (c == '*') c = 'S';
      }
      return name + (std::get<1>(param_info.param) ? "_het" : "_hom");
    });

}  // namespace
}  // namespace ostro::core
