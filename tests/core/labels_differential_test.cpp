// Differential tests for the precomputed prune labels (DESIGN.md section
// 12): with SearchConfig::use_prune_labels on, the tightened admissible
// bounds and subtree tag pruning must produce bit-identical final results
// to the reference heuristic — identical assignments, identical objective
// values (exact double equality), identical reserved bandwidth — while
// never expanding more BA* paths than the reference.  The sweeps cover
// empty and near-full data centers: labels only fire once capacity drains,
// so the loaded scenarios are where a soundness bug would surface as a
// wrongly pruned optimum.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/astar.h"
#include "core/greedy.h"
#include "core/scheduler.h"
#include "helpers.h"
#include "util/rng.h"

namespace ostro::core {
namespace {

using ostro::testing::random_app;
using ostro::testing::small_dc;
using ostro::testing::two_site_dc;

/// Consumes most of a few hosts so the base feasibility counts drop below
/// the multi-feasible thresholds and the label ladder has something to
/// escalate.  Host capacity in the fixtures is (8, 16, 500).
void drain_hosts(dc::Occupancy& occupancy, util::Rng& rng, int count) {
  const auto hosts = static_cast<int>(occupancy.datacenter().host_count());
  for (int i = 0; i < count; ++i) {
    const auto h = static_cast<dc::HostId>(rng.uniform_int(0, hosts - 1));
    const topo::Resources free = occupancy.available(h);
    if (free.vcpus > 7.5) {
      occupancy.add_host_load(h, {7.5, 15.0, 490.0});
    }
  }
}

void expect_identical(const GreedyOutcome& labeled, const GreedyOutcome& ref,
                      int trial) {
  ASSERT_EQ(labeled.feasible, ref.feasible) << "trial " << trial;
  if (!ref.feasible) return;
  EXPECT_EQ(labeled.state.assignment(), ref.state.assignment())
      << "trial " << trial;
  EXPECT_EQ(labeled.state.utility_committed(), ref.state.utility_committed())
      << "trial " << trial;
  EXPECT_EQ(labeled.state.ubw(), ref.state.ubw()) << "trial " << trial;
}

void expect_identical(const AStarOutcome& labeled, const AStarOutcome& ref,
                      int trial) {
  ASSERT_EQ(labeled.feasible, ref.feasible) << "trial " << trial;
  if (!ref.feasible) return;
  EXPECT_EQ(labeled.state.assignment(), ref.state.assignment())
      << "trial " << trial;
  EXPECT_EQ(labeled.state.utility_committed(), ref.state.utility_committed())
      << "trial " << trial;
  EXPECT_EQ(labeled.state.ubw(), ref.state.ubw()) << "trial " << trial;
}

TEST(LabelsDifferentialTest, EgMatchesReferenceBounds) {
  // The labels enter EG only through Estimator::rest_bound, which shifts
  // every candidate of a node by the same constant — the argmin, and thus
  // the whole greedy trajectory, must be exactly preserved.
  util::Rng rng(12001);
  for (int trial = 0; trial < 25; ++trial) {
    const auto datacenter =
        trial % 2 == 0 ? small_dc(3, 3) : two_site_dc(2, 2);
    dc::Occupancy occupancy(datacenter);
    if (trial % 3 == 0) drain_hosts(occupancy, rng, 3);
    const auto app = random_app(rng, 6);
    SearchConfig config;
    const Objective objective(app, datacenter, config);
    const auto order = eg_sort_order(app);

    const GreedyOutcome labeled = run_greedy(
        Algorithm::kEg,
        PartialPlacement(app, occupancy, objective, /*use_prune_labels=*/true),
        order, nullptr);
    const GreedyOutcome reference = run_greedy(
        Algorithm::kEg,
        PartialPlacement(app, occupancy, objective, /*use_prune_labels=*/false),
        order, nullptr);
    expect_identical(labeled, reference, trial);
  }
}

TEST(LabelsDifferentialTest, BaStarMatchesReferenceAndNeverExpandsMore) {
  util::Rng rng(12002);
  std::uint64_t expanded_on = 0;
  std::uint64_t expanded_off = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto datacenter =
        trial % 2 == 0 ? small_dc(2, 3) : two_site_dc(2, 2);
    dc::Occupancy occupancy(datacenter);
    if (trial % 2 == 1) drain_hosts(occupancy, rng, 2);
    const auto app = random_app(rng, 6);
    SearchConfig config;
    const Objective objective(app, datacenter, config);

    const AStarOutcome labeled = run_astar(
        PartialPlacement(app, occupancy, objective, /*use_prune_labels=*/true),
        config, false, nullptr);
    const AStarOutcome reference = run_astar(
        PartialPlacement(app, occupancy, objective, /*use_prune_labels=*/false),
        config, false, nullptr);
    expect_identical(labeled, reference, trial);
    expanded_on += labeled.stats.paths_expanded;
    expanded_off += reference.stats.paths_expanded;
  }
  // A tighter admissible bound can only prune harder.  Aggregated across
  // the sweep to be robust against per-trial tie-break noise.
  EXPECT_LE(expanded_on, expanded_off);
}

TEST(LabelsDifferentialTest, DbaStarMatchesReference) {
  util::Rng rng(12003);
  for (int trial = 0; trial < 15; ++trial) {
    const auto datacenter =
        trial % 2 == 0 ? small_dc(2, 2) : two_site_dc(1, 3);
    dc::Occupancy occupancy(datacenter);
    if (trial % 2 == 0) drain_hosts(occupancy, rng, 1);
    const auto app = random_app(rng, 5);
    SearchConfig config;
    // deadline_seconds == 0 disables the probabilistic pruning, so DBA*
    // (sharp sibling ordering, depth-first pops) is deterministic and the
    // two runs are comparable.
    config.deadline_seconds = 0.0;
    config.greedy_estimate_in_astar = true;
    const Objective objective(app, datacenter, config);

    const AStarOutcome labeled = run_astar(
        PartialPlacement(app, occupancy, objective, /*use_prune_labels=*/true),
        config, true, nullptr);
    const AStarOutcome reference = run_astar(
        PartialPlacement(app, occupancy, objective, /*use_prune_labels=*/false),
        config, true, nullptr);
    expect_identical(labeled, reference, trial);
  }
}

TEST(LabelsDifferentialTest, PooledCoreMatchesWithLabels) {
  // The labels flag must survive assign_pooled_flat / branch_from: the
  // pooled core with labels on must match the reference core with labels
  // on, and both must match the labels-off result.
  util::Rng rng(12004);
  for (int trial = 0; trial < 15; ++trial) {
    const auto datacenter =
        trial % 2 == 0 ? small_dc(2, 3) : two_site_dc(2, 2);
    dc::Occupancy occupancy(datacenter);
    if (trial % 3 == 1) drain_hosts(occupancy, rng, 2);
    const auto app = random_app(rng, 6);
    SearchConfig pooled_config;
    pooled_config.search_core = SearchCore::kPooled;
    SearchConfig ref_config = pooled_config;
    ref_config.search_core = SearchCore::kReference;
    const Objective objective(app, datacenter, pooled_config);

    const AStarOutcome pooled = run_astar(
        PartialPlacement(app, occupancy, objective, /*use_prune_labels=*/true),
        pooled_config, false, nullptr);
    const AStarOutcome reference = run_astar(
        PartialPlacement(app, occupancy, objective, /*use_prune_labels=*/true),
        ref_config, false, nullptr);
    const AStarOutcome unlabeled = run_astar(
        PartialPlacement(app, occupancy, objective, /*use_prune_labels=*/false),
        ref_config, false, nullptr);
    expect_identical(pooled, reference, trial);
    expect_identical(pooled, unlabeled, trial);
    EXPECT_EQ(pooled.stats.paths_expanded, reference.stats.paths_expanded)
        << "trial " << trial;
  }
}

TEST(LabelsDifferentialTest, SchedulerFlagMatrixMatches) {
  // End to end through place_topology: the config knob must reach the
  // search state for every algorithm, and flipping it must not change any
  // observable placement output.
  util::Rng rng(12005);
  const Algorithm algorithms[] = {Algorithm::kEg, Algorithm::kBaStar,
                                  Algorithm::kDbaStar};
  for (int trial = 0; trial < 12; ++trial) {
    const auto datacenter =
        trial % 2 == 0 ? small_dc(2, 3) : two_site_dc(2, 2);
    dc::Occupancy occupancy(datacenter);
    if (trial % 2 == 1) drain_hosts(occupancy, rng, 2);
    const auto app = random_app(rng, 5);
    for (const Algorithm algorithm : algorithms) {
      SearchConfig on_config;
      on_config.use_prune_labels = true;
      if (algorithm == Algorithm::kDbaStar) {
        on_config.deadline_seconds = 0.0;
        on_config.greedy_estimate_in_astar = true;
      }
      SearchConfig off_config = on_config;
      off_config.use_prune_labels = false;

      const Placement labeled = place_topology(
          occupancy, app, algorithm, on_config, nullptr, nullptr, nullptr);
      const Placement reference = place_topology(
          occupancy, app, algorithm, off_config, nullptr, nullptr, nullptr);
      ASSERT_EQ(labeled.feasible, reference.feasible)
          << "trial " << trial << " algorithm " << static_cast<int>(algorithm);
      if (!reference.feasible) continue;
      EXPECT_EQ(labeled.assignment, reference.assignment)
          << "trial " << trial << " algorithm " << static_cast<int>(algorithm);
      EXPECT_EQ(labeled.utility, reference.utility)
          << "trial " << trial << " algorithm " << static_cast<int>(algorithm);
      EXPECT_EQ(labeled.reserved_bandwidth_mbps,
                reference.reserved_bandwidth_mbps)
          << "trial " << trial << " algorithm " << static_cast<int>(algorithm);
    }
  }
}

TEST(LabelsDifferentialTest, NearFullDcStillMatchesReference) {
  // Drain almost the entire fleet: this is the regime where every label
  // family (separation ladder, host climb, co-location escalate) fires on
  // most edges, and where an unsound tightening would prune the only
  // remaining completion.
  util::Rng rng(12006);
  int feasible_trials = 0;
  for (int trial = 0; trial < 15; ++trial) {
    const auto datacenter = small_dc(3, 3);
    dc::Occupancy occupancy(datacenter);
    // Leave roughly two hosts untouched so some placements stay feasible.
    const auto hosts = static_cast<int>(datacenter.host_count());
    for (int h = 0; h + 2 < hosts; ++h) {
      if (rng.chance(0.8)) {
        occupancy.add_host_load(static_cast<dc::HostId>(h),
                                {7.5, 15.0, 490.0});
      }
    }
    const auto app = random_app(rng, 4, 0.5, /*with_zone=*/false);
    SearchConfig config;
    const Objective objective(app, datacenter, config);

    const AStarOutcome labeled = run_astar(
        PartialPlacement(app, occupancy, objective, /*use_prune_labels=*/true),
        config, false, nullptr);
    const AStarOutcome reference = run_astar(
        PartialPlacement(app, occupancy, objective, /*use_prune_labels=*/false),
        config, false, nullptr);
    expect_identical(labeled, reference, trial);
    EXPECT_LE(labeled.stats.paths_expanded, reference.stats.paths_expanded)
        << "trial " << trial;
    if (reference.feasible) ++feasible_trials;
  }
  EXPECT_GT(feasible_trials, 3);
}

}  // namespace
}  // namespace ostro::core
