// Tests for the property extensions of the paper's introduction and future
// work (Section VI): pipe latency budgets, affinity groups (co-location)
// and hardware-tag affinities — across the topology model, the constraint
// engine, the verifier, the search algorithms and the Heat template.
#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/candidates.h"
#include "core/scheduler.h"
#include "core/verify.h"
#include "helpers.h"
#include "openstack/heat_template.h"

namespace ostro::core {
namespace {

using ostro::testing::small_dc;
using ostro::testing::two_site_dc;

// ---------------------------------------------------------------------------
// Latency budgets (Section VI).

topo::AppTopology latency_pair(double budget_us) {
  topo::TopologyBuilder builder;
  builder.add_vm("a", {2.0, 2.0, 0.0});
  builder.add_vm("b", {2.0, 2.0, 0.0});
  builder.connect("a", "b", 100.0, budget_us);
  return builder.build();
}

TEST(LatencyTest, DefaultScopeLatenciesAreMonotone) {
  const auto dc = small_dc();
  double previous = -1.0;
  for (int s = 0; s <= static_cast<int>(dc::Scope::kCrossSite); ++s) {
    const double latency = dc.scope_latency_us(static_cast<dc::Scope>(s));
    EXPECT_GE(latency, previous);
    previous = latency;
  }
}

TEST(LatencyTest, MaxScopeForLatency) {
  const auto dc = small_dc();  // defaults: 5/25/80/200/2000 us
  EXPECT_EQ(dc.max_scope_for_latency(5.0), dc::Scope::kSameHost);
  EXPECT_EQ(dc.max_scope_for_latency(30.0), dc::Scope::kSameRack);
  EXPECT_EQ(dc.max_scope_for_latency(100.0), dc::Scope::kSamePod);
  EXPECT_EQ(dc.max_scope_for_latency(1e9), dc::Scope::kCrossSite);
  EXPECT_FALSE(dc.max_scope_for_latency(1.0).has_value());
}

TEST(LatencyTest, CustomScopeLatenciesValidated) {
  dc::DataCenterBuilder builder;
  EXPECT_THROW(builder.set_scope_latencies({5.0, 4.0, 80.0, 200.0, 2000.0}),
               std::invalid_argument);  // decreasing
  EXPECT_THROW(builder.set_scope_latencies({-1.0, 4.0, 80.0, 200.0, 2000.0}),
               std::invalid_argument);
  EXPECT_NO_THROW(builder.set_scope_latencies({1.0, 2.0, 3.0, 4.0, 5.0}));
}

TEST(LatencyTest, TightBudgetForcesCoLocation) {
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const auto app = latency_pair(10.0);  // only same-host (5us) fits
  const Objective objective(app, datacenter, SearchConfig{});
  PartialPlacement p(app, occupancy, objective);
  p.place(0, 0);
  EXPECT_TRUE(p.latency_ok(1, 0));
  EXPECT_FALSE(p.latency_ok(1, 1));  // same rack = 25us > 10us
  EXPECT_EQ(get_candidates(p, 1), (std::vector<dc::HostId>{0}));
}

TEST(LatencyTest, RackBudgetAllowsRackNotPod) {
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const auto app = latency_pair(30.0);  // host(5) + rack(25) fit
  const Objective objective(app, datacenter, SearchConfig{});
  PartialPlacement p(app, occupancy, objective);
  p.place(0, 0);
  EXPECT_TRUE(p.latency_ok(1, 1));   // same rack
  EXPECT_FALSE(p.latency_ok(1, 2));  // other rack = same pod = 80us
}

TEST(LatencyTest, UnconstrainedPipeIgnoresLatency) {
  const auto datacenter = two_site_dc();
  const dc::Occupancy occupancy(datacenter);
  const auto app = latency_pair(0.0);
  const Objective objective(app, datacenter, SearchConfig{});
  PartialPlacement p(app, occupancy, objective);
  p.place(0, 0);
  for (dc::HostId h = 0; h < datacenter.host_count(); ++h) {
    EXPECT_TRUE(p.latency_ok(1, h));
  }
}

TEST(LatencyTest, ConflictWithDiversityMakesInfeasible) {
  // Latency demands co-location, the zone forbids it: no placement exists.
  topo::TopologyBuilder builder;
  builder.add_vm("a", {1.0, 1.0, 0.0});
  builder.add_vm("b", {1.0, 1.0, 0.0});
  builder.connect("a", "b", 50.0, 10.0);  // same host only
  builder.add_zone("z", topo::DiversityLevel::kHost,
                   std::vector<std::string>{"a", "b"});
  const auto app = builder.build();
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const Placement placement = place_topology(
      occupancy, app, Algorithm::kBaStar, SearchConfig{}, nullptr, nullptr);
  EXPECT_FALSE(placement.feasible);
}

TEST(LatencyTest, VerifierCatchesLatencyViolation) {
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const auto app = latency_pair(10.0);
  const auto violations = verify_placement(occupancy, app, {0, 2});
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("latency"), std::string::npos);
  EXPECT_TRUE(verify_placement(occupancy, app, {0, 0}).empty());
}

TEST(LatencyTest, AllAlgorithmsHonorBudgets) {
  const auto datacenter = small_dc(2, 3);
  const dc::Occupancy occupancy(datacenter);
  topo::TopologyBuilder builder;
  builder.add_vm("fe", {2.0, 2.0, 0.0});
  builder.add_vm("cache", {2.0, 2.0, 0.0});
  builder.add_vm("be", {2.0, 2.0, 0.0});
  builder.connect("fe", "cache", 100.0, 30.0);   // <= rack
  builder.connect("cache", "be", 100.0, 100.0);  // <= pod
  const auto app = builder.build();
  for (const auto algorithm :
       {Algorithm::kEg, Algorithm::kEgC, Algorithm::kEgBw, Algorithm::kBaStar,
        Algorithm::kDbaStar}) {
    SearchConfig config;
    config.deadline_seconds = 0.2;
    const Placement placement = place_topology(occupancy, app, algorithm,
                                               config, nullptr, nullptr);
    ASSERT_TRUE(placement.feasible) << to_string(algorithm);
    EXPECT_TRUE(verify_placement(occupancy, app, placement.assignment).empty())
        << to_string(algorithm);
  }
}

TEST(LatencyTest, NegativeBudgetRejectedByBuilder) {
  topo::TopologyBuilder builder;
  builder.add_vm("a", {1.0, 1.0, 0.0});
  builder.add_vm("b", {1.0, 1.0, 0.0});
  EXPECT_THROW(builder.connect("a", "b", 10.0, -1.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Affinity groups.

TEST(AffinityTest, BuilderValidation) {
  topo::TopologyBuilder builder;
  builder.add_vm("a", {1.0, 1.0, 0.0});
  builder.add_vm("b", {1.0, 1.0, 0.0});
  EXPECT_THROW(builder.add_affinity("g", topo::DiversityLevel::kHost,
                                    std::vector<std::string>{"a"}),
               std::invalid_argument);
  EXPECT_THROW(builder.add_affinity("", topo::DiversityLevel::kHost,
                                    std::vector<std::string>{"a", "b"}),
               std::invalid_argument);
  EXPECT_THROW(builder.add_affinity("g", topo::DiversityLevel::kHost,
                                    std::vector<std::string>{"a", "a"}),
               std::invalid_argument);
  builder.add_affinity("g", topo::DiversityLevel::kRack,
                       std::vector<std::string>{"a", "b"});
  const auto app = builder.build();
  EXPECT_EQ(app.affinities().size(), 1u);
  EXPECT_EQ(app.affinities_of(0).size(), 1u);
  EXPECT_EQ(app.affinities_of(1).size(), 1u);
}

TEST(AffinityTest, HostAffinityForcesSameHost) {
  topo::TopologyBuilder builder;
  builder.add_vm("a", {2.0, 2.0, 0.0});
  builder.add_vm("b", {2.0, 2.0, 0.0});
  builder.add_affinity("pair", topo::DiversityLevel::kHost,
                       std::vector<std::string>{"a", "b"});
  const auto app = builder.build();
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const Objective objective(app, datacenter, SearchConfig{});
  PartialPlacement p(app, occupancy, objective);
  p.place(0, 1);
  EXPECT_TRUE(p.affinity_ok(1, 1));
  EXPECT_FALSE(p.affinity_ok(1, 0));
  EXPECT_EQ(get_candidates(p, 1), (std::vector<dc::HostId>{1}));
}

TEST(AffinityTest, RackAffinityAllowsRackSharing) {
  topo::TopologyBuilder builder;
  builder.add_vm("a", {6.0, 2.0, 0.0});
  builder.add_vm("b", {6.0, 2.0, 0.0});
  builder.add_affinity("rackmates", topo::DiversityLevel::kRack,
                       std::vector<std::string>{"a", "b"});
  const auto app = builder.build();
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const Objective objective(app, datacenter, SearchConfig{});
  PartialPlacement p(app, occupancy, objective);
  p.place(0, 0);
  EXPECT_TRUE(p.affinity_ok(1, 0));
  EXPECT_TRUE(p.affinity_ok(1, 1));   // same rack
  EXPECT_FALSE(p.affinity_ok(1, 2));  // other rack
}

TEST(AffinityTest, AffinityPlusDiversityPicksMiddleGround) {
  // Same rack required (affinity) but different hosts (diversity): the only
  // valid placements are distinct hosts within one rack.
  topo::TopologyBuilder builder;
  builder.add_vm("a", {2.0, 2.0, 0.0});
  builder.add_vm("b", {2.0, 2.0, 0.0});
  builder.add_affinity("near", topo::DiversityLevel::kRack,
                       std::vector<std::string>{"a", "b"});
  builder.add_zone("apart", topo::DiversityLevel::kHost,
                   std::vector<std::string>{"a", "b"});
  const auto app = builder.build();
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const Placement placement = place_topology(
      occupancy, app, Algorithm::kBaStar, SearchConfig{}, nullptr, nullptr);
  ASSERT_TRUE(placement.feasible);
  const auto& h = placement.assignment;
  EXPECT_NE(h[0], h[1]);
  EXPECT_EQ(datacenter.host(h[0]).rack, datacenter.host(h[1]).rack);
  EXPECT_TRUE(verify_placement(occupancy, app, placement.assignment).empty());
}

TEST(AffinityTest, VerifierCatchesAffinityViolation) {
  topo::TopologyBuilder builder;
  builder.add_vm("a", {1.0, 1.0, 0.0});
  builder.add_vm("b", {1.0, 1.0, 0.0});
  builder.add_affinity("near", topo::DiversityLevel::kRack,
                       std::vector<std::string>{"a", "b"});
  const auto app = builder.build();
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const auto violations = verify_placement(occupancy, app, {0, 2});
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("affinity"), std::string::npos);
  EXPECT_TRUE(verify_placement(occupancy, app, {0, 1}).empty());
}

// ---------------------------------------------------------------------------
// Hardware tags.

dc::DataCenter tagged_dc() {
  dc::DataCenterBuilder builder;
  const auto site = builder.add_site("s", 16000.0);
  const auto pod = builder.add_pod(site, "p", 16000.0);
  const auto rack = builder.add_rack(pod, "r", 8000.0);
  builder.add_host(rack, "plain", {8.0, 16.0, 500.0}, 1000.0);
  builder.add_host(rack, "fast", {8.0, 16.0, 500.0}, 1000.0,
                   {"ssd", "sriov"});
  builder.add_host(rack, "gpu-box", {8.0, 16.0, 500.0}, 1000.0,
                   {"gpu", "ssd"});
  return builder.build();
}

TEST(TagsTest, HostTagsSortedAndChecked) {
  const auto dc = tagged_dc();
  EXPECT_TRUE(dc.host(1).has_all_tags({"sriov"}));
  EXPECT_TRUE(dc.host(1).has_all_tags({"sriov", "ssd"}));
  EXPECT_FALSE(dc.host(1).has_all_tags({"gpu"}));
  EXPECT_TRUE(dc.host(0).has_all_tags({}));
  EXPECT_FALSE(dc.host(0).has_all_tags({"ssd"}));
}

TEST(TagsTest, RequireTagsFiltersCandidates) {
  topo::TopologyBuilder builder;
  builder.add_vm("nic-heavy", {2.0, 2.0, 0.0});
  builder.require_tags("nic-heavy", {"sriov"});
  const auto app = builder.build();
  const auto datacenter = tagged_dc();
  const dc::Occupancy occupancy(datacenter);
  const Objective objective(app, datacenter, SearchConfig{});
  const PartialPlacement p(app, occupancy, objective);
  EXPECT_EQ(get_candidates(p, 0), (std::vector<dc::HostId>{1}));
}

TEST(TagsTest, RequireTagsValidation) {
  topo::TopologyBuilder builder;
  builder.add_vm("a", {1.0, 1.0, 0.0});
  EXPECT_THROW(builder.require_tags("nope", {"x"}), std::invalid_argument);
  EXPECT_THROW(builder.require_tags("a", {""}), std::invalid_argument);
  builder.require_tags("a", {"b", "a", "b"});
  const auto app = builder.build();
  EXPECT_EQ(app.node(0).required_tags,
            (std::vector<std::string>{"a", "b"}));  // sorted, deduped
}

TEST(TagsTest, InfeasibleWhenNoHostCarriesTags) {
  topo::TopologyBuilder builder;
  builder.add_vm("exotic", {1.0, 1.0, 0.0});
  builder.require_tags("exotic", {"quantum"});
  const auto app = builder.build();
  const auto datacenter = tagged_dc();
  const dc::Occupancy occupancy(datacenter);
  const Placement placement = place_topology(
      occupancy, app, Algorithm::kEg, SearchConfig{}, nullptr, nullptr);
  EXPECT_FALSE(placement.feasible);
}

TEST(TagsTest, VerifierCatchesTagViolation) {
  topo::TopologyBuilder builder;
  builder.add_vm("db", {1.0, 1.0, 0.0});
  builder.require_tags("db", {"ssd"});
  const auto app = builder.build();
  const auto datacenter = tagged_dc();
  const dc::Occupancy occupancy(datacenter);
  const auto violations = verify_placement(occupancy, app, {0});
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("tags"), std::string::npos);
  EXPECT_TRUE(verify_placement(occupancy, app, {1}).empty());
}

// ---------------------------------------------------------------------------
// Heat template integration for all three extensions.

TEST(ExtensionTemplateTest, ParsesLatencyAffinityAndTags) {
  const os::HeatTemplate parsed = os::HeatTemplate::parse_text(R"({
    "resources": {
      "fe": {"type": "OS::Nova::Server",
             "properties": {"flavor": "m1.small",
                            "required_tags": ["sriov"]}},
      "be": {"type": "OS::Nova::Server", "properties": {"flavor": "m1.small"}},
      "vol": {"type": "OS::Cinder::Volume", "properties": {"size_gb": 10}},
      "p": {"type": "ATT::QoS::Pipe",
            "properties": {"from": "fe", "to": "be",
                           "bandwidth_mbps": 100, "max_latency_us": 30}},
      "ag": {"type": "ATT::Valet::AffinityGroup",
             "properties": {"level": "rack", "members": ["be", "vol"]}}
    }
  })");
  EXPECT_EQ(parsed.topology.node(parsed.topology.node_id("fe")).required_tags,
            (std::vector<std::string>{"sriov"}));
  ASSERT_EQ(parsed.topology.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(parsed.topology.edges()[0].max_latency_us, 30.0);
  ASSERT_EQ(parsed.topology.affinities().size(), 1u);
  EXPECT_EQ(parsed.topology.affinities()[0].level,
            topo::DiversityLevel::kRack);
}

TEST(ExtensionTemplateTest, BadAffinityGroupRejected) {
  EXPECT_THROW((void)os::HeatTemplate::parse_text(R"({
    "resources": {
      "a": {"type": "OS::Nova::Server", "properties": {"flavor": "m1.tiny"}},
      "ag": {"type": "ATT::Valet::AffinityGroup",
             "properties": {"level": "rack", "members": ["a"]}}
    }
  })"),
               os::TemplateError);
}

// ---------------------------------------------------------------------------
// Search quality interplay: latency/affinity constraints still yield
// optimal BA* results vs brute force.

TEST(ExtensionSearchTest, BaStarOptimalWithExtensions) {
  util::Rng rng(606);
  for (int trial = 0; trial < 8; ++trial) {
    const auto datacenter = small_dc(2, 2);
    const dc::Occupancy occupancy(datacenter);
    topo::TopologyBuilder builder;
    for (int i = 0; i < 4; ++i) {
      builder.add_vm("vm" + std::to_string(i),
                     {static_cast<double>(rng.uniform_int(1, 3)), 2.0, 0.0});
    }
    builder.connect("vm0", "vm1", 100.0, 30.0);  // rack budget
    builder.connect("vm2", "vm3", 50.0);
    builder.add_affinity("pair", topo::DiversityLevel::kRack,
                         std::vector<std::string>{"vm1", "vm2"});
    const auto app = builder.build();
    SearchConfig config;
    const Objective objective(app, datacenter, config);
    const BruteForceResult best =
        brute_force_optimal({app, occupancy, objective}, true);
    const Placement placement = place_topology(
        occupancy, app, Algorithm::kBaStar, config, nullptr, nullptr);
    ASSERT_EQ(placement.feasible, best.feasible) << trial;
    if (best.feasible) {
      EXPECT_NEAR(placement.utility, best.utility, 1e-9) << trial;
    }
  }
}

}  // namespace
}  // namespace ostro::core
