// PlacementService lifecycle entry points: release_stack (with the
// double-release guard), fail_host/repair_host quarantine accounting, and
// the try_commit_migration per-member epoch gate.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>

#include "core/scheduler.h"
#include "core/service.h"
#include "core/stack_registry.h"
#include "core/verify.h"
#include "helpers.h"
#include "net/reservation.h"
#include "topology/app_topology.h"

namespace ostro::core {
namespace {

using ostro::testing::small_dc;
using ostro::testing::tiny_app;

SearchConfig serial_config() {
  SearchConfig config;
  config.threads = 1;
  return config;
}

std::shared_ptr<const topo::AppTopology> one_vm(double cores) {
  topo::TopologyBuilder builder;
  builder.add_vm("vm", {cores, cores, 0.0});
  return std::make_shared<const topo::AppTopology>(builder.build());
}

std::shared_ptr<const topo::AppTopology> zoned_pair() {
  topo::TopologyBuilder builder;
  builder.add_vm("a", {2.0, 2.0, 0.0});
  builder.add_vm("b", {2.0, 2.0, 0.0});
  builder.connect("a", "b", 50.0);
  builder.add_zone("dz", topo::DiversityLevel::kHost, {0, 1});
  return std::make_shared<const topo::AppTopology>(builder.build());
}

TEST(LifecycleServiceTest, ReleaseStackDrainsAndGuardsDoubleRelease) {
  const auto datacenter = small_dc(2, 2);
  OstroScheduler scheduler(datacenter, serial_config());
  PlacementService service(scheduler);
  StackRegistry registry;

  const auto topology =
      std::make_shared<const topo::AppTopology>(tiny_app());
  const ServiceResult result = service.place(*topology, Algorithm::kEg);
  ASSERT_TRUE(result.placement.committed);
  registry.add(1, topology, result.placement.assignment);

  std::uint64_t epoch = 0;
  DeployedStack released;
  EXPECT_TRUE(service.release_stack(registry, 1, true, &epoch, &released));
  EXPECT_GT(epoch, result.commit_epoch);
  EXPECT_EQ(released.assignment, result.placement.assignment);
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_TRUE(scheduler.occupancy() == dc::Occupancy(datacenter));

  // The guard: the record is gone, so a second release is a clean no-op.
  EXPECT_FALSE(service.release_stack(registry, 1));
  EXPECT_TRUE(scheduler.occupancy() == dc::Occupancy(datacenter));
}

TEST(LifecycleServiceTest, FailHostKillsResidentsAndRepairRestores) {
  const auto datacenter = small_dc(1, 2);
  OstroScheduler scheduler(datacenter, serial_config());
  PlacementService service(scheduler);
  StackRegistry registry;

  // One single-VM stack pinned per host via direct commits.
  const auto app = one_vm(2.0);
  net::commit_placement(scheduler.occupancy(), *app, {0});
  net::commit_placement(scheduler.occupancy(), *app, {1});
  registry.add(1, app, {0});
  registry.add(2, app, {1});

  std::size_t killed = 0;
  const topo::Resources quarantine =
      service.fail_host(registry, 0, &killed);
  EXPECT_EQ(killed, 1u);
  EXPECT_EQ(registry.size(), 1u);
  // The host's entire free capacity is consumed: nothing can land there.
  EXPECT_TRUE(scheduler.occupancy().available(0).is_zero());
  EXPECT_TRUE(scheduler.occupancy().is_active(0));
  EXPECT_DOUBLE_EQ(quarantine.vcpus, 8.0);  // stack 1's load was released

  service.repair_host(0, quarantine);
  EXPECT_DOUBLE_EQ(scheduler.occupancy().available(0).vcpus, 8.0);
  EXPECT_FALSE(scheduler.occupancy().is_active(0));

  // Draining the surviving stack lands back on fresh.
  EXPECT_TRUE(service.release_stack(registry, 2));
  EXPECT_TRUE(scheduler.occupancy() == dc::Occupancy(datacenter));
}

TEST(LifecycleServiceTest, MigrationMovesStackAndVacatesSource) {
  const auto datacenter = small_dc(1, 2);
  OstroScheduler scheduler(datacenter, serial_config());
  PlacementService service(scheduler);
  StackRegistry registry;

  const auto app = one_vm(2.0);
  net::commit_placement(scheduler.occupancy(), *app, {0});
  registry.add(1, app, {0});

  PlacementService::MigrationBatch batch;
  batch.members.push_back({1, app, {0}, {1}});
  std::uint64_t epoch = 0;
  EXPECT_EQ(service.try_commit_migration(batch, registry, &epoch), 1u);
  EXPECT_EQ(batch.members[0].outcome,
            PlacementService::CommitOutcome::kCommitted);
  EXPECT_GT(epoch, 0u);

  EXPECT_FALSE(scheduler.occupancy().is_active(0));
  EXPECT_DOUBLE_EQ(scheduler.occupancy().used(1).vcpus, 2.0);
  const auto live = registry.get(1);
  ASSERT_TRUE(live.has_value());
  EXPECT_EQ(live->assignment, net::Assignment{1});

  // Replaying the move as release-at-from + commit-at-to on a fresh
  // occupancy reproduces the live state bit for bit — the serial-replay
  // property the race test relies on.
  dc::Occupancy replay(datacenter);
  net::commit_placement(replay, *app, {0});
  net::release_placement(replay, *app, {0});
  net::commit_placement(replay, *app, {1});
  EXPECT_TRUE(replay == scheduler.occupancy());
}

TEST(LifecycleServiceTest, MigrationConflictsWhenAssignmentMovedOn) {
  const auto datacenter = small_dc(1, 2);
  OstroScheduler scheduler(datacenter, serial_config());
  PlacementService service(scheduler);
  StackRegistry registry;

  const auto app = one_vm(2.0);
  net::commit_placement(scheduler.occupancy(), *app, {1});
  registry.add(1, app, {1});
  const dc::Occupancy before = scheduler.occupancy();

  // The plan believes the stack still sits on host 0: per-member epoch gate.
  PlacementService::MigrationBatch batch;
  batch.members.push_back({1, app, {0}, {1}});
  EXPECT_EQ(service.try_commit_migration(batch, registry), 0u);
  EXPECT_EQ(batch.members[0].outcome,
            PlacementService::CommitOutcome::kConflict);
  EXPECT_TRUE(scheduler.occupancy() == before);

  // Same for a stack that is not live at all.
  batch.members[0] = {7, app, {1}, {0}};
  EXPECT_EQ(service.try_commit_migration(batch, registry), 0u);
  EXPECT_EQ(batch.members[0].outcome,
            PlacementService::CommitOutcome::kConflict);
}

TEST(LifecycleServiceTest, MigrationRejectsStructureViolations) {
  const auto datacenter = small_dc(1, 2);
  OstroScheduler scheduler(datacenter, serial_config());
  PlacementService service(scheduler);
  StackRegistry registry;

  const auto app = zoned_pair();
  net::commit_placement(scheduler.occupancy(), *app, {0, 1});
  registry.add(1, app, {0, 1});
  const dc::Occupancy before = scheduler.occupancy();

  // Co-locating the host-diverse pair is deterministic nonsense: kRejected,
  // not kConflict, so the planner never retries it.
  PlacementService::MigrationBatch batch;
  batch.members.push_back({1, app, {0, 1}, {0, 0}});
  EXPECT_EQ(service.try_commit_migration(batch, registry), 0u);
  EXPECT_EQ(batch.members[0].outcome,
            PlacementService::CommitOutcome::kRejected);
  EXPECT_TRUE(scheduler.occupancy() == before);
  ASSERT_TRUE(
      verify_assignment_structure(datacenter, *app, registry.get(1)->assignment)
          .empty());
}

TEST(LifecycleServiceTest, MigrationConflictsWhenTargetLacksCapacity) {
  const auto datacenter = small_dc(1, 2);
  OstroScheduler scheduler(datacenter, serial_config());
  PlacementService service(scheduler);
  StackRegistry registry;

  const auto mover = one_vm(4.0);
  const auto blocker = one_vm(6.0);
  net::commit_placement(scheduler.occupancy(), *mover, {0});
  net::commit_placement(scheduler.occupancy(), *blocker, {1});
  registry.add(1, mover, {0});
  registry.add(2, blocker, {1});
  const dc::Occupancy before = scheduler.occupancy();

  PlacementService::MigrationBatch batch;
  batch.members.push_back({1, mover, {0}, {1}});  // 4 + 6 > 8 cores
  EXPECT_EQ(service.try_commit_migration(batch, registry), 0u);
  EXPECT_EQ(batch.members[0].outcome,
            PlacementService::CommitOutcome::kConflict);
  EXPECT_TRUE(scheduler.occupancy() == before);
}

// Regression: only std::invalid_argument (a capacity/reservation failure)
// may be downgraded to a per-member conflict.  A corrupt record — here an
// out-of-range host id smuggled past StackRegistry::add, which validates
// only id uniqueness and assignment size — must propagate as
// std::out_of_range, not be silently miscounted as contention.
TEST(LifecycleServiceTest, MigrationPropagatesNonCapacityExceptions) {
  const auto datacenter = small_dc(1, 2);
  OstroScheduler scheduler(datacenter, serial_config());
  PlacementService service(scheduler);
  StackRegistry registry;

  const auto mover = one_vm(1.0);  // single node, no pipes
  const dc::HostId bogus = 999;    // far beyond the 2-host cluster
  registry.add(1, mover, {bogus});

  PlacementService::MigrationBatch batch;
  batch.members.push_back({1, mover, {bogus}, {0}});
  EXPECT_THROW(service.try_commit_migration(batch, registry),
               std::out_of_range);
}

}  // namespace
}  // namespace ostro::core
