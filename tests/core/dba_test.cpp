#include <gtest/gtest.h>

#include "util/timer.h"
#include "core/astar.h"
#include "core/brute_force.h"
#include "core/greedy.h"
#include "core/verify.h"
#include "helpers.h"

namespace ostro::core {
namespace {

using ostro::testing::random_app;
using ostro::testing::small_dc;
using ostro::testing::tiny_app;

PartialPlacement initial_state(const topo::AppTopology& app,
                               const dc::Occupancy& occupancy,
                               const Objective& objective) {
  return {app, occupancy, objective};
}

TEST(DbaStarTest, FindsValidPlacement) {
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const auto app = tiny_app();
  SearchConfig config;
  config.deadline_seconds = 0.5;
  const Objective objective(app, datacenter, config);
  const AStarOutcome outcome = run_astar(
      initial_state(app, occupancy, objective), config, true, nullptr);
  ASSERT_TRUE(outcome.feasible) << outcome.failure;
  EXPECT_TRUE(
      verify_placement(occupancy, app, outcome.state.assignment()).empty());
}

TEST(DbaStarTest, WithoutDeadlineMatchesBaStarUtility) {
  // deadline <= 0 disables pruning pressure: DBA* degenerates to BA*.
  util::Rng rng(606);
  for (int trial = 0; trial < 10; ++trial) {
    const auto datacenter = small_dc(2, 2);
    const dc::Occupancy occupancy(datacenter);
    const auto app = random_app(rng, 4);
    SearchConfig config;
    config.deadline_seconds = 0.0;
    config.initial_prune_range = 0.0;
    const Objective objective(app, datacenter, config);
    const AStarOutcome dba = run_astar(
        initial_state(app, occupancy, objective), config, true, nullptr);
    const AStarOutcome ba = run_astar(
        initial_state(app, occupancy, objective), config, false, nullptr);
    ASSERT_EQ(dba.feasible, ba.feasible) << "trial " << trial;
    if (ba.feasible) {
      EXPECT_NEAR(dba.state.utility_committed(),
                  ba.state.utility_committed(), 1e-9)
          << "trial " << trial;
    }
  }
}

TEST(DbaStarTest, RespectsDeadlineOnLargeInstance) {
  // A deliberately heavy instance; DBA* must come back around T, not after
  // exploring the whole space.
  util::Rng rng(7777);
  const auto datacenter = small_dc(4, 4);  // 16 hosts
  const dc::Occupancy occupancy(datacenter);
  const auto app = random_app(rng, 10, 0.5);
  SearchConfig config;
  config.deadline_seconds = 0.3;
  const Objective objective(app, datacenter, config);
  const util::WallTimer timer;
  const AStarOutcome outcome = run_astar(
      initial_state(app, occupancy, objective), config, true, nullptr);
  const double elapsed = timer.elapsed_seconds();
  // Bounded slack: pops are fast; allow generous margin for CI noise.
  EXPECT_LT(elapsed, config.deadline_seconds + 1.0);
  if (outcome.feasible) {
    EXPECT_TRUE(
        verify_placement(occupancy, app, outcome.state.assignment()).empty());
  }
}

TEST(DbaStarTest, NeverWorseThanEgIncumbent) {
  // DBA* returns either a completed path or the EG incumbent, so it can
  // never report something worse than plain EG.
  util::Rng rng(2020);
  for (int trial = 0; trial < 10; ++trial) {
    const auto datacenter = small_dc(2, 3);
    const dc::Occupancy occupancy(datacenter);
    const auto app = random_app(rng, 5);
    SearchConfig config;
    config.deadline_seconds = 0.2;
    const Objective objective(app, datacenter, config);
    const GreedyOutcome eg = run_greedy(
        Algorithm::kEg, initial_state(app, occupancy, objective),
        eg_sort_order(app), nullptr);
    const AStarOutcome dba = run_astar(
        initial_state(app, occupancy, objective), config, true, nullptr);
    if (!eg.feasible) continue;
    ASSERT_TRUE(dba.feasible);
    EXPECT_LE(dba.state.utility_committed(),
              eg.state.utility_committed() + 1e-9);
  }
}

TEST(DbaStarTest, AggressiveInitialPruningStillReturnsSolution) {
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const auto app = tiny_app();
  SearchConfig config;
  config.deadline_seconds = 0.2;
  config.initial_prune_range = 10.0;  // prune almost every shallow path
  const Objective objective(app, datacenter, config);
  const AStarOutcome outcome = run_astar(
      initial_state(app, occupancy, objective), config, true, nullptr);
  // The EG incumbent guarantees an answer even when the search implodes.
  ASSERT_TRUE(outcome.feasible);
  EXPECT_TRUE(
      verify_placement(occupancy, app, outcome.state.assignment()).empty());
}

TEST(DbaStarTest, PruningStatisticsRecorded) {
  util::Rng rng(3030);
  const auto datacenter = small_dc(3, 3);
  const dc::Occupancy occupancy(datacenter);
  const auto app = random_app(rng, 8, 0.5);
  SearchConfig config;
  config.deadline_seconds = 0.2;
  config.initial_prune_range = 0.5;
  const Objective objective(app, datacenter, config);
  const AStarOutcome outcome = run_astar(
      initial_state(app, occupancy, objective), config, true, nullptr);
  (void)outcome;
  // With a positive prune range, random pruning happens with overwhelming
  // probability on an instance of this size.
  EXPECT_GT(outcome.stats.paths_generated, 0u);
}

TEST(DbaStarTest, SeedReproducibility) {
  util::Rng rng(4545);
  const auto datacenter = small_dc(2, 3);
  const dc::Occupancy occupancy(datacenter);
  const auto app = random_app(rng, 6);
  SearchConfig config;
  config.deadline_seconds = 0.0;  // no wall-clock dependence
  config.initial_prune_range = 0.3;
  config.seed = 1234;
  const Objective objective(app, datacenter, config);
  const AStarOutcome a = run_astar(
      initial_state(app, occupancy, objective), config, true, nullptr);
  const AStarOutcome b = run_astar(
      initial_state(app, occupancy, objective), config, true, nullptr);
  ASSERT_EQ(a.feasible, b.feasible);
  if (a.feasible) {
    EXPECT_EQ(a.state.assignment(), b.state.assignment());
  }
}

}  // namespace
}  // namespace ostro::core
