#include "core/placement_io.h"

#include <gtest/gtest.h>

#include "core/scheduler.h"
#include "helpers.h"

namespace ostro::core {
namespace {

using ostro::testing::small_dc;
using ostro::testing::tiny_app;

struct Fixture {
  dc::DataCenter datacenter = small_dc(2, 2);
  dc::Occupancy occupancy{datacenter};
  topo::AppTopology app = tiny_app();
  SearchConfig config;

  Placement place() {
    return place_topology(occupancy, app, Algorithm::kEg, config, nullptr,
                          nullptr);
  }
};

TEST(PlacementIoTest, RoundTripPreservesAssignmentAndMetrics) {
  Fixture f;
  const Placement original = f.place();
  ASSERT_TRUE(original.feasible);
  const util::Json document =
      placement_to_json(original, f.app, f.datacenter);
  const Placement restored =
      placement_from_json(document, f.app, f.occupancy, f.config);
  EXPECT_EQ(restored.assignment, original.assignment);
  EXPECT_NEAR(restored.utility, original.utility, 1e-12);
  EXPECT_NEAR(restored.reserved_bandwidth_mbps,
              original.reserved_bandwidth_mbps, 1e-9);
  EXPECT_EQ(restored.new_active_hosts, original.new_active_hosts);
  EXPECT_EQ(restored.hosts_used, original.hosts_used);
}

TEST(PlacementIoTest, TextRoundTrip) {
  Fixture f;
  const Placement original = f.place();
  const std::string text =
      placement_to_text(original, f.app, f.datacenter);
  const Placement restored =
      placement_from_text(text, f.app, f.occupancy, f.config);
  EXPECT_EQ(restored.assignment, original.assignment);
}

TEST(PlacementIoTest, DocumentUsesNames) {
  Fixture f;
  const Placement original = f.place();
  const util::Json document =
      placement_to_json(original, f.app, f.datacenter);
  const auto& mapping = document.at("assignment").as_object();
  EXPECT_EQ(mapping.size(), f.app.node_count());
  EXPECT_TRUE(mapping.count("web") == 1);
  EXPECT_TRUE(mapping.count("db") == 1);
  EXPECT_TRUE(mapping.count("data") == 1);
}

TEST(PlacementIoTest, InfeasibleExportRejected) {
  Fixture f;
  Placement infeasible;
  EXPECT_THROW((void)placement_to_json(infeasible, f.app, f.datacenter),
               PlacementIoError);
}

TEST(PlacementIoTest, UnknownNamesRejected) {
  Fixture f;
  EXPECT_THROW((void)placement_from_text(
                   R"({"assignment": {"ghost": "h0-0"}})", f.app,
                   f.occupancy, f.config),
               PlacementIoError);
  EXPECT_THROW((void)placement_from_text(
                   R"({"assignment": {"web": "no-such-host"}})", f.app,
                   f.occupancy, f.config),
               PlacementIoError);
}

TEST(PlacementIoTest, MissingNodesRejected) {
  Fixture f;
  EXPECT_THROW((void)placement_from_text(
                   R"({"assignment": {"web": "h0-0"}})", f.app, f.occupancy,
                   f.config),
               PlacementIoError);
}

TEST(PlacementIoTest, MalformedJsonRejected) {
  Fixture f;
  EXPECT_THROW(
      (void)placement_from_text("{oops", f.app, f.occupancy, f.config),
      PlacementIoError);
  EXPECT_THROW(
      (void)placement_from_text(R"({"no_assignment": 1})", f.app,
                                f.occupancy, f.config),
      PlacementIoError);
}

TEST(PlacementIoTest, StaleDocumentFailsRevalidation) {
  // Export against an idle data center, then consume the capacity: the
  // import must refuse to resurrect the placement.
  Fixture f;
  const Placement original = f.place();
  const util::Json document =
      placement_to_json(original, f.app, f.datacenter);
  dc::Occupancy crowded = f.occupancy;
  for (dc::HostId h = 0; h < f.datacenter.host_count(); ++h) {
    crowded.add_host_load(h, {7.0, 14.0, 0.0});
  }
  EXPECT_THROW(
      (void)placement_from_json(document, f.app, crowded, f.config),
      PlacementIoError);
}

TEST(PlacementIoTest, MetricsRecomputedNotTrusted) {
  // Tamper with the document's metric fields: import ignores them.
  Fixture f;
  const Placement original = f.place();
  util::Json document = placement_to_json(original, f.app, f.datacenter);
  document.as_object()["utility"] = 999.0;
  document.as_object()["reserved_bandwidth_mbps"] = -5.0;
  const Placement restored =
      placement_from_json(document, f.app, f.occupancy, f.config);
  EXPECT_NEAR(restored.utility, original.utility, 1e-12);
  EXPECT_GE(restored.reserved_bandwidth_mbps, 0.0);
}

}  // namespace
}  // namespace ostro::core
