#include "core/partial.h"

#include <gtest/gtest.h>

#include "helpers.h"

namespace ostro::core {
namespace {

using ostro::testing::small_dc;
using ostro::testing::tiny_app;

struct Fixture {
  dc::DataCenter datacenter = small_dc(2, 2);
  dc::Occupancy occupancy{datacenter};
  topo::AppTopology app = tiny_app();
  SearchConfig config;
  Objective objective{app, datacenter, config};

  PartialPlacement fresh() { return {app, occupancy, objective}; }
};

TEST(PartialPlacementTest, StartsUnplaced) {
  Fixture f;
  const PartialPlacement p = f.fresh();
  EXPECT_EQ(p.placed_count(), 0u);
  EXPECT_FALSE(p.complete());
  EXPECT_FALSE(p.is_placed(0));
  EXPECT_EQ(p.host_of(0), dc::kInvalidHost);
  EXPECT_DOUBLE_EQ(p.ubw(), 0.0);
  EXPECT_EQ(p.new_active_hosts(), 0);
}

TEST(PartialPlacementTest, PlaceUpdatesProgressAndUsage) {
  Fixture f;
  PartialPlacement p = f.fresh();
  p.place(0, 0);  // web -> h0
  EXPECT_TRUE(p.is_placed(0));
  EXPECT_EQ(p.host_of(0), 0u);
  EXPECT_EQ(p.placed_count(), 1u);
  EXPECT_EQ(p.available(0), (topo::Resources{6.0, 14.0, 500.0}));
  EXPECT_EQ(p.used_hosts(), (std::vector<dc::HostId>{0}));
  EXPECT_EQ(p.new_active_hosts(), 1);
}

TEST(PartialPlacementTest, CoLocationCostsNothing) {
  Fixture f;
  PartialPlacement p = f.fresh();
  p.place(0, 0);
  p.place(1, 0);  // web+db same host
  p.place(2, 0);  // volume too
  EXPECT_TRUE(p.complete());
  EXPECT_DOUBLE_EQ(p.ubw(), 0.0);
  EXPECT_EQ(p.new_active_hosts(), 1);
  EXPECT_DOUBLE_EQ(p.remaining_bw_bound(), 0.0);
}

TEST(PartialPlacementTest, CrossHostEdgeCostAndLinkDelta) {
  Fixture f;
  PartialPlacement p = f.fresh();
  p.place(0, 0);
  p.place(1, 1);  // same rack: 100 * 2
  EXPECT_DOUBLE_EQ(p.ubw(), 200.0);
  EXPECT_DOUBLE_EQ(p.link_available(f.datacenter.host_link(0)), 900.0);
  EXPECT_DOUBLE_EQ(p.link_available(f.datacenter.host_link(1)), 900.0);
  p.place(2, 2);  // volume cross-rack from db: 200 * 4
  EXPECT_DOUBLE_EQ(p.ubw(), 200.0 + 800.0);
  EXPECT_DOUBLE_EQ(p.link_available(f.datacenter.rack_link(0)), 3800.0);
}

TEST(PartialPlacementTest, CapacityCheck) {
  Fixture f;
  f.occupancy.add_host_load(0, {6.0, 2.0, 0.0});  // 2 cores left
  PartialPlacement p = f.fresh();
  EXPECT_TRUE(p.capacity_ok(0, 0));   // web needs 2
  EXPECT_FALSE(p.capacity_ok(1, 0));  // db needs 4
  p.place(0, 0);
  EXPECT_FALSE(p.capacity_ok(0, 0));  // no cores left now
}

TEST(PartialPlacementTest, ZoneCheck) {
  topo::TopologyBuilder builder;
  builder.add_vm("a", {1.0, 1.0, 0.0});
  builder.add_vm("b", {1.0, 1.0, 0.0});
  builder.add_vm("c", {1.0, 1.0, 0.0});
  builder.add_zone("rack-z", topo::DiversityLevel::kRack,
                   std::vector<std::string>{"a", "b"});
  const auto app = builder.build();
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const Objective objective(app, datacenter, SearchConfig{});
  PartialPlacement p(app, occupancy, objective);
  p.place(0, 0);  // a in rack0
  EXPECT_FALSE(p.zones_ok(1, 0));
  EXPECT_FALSE(p.zones_ok(1, 1));  // same rack
  EXPECT_TRUE(p.zones_ok(1, 2));   // rack1
  EXPECT_TRUE(p.zones_ok(2, 0));   // c is unzoned
}

TEST(PartialPlacementTest, BandwidthCheckAggregatesSharedLinks) {
  // Node with two 100-pipes to neighbors on distinct hosts; candidate's
  // uplink has only 150 available -> must fail even though each pipe fits
  // individually.
  topo::TopologyBuilder builder;
  builder.add_vm("hub", {1.0, 1.0, 0.0});
  builder.add_vm("x", {1.0, 1.0, 0.0});
  builder.add_vm("y", {1.0, 1.0, 0.0});
  builder.connect("hub", "x", 100.0);
  builder.connect("hub", "y", 100.0);
  const auto app = builder.build();
  const auto datacenter = small_dc(2, 2);
  dc::Occupancy occupancy(datacenter);
  occupancy.reserve_link(datacenter.host_link(0), 850.0);  // 150 left
  const Objective objective(app, datacenter, SearchConfig{});
  PartialPlacement p(app, occupancy, objective);
  p.place(1, 1);  // x
  p.place(2, 2);  // y
  EXPECT_FALSE(p.bandwidth_ok(0, 0));
  EXPECT_TRUE(p.bandwidth_ok(0, 3));  // fresh host has 1000
}

TEST(PartialPlacementTest, BoundSumMatchesFreshRecomputation) {
  // Property: after any placement sequence, the incremental bound equals
  // the sum of per-edge bounds computed from scratch.
  util::Rng rng(2024);
  for (int trial = 0; trial < 30; ++trial) {
    const auto datacenter = small_dc(2, 3);
    const dc::Occupancy occupancy(datacenter);
    const auto app = ostro::testing::random_app(rng, 5);
    const Objective objective(app, datacenter, SearchConfig{});
    PartialPlacement p(app, occupancy, objective);
    for (topo::NodeId v = 0; v < app.node_count(); ++v) {
      std::vector<dc::HostId> candidates;
      for (dc::HostId h = 0; h < datacenter.host_count(); ++h) {
        if (p.can_place(v, h)) candidates.push_back(h);
      }
      if (candidates.empty()) break;
      p.place(v, candidates[static_cast<std::size_t>(
                     rng.next_below(candidates.size()))]);
      double fresh_sum = 0.0;
      for (std::uint32_t e = 0; e < app.edge_count(); ++e) {
        fresh_sum += p.edge_bound(e);
      }
      ASSERT_NEAR(p.remaining_bw_bound(), fresh_sum, 1e-9)
          << "trial " << trial << " after node " << v;
    }
  }
}

TEST(PartialPlacementTest, BoundNeverExceedsFinalCost) {
  // Admissibility at the state level: bound(partial) <= final ubw delta for
  // the completion we actually take.
  util::Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const auto datacenter = small_dc(2, 3);
    const dc::Occupancy occupancy(datacenter);
    const auto app = ostro::testing::random_app(rng, 5);
    const Objective objective(app, datacenter, SearchConfig{});
    PartialPlacement p(app, occupancy, objective);
    std::vector<double> bounds_along_the_way;
    std::vector<double> committed_at_step;
    bool complete = true;
    for (topo::NodeId v = 0; v < app.node_count(); ++v) {
      bounds_along_the_way.push_back(p.ubw() + p.remaining_bw_bound());
      committed_at_step.push_back(p.ubw());
      std::vector<dc::HostId> candidates;
      for (dc::HostId h = 0; h < datacenter.host_count(); ++h) {
        if (p.can_place(v, h)) candidates.push_back(h);
      }
      if (candidates.empty()) {
        complete = false;
        break;
      }
      p.place(v, candidates[static_cast<std::size_t>(
                     rng.next_below(candidates.size()))]);
    }
    if (!complete) continue;
    // NOTE: bound <= cost of *this particular* completion must hold since
    // the bound is a lower bound over all completions.
    for (const double bound : bounds_along_the_way) {
      EXPECT_LE(bound, p.ubw() + 1e-9);
    }
  }
}

TEST(PartialPlacementTest, MinScopeToHost) {
  topo::TopologyBuilder builder;
  builder.add_vm("a", {1.0, 1.0, 0.0});
  builder.add_vm("b", {8.0, 1.0, 0.0});  // full-host cpu
  builder.add_vm("c", {1.0, 1.0, 0.0});
  builder.add_zone("z", topo::DiversityLevel::kRack,
                   std::vector<std::string>{"a", "c"});
  const auto app = builder.build();
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const Objective objective(app, datacenter, SearchConfig{});
  PartialPlacement p(app, occupancy, objective);
  p.place(0, 0);  // a on h0 (rack0)
  // c must leave rack0 entirely: relative to h0 that is >= SamePod.
  EXPECT_EQ(p.min_scope_to_host(2, 0), dc::Scope::kSamePod);
  EXPECT_EQ(p.min_scope_to_host(2, 1), dc::Scope::kSamePod);
  EXPECT_EQ(p.min_scope_to_host(2, 2), dc::Scope::kSameHost);
  // b (a full-host VM) cannot join a on h0: capacity forces >= one rack out.
  EXPECT_EQ(p.min_scope_to_host(1, 0), dc::Scope::kSameRack);
  EXPECT_EQ(p.min_scope_to_host(1, 1), dc::Scope::kSameHost);
}

TEST(PartialPlacementTest, PlaceErrors) {
  Fixture f;
  PartialPlacement p = f.fresh();
  p.place(0, 0);
  EXPECT_THROW(p.place(0, 1), std::logic_error);   // already placed
  EXPECT_THROW(p.place(9, 0), std::logic_error);   // bad node
  EXPECT_THROW(p.place(1, 99), std::logic_error);  // bad host
}

TEST(PartialPlacementTest, UtilityBoundGrowsMonotonically) {
  Fixture f;
  PartialPlacement p = f.fresh();
  const double u0 = p.utility_bound();
  p.place(0, 0);
  const double u1 = p.utility_bound();
  p.place(1, 2);  // cross-rack
  const double u2 = p.utility_bound();
  EXPECT_LE(u0, u1 + 1e-12);
  EXPECT_LE(u1, u2 + 1e-12);
}

TEST(PartialPlacementTest, ActiveBaseHostDoesNotCountAsNew) {
  Fixture f;
  f.occupancy.mark_active(1);
  PartialPlacement p = f.fresh();
  p.place(0, 1);
  EXPECT_EQ(p.new_active_hosts(), 0);
  p.place(1, 2);
  EXPECT_EQ(p.new_active_hosts(), 1);
  EXPECT_TRUE(p.is_active(1));
  EXPECT_TRUE(p.is_active(2));
  EXPECT_FALSE(p.is_active(3));
}

}  // namespace
}  // namespace ostro::core
