// StreamingService + AdmissionQueue: the streaming admission front end.
//
// Deterministic interleavings use manual dispatch mode (no dispatcher
// threads; dispatch_once() pumps exactly one batch) to pin queue
// drain/shutdown semantics, priority overtaking, deadline expiry while
// queued, and the batch-commit spill path.  The stress test drives
// multi-dispatcher batched commits and checks the committed set replays
// serially — in commit_epoch order — to the bit-identical occupancy, the
// same invariant service_test.cpp proves for unbatched commits.  Runs
// under TSan in CI.
#include "core/stream.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "core/scheduler.h"
#include "core/service.h"
#include "helpers.h"
#include "net/reservation.h"
#include "topology/app_topology.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ostro::core {
namespace {

using ostro::testing::small_dc;
using ostro::testing::tiny_app;

/// One 8-core host plus one 2-core host: a 6-core VM fits only on "big",
/// so two 6-core requests contend for exactly one slot.
dc::DataCenter contended_dc() {
  dc::DataCenterBuilder builder;
  const auto site = builder.add_site("site0", 16000.0);
  const auto pod = builder.add_pod(site, "pod0", 16000.0);
  const auto rack = builder.add_rack(pod, "rack0", 4000.0);
  builder.add_host(rack, "big", {8.0, 16.0, 500.0}, 1000.0);
  builder.add_host(rack, "small", {2.0, 4.0, 100.0}, 1000.0);
  return builder.build();
}

topo::AppTopology one_vm(const std::string& name, double cores) {
  topo::TopologyBuilder builder;
  builder.add_vm(name, {cores, cores, 0.0});
  return builder.build();
}

SearchConfig stream_config(std::size_t batch = 8, std::size_t capacity = 64) {
  SearchConfig config;
  config.threads = 1;  // the streaming layer is the concurrency under test
  config.stream_max_batch = batch;
  config.stream_queue_capacity = capacity;
  return config;
}

StreamRequest request_for(topo::AppTopology topology,
                          StreamPriority priority = StreamPriority::kNormal,
                          double deadline_seconds = 0.0) {
  StreamRequest request;
  request.topology = std::move(topology);
  request.algorithm = Algorithm::kEg;
  request.priority = priority;
  request.deadline_seconds = deadline_seconds;
  return request;
}

AdmissionQueue::Entry entry_for(topo::AppTopology topology,
                                StreamPriority priority) {
  AdmissionQueue::Entry entry;
  entry.request = request_for(std::move(topology), priority);
  entry.enqueued = AdmissionQueue::Clock::now();
  return entry;
}

TEST(StreamConfigTest, ValidateRejectsZeroStreamKnobs) {
  SearchConfig config;
  config.stream_queue_capacity = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = SearchConfig{};
  config.stream_max_batch = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = SearchConfig{};
  config.stream_dispatch_threads = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  EXPECT_NO_THROW(SearchConfig{}.validate());
}

TEST(StreamPriorityTest, ParseAndPrintRoundTrip) {
  EXPECT_EQ(parse_stream_priority("high"), StreamPriority::kHigh);
  EXPECT_EQ(parse_stream_priority("NORMAL"), StreamPriority::kNormal);
  EXPECT_EQ(parse_stream_priority("Low"), StreamPriority::kLow);
  EXPECT_THROW((void)parse_stream_priority("urgent"), std::invalid_argument);
  EXPECT_STREQ(to_string(StreamPriority::kHigh), "high");
  EXPECT_STREQ(to_string(StreamStatus::kExpired), "expired");
}

TEST(AdmissionQueueTest, PriorityClassesOvertakeFifoWithinClass) {
  AdmissionQueue queue(8);
  auto low = entry_for(one_vm("l", 1.0), StreamPriority::kLow);
  auto normal_a = entry_for(one_vm("na", 1.0), StreamPriority::kNormal);
  auto normal_b = entry_for(one_vm("nb", 1.0), StreamPriority::kNormal);
  auto high = entry_for(one_vm("h", 1.0), StreamPriority::kHigh);
  ASSERT_TRUE(queue.push(low));
  ASSERT_TRUE(queue.push(normal_a));
  ASSERT_TRUE(queue.push(normal_b));
  ASSERT_TRUE(queue.push(high));
  EXPECT_EQ(queue.depth(), 4u);

  // High first, then the normals in arrival order, then low.
  auto batch = queue.pop_batch(3);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].request.priority, StreamPriority::kHigh);
  EXPECT_EQ(batch[1].request.topology.node(0).name, "na");
  EXPECT_EQ(batch[2].request.topology.node(0).name, "nb");
  batch = queue.pop_batch(3);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].request.priority, StreamPriority::kLow);
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(AdmissionQueueTest, BoundedCapacityRefusesWhenFull) {
  AdmissionQueue queue(2);
  auto a = entry_for(one_vm("a", 1.0), StreamPriority::kNormal);
  auto b = entry_for(one_vm("b", 1.0), StreamPriority::kNormal);
  auto c = entry_for(one_vm("c", 1.0), StreamPriority::kNormal);
  EXPECT_TRUE(queue.push(a));
  EXPECT_TRUE(queue.push(b));
  EXPECT_FALSE(queue.push(c));  // full; entry c untouched
  (void)queue.pop_batch(1);
  EXPECT_TRUE(queue.push(c));  // a pop frees a slot
}

TEST(AdmissionQueueTest, CloseStopsAdmissionsButDrains) {
  AdmissionQueue queue(4);
  auto a = entry_for(one_vm("a", 1.0), StreamPriority::kNormal);
  ASSERT_TRUE(queue.push(a));
  queue.close();
  auto late = entry_for(one_vm("late", 1.0), StreamPriority::kHigh);
  EXPECT_FALSE(queue.push(late));
  // Queued work remains poppable after close; the following empty pop is
  // the consumer-exit signal (and must not block).
  EXPECT_EQ(queue.pop_batch(4).size(), 1u);
  EXPECT_TRUE(queue.pop_batch(4).empty());
}

TEST(StreamTest, SubmitCommitsLikeDeploy) {
  const auto datacenter = small_dc(2, 2);
  const SearchConfig config = stream_config();
  OstroScheduler scheduler(datacenter, config);
  PlacementService service(scheduler);
  StreamingService stream(service, config, /*start_dispatchers=*/false);

  OstroScheduler reference(datacenter, config);
  const Placement expected = reference.deploy(tiny_app(), Algorithm::kEg);
  ASSERT_TRUE(expected.committed);

  auto future = stream.submit(request_for(tiny_app()));
  EXPECT_EQ(stream.queue_depth(), 1u);
  EXPECT_EQ(stream.dispatch_once(), 1u);
  const StreamResult result = future.get();
  EXPECT_EQ(result.status, StreamStatus::kCommitted);
  EXPECT_TRUE(result.service.placement.committed);
  EXPECT_EQ(result.service.placement.assignment, expected.assignment);
  EXPECT_EQ(result.batch_size, 1u);
  EXPECT_EQ(result.spills, 0u);
  EXPECT_GT(result.service.commit_epoch, 0u);
  EXPECT_TRUE(scheduler.occupancy() == reference.occupancy());
}

// Regression for the dispatcher's catch (...) blocks: a committer throwing
// a NON-std type must resolve the member's promise exactly once with that
// exception, leave the occupancy untouched, keep the dispatcher alive, and
// count one stream.dispatch_errors.
TEST(StreamTest, NonStdCommitterThrowResolvesPromiseOnceAndCounts) {
  struct Boom {};  // deliberately not derived from std::exception
  util::metrics::set_enabled(true);
  util::metrics::Counter& errors =
      util::metrics::counter("stream.dispatch_errors");
  errors.reset();

  const auto datacenter = small_dc(2, 2);
  const SearchConfig config = stream_config();
  OstroScheduler scheduler(datacenter, config);
  PlacementService service(scheduler);
  StreamingService stream(service, config, /*start_dispatchers=*/false);

  StreamRequest request = request_for(tiny_app());
  request.committer = [](const Placement&, std::string&) -> bool {
    throw Boom{};
  };
  auto future = stream.submit(std::move(request));
  EXPECT_EQ(stream.dispatch_once(), 1u);
  EXPECT_THROW(future.get(), Boom);
  EXPECT_EQ(errors.value(), 1u);
  // The throw happened before any commit: nothing leaked into the state,
  // and the dispatcher is healthy enough to serve the next request.
  EXPECT_TRUE(scheduler.occupancy() == dc::Occupancy(datacenter));
  auto next = stream.submit(request_for(tiny_app()));
  EXPECT_EQ(stream.dispatch_once(), 1u);
  EXPECT_EQ(next.get().status, StreamStatus::kCommitted);
  EXPECT_EQ(errors.value(), 1u);  // healthy dispatches add nothing
}

TEST(StreamTest, FullQueueRejectsImmediately) {
  const auto datacenter = small_dc(1, 2);
  const SearchConfig config = stream_config(/*batch=*/8, /*capacity=*/1);
  OstroScheduler scheduler(datacenter, config);
  PlacementService service(scheduler);
  StreamingService stream(service, config, /*start_dispatchers=*/false);

  auto queued = stream.submit(request_for(tiny_app()));
  auto overflow = stream.submit(request_for(tiny_app()));
  // The overflow future is ready without any dispatching.
  ASSERT_EQ(overflow.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const StreamResult rejected = overflow.get();
  EXPECT_EQ(rejected.status, StreamStatus::kRejected);
  EXPECT_NE(rejected.service.placement.failure_reason.find("queue full"),
            std::string::npos);
  stream.shutdown();  // drains the queued request
  EXPECT_EQ(queued.get().status, StreamStatus::kCommitted);
}

TEST(StreamTest, SubmitAfterCloseRejects) {
  const auto datacenter = small_dc(1, 2);
  const SearchConfig config = stream_config();
  OstroScheduler scheduler(datacenter, config);
  PlacementService service(scheduler);
  StreamingService stream(service, config, /*start_dispatchers=*/false);
  stream.close();
  const StreamResult result = stream.submit(request_for(tiny_app())).get();
  EXPECT_EQ(result.status, StreamStatus::kRejected);
  EXPECT_NE(result.service.placement.failure_reason.find("closed"),
            std::string::npos);
}

TEST(StreamTest, DeadlineExpiryWhileQueued) {
  const auto datacenter = small_dc(1, 2);
  const SearchConfig config = stream_config();
  OstroScheduler scheduler(datacenter, config);
  PlacementService service(scheduler);
  StreamingService stream(service, config, /*start_dispatchers=*/false);

  // 1 ms admission deadline; nothing dispatches for 20 ms, so the request
  // is picked up strictly after expiry and must complete kExpired without
  // planning or committing anything.
  auto future = stream.submit(request_for(tiny_app(), StreamPriority::kNormal,
                                          /*deadline_seconds=*/0.001));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(stream.dispatch_once(), 1u);
  const StreamResult result = future.get();
  EXPECT_EQ(result.status, StreamStatus::kExpired);
  EXPECT_GE(result.wait_seconds, 0.001);
  EXPECT_FALSE(result.service.placement.feasible);
  EXPECT_TRUE(scheduler.occupancy() == dc::Occupancy(datacenter));
}

TEST(StreamTest, NoDeadlineNeverExpires) {
  const auto datacenter = small_dc(1, 2);
  const SearchConfig config = stream_config();
  OstroScheduler scheduler(datacenter, config);
  PlacementService service(scheduler);
  StreamingService stream(service, config, /*start_dispatchers=*/false);
  auto future = stream.submit(request_for(tiny_app()));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(stream.dispatch_once(), 1u);
  EXPECT_EQ(future.get().status, StreamStatus::kCommitted);
}

TEST(StreamTest, HigherPriorityOvertakesQueuedWork) {
  const auto datacenter = small_dc(2, 2);
  // batch = 1: each dispatch_once picks exactly the front of the queue.
  const SearchConfig config = stream_config(/*batch=*/1);
  OstroScheduler scheduler(datacenter, config);
  PlacementService service(scheduler);
  StreamingService stream(service, config, /*start_dispatchers=*/false);

  auto low = stream.submit(
      request_for(one_vm("low", 1.0), StreamPriority::kLow));
  auto high = stream.submit(
      request_for(one_vm("high", 1.0), StreamPriority::kHigh));

  EXPECT_EQ(stream.dispatch_once(), 1u);
  ASSERT_EQ(high.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(low.wait_for(std::chrono::seconds(0)),
            std::future_status::timeout);
  EXPECT_EQ(stream.dispatch_once(), 1u);

  const StreamResult high_result = high.get();
  const StreamResult low_result = low.get();
  EXPECT_EQ(high_result.status, StreamStatus::kCommitted);
  EXPECT_EQ(low_result.status, StreamStatus::kCommitted);
  // The overtake is visible in the total commit order.
  EXPECT_LT(high_result.service.commit_epoch,
            low_result.service.commit_epoch);
}

TEST(StreamTest, BatchConflictSpillsIntoLadderAndReplans) {
  // Two 8-core hosts; two 6-core requests in ONE batch.  Both plan onto
  // the same (cheapest) host against the shared empty snapshot; the batch
  // gate commits the first and re-verifies the second against the mutated
  // occupancy — an intra-batch conflict that spills into the replan
  // ladder, which lands it on the remaining host.
  const auto datacenter = small_dc(1, 2);
  const SearchConfig config = stream_config(/*batch=*/2);
  OstroScheduler scheduler(datacenter, config);
  PlacementService service(scheduler);
  StreamingService stream(service, config, /*start_dispatchers=*/false);

  auto a = stream.submit(request_for(one_vm("a", 6.0)));
  auto b = stream.submit(request_for(one_vm("b", 6.0)));
  EXPECT_EQ(stream.dispatch_once(), 2u);

  const StreamResult first = a.get();
  const StreamResult second = b.get();
  EXPECT_EQ(first.status, StreamStatus::kCommitted);
  EXPECT_EQ(second.status, StreamStatus::kCommitted);
  EXPECT_EQ(first.batch_size, 2u);
  EXPECT_EQ(second.batch_size, 2u);
  EXPECT_EQ(first.spills, 0u);
  EXPECT_EQ(second.spills, 1u);
  EXPECT_GE(second.service.conflicts, 1u);
  // Both 6-core VMs are placed, necessarily on distinct hosts.
  EXPECT_EQ(scheduler.occupancy().active_host_count(), 2u);
}

TEST(StreamTest, SpilledMemberCanEndInfeasible) {
  // Only "big" fits 6 cores: the spilled member's replan finds nothing.
  const auto datacenter = contended_dc();
  const SearchConfig config = stream_config(/*batch=*/2);
  OstroScheduler scheduler(datacenter, config);
  PlacementService service(scheduler);
  StreamingService stream(service, config, /*start_dispatchers=*/false);

  auto a = stream.submit(request_for(one_vm("a", 6.0)));
  auto b = stream.submit(request_for(one_vm("b", 6.0)));
  EXPECT_EQ(stream.dispatch_once(), 2u);

  const StreamResult first = a.get();
  const StreamResult second = b.get();
  EXPECT_EQ(first.status, StreamStatus::kCommitted);
  EXPECT_EQ(second.status, StreamStatus::kFailed);
  EXPECT_EQ(second.spills, 1u);
  EXPECT_FALSE(second.service.placement.committed);
  EXPECT_EQ(scheduler.occupancy().active_host_count(), 1u);
}

TEST(StreamTest, ShutdownDrainsQueuedRequests) {
  const auto datacenter = small_dc(2, 2);
  const SearchConfig config = stream_config(/*batch=*/2);
  OstroScheduler scheduler(datacenter, config);
  PlacementService service(scheduler);

  std::vector<std::future<StreamResult>> futures;
  {
    StreamingService stream(service, config, /*start_dispatchers=*/false);
    for (int i = 0; i < 5; ++i) {
      futures.push_back(stream.submit(request_for(one_vm("v", 1.0))));
    }
    EXPECT_EQ(stream.queue_depth(), 5u);
    // Destruction shuts down: close + inline drain in manual mode.
  }
  for (auto& future : futures) {
    EXPECT_EQ(future.get().status, StreamStatus::kCommitted);
  }
}

TEST(StreamTest, DispatcherThreadsDrainAutonomously) {
  const auto datacenter = small_dc(2, 2);
  SearchConfig config = stream_config(/*batch=*/4);
  config.stream_dispatch_threads = 2;
  OstroScheduler scheduler(datacenter, config);
  PlacementService service(scheduler);
  StreamingService stream(service, config);  // real dispatcher pool

  std::vector<std::future<StreamResult>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(stream.submit(request_for(one_vm("v", 1.0))));
  }
  stream.close();
  stream.shutdown();
  int committed = 0;
  for (auto& future : futures) {
    if (future.get().status == StreamStatus::kCommitted) ++committed;
  }
  EXPECT_EQ(committed, 12);
}

// The acceptance-criteria stress: multi-dispatcher snapshot-shared batching
// must preserve the serial-replay bit-identity invariant of
// service_test.cpp — replaying exactly the committed placements in
// commit_epoch order reproduces the live occupancy bit for bit.
TEST(StreamStressTest, BatchedCommitsMatchSerialReplay) {
  constexpr int kSubmitters = 4;
  constexpr int kStacksPerSubmitter = 50;
  constexpr int kTotal = kSubmitters * kStacksPerSubmitter;

  const auto datacenter = small_dc(4, 4);  // 16 hosts, 128 cores
  SearchConfig config = stream_config(/*batch=*/4, /*capacity=*/kTotal);
  config.stream_dispatch_threads = 3;
  OstroScheduler scheduler(datacenter, config);
  PlacementService service(scheduler);
  StreamingService stream(service, config);

  std::vector<topo::AppTopology> stacks;
  util::Rng rng(20260807);
  stacks.reserve(kTotal);
  for (int i = 0; i < kTotal; ++i) {
    topo::TopologyBuilder builder;
    const double cores = static_cast<double>(rng.uniform_int(1, 2));
    builder.add_vm("w", {cores, cores, 0.0});
    builder.add_vm("d", {1.0, 1.0, 0.0});
    builder.connect("w", "d", static_cast<double>(rng.uniform_int(10, 50)));
    stacks.push_back(builder.build());
  }

  std::vector<std::future<StreamResult>> futures(kTotal);
  util::run_workers(kSubmitters, [&](std::size_t t) {
    for (int j = 0; j < kStacksPerSubmitter; ++j) {
      const std::size_t i = t * kStacksPerSubmitter +
                            static_cast<std::size_t>(j);
      const auto priority =
          static_cast<StreamPriority>(i % kStreamPriorityCount);
      futures[i] = stream.submit(request_for(stacks[i], priority));
    }
  });
  stream.close();
  stream.shutdown();

  std::vector<StreamResult> results;
  results.reserve(futures.size());
  for (auto& future : futures) results.push_back(future.get());

  struct Committed {
    std::uint64_t epoch;
    std::size_t index;
  };
  std::vector<Committed> committed;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const StreamResult& result = results[i];
    if (result.status == StreamStatus::kCommitted) {
      EXPECT_TRUE(result.service.placement.committed);
      EXPECT_GT(result.service.commit_epoch, 0u);
      EXPECT_GE(result.batch_size, 1u);
      committed.push_back({result.service.commit_epoch, i});
    } else {
      EXPECT_EQ(result.status, StreamStatus::kFailed);
      EXPECT_FALSE(result.service.placement.failure_reason.empty());
    }
  }
  ASSERT_FALSE(committed.empty());

  // commit_epoch totally orders the committed set across every batch.
  std::sort(committed.begin(), committed.end(),
            [](const Committed& a, const Committed& b) {
              return a.epoch < b.epoch;
            });
  for (std::size_t i = 1; i < committed.size(); ++i) {
    EXPECT_LT(committed[i - 1].epoch, committed[i].epoch);
  }

  // Serial replay in commit order reproduces the occupancy exactly.
  dc::Occupancy replay(datacenter);
  for (const Committed& c : committed) {
    net::commit_placement(replay, stacks[c.index],
                          results[c.index].service.placement.assignment);
  }
  EXPECT_TRUE(replay == scheduler.occupancy());

  // No double-booked capacity anywhere.
  for (dc::HostId h = 0;
       h < static_cast<dc::HostId>(datacenter.host_count()); ++h) {
    const topo::Resources used = scheduler.occupancy().used(h);
    const topo::Resources& cap = datacenter.host(h).capacity;
    EXPECT_LE(used.vcpus, cap.vcpus);
    EXPECT_LE(used.mem_gb, cap.mem_gb);
    EXPECT_LE(used.disk_gb, cap.disk_gb);
  }
}

// Pooled-core variant of the stress test: multi-dispatcher batched commits
// where every plan runs BA* on SearchCore::kPooled, so the dispatcher
// threads' search arenas are created, warmed, and recycled concurrently.
// The serial replay invariant plus TSan coverage proves per-thread arenas
// share no state across the streaming pipeline.
TEST(StreamStressTest, PooledSearchCoreBatchedCommitsMatchSerialReplay) {
  constexpr int kSubmitters = 4;
  constexpr int kStacksPerSubmitter = 25;
  constexpr int kTotal = kSubmitters * kStacksPerSubmitter;

  const auto datacenter = small_dc(4, 4);
  SearchConfig config = stream_config(/*batch=*/4, /*capacity=*/kTotal);
  config.stream_dispatch_threads = 3;
  config.search_core = SearchCore::kPooled;
  OstroScheduler scheduler(datacenter, config);
  PlacementService service(scheduler);
  StreamingService stream(service, config);

  std::vector<topo::AppTopology> stacks;
  util::Rng rng(20260809);
  stacks.reserve(kTotal);
  for (int i = 0; i < kTotal; ++i) {
    topo::TopologyBuilder builder;
    const double cores = static_cast<double>(rng.uniform_int(1, 2));
    builder.add_vm("w", {cores, cores, 0.0});
    builder.add_vm("d", {1.0, 1.0, 0.0});
    builder.connect("w", "d", static_cast<double>(rng.uniform_int(10, 50)));
    stacks.push_back(builder.build());
  }

  std::vector<std::future<StreamResult>> futures(kTotal);
  util::run_workers(kSubmitters, [&](std::size_t t) {
    for (int j = 0; j < kStacksPerSubmitter; ++j) {
      const std::size_t i =
          t * kStacksPerSubmitter + static_cast<std::size_t>(j);
      StreamRequest request = request_for(stacks[i]);
      request.algorithm = Algorithm::kBaStar;  // exercise the pooled search
      futures[i] = stream.submit(std::move(request));
    }
  });
  stream.close();
  stream.shutdown();

  std::vector<StreamResult> results;
  results.reserve(futures.size());
  for (auto& future : futures) results.push_back(future.get());

  struct Committed {
    std::uint64_t epoch;
    std::size_t index;
  };
  std::vector<Committed> committed;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const StreamResult& result = results[i];
    if (result.status == StreamStatus::kCommitted) {
      committed.push_back({result.service.commit_epoch, i});
    }
  }
  ASSERT_FALSE(committed.empty());
  std::sort(committed.begin(), committed.end(),
            [](const Committed& a, const Committed& b) {
              return a.epoch < b.epoch;
            });

  dc::Occupancy replay(datacenter);
  for (const Committed& c : committed) {
    net::commit_placement(replay, stacks[c.index],
                          results[c.index].service.placement.assignment);
  }
  EXPECT_TRUE(replay == scheduler.occupancy());
}

}  // namespace
}  // namespace ostro::core
