// End-to-end checks of the observability layer: planning through
// OstroScheduler must leave the expected counters in the global metrics
// registry and populate the per-run SearchStats carried by the Placement.
#include <gtest/gtest.h>

#include "core/scheduler.h"
#include "helpers.h"
#include "util/metrics.h"

namespace ostro::core {
namespace {

using ostro::testing::small_dc;
using ostro::testing::tiny_app;

class MetricsFlowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::metrics::set_enabled(true);
    util::metrics::Registry::global().reset();
  }
};

TEST_F(MetricsFlowTest, GreedyPlanPopulatesRegistryAndStats) {
  const dc::DataCenter dc = small_dc(2, 2);
  const OstroScheduler scheduler(dc);
  const Placement placement = scheduler.plan(tiny_app(), Algorithm::kEg);
  ASSERT_TRUE(placement.feasible);

  const auto& registry = util::metrics::Registry::global();
  EXPECT_GT(registry.counter_value("greedy.candidates_evaluated"), 0u);
  EXPECT_GT(registry.counter_value("greedy.runs"), 0u);
  EXPECT_GT(registry.counter_value("greedy.nodes_placed"), 0u);
  EXPECT_GT(registry.counter_value("estimator.candidate_estimates"), 0u);
  EXPECT_EQ(registry.counter_value("scheduler.plans"), 1u);
  EXPECT_EQ(registry.summary_snapshot("scheduler.plan_seconds").count, 1u);

  // The per-run view travels with the placement.
  EXPECT_GT(placement.stats.candidates_evaluated, 0u);
  EXPECT_GT(placement.stats.heuristic_calls, 0u);
  EXPECT_GT(placement.stats.runtime_seconds, 0.0);
}

TEST_F(MetricsFlowTest, AStarPlanCountsNodeExpansions) {
  const dc::DataCenter dc = small_dc(2, 2);
  const OstroScheduler scheduler(dc);
  const Placement placement = scheduler.plan(tiny_app(), Algorithm::kBaStar);
  ASSERT_TRUE(placement.feasible);

  const auto& registry = util::metrics::Registry::global();
  EXPECT_GT(registry.counter_value("astar.nodes_expanded"), 0u);
  EXPECT_GT(registry.counter_value("astar.paths_generated"), 0u);
  EXPECT_EQ(registry.counter_value("astar.runs"), 1u);
  // Exactly one run after reset: the registry total and the per-run stats
  // must agree.
  EXPECT_EQ(registry.counter_value("astar.nodes_expanded"),
            placement.stats.paths_expanded);
  EXPECT_GT(placement.stats.open_queue_peak, 0u);
  EXPECT_GE(registry.summary_snapshot("astar.open_queue_size").count, 1u);
}

TEST_F(MetricsFlowTest, DbaPlanCountsNodeExpansions) {
  const dc::DataCenter dc = small_dc(2, 2);
  const OstroScheduler scheduler(dc);
  SearchConfig config;
  config.deadline_seconds = 5.0;
  const Placement placement =
      scheduler.plan(tiny_app(), Algorithm::kDbaStar, config);
  ASSERT_TRUE(placement.feasible);
  EXPECT_GT(util::metrics::Registry::global().counter_value(
                "astar.nodes_expanded"),
            0u);
}

TEST_F(MetricsFlowTest, DeployCountsCommitAndReservationChurn) {
  const dc::DataCenter dc = small_dc(2, 2);
  OstroScheduler scheduler(dc);
  const Placement placement = scheduler.deploy(tiny_app(), Algorithm::kEg);
  ASSERT_TRUE(placement.feasible);

  const auto& registry = util::metrics::Registry::global();
  EXPECT_EQ(registry.counter_value("scheduler.commits"), 1u);
  EXPECT_EQ(registry.counter_value("reservation.commits"), 1u);
  EXPECT_GT(registry.counter_value("reservation.applies"), 0u);
  EXPECT_EQ(registry.counter_value("reservation.rollbacks"), 0u);
}

TEST_F(MetricsFlowTest, DisabledCollectionLeavesRegistryUntouched) {
  const dc::DataCenter dc = small_dc(2, 2);
  const OstroScheduler scheduler(dc);
  util::metrics::set_enabled(false);
  const Placement placement = scheduler.plan(tiny_app(), Algorithm::kEg);
  util::metrics::set_enabled(true);
  ASSERT_TRUE(placement.feasible);
  const auto& registry = util::metrics::Registry::global();
  EXPECT_EQ(registry.counter_value("greedy.candidates_evaluated"), 0u);
  EXPECT_EQ(registry.counter_value("scheduler.plans"), 0u);
  // Per-run SearchStats are part of the result, not observability: they are
  // still populated.
  EXPECT_GT(placement.stats.candidates_evaluated, 0u);
}

}  // namespace
}  // namespace ostro::core
