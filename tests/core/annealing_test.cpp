#include "core/annealing.h"

#include <gtest/gtest.h>

#include "core/scheduler.h"
#include "core/verify.h"
#include "helpers.h"
#include "util/timer.h"

namespace ostro::core {
namespace {

using ostro::testing::random_app;
using ostro::testing::small_dc;
using ostro::testing::tiny_app;

AnnealingConfig quick() {
  AnnealingConfig config;
  config.deadline_seconds = 0.2;
  return config;
}

TEST(AnnealingTest, FindsValidPlacement) {
  const auto datacenter = small_dc(2, 3);
  const dc::Occupancy occupancy(datacenter);
  const auto app = tiny_app();
  const Placement placement =
      simulated_annealing(occupancy, app, SearchConfig{}, quick());
  ASSERT_TRUE(placement.feasible) << placement.failure_reason;
  EXPECT_TRUE(verify_placement(occupancy, app, placement.assignment).empty());
  EXPECT_GT(placement.stats.paths_generated, 0u);  // moves attempted
}

TEST(AnnealingTest, NeverWorseThanItsEgSeed) {
  util::Rng rng(777);
  for (int trial = 0; trial < 6; ++trial) {
    const auto datacenter = small_dc(2, 3);
    const dc::Occupancy occupancy(datacenter);
    const auto app = random_app(rng, 6);
    const Placement eg = place_topology(occupancy, app, Algorithm::kEg,
                                        SearchConfig{}, nullptr, nullptr);
    if (!eg.feasible) continue;
    const Placement sa =
        simulated_annealing(occupancy, app, SearchConfig{}, quick());
    ASSERT_TRUE(sa.feasible);
    EXPECT_LE(sa.utility, eg.utility + 1e-9) << trial;
  }
}

TEST(AnnealingTest, RespectsDeadline) {
  const auto datacenter = small_dc(3, 3);
  const dc::Occupancy occupancy(datacenter);
  util::Rng rng(5);
  const auto app = random_app(rng, 8, 0.5);
  AnnealingConfig config = quick();
  config.deadline_seconds = 0.3;
  const util::WallTimer timer;
  (void)simulated_annealing(occupancy, app, SearchConfig{}, config);
  EXPECT_LT(timer.elapsed_seconds(), 1.0);
}

TEST(AnnealingTest, InfeasibleInstanceReported) {
  const auto datacenter = small_dc(1, 1);
  dc::Occupancy occupancy(datacenter);
  occupancy.add_host_load(0, {7.0, 0.0, 0.0});
  const Placement placement =
      simulated_annealing(occupancy, tiny_app(), SearchConfig{}, quick());
  EXPECT_FALSE(placement.feasible);
  EXPECT_FALSE(placement.failure_reason.empty());
}

TEST(AnnealingTest, HonorsConstraintsUnderZones) {
  topo::TopologyBuilder builder;
  builder.add_vm("a", {1.0, 1.0, 0.0});
  builder.add_vm("b", {1.0, 1.0, 0.0});
  builder.add_vm("c", {1.0, 1.0, 0.0});
  builder.connect("a", "b", 100.0);
  builder.add_zone("z", topo::DiversityLevel::kRack,
                   std::vector<std::string>{"a", "b"});
  const auto app = builder.build();
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const Placement placement =
      simulated_annealing(occupancy, app, SearchConfig{}, quick());
  ASSERT_TRUE(placement.feasible);
  EXPECT_TRUE(verify_placement(occupancy, app, placement.assignment).empty());
}

TEST(AnnealingTest, ConfigValidation) {
  AnnealingConfig config;
  config.deadline_seconds = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = AnnealingConfig{};
  config.initial_temperature = -1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = AnnealingConfig{};
  config.cooling = 1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = AnnealingConfig{};
  config.moves_per_temperature = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  EXPECT_NO_THROW(AnnealingConfig{}.validate());
}

TEST(AnnealingTest, DeterministicPerSeedModuloClock) {
  // The accept/reject stream is seeded; with a generous deadline relative
  // to the instance size both runs converge to the same best utility.
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const auto app = tiny_app();
  AnnealingConfig config = quick();
  config.seed = 99;
  const Placement a =
      simulated_annealing(occupancy, app, SearchConfig{}, config);
  const Placement b =
      simulated_annealing(occupancy, app, SearchConfig{}, config);
  ASSERT_TRUE(a.feasible);
  ASSERT_TRUE(b.feasible);
  EXPECT_NEAR(a.utility, b.utility, 1e-9);
}

}  // namespace
}  // namespace ostro::core
