// Search-machinery observability: truncation reporting, host-equivalence
// dedup effectiveness, and stats consistency.
#include <gtest/gtest.h>

#include "core/astar.h"
#include "core/scheduler.h"
#include "helpers.h"

namespace ostro::core {
namespace {

using ostro::testing::random_app;
using ostro::testing::small_dc;
using ostro::testing::tiny_app;

TEST(AStarStatsTest, TruncationFlagSetWhenQueueCapped) {
  util::Rng rng(808);
  const auto datacenter = small_dc(3, 3);
  const dc::Occupancy occupancy(datacenter);
  const auto app = random_app(rng, 8, 0.5);
  SearchConfig config;
  config.max_open_paths = 16;  // absurdly small
  const Placement placement = place_topology(
      occupancy, app, Algorithm::kBaStar, config, nullptr, nullptr);
  if (placement.feasible) {
    EXPECT_TRUE(placement.stats.truncated);
  }
}

TEST(AStarStatsTest, NoTruncationOnSmallInstances) {
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const Placement placement = place_topology(
      occupancy, tiny_app(), Algorithm::kBaStar, SearchConfig{}, nullptr,
      nullptr);
  ASSERT_TRUE(placement.feasible);
  EXPECT_FALSE(placement.stats.truncated);
}

TEST(AStarStatsTest, EquivalentHostsCollapseBranching) {
  // 12 identical idle hosts in one rack: children per expansion should be
  // tiny (one representative per distinct configuration), so generated
  // paths stay near-linear in |V| instead of |V| x |H|.
  dc::DataCenterBuilder builder;
  const auto site = builder.add_site("s", 64000.0);
  const auto pod = builder.add_pod(site, "p", 64000.0);
  const auto rack = builder.add_rack(pod, "r", 32000.0);
  for (int i = 0; i < 12; ++i) {
    builder.add_host(rack, "h" + std::to_string(i), {8.0, 16.0, 500.0},
                     2000.0);
  }
  const auto datacenter = builder.build();
  const dc::Occupancy occupancy(datacenter);

  topo::TopologyBuilder app_builder;
  for (int i = 0; i < 4; ++i) {
    app_builder.add_vm("vm" + std::to_string(i), {2.0, 2.0, 0.0});
  }
  app_builder.connect("vm0", "vm1", 100.0);
  app_builder.connect("vm2", "vm3", 100.0);
  const auto app = app_builder.build();

  SearchConfig config;
  config.symmetry_reduction = false;  // isolate the host-side reduction
  const Placement placement = place_topology(
      occupancy, app, Algorithm::kBaStar, config, nullptr, nullptr);
  ASSERT_TRUE(placement.feasible);
  // Without dedup the root alone would emit 12 children; with it, at most
  // a couple of distinct configurations exist at every level.
  EXPECT_LT(placement.stats.paths_generated, 60u);
}

TEST(AStarStatsTest, StatsAccumulateSensibly) {
  util::Rng rng(99);
  const auto datacenter = small_dc(2, 3);
  const dc::Occupancy occupancy(datacenter);
  const auto app = random_app(rng, 5);
  const Placement placement = place_topology(
      occupancy, app, Algorithm::kBaStar, SearchConfig{}, nullptr, nullptr);
  if (!placement.feasible) return;
  EXPECT_GE(placement.stats.paths_generated, placement.stats.paths_expanded);
  EXPECT_GE(placement.stats.eg_reruns, 1u);
  EXPECT_GT(placement.stats.runtime_seconds, 0.0);
  EXPECT_LE(placement.stats.max_depth, app.node_count());
}

TEST(AStarStatsTest, DbaRandomPruningCountsUnderPressure) {
  util::Rng rng(5);
  const auto datacenter = small_dc(3, 3);
  const dc::Occupancy occupancy(datacenter);
  const auto app = random_app(rng, 8, 0.5);
  SearchConfig config;
  config.deadline_seconds = 0.0;       // no clock dependence
  config.initial_prune_range = 0.4;    // fixed pruning pressure
  const Placement placement = place_topology(
      occupancy, app, Algorithm::kDbaStar, config, nullptr, nullptr);
  ASSERT_TRUE(placement.feasible);
  EXPECT_GT(placement.stats.paths_pruned_random, 0u);
}

}  // namespace
}  // namespace ostro::core
