// Parameterized validity sweep on the wide-area data center: every
// algorithm, with randomized geo-replicated workloads combining
// datacenter-level zones, rack affinities and latency budgets.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/scheduler.h"
#include "core/verify.h"
#include "sim/clusters.h"
#include "util/string_util.h"

namespace ostro::core {
namespace {

topo::AppTopology random_geo_app(util::Rng& rng, int slices) {
  topo::TopologyBuilder builder;
  std::vector<std::string> replicas;
  for (int s = 0; s < slices; ++s) {
    const std::string fe = util::format("fe%d", s);
    const std::string db = util::format("db%d", s);
    builder.add_vm(fe, {2.0 + static_cast<double>(rng.next_below(3)), 4.0, 0.0});
    builder.add_vm(db, {4.0, 8.0, 0.0});
    // Site-local pipe; half the time with an intra-site latency budget.
    builder.connect(fe, db, 100.0 + 50.0 * static_cast<double>(rng.next_below(3)),
                    rng.chance(0.5) ? 200.0 : 0.0);
    if (rng.chance(0.5)) {
      builder.add_affinity(util::format("slice%d", s),
                           topo::DiversityLevel::kRack,
                           std::vector<std::string>{fe, db});
    }
    replicas.push_back(db);
  }
  for (int s = 0; s + 1 < slices; ++s) {
    builder.connect(replicas[static_cast<std::size_t>(s)],
                    replicas[static_cast<std::size_t>(s + 1)], 50.0);
  }
  if (slices >= 2) {
    builder.add_zone("geo", topo::DiversityLevel::kDatacenter, replicas);
  }
  return builder.build();
}

class WanSweep
    : public ::testing::TestWithParam<std::tuple<Algorithm, std::uint64_t>> {
};

TEST_P(WanSweep, GeoWorkloadsPlaceValidly) {
  const auto [algorithm, seed] = GetParam();
  util::Rng rng(seed);
  const auto datacenter = sim::make_wan(3, 1, 2, 4);
  const dc::Occupancy occupancy(datacenter);
  const auto app = random_geo_app(rng, 3);
  SearchConfig config;
  config.deadline_seconds = 0.3;
  config.seed = seed;
  const Placement placement = place_topology(occupancy, app, algorithm,
                                             config, nullptr, nullptr);
  if (!placement.feasible) {
    EXPECT_FALSE(placement.failure_reason.empty());
    return;
  }
  if (placement.bandwidth_overcommitted) {
    EXPECT_EQ(algorithm, Algorithm::kEgC);
    return;
  }
  const auto violations =
      verify_placement(occupancy, app, placement.assignment);
  EXPECT_TRUE(violations.empty())
      << to_string(algorithm) << " seed=" << seed << ": "
      << (violations.empty() ? "" : violations.front());
  // The geo zone held: three distinct sites.
  std::set<std::uint32_t> sites;
  for (int s = 0; s < 3; ++s) {
    sites.insert(
        datacenter.host(placement.assignment[app.node_id(
                            util::format("db%d", s))])
            .datacenter);
  }
  EXPECT_EQ(sites.size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(
    GeoWorkloads, WanSweep,
    ::testing::Combine(::testing::Values(Algorithm::kEg, Algorithm::kEgC,
                                         Algorithm::kEgBw, Algorithm::kBaStar,
                                         Algorithm::kDbaStar),
                       ::testing::Values(7, 21, 63)),
    [](const ::testing::TestParamInfo<std::tuple<Algorithm, std::uint64_t>>&
           param_info) {
      std::string name = to_string(std::get<0>(param_info.param));
      for (auto& c : name) {
        if (c == '*') c = 'S';
      }
      return name + "_s" + std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace ostro::core
