// Differential tests for the feasibility-index candidate generation: the
// indexed descent must return exactly the candidate list of the linear
// can_place scan — same hosts, same ascending order, exact vector equality —
// over randomized topologies and occupancy states, after failed/rolled-back
// PlacementTransactions, and for diversity-zone-constrained nodes at every
// hierarchy level.  The full searches must be end-to-end identical with the
// index on and off.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/astar.h"
#include "core/candidates.h"
#include "core/greedy.h"
#include "net/reservation.h"
#include "helpers.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace ostro::core {
namespace {

using ostro::testing::random_app;
using ostro::testing::small_dc;
using ostro::testing::tiny_app;
using ostro::testing::two_site_dc;

/// 2 sites x 2 pods x 2 racks x 2 hosts: every hierarchy level is real.
dc::DataCenter deep_dc() {
  dc::DataCenterBuilder builder;
  for (int s = 0; s < 2; ++s) {
    const auto site = builder.add_site("site" + std::to_string(s), 64000.0);
    for (int p = 0; p < 2; ++p) {
      const auto pod = builder.add_pod(
          site, "s" + std::to_string(s) + "p" + std::to_string(p), 32000.0);
      for (int r = 0; r < 2; ++r) {
        const std::string prefix = "s" + std::to_string(s) + "p" +
                                   std::to_string(p) + "r" + std::to_string(r);
        const auto rack = builder.add_rack(pod, prefix, 16000.0);
        for (int h = 0; h < 2; ++h) {
          builder.add_host(rack, prefix + "h" + std::to_string(h),
                           {8.0, 16.0, 500.0}, 4000.0);
        }
      }
    }
  }
  return builder.build();
}

/// Random background tenants: host loads and uplink reservations, leaving
/// some hosts exhausted and some untouched so the index has real prunes.
void randomize_occupancy(dc::Occupancy& occupancy, util::Rng& rng) {
  const dc::DataCenter& dc = occupancy.datacenter();
  for (dc::HostId h = 0; h < dc.host_count(); ++h) {
    if (rng.chance(0.3)) continue;
    const topo::Resources load = {
        static_cast<double>(rng.uniform_int(0, 8)),
        static_cast<double>(rng.uniform_int(0, 16)),
        static_cast<double>(rng.uniform_int(0, 10)) * 50.0};
    if (load.fits_within(occupancy.available(h))) {
      occupancy.add_host_load(h, load);
    }
    if (rng.chance(0.5)) {
      const double free = occupancy.link_available_mbps(dc.host_link(h));
      const double mbps = free * rng.uniform(0.0, 1.0);
      if (mbps > 0.0) occupancy.reserve_link(dc.host_link(h), mbps);
    }
  }
}

/// Exact list equality for every unplaced node, with and without the
/// bandwidth constraint (the EG / EG_C views).
void expect_candidates_identical(const PartialPlacement& state,
                                 CandidateBuffer& buf, int trial) {
  for (topo::NodeId node = 0; node < state.topology().node_count(); ++node) {
    if (state.is_placed(node)) continue;
    for (const bool check_bandwidth : {true, false}) {
      const std::vector<dc::HostId> reference =
          get_candidates(state, node, check_bandwidth);
      get_candidates_indexed(state, node, buf, check_bandwidth);
      EXPECT_EQ(buf.hosts, reference)
          << "trial " << trial << " node " << node << " check_bandwidth "
          << check_bandwidth;
    }
  }
}

TEST(CandidatesIndexTest, RandomizedStatesMatchLinearScanExactly) {
  util::Rng rng(31337);
  CandidateBuffer buf;
  for (int trial = 0; trial < 40; ++trial) {
    const auto datacenter = trial % 3 == 0   ? small_dc(3, 3)
                            : trial % 3 == 1 ? two_site_dc(2, 3)
                                             : deep_dc();
    dc::Occupancy occupancy(datacenter);
    randomize_occupancy(occupancy, rng);
    const auto app = random_app(rng, 7);
    SearchConfig config;
    const Objective objective(app, datacenter, config);
    PartialPlacement state(app, occupancy, objective);
    // Random placed prefix so pipes to placed neighbors and partially
    // placed zones constrain the remaining nodes.
    const auto placed = static_cast<std::size_t>(rng.uniform_int(0, 5));
    for (std::size_t i = 0; i < placed; ++i) {
      const auto node = static_cast<topo::NodeId>(i);
      const auto host = static_cast<dc::HostId>(rng.uniform_int(
          0, static_cast<int>(datacenter.host_count()) - 1));
      if (!state.is_placed(node) && state.can_place(node, host)) {
        state.place(node, host);
      }
    }
    expect_candidates_identical(state, buf, trial);
  }
}

TEST(CandidatesIndexTest, ZoneConstrainedNodesMatchAtEveryLevel) {
  const auto datacenter = deep_dc();
  CandidateBuffer buf;
  const struct {
    topo::DiversityLevel level;
    std::size_t expected_candidates;  // 16 hosts minus the excluded unit
  } cases[] = {
      {topo::DiversityLevel::kHost, 15},
      {topo::DiversityLevel::kRack, 14},
      {topo::DiversityLevel::kPod, 12},
      {topo::DiversityLevel::kDatacenter, 8},
  };
  for (const auto& c : cases) {
    topo::TopologyBuilder app_builder;
    app_builder.add_vm("a", {1.0, 1.0, 0.0});
    app_builder.add_vm("b", {1.0, 1.0, 0.0});
    app_builder.add_vm("c", {1.0, 1.0, 0.0});
    app_builder.add_zone("dz", c.level, {"a", "b", "c"});
    const auto app = app_builder.build();
    const dc::Occupancy occupancy(datacenter);
    SearchConfig config;
    const Objective objective(app, datacenter, config);
    PartialPlacement state(app, occupancy, objective);
    state.place(0, 0);  // member "a" on host 0 masks its unit for b and c
    const std::vector<dc::HostId> reference = get_candidates(state, 1);
    get_candidates_indexed(state, 1, buf);
    EXPECT_EQ(buf.hosts, reference)
        << "level " << topo::to_string(c.level);
    EXPECT_EQ(buf.hosts.size(), c.expected_candidates)
        << "level " << topo::to_string(c.level);
    for (const dc::HostId host : buf.hosts) {
      EXPECT_TRUE(datacenter.separated_at(host, 0, c.level))
          << "level " << topo::to_string(c.level) << " host " << host;
    }
  }
}

TEST(CandidatesIndexTest, RolledBackTransactionLeavesCandidatesPristine) {
  util::Rng rng(90210);
  for (int trial = 0; trial < 10; ++trial) {
    const auto datacenter = small_dc(2, 2);
    dc::Occupancy occupancy(datacenter);
    randomize_occupancy(occupancy, rng);
    const dc::Occupancy pristine = occupancy;
    const auto app = tiny_app();

    // Overload host 0 until a staged apply fails, then roll back: the base
    // occupancy — index included — must be byte-identical to before, and
    // both candidate paths must agree with a never-touched control state.
    net::Assignment overload(app.node_count(), 0);
    net::PlacementTransaction txn(occupancy,
                                  net::PlacementTransaction::Mode::kStaged);
    bool threw = false;
    for (int round = 0; round < 50 && !threw; ++round) {
      try {
        txn.apply(app, overload);
      } catch (const std::invalid_argument&) {
        threw = true;
      }
    }
    ASSERT_TRUE(threw) << "trial " << trial;
    txn.rollback();
    ASSERT_TRUE(occupancy == pristine) << "trial " << trial;
    ASSERT_TRUE(occupancy.feasibility().selfcheck()) << "trial " << trial;

    SearchConfig config;
    const Objective objective(app, datacenter, config);
    PartialPlacement state(app, occupancy, objective);
    PartialPlacement control(app, pristine, objective);
    CandidateBuffer buf;
    for (topo::NodeId node = 0; node < app.node_count(); ++node) {
      const std::vector<dc::HostId> reference = get_candidates(control, node);
      get_candidates_indexed(state, node, buf);
      EXPECT_EQ(buf.hosts, reference) << "trial " << trial << " node " << node;
    }
    expect_candidates_identical(state, buf, trial);
  }
}

TEST(CandidatesIndexTest, GreedyVariantsIdenticalWithAndWithoutIndex) {
  util::Rng rng(555);
  for (int trial = 0; trial < 15; ++trial) {
    const auto datacenter = trial % 2 == 0 ? small_dc(3, 3) : deep_dc();
    dc::Occupancy occupancy(datacenter);
    randomize_occupancy(occupancy, rng);
    const auto app = random_app(rng, 6);
    SearchConfig config;
    const Objective objective(app, datacenter, config);
    for (const Algorithm variant :
         {Algorithm::kEg, Algorithm::kEgC, Algorithm::kEgBw}) {
      const auto order = variant == Algorithm::kEgBw
                             ? bandwidth_sort_order(app)
                             : eg_sort_order(app);
      const GreedyOutcome indexed = run_greedy(
          variant, {app, occupancy, objective}, order, nullptr,
          /*use_estimate_context=*/true, /*use_candidate_index=*/true);
      const GreedyOutcome linear = run_greedy(
          variant, {app, occupancy, objective}, order, nullptr,
          /*use_estimate_context=*/true, /*use_candidate_index=*/false);
      ASSERT_EQ(indexed.feasible, linear.feasible)
          << "trial " << trial << " variant " << to_string(variant);
      if (!linear.feasible) continue;
      EXPECT_EQ(indexed.state.assignment(), linear.state.assignment())
          << "trial " << trial << " variant " << to_string(variant);
      EXPECT_EQ(indexed.state.utility_committed(),
                linear.state.utility_committed())
          << "trial " << trial << " variant " << to_string(variant);
    }
  }
}

TEST(CandidatesIndexTest, AStarIdenticalWithAndWithoutIndex) {
  util::Rng rng(556);
  for (int trial = 0; trial < 10; ++trial) {
    const auto datacenter = trial % 2 == 0 ? small_dc(2, 2) : two_site_dc(1, 2);
    dc::Occupancy occupancy(datacenter);
    randomize_occupancy(occupancy, rng);
    const auto app = random_app(rng, 5);
    SearchConfig indexed_config;
    indexed_config.use_candidate_index = true;
    SearchConfig linear_config = indexed_config;
    linear_config.use_candidate_index = false;
    const Objective objective(app, datacenter, indexed_config);

    const AStarOutcome indexed = run_astar({app, occupancy, objective},
                                           indexed_config, false, nullptr);
    const AStarOutcome linear = run_astar({app, occupancy, objective},
                                          linear_config, false, nullptr);
    ASSERT_EQ(indexed.feasible, linear.feasible) << "trial " << trial;
    if (!linear.feasible) continue;
    EXPECT_EQ(indexed.state.assignment(), linear.state.assignment())
        << "trial " << trial;
    EXPECT_EQ(indexed.state.utility_committed(),
              linear.state.utility_committed())
        << "trial " << trial;
    EXPECT_EQ(indexed.state.ubw(), linear.state.ubw()) << "trial " << trial;
  }
}

TEST(CandidatesIndexTest, PruneCountersAdvanceOnPackedFleet) {
  util::metrics::set_enabled(true);
  const auto datacenter = small_dc(4, 3);
  dc::Occupancy occupancy(datacenter);
  // Exhaust every rack but the last: those subtrees must be pruned at the
  // rack level without any per-host can_place call.
  for (dc::HostId h = 0; h + 3 < datacenter.host_count(); ++h) {
    occupancy.add_host_load(h, occupancy.available(h));
  }
  const auto app = tiny_app();
  SearchConfig config;
  const Objective objective(app, datacenter, config);
  PartialPlacement state(app, occupancy, objective);

  auto& subtrees = util::metrics::counter("candidates.subtrees_pruned");
  auto& skipped = util::metrics::counter("candidates.hosts_skipped");
  const std::uint64_t subtrees_before = subtrees.value();
  const std::uint64_t skipped_before = skipped.value();
  CandidateBuffer buf;
  get_candidates_indexed(state, 0, buf);
  EXPECT_EQ(buf.hosts, get_candidates(state, 0));
  EXPECT_EQ(buf.hosts.size(), 3u);  // only the untouched rack survives
  EXPECT_EQ(subtrees.value() - subtrees_before, 3u);  // three full racks
  EXPECT_EQ(skipped.value() - skipped_before, 9u);    // their 9 hosts
}

}  // namespace
}  // namespace ostro::core
