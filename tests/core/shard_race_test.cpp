// ShardRouter raced across shards (run under TSan in CI).
//
// Eight worker threads hammer one 4-shard router over a 2-site WAN cluster
// with a mix of single-shard stacks, cross-shard (datacenter-diversity)
// stacks, and releases.  The router records every commit and release in its
// global-epoch commit log; because each epoch is drawn while the
// participating shard writer lock(s) are held, a SERIAL replay of the log
// in global-epoch order must reproduce every shard's live occupancy bit
// for bit — host loads, link accumulators, active flags — plus the shared-
// uplink ledger.  All requirements and bandwidths are integral so releases
// cancel reservations exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/shard_router.h"
#include "datacenter/occupancy.h"
#include "sim/clusters.h"
#include "topology/app_topology.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ostro::core {
namespace {

std::shared_ptr<const topo::AppTopology> small_stack(util::Rng& rng) {
  topo::TopologyBuilder builder;
  const int vms = static_cast<int>(rng.uniform_int(1, 3));
  for (int i = 0; i < vms; ++i) {
    const double cpu = static_cast<double>(rng.uniform_int(1, 3));
    builder.add_vm("vm" + std::to_string(i), {cpu, cpu, 0.0});
  }
  for (int i = 1; i < vms; ++i) {
    builder.connect(static_cast<topo::NodeId>(i - 1),
                    static_cast<topo::NodeId>(i),
                    static_cast<double>(rng.uniform_int(1, 4)) * 10.0);
  }
  return std::make_shared<const topo::AppTopology>(builder.build());
}

/// Datacenter-diversity pair: must straddle sites, hence shards.
std::shared_ptr<const topo::AppTopology> spread_pair(util::Rng& rng) {
  topo::TopologyBuilder builder;
  const double cpu = static_cast<double>(rng.uniform_int(1, 2));
  builder.add_vm("a", {cpu, cpu, 0.0});
  builder.add_vm("b", {cpu, cpu, 0.0});
  builder.connect("a", "b", static_cast<double>(rng.uniform_int(1, 4)) * 5.0);
  builder.add_zone("spread", topo::DiversityLevel::kDatacenter,
                   std::vector<std::string>{"a", "b"});
  return std::make_shared<const topo::AppTopology>(builder.build());
}

TEST(ShardRaceTest, SerialReplayOfCommitLogReproducesEveryShard) {
  const dc::DataCenter wan = sim::make_wan(2, 2, 1, 4);  // 16 hosts
  ShardConfig config;
  config.shards = 4;  // both sites split: the ledger is exercised too
  config.router_commit_log = true;
  ShardRouter router(wan, config);

  constexpr std::size_t kThreads = 8;
  constexpr int kOpsPerThread = 40;
  std::mutex live_mutex;
  std::vector<StackId> live;

  util::run_workers(kThreads, [&](std::size_t tid) {
    util::Rng rng(9000 + static_cast<std::uint64_t>(tid));
    for (int op = 0; op < kOpsPerThread; ++op) {
      const int roll = static_cast<int>(rng.uniform_int(0, 9));
      if (roll < 3) {
        // Release a random live stack (possibly racing another releaser;
        // release_stack's registry claim makes exactly one winner).
        StackId victim = 0;
        {
          const std::lock_guard<std::mutex> lock(live_mutex);
          if (!live.empty()) {
            const std::size_t i = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<int>(live.size()) - 1));
            victim = live[i];
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
          }
        }
        if (victim != 0) router.release_stack(victim);
        continue;
      }
      const auto app = roll < 8 ? small_stack(rng) : spread_pair(rng);
      const ShardRouter::Result result = router.place(app, Algorithm::kEg);
      if (result.service.placement.committed) {
        const std::lock_guard<std::mutex> lock(live_mutex);
        live.push_back(result.stack_id);
      }
    }
  });

  // Serial replay in global-epoch order onto fresh per-shard occupancies
  // (over the SAME shard DataCenters, so operator== is meaningful).
  CrossShardLedger replay_ledger(wan);
  const std::vector<dc::Occupancy> replayed =
      replay_commit_log(router.layout(), router.commit_log(), &replay_ledger);
  ASSERT_EQ(replayed.size(), router.shard_count());
  for (std::uint32_t k = 0; k < router.shard_count(); ++k) {
    EXPECT_EQ(replayed[k], router.service(k).snapshot()) << "shard " << k;
  }
  for (const dc::LinkId link : router.layout().shared_links()) {
    EXPECT_EQ(replay_ledger.used_mbps(link), router.ledger().used_mbps(link))
        << "shared link " << link;
  }
  // And the stitch is internally consistent with the replayed parts.
  dc::Occupancy stitched(wan);
  for (std::uint32_t k = 0; k < router.shard_count(); ++k) {
    router.layout().overlay(stitched, k, replayed[k]);
  }
  replay_ledger.overlay(stitched);
  EXPECT_EQ(stitched, router.stitched_snapshot());
}

}  // namespace
}  // namespace ostro::core
