#include "core/greedy.h"

#include <gtest/gtest.h>

#include "core/verify.h"
#include "helpers.h"

namespace ostro::core {
namespace {

using ostro::testing::random_app;
using ostro::testing::small_dc;
using ostro::testing::tiny_app;

GreedyOutcome place_with(Algorithm algorithm, const topo::AppTopology& app,
                         const dc::Occupancy& occupancy,
                         const Objective& objective) {
  PartialPlacement state(app, occupancy, objective);
  const auto order = (algorithm == Algorithm::kEgBw)
                         ? bandwidth_sort_order(app)
                         : eg_sort_order(app);
  return run_greedy(algorithm, std::move(state), order, nullptr);
}

TEST(SortOrderTest, EgOrderFavorsHeavyNodes) {
  topo::TopologyBuilder builder;
  builder.add_vm("light", {1.0, 1.0, 0.0});
  builder.add_vm("heavy", {8.0, 16.0, 0.0});
  builder.add_vm("mid", {2.0, 2.0, 0.0});
  builder.connect("light", "mid", 10.0);
  const auto app = builder.build();
  const auto order = eg_sort_order(app);
  EXPECT_EQ(order.front(), app.node_id("heavy"));
}

TEST(SortOrderTest, BandwidthOrderFavorsConnectedNodes) {
  topo::TopologyBuilder builder;
  builder.add_vm("quiet", {4.0, 4.0, 0.0});
  builder.add_vm("chatty", {1.0, 1.0, 0.0});
  builder.add_vm("peer", {1.0, 1.0, 0.0});
  builder.connect("chatty", "peer", 500.0);
  const auto app = builder.build();
  const auto order = bandwidth_sort_order(app);
  EXPECT_TRUE(order.front() == app.node_id("chatty") ||
              order.front() == app.node_id("peer"));
  EXPECT_EQ(order.back(), app.node_id("quiet"));
}

TEST(SortOrderTest, OrdersArePermutations) {
  util::Rng rng(9);
  const auto app = random_app(rng, 6);
  for (const auto& order : {eg_sort_order(app), bandwidth_sort_order(app)}) {
    ASSERT_EQ(order.size(), app.node_count());
    std::vector<bool> seen(app.node_count(), false);
    for (const auto v : order) {
      ASSERT_LT(v, app.node_count());
      ASSERT_FALSE(seen[v]);
      seen[v] = true;
    }
  }
}

TEST(GreedyTest, AllVariantsProduceValidPlacements) {
  const auto datacenter = small_dc(2, 3);
  const dc::Occupancy occupancy(datacenter);
  const auto app = tiny_app();
  const Objective objective(app, datacenter, SearchConfig{});
  for (const auto algorithm :
       {Algorithm::kEg, Algorithm::kEgC, Algorithm::kEgBw}) {
    const GreedyOutcome outcome =
        place_with(algorithm, app, occupancy, objective);
    ASSERT_TRUE(outcome.feasible) << to_string(algorithm);
    if (!outcome.state.has_link_overcommit()) {
      EXPECT_TRUE(
          verify_placement(occupancy, app, outcome.state.assignment()).empty())
          << to_string(algorithm);
    }
  }
}

TEST(GreedyTest, EgCoLocatesTinyApp) {
  // With everything fitting one host and theta_bw dominating, EG should
  // end with zero reserved bandwidth.
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const auto app = tiny_app();
  SearchConfig config;
  config.theta_bw = 0.99;
  config.theta_c = 0.01;
  const Objective objective(app, datacenter, config);
  const GreedyOutcome outcome =
      place_with(Algorithm::kEg, app, occupancy, objective);
  ASSERT_TRUE(outcome.feasible);
  EXPECT_DOUBLE_EQ(outcome.state.ubw(), 0.0);
  EXPECT_EQ(outcome.state.new_active_hosts(), 1);
}

TEST(GreedyTest, EgPrefersActiveHostsOnTies) {
  const auto datacenter = small_dc(2, 2);
  dc::Occupancy occupancy(datacenter);
  occupancy.add_host_load(2, {1.0, 1.0, 0.0});  // host 2 already active
  const auto app = tiny_app();
  const Objective objective(app, datacenter, SearchConfig{});
  const GreedyOutcome outcome =
      place_with(Algorithm::kEg, app, occupancy, objective);
  ASSERT_TRUE(outcome.feasible);
  EXPECT_EQ(outcome.state.new_active_hosts(), 0);
  for (const auto host : outcome.state.assignment()) EXPECT_EQ(host, 2u);
}

TEST(GreedyTest, EgcBinPacksIgnoringPipes) {
  // EG_C picks the host with the least remaining compute: pre-loading host 1
  // makes it the best fit even when that splits a pipe.
  const auto datacenter = small_dc(2, 2);
  dc::Occupancy occupancy(datacenter);
  occupancy.add_host_load(1, {4.0, 4.0, 0.0});  // 4 cores left
  const auto app = tiny_app();                  // db needs exactly 4
  const Objective objective(app, datacenter, SearchConfig{});
  const GreedyOutcome outcome =
      place_with(Algorithm::kEgC, app, occupancy, objective);
  ASSERT_TRUE(outcome.feasible);
  // db (first in EG order: heaviest) lands on host 1 (tightest fit).
  EXPECT_EQ(outcome.state.host_of(app.node_id("db")), 1u);
}

TEST(GreedyTest, EgbwMinimizesBandwidthOverHosts) {
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const auto app = tiny_app();
  const Objective objective(app, datacenter, SearchConfig{});
  const GreedyOutcome outcome =
      place_with(Algorithm::kEgBw, app, occupancy, objective);
  ASSERT_TRUE(outcome.feasible);
  EXPECT_DOUBLE_EQ(outcome.state.ubw(), 0.0);  // all co-located
}

TEST(GreedyTest, InfeasibleReportsNodeName) {
  const auto datacenter = small_dc(1, 1);
  dc::Occupancy occupancy(datacenter);
  occupancy.add_host_load(0, {5.0, 0.0, 0.0});  // 3 cores left: db needs 4
  const auto app = tiny_app();
  const Objective objective(app, datacenter, SearchConfig{});
  const GreedyOutcome outcome =
      place_with(Algorithm::kEg, app, occupancy, objective);
  EXPECT_FALSE(outcome.feasible);
  EXPECT_NE(outcome.failure.find("db"), std::string::npos);
}

TEST(GreedyTest, RunGreedyRejectsAStarVariants) {
  const auto datacenter = small_dc();
  const dc::Occupancy occupancy(datacenter);
  const auto app = tiny_app();
  const Objective objective(app, datacenter, SearchConfig{});
  PartialPlacement state(app, occupancy, objective);
  const auto order = eg_sort_order(app);
  EXPECT_THROW(
      (void)run_greedy(Algorithm::kBaStar, std::move(state), order, nullptr),
      std::invalid_argument);
}

TEST(GreedyTest, CompletesFromPartialState) {
  // RunEG semantics: pre-placed nodes are respected and skipped.
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const auto app = tiny_app();
  const Objective objective(app, datacenter, SearchConfig{});
  PartialPlacement state(app, occupancy, objective);
  state.place(0, 3);  // pin web on the last host
  const GreedyOutcome outcome = run_greedy(Algorithm::kEg, std::move(state),
                                           eg_sort_order(app), nullptr);
  ASSERT_TRUE(outcome.feasible);
  EXPECT_EQ(outcome.state.host_of(0), 3u);
  EXPECT_TRUE(
      verify_placement(occupancy, app, outcome.state.assignment()).empty());
}

TEST(GreedyTest, ParallelAndSequentialEgAgree) {
  util::Rng rng(31337);
  util::ThreadPool pool(3);
  for (int trial = 0; trial < 10; ++trial) {
    const auto datacenter = small_dc(2, 3);
    const dc::Occupancy occupancy(datacenter);
    const auto app = random_app(rng, 6);
    const Objective objective(app, datacenter, SearchConfig{});
    const auto order = eg_sort_order(app);
    const GreedyOutcome seq = run_greedy(
        Algorithm::kEg, PartialPlacement(app, occupancy, objective), order,
        nullptr);
    const GreedyOutcome par = run_greedy(
        Algorithm::kEg, PartialPlacement(app, occupancy, objective), order,
        &pool);
    ASSERT_EQ(seq.feasible, par.feasible);
    if (seq.feasible) {
      EXPECT_EQ(seq.state.assignment(), par.state.assignment());
    }
  }
}

TEST(GreedyTest, DeterministicAcrossRuns) {
  util::Rng rng(555);
  const auto datacenter = small_dc(2, 3);
  const dc::Occupancy occupancy(datacenter);
  const auto app = random_app(rng, 7);
  const Objective objective(app, datacenter, SearchConfig{});
  const auto order = eg_sort_order(app);
  const GreedyOutcome a = run_greedy(
      Algorithm::kEg, PartialPlacement(app, occupancy, objective), order,
      nullptr);
  const GreedyOutcome b = run_greedy(
      Algorithm::kEg, PartialPlacement(app, occupancy, objective), order,
      nullptr);
  ASSERT_EQ(a.feasible, b.feasible);
  if (a.feasible) {
    EXPECT_EQ(a.state.assignment(), b.state.assignment());
  }
}

}  // namespace
}  // namespace ostro::core
