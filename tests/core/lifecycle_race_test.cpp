// Defrag racing streamed placements and releases (run under TSan in CI).
//
// Three placer threads, two releaser threads, and one defrag thread hammer
// one PlacementService.  Every thread records what it committed together
// with the commit epoch the service returned.  Because every commit happens
// under the service writer lock and bumps the occupancy version, replaying
// the merged records serially in commit_epoch order (members of one
// migration batch in member order — nothing interleaves inside a batch)
// on a fresh occupancy must reproduce the live occupancy bit for bit:
// host loads, link reservations, active flags, FeasibilityIndex, and
// PruneLabels.  All requirements and bandwidths are integral so releases
// cancel additions exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/defrag.h"
#include "core/scheduler.h"
#include "core/service.h"
#include "core/stack_registry.h"
#include "datacenter/occupancy.h"
#include "helpers.h"
#include "net/reservation.h"
#include "topology/app_topology.h"
#include "util/rng.h"

namespace ostro::core {
namespace {

using ostro::testing::small_dc;

struct Record {
  enum Kind : std::uint8_t { kPlace, kRelease, kMigrate };
  std::uint64_t epoch = 0;
  int member_index = 0;  ///< commit order inside one migration batch
  Kind kind = kPlace;
  std::shared_ptr<const topo::AppTopology> topology;
  net::Assignment from;
  net::Assignment to;
};

std::shared_ptr<const topo::AppTopology> single_vm() {
  topo::TopologyBuilder builder;
  builder.add_vm("vm", {1.0, 1.0, 0.0});
  return std::make_shared<const topo::AppTopology>(builder.build());
}

std::shared_ptr<const topo::AppTopology> piped_pair() {
  topo::TopologyBuilder builder;
  builder.add_vm("a", {2.0, 2.0, 0.0});
  builder.add_vm("b", {2.0, 2.0, 0.0});
  builder.connect("a", "b", 10.0);
  return std::make_shared<const topo::AppTopology>(builder.build());
}

std::shared_ptr<const topo::AppTopology> zoned_pair() {
  topo::TopologyBuilder builder;
  builder.add_vm("a", {1.0, 1.0, 0.0});
  builder.add_vm("b", {1.0, 1.0, 0.0});
  builder.connect("a", "b", 10.0);
  builder.add_zone("dz", topo::DiversityLevel::kHost, {0, 1});
  return std::make_shared<const topo::AppTopology>(builder.build());
}

TEST(LifecycleRaceTest, DefragRacesStreamedPlacementsAndReplaysSerially) {
  const auto datacenter = small_dc(2, 3);
  SearchConfig search;
  search.threads = 1;  // concurrency comes from the test threads below
  OstroScheduler scheduler(datacenter, search);
  PlacementService service(scheduler);
  StackRegistry registry;

  const std::vector<std::shared_ptr<const topo::AppTopology>> apps = {
      single_vm(), piped_pair(), zoned_pair()};

  constexpr int kPlacers = 3;
  constexpr int kReleasers = 2;
  constexpr int kPlacesPerThread = 60;
  constexpr int kReleasesPerThread = 90;
  constexpr int kDefragRounds = 50;
  std::vector<std::vector<Record>> records(kPlacers + kReleasers + 1);
  std::atomic<StackId> next_id{1};

  std::vector<std::thread> threads;
  for (int t = 0; t < kPlacers; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng(100 + static_cast<std::uint64_t>(t));
      std::vector<Record>& out = records[static_cast<std::size_t>(t)];
      for (int i = 0; i < kPlacesPerThread; ++i) {
        const auto& topology = apps[static_cast<std::size_t>(
            rng.next_below(apps.size()))];
        const ServiceResult result =
            service.place(*topology, Algorithm::kEg);
        if (!result.placement.committed) continue;
        const StackId id = next_id.fetch_add(1, std::memory_order_relaxed);
        registry.add(id, topology, result.placement.assignment);
        out.push_back({result.commit_epoch, 0, Record::kPlace, topology,
                       {}, result.placement.assignment});
      }
    });
  }
  for (int t = 0; t < kReleasers; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng(200 + static_cast<std::uint64_t>(t));
      std::vector<Record>& out =
          records[static_cast<std::size_t>(kPlacers + t)];
      for (int i = 0; i < kReleasesPerThread; ++i) {
        const std::vector<DeployedStack> live = registry.snapshot();
        if (live.empty()) {
          std::this_thread::yield();
          continue;
        }
        const StackId id =
            live[static_cast<std::size_t>(rng.next_below(live.size()))].id;
        std::uint64_t epoch = 0;
        DeployedStack released;
        if (service.release_stack(registry, id, true, &epoch, &released)) {
          out.push_back({epoch, 0, Record::kRelease, released.topology,
                         released.assignment, {}});
        }
      }
    });
  }
  threads.emplace_back([&] {
    DefragPlanner planner(service, registry, DefragConfig{});
    std::vector<Record>& out = records.back();
    for (int i = 0; i < kDefragRounds; ++i) {
      PlacementService::MigrationBatch batch =
          planner.plan_batch(service.snapshot());
      if (batch.members.empty()) continue;
      std::uint64_t epoch = 0;
      if (service.try_commit_migration(batch, registry, &epoch) == 0) {
        continue;
      }
      int index = 0;
      for (const PlacementService::MigrationMember& member : batch.members) {
        if (member.outcome != PlacementService::CommitOutcome::kCommitted) {
          continue;
        }
        out.push_back({epoch, index++, Record::kMigrate, member.topology,
                       member.from, member.to});
      }
    }
  });
  for (std::thread& thread : threads) thread.join();

  std::vector<Record> all;
  for (std::vector<Record>& r : records) {
    all.insert(all.end(), r.begin(), r.end());
  }
  ASSERT_FALSE(all.empty());
  std::sort(all.begin(), all.end(), [](const Record& a, const Record& b) {
    return a.epoch != b.epoch ? a.epoch < b.epoch
                              : a.member_index < b.member_index;
  });

  // Serial replay: a migration member is release-at-from + commit-at-to.
  dc::Occupancy replay(datacenter);
  for (const Record& record : all) {
    switch (record.kind) {
      case Record::kPlace:
        net::commit_placement(replay, *record.topology, record.to);
        break;
      case Record::kRelease:
        net::release_placement(replay, *record.topology, record.from);
        break;
      case Record::kMigrate:
        net::release_placement(replay, *record.topology, record.from);
        net::commit_placement(replay, *record.topology, record.to);
        break;
    }
  }
  EXPECT_TRUE(replay == scheduler.occupancy());
}

}  // namespace
}  // namespace ostro::core
