// Diversity zones and placement across the deeper hierarchy levels (rack /
// pod / datacenter) on multi-pod and multi-site data centers — the
// "10 VMs across 10 different racks" class of requirements from the
// paper's introduction.
#include <gtest/gtest.h>

#include <set>

#include "core/scheduler.h"
#include "core/verify.h"
#include "helpers.h"

namespace ostro::core {
namespace {

using ostro::testing::two_site_dc;

/// 2 sites x 2 pods x 2 racks x 2 hosts = 16 hosts with a real pod layer.
dc::DataCenter deep_dc() {
  dc::DataCenterBuilder builder;
  for (int s = 0; s < 2; ++s) {
    const auto site =
        builder.add_site("site" + std::to_string(s), 64000.0);
    for (int p = 0; p < 2; ++p) {
      const auto pod = builder.add_pod(
          site, "s" + std::to_string(s) + "p" + std::to_string(p), 32000.0);
      for (int r = 0; r < 2; ++r) {
        const auto rack = builder.add_rack(
            pod,
            "s" + std::to_string(s) + "p" + std::to_string(p) + "r" +
                std::to_string(r),
            16000.0);
        for (int h = 0; h < 2; ++h) {
          builder.add_host(rack,
                           "s" + std::to_string(s) + "p" + std::to_string(p) +
                               "r" + std::to_string(r) + "h" +
                               std::to_string(h),
                           {8.0, 16.0, 500.0}, 4000.0);
        }
      }
    }
  }
  return builder.build();
}

topo::AppTopology replicas(int n, topo::DiversityLevel level) {
  topo::TopologyBuilder builder;
  std::vector<std::string> names;
  for (int i = 0; i < n; ++i) {
    const std::string name = "rep" + std::to_string(i);
    builder.add_vm(name, {1.0, 1.0, 0.0});
    names.push_back(name);
  }
  builder.add_zone("replicas", level, names);
  return builder.build();
}

TEST(MultiLevelZoneTest, RackZoneSpreadsAcrossRacks) {
  const auto datacenter = deep_dc();
  const dc::Occupancy occupancy(datacenter);
  const auto app = replicas(4, topo::DiversityLevel::kRack);
  const Placement placement = place_topology(
      occupancy, app, Algorithm::kEg, SearchConfig{}, nullptr, nullptr);
  ASSERT_TRUE(placement.feasible);
  std::set<std::uint32_t> racks;
  for (const auto host : placement.assignment) {
    racks.insert(datacenter.host(host).rack);
  }
  EXPECT_EQ(racks.size(), 4u);
}

TEST(MultiLevelZoneTest, PodZoneSpreadsAcrossPods) {
  const auto datacenter = deep_dc();
  const dc::Occupancy occupancy(datacenter);
  const auto app = replicas(4, topo::DiversityLevel::kPod);
  const Placement placement = place_topology(
      occupancy, app, Algorithm::kEg, SearchConfig{}, nullptr, nullptr);
  ASSERT_TRUE(placement.feasible);
  std::set<std::uint32_t> pods;
  for (const auto host : placement.assignment) {
    pods.insert(datacenter.host(host).pod);
  }
  EXPECT_EQ(pods.size(), 4u);
}

TEST(MultiLevelZoneTest, DatacenterZoneSpreadsAcrossSites) {
  const auto datacenter = deep_dc();
  const dc::Occupancy occupancy(datacenter);
  const auto app = replicas(2, topo::DiversityLevel::kDatacenter);
  const Placement placement = place_topology(
      occupancy, app, Algorithm::kBaStar, SearchConfig{}, nullptr, nullptr);
  ASSERT_TRUE(placement.feasible);
  EXPECT_NE(datacenter.host(placement.assignment[0]).datacenter,
            datacenter.host(placement.assignment[1]).datacenter);
}

TEST(MultiLevelZoneTest, TooManyPodReplicasIsInfeasible) {
  const auto datacenter = deep_dc();  // only 4 pods exist
  const dc::Occupancy occupancy(datacenter);
  const auto app = replicas(5, topo::DiversityLevel::kPod);
  const Placement placement = place_topology(
      occupancy, app, Algorithm::kBaStar, SearchConfig{}, nullptr, nullptr);
  EXPECT_FALSE(placement.feasible);
}

TEST(MultiLevelZoneTest, TooManySiteReplicasIsInfeasible) {
  const auto datacenter = deep_dc();  // 2 sites
  const dc::Occupancy occupancy(datacenter);
  const auto app = replicas(3, topo::DiversityLevel::kDatacenter);
  const Placement placement = place_topology(
      occupancy, app, Algorithm::kEg, SearchConfig{}, nullptr, nullptr);
  EXPECT_FALSE(placement.feasible);
}

TEST(MultiLevelZoneTest, CrossSitePipeCostsEightLinks) {
  const auto datacenter = deep_dc();
  const dc::Occupancy occupancy(datacenter);
  topo::TopologyBuilder builder;
  builder.add_vm("a", {1.0, 1.0, 0.0});
  builder.add_vm("b", {1.0, 1.0, 0.0});
  builder.connect("a", "b", 100.0);
  builder.add_zone("far", topo::DiversityLevel::kDatacenter,
                   std::vector<std::string>{"a", "b"});
  const auto app = builder.build();
  const Placement placement = place_topology(
      occupancy, app, Algorithm::kBaStar, SearchConfig{}, nullptr, nullptr);
  ASSERT_TRUE(placement.feasible);
  EXPECT_DOUBLE_EQ(placement.reserved_bandwidth_mbps, 800.0);
}

TEST(MultiLevelZoneTest, MixedLevelsOnOneNode) {
  // One node in a rack zone with x AND a datacenter zone with y: both must
  // hold simultaneously.
  const auto datacenter = deep_dc();
  const dc::Occupancy occupancy(datacenter);
  topo::TopologyBuilder builder;
  builder.add_vm("x", {1.0, 1.0, 0.0});
  builder.add_vm("hub", {1.0, 1.0, 0.0});
  builder.add_vm("y", {1.0, 1.0, 0.0});
  builder.add_zone("zr", topo::DiversityLevel::kRack,
                   std::vector<std::string>{"hub", "x"});
  builder.add_zone("zd", topo::DiversityLevel::kDatacenter,
                   std::vector<std::string>{"hub", "y"});
  const auto app = builder.build();
  const Placement placement = place_topology(
      occupancy, app, Algorithm::kBaStar, SearchConfig{}, nullptr, nullptr);
  ASSERT_TRUE(placement.feasible);
  const auto& h = placement.assignment;
  const auto hub = app.node_id("hub");
  const auto x = app.node_id("x");
  const auto y = app.node_id("y");
  EXPECT_NE(datacenter.host(h[hub]).rack, datacenter.host(h[x]).rack);
  EXPECT_NE(datacenter.host(h[hub]).datacenter,
            datacenter.host(h[y]).datacenter);
  EXPECT_TRUE(verify_placement(occupancy, app, placement.assignment).empty());
}

TEST(MultiLevelZoneTest, VerifierChecksAllLevels) {
  const auto datacenter = deep_dc();
  const dc::Occupancy occupancy(datacenter);
  for (const auto level :
       {topo::DiversityLevel::kRack, topo::DiversityLevel::kPod,
        topo::DiversityLevel::kDatacenter}) {
    const auto app = replicas(2, level);
    // Hosts 0 and 1 share a rack (thus pod and site).
    const auto violations = verify_placement(occupancy, app, {0, 1});
    EXPECT_FALSE(violations.empty()) << topo::to_string(level);
  }
}

TEST(MultiLevelZoneTest, TwoSiteHelperHasDistinctSites) {
  const auto datacenter = two_site_dc();
  EXPECT_EQ(datacenter.sites().size(), 2u);
  EXPECT_EQ(datacenter.max_scope(), dc::Scope::kCrossSite);
}

}  // namespace
}  // namespace ostro::core
