#include "core/objective.h"

#include <gtest/gtest.h>

#include "helpers.h"

namespace ostro::core {
namespace {

using ostro::testing::small_dc;
using ostro::testing::tiny_app;

TEST(ObjectiveTest, NormalizesThetas) {
  const auto dc = small_dc();
  const auto app = tiny_app();
  SearchConfig config;
  config.theta_bw = 3.0;
  config.theta_c = 1.0;
  const Objective objective(app, dc, config);
  EXPECT_DOUBLE_EQ(objective.theta_bw(), 0.75);
  EXPECT_DOUBLE_EQ(objective.theta_c(), 0.25);
}

TEST(ObjectiveTest, WorstCaseNormalizers) {
  const auto dc = small_dc(2, 2);  // max scope kSamePod -> 4 hops
  const auto app = tiny_app();     // total bw 300
  const Objective objective(app, dc, SearchConfig{});
  EXPECT_DOUBLE_EQ(objective.ubw_worst(), 300.0 * 4);
  EXPECT_DOUBLE_EQ(objective.uc_worst(), 3.0);
}

TEST(ObjectiveTest, UtilityInUnitRange) {
  const auto dc = small_dc(2, 2);
  const auto app = tiny_app();
  const Objective objective(app, dc, SearchConfig{});
  EXPECT_DOUBLE_EQ(objective.utility(0.0, 0.0), 0.0);
  const double worst = objective.utility(objective.ubw_worst(),
                                         objective.uc_worst());
  EXPECT_NEAR(worst, 1.0, 1e-12);
  const double mid = objective.utility(600.0, 1.0);
  EXPECT_GT(mid, 0.0);
  EXPECT_LT(mid, 1.0);
}

TEST(ObjectiveTest, UtilityMonotoneInBothTerms) {
  const auto dc = small_dc(2, 2);
  const auto app = tiny_app();
  const Objective objective(app, dc, SearchConfig{});
  EXPECT_LT(objective.utility(100.0, 1.0), objective.utility(200.0, 1.0));
  EXPECT_LT(objective.utility(100.0, 1.0), objective.utility(100.0, 2.0));
}

TEST(ObjectiveTest, EdgeCostByScope) {
  EXPECT_DOUBLE_EQ(Objective::edge_cost(100.0, dc::Scope::kSameHost), 0.0);
  EXPECT_DOUBLE_EQ(Objective::edge_cost(100.0, dc::Scope::kSameRack), 200.0);
  EXPECT_DOUBLE_EQ(Objective::edge_cost(100.0, dc::Scope::kSamePod), 400.0);
  EXPECT_DOUBLE_EQ(Objective::edge_cost(100.0, dc::Scope::kSameSite), 600.0);
  EXPECT_DOUBLE_EQ(Objective::edge_cost(100.0, dc::Scope::kCrossSite), 800.0);
}

TEST(ObjectiveTest, EdgelessTopologyStillDefined) {
  topo::TopologyBuilder builder;
  builder.add_vm("only", {1.0, 1.0, 0.0});
  const auto app = builder.build();
  const auto dc = small_dc();
  const Objective objective(app, dc, SearchConfig{});
  EXPECT_DOUBLE_EQ(objective.utility(0.0, 0.0), 0.0);
  EXPECT_GT(objective.ubw_worst(), 0.0);
}

TEST(ObjectiveTest, PureBandwidthWeights) {
  const auto dc = small_dc(2, 2);
  const auto app = tiny_app();
  SearchConfig config;
  config.theta_bw = 1.0;
  config.theta_c = 0.0;
  const Objective objective(app, dc, config);
  EXPECT_DOUBLE_EQ(objective.utility(0.0, 5.0), 0.0);  // hosts free
}

TEST(SearchConfigTest, ValidationRejectsBadValues) {
  SearchConfig config;
  config.theta_bw = -0.1;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = SearchConfig{};
  config.theta_bw = 0.0;
  config.theta_c = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = SearchConfig{};
  config.initial_prune_range = -1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = SearchConfig{};
  config.alpha_factor = -0.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  EXPECT_NO_THROW(SearchConfig{}.validate());
}

TEST(AlgorithmTest, ParseAndPrint) {
  EXPECT_EQ(parse_algorithm("eg"), Algorithm::kEg);
  EXPECT_EQ(parse_algorithm("EGC"), Algorithm::kEgC);
  EXPECT_EQ(parse_algorithm("egbw"), Algorithm::kEgBw);
  EXPECT_EQ(parse_algorithm("BA*"), Algorithm::kBaStar);
  EXPECT_EQ(parse_algorithm("dba"), Algorithm::kDbaStar);
  EXPECT_THROW((void)parse_algorithm("nope"), std::invalid_argument);
  EXPECT_STREQ(to_string(Algorithm::kEg), "EG");
  EXPECT_STREQ(to_string(Algorithm::kDbaStar), "DBA*");
}

}  // namespace
}  // namespace ostro::core
