// Allocation-count regression tests for the pooled search core.  This file
// overrides the global allocation functions (which is why it lives in its
// own test binary) and asserts the memory contract of SearchCore::kPooled:
//
//  1. the search-core primitives — arena acquire, branch_from + place, heap
//     push/pop, closed-set insert — perform EXACTLY zero heap allocations
//     once the arena is warm;
//  2. a warm pooled plan's total allocation count is deterministic (bit-equal
//     across identical runs) and far below the reference core's, whose
//     remaining allocations come from the fixed per-plan setup the cores
//     share (expansion order, symmetry groups, EG completions, outcome
//     construction), not from the per-expansion inner loop.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/astar.h"
#include "core/greedy.h"
#include "core/partial.h"
#include "core/search_core.h"
#include "helpers.h"
#include "util/rng.h"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

[[nodiscard]] std::uint64_t alloc_count() noexcept {
  return g_allocs.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t padded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, padded == 0 ? align : padded)) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace ostro::core {
namespace {

using ostro::testing::random_app;
using ostro::testing::small_dc;

TEST(SearchAllocTest, WarmArenaPrimitivesAllocateNothing) {
  const auto datacenter = small_dc(3, 3);
  const dc::Occupancy occupancy(datacenter);
  util::Rng rng(42);
  const auto app = random_app(rng, 6);
  SearchConfig config;
  const Objective objective(app, datacenter, config);
  const PartialPlacement root(app, occupancy, objective);

  SearchArena arena;
  // One exercise of the plan-shaped workload: grow the state pool, the
  // chain locals, the heap, and the closed set to their working capacities.
  const auto exercise = [&] {
    arena.begin_plan(false, 64);
    PartialPlacement& pooled_root = arena.acquire(root);
    pooled_root.assign_pooled_flat(root);
    const PartialPlacement* parent = &pooled_root;
    std::uint64_t sequence = 0;
    for (topo::NodeId node = 0; node < app.node_count(); ++node) {
      dc::HostId placed_on = dc::kInvalidHost;
      for (dc::HostId host = 0; host < datacenter.host_count(); ++host) {
        if (parent->can_place(node, host)) {
          placed_on = host;
          break;
        }
      }
      if (placed_on == dc::kInvalidHost) break;
      PartialPlacement& child = arena.acquire(*parent);
      child.branch_from(*parent);
      child.place(node, placed_on);
      arena.heap().push(HeapEntry{pack_priority(child.utility_bound()),
                                  sequence++, parent, node, placed_on,
                                  static_cast<std::uint32_t>(node), false});
      arena.closed().insert(0x9e3779b97f4a7c15ULL * (sequence + 1));
      parent = &child;
    }
    while (!arena.heap().empty()) arena.heap().pop();
    arena.end_plan();
  };

  exercise();  // cold: grows every structure
  exercise();  // settle: place() thread-local scratch, table growth edges

  const std::uint64_t before = alloc_count();
  exercise();  // warm: the same workload must not touch the heap at all
  const std::uint64_t after = alloc_count();
  EXPECT_EQ(after - before, 0u)
      << "warm search-core primitives performed heap allocations";
}

TEST(SearchAllocTest, WarmPooledPlanIsDeterministicAndFarBelowReference) {
  const auto datacenter = small_dc(3, 3);
  const dc::Occupancy occupancy(datacenter);
  util::Rng rng(7);
  const auto app = random_app(rng, 7);

  SearchConfig pooled_config;
  pooled_config.search_core = SearchCore::kPooled;
  SearchConfig reference_config = pooled_config;
  reference_config.search_core = SearchCore::kReference;
  const Objective objective(app, datacenter, pooled_config);

  const auto run_once = [&](const SearchConfig& config) {
    const std::uint64_t before = alloc_count();
    const AStarOutcome outcome =
        run_astar(PartialPlacement(app, occupancy, objective), config,
                  /*deadline_bounded=*/false, nullptr);
    const std::uint64_t delta = alloc_count() - before;
    EXPECT_TRUE(outcome.feasible);
    return delta;
  };

  // Warm-up: first pooled plan grows the thread arena; second settles any
  // one-time capacity edges (thread-local scratch, table doublings).
  run_once(pooled_config);
  run_once(pooled_config);

  const std::uint64_t pooled_a = run_once(pooled_config);
  const std::uint64_t pooled_b = run_once(pooled_config);
  const std::uint64_t reference = run_once(reference_config);
  const std::uint64_t pooled_c = run_once(pooled_config);

  // Steady state: identical plans allocate identically — nothing in the
  // pooled path allocates "sometimes" (growth is monotone and finished).
  EXPECT_EQ(pooled_a, pooled_b);
  EXPECT_EQ(pooled_b, pooled_c);

  // What remains is the per-plan setup shared with the reference core
  // (expansion order, symmetry groups, EG completions, the returned
  // Placement); the reference core's per-expansion allocations put it far
  // above that floor.
  EXPECT_LT(pooled_a, reference / 2)
      << "pooled=" << pooled_a << " reference=" << reference;
}

TEST(SearchAllocTest, CounterSeesOrdinaryAllocations) {
  // Sanity check that the override is actually installed in this binary.
  const std::uint64_t before = alloc_count();
  auto* p = new int(5);
  EXPECT_GT(alloc_count(), before);
  delete p;
}

}  // namespace
}  // namespace ostro::core
