// Adaptive search-budget controller (DESIGN.md section 8): decision
// arithmetic, the widening ladder, warm-start feedback, the valve-fire
// retry path through the scheduler, the greedy fallback when the ladder is
// exhausted, and the kFixed bit-identity invariant.
#include <gtest/gtest.h>

#include "core/budget.h"
#include "core/scheduler.h"
#include "helpers.h"
#include "util/metrics.h"

namespace ostro::core {
namespace {

using ostro::testing::small_dc;
using ostro::testing::tiny_app;

/// An instance EG dead-ends on but BA* solves: EG's sort order places the
/// pipe pair x--y first and co-locates both on the big host (zero bandwidth,
/// lowest host id tie-break), which strands the 12-core z; BA* keeps the
/// big host free for z by pairing x,y on h1.  With a tight max_open_paths
/// the valve fires before BA* completes any path, so the search FAILS
/// (rather than merely truncating) — the scenario the retry ladder exists
/// for.
struct ValveFireFixture {
  dc::DataCenter datacenter = [] {
    dc::DataCenterBuilder builder;
    const auto site = builder.add_site("site", 64000.0);
    const auto pod = builder.add_pod(site, "pod", 64000.0);
    const auto rack = builder.add_rack(pod, "rack", 32000.0);
    builder.add_host(rack, "big", {16.0, 32.0, 500.0}, 4000.0);
    builder.add_host(rack, "h1", {8.0, 16.0, 500.0}, 4000.0);
    builder.add_host(rack, "h2", {8.0, 16.0, 500.0}, 4000.0);
    return builder.build();
  }();
  topo::AppTopology app = [] {
    topo::TopologyBuilder builder;
    builder.add_vm("x", {4.0, 4.0, 0.0});
    builder.add_vm("y", {4.0, 4.0, 0.0});
    builder.add_vm("z", {12.0, 2.0, 0.0});
    builder.connect("x", "y", 500.0);
    return builder.build();
  }();
};

TEST(BudgetControllerTest, FixedModeReturnsConfigConstantsVerbatim) {
  BudgetController controller;
  SearchConfig config;  // kFixed default
  config.max_open_paths = 777;
  config.dba_beam_width = 9;
  const BudgetDecision decision = controller.decide(50, 2400, config);
  EXPECT_EQ(decision.max_open_paths, 777u);
  EXPECT_EQ(decision.beam_width, 9u);
  EXPECT_FALSE(decision.warm);
}

TEST(BudgetControllerTest, ColdDecisionScalesWithInstanceSize) {
  BudgetController controller;
  SearchConfig config;
  config.budget_mode = BudgetMode::kAuto;
  // 50 nodes x min(2400 hosts, fan cap 256) = 12800; x headroom 4 = 51200,
  // inside [floor, cap] and below the 2M seed ceiling.
  EXPECT_EQ(controller.static_estimate(50, 2400), 50u * 256u);
  const BudgetDecision decision = controller.decide(50, 2400, config);
  EXPECT_EQ(decision.max_open_paths, 51'200u);
  EXPECT_EQ(decision.beam_width, config.dba_beam_width);
  EXPECT_FALSE(decision.warm);
}

TEST(BudgetControllerTest, ColdDecisionClampsToFloorAndCeiling) {
  BudgetController controller;
  SearchConfig config;
  config.budget_mode = BudgetMode::kAuto;
  // Tiny plan: estimate 1 x 2 x 4 = 8 jumps to the floor.
  EXPECT_EQ(controller.decide(1, 2, config).max_open_paths,
            controller.policy().floor_open_paths);
  // A configured ceiling below the floor is an explicit tight-memory
  // request and is honored verbatim on the cold attempt.
  config.max_open_paths = 3;
  EXPECT_EQ(controller.decide(50, 2400, config).max_open_paths, 3u);
}

TEST(BudgetControllerTest, WidenLadderIsGeometricAndBounded) {
  BudgetController controller;
  SearchConfig config;
  config.budget_mode = BudgetMode::kAuto;
  config.budget_max_retries = 3;

  BudgetDecision decision;
  decision.max_open_paths = 1;
  decision.beam_width = 32;

  // Rung 1 jumps at least to the floor, beam doubles.
  auto rung = controller.widen(decision, config);
  ASSERT_TRUE(rung.has_value());
  EXPECT_EQ(rung->attempt, 1);
  EXPECT_EQ(rung->max_open_paths, controller.policy().floor_open_paths);
  EXPECT_EQ(rung->beam_width, 64u);

  // Rung 2 is geometric: floor x widen factor (8).
  rung = controller.widen(*rung, config);
  ASSERT_TRUE(rung.has_value());
  EXPECT_EQ(rung->max_open_paths,
            controller.policy().floor_open_paths * 8);

  // Ladder is bounded by budget_max_retries...
  rung = controller.widen(*rung, config);
  ASSERT_TRUE(rung.has_value());
  EXPECT_EQ(rung->attempt, 3);
  EXPECT_FALSE(controller.widen(*rung, config).has_value());

  // ...by the cap, and an unlimited budget has nowhere to widen to.
  BudgetDecision capped;
  capped.max_open_paths = controller.policy().cap_open_paths;
  EXPECT_FALSE(controller.widen(capped, config).has_value());
  BudgetDecision unlimited;
  unlimited.max_open_paths = 0;
  EXPECT_FALSE(controller.widen(unlimited, config).has_value());

  // Beam doubling saturates at the policy cap.
  BudgetDecision wide_beam;
  wide_beam.max_open_paths = 4096;
  wide_beam.beam_width = controller.policy().beam_cap;
  rung = controller.widen(wide_beam, config);
  ASSERT_TRUE(rung.has_value());
  EXPECT_EQ(rung->beam_width, controller.policy().beam_cap);
}

TEST(BudgetControllerTest, ObservationsWarmStartLaterDecisions) {
  BudgetController controller;
  SearchConfig config;
  config.budget_mode = BudgetMode::kAuto;
  EXPECT_EQ(controller.smoothed_peak(), 0.0);

  SearchStats stats;
  stats.open_queue_peak = 10'000;
  stats.paths_generated = 100;
  stats.paths_pruned_bound = 50;  // sharply bounded: normal headroom
  controller.observe(BudgetDecision{}, stats);
  EXPECT_EQ(controller.smoothed_peak(), 10'000.0);

  // Warm decision: EWMA peak x headroom, seed ceiling no longer applies.
  config.max_open_paths = 5;
  const BudgetDecision warm = controller.decide(50, 2400, config);
  EXPECT_TRUE(warm.warm);
  EXPECT_EQ(warm.max_open_paths, 40'000u);

  // Weakly-bounded history (few bound prunes) doubles the headroom.
  BudgetController weak;
  SearchStats unbounded = stats;
  unbounded.paths_pruned_bound = 0;
  weak.observe(BudgetDecision{}, unbounded);
  EXPECT_EQ(weak.decide(50, 2400, config).max_open_paths, 80'000u);
}

TEST(BudgetControllerTest, AutoModeRetriesValveFireAndSucceeds) {
  const ValveFireFixture f;
  const dc::Occupancy occupancy(f.datacenter);
  auto& retries = util::metrics::counter("budget.retries");
  auto& valve_fires = util::metrics::counter("budget.valve_fires");
  const auto retries_before = retries.value();
  const auto fires_before = valve_fires.value();

  SearchConfig config;
  config.max_open_paths = 1;  // the valve fires on the first expansion

  // Fixed mode: the tight budget is a hard failure.
  const Placement fixed = place_topology(occupancy, f.app,
                                         Algorithm::kBaStar, config);
  EXPECT_FALSE(fixed.feasible);
  EXPECT_TRUE(fixed.stats.hit_open_limit);
  EXPECT_EQ(fixed.stats.budget_retries, 0u);

  // Auto mode: the controller widens past the failing seed and converges.
  config.budget_mode = BudgetMode::kAuto;
  const Placement recovered = place_topology(occupancy, f.app,
                                             Algorithm::kBaStar, config);
  ASSERT_TRUE(recovered.feasible);
  EXPECT_GE(recovered.stats.budget_retries, 1u);
  EXPECT_GT(recovered.stats.effective_max_open_paths, 1u);
  EXPECT_GT(retries.value(), retries_before);
  EXPECT_GT(valve_fires.value(), fires_before);
}

TEST(BudgetControllerTest, ExhaustedLadderFallsBackToGreedy) {
  const ValveFireFixture f;
  const dc::Occupancy occupancy(f.datacenter);
  auto& fallbacks = util::metrics::counter("budget.greedy_fallbacks");
  const auto fallbacks_before = fallbacks.value();

  SearchConfig config;
  config.budget_mode = BudgetMode::kAuto;
  config.max_open_paths = 1;
  config.budget_max_retries = 0;  // no rungs: straight to the fallback
  const Placement placement = place_topology(occupancy, f.app,
                                             Algorithm::kBaStar, config);
  // Both greedy completions dead-end on this instance (that is what makes
  // it a valve-fire FAILURE), so the plan stays infeasible — but through
  // the bounded, observable fallback path rather than a silent abort.
  EXPECT_FALSE(placement.feasible);
  EXPECT_TRUE(placement.stats.hit_open_limit);
  EXPECT_GE(placement.stats.eg_reruns, 2u);
  EXPECT_GT(fallbacks.value(), fallbacks_before);
  EXPECT_FALSE(placement.failure_reason.empty());
}

TEST(BudgetControllerTest, FixedAndAutoAgreeWhenValveNeverFires) {
  // Differential check on an instance the search completes comfortably:
  // auto sizing must not change the result, only the limits.
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const auto app = tiny_app();

  const Placement fixed_a = place_topology(occupancy, app,
                                           Algorithm::kBaStar, SearchConfig{});
  const Placement fixed_b = place_topology(occupancy, app,
                                           Algorithm::kBaStar, SearchConfig{});
  SearchConfig auto_config;
  auto_config.budget_mode = BudgetMode::kAuto;
  const Placement adaptive = place_topology(occupancy, app,
                                            Algorithm::kBaStar, auto_config);

  ASSERT_TRUE(fixed_a.feasible);
  ASSERT_TRUE(adaptive.feasible);
  EXPECT_EQ(fixed_a.assignment, fixed_b.assignment);  // determinism
  EXPECT_EQ(fixed_a.assignment, adaptive.assignment);
  EXPECT_DOUBLE_EQ(fixed_a.utility, adaptive.utility);
  EXPECT_EQ(adaptive.stats.budget_retries, 0u);
  EXPECT_FALSE(adaptive.stats.hit_open_limit);
}

TEST(BudgetControllerTest, SchedulerSessionWarmStartsAcrossPlans) {
  const auto datacenter = small_dc(3, 3);
  SearchConfig defaults;
  defaults.budget_mode = BudgetMode::kAuto;
  OstroScheduler scheduler(datacenter, defaults);
  EXPECT_EQ(scheduler.budget_controller().smoothed_peak(), 0.0);

  const Placement first = scheduler.plan(tiny_app(), Algorithm::kBaStar);
  ASSERT_TRUE(first.feasible);
  // The session controller saw the run: its warm-start state is live for
  // the next plan of this scheduler.
  EXPECT_GT(scheduler.budget_controller().smoothed_peak(), 0.0);
  const Placement second = scheduler.plan(tiny_app(), Algorithm::kBaStar);
  ASSERT_TRUE(second.feasible);
  EXPECT_EQ(first.assignment, second.assignment);
}

}  // namespace
}  // namespace ostro::core
