// PlacementService: the optimistic snapshot/plan/validate-commit protocol.
//
// Deterministic interleaving tests drive the plan / try_commit primitives
// (and place() with a post-plan hook injecting competing commits) to pin
// down the re-validation gate; the stress test hammers one service from
// many threads and checks the committed set replays serially to the exact
// same occupancy.  The whole file runs under TSan in CI.
#include "core/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/scheduler.h"
#include "helpers.h"
#include "net/reservation.h"
#include "topology/app_topology.h"
#include "util/rng.h"

namespace ostro::core {
namespace {

using ostro::testing::small_dc;
using ostro::testing::tiny_app;

/// One 8-core host plus one 2-core host: a 6-core VM fits only on "big",
/// so two 6-core requests contend for exactly one slot.
dc::DataCenter contended_dc() {
  dc::DataCenterBuilder builder;
  const auto site = builder.add_site("site0", 16000.0);
  const auto pod = builder.add_pod(site, "pod0", 16000.0);
  const auto rack = builder.add_rack(pod, "rack0", 4000.0);
  builder.add_host(rack, "big", {8.0, 16.0, 500.0}, 1000.0);
  builder.add_host(rack, "small", {2.0, 4.0, 100.0}, 1000.0);
  return builder.build();
}

topo::AppTopology one_vm(const std::string& name, double cores) {
  topo::TopologyBuilder builder;
  builder.add_vm(name, {cores, cores, 0.0});
  return builder.build();
}

SearchConfig serial_config() {
  SearchConfig config;
  config.threads = 1;  // keep the per-request search single-threaded
  return config;
}

TEST(ServiceTest, PlaceCommitsLikeDeploy) {
  const auto datacenter = small_dc(2, 2);
  OstroScheduler scheduler(datacenter, serial_config());
  PlacementService service(scheduler);

  OstroScheduler reference(datacenter, serial_config());
  const Placement expected = reference.deploy(tiny_app(), Algorithm::kEg);
  ASSERT_TRUE(expected.committed);

  const ServiceResult result = service.place(tiny_app(), Algorithm::kEg);
  ASSERT_TRUE(result.placement.feasible);
  EXPECT_TRUE(result.placement.committed);
  EXPECT_EQ(result.placement.assignment, expected.assignment);
  EXPECT_EQ(result.conflicts, 0u);
  EXPECT_EQ(result.retries, 0u);
  EXPECT_GT(result.commit_epoch, 0u);
  EXPECT_TRUE(scheduler.occupancy() == reference.occupancy());
}

TEST(ServiceTest, FreshSnapshotCommitsWithoutRevalidation) {
  const auto datacenter = small_dc(1, 2);
  OstroScheduler scheduler(datacenter, serial_config());
  PlacementService service(scheduler);

  PlannedPlacement planned = service.plan(tiny_app(), Algorithm::kEg);
  ASSERT_TRUE(planned.placement.feasible);
  EXPECT_EQ(planned.epoch, service.epoch());

  std::uint64_t commit_epoch = 0;
  EXPECT_EQ(service.try_commit(tiny_app(), planned, &commit_epoch),
            PlacementService::CommitOutcome::kCommitted);
  EXPECT_TRUE(planned.placement.committed);
  EXPECT_GT(commit_epoch, planned.epoch);
  EXPECT_EQ(commit_epoch, service.epoch());
}

TEST(ServiceTest, StaleButCompatibleSnapshotStillCommits) {
  const auto datacenter = small_dc(1, 2);
  OstroScheduler scheduler(datacenter, serial_config());
  PlacementService service(scheduler);

  // Plan A against the empty occupancy, then let B commit first.  Both
  // stacks fit, so A's stale snapshot re-validates cleanly and commits.
  const auto app_a = one_vm("a", 1.0);
  PlannedPlacement planned = service.plan(app_a, Algorithm::kEg);
  ASSERT_TRUE(planned.placement.feasible);

  const ServiceResult other = service.place(one_vm("b", 1.0), Algorithm::kEg);
  ASSERT_TRUE(other.placement.committed);
  EXPECT_NE(planned.epoch, service.epoch());  // snapshot is now stale

  EXPECT_EQ(service.try_commit(app_a, planned),
            PlacementService::CommitOutcome::kCommitted);
  EXPECT_TRUE(planned.placement.committed);
}

TEST(ServiceTest, ConflictingCommitIsDetectedAtTheGate) {
  const auto datacenter = contended_dc();
  OstroScheduler scheduler(datacenter, serial_config());
  PlacementService service(scheduler);

  const auto app_a = one_vm("a", 6.0);
  PlannedPlacement planned = service.plan(app_a, Algorithm::kEg);
  ASSERT_TRUE(planned.placement.feasible);

  // B consumes the only slot that fits a 6-core VM before A commits.
  const ServiceResult other = service.place(one_vm("b", 6.0), Algorithm::kEg);
  ASSERT_TRUE(other.placement.committed);

  const dc::Occupancy before = scheduler.occupancy();
  EXPECT_EQ(service.try_commit(app_a, planned),
            PlacementService::CommitOutcome::kConflict);
  EXPECT_FALSE(planned.placement.committed);
  // A conflict commits nothing.
  EXPECT_TRUE(scheduler.occupancy() == before);
}

TEST(ServiceTest, InfeasibleAndOvercommittedPlansAreRejected) {
  const auto datacenter = small_dc(1, 1);
  OstroScheduler scheduler(datacenter, serial_config());
  PlacementService service(scheduler);

  PlannedPlacement infeasible = service.plan(one_vm("x", 64.0), Algorithm::kEg);
  ASSERT_FALSE(infeasible.placement.feasible);
  EXPECT_EQ(service.try_commit(one_vm("x", 64.0), infeasible),
            PlacementService::CommitOutcome::kRejected);
  EXPECT_FALSE(infeasible.placement.committed);
}

TEST(ServiceTest, ConflictTriggersReplanOntoRemainingCapacity) {
  const auto datacenter = small_dc(1, 2);  // two 8-core hosts
  OstroScheduler scheduler(datacenter, serial_config());
  PlacementService service(scheduler);

  // After A's first plan, inject a competing 6-core commit; A's replan
  // must land on whichever host still has room.  (The hook fires for the
  // nested place() too — the one-shot guard stops the recursion.)
  std::atomic<bool> injected{false};
  service.set_post_plan_hook([&](std::uint32_t) {
    if (!injected.exchange(true)) {
      const ServiceResult r = service.place(one_vm("b", 6.0), Algorithm::kEg);
      ASSERT_TRUE(r.placement.committed);
    }
  });

  const ServiceResult result = service.place(one_vm("a", 6.0), Algorithm::kEg);
  EXPECT_TRUE(injected.load());
  ASSERT_TRUE(result.placement.feasible);
  EXPECT_TRUE(result.placement.committed);
  EXPECT_EQ(result.conflicts, 1u);
  EXPECT_EQ(result.retries, 1u);
  // Both 6-core VMs are placed, necessarily on distinct hosts.
  EXPECT_EQ(scheduler.occupancy().active_host_count(), 2u);
}

TEST(ServiceTest, ExhaustedRetryLadderReturnsUncommitted) {
  const auto datacenter = contended_dc();
  OstroScheduler scheduler(datacenter, serial_config());
  PlacementService service(scheduler);

  SearchConfig config = serial_config();
  config.service_max_conflict_retries = 0;  // no replans allowed
  std::atomic<bool> injected{false};
  service.set_post_plan_hook([&](std::uint32_t) {
    if (!injected.exchange(true)) {
      const ServiceResult r = service.place(one_vm("b", 6.0), Algorithm::kEg);
      ASSERT_TRUE(r.placement.committed);
    }
  });

  const ServiceResult result =
      service.place(one_vm("a", 6.0), Algorithm::kEg, config);
  ASSERT_TRUE(result.placement.feasible);
  EXPECT_FALSE(result.placement.committed);
  EXPECT_EQ(result.conflicts, 1u);
  EXPECT_EQ(result.retries, 0u);
  EXPECT_NE(result.placement.failure_reason.find("commit conflict"),
            std::string::npos);
}

TEST(ServiceTest, ReplanAfterConflictCanComeBackInfeasible) {
  const auto datacenter = contended_dc();
  OstroScheduler scheduler(datacenter, serial_config());
  PlacementService service(scheduler);

  std::atomic<bool> injected{false};
  service.set_post_plan_hook([&](std::uint32_t) {
    if (!injected.exchange(true)) {
      const ServiceResult r = service.place(one_vm("b", 6.0), Algorithm::kEg);
      ASSERT_TRUE(r.placement.committed);
    }
  });

  // Attempt 0 conflicts; the replan sees "big" full and 6 cores nowhere
  // else, so the request ends infeasible rather than conflicted.
  const ServiceResult result = service.place(one_vm("a", 6.0), Algorithm::kEg);
  EXPECT_FALSE(result.placement.feasible);
  EXPECT_FALSE(result.placement.committed);
  EXPECT_EQ(result.conflicts, 1u);
  EXPECT_EQ(result.retries, 1u);
}

TEST(ServiceTest, CommitterRefusalIsRejectedNotRetried) {
  const auto datacenter = small_dc(1, 2);
  OstroScheduler scheduler(datacenter, serial_config());
  PlacementService service(scheduler);

  int committer_calls = 0;
  const ServiceResult result = service.place_with(
      tiny_app(), Algorithm::kEg, serial_config(),
      [&](const Placement&, std::string& failure) {
        ++committer_calls;
        failure = "quota exceeded";
        return false;
      });
  EXPECT_EQ(committer_calls, 1);
  ASSERT_TRUE(result.placement.feasible);
  EXPECT_FALSE(result.placement.committed);
  EXPECT_EQ(result.placement.failure_reason, "quota exceeded");
  EXPECT_EQ(result.conflicts, 0u);
  EXPECT_TRUE(scheduler.occupancy() == dc::Occupancy(datacenter));
}

// The stress test of the ISSUE's acceptance criteria: N threads x M stacks
// against one service.  Every request either commits or reports why not;
// afterwards the live occupancy must equal a *serial* replay of exactly
// the committed placements in commit_epoch order (bit-identical floats),
// and no request may exceed the configured retry ladder.
TEST(ServiceStressTest, ConcurrentPlacementsMatchSerialReplay) {
  constexpr int kThreads = 8;
  constexpr int kStacksPerThread = 50;

  const auto datacenter = small_dc(4, 4);  // 16 hosts, 128 cores
  const SearchConfig config = serial_config();
  OstroScheduler scheduler(datacenter, config);
  PlacementService service(scheduler);

  // Pre-build every topology so threads only touch the service.
  std::vector<topo::AppTopology> stacks;
  util::Rng rng(20260806);
  stacks.reserve(kThreads * kStacksPerThread);
  for (int i = 0; i < kThreads * kStacksPerThread; ++i) {
    topo::TopologyBuilder builder;
    const double cores = static_cast<double>(rng.uniform_int(1, 2));
    builder.add_vm("w", {cores, cores, 0.0});
    builder.add_vm("d", {1.0, 1.0, 0.0});
    builder.connect("w", "d",
                    static_cast<double>(rng.uniform_int(10, 50)));
    stacks.push_back(builder.build());
  }

  std::vector<ServiceResult> results(stacks.size());
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int j = 0; j < kStacksPerThread; ++j) {
        const std::size_t i = static_cast<std::size_t>(t) * kStacksPerThread +
                              static_cast<std::size_t>(j);
        results[i] = service.place(stacks[i], Algorithm::kEg, config);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Each request is accounted for and bounded.
  struct Committed {
    std::uint64_t epoch;
    std::size_t index;
  };
  std::vector<Committed> committed;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ServiceResult& r = results[i];
    EXPECT_LE(r.retries, config.service_max_conflict_retries);
    if (r.placement.committed) {
      EXPECT_TRUE(r.placement.feasible);
      EXPECT_GT(r.commit_epoch, 0u);
      committed.push_back({r.commit_epoch, i});
    } else {
      EXPECT_FALSE(r.placement.failure_reason.empty());
    }
  }
  ASSERT_FALSE(committed.empty());

  // commit_epoch totally orders the committed set (writer-lock serialized).
  std::sort(committed.begin(), committed.end(),
            [](const Committed& a, const Committed& b) {
              return a.epoch < b.epoch;
            });
  for (std::size_t i = 1; i < committed.size(); ++i) {
    EXPECT_LT(committed[i - 1].epoch, committed[i].epoch);
  }

  // Serial replay in commit order reproduces the occupancy exactly —
  // same hosts, same link reservations, same floating-point sums.
  dc::Occupancy replay(datacenter);
  for (const Committed& c : committed) {
    net::commit_placement(replay, stacks[c.index],
                          results[c.index].placement.assignment);
  }
  EXPECT_TRUE(replay == scheduler.occupancy());

  // No double-booked capacity anywhere.
  for (dc::HostId h = 0; h < static_cast<dc::HostId>(datacenter.host_count());
       ++h) {
    const topo::Resources used = scheduler.occupancy().used(h);
    const topo::Resources& cap = datacenter.host(h).capacity;
    EXPECT_LE(used.vcpus, cap.vcpus);
    EXPECT_LE(used.mem_gb, cap.mem_gb);
    EXPECT_LE(used.disk_gb, cap.disk_gb);
  }
}

// Satellite regression: OstroScheduler::plan is safe from many threads
// even in kAuto budget mode, where every plan funnels through the shared
// BudgetController (decide/observe/widen are internally synchronized).
// kFixed results must be unaffected by a concurrent kAuto session.
TEST(ServiceStressTest, ConcurrentAutoBudgetPlansAreRaceFreeAndStable) {
  const auto datacenter = small_dc(2, 2);
  const SearchConfig defaults = serial_config();
  OstroScheduler scheduler(datacenter, defaults);

  const auto app = tiny_app();
  const Placement fixed_before = scheduler.plan(app, Algorithm::kBaStar);
  ASSERT_TRUE(fixed_before.feasible);

  SearchConfig auto_config = defaults;
  auto_config.budget_mode = BudgetMode::kAuto;

  constexpr int kThreads = 8;
  constexpr int kPlansPerThread = 8;
  std::vector<Placement> plans(kThreads * kPlansPerThread);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int j = 0; j < kPlansPerThread; ++j) {
        plans[static_cast<std::size_t>(t) * kPlansPerThread +
              static_cast<std::size_t>(j)] =
            scheduler.plan(app, Algorithm::kBaStar, auto_config);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  for (const Placement& p : plans) {
    ASSERT_TRUE(p.feasible);
    EXPECT_DOUBLE_EQ(p.utility, fixed_before.utility);
  }

  // The concurrent kAuto session left kFixed behaviour bit-identical.
  const Placement fixed_after = scheduler.plan(app, Algorithm::kBaStar);
  EXPECT_EQ(fixed_after.assignment, fixed_before.assignment);
  EXPECT_DOUBLE_EQ(fixed_after.utility, fixed_before.utility);
}

// Satellite regression for SearchCore::kPooled under concurrency: every
// thread owns a private SearchArena (thread_search_arena), so pooled plans
// running in parallel must share nothing — TSan proves the isolation, and
// the bitwise comparison against a serial kReference plan proves that a
// warm, concurrently reused arena still reproduces the reference search
// exactly on every iteration.
TEST(ServiceStressTest, ConcurrentPooledArenasStayIsolatedAndBitIdentical) {
  const auto datacenter = small_dc(3, 3);
  SearchConfig pooled_config = serial_config();
  pooled_config.search_core = SearchCore::kPooled;
  SearchConfig reference_config = pooled_config;
  reference_config.search_core = SearchCore::kReference;
  OstroScheduler scheduler(datacenter, pooled_config);

  // A few distinct stacks so concurrent plans stress differently shaped
  // searches (and differently sized arena states) on the same threads.
  std::vector<topo::AppTopology> stacks;
  util::Rng rng(20260808);
  for (int i = 0; i < 4; ++i) {
    topo::TopologyBuilder builder;
    builder.add_vm("w0", {1.0 + i % 2, 2.0, 0.0});
    builder.add_vm("w1", {1.0, 1.0, 0.0});
    builder.add_vm("d", {2.0, 2.0, 0.0});
    builder.connect("w0", "d", 20.0 + 10.0 * i);
    builder.connect("w1", "d", 15.0);
    stacks.push_back(builder.build());
  }

  std::vector<Placement> references;
  references.reserve(stacks.size());
  for (const auto& stack : stacks) {
    references.push_back(
        scheduler.plan(stack, Algorithm::kBaStar, reference_config));
    ASSERT_TRUE(references.back().feasible);
  }

  constexpr int kThreads = 8;
  constexpr int kPlansPerThread = 12;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int j = 0; j < kPlansPerThread; ++j) {
        // Round-robin over the stacks: after the first lap the thread's
        // arena is warm and gets recycled across differently sized plans.
        const std::size_t s =
            static_cast<std::size_t>(t + j) % stacks.size();
        const Placement pooled =
            scheduler.plan(stacks[s], Algorithm::kBaStar, pooled_config);
        if (!pooled.feasible ||
            pooled.assignment != references[s].assignment ||
            pooled.utility != references[s].utility ||
            pooled.stats.paths_expanded != references[s].stats.paths_expanded) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace ostro::core
