#include "core/astar.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/greedy.h"
#include "core/verify.h"
#include "helpers.h"

namespace ostro::core {
namespace {

using ostro::testing::random_app;
using ostro::testing::small_dc;
using ostro::testing::tiny_app;

PartialPlacement initial_state(const topo::AppTopology& app,
                               const dc::Occupancy& occupancy,
                               const Objective& objective) {
  return {app, occupancy, objective};
}

TEST(BaStarTest, SolvesTinyAppOptimally) {
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const auto app = tiny_app();
  SearchConfig config;
  const Objective objective(app, datacenter, config);
  const AStarOutcome outcome = run_astar(
      initial_state(app, occupancy, objective), config, false, nullptr);
  ASSERT_TRUE(outcome.feasible) << outcome.failure;
  EXPECT_TRUE(
      verify_placement(occupancy, app, outcome.state.assignment()).empty());
  const BruteForceResult best =
      brute_force_optimal(initial_state(app, occupancy, objective));
  EXPECT_NEAR(outcome.state.utility_committed(), best.utility, 1e-9);
}

TEST(BaStarTest, MatchesBruteForceOnRandomInstances) {
  util::Rng rng(90210);
  int checked = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto datacenter = small_dc(2, 2);
    const dc::Occupancy occupancy(datacenter);
    const auto app = random_app(rng, 4);
    SearchConfig config;
    config.symmetry_reduction = false;  // exercised separately
    const Objective objective(app, datacenter, config);
    const BruteForceResult best =
        brute_force_optimal(initial_state(app, occupancy, objective), false);
    const AStarOutcome outcome = run_astar(
        initial_state(app, occupancy, objective), config, false, nullptr);
    ASSERT_EQ(outcome.feasible, best.feasible) << "trial " << trial;
    if (!best.feasible) continue;
    ++checked;
    EXPECT_NEAR(outcome.state.utility_committed(), best.utility, 1e-9)
        << "trial " << trial;
    EXPECT_TRUE(
        verify_placement(occupancy, app, outcome.state.assignment()).empty());
  }
  EXPECT_GT(checked, 10);
}

TEST(BaStarTest, SymmetryReductionPreservesOptimality) {
  util::Rng rng(31415);
  for (int trial = 0; trial < 12; ++trial) {
    const auto datacenter = small_dc(2, 2);
    const dc::Occupancy occupancy(datacenter);
    // Symmetric workload: identical VMs in one host-level zone + a hub.
    topo::TopologyBuilder builder;
    builder.add_vm("hub", {2.0, 2.0, 0.0});
    std::vector<std::string> members;
    const int twins = 2 + static_cast<int>(rng.next_below(2));
    for (int i = 0; i < twins; ++i) {
      const std::string name = "twin" + std::to_string(i);
      builder.add_vm(name, {1.0, 1.0, 0.0});
      builder.connect("hub", name, 50.0);
      members.push_back(name);
    }
    builder.add_zone("z", topo::DiversityLevel::kHost, members);
    const auto app = builder.build();

    SearchConfig with;
    with.symmetry_reduction = true;
    SearchConfig without;
    without.symmetry_reduction = false;
    const Objective objective(app, datacenter, with);
    const AStarOutcome a = run_astar(
        initial_state(app, occupancy, objective), with, false, nullptr);
    const AStarOutcome b = run_astar(
        initial_state(app, occupancy, objective), without, false, nullptr);
    ASSERT_TRUE(a.feasible);
    ASSERT_TRUE(b.feasible);
    EXPECT_NEAR(a.state.utility_committed(), b.state.utility_committed(),
                1e-9)
        << "trial " << trial;
  }
}

TEST(BaStarTest, NeverWorseThanEg) {
  util::Rng rng(2718);
  for (int trial = 0; trial < 15; ++trial) {
    const auto datacenter = small_dc(2, 3);
    const dc::Occupancy occupancy(datacenter);
    const auto app = random_app(rng, 5);
    SearchConfig config;
    const Objective objective(app, datacenter, config);
    const GreedyOutcome eg = run_greedy(
        Algorithm::kEg, initial_state(app, occupancy, objective),
        eg_sort_order(app), nullptr);
    const AStarOutcome ba = run_astar(
        initial_state(app, occupancy, objective), config, false, nullptr);
    if (!eg.feasible) continue;
    ASSERT_TRUE(ba.feasible);
    EXPECT_LE(ba.state.utility_committed(),
              eg.state.utility_committed() + 1e-9)
        << "trial " << trial;
  }
}

TEST(BaStarTest, InfeasibleInstanceReported) {
  const auto datacenter = small_dc(1, 1);
  dc::Occupancy occupancy(datacenter);
  occupancy.add_host_load(0, {7.0, 0.0, 0.0});
  const auto app = tiny_app();
  SearchConfig config;
  const Objective objective(app, datacenter, config);
  const AStarOutcome outcome = run_astar(
      initial_state(app, occupancy, objective), config, false, nullptr);
  EXPECT_FALSE(outcome.feasible);
  EXPECT_FALSE(outcome.failure.empty());
}

TEST(BaStarTest, RespectsPinnedNodes) {
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const auto app = tiny_app();
  SearchConfig config;
  const Objective objective(app, datacenter, config);
  PartialPlacement initial(app, occupancy, objective);
  initial.place(0, 3);
  const AStarOutcome outcome =
      run_astar(std::move(initial), config, false, nullptr);
  ASSERT_TRUE(outcome.feasible);
  EXPECT_EQ(outcome.state.host_of(0), 3u);
}

TEST(BaStarTest, OpenQueueLimitFallsBackToIncumbent) {
  const auto datacenter = small_dc(2, 3);
  const dc::Occupancy occupancy(datacenter);
  util::Rng rng(11);
  const auto app = random_app(rng, 6);
  SearchConfig config;
  config.max_open_paths = 8;  // absurdly small: trip immediately
  const Objective objective(app, datacenter, config);
  const AStarOutcome outcome = run_astar(
      initial_state(app, occupancy, objective), config, false, nullptr);
  // EG incumbent exists, so the search still reports a feasible placement.
  ASSERT_TRUE(outcome.feasible);
  EXPECT_TRUE(
      verify_placement(occupancy, app, outcome.state.assignment()).empty());
}

TEST(BaStarTest, ExpansionBudgetTruncatesDeterministically) {
  const auto datacenter = small_dc(2, 3);
  const dc::Occupancy occupancy(datacenter);
  util::Rng rng(11);
  const auto app = random_app(rng, 6);
  SearchConfig config;
  config.max_expansions = 2;
  const Objective objective(app, datacenter, config);
  const AStarOutcome outcome = run_astar(
      initial_state(app, occupancy, objective), config, false, nullptr);
  // The EG incumbent survives the truncation, and the budget is exact.
  ASSERT_TRUE(outcome.feasible);
  EXPECT_TRUE(
      verify_placement(occupancy, app, outcome.state.assignment()).empty());
  EXPECT_EQ(outcome.stats.paths_expanded, 2u);
  EXPECT_TRUE(outcome.stats.truncated);
  // The budget is not a valve fire: the kAuto controller must not treat it
  // as a widen-retry signal.
  EXPECT_FALSE(outcome.stats.hit_open_limit);

  // Both memory models stop at the same point of the same search.
  SearchConfig reference_config = config;
  reference_config.search_core = SearchCore::kReference;
  const AStarOutcome reference = run_astar(
      initial_state(app, occupancy, objective), reference_config, false,
      nullptr);
  EXPECT_EQ(reference.state.assignment(), outcome.state.assignment());
  EXPECT_EQ(reference.stats.paths_expanded, outcome.stats.paths_expanded);
}

TEST(BaStarTest, GreedyEstimateModeStillValid) {
  util::Rng rng(999);
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const auto app = random_app(rng, 4);
  SearchConfig config;
  config.greedy_estimate_in_astar = true;
  const Objective objective(app, datacenter, config);
  const AStarOutcome outcome = run_astar(
      initial_state(app, occupancy, objective), config, false, nullptr);
  if (outcome.feasible) {
    EXPECT_TRUE(
        verify_placement(occupancy, app, outcome.state.assignment()).empty());
  }
}

TEST(BaStarTest, StatsArePopulated) {
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const auto app = tiny_app();
  SearchConfig config;
  const Objective objective(app, datacenter, config);
  const AStarOutcome outcome = run_astar(
      initial_state(app, occupancy, objective), config, false, nullptr);
  ASSERT_TRUE(outcome.feasible);
  EXPECT_GT(outcome.stats.paths_generated, 0u);
  EXPECT_GE(outcome.stats.eg_reruns, 1u);
  EXPECT_GT(outcome.stats.runtime_seconds, 0.0);
}

}  // namespace
}  // namespace ostro::core
