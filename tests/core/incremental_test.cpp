// Incremental (pinned) placement coverage — the machinery behind online
// adaptation (Section IV-E) — across algorithms, zones and capacity edges.
#include <gtest/gtest.h>

#include "core/scheduler.h"
#include "core/brute_force.h"
#include "core/verify.h"
#include "helpers.h"
#include "sim/clusters.h"
#include "sim/workloads.h"

namespace ostro::core {
namespace {

using ostro::testing::small_dc;

topo::AppTopology chain(int n) {
  topo::TopologyBuilder builder;
  for (int i = 0; i < n; ++i) {
    builder.add_vm("vm" + std::to_string(i), {2.0, 2.0, 0.0});
  }
  for (int i = 0; i + 1 < n; ++i) {
    builder.connect(static_cast<topo::NodeId>(i),
                    static_cast<topo::NodeId>(i + 1), 50.0);
  }
  return builder.build();
}

TEST(IncrementalTest, AllAlgorithmsRespectPins) {
  const auto datacenter = small_dc(2, 3);
  const dc::Occupancy occupancy(datacenter);
  const auto app = chain(4);
  net::Assignment pins(app.node_count(), dc::kInvalidHost);
  pins[0] = 5;
  pins[3] = 0;
  for (const auto algorithm :
       {Algorithm::kEg, Algorithm::kEgC, Algorithm::kEgBw, Algorithm::kBaStar,
        Algorithm::kDbaStar}) {
    SearchConfig config;
    config.deadline_seconds = 0.2;
    const Placement placement = place_topology(occupancy, app, algorithm,
                                               config, &pins, nullptr);
    ASSERT_TRUE(placement.feasible) << to_string(algorithm);
    EXPECT_EQ(placement.assignment[0], 5u) << to_string(algorithm);
    EXPECT_EQ(placement.assignment[3], 0u) << to_string(algorithm);
    EXPECT_TRUE(verify_placement(occupancy, app, placement.assignment).empty())
        << to_string(algorithm);
  }
}

TEST(IncrementalTest, AllPinnedIsValidationOnly) {
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const auto app = chain(3);
  const net::Assignment pins{0, 0, 1};
  const Placement placement = place_topology(
      occupancy, app, Algorithm::kEg, SearchConfig{}, &pins, nullptr);
  ASSERT_TRUE(placement.feasible);
  EXPECT_EQ(placement.assignment, pins);
  // Cost of the fully pinned placement is computed correctly: one 50 Mbps
  // pipe crosses two host links.
  EXPECT_DOUBLE_EQ(placement.reserved_bandwidth_mbps, 100.0);
}

TEST(IncrementalTest, ConflictingPinsReported) {
  const auto datacenter = small_dc(1, 2);
  const dc::Occupancy occupancy(datacenter);
  topo::TopologyBuilder builder;
  builder.add_vm("a", {6.0, 2.0, 0.0});
  builder.add_vm("b", {6.0, 2.0, 0.0});  // 12 cores > 8-core host
  const auto app = builder.build();
  const net::Assignment pins{0, 0};
  const Placement placement = place_topology(
      occupancy, app, Algorithm::kEg, SearchConfig{}, &pins, nullptr);
  EXPECT_FALSE(placement.feasible);
  EXPECT_NE(placement.failure_reason.find("pinned"), std::string::npos);
}

TEST(IncrementalTest, PinViolatingZoneReported) {
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  topo::TopologyBuilder builder;
  builder.add_vm("a", {1.0, 1.0, 0.0});
  builder.add_vm("b", {1.0, 1.0, 0.0});
  builder.add_zone("z", topo::DiversityLevel::kHost,
                   std::vector<std::string>{"a", "b"});
  const auto app = builder.build();
  const net::Assignment pins{2, 2};  // same host despite the zone
  const Placement placement = place_topology(
      occupancy, app, Algorithm::kBaStar, SearchConfig{}, &pins, nullptr);
  EXPECT_FALSE(placement.feasible);
}

TEST(IncrementalTest, GrowthReusesActiveHostsWhenRoomy) {
  // After a committed deployment, placing a small delta app should prefer
  // the already-active hosts (u_c pressure).
  const auto datacenter = small_dc(2, 3);
  OstroScheduler scheduler(datacenter);
  const auto app = chain(3);
  ASSERT_TRUE(scheduler.deploy(app, Algorithm::kEg).feasible);
  const auto active_before = scheduler.occupancy().active_host_count();

  topo::TopologyBuilder builder;
  builder.add_vm("extra", {1.0, 1.0, 0.0});
  const auto delta = builder.build();
  const Placement placement = scheduler.deploy(delta, Algorithm::kEg);
  ASSERT_TRUE(placement.feasible);
  EXPECT_EQ(placement.new_active_hosts, 0);
  EXPECT_EQ(scheduler.occupancy().active_host_count(), active_before);
}

TEST(IncrementalTest, BaStarOptimalGivenPins) {
  // With some nodes pinned, BA* must still match brute force over the free
  // remainder.
  util::Rng rng(9090);
  for (int trial = 0; trial < 8; ++trial) {
    const auto datacenter = small_dc(2, 2);
    const dc::Occupancy occupancy(datacenter);
    const auto app = ostro::testing::random_app(rng, 4);
    SearchConfig config;
    const Objective objective(app, datacenter, config);
    PartialPlacement seeded(app, occupancy, objective);
    // Pin node 0 to the first host it fits on.
    dc::HostId pin = dc::kInvalidHost;
    for (dc::HostId h = 0; h < datacenter.host_count(); ++h) {
      if (seeded.can_place(0, h)) {
        pin = h;
        break;
      }
    }
    if (pin == dc::kInvalidHost) continue;
    seeded.place(0, pin);
    const BruteForceResult best = brute_force_optimal(seeded, true);

    net::Assignment pins(app.node_count(), dc::kInvalidHost);
    pins[0] = pin;
    const Placement placement = place_topology(
        occupancy, app, Algorithm::kBaStar, config, &pins, nullptr);
    ASSERT_EQ(placement.feasible, best.feasible) << trial;
    if (best.feasible) {
      EXPECT_NEAR(placement.utility, best.utility, 1e-9) << trial;
    }
  }
}

TEST(IncrementalTest, RepeatedDeploysFillTheTestbed) {
  // Deploy QFS stacks until the testbed runs out; every successful deploy
  // verifies, and the first failure reports a reason.
  const auto datacenter = sim::make_testbed();
  OstroScheduler scheduler(datacenter);
  const auto app = sim::make_qfs();
  int deployed = 0;
  for (int i = 0; i < 10; ++i) {
    const Placement placement = scheduler.plan(app, Algorithm::kEg);
    if (!placement.feasible) {
      EXPECT_FALSE(placement.failure_reason.empty());
      break;
    }
    EXPECT_TRUE(verify_placement(scheduler.occupancy(), app,
                                 placement.assignment)
                    .empty());
    scheduler.commit(app, placement);
    ++deployed;
  }
  EXPECT_GE(deployed, 2);   // the idle testbed holds at least a couple
  EXPECT_LT(deployed, 10);  // ... but not ten QFS stacks
}

}  // namespace
}  // namespace ostro::core
