#include "core/scheduler.h"

#include <gtest/gtest.h>

#include "core/verify.h"
#include "helpers.h"

namespace ostro::core {
namespace {

using ostro::testing::small_dc;
using ostro::testing::tiny_app;

TEST(SchedulerTest, PlanDoesNotMutateOccupancy) {
  const auto datacenter = small_dc(2, 2);
  OstroScheduler scheduler(datacenter);
  const auto app = tiny_app();
  const Placement placement = scheduler.plan(app, Algorithm::kEg);
  ASSERT_TRUE(placement.feasible);
  EXPECT_EQ(scheduler.occupancy().active_host_count(), 0u);
}

TEST(SchedulerTest, DeployCommits) {
  const auto datacenter = small_dc(2, 2);
  OstroScheduler scheduler(datacenter);
  const auto app = tiny_app();
  const Placement placement = scheduler.deploy(app, Algorithm::kEg);
  ASSERT_TRUE(placement.feasible);
  EXPECT_GT(scheduler.occupancy().active_host_count(), 0u);
  // The committed reservation equals the reported one.
  EXPECT_NEAR(scheduler.occupancy().total_reserved_mbps(),
              placement.reserved_bandwidth_mbps, 1e-9);
}

TEST(SchedulerTest, PlacementFieldsConsistent) {
  const auto datacenter = small_dc(2, 2);
  OstroScheduler scheduler(datacenter);
  const auto app = tiny_app();
  for (const auto algorithm :
       {Algorithm::kEg, Algorithm::kEgC, Algorithm::kEgBw, Algorithm::kBaStar,
        Algorithm::kDbaStar}) {
    const Placement placement = scheduler.plan(app, Algorithm(algorithm));
    ASSERT_TRUE(placement.feasible) << to_string(algorithm);
    EXPECT_EQ(placement.assignment.size(), app.node_count());
    EXPECT_GE(placement.hosts_used, 1);
    EXPECT_GE(placement.new_active_hosts, 0);
    EXPECT_LE(placement.new_active_hosts, placement.hosts_used);
    EXPECT_GE(placement.utility, 0.0);
    EXPECT_LE(placement.utility, 1.0);
    EXPECT_GE(placement.stats.runtime_seconds, 0.0);
    EXPECT_TRUE(verify_placement(scheduler.occupancy(), app,
                                 placement.assignment)
                    .empty())
        << to_string(algorithm);
  }
}

TEST(SchedulerTest, SuccessiveDeploysSeeReducedCapacity) {
  const auto datacenter = small_dc(1, 1);  // one 8-core host
  OstroScheduler scheduler(datacenter);
  topo::TopologyBuilder builder;
  builder.add_vm("big", {6.0, 6.0, 0.0});
  const auto app1 = builder.build();
  ASSERT_TRUE(scheduler.deploy(app1, Algorithm::kEg).feasible);

  topo::TopologyBuilder builder2;
  builder2.add_vm("big2", {6.0, 6.0, 0.0});
  const auto app2 = builder2.build();
  const Placement second = scheduler.deploy(app2, Algorithm::kEg);
  EXPECT_FALSE(second.feasible);
  EXPECT_FALSE(second.failure_reason.empty());
}

TEST(SchedulerTest, InfeasibleDeployCommitsNothing) {
  const auto datacenter = small_dc(1, 1);
  OstroScheduler scheduler(datacenter);
  scheduler.occupancy().add_host_load(0, {7.0, 0.0, 0.0});
  const auto before = scheduler.occupancy();
  const Placement placement = scheduler.deploy(tiny_app(), Algorithm::kEg);
  EXPECT_FALSE(placement.feasible);
  EXPECT_TRUE(scheduler.occupancy() == before);
}

TEST(SchedulerTest, DeploySetsCommittedFlag) {
  const auto datacenter = small_dc(2, 2);
  OstroScheduler scheduler(datacenter);
  const Placement planned = scheduler.plan(tiny_app(), Algorithm::kEg);
  ASSERT_TRUE(planned.feasible);
  EXPECT_FALSE(planned.committed);  // plan never commits
  const Placement deployed = scheduler.deploy(tiny_app(), Algorithm::kEg);
  ASSERT_TRUE(deployed.feasible);
  EXPECT_TRUE(deployed.committed);
}

TEST(SchedulerTest, OvercommittedDeployIsFeasibleButNotCommitted) {
  // Two 4-core hosts with 100 Mbps uplinks and a 500 Mbps pipe between two
  // 3-core VMs: EG_C (which ignores pipes) must split them across hosts,
  // overcommitting the uplinks.  deploy() used to return feasible=true
  // while silently skipping the commit; the committed flag makes that
  // outcome explicit.
  dc::DataCenterBuilder builder;
  const auto site = builder.add_site("site0", 16000.0);
  const auto pod = builder.add_pod(site, "pod0", 16000.0);
  const auto rack = builder.add_rack(pod, "rack0", 4000.0);
  builder.add_host(rack, "h0", {4.0, 8.0, 100.0}, 100.0);
  builder.add_host(rack, "h1", {4.0, 8.0, 100.0}, 100.0);
  const auto datacenter = builder.build();

  topo::TopologyBuilder app_builder;
  app_builder.add_vm("a", {3.0, 3.0, 0.0});
  app_builder.add_vm("b", {3.0, 3.0, 0.0});
  app_builder.connect("a", "b", 500.0);
  const auto app = app_builder.build();

  OstroScheduler scheduler(datacenter);
  const Placement placement = scheduler.deploy(app, Algorithm::kEgC);
  ASSERT_TRUE(placement.feasible);
  ASSERT_TRUE(placement.bandwidth_overcommitted);
  EXPECT_FALSE(placement.committed);
  EXPECT_NE(placement.failure_reason.find("overcommit"), std::string::npos);
  // Nothing was applied.
  EXPECT_TRUE(scheduler.occupancy() == dc::Occupancy(datacenter));
}

TEST(SchedulerTest, CommitRejectsInfeasiblePlacement) {
  const auto datacenter = small_dc();
  OstroScheduler scheduler(datacenter);
  Placement placement;  // default: infeasible
  EXPECT_THROW(scheduler.commit(tiny_app(), placement), std::invalid_argument);
}

TEST(SchedulerTest, PinnedRequestKeepsHosts) {
  const auto datacenter = small_dc(2, 2);
  OstroScheduler scheduler(datacenter);
  const auto app = tiny_app();
  PlacementRequest request;
  request.topology = &app;
  request.pinned.assign(app.node_count(), dc::kInvalidHost);
  request.pinned[0] = 3;  // web pinned to the last host
  const Placement placement = scheduler.plan(request, Algorithm::kEg);
  ASSERT_TRUE(placement.feasible);
  EXPECT_EQ(placement.assignment[0], 3u);
}

TEST(SchedulerTest, InvalidPinReportedNotThrown) {
  const auto datacenter = small_dc(1, 2);
  OstroScheduler scheduler(datacenter);
  scheduler.occupancy().add_host_load(0, {7.0, 0.0, 0.0});
  const auto app = tiny_app();
  PlacementRequest request;
  request.topology = &app;
  request.pinned.assign(app.node_count(), dc::kInvalidHost);
  request.pinned[1] = 0;  // db (4 cores) cannot fit host 0 (1 core left)
  const Placement placement = scheduler.plan(request, Algorithm::kEg);
  EXPECT_FALSE(placement.feasible);
  EXPECT_NE(placement.failure_reason.find("pinned"), std::string::npos);
}

TEST(SchedulerTest, NullTopologyThrows) {
  const auto datacenter = small_dc();
  OstroScheduler scheduler(datacenter);
  PlacementRequest request;
  EXPECT_THROW((void)scheduler.plan(request, Algorithm::kEg),
               std::invalid_argument);
}

TEST(SchedulerTest, PinnedSizeMismatchThrows) {
  const auto datacenter = small_dc();
  const dc::Occupancy occupancy(datacenter);
  const auto app = tiny_app();
  const net::Assignment bad_pins{0};
  EXPECT_THROW((void)place_topology(occupancy, app, Algorithm::kEg,
                                    SearchConfig{}, &bad_pins, nullptr),
               std::invalid_argument);
}

TEST(SchedulerTest, DbaDeadlineFlowsThroughConfig) {
  const auto datacenter = small_dc(2, 2);
  OstroScheduler scheduler(datacenter);
  SearchConfig config;
  config.deadline_seconds = 0.25;
  const Placement placement =
      scheduler.plan(tiny_app(), Algorithm::kDbaStar, config);
  EXPECT_TRUE(placement.feasible);
}

}  // namespace
}  // namespace ostro::core
