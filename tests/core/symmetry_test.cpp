#include "core/symmetry.h"

#include <gtest/gtest.h>

#include "helpers.h"
#include "sim/workloads.h"

namespace ostro::core {
namespace {

TEST(SymmetryTest, IdenticalUnconnectedVmsShareGroup) {
  topo::TopologyBuilder builder;
  builder.add_vm("a", {2.0, 2.0, 0.0});
  builder.add_vm("b", {2.0, 2.0, 0.0});
  builder.add_vm("c", {4.0, 4.0, 0.0});
  const auto app = builder.build();
  const SymmetryGroups groups = detect_symmetry_groups(app);
  EXPECT_EQ(groups.group_of[0], groups.group_of[1]);
  EXPECT_NE(groups.group_of[0], groups.group_of[2]);
  EXPECT_EQ(groups.nontrivial_groups, 1u);
}

TEST(SymmetryTest, DifferentRequirementsSplit) {
  topo::TopologyBuilder builder;
  builder.add_vm("a", {2.0, 2.0, 0.0});
  builder.add_vm("b", {2.0, 4.0, 0.0});
  const auto app = builder.build();
  const SymmetryGroups groups = detect_symmetry_groups(app);
  EXPECT_NE(groups.group_of[0], groups.group_of[1]);
}

TEST(SymmetryTest, ZoneMembershipMustMatch) {
  topo::TopologyBuilder builder;
  builder.add_vm("a", {2.0, 2.0, 0.0});
  builder.add_vm("b", {2.0, 2.0, 0.0});
  builder.add_vm("c", {2.0, 2.0, 0.0});
  builder.add_zone("z", topo::DiversityLevel::kHost,
                   std::vector<std::string>{"a", "b"});
  const auto app = builder.build();
  const SymmetryGroups groups = detect_symmetry_groups(app);
  EXPECT_EQ(groups.group_of[0], groups.group_of[1]);  // both in z
  EXPECT_NE(groups.group_of[0], groups.group_of[2]);  // c is not
}

TEST(SymmetryTest, NeighborBandwidthMustMatch) {
  topo::TopologyBuilder builder;
  builder.add_vm("a", {1.0, 1.0, 0.0});
  builder.add_vm("b", {1.0, 1.0, 0.0});
  builder.add_vm("hub", {2.0, 2.0, 0.0});
  builder.connect("a", "hub", 100.0);
  builder.connect("b", "hub", 50.0);  // different bandwidth
  const auto app = builder.build();
  const SymmetryGroups groups = detect_symmetry_groups(app);
  EXPECT_NE(groups.group_of[0], groups.group_of[1]);
}

TEST(SymmetryTest, EqualFanInMakesTwins) {
  topo::TopologyBuilder builder;
  builder.add_vm("a", {1.0, 1.0, 0.0});
  builder.add_vm("b", {1.0, 1.0, 0.0});
  builder.add_vm("hub", {2.0, 2.0, 0.0});
  builder.connect("a", "hub", 100.0);
  builder.connect("b", "hub", 100.0);
  const auto app = builder.build();
  const SymmetryGroups groups = detect_symmetry_groups(app);
  EXPECT_EQ(groups.group_of[0], groups.group_of[1]);
}

TEST(SymmetryTest, AdjacentTwinsDetected) {
  topo::TopologyBuilder builder;
  builder.add_vm("a", {1.0, 1.0, 0.0});
  builder.add_vm("b", {1.0, 1.0, 0.0});
  builder.add_vm("x", {2.0, 2.0, 0.0});
  builder.connect("a", "b", 10.0);   // mutual pipe
  builder.connect("a", "x", 20.0);
  builder.connect("b", "x", 20.0);
  const auto app = builder.build();
  const SymmetryGroups groups = detect_symmetry_groups(app);
  EXPECT_EQ(groups.group_of[0], groups.group_of[1]);
}

TEST(SymmetryTest, NonTransitiveCaseStaysSound) {
  // r and m are adjacent twins; v matches r's neighborhood but not m's.
  // A group containing all three would be unsound.
  topo::TopologyBuilder builder;
  builder.add_vm("r", {1.0, 1.0, 0.0});
  builder.add_vm("m", {1.0, 1.0, 0.0});
  builder.add_vm("v", {1.0, 1.0, 0.0});
  builder.add_vm("x", {2.0, 2.0, 0.0});
  builder.connect("r", "m", 10.0);
  builder.connect("r", "x", 20.0);
  builder.connect("m", "x", 20.0);
  builder.connect("v", "x", 20.0);
  builder.connect("v", "m", 10.0);
  const auto app = builder.build();
  const SymmetryGroups groups = detect_symmetry_groups(app);
  // r~m? N(r)\{m} = {x:20}; N(m)\{r} = {x:20, v:10} -> no.
  // r~v? N(r)\{v} = {m:10, x:20}; N(v)\{r} = {x:20, m:10} -> yes.
  EXPECT_EQ(groups.group_of[0], groups.group_of[2]);
  EXPECT_NE(groups.group_of[0], groups.group_of[1]);
}

TEST(SymmetryTest, MultitierTiersContainInterchangeableNodes) {
  util::Rng rng(1);
  const auto app =
      sim::make_multitier(25, sim::RequirementMix::kHomogeneous, rng);
  const SymmetryGroups groups = detect_symmetry_groups(app);
  // Homogeneous complete-bipartite tiers: members of the same tier-zone are
  // interchangeable (5 per tier, split 2/3 across two zones).
  EXPECT_GT(groups.nontrivial_groups, 0u);
  EXPECT_LT(groups.group_count, app.node_count());
}

TEST(SymmetryTest, VolumesAndVmsNeverMix) {
  topo::TopologyBuilder builder;
  builder.add_vm("vm", {0.0, 0.0, 10.0});
  builder.add_volume("vol", 10.0);
  const auto app = builder.build();
  const SymmetryGroups groups = detect_symmetry_groups(app);
  EXPECT_NE(groups.group_of[0], groups.group_of[1]);
}

}  // namespace
}  // namespace ostro::core
