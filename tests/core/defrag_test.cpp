// core::DefragPlanner: reverse best-fit-decreasing consolidation under
// budgets, all-or-nothing per-host vacates, zone-safe target selection, and
// the run_once commit loop.
#include "core/defrag.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/scheduler.h"
#include "core/service.h"
#include "core/stack_registry.h"
#include "core/verify.h"
#include "helpers.h"
#include "net/reservation.h"
#include "topology/app_topology.h"

namespace ostro::core {
namespace {

using ostro::testing::small_dc;

SearchConfig serial_config() {
  SearchConfig config;
  config.threads = 1;
  return config;
}

std::shared_ptr<const topo::AppTopology> vms(int count, double cores) {
  topo::TopologyBuilder builder;
  for (int i = 0; i < count; ++i) {
    builder.add_vm("vm" + std::to_string(i), {cores, cores, 0.0});
  }
  return std::make_shared<const topo::AppTopology>(builder.build());
}

std::shared_ptr<const topo::AppTopology> zoned_pair(double cores) {
  topo::TopologyBuilder builder;
  builder.add_vm("a", {cores, cores, 0.0});
  builder.add_vm("b", {cores, cores, 0.0});
  builder.add_zone("dz", topo::DiversityLevel::kHost, {0, 1});
  return std::make_shared<const topo::AppTopology>(builder.build());
}

TEST(DefragPlannerTest, VacatesSparsestHostIntoDensest) {
  const auto datacenter = small_dc(1, 3);
  OstroScheduler scheduler(datacenter, serial_config());
  PlacementService service(scheduler);
  StackRegistry registry;

  // Host 0 dense (6 of 8 cores), host 1 sparse (2 cores), host 2 empty.
  const auto dense = vms(3, 2.0);
  const auto sparse = vms(1, 2.0);
  net::commit_placement(scheduler.occupancy(), *dense, {0, 0, 0});
  net::commit_placement(scheduler.occupancy(), *sparse, {1});
  registry.add(1, dense, {0, 0, 0});
  registry.add(2, sparse, {1});

  DefragPlanner planner(service, registry, DefragConfig{});
  const DefragStats stats = planner.run_once();
  EXPECT_EQ(stats.moves_committed, 1u);
  EXPECT_EQ(stats.hosts_vacated, 1u);
  EXPECT_GT(stats.commit_epoch, 0u);

  // The sparse VM consolidated into the dense host; the source went idle.
  EXPECT_DOUBLE_EQ(scheduler.occupancy().used(0).vcpus, 8.0);
  EXPECT_FALSE(scheduler.occupancy().is_active(1));
  EXPECT_EQ(registry.get(2)->assignment, net::Assignment{0});
  EXPECT_EQ(scheduler.occupancy().active_host_count(), 1u);

  // Steady state: nothing sparse is movable any more.
  EXPECT_EQ(planner.run_once().moves_committed, 0u);
}

TEST(DefragPlannerTest, AllOrNothingPerHostAndNoRefillOfVacatedHosts) {
  const auto datacenter = small_dc(1, 3);
  OstroScheduler scheduler(datacenter, serial_config());
  PlacementService service(scheduler);
  StackRegistry registry;

  // Two sparse hosts (2 cores each) and one denser host (4 cores): the
  // planner must consolidate without bouncing load into hosts it just
  // emptied.
  const auto two = vms(1, 2.0);
  const auto four = vms(2, 2.0);
  net::commit_placement(scheduler.occupancy(), *four, {0, 0});
  net::commit_placement(scheduler.occupancy(), *two, {1});
  net::commit_placement(scheduler.occupancy(), *two, {2});
  registry.add(1, four, {0, 0});
  registry.add(2, two, {1});
  registry.add(3, two, {2});

  DefragPlanner planner(service, registry, DefragConfig{});
  const DefragStats stats = planner.run_once();
  EXPECT_GE(stats.hosts_vacated, 1u);
  // However the batch lands, every stack still satisfies its structure and
  // the total load is conserved.
  double total = 0.0;
  for (dc::HostId h = 0; h < datacenter.host_count(); ++h) {
    total += scheduler.occupancy().used(h).vcpus;
  }
  EXPECT_DOUBLE_EQ(total, 8.0);
  EXPECT_LT(scheduler.occupancy().active_host_count(), 3u);
}

TEST(DefragPlannerTest, MoveAndDowntimeBudgetsBoundTheBatch) {
  const auto datacenter = small_dc(1, 4);
  OstroScheduler scheduler(datacenter, serial_config());
  PlacementService service(scheduler);
  StackRegistry registry;

  const auto one = vms(1, 1.0);
  const auto heavy = vms(1, 6.0);
  net::commit_placement(scheduler.occupancy(), *heavy, {0});
  registry.add(1, heavy, {0});
  for (StackId id = 2; id <= 4; ++id) {
    const auto host = static_cast<dc::HostId>(id - 1);
    net::commit_placement(scheduler.occupancy(), *one, {host});
    registry.add(id, one, {host});
  }

  DefragConfig config;
  config.max_moves = 0;
  EXPECT_EQ(DefragPlanner(service, registry, config).run_once().moves_proposed,
            0u);

  // Downtime budget of one move: exactly one sparse host consolidates.
  config.max_moves = 8;
  config.downtime_budget_seconds = 0.5;
  config.downtime_per_move_seconds = 0.5;
  const DefragStats stats =
      DefragPlanner(service, registry, config).run_once();
  EXPECT_EQ(stats.moves_committed, 1u);
}

TEST(DefragPlannerTest, MaxResidentNodesBoundsVacateCandidates) {
  const auto datacenter = small_dc(1, 3);
  OstroScheduler scheduler(datacenter, serial_config());
  PlacementService service(scheduler);
  StackRegistry registry;

  // Host 0 is full (never a vacate candidate), host 1 carries a 2-resident
  // pair: with max_resident_nodes = 1 nothing qualifies.
  const auto pair = vms(2, 1.0);
  const auto full = vms(1, 8.0);
  net::commit_placement(scheduler.occupancy(), *full, {0});
  net::commit_placement(scheduler.occupancy(), *pair, {1, 1});
  registry.add(1, full, {0});
  registry.add(2, pair, {1, 1});

  DefragConfig config;
  config.max_resident_nodes = 1;  // the 2-resident host is out of scope
  const DefragStats stats =
      DefragPlanner(service, registry, config).run_once();
  EXPECT_EQ(stats.moves_proposed, 0u);
  EXPECT_DOUBLE_EQ(scheduler.occupancy().used(1).vcpus, 2.0);
}

TEST(DefragPlannerTest, ZoneConstraintsBlockColocatingMoves) {
  const auto datacenter = small_dc(1, 2);
  OstroScheduler scheduler(datacenter, serial_config());
  PlacementService service(scheduler);
  StackRegistry registry;

  // A host-diverse pair spread over both hosts, host 0 denser.  The only
  // consolidation target would co-locate the pair: the planner must leave
  // it alone.
  const auto filler = vms(1, 4.0);
  const auto pair = zoned_pair(2.0);
  net::commit_placement(scheduler.occupancy(), *filler, {0});
  net::commit_placement(scheduler.occupancy(), *pair, {0, 1});
  registry.add(1, filler, {0});
  registry.add(2, pair, {0, 1});

  DefragPlanner planner(service, registry, DefragConfig{});
  const DefragStats stats = planner.run_once();
  EXPECT_EQ(stats.moves_committed, 0u);
  ASSERT_TRUE(verify_assignment_structure(datacenter, *pair,
                                          registry.get(2)->assignment)
                  .empty());
}

TEST(DefragPlannerTest, ConflictingPlanRetriesAgainstFreshSnapshot) {
  const auto datacenter = small_dc(1, 3);
  OstroScheduler scheduler(datacenter, serial_config());
  PlacementService service(scheduler);
  StackRegistry registry;

  const auto dense = vms(3, 2.0);
  const auto sparse = vms(1, 2.0);
  net::commit_placement(scheduler.occupancy(), *dense, {0, 0, 0});
  net::commit_placement(scheduler.occupancy(), *sparse, {1});
  registry.add(1, dense, {0, 0, 0});
  registry.add(2, sparse, {1});

  // plan_batch on a pre-race snapshot, then the stack departs: the commit
  // gate turns the member into a conflict and touches nothing.
  DefragPlanner planner(service, registry, DefragConfig{});
  PlacementService::MigrationBatch batch =
      planner.plan_batch(service.snapshot());
  ASSERT_EQ(batch.members.size(), 1u);
  ASSERT_TRUE(service.release_stack(registry, 2));
  const dc::Occupancy before = scheduler.occupancy();
  EXPECT_EQ(service.try_commit_migration(batch, registry), 0u);
  EXPECT_EQ(batch.members[0].outcome,
            PlacementService::CommitOutcome::kConflict);
  EXPECT_TRUE(scheduler.occupancy() == before);
}

}  // namespace
}  // namespace ostro::core
