#include "core/verify.h"

#include <gtest/gtest.h>

#include "helpers.h"

namespace ostro::core {
namespace {

using ostro::testing::small_dc;
using ostro::testing::tiny_app;

TEST(VerifyTest, AcceptsValidPlacement) {
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const auto app = tiny_app();
  EXPECT_TRUE(verify_placement(occupancy, app, {0, 0, 0}).empty());
  EXPECT_TRUE(verify_placement(occupancy, app, {0, 1, 1}).empty());
}

TEST(VerifyTest, RejectsSizeMismatch) {
  const auto datacenter = small_dc();
  const dc::Occupancy occupancy(datacenter);
  const auto violations = verify_placement(occupancy, tiny_app(), {0, 1});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("entries"), std::string::npos);
}

TEST(VerifyTest, RejectsUnplacedNode) {
  const auto datacenter = small_dc();
  const dc::Occupancy occupancy(datacenter);
  const auto violations =
      verify_placement(occupancy, tiny_app(), {0, dc::kInvalidHost, 0});
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("unplaced"), std::string::npos);
}

TEST(VerifyTest, DetectsHostOverCapacity) {
  const auto datacenter = small_dc(1, 2);
  dc::Occupancy occupancy(datacenter);
  occupancy.add_host_load(0, {4.0, 0.0, 0.0});  // 4 cores left; web+db = 6
  const auto violations =
      verify_placement(occupancy, tiny_app(), {0, 0, 0});
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("over capacity"), std::string::npos);
}

TEST(VerifyTest, DetectsAggregateLinkViolation) {
  // Two pipes over the same uplink that individually fit but jointly do not.
  topo::TopologyBuilder builder;
  builder.add_vm("hub", {1.0, 1.0, 0.0});
  builder.add_vm("x", {1.0, 1.0, 0.0});
  builder.add_vm("y", {1.0, 1.0, 0.0});
  builder.connect("hub", "x", 600.0);
  builder.connect("hub", "y", 600.0);
  const auto app = builder.build();
  const auto datacenter = small_dc(2, 2);  // 1000 Mbps uplinks
  const dc::Occupancy occupancy(datacenter);
  const auto violations = verify_placement(occupancy, app, {0, 1, 2});
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("link"), std::string::npos);
}

TEST(VerifyTest, DetectsZoneViolation) {
  topo::TopologyBuilder builder;
  builder.add_vm("a", {1.0, 1.0, 0.0});
  builder.add_vm("b", {1.0, 1.0, 0.0});
  builder.add_zone("z", topo::DiversityLevel::kRack,
                   std::vector<std::string>{"a", "b"});
  const auto app = builder.build();
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const auto same_rack = verify_placement(occupancy, app, {0, 1});
  ASSERT_FALSE(same_rack.empty());
  EXPECT_NE(same_rack[0].find("zone"), std::string::npos);
  EXPECT_TRUE(verify_placement(occupancy, app, {0, 2}).empty());
}

TEST(VerifyTest, ReportsMultipleViolations) {
  topo::TopologyBuilder builder;
  builder.add_vm("a", {8.0, 1.0, 0.0});
  builder.add_vm("b", {8.0, 1.0, 0.0});
  builder.connect("a", "b", 2000.0);  // exceeds 1000 uplinks
  builder.add_zone("z", topo::DiversityLevel::kPod,
                   std::vector<std::string>{"a", "b"});
  const auto app = builder.build();
  const auto datacenter = small_dc(2, 2);  // single pod
  const dc::Occupancy occupancy(datacenter);
  const auto violations = verify_placement(occupancy, app, {0, 1});
  // bandwidth violation + pod-zone violation (capacity is fine: 8 each).
  EXPECT_GE(violations.size(), 2u);
}

TEST(VerifyTest, BackgroundLoadCounts) {
  const auto datacenter = small_dc(1, 2);
  dc::Occupancy occupancy(datacenter);
  occupancy.reserve_link(datacenter.host_link(0), 950.0);
  const auto app = tiny_app();  // web--db pipe 100 won't fit host0 uplink
  const auto violations = verify_placement(occupancy, app, {0, 1, 1});
  ASSERT_FALSE(violations.empty());
}

}  // namespace
}  // namespace ostro::core
