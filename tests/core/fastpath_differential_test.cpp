// Differential tests for the hot-path accelerations: the hoisted estimate
// context, the precomputed topology tables, and the staged reservation mode
// must produce bit-identical results to the reference paths — identical
// assignments, identical objective values (exact double equality, not
// EXPECT_NEAR), and identical post-commit Occupancy state.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/astar.h"
#include "core/estimator.h"
#include "core/greedy.h"
#include "net/reservation.h"
#include "helpers.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ostro::core {
namespace {

using ostro::testing::random_app;
using ostro::testing::small_dc;
using ostro::testing::tiny_app;
using ostro::testing::two_site_dc;

PartialPlacement initial_state(const topo::AppTopology& app,
                               const dc::Occupancy& occupancy,
                               const Objective& objective) {
  return {app, occupancy, objective};
}

/// Exact (bitwise) outcome comparison: feasibility, assignment, committed
/// utility and u_bw must all match between the fast and the reference path.
void expect_identical(const GreedyOutcome& fast, const GreedyOutcome& ref,
                      int trial) {
  ASSERT_EQ(fast.feasible, ref.feasible) << "trial " << trial;
  if (!ref.feasible) return;
  EXPECT_EQ(fast.state.assignment(), ref.state.assignment())
      << "trial " << trial;
  EXPECT_EQ(fast.state.utility_committed(), ref.state.utility_committed())
      << "trial " << trial;
  EXPECT_EQ(fast.state.ubw(), ref.state.ubw()) << "trial " << trial;
}

void expect_identical(const AStarOutcome& fast, const AStarOutcome& ref,
                      int trial) {
  ASSERT_EQ(fast.feasible, ref.feasible) << "trial " << trial;
  if (!ref.feasible) return;
  EXPECT_EQ(fast.state.assignment(), ref.state.assignment())
      << "trial " << trial;
  EXPECT_EQ(fast.state.utility_committed(), ref.state.utility_committed())
      << "trial " << trial;
  EXPECT_EQ(fast.state.ubw(), ref.state.ubw()) << "trial " << trial;
}

TEST(FastPathDifferentialTest, CandidateEstimateMatchesContextExactly) {
  util::Rng rng(4711);
  for (int trial = 0; trial < 15; ++trial) {
    const auto datacenter =
        trial % 2 == 0 ? small_dc(2, 3) : two_site_dc(2, 2);
    const dc::Occupancy occupancy(datacenter);
    const auto app = random_app(rng, 6);
    SearchConfig config;
    const Objective objective(app, datacenter, config);
    PartialPlacement state = initial_state(app, occupancy, objective);

    // Place a random prefix so the context sees placed neighbors, open
    // pipes, and partially placed zones.
    const auto placed_count =
        static_cast<std::size_t>(rng.uniform_int(0, 4));
    for (std::size_t i = 0; i < placed_count; ++i) {
      const auto node = static_cast<topo::NodeId>(i);
      const auto host = static_cast<dc::HostId>(rng.uniform_int(
          0, static_cast<int>(datacenter.host_count()) - 1));
      if (state.can_place(node, host)) state.place(node, host);
    }

    EstimateScratch scratch;
    for (topo::NodeId node = 0; node < app.node_count(); ++node) {
      if (state.is_placed(node)) continue;
      const double rest = Estimator::rest_bound(state, node);
      const NodeEstimateContext context(state, node, rest);
      for (dc::HostId host = 0; host < datacenter.host_count(); ++host) {
        const Estimate reference =
            Estimator::candidate_estimate(state, node, host, rest);
        const Estimate fast = context.estimate(host, scratch);
        EXPECT_EQ(fast.ubw, reference.ubw)
            << "trial " << trial << " node " << node << " host " << host;
        EXPECT_EQ(fast.uc, reference.uc)
            << "trial " << trial << " node " << node << " host " << host;
      }
    }
  }
}

TEST(FastPathDifferentialTest, GreedyEgMatchesReferencePath) {
  util::Rng rng(8001);
  util::ThreadPool pool(4);
  for (int trial = 0; trial < 25; ++trial) {
    const auto datacenter =
        trial % 2 == 0 ? small_dc(3, 3) : two_site_dc(2, 3);
    const dc::Occupancy occupancy(datacenter);
    const auto app = random_app(rng, 7);
    SearchConfig config;
    const Objective objective(app, datacenter, config);
    const auto order = eg_sort_order(app);

    const GreedyOutcome reference =
        run_greedy(Algorithm::kEg, initial_state(app, occupancy, objective),
                   order, nullptr, /*use_estimate_context=*/false);
    const GreedyOutcome serial =
        run_greedy(Algorithm::kEg, initial_state(app, occupancy, objective),
                   order, nullptr, /*use_estimate_context=*/true);
    const GreedyOutcome parallel =
        run_greedy(Algorithm::kEg, initial_state(app, occupancy, objective),
                   order, &pool, /*use_estimate_context=*/true);
    expect_identical(serial, reference, trial);
    expect_identical(parallel, reference, trial);
  }
}

TEST(FastPathDifferentialTest, BaStarMatchesReferencePath) {
  util::Rng rng(8002);
  for (int trial = 0; trial < 12; ++trial) {
    const auto datacenter = small_dc(2, 2);
    const dc::Occupancy occupancy(datacenter);
    const auto app = random_app(rng, 5);
    SearchConfig fast_config;
    fast_config.use_estimate_context = true;
    SearchConfig ref_config = fast_config;
    ref_config.use_estimate_context = false;
    const Objective objective(app, datacenter, fast_config);

    const AStarOutcome fast = run_astar(
        initial_state(app, occupancy, objective), fast_config, false, nullptr);
    const AStarOutcome reference = run_astar(
        initial_state(app, occupancy, objective), ref_config, false, nullptr);
    expect_identical(fast, reference, trial);
  }
}

TEST(FastPathDifferentialTest, DeadlineBoundedAStarMatchesReferencePath) {
  util::Rng rng(8003);
  for (int trial = 0; trial < 12; ++trial) {
    const auto datacenter = trial % 2 == 0 ? small_dc(2, 2) : two_site_dc(1, 2);
    const dc::Occupancy occupancy(datacenter);
    const auto app = random_app(rng, 5);
    SearchConfig fast_config;
    // deadline_seconds == 0 disables the deadline: no prune pressure, so
    // DBA* is deterministic and the two runs are comparable.  The sharp
    // sibling ordering (greedy_estimate_in_astar) exercises the context in
    // the expansion fan.
    fast_config.deadline_seconds = 0.0;
    fast_config.greedy_estimate_in_astar = true;
    fast_config.use_estimate_context = true;
    SearchConfig ref_config = fast_config;
    ref_config.use_estimate_context = false;
    const Objective objective(app, datacenter, fast_config);

    const AStarOutcome fast = run_astar(
        initial_state(app, occupancy, objective), fast_config, true, nullptr);
    const AStarOutcome reference = run_astar(
        initial_state(app, occupancy, objective), ref_config, true, nullptr);
    expect_identical(fast, reference, trial);
  }
}

TEST(FastPathDifferentialTest, StagedTransactionMatchesDirectMode) {
  util::Rng rng(8004);
  int committed = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto datacenter =
        trial % 2 == 0 ? small_dc(2, 3) : two_site_dc(2, 2);
    dc::Occupancy staged_occupancy(datacenter);
    dc::Occupancy direct_occupancy(datacenter);
    const auto app = random_app(rng, 6);
    SearchConfig config;
    const Objective objective(app, datacenter, config);
    const GreedyOutcome outcome = run_greedy(
        Algorithm::kEg, initial_state(app, staged_occupancy, objective),
        eg_sort_order(app), nullptr);
    if (!outcome.feasible) continue;
    ++committed;

    net::PlacementTransaction staged(
        staged_occupancy, net::PlacementTransaction::Mode::kStaged);
    staged.apply(app, outcome.state.assignment());
    staged.commit();

    net::PlacementTransaction direct(
        direct_occupancy, net::PlacementTransaction::Mode::kDirect);
    direct.apply(app, outcome.state.assignment());
    direct.commit();

    EXPECT_TRUE(staged_occupancy == direct_occupancy) << "trial " << trial;
  }
  EXPECT_GT(committed, 10);
}

TEST(FastPathDifferentialTest, FailedStagedApplyLeavesOccupancyPristine) {
  const auto datacenter = small_dc(1, 2);
  dc::Occupancy occupancy(datacenter);
  const dc::Occupancy pristine = occupancy;
  const auto app = tiny_app();

  // Pile every node onto host 0 repeatedly until bandwidth or compute must
  // give out; a failing staged apply must cause zero base churn.
  net::Assignment overload(app.node_count(), 0);
  net::PlacementTransaction txn(occupancy,
                                net::PlacementTransaction::Mode::kStaged);
  bool threw = false;
  for (int round = 0; round < 50 && !threw; ++round) {
    try {
      txn.apply(app, overload);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
  }
  ASSERT_TRUE(threw);
  txn.rollback();
  EXPECT_TRUE(occupancy == pristine);
}

}  // namespace
}  // namespace ostro::core
