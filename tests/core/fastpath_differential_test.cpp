// Differential tests for the hot-path accelerations: the hoisted estimate
// context, the precomputed topology tables, and the staged reservation mode
// must produce bit-identical results to the reference paths — identical
// assignments, identical objective values (exact double equality, not
// EXPECT_NEAR), and identical post-commit Occupancy state.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/astar.h"
#include "core/estimator.h"
#include "core/greedy.h"
#include "core/scheduler.h"
#include "net/reservation.h"
#include "helpers.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ostro::core {
namespace {

using ostro::testing::random_app;
using ostro::testing::small_dc;
using ostro::testing::tiny_app;
using ostro::testing::two_site_dc;

PartialPlacement initial_state(const topo::AppTopology& app,
                               const dc::Occupancy& occupancy,
                               const Objective& objective) {
  return {app, occupancy, objective};
}

/// Exact (bitwise) outcome comparison: feasibility, assignment, committed
/// utility and u_bw must all match between the fast and the reference path.
void expect_identical(const GreedyOutcome& fast, const GreedyOutcome& ref,
                      int trial) {
  ASSERT_EQ(fast.feasible, ref.feasible) << "trial " << trial;
  if (!ref.feasible) return;
  EXPECT_EQ(fast.state.assignment(), ref.state.assignment())
      << "trial " << trial;
  EXPECT_EQ(fast.state.utility_committed(), ref.state.utility_committed())
      << "trial " << trial;
  EXPECT_EQ(fast.state.ubw(), ref.state.ubw()) << "trial " << trial;
}

void expect_identical(const AStarOutcome& fast, const AStarOutcome& ref,
                      int trial) {
  ASSERT_EQ(fast.feasible, ref.feasible) << "trial " << trial;
  if (!ref.feasible) return;
  EXPECT_EQ(fast.state.assignment(), ref.state.assignment())
      << "trial " << trial;
  EXPECT_EQ(fast.state.utility_committed(), ref.state.utility_committed())
      << "trial " << trial;
  EXPECT_EQ(fast.state.ubw(), ref.state.ubw()) << "trial " << trial;
}

TEST(FastPathDifferentialTest, CandidateEstimateMatchesContextExactly) {
  util::Rng rng(4711);
  for (int trial = 0; trial < 15; ++trial) {
    const auto datacenter =
        trial % 2 == 0 ? small_dc(2, 3) : two_site_dc(2, 2);
    const dc::Occupancy occupancy(datacenter);
    const auto app = random_app(rng, 6);
    SearchConfig config;
    const Objective objective(app, datacenter, config);
    PartialPlacement state = initial_state(app, occupancy, objective);

    // Place a random prefix so the context sees placed neighbors, open
    // pipes, and partially placed zones.
    const auto placed_count =
        static_cast<std::size_t>(rng.uniform_int(0, 4));
    for (std::size_t i = 0; i < placed_count; ++i) {
      const auto node = static_cast<topo::NodeId>(i);
      const auto host = static_cast<dc::HostId>(rng.uniform_int(
          0, static_cast<int>(datacenter.host_count()) - 1));
      if (state.can_place(node, host)) state.place(node, host);
    }

    EstimateScratch scratch;
    for (topo::NodeId node = 0; node < app.node_count(); ++node) {
      if (state.is_placed(node)) continue;
      const double rest = Estimator::rest_bound(state, node);
      const NodeEstimateContext context(state, node, rest);
      for (dc::HostId host = 0; host < datacenter.host_count(); ++host) {
        const Estimate reference =
            Estimator::candidate_estimate(state, node, host, rest);
        const Estimate fast = context.estimate(host, scratch);
        EXPECT_EQ(fast.ubw, reference.ubw)
            << "trial " << trial << " node " << node << " host " << host;
        EXPECT_EQ(fast.uc, reference.uc)
            << "trial " << trial << " node " << node << " host " << host;
      }
    }
  }
}

TEST(FastPathDifferentialTest, GreedyEgMatchesReferencePath) {
  util::Rng rng(8001);
  util::ThreadPool pool(4);
  for (int trial = 0; trial < 25; ++trial) {
    const auto datacenter =
        trial % 2 == 0 ? small_dc(3, 3) : two_site_dc(2, 3);
    const dc::Occupancy occupancy(datacenter);
    const auto app = random_app(rng, 7);
    SearchConfig config;
    const Objective objective(app, datacenter, config);
    const auto order = eg_sort_order(app);

    const GreedyOutcome reference =
        run_greedy(Algorithm::kEg, initial_state(app, occupancy, objective),
                   order, nullptr, /*use_estimate_context=*/false);
    const GreedyOutcome serial =
        run_greedy(Algorithm::kEg, initial_state(app, occupancy, objective),
                   order, nullptr, /*use_estimate_context=*/true);
    const GreedyOutcome parallel =
        run_greedy(Algorithm::kEg, initial_state(app, occupancy, objective),
                   order, &pool, /*use_estimate_context=*/true);
    expect_identical(serial, reference, trial);
    expect_identical(parallel, reference, trial);
  }
}

TEST(FastPathDifferentialTest, BaStarMatchesReferencePath) {
  util::Rng rng(8002);
  for (int trial = 0; trial < 12; ++trial) {
    const auto datacenter = small_dc(2, 2);
    const dc::Occupancy occupancy(datacenter);
    const auto app = random_app(rng, 5);
    SearchConfig fast_config;
    fast_config.use_estimate_context = true;
    SearchConfig ref_config = fast_config;
    ref_config.use_estimate_context = false;
    const Objective objective(app, datacenter, fast_config);

    const AStarOutcome fast = run_astar(
        initial_state(app, occupancy, objective), fast_config, false, nullptr);
    const AStarOutcome reference = run_astar(
        initial_state(app, occupancy, objective), ref_config, false, nullptr);
    expect_identical(fast, reference, trial);
  }
}

TEST(FastPathDifferentialTest, DeadlineBoundedAStarMatchesReferencePath) {
  util::Rng rng(8003);
  for (int trial = 0; trial < 12; ++trial) {
    const auto datacenter = trial % 2 == 0 ? small_dc(2, 2) : two_site_dc(1, 2);
    const dc::Occupancy occupancy(datacenter);
    const auto app = random_app(rng, 5);
    SearchConfig fast_config;
    // deadline_seconds == 0 disables the deadline: no prune pressure, so
    // DBA* is deterministic and the two runs are comparable.  The sharp
    // sibling ordering (greedy_estimate_in_astar) exercises the context in
    // the expansion fan.
    fast_config.deadline_seconds = 0.0;
    fast_config.greedy_estimate_in_astar = true;
    fast_config.use_estimate_context = true;
    SearchConfig ref_config = fast_config;
    ref_config.use_estimate_context = false;
    const Objective objective(app, datacenter, fast_config);

    const AStarOutcome fast = run_astar(
        initial_state(app, occupancy, objective), fast_config, true, nullptr);
    const AStarOutcome reference = run_astar(
        initial_state(app, occupancy, objective), ref_config, true, nullptr);
    expect_identical(fast, reference, trial);
  }
}

TEST(FastPathDifferentialTest, StagedTransactionMatchesDirectMode) {
  util::Rng rng(8004);
  int committed = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto datacenter =
        trial % 2 == 0 ? small_dc(2, 3) : two_site_dc(2, 2);
    dc::Occupancy staged_occupancy(datacenter);
    dc::Occupancy direct_occupancy(datacenter);
    const auto app = random_app(rng, 6);
    SearchConfig config;
    const Objective objective(app, datacenter, config);
    const GreedyOutcome outcome = run_greedy(
        Algorithm::kEg, initial_state(app, staged_occupancy, objective),
        eg_sort_order(app), nullptr);
    if (!outcome.feasible) continue;
    ++committed;

    net::PlacementTransaction staged(
        staged_occupancy, net::PlacementTransaction::Mode::kStaged);
    staged.apply(app, outcome.state.assignment());
    staged.commit();

    net::PlacementTransaction direct(
        direct_occupancy, net::PlacementTransaction::Mode::kDirect);
    direct.apply(app, outcome.state.assignment());
    direct.commit();

    EXPECT_TRUE(staged_occupancy == direct_occupancy) << "trial " << trial;
  }
  EXPECT_GT(committed, 10);
}

TEST(FastPathDifferentialTest, FailedStagedApplyLeavesOccupancyPristine) {
  const auto datacenter = small_dc(1, 2);
  dc::Occupancy occupancy(datacenter);
  const dc::Occupancy pristine = occupancy;
  const auto app = tiny_app();

  // Pile every node onto host 0 repeatedly until bandwidth or compute must
  // give out; a failing staged apply must cause zero base churn.
  net::Assignment overload(app.node_count(), 0);
  net::PlacementTransaction txn(occupancy,
                                net::PlacementTransaction::Mode::kStaged);
  bool threw = false;
  for (int round = 0; round < 50 && !threw; ++round) {
    try {
      txn.apply(app, overload);
    } catch (const std::invalid_argument&) {
      threw = true;
    }
  }
  ASSERT_TRUE(threw);
  txn.rollback();
  EXPECT_TRUE(occupancy == pristine);
}

// ---------------------------------------------------------------------------
// SearchCore::kPooled vs SearchCore::kReference.  The pooled memory model
// (arena states, packed-key heap, flat closed set; DESIGN.md section 11) is
// required to be bit-identical: same assignments, same doubles, and the
// same SearchStats — including the pop-order-sensitive counters, which
// would diverge on the very first expansion if the heap's total order or
// the COW chain's floating-point replay were off by anything at all.

void expect_identical_stats(const SearchStats& pooled, const SearchStats& ref,
                            int trial) {
  EXPECT_EQ(pooled.paths_expanded, ref.paths_expanded) << "trial " << trial;
  EXPECT_EQ(pooled.paths_generated, ref.paths_generated) << "trial " << trial;
  EXPECT_EQ(pooled.paths_pruned_bound, ref.paths_pruned_bound)
      << "trial " << trial;
  EXPECT_EQ(pooled.paths_pruned_random, ref.paths_pruned_random)
      << "trial " << trial;
  EXPECT_EQ(pooled.paths_deduped, ref.paths_deduped) << "trial " << trial;
  EXPECT_EQ(pooled.symmetry_pruned, ref.symmetry_pruned) << "trial " << trial;
  EXPECT_EQ(pooled.open_queue_peak, ref.open_queue_peak) << "trial " << trial;
  EXPECT_EQ(pooled.max_depth, ref.max_depth) << "trial " << trial;
  EXPECT_EQ(pooled.eg_reruns, ref.eg_reruns) << "trial " << trial;
  EXPECT_EQ(pooled.heuristic_calls, ref.heuristic_calls) << "trial " << trial;
  EXPECT_EQ(pooled.truncated, ref.truncated) << "trial " << trial;
}

TEST(SearchCoreDifferentialTest, PooledBaStarMatchesReferenceBitwise) {
  util::Rng rng(9001);
  for (int trial = 0; trial < 20; ++trial) {
    const auto datacenter =
        trial % 2 == 0 ? small_dc(2, 3) : two_site_dc(2, 2);
    const dc::Occupancy occupancy(datacenter);
    const auto app = random_app(rng, 6);
    SearchConfig pooled_config;
    pooled_config.search_core = SearchCore::kPooled;
    SearchConfig ref_config = pooled_config;
    ref_config.search_core = SearchCore::kReference;
    const Objective objective(app, datacenter, pooled_config);

    const AStarOutcome pooled = run_astar(
        initial_state(app, occupancy, objective), pooled_config, false,
        nullptr);
    const AStarOutcome reference = run_astar(
        initial_state(app, occupancy, objective), ref_config, false, nullptr);
    expect_identical(pooled, reference, trial);
    expect_identical_stats(pooled.stats, reference.stats, trial);
  }
}

TEST(SearchCoreDifferentialTest, PooledDbaStarMatchesReferenceBitwise) {
  util::Rng rng(9002);
  for (int trial = 0; trial < 20; ++trial) {
    const auto datacenter =
        trial % 2 == 0 ? small_dc(2, 2) : two_site_dc(1, 3);
    const dc::Occupancy occupancy(datacenter);
    const auto app = random_app(rng, 6);
    SearchConfig pooled_config;
    // deadline_seconds == 0 disables the prune pressure, so DBA* (sharp
    // ordering, beam, depth-first pops) is deterministic and comparable.
    pooled_config.deadline_seconds = 0.0;
    pooled_config.greedy_estimate_in_astar = true;
    pooled_config.search_core = SearchCore::kPooled;
    SearchConfig ref_config = pooled_config;
    ref_config.search_core = SearchCore::kReference;
    const Objective objective(app, datacenter, pooled_config);

    const AStarOutcome pooled = run_astar(
        initial_state(app, occupancy, objective), pooled_config, true,
        nullptr);
    const AStarOutcome reference = run_astar(
        initial_state(app, occupancy, objective), ref_config, true, nullptr);
    expect_identical(pooled, reference, trial);
    expect_identical_stats(pooled.stats, reference.stats, trial);
  }
}

TEST(SearchCoreDifferentialTest, PooledMatchesReferenceFromPinnedPrefix) {
  // A pinned prefix makes the root state a non-empty kMap placement, so
  // assign_pooled_flat must reproduce accumulated deltas (not just the
  // empty-state fast case) before the search even starts.
  util::Rng rng(9003);
  for (int trial = 0; trial < 15; ++trial) {
    const auto datacenter = small_dc(2, 3);
    const dc::Occupancy occupancy(datacenter);
    const auto app = random_app(rng, 6);
    SearchConfig pooled_config;
    pooled_config.search_core = SearchCore::kPooled;
    SearchConfig ref_config = pooled_config;
    ref_config.search_core = SearchCore::kReference;
    const Objective objective(app, datacenter, pooled_config);

    PartialPlacement pooled_initial = initial_state(app, occupancy, objective);
    const auto prefix = static_cast<std::size_t>(rng.uniform_int(1, 3));
    for (std::size_t i = 0; i < prefix && i < app.node_count(); ++i) {
      const auto node = static_cast<topo::NodeId>(i);
      const auto host = static_cast<dc::HostId>(rng.uniform_int(
          0, static_cast<int>(datacenter.host_count()) - 1));
      if (pooled_initial.can_place(node, host)) {
        pooled_initial.place(node, host);
      }
    }
    const PartialPlacement ref_initial = pooled_initial;

    const AStarOutcome pooled =
        run_astar(pooled_initial, pooled_config, false, nullptr);
    const AStarOutcome reference =
        run_astar(ref_initial, ref_config, false, nullptr);
    expect_identical(pooled, reference, trial);
    expect_identical_stats(pooled.stats, reference.stats, trial);
  }
}

TEST(SearchCoreDifferentialTest, PooledMatchesReferenceUnderAutoBudget) {
  // Through the scheduler with budget_mode=kAuto: the valve/retry ladder
  // must make the same decisions over the pooled core's identical stats.
  util::Rng rng(9004);
  for (int trial = 0; trial < 8; ++trial) {
    const auto datacenter =
        trial % 2 == 0 ? small_dc(2, 3) : two_site_dc(2, 2);
    const auto app = random_app(rng, 6);

    SearchConfig pooled_config;
    pooled_config.budget_mode = BudgetMode::kAuto;
    pooled_config.search_core = SearchCore::kPooled;
    SearchConfig ref_config = pooled_config;
    ref_config.search_core = SearchCore::kReference;

    // Fresh schedulers per run: the BudgetController warm-starts from its
    // own history, which must not leak between the two runs.
    const OstroScheduler pooled_scheduler(datacenter, pooled_config);
    const OstroScheduler ref_scheduler(datacenter, ref_config);
    const Placement pooled = pooled_scheduler.plan(app, Algorithm::kBaStar);
    const Placement reference = ref_scheduler.plan(app, Algorithm::kBaStar);

    ASSERT_EQ(pooled.feasible, reference.feasible) << "trial " << trial;
    if (!reference.feasible) continue;
    EXPECT_EQ(pooled.assignment, reference.assignment) << "trial " << trial;
    EXPECT_EQ(pooled.utility, reference.utility) << "trial " << trial;
    EXPECT_EQ(pooled.reserved_bandwidth_mbps,
              reference.reserved_bandwidth_mbps)
        << "trial " << trial;
    EXPECT_EQ(pooled.stats.budget_retries, reference.stats.budget_retries)
        << "trial " << trial;
    expect_identical_stats(pooled.stats, reference.stats, trial);
  }
}

TEST(SearchCoreDifferentialTest, PooledPropertyRandomTopologies) {
  // Property sweep at a larger trial count with alternating algorithms and
  // fleet shapes; any representational drift in the COW chains shows up as
  // a utility or stats mismatch long before a wrong assignment does.
  util::Rng rng(9005);
  for (int trial = 0; trial < 30; ++trial) {
    const auto datacenter = trial % 3 == 0   ? small_dc(2, 2)
                            : trial % 3 == 1 ? small_dc(3, 2)
                                             : two_site_dc(1, 2);
    const dc::Occupancy occupancy(datacenter);
    const auto app = random_app(rng, 4 + trial % 4);
    SearchConfig pooled_config;
    pooled_config.use_estimate_context = trial % 2 == 0;
    pooled_config.search_core = SearchCore::kPooled;
    SearchConfig ref_config = pooled_config;
    ref_config.search_core = SearchCore::kReference;
    const Objective objective(app, datacenter, pooled_config);
    const bool dba = trial % 5 == 0;
    if (dba) {
      pooled_config.deadline_seconds = 0.0;
      pooled_config.greedy_estimate_in_astar = true;
      ref_config.deadline_seconds = 0.0;
      ref_config.greedy_estimate_in_astar = true;
    }

    const AStarOutcome pooled = run_astar(
        initial_state(app, occupancy, objective), pooled_config, dba,
        nullptr);
    const AStarOutcome reference = run_astar(
        initial_state(app, occupancy, objective), ref_config, dba, nullptr);
    expect_identical(pooled, reference, trial);
    expect_identical_stats(pooled.stats, reference.stats, trial);
  }
}

}  // namespace
}  // namespace ostro::core
