#include "core/estimator.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "helpers.h"

namespace ostro::core {
namespace {

using ostro::testing::random_app;
using ostro::testing::small_dc;
using ostro::testing::tiny_app;

TEST(EstimatorTest, RestBoundExcludesIncidentEdges) {
  topo::TopologyBuilder builder;
  builder.add_vm("a", {1.0, 1.0, 0.0});
  builder.add_vm("b", {1.0, 1.0, 0.0});
  builder.add_vm("c", {8.0, 1.0, 0.0});
  builder.add_vm("d", {8.0, 1.0, 0.0});
  builder.connect("a", "b", 100.0);  // co-locatable: bound 0
  builder.connect("c", "d", 50.0);   // 8+8 cpu can never share: bound 100
  const auto app = builder.build();
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const Objective objective(app, datacenter, SearchConfig{});
  const PartialPlacement p(app, occupancy, objective);
  EXPECT_DOUBLE_EQ(p.remaining_bw_bound(), 100.0);
  // rest_bound for node a excludes edge (a,b) but keeps (c,d).
  EXPECT_DOUBLE_EQ(Estimator::rest_bound(p, 0), 100.0);
  // rest_bound for c excludes (c,d).
  EXPECT_DOUBLE_EQ(Estimator::rest_bound(p, 2), 0.0);
}

TEST(EstimatorTest, CandidateEstimateChargesActivation) {
  const auto datacenter = small_dc(2, 2);
  dc::Occupancy occupancy(datacenter);
  occupancy.mark_active(0);
  const auto app = tiny_app();
  const Objective objective(app, datacenter, SearchConfig{});
  const PartialPlacement p(app, occupancy, objective);
  const double rest = Estimator::rest_bound(p, 0);
  const Estimate active = Estimator::candidate_estimate(p, 0, 0, rest);
  const Estimate idle = Estimator::candidate_estimate(p, 0, 1, rest);
  EXPECT_DOUBLE_EQ(active.uc, 0.0);
  EXPECT_DOUBLE_EQ(idle.uc, 1.0);
}

TEST(EstimatorTest, CandidateEstimatePricesPlacedNeighbors) {
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const auto app = tiny_app();  // web--db 100, db--data 200
  const Objective objective(app, datacenter, SearchConfig{});
  PartialPlacement p(app, occupancy, objective);
  p.place(0, 0);  // web on h0
  const topo::NodeId db = 1;
  const double rest = Estimator::rest_bound(p, db);
  const Estimate same_host = Estimator::candidate_estimate(p, db, 0, rest);
  const Estimate same_rack = Estimator::candidate_estimate(p, db, 1, rest);
  const Estimate cross_rack = Estimator::candidate_estimate(p, db, 2, rest);
  // Pipe web--db: 0, 200, 400 by distance; the db--data term is equal
  // across candidates (data can join db anywhere).
  EXPECT_LT(same_host.ubw, same_rack.ubw);
  EXPECT_LT(same_rack.ubw, cross_rack.ubw);
  EXPECT_NEAR(same_rack.ubw - same_host.ubw, 200.0, 1e-9);
  EXPECT_NEAR(cross_rack.ubw - same_rack.ubw, 200.0, 1e-9);
}

TEST(EstimatorTest, CandidateEstimateSeesResidualForNeighbors) {
  // Placing a big node on a tight host makes its future neighbor unable to
  // join it there; the estimate must charge that pipe.
  topo::TopologyBuilder builder;
  builder.add_vm("big", {6.0, 1.0, 0.0});
  builder.add_vm("next", {4.0, 1.0, 0.0});
  builder.connect("big", "next", 100.0);
  const auto app = builder.build();
  const auto datacenter = small_dc(2, 2);  // hosts have 8 cores
  const dc::Occupancy occupancy(datacenter);
  const Objective objective(app, datacenter, SearchConfig{});
  const PartialPlacement p(app, occupancy, objective);
  const double rest = Estimator::rest_bound(p, 0);
  const Estimate est = Estimator::candidate_estimate(p, 0, 0, rest);
  // next (4 cores) cannot join big (6) on an 8-core host: >= 2 links.
  EXPECT_GE(est.ubw, 200.0 - 1e-9);
}

TEST(EstimatorTest, ImaginaryCompletionEmptyWhenComplete) {
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const auto app = tiny_app();
  const Objective objective(app, datacenter, SearchConfig{});
  PartialPlacement p(app, occupancy, objective);
  p.place(0, 0);
  p.place(1, 0);
  p.place(2, 0);
  const Estimate est = Estimator::imaginary_completion(p);
  EXPECT_DOUBLE_EQ(est.ubw, 0.0);
  EXPECT_DOUBLE_EQ(est.uc, 0.0);
}

TEST(EstimatorTest, ImaginaryCompletionChargesForcedSeparation) {
  topo::TopologyBuilder builder;
  builder.add_vm("a", {1.0, 1.0, 0.0});
  builder.add_vm("b", {1.0, 1.0, 0.0});
  builder.connect("a", "b", 100.0);
  builder.add_zone("z", topo::DiversityLevel::kHost,
                   std::vector<std::string>{"a", "b"});
  const auto app = builder.build();
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const Objective objective(app, datacenter, SearchConfig{});
  const PartialPlacement p(app, occupancy, objective);
  const Estimate est = Estimator::imaginary_completion(p);
  // a and b can never share a host: at least 2 links for the 100 pipe.
  EXPECT_GE(est.ubw, 200.0 - 1e-9);
  EXPECT_DOUBLE_EQ(est.uc, 0.0);  // imaginary hosts are free
}

TEST(EstimatorTest, ImaginaryCompletionPrefersCoLocation) {
  const auto datacenter = small_dc(2, 2);
  const dc::Occupancy occupancy(datacenter);
  const auto app = tiny_app();  // no zones; everything fits one host
  const Objective objective(app, datacenter, SearchConfig{});
  const PartialPlacement p(app, occupancy, objective);
  const Estimate est = Estimator::imaginary_completion(p);
  // All three nodes can gather on one imaginary host: nothing charged.
  EXPECT_DOUBLE_EQ(est.ubw, 0.0);
}

TEST(EstimatorTest, AdmissibleBoundNeverExceedsOptimum) {
  // The PartialPlacement bound (used by BA*) must stay below the true
  // optimal completion cost found by exhaustive search.
  util::Rng rng(4242);
  int checked = 0;
  for (int trial = 0; trial < 25; ++trial) {
    const auto datacenter = small_dc(2, 2);
    const dc::Occupancy occupancy(datacenter);
    const auto app = random_app(rng, 4);
    const Objective objective(app, datacenter, SearchConfig{});
    const PartialPlacement p(app, occupancy, objective);
    const BruteForceResult best = brute_force_optimal(p, false);
    if (!best.feasible) continue;
    ++checked;
    EXPECT_LE(p.utility_bound(), best.utility + 1e-9) << "trial " << trial;
  }
  EXPECT_GT(checked, 10);
}

TEST(EstimatorTest, AdmissibleBoundHoldsMidSearch) {
  util::Rng rng(515);
  int checked = 0;
  for (int trial = 0; trial < 25; ++trial) {
    const auto datacenter = small_dc(2, 2);
    const dc::Occupancy occupancy(datacenter);
    const auto app = random_app(rng, 4);
    const Objective objective(app, datacenter, SearchConfig{});
    PartialPlacement p(app, occupancy, objective);
    // Place the first node somewhere feasible, then check the bound of the
    // resulting partial state against its own optimal completion.
    std::vector<dc::HostId> candidates;
    for (dc::HostId h = 0; h < datacenter.host_count(); ++h) {
      if (p.can_place(0, h)) candidates.push_back(h);
    }
    if (candidates.empty()) continue;
    p.place(0, candidates[static_cast<std::size_t>(
                   rng.next_below(candidates.size()))]);
    const BruteForceResult best = brute_force_optimal(p, false);
    if (!best.feasible) continue;
    ++checked;
    EXPECT_LE(p.utility_bound(), best.utility + 1e-9) << "trial " << trial;
  }
  EXPECT_GT(checked, 10);
}

}  // namespace
}  // namespace ostro::core
