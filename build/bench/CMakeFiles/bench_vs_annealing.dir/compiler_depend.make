# Empty compiler generated dependencies file for bench_vs_annealing.
# This may be replaced when dependencies are built.
