file(REMOVE_RECURSE
  "CMakeFiles/bench_vs_annealing.dir/bench_vs_annealing.cpp.o"
  "CMakeFiles/bench_vs_annealing.dir/bench_vs_annealing.cpp.o.d"
  "bench_vs_annealing"
  "bench_vs_annealing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vs_annealing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
