file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_theta.dir/bench_ablation_theta.cpp.o"
  "CMakeFiles/bench_ablation_theta.dir/bench_ablation_theta.cpp.o.d"
  "bench_ablation_theta"
  "bench_ablation_theta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_theta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
