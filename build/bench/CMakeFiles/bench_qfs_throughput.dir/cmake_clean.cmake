file(REMOVE_RECURSE
  "CMakeFiles/bench_qfs_throughput.dir/bench_qfs_throughput.cpp.o"
  "CMakeFiles/bench_qfs_throughput.dir/bench_qfs_throughput.cpp.o.d"
  "bench_qfs_throughput"
  "bench_qfs_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qfs_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
