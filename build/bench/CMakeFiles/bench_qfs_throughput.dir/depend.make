# Empty dependencies file for bench_qfs_throughput.
# This may be replaced when dependencies are built.
