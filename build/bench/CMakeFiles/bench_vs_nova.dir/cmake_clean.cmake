file(REMOVE_RECURSE
  "CMakeFiles/bench_vs_nova.dir/bench_vs_nova.cpp.o"
  "CMakeFiles/bench_vs_nova.dir/bench_vs_nova.cpp.o.d"
  "bench_vs_nova"
  "bench_vs_nova.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vs_nova.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
