# Empty dependencies file for bench_vs_nova.
# This may be replaced when dependencies are built.
