file(REMOVE_RECURSE
  "CMakeFiles/heat_template.dir/heat_template.cpp.o"
  "CMakeFiles/heat_template.dir/heat_template.cpp.o.d"
  "heat_template"
  "heat_template.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat_template.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
