# Empty compiler generated dependencies file for heat_template.
# This may be replaced when dependencies are built.
