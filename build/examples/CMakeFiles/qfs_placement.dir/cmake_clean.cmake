file(REMOVE_RECURSE
  "CMakeFiles/qfs_placement.dir/qfs_placement.cpp.o"
  "CMakeFiles/qfs_placement.dir/qfs_placement.cpp.o.d"
  "qfs_placement"
  "qfs_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qfs_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
