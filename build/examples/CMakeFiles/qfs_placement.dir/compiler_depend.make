# Empty compiler generated dependencies file for qfs_placement.
# This may be replaced when dependencies are built.
