file(REMOVE_RECURSE
  "CMakeFiles/multi_datacenter.dir/multi_datacenter.cpp.o"
  "CMakeFiles/multi_datacenter.dir/multi_datacenter.cpp.o.d"
  "multi_datacenter"
  "multi_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
