# Empty dependencies file for multi_datacenter.
# This may be replaced when dependencies are built.
