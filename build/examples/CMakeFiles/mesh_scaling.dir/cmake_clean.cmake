file(REMOVE_RECURSE
  "CMakeFiles/mesh_scaling.dir/mesh_scaling.cpp.o"
  "CMakeFiles/mesh_scaling.dir/mesh_scaling.cpp.o.d"
  "mesh_scaling"
  "mesh_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
