# Empty compiler generated dependencies file for mesh_scaling.
# This may be replaced when dependencies are built.
