
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/args_test.cpp" "tests/CMakeFiles/util_tests.dir/util/args_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/args_test.cpp.o.d"
  "/root/repo/tests/util/json_test.cpp" "tests/CMakeFiles/util_tests.dir/util/json_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/json_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/util_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/util_tests.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/string_util_test.cpp" "tests/CMakeFiles/util_tests.dir/util/string_util_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/string_util_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/util_tests.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/table_test.cpp.o.d"
  "/root/repo/tests/util/thread_pool_test.cpp" "tests/CMakeFiles/util_tests.dir/util/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/thread_pool_test.cpp.o.d"
  "/root/repo/tests/util/timer_test.cpp" "tests/CMakeFiles/util_tests.dir/util/timer_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/timer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ostro_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/openstack/CMakeFiles/ostro_openstack.dir/DependInfo.cmake"
  "/root/repo/build/src/qfs/CMakeFiles/ostro_qfs.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ostro_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ostro_net.dir/DependInfo.cmake"
  "/root/repo/build/src/datacenter/CMakeFiles/ostro_datacenter.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ostro_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ostro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
