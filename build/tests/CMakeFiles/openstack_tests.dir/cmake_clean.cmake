file(REMOVE_RECURSE
  "CMakeFiles/openstack_tests.dir/openstack/extensions_flow_test.cpp.o"
  "CMakeFiles/openstack_tests.dir/openstack/extensions_flow_test.cpp.o.d"
  "CMakeFiles/openstack_tests.dir/openstack/heat_engine_test.cpp.o"
  "CMakeFiles/openstack_tests.dir/openstack/heat_engine_test.cpp.o.d"
  "CMakeFiles/openstack_tests.dir/openstack/heat_template_test.cpp.o"
  "CMakeFiles/openstack_tests.dir/openstack/heat_template_test.cpp.o.d"
  "CMakeFiles/openstack_tests.dir/openstack/nova_test.cpp.o"
  "CMakeFiles/openstack_tests.dir/openstack/nova_test.cpp.o.d"
  "CMakeFiles/openstack_tests.dir/openstack/wrapper_test.cpp.o"
  "CMakeFiles/openstack_tests.dir/openstack/wrapper_test.cpp.o.d"
  "openstack_tests"
  "openstack_tests.pdb"
  "openstack_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openstack_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
