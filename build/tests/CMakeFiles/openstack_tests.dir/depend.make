# Empty dependencies file for openstack_tests.
# This may be replaced when dependencies are built.
