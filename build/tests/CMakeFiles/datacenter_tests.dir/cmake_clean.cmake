file(REMOVE_RECURSE
  "CMakeFiles/datacenter_tests.dir/datacenter/datacenter_test.cpp.o"
  "CMakeFiles/datacenter_tests.dir/datacenter/datacenter_test.cpp.o.d"
  "CMakeFiles/datacenter_tests.dir/datacenter/dc_io_test.cpp.o"
  "CMakeFiles/datacenter_tests.dir/datacenter/dc_io_test.cpp.o.d"
  "CMakeFiles/datacenter_tests.dir/datacenter/dot_test.cpp.o"
  "CMakeFiles/datacenter_tests.dir/datacenter/dot_test.cpp.o.d"
  "CMakeFiles/datacenter_tests.dir/datacenter/occupancy_test.cpp.o"
  "CMakeFiles/datacenter_tests.dir/datacenter/occupancy_test.cpp.o.d"
  "CMakeFiles/datacenter_tests.dir/datacenter/report_test.cpp.o"
  "CMakeFiles/datacenter_tests.dir/datacenter/report_test.cpp.o.d"
  "datacenter_tests"
  "datacenter_tests.pdb"
  "datacenter_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
