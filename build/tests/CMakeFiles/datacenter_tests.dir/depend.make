# Empty dependencies file for datacenter_tests.
# This may be replaced when dependencies are built.
