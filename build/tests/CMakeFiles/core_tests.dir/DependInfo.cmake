
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/annealing_test.cpp" "tests/CMakeFiles/core_tests.dir/core/annealing_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/annealing_test.cpp.o.d"
  "/root/repo/tests/core/astar_stats_test.cpp" "tests/CMakeFiles/core_tests.dir/core/astar_stats_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/astar_stats_test.cpp.o.d"
  "/root/repo/tests/core/astar_test.cpp" "tests/CMakeFiles/core_tests.dir/core/astar_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/astar_test.cpp.o.d"
  "/root/repo/tests/core/brute_force_test.cpp" "tests/CMakeFiles/core_tests.dir/core/brute_force_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/brute_force_test.cpp.o.d"
  "/root/repo/tests/core/candidates_test.cpp" "tests/CMakeFiles/core_tests.dir/core/candidates_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/candidates_test.cpp.o.d"
  "/root/repo/tests/core/dba_test.cpp" "tests/CMakeFiles/core_tests.dir/core/dba_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/dba_test.cpp.o.d"
  "/root/repo/tests/core/estimator_test.cpp" "tests/CMakeFiles/core_tests.dir/core/estimator_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/estimator_test.cpp.o.d"
  "/root/repo/tests/core/extensions_test.cpp" "tests/CMakeFiles/core_tests.dir/core/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/extensions_test.cpp.o.d"
  "/root/repo/tests/core/greedy_test.cpp" "tests/CMakeFiles/core_tests.dir/core/greedy_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/greedy_test.cpp.o.d"
  "/root/repo/tests/core/incremental_test.cpp" "tests/CMakeFiles/core_tests.dir/core/incremental_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/incremental_test.cpp.o.d"
  "/root/repo/tests/core/multilevel_zone_test.cpp" "tests/CMakeFiles/core_tests.dir/core/multilevel_zone_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/multilevel_zone_test.cpp.o.d"
  "/root/repo/tests/core/objective_test.cpp" "tests/CMakeFiles/core_tests.dir/core/objective_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/objective_test.cpp.o.d"
  "/root/repo/tests/core/partial_test.cpp" "tests/CMakeFiles/core_tests.dir/core/partial_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/partial_test.cpp.o.d"
  "/root/repo/tests/core/placement_io_test.cpp" "tests/CMakeFiles/core_tests.dir/core/placement_io_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/placement_io_test.cpp.o.d"
  "/root/repo/tests/core/property_test.cpp" "tests/CMakeFiles/core_tests.dir/core/property_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/property_test.cpp.o.d"
  "/root/repo/tests/core/scheduler_test.cpp" "tests/CMakeFiles/core_tests.dir/core/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/scheduler_test.cpp.o.d"
  "/root/repo/tests/core/symmetry_test.cpp" "tests/CMakeFiles/core_tests.dir/core/symmetry_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/symmetry_test.cpp.o.d"
  "/root/repo/tests/core/verify_test.cpp" "tests/CMakeFiles/core_tests.dir/core/verify_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/verify_test.cpp.o.d"
  "/root/repo/tests/core/wan_property_test.cpp" "tests/CMakeFiles/core_tests.dir/core/wan_property_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/wan_property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ostro_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/openstack/CMakeFiles/ostro_openstack.dir/DependInfo.cmake"
  "/root/repo/build/src/qfs/CMakeFiles/ostro_qfs.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ostro_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ostro_net.dir/DependInfo.cmake"
  "/root/repo/build/src/datacenter/CMakeFiles/ostro_datacenter.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ostro_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ostro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
