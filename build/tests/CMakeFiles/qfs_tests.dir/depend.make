# Empty dependencies file for qfs_tests.
# This may be replaced when dependencies are built.
