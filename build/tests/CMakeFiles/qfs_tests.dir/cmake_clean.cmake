file(REMOVE_RECURSE
  "CMakeFiles/qfs_tests.dir/qfs/qfs_test.cpp.o"
  "CMakeFiles/qfs_tests.dir/qfs/qfs_test.cpp.o.d"
  "qfs_tests"
  "qfs_tests.pdb"
  "qfs_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qfs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
