# Empty compiler generated dependencies file for ostro_cli.
# This may be replaced when dependencies are built.
