file(REMOVE_RECURSE
  "CMakeFiles/ostro_cli.dir/ostro_cli.cpp.o"
  "CMakeFiles/ostro_cli.dir/ostro_cli.cpp.o.d"
  "ostro"
  "ostro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ostro_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
