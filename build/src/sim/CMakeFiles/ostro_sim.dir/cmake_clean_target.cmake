file(REMOVE_RECURSE
  "libostro_sim.a"
)
