# Empty dependencies file for ostro_sim.
# This may be replaced when dependencies are built.
