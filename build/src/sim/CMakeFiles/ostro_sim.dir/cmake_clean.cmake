file(REMOVE_RECURSE
  "CMakeFiles/ostro_sim.dir/clusters.cpp.o"
  "CMakeFiles/ostro_sim.dir/clusters.cpp.o.d"
  "CMakeFiles/ostro_sim.dir/experiment.cpp.o"
  "CMakeFiles/ostro_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/ostro_sim.dir/workloads.cpp.o"
  "CMakeFiles/ostro_sim.dir/workloads.cpp.o.d"
  "libostro_sim.a"
  "libostro_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ostro_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
