
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/clusters.cpp" "src/sim/CMakeFiles/ostro_sim.dir/clusters.cpp.o" "gcc" "src/sim/CMakeFiles/ostro_sim.dir/clusters.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/sim/CMakeFiles/ostro_sim.dir/experiment.cpp.o" "gcc" "src/sim/CMakeFiles/ostro_sim.dir/experiment.cpp.o.d"
  "/root/repo/src/sim/workloads.cpp" "src/sim/CMakeFiles/ostro_sim.dir/workloads.cpp.o" "gcc" "src/sim/CMakeFiles/ostro_sim.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ostro_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ostro_net.dir/DependInfo.cmake"
  "/root/repo/build/src/datacenter/CMakeFiles/ostro_datacenter.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ostro_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ostro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
