# Empty dependencies file for ostro_util.
# This may be replaced when dependencies are built.
