file(REMOVE_RECURSE
  "CMakeFiles/ostro_util.dir/args.cpp.o"
  "CMakeFiles/ostro_util.dir/args.cpp.o.d"
  "CMakeFiles/ostro_util.dir/json.cpp.o"
  "CMakeFiles/ostro_util.dir/json.cpp.o.d"
  "CMakeFiles/ostro_util.dir/logging.cpp.o"
  "CMakeFiles/ostro_util.dir/logging.cpp.o.d"
  "CMakeFiles/ostro_util.dir/rng.cpp.o"
  "CMakeFiles/ostro_util.dir/rng.cpp.o.d"
  "CMakeFiles/ostro_util.dir/stats.cpp.o"
  "CMakeFiles/ostro_util.dir/stats.cpp.o.d"
  "CMakeFiles/ostro_util.dir/string_util.cpp.o"
  "CMakeFiles/ostro_util.dir/string_util.cpp.o.d"
  "CMakeFiles/ostro_util.dir/table.cpp.o"
  "CMakeFiles/ostro_util.dir/table.cpp.o.d"
  "CMakeFiles/ostro_util.dir/thread_pool.cpp.o"
  "CMakeFiles/ostro_util.dir/thread_pool.cpp.o.d"
  "libostro_util.a"
  "libostro_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ostro_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
