file(REMOVE_RECURSE
  "libostro_util.a"
)
