file(REMOVE_RECURSE
  "CMakeFiles/ostro_net.dir/maxmin.cpp.o"
  "CMakeFiles/ostro_net.dir/maxmin.cpp.o.d"
  "CMakeFiles/ostro_net.dir/reservation.cpp.o"
  "CMakeFiles/ostro_net.dir/reservation.cpp.o.d"
  "libostro_net.a"
  "libostro_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ostro_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
