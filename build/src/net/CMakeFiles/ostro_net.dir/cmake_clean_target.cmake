file(REMOVE_RECURSE
  "libostro_net.a"
)
