# Empty compiler generated dependencies file for ostro_net.
# This may be replaced when dependencies are built.
