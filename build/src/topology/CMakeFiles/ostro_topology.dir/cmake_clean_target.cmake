file(REMOVE_RECURSE
  "libostro_topology.a"
)
