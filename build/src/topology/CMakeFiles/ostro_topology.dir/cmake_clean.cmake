file(REMOVE_RECURSE
  "CMakeFiles/ostro_topology.dir/app_topology.cpp.o"
  "CMakeFiles/ostro_topology.dir/app_topology.cpp.o.d"
  "CMakeFiles/ostro_topology.dir/resources.cpp.o"
  "CMakeFiles/ostro_topology.dir/resources.cpp.o.d"
  "libostro_topology.a"
  "libostro_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ostro_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
