# Empty compiler generated dependencies file for ostro_topology.
# This may be replaced when dependencies are built.
