file(REMOVE_RECURSE
  "libostro_datacenter.a"
)
