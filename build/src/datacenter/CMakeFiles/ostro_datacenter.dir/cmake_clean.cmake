file(REMOVE_RECURSE
  "CMakeFiles/ostro_datacenter.dir/datacenter.cpp.o"
  "CMakeFiles/ostro_datacenter.dir/datacenter.cpp.o.d"
  "CMakeFiles/ostro_datacenter.dir/dc_io.cpp.o"
  "CMakeFiles/ostro_datacenter.dir/dc_io.cpp.o.d"
  "CMakeFiles/ostro_datacenter.dir/dot.cpp.o"
  "CMakeFiles/ostro_datacenter.dir/dot.cpp.o.d"
  "CMakeFiles/ostro_datacenter.dir/occupancy.cpp.o"
  "CMakeFiles/ostro_datacenter.dir/occupancy.cpp.o.d"
  "CMakeFiles/ostro_datacenter.dir/report.cpp.o"
  "CMakeFiles/ostro_datacenter.dir/report.cpp.o.d"
  "libostro_datacenter.a"
  "libostro_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ostro_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
