
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datacenter/datacenter.cpp" "src/datacenter/CMakeFiles/ostro_datacenter.dir/datacenter.cpp.o" "gcc" "src/datacenter/CMakeFiles/ostro_datacenter.dir/datacenter.cpp.o.d"
  "/root/repo/src/datacenter/dc_io.cpp" "src/datacenter/CMakeFiles/ostro_datacenter.dir/dc_io.cpp.o" "gcc" "src/datacenter/CMakeFiles/ostro_datacenter.dir/dc_io.cpp.o.d"
  "/root/repo/src/datacenter/dot.cpp" "src/datacenter/CMakeFiles/ostro_datacenter.dir/dot.cpp.o" "gcc" "src/datacenter/CMakeFiles/ostro_datacenter.dir/dot.cpp.o.d"
  "/root/repo/src/datacenter/occupancy.cpp" "src/datacenter/CMakeFiles/ostro_datacenter.dir/occupancy.cpp.o" "gcc" "src/datacenter/CMakeFiles/ostro_datacenter.dir/occupancy.cpp.o.d"
  "/root/repo/src/datacenter/report.cpp" "src/datacenter/CMakeFiles/ostro_datacenter.dir/report.cpp.o" "gcc" "src/datacenter/CMakeFiles/ostro_datacenter.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/ostro_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ostro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
