# Empty dependencies file for ostro_datacenter.
# This may be replaced when dependencies are built.
