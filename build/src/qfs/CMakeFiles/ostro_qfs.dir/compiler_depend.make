# Empty compiler generated dependencies file for ostro_qfs.
# This may be replaced when dependencies are built.
