file(REMOVE_RECURSE
  "CMakeFiles/ostro_qfs.dir/qfs.cpp.o"
  "CMakeFiles/ostro_qfs.dir/qfs.cpp.o.d"
  "libostro_qfs.a"
  "libostro_qfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ostro_qfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
