file(REMOVE_RECURSE
  "libostro_qfs.a"
)
