file(REMOVE_RECURSE
  "CMakeFiles/ostro_openstack.dir/heat_engine.cpp.o"
  "CMakeFiles/ostro_openstack.dir/heat_engine.cpp.o.d"
  "CMakeFiles/ostro_openstack.dir/heat_template.cpp.o"
  "CMakeFiles/ostro_openstack.dir/heat_template.cpp.o.d"
  "CMakeFiles/ostro_openstack.dir/nova.cpp.o"
  "CMakeFiles/ostro_openstack.dir/nova.cpp.o.d"
  "CMakeFiles/ostro_openstack.dir/ostro_wrapper.cpp.o"
  "CMakeFiles/ostro_openstack.dir/ostro_wrapper.cpp.o.d"
  "libostro_openstack.a"
  "libostro_openstack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ostro_openstack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
