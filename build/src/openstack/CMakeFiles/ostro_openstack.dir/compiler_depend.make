# Empty compiler generated dependencies file for ostro_openstack.
# This may be replaced when dependencies are built.
