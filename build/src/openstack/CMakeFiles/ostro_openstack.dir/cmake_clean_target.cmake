file(REMOVE_RECURSE
  "libostro_openstack.a"
)
