
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/annealing.cpp" "src/core/CMakeFiles/ostro_core.dir/annealing.cpp.o" "gcc" "src/core/CMakeFiles/ostro_core.dir/annealing.cpp.o.d"
  "/root/repo/src/core/astar.cpp" "src/core/CMakeFiles/ostro_core.dir/astar.cpp.o" "gcc" "src/core/CMakeFiles/ostro_core.dir/astar.cpp.o.d"
  "/root/repo/src/core/brute_force.cpp" "src/core/CMakeFiles/ostro_core.dir/brute_force.cpp.o" "gcc" "src/core/CMakeFiles/ostro_core.dir/brute_force.cpp.o.d"
  "/root/repo/src/core/candidates.cpp" "src/core/CMakeFiles/ostro_core.dir/candidates.cpp.o" "gcc" "src/core/CMakeFiles/ostro_core.dir/candidates.cpp.o.d"
  "/root/repo/src/core/estimator.cpp" "src/core/CMakeFiles/ostro_core.dir/estimator.cpp.o" "gcc" "src/core/CMakeFiles/ostro_core.dir/estimator.cpp.o.d"
  "/root/repo/src/core/greedy.cpp" "src/core/CMakeFiles/ostro_core.dir/greedy.cpp.o" "gcc" "src/core/CMakeFiles/ostro_core.dir/greedy.cpp.o.d"
  "/root/repo/src/core/objective.cpp" "src/core/CMakeFiles/ostro_core.dir/objective.cpp.o" "gcc" "src/core/CMakeFiles/ostro_core.dir/objective.cpp.o.d"
  "/root/repo/src/core/partial.cpp" "src/core/CMakeFiles/ostro_core.dir/partial.cpp.o" "gcc" "src/core/CMakeFiles/ostro_core.dir/partial.cpp.o.d"
  "/root/repo/src/core/placement_io.cpp" "src/core/CMakeFiles/ostro_core.dir/placement_io.cpp.o" "gcc" "src/core/CMakeFiles/ostro_core.dir/placement_io.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/ostro_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/ostro_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/symmetry.cpp" "src/core/CMakeFiles/ostro_core.dir/symmetry.cpp.o" "gcc" "src/core/CMakeFiles/ostro_core.dir/symmetry.cpp.o.d"
  "/root/repo/src/core/types.cpp" "src/core/CMakeFiles/ostro_core.dir/types.cpp.o" "gcc" "src/core/CMakeFiles/ostro_core.dir/types.cpp.o.d"
  "/root/repo/src/core/verify.cpp" "src/core/CMakeFiles/ostro_core.dir/verify.cpp.o" "gcc" "src/core/CMakeFiles/ostro_core.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ostro_net.dir/DependInfo.cmake"
  "/root/repo/build/src/datacenter/CMakeFiles/ostro_datacenter.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ostro_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ostro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
