file(REMOVE_RECURSE
  "libostro_core.a"
)
