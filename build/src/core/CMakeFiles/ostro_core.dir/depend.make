# Empty dependencies file for ostro_core.
# This may be replaced when dependencies are built.
