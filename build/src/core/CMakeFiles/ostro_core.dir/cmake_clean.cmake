file(REMOVE_RECURSE
  "CMakeFiles/ostro_core.dir/annealing.cpp.o"
  "CMakeFiles/ostro_core.dir/annealing.cpp.o.d"
  "CMakeFiles/ostro_core.dir/astar.cpp.o"
  "CMakeFiles/ostro_core.dir/astar.cpp.o.d"
  "CMakeFiles/ostro_core.dir/brute_force.cpp.o"
  "CMakeFiles/ostro_core.dir/brute_force.cpp.o.d"
  "CMakeFiles/ostro_core.dir/candidates.cpp.o"
  "CMakeFiles/ostro_core.dir/candidates.cpp.o.d"
  "CMakeFiles/ostro_core.dir/estimator.cpp.o"
  "CMakeFiles/ostro_core.dir/estimator.cpp.o.d"
  "CMakeFiles/ostro_core.dir/greedy.cpp.o"
  "CMakeFiles/ostro_core.dir/greedy.cpp.o.d"
  "CMakeFiles/ostro_core.dir/objective.cpp.o"
  "CMakeFiles/ostro_core.dir/objective.cpp.o.d"
  "CMakeFiles/ostro_core.dir/partial.cpp.o"
  "CMakeFiles/ostro_core.dir/partial.cpp.o.d"
  "CMakeFiles/ostro_core.dir/placement_io.cpp.o"
  "CMakeFiles/ostro_core.dir/placement_io.cpp.o.d"
  "CMakeFiles/ostro_core.dir/scheduler.cpp.o"
  "CMakeFiles/ostro_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/ostro_core.dir/symmetry.cpp.o"
  "CMakeFiles/ostro_core.dir/symmetry.cpp.o.d"
  "CMakeFiles/ostro_core.dir/types.cpp.o"
  "CMakeFiles/ostro_core.dir/types.cpp.o.d"
  "CMakeFiles/ostro_core.dir/verify.cpp.o"
  "CMakeFiles/ostro_core.dir/verify.cpp.o.d"
  "libostro_core.a"
  "libostro_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ostro_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
