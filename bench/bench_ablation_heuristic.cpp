// Ablation for the search heuristics: BA* in its pure admissible best-first
// form vs the EG-estimate-guided depth-first ordering that DBA* uses (the
// paper's GetHeuristic of Section III-A-2 driving the dive order), crossed
// with the precomputed prune labels (SearchConfig::use_prune_labels) that
// tighten the admissible bounds.  The guided anytime mode reaches a good
// placement orders of magnitude sooner; pure BA* certifies optimality but
// pays for it in expansions, and the labels cut what it pays.
#include <stdexcept>
#include <vector>

#include "common.h"

int main(int argc, char** argv) {
  using namespace ostro;
  util::ArgParser args(
      "bench_ablation_heuristic",
      "Ablation: admissible best-first vs estimate-guided depth-first");
  bench::add_common_flags(args);
  args.add_string("sizes", "10,15,20", "multi-tier sizes (multiples of 5)");
  args.add_string("use-prune-labels", "both",
                  "prune labels for the admissible bounds: on | off | both "
                  "(ablate: one row per setting)");
  if (!args.parse(argc, argv)) return 0;
  bench::apply_metrics_flags(args);

  std::vector<bool> label_modes;
  const std::string labels_arg = args.get_string("use-prune-labels");
  if (labels_arg == "on") {
    label_modes = {true};
  } else if (labels_arg == "off") {
    label_modes = {false};
  } else if (labels_arg == "both") {
    label_modes = {false, true};
  } else {
    throw std::invalid_argument("--use-prune-labels must be on|off|both, got " +
                                labels_arg);
  }

  const auto datacenter = sim::make_testbed();
  util::TablePrinter table({"Size", "Search", "Labels", "Utility",
                            "Bandwidth (Mbps)", "Paths expanded",
                            "Run-time (sec)", "Truncated"});
  for (const int vms : util::parse_int_list(args.get_string("sizes"))) {
    for (const bool guided : {false, true}) {
      for (const bool labels : label_modes) {
        util::Samples utility, bw, expanded, runtime;
        int truncated = 0;
        for (int run = 0; run < args.get_int("runs"); ++run) {
          util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")) +
                        static_cast<std::uint64_t>(run));
          const dc::Occupancy occupancy(datacenter);
          const auto app = sim::make_multitier(
              vms, sim::RequirementMix::kHeterogeneous, rng);
          core::SearchConfig config;
          config.greedy_estimate_in_astar = guided;
          config.use_prune_labels = labels;
          const core::Placement placement = core::place_topology(
              occupancy, app, core::Algorithm::kBaStar, config, nullptr,
              nullptr);
          if (!placement.feasible) continue;
          utility.add(placement.utility);
          bw.add(placement.reserved_bandwidth_mbps);
          expanded.add(static_cast<double>(placement.stats.paths_expanded));
          runtime.add(placement.stats.runtime_seconds);
          if (placement.stats.truncated) ++truncated;
        }
        table.add_row({std::to_string(vms),
                       guided ? "estimate-guided DFS" : "admissible best-first",
                       labels ? "on" : "off", bench::mean_pm(utility, 4),
                       bench::mean_pm(bw, 0), bench::mean_pm(expanded, 0),
                       bench::mean_pm(runtime, 3),
                       truncated > 0 ? util::format("%d runs", truncated)
                                     : "no"});
      }
    }
  }
  bench::emit(table, args,
              "BA* heuristic ablation (heterogeneous multi-tier on the idle "
              "testbed)");
  bench::emit_metrics(args);
  return 0;
}
