// Section IV-E of the paper: online adaptation.  A multi-tier application
// is deployed, then grown by ~10% additional small VMs on its first or
// second tier, and the updated topology is re-placed incrementally.  Three
// strategies are compared:
//   - "pinned"     : every existing node keeps its host (the cheapest
//                    update; can be infeasible when the old placement left
//                    no uplink headroom near the grown tier);
//   - "neighbors"  : nodes with a pipe to a new VM may move, the rest stay
//                    (the paper's observation that growth "can trigger the
//                    re-positioning of previously placed nodes");
//   - "replan"     : nothing pinned; also reports how many of the old
//                    nodes moved ("it can in fact spread out to a large
//                    portion of the application nodes").
#include "common.h"

#include <unordered_set>

int main(int argc, char** argv) {
  using namespace ostro;
  util::ArgParser args("bench_online", "Section IV-E: online adaptation");
  bench::add_common_flags(args);
  args.add_int("vms", 200, "initial multi-tier size");
  args.add_int("racks", 150, "data-center racks");
  args.add_double("grow-percent", 10.0, "VMs added, % of initial size");
  args.add_double("delta-deadline", 0.5, "DBA* deadline for the re-place");
  if (!args.parse(argc, argv)) return 0;
  bench::apply_metrics_flags(args);

  const int vms = static_cast<int>(args.get_int("vms"));
  const int extra =
      std::max(1, static_cast<int>(static_cast<double>(vms) *
                                   args.get_double("grow-percent") / 100.0));
  const auto datacenter =
      sim::make_sim_datacenter(static_cast<int>(args.get_int("racks")));

  util::TablePrinter table({"Tier grown", "Strategy", "Feasible",
                            "Re-place time (sec)", "Moved old nodes"});
  for (const int tier : {0, 1}) {
    struct Agg {
      int feasible = 0, total = 0;
      util::Samples time, moved;
    };
    Agg pinned_agg, neighbors_agg, replan_agg;

    for (int run = 0; run < args.get_int("runs"); ++run) {
      util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")) +
                    static_cast<std::uint64_t>(run));
      dc::Occupancy occupancy(datacenter);
      sim::apply_sim_preload(occupancy, rng);
      const auto base =
          sim::make_multitier(vms, sim::RequirementMix::kHeterogeneous, rng);

      core::SearchConfig config;
      config.deadline_seconds = bench::dba_deadline_for(vms);
      const core::Placement first = core::place_topology(
          occupancy, base, core::Algorithm::kDbaStar, config, nullptr,
          nullptr);
      if (!first.feasible) continue;

      const auto grown = sim::grow_multitier(
          base, vms, extra, tier, sim::RequirementMix::kHeterogeneous, rng);

      // Nodes adjacent to any new VM (free to move in "neighbors" mode).
      std::unordered_set<topo::NodeId> near_growth;
      for (topo::NodeId v = static_cast<topo::NodeId>(base.node_count());
           v < grown.node_count(); ++v) {
        for (const auto& nb : grown.neighbors(v)) {
          if (nb.node < base.node_count()) near_growth.insert(nb.node);
        }
      }

      core::SearchConfig delta_config = config;
      delta_config.deadline_seconds = args.get_double("delta-deadline");

      const auto attempt = [&](Agg& agg, bool pin_all, bool pin_any) {
        net::Assignment pinned(grown.node_count(), dc::kInvalidHost);
        if (pin_any) {
          for (topo::NodeId v = 0; v < base.node_count(); ++v) {
            if (pin_all || near_growth.count(v) == 0) {
              pinned[v] = first.assignment[v];
            }
          }
        }
        const core::Placement placement = core::place_topology(
            occupancy, grown, core::Algorithm::kDbaStar, delta_config,
            pin_any ? &pinned : nullptr, nullptr);
        ++agg.total;
        if (!placement.feasible) return;
        ++agg.feasible;
        agg.time.add(placement.stats.runtime_seconds);
        int moved = 0;
        for (topo::NodeId v = 0; v < base.node_count(); ++v) {
          if (placement.assignment[v] != first.assignment[v]) ++moved;
        }
        agg.moved.add(moved);
      };
      attempt(pinned_agg, true, true);
      attempt(neighbors_agg, false, true);
      attempt(replan_agg, false, false);
    }

    const auto emit_row = [&](const char* strategy, const Agg& agg) {
      table.add_row({util::format("tier %d (+%d small VMs)", tier + 1, extra),
                     strategy,
                     util::format("%d/%d", agg.feasible, agg.total),
                     bench::mean_pm(agg.time, 3),
                     bench::mean_pm(agg.moved, 1)});
    };
    emit_row("pinned", pinned_agg);
    emit_row("neighbors free", neighbors_agg);
    emit_row("full replan", replan_agg);
  }
  bench::emit(table, args,
              util::format("Section IV-E: online adaptation (%d VMs +%.0f%%)",
                           vms, args.get_double("grow-percent")));
  bench::emit_metrics(args);
  return 0;
}
