// Concurrent placement service: thread sweep over a fixed batch of stacks.
//
// Measures the optimistic snapshot/plan/validate-commit protocol of
// core::PlacementService under load.  A fixed set of multi-tier stacks is
// pushed through one service by 1/2/4/8 client threads; each sweep point
// reports request throughput, commit rate, and the conflict/retry pressure
// of the commit gate (plus the mean writer-lock wait from the metrics
// registry).  With one thread the protocol is pure overhead on top of
// OstroScheduler::deploy, so the T=1 row doubles as the serial baseline.
// Writes BENCH_service.json for the perf trajectory tracking.
#include "common.h"

#include <fstream>

#include "core/service.h"
#include "util/thread_pool.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace ostro;
  util::ArgParser args("bench_service",
                       "concurrent placement-service thread sweep");
  bench::add_common_flags(args);
  args.add_int("stacks", 160, "total stacks per sweep point");
  args.add_int("stack-vms", 5, "VMs per stack");
  args.add_int("racks", 12, "data-center racks (8 hosts each)");
  args.add_flag("smoke", "tiny sizes for CI (overrides --stacks/--racks)");
  if (!args.parse(argc, argv)) return 0;
  bench::apply_metrics_flags(args);

  const bool smoke = args.flag("smoke");
  const int total_stacks =
      smoke ? 32 : static_cast<int>(args.get_int("stacks"));
  const int stack_vms = static_cast<int>(args.get_int("stack-vms"));
  const int racks = smoke ? 4 : static_cast<int>(args.get_int("racks"));
  const auto datacenter = sim::make_sim_datacenter(racks);

  // One shared batch of stacks so every sweep point places the same work.
  util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));
  std::vector<topo::AppTopology> stacks;
  stacks.reserve(static_cast<std::size_t>(total_stacks));
  for (int i = 0; i < total_stacks; ++i) {
    stacks.push_back(sim::make_multitier(
        stack_vms, sim::RequirementMix::kHomogeneous, rng));
  }

  core::SearchConfig config;
  config.threads = 1;  // client threads are the concurrency under test

  util::TablePrinter table({"Threads", "Requests/sec", "Committed",
                            "Conflicts", "Retries", "Wall (sec)"});
  util::JsonArray sweep;
  for (const int threads : {1, 2, 4, 8}) {
    core::OstroScheduler scheduler(datacenter, config);
    core::PlacementService service(scheduler);
    std::vector<core::ServiceResult> results(
        static_cast<std::size_t>(total_stacks));

    util::WallTimer timer;
    // run_workers (not bare std::thread): a place() exception propagates
    // to this call after every worker joined instead of std::terminate.
    util::run_workers(static_cast<std::size_t>(threads), [&](std::size_t t) {
      for (int i = static_cast<int>(t); i < total_stacks; i += threads) {
        const auto index = static_cast<std::size_t>(i);
        results[index] =
            service.place(stacks[index], core::Algorithm::kEg, config);
      }
    });
    const double wall = timer.elapsed_seconds();

    int committed = 0;
    std::uint64_t conflicts = 0, retries = 0;
    for (const core::ServiceResult& result : results) {
      if (result.placement.committed) ++committed;
      conflicts += result.conflicts;
      retries += result.retries;
    }
    const double rps = static_cast<double>(total_stacks) / wall;
    table.add_row({util::format("%d", threads), util::format("%.1f", rps),
                   util::format("%d/%d", committed, total_stacks),
                   util::format("%llu",
                                static_cast<unsigned long long>(conflicts)),
                   util::format("%llu",
                                static_cast<unsigned long long>(retries)),
                   util::format("%.3f", wall)});

    util::JsonObject point;
    point["threads"] = threads;
    point["requests_per_sec"] = rps;
    point["committed"] = committed;
    point["conflicts"] = static_cast<std::int64_t>(conflicts);
    point["retries"] = static_cast<std::int64_t>(retries);
    point["wall_seconds"] = wall;
    sweep.emplace_back(std::move(point));
  }
  bench::emit(table, args, "placement service thread sweep");

  util::JsonObject out;
  out["benchmark"] = "placement_service_thread_sweep";
  out["total_stacks"] = total_stacks;
  out["stack_vms"] = stack_vms;
  out["hosts"] = static_cast<int>(datacenter.host_count());
  out["sweep"] = std::move(sweep);
  std::ofstream file("BENCH_service.json");
  file << util::Json(std::move(out)).pretty() << '\n';

  bench::emit_metrics(args);
  return 0;
}
