// Figure 6 of the paper: the tradeoff between DBA*'s running-time budget T
// and the optimality of the placement.  A 200-VM heterogeneous multi-tier
// application is placed on the 2400-host simulated data center with the
// Table IV non-uniform availability; each T produces one point (reserved
// bandwidth, newly used hosts).  The paper's shape: bandwidth drops quickly
// as T grows past ~2x EG's run time, then flattens (diminishing returns).
#include "common.h"

int main(int argc, char** argv) {
  using namespace ostro;
  util::ArgParser args("bench_fig6", "Figure 6: DBA* deadline sweep");
  bench::add_common_flags(args);
  args.add_string("deadlines", "6,9,12,18,24,36",
                  "comma-separated T values in seconds");
  args.add_int("vms", 200, "multi-tier size");
  args.add_int("racks", 150, "data-center racks (16 hosts each)");
  if (!args.parse(argc, argv)) return 0;
  bench::apply_metrics_flags(args);

  const auto datacenter =
      sim::make_sim_datacenter(static_cast<int>(args.get_int("racks")));
  const auto deadlines = util::parse_int_list(args.get_string("deadlines"));

  util::TablePrinter table({"T (sec)", "Reserved bandwidth (Gbps)",
                            "Newly used hosts", "Actual run-time (sec)"});
  for (const int deadline : deadlines) {
    util::Samples bw, nh, rt;
    for (int run = 0; run < args.get_int("runs"); ++run) {
      util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")) +
                    static_cast<std::uint64_t>(run));
      dc::Occupancy occupancy(datacenter);
      sim::apply_sim_preload(occupancy, rng);
      const auto app =
          sim::make_multitier(static_cast<int>(args.get_int("vms")),
                              sim::RequirementMix::kHeterogeneous, rng);
      core::SearchConfig config;  // theta = 0.6 / 0.4 (Section IV-C)
      config.deadline_seconds = deadline;
      config.seed = static_cast<std::uint64_t>(args.get_int("seed")) +
                    static_cast<std::uint64_t>(run);
      const core::Placement placement = core::place_topology(
          occupancy, app, core::Algorithm::kDbaStar, config, nullptr,
          nullptr);
      if (!placement.feasible) {
        std::cerr << "T=" << deadline
                  << ": infeasible: " << placement.failure_reason << "\n";
        continue;
      }
      bw.add(placement.reserved_bandwidth_mbps / 1000.0);
      nh.add(placement.new_active_hosts);
      rt.add(placement.stats.runtime_seconds);
    }
    table.add_row({util::TablePrinter::cell(std::int64_t{deadline}),
                   bench::mean_pm(bw, 1), bench::mean_pm(nh, 1),
                   bench::mean_pm(rt, 1)});
  }
  bench::emit(table, args,
              util::format("Figure 6: DBA* T vs optimality (multi-tier %d "
                           "VMs, heterogeneous, non-uniform DC)",
                           static_cast<int>(args.get_int("vms"))));
  bench::emit_metrics(args);
  return 0;
}
