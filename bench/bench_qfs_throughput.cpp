// Extension of the paper's testbed experiment: the QFS client benchmark's
// achievable throughput under each algorithm's placement.  The paper argues
// qualitatively that bin-packing (EG_C-style) placements starve the
// network; this bench quantifies it by driving the write/read benchmark of
// the QFS simulator (src/qfs) over the max-min fair network model.
#include "common.h"

#include "qfs/qfs.h"

int main(int argc, char** argv) {
  using namespace ostro;
  util::ArgParser args("bench_qfs_throughput",
                       "QFS client throughput by placement algorithm");
  bench::add_common_flags(args);
  args.add_double("file-mb", 4096.0, "benchmark file size (MB)");
  args.add_double("offered", 16000.0, "aggregate offered load (Mbps)");
  args.add_int("replication", 2, "QFS replication factor");
  if (!args.parse(argc, argv)) return 0;
  bench::apply_metrics_flags(args);

  const auto datacenter = sim::make_testbed();
  const auto app = sim::make_qfs();

  util::TablePrinter table({"Algorithm", "Write agg (Mbps)",
                            "Write time (s)", "Read agg (Mbps)",
                            "Read time (s)", "Co-located flows"});
  for (const auto algorithm : bench::table_algorithms()) {
    util::Samples wr_rate, wr_time, rd_rate, rd_time, colocated;
    for (int run = 0; run < args.get_int("runs"); ++run) {
      dc::Occupancy occupancy(datacenter);
      util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")) +
                    static_cast<std::uint64_t>(run));
      sim::apply_testbed_preload(occupancy, rng);
      core::SearchConfig config;
      config.theta_bw = 0.99;
      config.theta_c = 0.01;
      config.deadline_seconds = 0.5;
      const core::Placement placement = core::place_topology(
          occupancy, app, algorithm, config, nullptr, nullptr);
      if (!placement.feasible || placement.bandwidth_overcommitted) {
        continue;  // EG_C may overcommit; no throughput run is meaningful
      }
      net::commit_placement(occupancy, app, placement.assignment);

      const qfs::QfsCluster cluster(app, placement.assignment, occupancy);
      const auto write = cluster.write_benchmark(
          args.get_double("file-mb"),
          static_cast<int>(args.get_int("replication")),
          args.get_double("offered"));
      const auto read = cluster.read_benchmark(args.get_double("file-mb"),
                                               args.get_double("offered"));
      wr_rate.add(write.aggregate_mbps);
      wr_time.add(write.completion_seconds);
      rd_rate.add(read.aggregate_mbps);
      rd_time.add(read.completion_seconds);
      colocated.add(static_cast<double>(write.colocated_flows));
    }
    table.add_row({core::to_string(algorithm), bench::mean_pm(wr_rate, 0),
                   bench::mean_pm(wr_time, 1), bench::mean_pm(rd_rate, 0),
                   bench::mean_pm(rd_time, 1), bench::mean_pm(colocated, 1)});
  }
  bench::emit(table, args,
              util::format("QFS benchmark throughput (file %.0f MB, "
                           "replication %d, non-uniform testbed)",
                           args.get_double("file-mb"),
                           static_cast<int>(args.get_int("replication"))));
  bench::emit_metrics(args);
  return 0;
}
