// Ablation for Section III-B-3: the diversity-zone symmetry reduction.
// BA* is run with and without the interchangeable-node ordering constraint
// on symmetric workloads (homogeneous multi-tier slices on the testbed);
// both must find the same utility, the reduced search should generate and
// expand fewer paths and finish faster.
#include "common.h"

int main(int argc, char** argv) {
  using namespace ostro;
  util::ArgParser args("bench_ablation_symmetry",
                       "Ablation: Section III-B-3 symmetry reduction in BA*");
  bench::add_common_flags(args);
  args.add_string("sizes", "10,15,20", "multi-tier sizes (multiples of 5)");
  if (!args.parse(argc, argv)) return 0;
  bench::apply_metrics_flags(args);

  const auto datacenter = sim::make_testbed();
  util::TablePrinter table({"Size", "Mode", "Utility", "Bandwidth (Mbps)",
                            "Paths generated", "Paths expanded",
                            "Run-time (sec)", "Truncated"});
  for (const int vms : util::parse_int_list(args.get_string("sizes"))) {
    for (const bool reduce : {true, false}) {
      util::Samples utility, bw, generated, expanded, runtime;
      int truncated = 0;
      for (int run = 0; run < args.get_int("runs"); ++run) {
        util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")) +
                      static_cast<std::uint64_t>(run));
        const dc::Occupancy occupancy(datacenter);
        const auto app =
            sim::make_multitier(vms, sim::RequirementMix::kHomogeneous, rng);
        core::SearchConfig config;
        config.symmetry_reduction = reduce;
        const core::Placement placement = core::place_topology(
            occupancy, app, core::Algorithm::kBaStar, config, nullptr,
            nullptr);
        if (!placement.feasible) continue;
        utility.add(placement.utility);
        bw.add(placement.reserved_bandwidth_mbps);
        generated.add(static_cast<double>(placement.stats.paths_generated));
        expanded.add(static_cast<double>(placement.stats.paths_expanded));
        runtime.add(placement.stats.runtime_seconds);
        if (placement.stats.truncated) ++truncated;
      }
      table.add_row({std::to_string(vms), reduce ? "reduced" : "plain",
                     bench::mean_pm(utility, 4), bench::mean_pm(bw, 0),
                     bench::mean_pm(generated, 0),
                     bench::mean_pm(expanded, 0),
                     bench::mean_pm(runtime, 3),
                     truncated > 0 ? util::format("%d runs", truncated)
                                   : "no"});
    }
  }
  bench::emit(table, args,
              "BA* with vs without diversity-zone symmetry reduction "
              "(homogeneous multi-tier on the idle testbed)");
  bench::emit_metrics(args);
  return 0;
}
