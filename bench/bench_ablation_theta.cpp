// Ablation for the objective weights (Section II-B-1 and the Table I
// follow-up where theta_c is raised from 0.01 to 0.4): sweep theta_c and
// show how EG and DBA* trade reserved bandwidth against newly activated
// hosts.  The paper observes that BA*/DBA* adjust their placement with
// theta while the pre-sorted greedy variants barely move.
#include "common.h"

int main(int argc, char** argv) {
  using namespace ostro;
  util::ArgParser args("bench_ablation_theta",
                       "Ablation: objective weight sweep on QFS");
  bench::add_common_flags(args);
  args.add_string("theta-c-percent", "1,10,40,75,95",
                  "theta_c values in percent");
  if (!args.parse(argc, argv)) return 0;
  bench::apply_metrics_flags(args);

  const auto datacenter = sim::make_testbed();
  const auto app = sim::make_qfs();

  util::TablePrinter table({"theta_c", "Algorithm", "Bandwidth (Mbps)",
                            "New active hosts", "Utility"});
  for (const int percent :
       util::parse_int_list(args.get_string("theta-c-percent"))) {
    for (const auto algorithm :
         {core::Algorithm::kEg, core::Algorithm::kDbaStar}) {
      util::Samples bw, nh, utility;
      for (int run = 0; run < args.get_int("runs"); ++run) {
        dc::Occupancy occupancy(datacenter);
        util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")) +
                      static_cast<std::uint64_t>(run));
        sim::apply_testbed_preload(occupancy, rng);
        core::SearchConfig config;
        config.theta_c = static_cast<double>(percent) / 100.0;
        config.theta_bw = 1.0 - config.theta_c;
        config.deadline_seconds = 0.5;
        const core::Placement placement = core::place_topology(
            occupancy, app, algorithm, config, nullptr, nullptr);
        if (!placement.feasible) continue;
        bw.add(placement.reserved_bandwidth_mbps);
        nh.add(placement.new_active_hosts);
        utility.add(placement.utility);
      }
      table.add_row({util::format("%.2f", percent / 100.0),
                     core::to_string(algorithm), bench::mean_pm(bw, 0),
                     bench::mean_pm(nh, 1), bench::mean_pm(utility, 4)});
    }
  }
  bench::emit(table, args,
              "theta sweep: bandwidth vs host-count tradeoff (QFS, "
              "non-uniform testbed)");
  bench::emit_metrics(args);
  return 0;
}
