// The abstract's headline comparison: Ostro's holistic placement vs the
// stock OpenStack path where Nova and Cinder handle every VM and volume
// request independently ("naive approaches").  Both paths deploy the same
// QoS-enhanced Heat template of the QFS application through the simulated
// control plane (src/openstack); the naive path uses the default
// filter/weigher schedulers, the Ostro path the Figure-1 wrapper.
#include "common.h"

#include "openstack/ostro_wrapper.h"

namespace {

std::string qfs_template() {
  using ostro::util::format;
  std::string resources;
  const auto add = [&](const std::string& entry) {
    if (!resources.empty()) resources += ",\n";
    resources += entry;
  };
  add(R"("meta": {"type": "OS::Nova::Server", "properties": {"flavor": "m1.small"}})");
  add(R"("client": {"type": "OS::Nova::Server", "properties": {"flavor": "m1.large"}})");
  std::string members;
  for (int i = 0; i < 12; ++i) {
    add(format(R"("chunk%d": {"type": "OS::Nova::Server",
        "properties": {"flavor": "m1.small"}})", i));
    add(format(R"("chunk%d-vol": {"type": "OS::Cinder::Volume",
        "properties": {"size_gb": 120}})", i));
    add(format(R"("pipe-cv%d": {"type": "ATT::QoS::Pipe",
        "properties": {"from": "chunk%d", "to": "chunk%d-vol",
                       "bandwidth_mbps": 100}})", i, i, i));
    add(format(R"("pipe-cc%d": {"type": "ATT::QoS::Pipe",
        "properties": {"from": "client", "to": "chunk%d",
                       "bandwidth_mbps": 100}})", i, i));
    if (!members.empty()) members += ", ";
    members += format(R"("chunk%d-vol")", i);
  }
  add(R"("pipe-cm": {"type": "ATT::QoS::Pipe",
      "properties": {"from": "client", "to": "meta", "bandwidth_mbps": 10}})");
  add(format(R"("dz-vols": {"type": "ATT::Valet::DiversityZone",
      "properties": {"level": "host", "members": [%s]}})", members.c_str()));
  return "{\n\"description\": \"QFS\",\n\"resources\": {\n" + resources +
         "\n}\n}";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ostro;
  util::ArgParser args("bench_vs_nova",
                       "Ostro vs independent Nova/Cinder scheduling");
  bench::add_common_flags(args);
  args.add_int("stacks", 3, "QFS stacks deployed back to back");
  if (!args.parse(argc, argv)) return 0;
  bench::apply_metrics_flags(args);

  const auto datacenter = sim::make_testbed();
  const std::string text = qfs_template();

  util::TablePrinter table({"Path", "Stack", "Deployed",
                            "Reserved bandwidth (Mbps)", "New active hosts"});

  // Naive path: Heat drives Nova/Cinder with no placement hints.
  {
    dc::Occupancy occupancy(datacenter);
    os::HeatEngine engine(occupancy);
    for (int i = 0; i < args.get_int("stacks"); ++i) {
      const os::StackDeployment deployment = engine.deploy_text(text);
      table.add_row({"Nova/Cinder", std::to_string(i + 1),
                     deployment.success ? "yes" : "NO",
                     util::TablePrinter::cell(
                         deployment.reserved_bandwidth_mbps, 0),
                     std::to_string(deployment.new_active_hosts)});
      if (!deployment.success) {
        std::cerr << "naive stack " << i + 1
                  << " failed: " << deployment.failure << "\n";
      }
    }
  }

  // Ostro path: the Figure-1 wrapper annotates the template first.
  {
    core::SearchConfig config;
    config.theta_bw = 0.99;
    config.theta_c = 0.01;
    core::OstroScheduler scheduler(datacenter, config);
    os::HeatEngine engine(scheduler.occupancy());
    os::OstroHeatWrapper wrapper(scheduler, engine);
    for (int i = 0; i < args.get_int("stacks"); ++i) {
      const os::WrapperResult result =
          wrapper.process_text(text, core::Algorithm::kEg);
      table.add_row({"Ostro", std::to_string(i + 1),
                     result.deployment.success ? "yes" : "NO",
                     util::TablePrinter::cell(
                         result.deployment.reserved_bandwidth_mbps, 0),
                     std::to_string(result.deployment.new_active_hosts)});
      if (!result.deployment.success) {
        std::cerr << "ostro stack " << i + 1
                  << " failed: " << result.deployment.failure << "\n";
      }
    }
  }
  bench::emit(table, args,
              "Holistic (Ostro) vs per-request (Nova/Cinder) deployment of "
              "QFS stacks on the testbed");
  bench::emit_metrics(args);
  return 0;
}
