// Shared scaffolding for the benchmark harness.
//
// Every bench binary regenerates one table or figure of the paper's
// evaluation section (see DESIGN.md for the index).  They print the same
// rows/series the paper reports, in an aligned text table by default or as
// CSV with --csv.  Absolute numbers differ from the paper's 2015 testbed;
// the reproduction target is the shape: who wins, by what factor, where
// the curves cross or saturate.
#pragma once

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "core/scheduler.h"
#include "sim/clusters.h"
#include "sim/experiment.h"
#include "sim/workloads.h"
#include "util/args.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/table.h"

namespace ostro::bench {

/// The algorithm line-up of the paper's figures (greedy baselines + Ostro).
[[nodiscard]] inline std::vector<core::Algorithm> figure_algorithms() {
  return {core::Algorithm::kEgC, core::Algorithm::kEgBw, core::Algorithm::kEg,
          core::Algorithm::kDbaStar};
}

/// All five algorithms (Tables I/II include BA*).
[[nodiscard]] inline std::vector<core::Algorithm> table_algorithms() {
  return {core::Algorithm::kEgC, core::Algorithm::kEgBw, core::Algorithm::kEg,
          core::Algorithm::kBaStar, core::Algorithm::kDbaStar};
}

/// DBA* deadline used in the scalability figures: grows with the topology
/// size like the run times the paper reports (~16 s at 200 VMs, Fig. 9a).
[[nodiscard]] inline double dba_deadline_for(int vms) {
  return 0.08 * static_cast<double>(vms);
}

/// Registers the flags shared by every sweep bench.
inline void add_common_flags(util::ArgParser& args) {
  args.add_flag("csv", "emit CSV instead of an aligned table");
  args.add_int("runs", 2, "repetitions per cell (paper: 20)");
  args.add_int("seed", 42, "base RNG seed");
  args.add_flag("full", "run the paper's full size sweep (slower)");
  args.add_flag("metrics",
                "dump the metrics registry as a JSON block after the tables");
  args.add_flag("no-metrics", "disable metrics collection for this run");
}

/// Applies the --no-metrics switch; call once after parsing.
inline void apply_metrics_flags(const util::ArgParser& args) {
  if (args.flag("no-metrics")) util::metrics::set_enabled(false);
}

/// Prints the metrics registry as a labelled JSON block when --metrics was
/// given.  Call at the end of main, after the tables: the block is what the
/// BENCH_*.json collectors pick up next to the timings.
inline void emit_metrics(const util::ArgParser& args) {
  if (!args.flag("metrics")) return;
  std::cout << "\n== metrics ==\n"
            << util::metrics::Registry::global().to_json().pretty() << "\n";
}

/// Prints `table` as text or CSV per the --csv flag.
inline void emit(const util::TablePrinter& table, const util::ArgParser& args,
                 const std::string& caption) {
  if (!args.flag("csv")) std::cout << "\n== " << caption << " ==\n";
  if (args.flag("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

/// Formats a mean as "m" or "m +- s" when multiple runs were aggregated.
[[nodiscard]] inline std::string mean_pm(const util::Samples& samples,
                                         int decimals = 1) {
  if (samples.count() == 0) return "n/a";
  if (samples.count() == 1) {
    return util::format("%.*f", decimals, samples.mean());
  }
  return util::format("%.*f+-%.*f", decimals, samples.mean(), decimals,
                      samples.stddev());
}

}  // namespace ostro::bench
