// Table I of the paper: the QFS application placed on the 16-host testbed
// under NON-UNIFORM resource availability (Section IV-A pre-load).
// Compares EG_C / EG_BW / EG / BA* / DBA* on reserved bandwidth, newly
// activated hosts and run time, with theta_bw = 0.99 / theta_c = 0.01 and
// DBA* T = 0.5 s, exactly as Section IV-B describes.  --theta-c runs the
// paper's follow-up experiment (theta_c raised to 0.4).
#include "common.h"

int main(int argc, char** argv) {
  using namespace ostro;
  util::ArgParser args("bench_table1",
                       "Table I: QFS on the non-uniform testbed");
  bench::add_common_flags(args);
  args.add_double("theta-c", 0.01, "theta_c (paper: 0.01, then 0.4)");
  args.add_double("deadline", 0.5, "DBA* deadline T in seconds");
  if (!args.parse(argc, argv)) return 0;
  bench::apply_metrics_flags(args);

  const auto datacenter = sim::make_testbed();
  const auto app = sim::make_qfs();

  util::TablePrinter table(
      {"Metric", "EGC", "EGBW", "EG", "BA*", "DBA*"});
  std::vector<std::string> bandwidth{"Bandwidth (Mbps)"};
  std::vector<std::string> hosts{"New active hosts"};
  std::vector<std::string> runtime{"Run-time (sec)"};

  for (const auto algorithm : bench::table_algorithms()) {
    util::Samples bw, nh, rt;
    for (int run = 0; run < args.get_int("runs"); ++run) {
      dc::Occupancy occupancy(datacenter);
      util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")) +
                    static_cast<std::uint64_t>(run));
      sim::apply_testbed_preload(occupancy, rng);

      core::SearchConfig config;
      config.theta_c = args.get_double("theta-c");
      config.theta_bw = 1.0 - config.theta_c;
      config.deadline_seconds = args.get_double("deadline");
      config.seed = static_cast<std::uint64_t>(args.get_int("seed")) +
                    static_cast<std::uint64_t>(run);
      const core::Placement placement = core::place_topology(
          occupancy, app, algorithm, config, nullptr, nullptr);
      if (!placement.feasible) {
        std::cerr << core::to_string(algorithm)
                  << ": infeasible: " << placement.failure_reason << "\n";
        continue;
      }
      bw.add(placement.reserved_bandwidth_mbps);
      nh.add(placement.new_active_hosts);
      rt.add(placement.stats.runtime_seconds);
    }
    bandwidth.push_back(bench::mean_pm(bw, 0));
    hosts.push_back(bench::mean_pm(nh, 1));
    runtime.push_back(bench::mean_pm(rt, 3));
  }
  table.add_row(bandwidth);
  table.add_row(hosts);
  table.add_row(runtime);
  bench::emit(table, args,
              util::format("Table I: QFS, non-uniform availability "
                           "(theta_bw=%.2f, theta_c=%.2f, T=%.2fs)",
                           1.0 - args.get_double("theta-c"),
                           args.get_double("theta-c"),
                           args.get_double("deadline")));
  bench::emit_metrics(args);
  return 0;
}
