// Table II of the paper: the QFS application on the 16-host testbed under
// UNIFORM resource availability (all hosts idle).  All algorithms except
// EG_C should converge to the same bandwidth and the same number of newly
// activated hosts, and the bounded searches should finish faster than in
// the non-uniform case of Table I.
#include "common.h"

int main(int argc, char** argv) {
  using namespace ostro;
  util::ArgParser args("bench_table2",
                       "Table II: QFS on the uniform (idle) testbed");
  bench::add_common_flags(args);
  args.add_double("deadline", 0.5, "DBA* deadline T in seconds");
  if (!args.parse(argc, argv)) return 0;
  bench::apply_metrics_flags(args);

  const auto datacenter = sim::make_testbed();
  const auto app = sim::make_qfs();

  util::TablePrinter table(
      {"Metric", "EGC", "EGBW", "EG", "BA*", "DBA*"});
  std::vector<std::string> bandwidth{"Bandwidth (Mbps)"};
  std::vector<std::string> hosts{"New active hosts"};
  std::vector<std::string> runtime{"Run-time (sec)"};

  for (const auto algorithm : bench::table_algorithms()) {
    util::Samples bw, nh, rt;
    for (int run = 0; run < args.get_int("runs"); ++run) {
      const dc::Occupancy occupancy(datacenter);  // uniform: everything idle
      core::SearchConfig config;
      config.theta_bw = 0.99;
      config.theta_c = 0.01;
      config.deadline_seconds = args.get_double("deadline");
      config.seed = static_cast<std::uint64_t>(args.get_int("seed")) +
                    static_cast<std::uint64_t>(run);
      const core::Placement placement = core::place_topology(
          occupancy, app, algorithm, config, nullptr, nullptr);
      if (!placement.feasible) {
        std::cerr << core::to_string(algorithm)
                  << ": infeasible: " << placement.failure_reason << "\n";
        continue;
      }
      bw.add(placement.reserved_bandwidth_mbps);
      nh.add(placement.new_active_hosts);
      rt.add(placement.stats.runtime_seconds);
    }
    bandwidth.push_back(bench::mean_pm(bw, 0));
    hosts.push_back(bench::mean_pm(nh, 1));
    runtime.push_back(bench::mean_pm(rt, 3));
  }
  table.add_row(bandwidth);
  table.add_row(hosts);
  table.add_row(runtime);
  bench::emit(table, args, "Table II: QFS, uniform availability");
  bench::emit_metrics(args);
  return 0;
}
