// Streaming admission under Poisson load: the repo's first
// latency-under-load number.
//
// Drives core::StreamingService with Poisson arrivals at increasing offered
// rates over generated multi-tier stacks.  The serial placement rate of the
// same workload is measured first and the offered rates are set as
// fractions/multiples of it, so the sweep brackets the saturation knee on
// any machine.  Each rate point reports the p50/p99 admission wait (submit
// to dispatcher pickup), commit/expiry/rejection counts, and achieved
// throughput; the sweep ends with a max-sustainable-QPS estimate — the
// highest offered rate whose miss fraction (expired + rejected + failed)
// stayed under 1%.  Writes BENCH_stream.json.
#include "common.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <future>
#include <thread>

#include "core/stream.h"
#include "util/timer.h"

namespace {

/// Percentile of an unsorted sample set (nearest-rank); 0 when empty.
double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(values.size())));
  return values[std::min(values.size() - 1, rank > 0 ? rank - 1 : 0)];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ostro;
  util::ArgParser args("bench_stream",
                       "streaming admission Poisson arrival-rate sweep");
  bench::add_common_flags(args);
  args.add_int("requests", 160, "requests per rate point");
  args.add_int("stack-vms", 5, "VMs per stack");
  args.add_int("racks", 12, "data-center racks (8 hosts each)");
  args.add_int("batch", 8, "stream_max_batch (snapshot-shared batching)");
  args.add_int("dispatchers", 2, "stream_dispatch_threads");
  args.add_double("admission-deadline", 1.0,
                  "per-request admission deadline (seconds; 0 = none)");
  args.add_flag("smoke", "tiny sizes for CI (overrides --requests/--racks)");
  if (!args.parse(argc, argv)) return 0;
  bench::apply_metrics_flags(args);

  const bool smoke = args.flag("smoke");
  const int total_requests =
      smoke ? 24 : static_cast<int>(args.get_int("requests"));
  const int stack_vms = static_cast<int>(args.get_int("stack-vms"));
  const int racks = smoke ? 4 : static_cast<int>(args.get_int("racks"));
  const double admission_deadline = args.get_double("admission-deadline");
  const auto datacenter = sim::make_sim_datacenter(racks);

  util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));
  std::vector<topo::AppTopology> stacks;
  stacks.reserve(static_cast<std::size_t>(total_requests));
  for (int i = 0; i < total_requests; ++i) {
    stacks.push_back(sim::make_multitier(
        stack_vms, sim::RequirementMix::kHomogeneous, rng));
  }

  core::SearchConfig config;
  config.threads = 1;  // dispatcher concurrency is the subject under test
  config.stream_max_batch =
      static_cast<std::size_t>(std::max<std::int64_t>(1, args.get_int("batch")));
  config.stream_dispatch_threads = static_cast<std::size_t>(
      std::max<std::int64_t>(1, args.get_int("dispatchers")));
  config.stream_queue_capacity =
      static_cast<std::size_t>(total_requests) + 1;

  // Baseline: serial placement rate of the same workload, which anchors the
  // offered-rate ladder (0.25x .. 2x serial keeps the knee in frame).
  double serial_rate = 0.0;
  {
    const int probe = std::min(total_requests, smoke ? 8 : 32);
    core::OstroScheduler scheduler(datacenter, config);
    core::PlacementService service(scheduler);
    util::WallTimer timer;
    for (int i = 0; i < probe; ++i) {
      (void)service.place(stacks[static_cast<std::size_t>(i)],
                          core::Algorithm::kEg, config);
    }
    serial_rate = static_cast<double>(probe) / timer.elapsed_seconds();
  }
  const std::vector<double> rate_factors = {0.25, 0.5, 1.0, 2.0};

  util::TablePrinter table({"Offered QPS", "Achieved QPS", "p50 wait (ms)",
                            "p99 wait (ms)", "Committed", "Expired",
                            "Failed", "Spills"});
  util::JsonArray sweep;
  double max_sustainable_qps = 0.0;
  for (const double factor : rate_factors) {
    const double offered_qps = serial_rate * factor;
    core::OstroScheduler scheduler(datacenter, config);
    core::PlacementService service(scheduler);
    core::StreamingService stream(service, config);

    // Poisson arrivals: exponential inter-arrival gaps at the offered
    // rate, submitted on schedule from this thread.
    util::Rng arrivals(rng.fork(static_cast<std::uint64_t>(factor * 1000)));
    std::vector<std::future<core::StreamResult>> futures;
    futures.reserve(stacks.size());
    const auto start = std::chrono::steady_clock::now();
    double next_arrival = 0.0;
    util::WallTimer timer;
    for (const topo::AppTopology& stack : stacks) {
      next_arrival += -std::log(1.0 - arrivals.uniform01()) / offered_qps;
      std::this_thread::sleep_until(
          start + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(next_arrival)));
      core::StreamRequest request;
      request.topology = stack;
      request.algorithm = core::Algorithm::kEg;
      request.deadline_seconds = admission_deadline;
      futures.push_back(stream.submit(std::move(request)));
    }
    stream.close();
    stream.shutdown();
    const double wall = timer.elapsed_seconds();

    int committed = 0, expired = 0, failed = 0, rejected = 0;
    std::uint64_t spills = 0;
    std::vector<double> waits;
    waits.reserve(futures.size());
    for (std::future<core::StreamResult>& future : futures) {
      const core::StreamResult result = future.get();
      switch (result.status) {
        case core::StreamStatus::kCommitted: ++committed; break;
        case core::StreamStatus::kExpired: ++expired; break;
        case core::StreamStatus::kFailed: ++failed; break;
        case core::StreamStatus::kRejected: ++rejected; break;
      }
      if (result.status != core::StreamStatus::kRejected) {
        waits.push_back(result.wait_seconds);
      }
      spills += result.spills;
    }
    const double p50 = percentile(waits, 0.50);
    const double p99 = percentile(waits, 0.99);
    const double achieved_qps = static_cast<double>(committed) / wall;
    const double misses =
        static_cast<double>(expired + failed + rejected) /
        static_cast<double>(total_requests);
    if (misses <= 0.01 && offered_qps > max_sustainable_qps) {
      max_sustainable_qps = offered_qps;
    }

    table.add_row({util::format("%.1f", offered_qps),
                   util::format("%.1f", achieved_qps),
                   util::format("%.2f", p50 * 1e3),
                   util::format("%.2f", p99 * 1e3),
                   util::format("%d/%d", committed, total_requests),
                   util::format("%d", expired), util::format("%d", failed),
                   util::format("%llu",
                                static_cast<unsigned long long>(spills))});

    util::JsonObject point;
    point["offered_qps"] = offered_qps;
    point["achieved_qps"] = achieved_qps;
    point["p50_admission_wait_seconds"] = p50;
    point["p99_admission_wait_seconds"] = p99;
    point["committed"] = committed;
    point["expired"] = expired;
    point["failed"] = failed;
    point["rejected"] = rejected;
    point["spills"] = static_cast<std::int64_t>(spills);
    point["miss_fraction"] = misses;
    point["wall_seconds"] = wall;
    sweep.emplace_back(std::move(point));
  }
  bench::emit(table, args, "streaming admission Poisson sweep");
  std::cout << "max sustainable QPS (miss fraction <= 1%): "
            << util::format("%.1f", max_sustainable_qps) << "\n";

  util::JsonObject out;
  out["benchmark"] = "streaming_admission_poisson_sweep";
  out["requests_per_rate"] = total_requests;
  out["stack_vms"] = stack_vms;
  out["hosts"] = static_cast<int>(datacenter.host_count());
  out["batch"] = static_cast<std::int64_t>(config.stream_max_batch);
  out["dispatchers"] =
      static_cast<std::int64_t>(config.stream_dispatch_threads);
  out["admission_deadline_seconds"] = admission_deadline;
  out["serial_rate_qps"] = serial_rate;
  out["max_sustainable_qps"] = max_sustainable_qps;
  out["sweep"] = std::move(sweep);
  std::ofstream file("BENCH_stream.json");
  file << util::Json(std::move(out)).pretty() << '\n';

  bench::emit_metrics(args);
  return 0;
}
