// Shared scalability sweep used by the Figure 7-9 (multi-tier) and Figure
// 10-11 (mesh) benches: for each topology size and each algorithm, place
// the application on the 2400-host simulated data center and aggregate
// reserved bandwidth, total active hosts and run time over seeded runs.
#pragma once

#include <map>

#include "common.h"

namespace ostro::bench {

enum class Workload { kMultitier, kMesh };

struct SweepCell {
  util::Samples bandwidth_gbps;
  util::Samples total_hosts;
  util::Samples new_hosts;
  util::Samples runtime_seconds;
  /// Search-budget telemetry (BA*/DBA* only; zero for the greedy rows):
  /// widened retries taken and the open-path budget of the final attempt.
  util::Samples budget_retries;
  util::Samples final_open_budget;
  int infeasible = 0;
};

/// cell key: (vms, algorithm)
using SweepResult = std::map<std::pair<int, core::Algorithm>, SweepCell>;

/// Sizes are VM counts (mesh sizes must be multiples of 5 = one zone).
[[nodiscard]] inline SweepResult run_scaling_sweep(
    Workload workload, sim::RequirementMix mix, const std::vector<int>& sizes,
    const std::vector<core::Algorithm>& algorithms, int runs,
    std::uint64_t seed, int racks, bool uniform_availability,
    core::BudgetMode budget_mode = core::BudgetMode::kFixed) {
  const auto datacenter = sim::make_sim_datacenter(racks);
  SweepResult result;
  for (const int vms : sizes) {
    for (const auto algorithm : algorithms) {
      SweepCell& cell = result[{vms, algorithm}];
      for (int run = 0; run < runs; ++run) {
        util::Rng rng(seed + static_cast<std::uint64_t>(run));
        dc::Occupancy occupancy(datacenter);
        if (!uniform_availability) sim::apply_sim_preload(occupancy, rng);
        const auto app =
            workload == Workload::kMultitier
                ? sim::make_multitier(vms, mix, rng)
                : sim::make_mesh(vms / 5, mix, rng);
        core::SearchConfig config;  // theta = 0.6 / 0.4 (Section IV-C)
        config.deadline_seconds = dba_deadline_for(vms);
        config.seed = seed + static_cast<std::uint64_t>(run);
        config.budget_mode = budget_mode;
        const core::Placement placement = core::place_topology(
            occupancy, app, algorithm, config, nullptr, nullptr);
        if (!placement.feasible) {
          ++cell.infeasible;
          std::cerr << core::to_string(algorithm) << " @" << vms
                    << " run " << run
                    << ": infeasible: " << placement.failure_reason << "\n";
          continue;
        }
        cell.bandwidth_gbps.add(placement.reserved_bandwidth_mbps / 1000.0);
        cell.total_hosts.add(static_cast<double>(
            occupancy.active_host_count() +
            static_cast<std::size_t>(placement.new_active_hosts)));
        cell.new_hosts.add(placement.new_active_hosts);
        cell.runtime_seconds.add(placement.stats.runtime_seconds);
        cell.budget_retries.add(
            static_cast<double>(placement.stats.budget_retries));
        cell.final_open_budget.add(
            static_cast<double>(placement.stats.effective_max_open_paths));
      }
    }
  }
  return result;
}

/// Emits one metric of the sweep as a table: rows = sizes, one column per
/// algorithm.
inline void emit_sweep_metric(
    const SweepResult& sweep, const std::vector<int>& sizes,
    const std::vector<core::Algorithm>& algorithms,
    const std::function<std::string(const SweepCell&)>& metric,
    const std::string& metric_name, const util::ArgParser& args,
    const std::string& caption) {
  std::vector<std::string> headers{"Size"};
  for (const auto algorithm : algorithms) {
    headers.emplace_back(core::to_string(algorithm));
  }
  util::TablePrinter table(std::move(headers));
  for (const int vms : sizes) {
    std::vector<std::string> row{std::to_string(vms)};
    for (const auto algorithm : algorithms) {
      row.push_back(metric(sweep.at({vms, algorithm})));
    }
    table.add_row(row);
  }
  emit(table, args, caption + " — " + metric_name);
}

}  // namespace ostro::bench
