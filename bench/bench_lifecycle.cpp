// Cluster churn under the lifecycle simulator: fragmentation trajectory,
// placement success rate, and plan latency, with the defragmentation
// planner as the ablation axis.
//
// Two identical runs (same seed, same arrival/lifetime streams) drive a
// PlacementService through sim::Lifecycle at high steady-state fill — one
// with the DefragPlanner ticking, one without.  The run without defrag
// shows the fragmentation index rising as departures shred the packing;
// the run with defrag shows it measurably lower and the placement success
// rate at least as high.  Both claims are asserted at the end (exit 1 on
// violation), so CI's --smoke invocation gates them, and the flat JSON
// keys in BENCH_lifecycle.json feed scripts/compare_bench.py.
#include "common.h"

#include <cstdint>
#include <fstream>

#include "core/service.h"
#include "sim/lifecycle.h"

namespace {

ostro::util::JsonArray trajectory_json(
    const std::vector<ostro::sim::TrajectoryPoint>& trajectory) {
  ostro::util::JsonArray out;
  for (const ostro::sim::TrajectoryPoint& point : trajectory) {
    ostro::util::JsonObject entry;
    entry["time_s"] = point.time_s;
    entry["frag_index"] = point.frag_index;
    entry["unusable_free_cpu_fraction"] = point.unusable_free_cpu_fraction;
    entry["used_cpu_fraction"] = point.used_cpu_fraction;
    entry["feasible_host_fraction"] = point.feasible_host_fraction;
    entry["live_stacks"] = static_cast<std::int64_t>(point.live_stacks);
    entry["active_hosts"] = static_cast<std::int64_t>(point.active_hosts);
    out.emplace_back(std::move(entry));
  }
  return out;
}

// Mean of a trajectory field over the steady-state second half of the run.
// Single samples are noisy (fragmentation swings with every departure);
// the assertions below compare windows, not endpoints.
double steady_mean(const std::vector<ostro::sim::TrajectoryPoint>& trajectory,
                   double ostro::sim::TrajectoryPoint::* field) {
  if (trajectory.empty()) return 0.0;
  const std::size_t from = trajectory.size() / 2;
  double sum = 0.0;
  for (std::size_t i = from; i < trajectory.size(); ++i) {
    sum += trajectory[i].*field;
  }
  return sum / static_cast<double>(trajectory.size() - from);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ostro;
  util::ArgParser args("bench_lifecycle",
                       "cluster churn with defrag on/off ablation");
  bench::add_common_flags(args);
  args.add_int("racks", 8, "data-center racks (16 hosts each)");
  args.add_int("stack-vms", 15, "VMs per arriving stack (multiple of 5)");
  args.add_double("arrival-rate", 0.12,
                  "stack arrivals per simulated second (--smoke halves this "
                  "to match the halved rack count)");
  args.add_double("lifetime", 300.0, "mean stack lifetime (simulated s)");
  args.add_double("duration", 2400.0, "simulated horizon (s)");
  args.add_double("mtbf", 0.0, "per-host MTBF (simulated s; 0 = no failures)");
  args.add_double("repair", 120.0, "host repair time (simulated s)");
  args.add_double("defrag-interval", 30.0, "defrag tick period (simulated s)");
  args.add_int("defrag-moves", 8, "max VM moves per defrag batch");
  args.add_flag("smoke", "tiny sizes for CI (overrides --racks/--duration)");
  if (!args.parse(argc, argv)) return 0;
  bench::apply_metrics_flags(args);

  const bool smoke = args.flag("smoke");
  const int racks = smoke ? 4 : static_cast<int>(args.get_int("racks"));
  const double duration =
      smoke ? 1200.0 : args.get_double("duration");
  const int stack_vms = static_cast<int>(args.get_int("stack-vms"));
  const auto datacenter = sim::make_sim_datacenter(racks);

  sim::LifecycleConfig config;
  config.arrival_rate_per_s =
      smoke ? args.get_double("arrival-rate") / 2.0
            : args.get_double("arrival-rate");
  config.mean_lifetime_s = args.get_double("lifetime");
  config.duration_s = duration;
  config.stack_vms = stack_vms;
  config.mix = sim::RequirementMix::kHeterogeneous;
  config.algorithm = core::Algorithm::kEg;
  config.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  config.host_mtbf_s = args.get_double("mtbf");
  config.host_repair_s = args.get_double("repair");
  config.defrag_interval_s = args.get_double("defrag-interval");
  config.defrag_config.max_moves =
      static_cast<std::uint32_t>(args.get_int("defrag-moves"));
  // Measure fragmentation against the LARGE class (Table III): free
  // capacity that cannot host another large VM is what strands arrivals,
  // and small-VM slivers the defrag planner repacks show up directly.
  config.reference_vm = {4.0, 4.0, 0.0};

  // The ablation: identical config and seed, defrag off vs on.  Each run
  // gets a fresh scheduler/service so occupancies are independent.
  sim::LifecycleStats stats[2];
  for (int axis = 0; axis < 2; ++axis) {
    config.defrag = axis == 1;
    core::OstroScheduler scheduler(datacenter);
    core::PlacementService service(scheduler);
    sim::Lifecycle lifecycle(service, config);
    stats[axis] = lifecycle.run();
  }
  const sim::LifecycleStats& off = stats[0];
  const sim::LifecycleStats& on = stats[1];

  util::TablePrinter table(
      {"Defrag", "Arrivals", "Committed", "Success", "Departures",
       "Frag final", "p50 plan (ms)", "p99 plan (ms)", "Moves"});
  for (int axis = 0; axis < 2; ++axis) {
    const sim::LifecycleStats& s = stats[axis];
    table.add_row(
        {axis == 0 ? "off" : "on",
         util::format("%llu", static_cast<unsigned long long>(s.arrivals)),
         util::format("%llu",
                      static_cast<unsigned long long>(s.placements_committed)),
         util::format("%.3f", s.success_rate()),
         util::format("%llu", static_cast<unsigned long long>(s.departures)),
         util::format("%.4f", s.final_frag.frag_index),
         util::format("%.2f", s.plan_seconds.percentile(50.0) * 1e3),
         util::format("%.2f", s.plan_seconds.percentile(99.0) * 1e3),
         util::format("%llu",
                      static_cast<unsigned long long>(s.defrag_moves))});
  }
  bench::emit(table, args, "lifecycle churn, defrag ablation");

  util::JsonObject out;
  out["benchmark"] = "lifecycle_churn_defrag_ablation";
  out["hosts"] = static_cast<int>(datacenter.host_count());
  out["stack_vms"] = stack_vms;
  out["arrival_rate_per_s"] = config.arrival_rate_per_s;
  out["mean_lifetime_s"] = config.mean_lifetime_s;
  out["duration_s"] = duration;
  out["seed"] = static_cast<std::int64_t>(config.seed);
  out["success_rate_defrag_off"] = off.success_rate();
  out["success_rate_defrag_on"] = on.success_rate();
  const double frag_first_off =
      off.trajectory.empty() ? 0.0
                             : off.trajectory.front().unusable_free_cpu_fraction;
  const double frag_steady_off =
      steady_mean(off.trajectory,
                  &sim::TrajectoryPoint::unusable_free_cpu_fraction);
  const double frag_steady_on =
      steady_mean(on.trajectory,
                  &sim::TrajectoryPoint::unusable_free_cpu_fraction);
  out["frag_final_defrag_off"] = off.final_frag.frag_index;
  out["frag_final_defrag_on"] = on.final_frag.frag_index;
  out["cpu_frag_first_defrag_off"] = frag_first_off;
  out["cpu_frag_steady_defrag_off"] = frag_steady_off;
  out["cpu_frag_steady_defrag_on"] = frag_steady_on;
  out["frag_steady_defrag_off"] =
      steady_mean(off.trajectory, &sim::TrajectoryPoint::frag_index);
  out["frag_steady_defrag_on"] =
      steady_mean(on.trajectory, &sim::TrajectoryPoint::frag_index);
  out["stranded_uplink_fraction_defrag_off"] =
      off.final_frag.stranded_uplink_fraction;
  out["stranded_uplink_fraction_defrag_on"] =
      on.final_frag.stranded_uplink_fraction;
  out["active_hosts_final_defrag_off"] = static_cast<std::int64_t>(
      off.trajectory.empty() ? 0 : off.trajectory.back().active_hosts);
  out["active_hosts_final_defrag_on"] = static_cast<std::int64_t>(
      on.trajectory.empty() ? 0 : on.trajectory.back().active_hosts);
  out["p50_plan_seconds_defrag_off"] = off.plan_seconds.percentile(50.0);
  out["p99_plan_seconds_defrag_off"] = off.plan_seconds.percentile(99.0);
  out["p50_plan_seconds_defrag_on"] = on.plan_seconds.percentile(50.0);
  out["p99_plan_seconds_defrag_on"] = on.plan_seconds.percentile(99.0);
  out["defrag_moves_committed"] =
      static_cast<std::int64_t>(on.defrag_moves);
  out["defrag_runs"] = static_cast<std::int64_t>(on.defrag_runs);
  out["trajectory_defrag_off"] = trajectory_json(off.trajectory);
  out["trajectory_defrag_on"] = trajectory_json(on.trajectory);
  std::ofstream file("BENCH_lifecycle.json");
  file << util::Json(std::move(out)).pretty() << '\n';

  bench::emit_metrics(args);

  // The claims this bench exists to check; CI runs --smoke and fails on a
  // nonzero exit.  Comparisons use the steady-state mean of the cpu sliver
  // fraction (cpu is the binding dimension), not single noisy samples.
  bool ok = true;
  if (frag_steady_off <= frag_first_off) {
    std::cout << "FAIL: fragmentation did not rise under churn (first "
              << frag_first_off << ", steady mean " << frag_steady_off
              << ")\n";
    ok = false;
  }
  if (frag_steady_on >= frag_steady_off) {
    std::cout << "FAIL: defrag did not lower steady-state fragmentation (off "
              << frag_steady_off << ", on " << frag_steady_on << ")\n";
    ok = false;
  }
  if (on.success_rate() < off.success_rate()) {
    std::cout << "FAIL: defrag lowered placement success rate (off "
              << off.success_rate() << ", on " << on.success_rate() << ")\n";
    ok = false;
  }
  if (ok) {
    std::cout << "lifecycle ablation OK: cpu sliver fraction "
              << frag_first_off << " -> " << frag_steady_off
              << " steady without defrag, " << frag_steady_on
              << " with; success " << off.success_rate() << " -> "
              << on.success_rate() << "\n";
  }
  return ok ? 0 : 1;
}
