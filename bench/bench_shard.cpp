// Sharded scale-out throughput: placement requests per second through the
// core::ShardRouter as the shard count grows, at fixed cluster size.
//
// One wide-area cluster (full scale: 4 sites x 8 pods x 200 racks x 16
// hosts = 102,400 hosts) serves the SAME pre-generated multi-tier request
// stream under every shard count; client threads hammer the router
// concurrently.  A monolithic service pays O(hosts) per request (snapshot
// copy + candidate scan) behind one writer lock; with N shards each
// request touches one shard's O(hosts/N) state behind its own lock, so
// throughput should scale with the shard count.  The full run asserts the
// headline claim — at least 3x throughput at 4 shards over 1 — and exits
// nonzero when it fails; --smoke (CI) runs tiny sizes and only writes the
// BENCH_shard.json keys for the compare_bench.py gate.
#include "common.h"

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <vector>

#include "core/shard_router.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

struct SweepPoint {
  std::uint32_t shards = 0;
  std::uint64_t committed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cross_shard = 0;
  double seconds = 0.0;

  [[nodiscard]] double throughput() const {
    return seconds > 0.0 ? static_cast<double>(committed) / seconds : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ostro;
  util::ArgParser args("bench_shard",
                       "router throughput vs shard count at fixed scale");
  bench::add_common_flags(args);
  args.add_int("sites", 4, "wide-area sites");
  args.add_int("pods", 8, "pods per site");
  args.add_int("racks", 200, "racks per pod (16 hosts each)");
  args.add_int("stacks", 256, "placement requests per shard-count run");
  args.add_int("stack-vms", 10, "VMs per stack (multiple of 5)");
  args.add_int("threads", 8, "concurrent client threads");
  args.add_flag("smoke", "tiny sizes for CI (overrides the scale flags; "
                         "skips the full-scale 3x speedup assertion)");
  if (!args.parse(argc, argv)) return 0;
  bench::apply_metrics_flags(args);

  const bool smoke = args.flag("smoke");
  const int sites = smoke ? 2 : static_cast<int>(args.get_int("sites"));
  const int pods = smoke ? 2 : static_cast<int>(args.get_int("pods"));
  const int racks = smoke ? 2 : static_cast<int>(args.get_int("racks"));
  const int hosts_per_rack = smoke ? 4 : 16;
  const int stacks = smoke ? 48 : static_cast<int>(args.get_int("stacks"));
  const int stack_vms = static_cast<int>(args.get_int("stack-vms"));
  const std::size_t threads =
      static_cast<std::size_t>(args.get_int("threads"));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed"));

  const dc::DataCenter datacenter =
      sim::make_wan(sites, pods, racks, hosts_per_rack);
  const std::uint32_t total_pods =
      static_cast<std::uint32_t>(datacenter.pods().size());

  // The same request stream for every shard count: pre-generated so the
  // sweep measures the router, not the workload generator.
  std::vector<std::shared_ptr<const topo::AppTopology>> apps;
  apps.reserve(static_cast<std::size_t>(stacks));
  {
    util::Rng rng(seed);
    for (int i = 0; i < stacks; ++i) {
      apps.push_back(std::make_shared<const topo::AppTopology>(
          sim::make_multitier(stack_vms, sim::RequirementMix::kHeterogeneous,
                              rng)));
    }
  }

  std::vector<std::uint32_t> shard_counts;
  for (const std::uint32_t n : {1u, 2u, 4u, 8u}) {
    if (n <= total_pods) shard_counts.push_back(n);
  }

  std::vector<SweepPoint> points;
  for (const std::uint32_t shards : shard_counts) {
    core::ShardConfig config;
    config.shards = shards;
    core::ShardRouter router(datacenter, config);

    std::atomic<std::size_t> next{0};
    std::atomic<std::uint64_t> committed{0};
    std::atomic<std::uint64_t> failed{0};
    std::atomic<std::uint64_t> cross{0};
    const util::WallTimer timer;
    util::run_workers(threads, [&](std::size_t) {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= apps.size()) break;
        const core::ShardRouter::Result result =
            router.place(apps[i], core::Algorithm::kEg);
        if (result.service.placement.committed) {
          committed.fetch_add(1, std::memory_order_relaxed);
          if (result.cross_shard) {
            cross.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
    SweepPoint point;
    point.shards = shards;
    point.seconds = timer.elapsed_seconds();
    point.committed = committed.load();
    point.failed = failed.load();
    point.cross_shard = cross.load();
    points.push_back(point);
  }

  util::TablePrinter table({"Shards", "Committed", "Failed", "Cross-shard",
                            "Seconds", "Stacks/s", "Speedup"});
  const double base = points.empty() ? 0.0 : points.front().throughput();
  for (const SweepPoint& point : points) {
    table.add_row(
        {util::format("%u", point.shards),
         util::format("%llu", static_cast<unsigned long long>(point.committed)),
         util::format("%llu", static_cast<unsigned long long>(point.failed)),
         util::format("%llu",
                      static_cast<unsigned long long>(point.cross_shard)),
         util::format("%.3f", point.seconds),
         util::format("%.1f", point.throughput()),
         util::format("%.2fx", base > 0.0 ? point.throughput() / base : 0.0)});
  }
  bench::emit(table, args,
              util::format("router throughput vs shard count, %zu hosts, %zu "
                           "client threads",
                           datacenter.host_count(), threads));

  util::JsonObject out;
  out["benchmark"] = "shard_router_throughput";
  out["hosts"] = static_cast<std::int64_t>(datacenter.host_count());
  out["stacks"] = stacks;
  out["stack_vms"] = stack_vms;
  out["client_threads"] = static_cast<std::int64_t>(threads);
  out["seed"] = static_cast<std::int64_t>(seed);
  double tp1 = 0.0;
  double tp4 = 0.0;
  for (const SweepPoint& point : points) {
    out[util::format("throughput_shards_%u", point.shards)] =
        point.throughput();
    out[util::format("committed_shards_%u", point.shards)] =
        static_cast<std::int64_t>(point.committed);
    out[util::format("cross_shard_commits_shards_%u", point.shards)] =
        static_cast<std::int64_t>(point.cross_shard);
    if (point.shards == 1) tp1 = point.throughput();
    if (point.shards == 4) tp4 = point.throughput();
  }
  out["speedup_4v1"] = tp1 > 0.0 ? tp4 / tp1 : 0.0;
  std::ofstream file("BENCH_shard.json");
  file << util::Json(std::move(out)).pretty() << '\n';

  bench::emit_metrics(args);

  // The headline claim, asserted only at full scale: small smoke clusters
  // finish requests too fast for the sharding win to dominate thread and
  // snapshot overheads, so asserting there would gate on noise.
  if (!smoke && tp1 > 0.0 && tp4 > 0.0 && tp4 < 3.0 * tp1) {
    std::cout << "FAIL: 4-shard throughput " << tp4
              << " stacks/s is below 3x the 1-shard " << tp1 << " stacks/s\n";
    return 1;
  }
  return 0;
}
