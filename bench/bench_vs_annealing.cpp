// Related-work comparison (Section V): the paper argues that evolutionary
// methods such as simulated annealing make it "non-trivial to guarantee an
// optimal solution in a tight time bound".  This bench gives simulated
// annealing and DBA* identical wall-clock budgets on the same instances
// and reports the utility each achieves, plus EG as the no-search baseline.
#include "common.h"

#include "core/annealing.h"

int main(int argc, char** argv) {
  using namespace ostro;
  util::ArgParser args("bench_vs_annealing",
                       "DBA* vs simulated annealing under equal budgets");
  bench::add_common_flags(args);
  args.add_string("sizes", "25,50,100", "multi-tier sizes");
  args.add_int("racks", 50, "data-center racks");
  if (!args.parse(argc, argv)) return 0;
  bench::apply_metrics_flags(args);

  const auto datacenter =
      sim::make_sim_datacenter(static_cast<int>(args.get_int("racks")));
  util::TablePrinter table({"Size", "Budget (s)", "Method",
                            "Utility", "Bandwidth (Gbps)", "New hosts"});
  for (const int vms : util::parse_int_list(args.get_string("sizes"))) {
    const double budget = bench::dba_deadline_for(vms);
    struct Cell {
      util::Samples utility, bw, hosts;
    };
    Cell eg_cell, dba_cell, sa_cell;
    for (int run = 0; run < args.get_int("runs"); ++run) {
      util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")) +
                    static_cast<std::uint64_t>(run));
      dc::Occupancy occupancy(datacenter);
      sim::apply_sim_preload(occupancy, rng);
      const auto app = sim::make_multitier(
          vms, sim::RequirementMix::kHeterogeneous, rng);

      core::SearchConfig config;
      config.seed = static_cast<std::uint64_t>(args.get_int("seed")) +
                    static_cast<std::uint64_t>(run);

      const core::Placement eg = core::place_topology(
          occupancy, app, core::Algorithm::kEg, config, nullptr, nullptr);

      core::SearchConfig dba_config = config;
      dba_config.deadline_seconds = budget;
      const core::Placement dba = core::place_topology(
          occupancy, app, core::Algorithm::kDbaStar, dba_config, nullptr,
          nullptr);

      core::AnnealingConfig sa_config;
      sa_config.deadline_seconds = budget;
      sa_config.seed = config.seed;
      const core::Placement sa =
          core::simulated_annealing(occupancy, app, config, sa_config);

      const auto record = [](Cell& cell, const core::Placement& p) {
        if (!p.feasible) return;
        cell.utility.add(p.utility);
        cell.bw.add(p.reserved_bandwidth_mbps / 1000.0);
        cell.hosts.add(p.new_active_hosts);
      };
      record(eg_cell, eg);
      record(dba_cell, dba);
      record(sa_cell, sa);
    }
    const auto emit_row = [&](const char* method, const Cell& cell,
                              double cell_budget) {
      table.add_row({std::to_string(vms),
                     util::format("%.1f", cell_budget), method,
                     bench::mean_pm(cell.utility, 4),
                     bench::mean_pm(cell.bw, 1),
                     bench::mean_pm(cell.hosts, 1)});
    };
    emit_row("EG (no search)", eg_cell, 0.0);
    emit_row("DBA*", dba_cell, budget);
    emit_row("Simulated annealing", sa_cell, budget);
  }
  bench::emit(table, args,
              "DBA* vs simulated annealing, equal wall-clock budgets "
              "(heterogeneous multi-tier, non-uniform DC)");
  bench::emit_metrics(args);
  return 0;
}
