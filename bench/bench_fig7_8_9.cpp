// Figures 7, 8 and 9 of the paper: the multi-tier application scalability
// sweep on the 2400-host simulated data center.
//   Figure 7a/7b — reserved bandwidth vs topology size (het / hom);
//   Figure 8    — total used (active) hosts vs size (heterogeneous);
//   Figure 9a/9b — run time vs size (het / hom).
// Expected shape: EG_C reserves by far the most bandwidth (it ignores the
// pipes), EG_BW/EG/DBA* cluster below it with DBA* best; EG_BW activates
// the most hosts while EG_C packs tightest; greedy run times stay low while
// DBA* uses its size-scaled deadline.
#include "scaling.h"

int main(int argc, char** argv) {
  using namespace ostro;
  util::ArgParser args("bench_fig7_8_9", "Figures 7-9: multi-tier sweep");
  bench::add_common_flags(args);
  args.add_string("sizes", "25,50,100,150,200",
                  "topology sizes (--full: 25,50,75,100,125,150,175,200)");
  args.add_int("racks", 150, "data-center racks (16 hosts each)");
  args.add_string("budget", "fixed",
                  "BA*/DBA* search-budget mode: fixed (paper constants, "
                  "bit-identical) | auto (adaptive controller)");
  if (!args.parse(argc, argv)) return 0;
  bench::apply_metrics_flags(args);
  const core::BudgetMode budget_mode =
      core::parse_budget_mode(args.get_string("budget"));

  const std::vector<int> sizes =
      args.flag("full")
          ? std::vector<int>{25, 50, 75, 100, 125, 150, 175, 200}
          : util::parse_int_list(args.get_string("sizes"));
  const auto algorithms = bench::figure_algorithms();

  for (const auto mix : {sim::RequirementMix::kHeterogeneous,
                         sim::RequirementMix::kHomogeneous}) {
    // Paper pairing: heterogeneous requirements with non-uniform
    // availability, homogeneous with uniform (Section IV-D).
    const bool uniform = mix == sim::RequirementMix::kHomogeneous;
    const auto sweep = bench::run_scaling_sweep(
        bench::Workload::kMultitier, mix, sizes, algorithms,
        static_cast<int>(args.get_int("runs")),
        static_cast<std::uint64_t>(args.get_int("seed")),
        static_cast<int>(args.get_int("racks")), uniform, budget_mode);
    const std::string suffix =
        std::string(sim::to_string(mix)) +
        (uniform ? ", uniform availability" : ", non-uniform availability");

    bench::emit_sweep_metric(
        sweep, sizes, algorithms,
        [](const bench::SweepCell& cell) {
          return bench::mean_pm(cell.bandwidth_gbps, 1);
        },
        "reserved bandwidth (Gbps)", args,
        "Figure 7 (multi-tier, " + suffix + ")");
    if (mix == sim::RequirementMix::kHeterogeneous) {
      bench::emit_sweep_metric(
          sweep, sizes, algorithms,
          [](const bench::SweepCell& cell) {
            return bench::mean_pm(cell.total_hosts, 0);
          },
          "total used hosts", args, "Figure 8 (multi-tier, " + suffix + ")");
    }
    bench::emit_sweep_metric(
        sweep, sizes, algorithms,
        [](const bench::SweepCell& cell) {
          return bench::mean_pm(cell.runtime_seconds, 2);
        },
        "run time (sec)", args, "Figure 9 (multi-tier, " + suffix + ")");
    // Budget telemetry (extension, not a paper figure): the budgets the
    // controller chose and the widened retries it took.  Only meaningful
    // under --budget=auto; the same numbers land in the --metrics JSON
    // block as the budget.* counters/summaries.
    if (budget_mode == core::BudgetMode::kAuto) {
      bench::emit_sweep_metric(
          sweep, sizes, algorithms,
          [](const bench::SweepCell& cell) {
            return bench::mean_pm(cell.final_open_budget, 0);
          },
          "final open-path budget", args,
          "Budget controller (multi-tier, " + suffix + ")");
      bench::emit_sweep_metric(
          sweep, sizes, algorithms,
          [](const bench::SweepCell& cell) {
            return bench::mean_pm(cell.budget_retries, 2);
          },
          "widened retries", args,
          "Budget controller (multi-tier, " + suffix + ")");
    }
  }
  bench::emit_metrics(args);
  return 0;
}
