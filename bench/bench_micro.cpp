// Micro-benchmarks (google-benchmark) for the placement hot paths: the
// constraint checks and estimates that the searches evaluate millions of
// times, path enumeration in the data-center tree, placement application,
// and the max-min fair solver that backs the QFS simulator.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <new>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/astar.h"
#include "core/candidates.h"
#include "core/estimator.h"
#include "core/greedy.h"
#include "core/objective.h"
#include "core/partial.h"
#include "core/scheduler.h"
#include "core/search_core.h"
#include "core/symmetry.h"
#include "datacenter/prune_labels.h"
#include "net/maxmin.h"
#include "net/reservation.h"
#include "sim/clusters.h"
#include "sim/workloads.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace {

using namespace ostro;

// Heap-allocation counter for the zero-allocation claims of the pooled
// search core (BENCH_search_core.json): the bench binary overrides the
// global allocation functions, exactly like tests/core/search_alloc_test.cpp.
std::atomic<std::uint64_t> g_heap_allocs{0};

[[nodiscard]] std::uint64_t heap_alloc_count() noexcept {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

/// SearchConfig::search_core used by the search benchmarks; set by the
/// --search-core=<pooled|reference> command-line flag.
core::SearchCore g_bench_search_core = core::SearchCore::kPooled;

void* counted_alloc(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t padded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, padded == 0 ? align : padded)) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace

// Replacement allocation functions must live at global scope.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

struct MicroFixture {
  dc::DataCenter datacenter = sim::make_sim_datacenter(20, 16);  // 320 hosts
  dc::Occupancy occupancy{datacenter};
  topo::AppTopology app;
  core::SearchConfig config;
  core::Objective objective;

  MicroFixture()
      : app([] {
          util::Rng rng(7);
          return sim::make_multitier(50, sim::RequirementMix::kHeterogeneous,
                                     rng);
        }()),
        objective(app, datacenter, config) {
    util::Rng rng(7);
    sim::apply_sim_preload(occupancy, rng);
  }
};

MicroFixture& fixture() {
  static MicroFixture f;
  return f;
}

/// Figure-7-scale fixture (150 racks x 16 hosts = 2400 hosts): the size at
/// which the topology-query and estimate fast paths are quantified against
/// their tree-walk / per-call reference implementations.
struct Fig7Fixture {
  dc::DataCenter datacenter = sim::make_sim_datacenter(150, 16);
  dc::Occupancy occupancy{datacenter};
  topo::AppTopology app;
  core::SearchConfig config;
  core::Objective objective;
  net::Assignment assignment;  ///< feasible EG placement of `app`

  Fig7Fixture()
      : app([] {
          util::Rng rng(7);
          return sim::make_multitier(50, sim::RequirementMix::kHeterogeneous,
                                     rng);
        }()),
        objective(app, datacenter, config) {
    util::Rng rng(7);
    sim::apply_sim_preload(occupancy, rng);
    core::GreedyOutcome outcome = core::run_greedy(
        core::Algorithm::kEg,
        core::PartialPlacement(app, occupancy, objective),
        core::eg_sort_order(app), nullptr);
    if (!outcome.feasible) throw std::runtime_error("fig7 EG infeasible");
    assignment = outcome.state.assignment();
  }
};

Fig7Fixture& fig7() {
  static Fig7Fixture f;
  return f;
}

void BM_CanPlace(benchmark::State& state) {
  auto& f = fixture();
  core::PartialPlacement partial(f.app, f.occupancy, f.objective);
  partial.place(0, 0);
  partial.place(10, 1);
  dc::HostId host = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(partial.can_place(11, host));
    host = (host + 1) % static_cast<dc::HostId>(f.datacenter.host_count());
  }
}
BENCHMARK(BM_CanPlace);

void BM_GetCandidates(benchmark::State& state) {
  auto& f = fixture();
  core::PartialPlacement partial(f.app, f.occupancy, f.objective);
  partial.place(0, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::get_candidates(partial, 10));
  }
}
BENCHMARK(BM_GetCandidates);

// ---- Figure-7-scale candidate generation: indexed descent vs linear ----

/// Steady-state fleet for candidate generation: Figure-7 scale (150 racks x
/// 16 hosts = 2400 hosts) with 19 of every 20 racks exhausted — the regime a
/// long-running cluster operates in, where the linear scan spends its time
/// re-checking full hosts and the feasibility index skips whole racks.
struct CandidateFixture {
  dc::DataCenter datacenter = sim::make_sim_datacenter(150, 16);
  dc::Occupancy occupancy{datacenter};
  topo::AppTopology app;
  core::SearchConfig config;
  core::Objective objective;

  CandidateFixture()
      : app([] {
          util::Rng rng(7);
          return sim::make_multitier(50, sim::RequirementMix::kHeterogeneous,
                                     rng);
        }()),
        objective(app, datacenter, config) {
    for (const dc::Rack& rack : datacenter.racks()) {
      if (rack.id % 20 == 0) continue;  // every 20th rack stays open
      for (const dc::HostId h : rack.hosts) {
        occupancy.add_host_load(h, occupancy.available(h));
      }
    }
  }

  /// Partial placement with one node down, so the measured node has a
  /// placed neighbor and the bandwidth constraint is live.
  [[nodiscard]] core::PartialPlacement seeded_state() const {
    core::PartialPlacement partial(app, occupancy, objective);
    const auto seed = core::get_candidates(partial, 0);
    partial.place(0, seed.front());
    return partial;
  }
};

CandidateFixture& candidate_fixture() {
  static CandidateFixture f;
  return f;
}

void BM_GetCandidatesLinearFig7(benchmark::State& state) {
  auto& f = candidate_fixture();
  const core::PartialPlacement partial = f.seeded_state();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::get_candidates(partial, 1));
  }
}
BENCHMARK(BM_GetCandidatesLinearFig7)->Unit(benchmark::kMicrosecond);

void BM_GetCandidatesIndexedFig7(benchmark::State& state) {
  auto& f = candidate_fixture();
  const core::PartialPlacement partial = f.seeded_state();
  core::CandidateBuffer buf;
  for (auto _ : state) {
    core::get_candidates_indexed(partial, 1, buf);
    benchmark::DoNotOptimize(buf.hosts.data());
  }
}
BENCHMARK(BM_GetCandidatesIndexedFig7)->Unit(benchmark::kMicrosecond);

void BM_CandidateEstimate(benchmark::State& state) {
  auto& f = fixture();
  core::PartialPlacement partial(f.app, f.occupancy, f.objective);
  partial.place(0, 0);
  partial.place(10, 1);
  const double rest = core::Estimator::rest_bound(partial, 11);
  dc::HostId host = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::Estimator::candidate_estimate(partial, 11, host, rest));
    host = (host + 1) % static_cast<dc::HostId>(f.datacenter.host_count());
  }
}
BENCHMARK(BM_CandidateEstimate);

void BM_ImaginaryCompletion(benchmark::State& state) {
  auto& f = fixture();
  core::PartialPlacement partial(f.app, f.occupancy, f.objective);
  partial.place(0, 0);
  partial.place(10, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Estimator::imaginary_completion(partial));
  }
}
BENCHMARK(BM_ImaginaryCompletion);

void BM_PlaceAndClone(benchmark::State& state) {
  auto& f = fixture();
  core::PartialPlacement base(f.app, f.occupancy, f.objective);
  for (topo::NodeId v = 0; v < 20; ++v) {
    base.place(v, static_cast<dc::HostId>(v % 16));
  }
  for (auto _ : state) {
    core::PartialPlacement clone = base;
    clone.place(20, 17);
    benchmark::DoNotOptimize(clone.utility_bound());
  }
}
BENCHMARK(BM_PlaceAndClone);

void BM_PathLinks(benchmark::State& state) {
  auto& f = fixture();
  std::vector<dc::LinkId> links;
  dc::HostId a = 0;
  for (auto _ : state) {
    links.clear();
    f.datacenter.path_links(a, 300, links);
    benchmark::DoNotOptimize(links.data());
    a = (a + 7) % 300;
  }
}
BENCHMARK(BM_PathLinks);

// ---- Figure-7-scale (2400 hosts) fast paths vs their references ----
// Each pair runs the table-driven hot path and the tree-walk / per-call
// implementation it replaced on the same access pattern; the ratio is the
// speedup the PR claims.

void BM_ScopeBetweenFig7(benchmark::State& state) {
  auto& f = fig7();
  const auto n = static_cast<dc::HostId>(f.datacenter.host_count());
  dc::HostId a = 0;
  dc::HostId b = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.datacenter.scope_between(a, b));
    a = (a + 13) % n;
    b = (b + 131) % n;
  }
}
BENCHMARK(BM_ScopeBetweenFig7);

void BM_ScopeBetweenWalkFig7(benchmark::State& state) {
  auto& f = fig7();
  const auto n = static_cast<dc::HostId>(f.datacenter.host_count());
  dc::HostId a = 0;
  dc::HostId b = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.datacenter.scope_between_walk(a, b));
    a = (a + 13) % n;
    b = (b + 131) % n;
  }
}
BENCHMARK(BM_ScopeBetweenWalkFig7);

void BM_PathLinksFig7(benchmark::State& state) {
  auto& f = fig7();
  const auto n = static_cast<dc::HostId>(f.datacenter.host_count());
  dc::HostId a = 0;
  dc::HostId b = 1;
  for (auto _ : state) {
    const dc::PathLinks path = f.datacenter.path_between(a, b);
    benchmark::DoNotOptimize(path.size());
    a = (a + 13) % n;
    b = (b + 131) % n;
  }
}
BENCHMARK(BM_PathLinksFig7);

void BM_PathLinksWalkFig7(benchmark::State& state) {
  auto& f = fig7();
  const auto n = static_cast<dc::HostId>(f.datacenter.host_count());
  std::vector<dc::LinkId> links;
  dc::HostId a = 0;
  dc::HostId b = 1;
  for (auto _ : state) {
    links.clear();
    f.datacenter.path_links_walk(a, b, links);
    benchmark::DoNotOptimize(links.data());
    a = (a + 13) % n;
    b = (b + 131) % n;
  }
}
BENCHMARK(BM_PathLinksWalkFig7);

// The pattern path_between actually replaced in the search hot paths: a
// fresh std::vector filled by the tree walk on every call (partial.cpp's
// place/bandwidth_ok before this PR).
void BM_PathLinksWalkAllocFig7(benchmark::State& state) {
  auto& f = fig7();
  const auto n = static_cast<dc::HostId>(f.datacenter.host_count());
  dc::HostId a = 0;
  dc::HostId b = 1;
  for (auto _ : state) {
    std::vector<dc::LinkId> links;
    f.datacenter.path_links_walk(a, b, links);
    benchmark::DoNotOptimize(links.data());
    a = (a + 13) % n;
    b = (b + 131) % n;
  }
}
BENCHMARK(BM_PathLinksWalkAllocFig7);

void BM_CandidateEstimateFig7(benchmark::State& state) {
  auto& f = fig7();
  core::PartialPlacement partial(f.app, f.occupancy, f.objective);
  partial.place(0, 0);
  partial.place(10, 1);
  const double rest = core::Estimator::rest_bound(partial, 11);
  const auto n = static_cast<dc::HostId>(f.datacenter.host_count());
  dc::HostId host = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::Estimator::candidate_estimate(partial, 11, host, rest));
    host = (host + 1) % n;
  }
}
BENCHMARK(BM_CandidateEstimateFig7);

void BM_CandidateEstimateContextFig7(benchmark::State& state) {
  auto& f = fig7();
  core::PartialPlacement partial(f.app, f.occupancy, f.objective);
  partial.place(0, 0);
  partial.place(10, 1);
  const double rest = core::Estimator::rest_bound(partial, 11);
  // Context built once per placement step, amortized over the candidate
  // fan — exactly how EG uses it.
  const core::NodeEstimateContext context(partial, 11, rest);
  core::EstimateScratch scratch;
  const auto n = static_cast<dc::HostId>(f.datacenter.host_count());
  dc::HostId host = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(context.estimate(host, scratch));
    host = (host + 1) % n;
  }
}
BENCHMARK(BM_CandidateEstimateContextFig7);

// Whole-placement application at Figure-7 scale: staged mode validates in
// the OccupancyDelta overlay and flushes one apply_delta batch, so the
// occupancy.link_reservations per-op churn drops to zero on the success
// path (the `reserve_calls` counter makes the drop visible per apply).
void BM_TransactionStagedFig7(benchmark::State& state) {
  auto& f = fig7();
  dc::Occupancy occupancy = f.occupancy;
  auto& reservations = util::metrics::counter("occupancy.link_reservations");
  const auto before = reservations.value();
  net::PlacementTransaction txn(occupancy,
                                net::PlacementTransaction::Mode::kStaged);
  for (auto _ : state) {
    txn.apply(f.app, f.assignment);
    txn.rollback();
  }
  state.counters["reserve_calls"] = benchmark::Counter(
      static_cast<double>(reservations.value() - before),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_TransactionStagedFig7)->Unit(benchmark::kMicrosecond);

void BM_TransactionDirectFig7(benchmark::State& state) {
  auto& f = fig7();
  dc::Occupancy occupancy = f.occupancy;
  auto& reservations = util::metrics::counter("occupancy.link_reservations");
  const auto before = reservations.value();
  net::PlacementTransaction txn(occupancy,
                                net::PlacementTransaction::Mode::kDirect);
  for (auto _ : state) {
    txn.apply(f.app, f.assignment);
    txn.rollback();
  }
  state.counters["reserve_calls"] = benchmark::Counter(
      static_cast<double>(reservations.value() - before),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_TransactionDirectFig7)->Unit(benchmark::kMicrosecond);

void BM_EgSmall(benchmark::State& state) {
  auto& f = fixture();
  const auto order = core::eg_sort_order(f.app);
  for (auto _ : state) {
    core::GreedyOutcome outcome = core::run_greedy(
        core::Algorithm::kEg,
        core::PartialPlacement(f.app, f.occupancy, f.objective), order,
        nullptr);
    benchmark::DoNotOptimize(outcome.feasible);
  }
}
BENCHMARK(BM_EgSmall)->Unit(benchmark::kMillisecond);

void BM_MaxMinFair(benchmark::State& state) {
  auto& f = fixture();
  std::vector<net::Flow> flows;
  util::Rng rng(3);
  for (int i = 0; i < 64; ++i) {
    flows.push_back({static_cast<dc::HostId>(rng.next_below(320)),
                     static_cast<dc::HostId>(rng.next_below(320)), 500.0});
  }
  for (auto& flow : flows) {
    if (flow.src == flow.dst) flow.dst = (flow.dst + 1) % 320;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::max_min_fair_rates(f.datacenter, flows));
  }
}
BENCHMARK(BM_MaxMinFair);

void BM_VerifySignatureDetect(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::detect_symmetry_groups(f.app));
  }
}
BENCHMARK(BM_VerifySignatureDetect);

// ---- Search-core memory model: pooled arena vs reference containers ----

// State branching, the innermost search operation: reference clones the
// parent (full container copy) and places; the pooled core branch_from's a
// recycled arena state in O(delta) and places.  Same logical operation as
// BM_PlaceAndClone above.
void BM_BranchFromPooled(benchmark::State& state) {
  auto& f = fixture();
  core::PartialPlacement base(f.app, f.occupancy, f.objective);
  for (topo::NodeId v = 0; v < 20; ++v) {
    base.place(v, static_cast<dc::HostId>(v % 16));
  }
  core::SearchArena arena;
  arena.begin_plan(false, 16);
  core::PartialPlacement& root = arena.acquire(base);
  root.assign_pooled_flat(base);
  core::PartialPlacement& child = arena.acquire(root);
  for (auto _ : state) {
    // branch_from resets the recycled slot: exactly the steady-state path.
    child.branch_from(root);
    child.place(20, 17);
    benchmark::DoNotOptimize(child.utility_bound());
  }
  arena.end_plan();
}
BENCHMARK(BM_BranchFromPooled);

// Whole BA* plan on the 320-host fixture under a deterministic open-queue
// valve, on the core selected by --search-core (pooled by default).  The
// valve caps the work identically for both cores, so comparing two runs of
// this benchmark with the two flag values is an apples-to-apples speedup.
void BM_BaStarValveCapped(benchmark::State& state) {
  auto& f = fixture();
  core::SearchConfig config = f.config;
  config.max_open_paths = 500;
  config.search_core = g_bench_search_core;
  std::uint64_t expanded = 0;
  for (auto _ : state) {
    const core::AStarOutcome outcome =
        core::run_astar(core::PartialPlacement(f.app, f.occupancy, f.objective),
                        config, false, nullptr);
    benchmark::DoNotOptimize(outcome.feasible);
    expanded += outcome.stats.paths_expanded;
  }
  state.counters["expansions_per_sec"] = benchmark::Counter(
      static_cast<double>(expanded), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BaStarValveCapped)->Unit(benchmark::kMillisecond);

// Per-event cost of the observability layer itself, enabled vs disabled —
// the margin every instrumented hot path pays (ISSUE acceptance: enabled
// must stay within 2% on the placement micro-benchmarks above).
void BM_MetricsCounterEnabled(benchmark::State& state) {
  util::metrics::set_enabled(true);
  auto& counter = util::metrics::counter("bench.micro_counter");
  for (auto _ : state) counter.inc();
}
BENCHMARK(BM_MetricsCounterEnabled);

void BM_MetricsCounterDisabled(benchmark::State& state) {
  util::metrics::set_enabled(false);
  auto& counter = util::metrics::counter("bench.micro_counter");
  for (auto _ : state) counter.inc();
  util::metrics::set_enabled(true);
}
BENCHMARK(BM_MetricsCounterDisabled);

void BM_MetricsSummaryObserve(benchmark::State& state) {
  util::metrics::set_enabled(true);
  auto& summary = util::metrics::summary("bench.micro_summary");
  double v = 0.0;
  for (auto _ : state) summary.observe(v += 1.0);
}
BENCHMARK(BM_MetricsSummaryObserve);

/// Measures both candidate-generation paths on the steady-state Figure-7
/// fleet and writes BENCH_candidates.json (ops/sec, speedup, prune counters
/// per call) so the perf trajectory tracking has machine-readable points.
void write_candidates_json(bool smoke) {
  auto& f = candidate_fixture();
  const core::PartialPlacement partial = f.seeded_state();
  const int iterations = smoke ? 200 : 20000;

  const std::vector<dc::HostId> reference = core::get_candidates(partial, 1);
  core::CandidateBuffer buf;
  core::get_candidates_indexed(partial, 1, buf);
  if (buf.hosts != reference) {
    throw std::runtime_error(
        "BENCH_candidates: indexed candidates differ from the linear scan");
  }

  util::WallTimer linear_timer;
  for (int i = 0; i < iterations; ++i) {
    benchmark::DoNotOptimize(core::get_candidates(partial, 1));
  }
  const double linear_seconds = linear_timer.elapsed_seconds();

  auto& subtrees = util::metrics::counter("candidates.subtrees_pruned");
  auto& skipped = util::metrics::counter("candidates.hosts_skipped");
  const std::uint64_t subtrees_before = subtrees.value();
  const std::uint64_t skipped_before = skipped.value();
  util::WallTimer indexed_timer;
  for (int i = 0; i < iterations; ++i) {
    core::get_candidates_indexed(partial, 1, buf);
    benchmark::DoNotOptimize(buf.hosts.data());
  }
  const double indexed_seconds = indexed_timer.elapsed_seconds();
  const double per_call = 1.0 / static_cast<double>(iterations);

  util::JsonObject out;
  out["benchmark"] = "get_candidates_fig7";
  out["hosts"] = static_cast<int>(f.datacenter.host_count());
  out["iterations"] = iterations;
  out["candidates_returned"] = static_cast<int>(reference.size());
  out["linear_ops_per_sec"] = iterations / linear_seconds;
  out["indexed_ops_per_sec"] = iterations / indexed_seconds;
  out["speedup"] = linear_seconds / indexed_seconds;
  out["subtrees_pruned_per_call"] =
      static_cast<double>(subtrees.value() - subtrees_before) * per_call;
  out["hosts_skipped_per_call"] =
      static_cast<double>(skipped.value() - skipped_before) * per_call;
  std::ofstream file("BENCH_candidates.json");
  file << util::Json(std::move(out)).pretty() << '\n';
}

/// Quantifies the budget controller (DESIGN.md section 8) and writes
/// BENCH_budget.json.  Two scenarios:
///   1. Valve-fire recovery — an EG-dead-end instance (greedy co-locates
///      the pipe endpoints on the big host and strands the large VM) run
///      under a deliberately tight max_open_paths.  --budget=fixed fails
///      outright; --budget=auto converges via widened retries.
///   2. Auto sizing — DBA* on the 320-host fixture, recording the budget
///      the controller chose versus the fixed 2M default.
void write_budget_json(bool smoke) {
  dc::DataCenterBuilder builder;
  const auto site = builder.add_site("site", 64000.0);
  const auto pod = builder.add_pod(site, "pod", 64000.0);
  const auto rack = builder.add_rack(pod, "rack", 32000.0);
  builder.add_host(rack, "big", {16.0, 32.0, 500.0}, 4000.0);
  builder.add_host(rack, "h1", {8.0, 16.0, 500.0}, 4000.0);
  builder.add_host(rack, "h2", {8.0, 16.0, 500.0}, 4000.0);
  const dc::DataCenter datacenter = builder.build();
  const dc::Occupancy occupancy(datacenter);

  topo::TopologyBuilder app_builder;
  app_builder.add_vm("x", {4.0, 4.0, 0.0});
  app_builder.add_vm("y", {4.0, 4.0, 0.0});
  app_builder.add_vm("z", {12.0, 2.0, 0.0});
  app_builder.connect("x", "y", 500.0);
  const topo::AppTopology app = app_builder.build();

  core::SearchConfig tight;
  tight.max_open_paths = 1;  // the valve fires on the first expansion
  const core::Placement fixed_run = core::place_topology(
      occupancy, app, core::Algorithm::kBaStar, tight);

  core::SearchConfig adaptive = tight;
  adaptive.budget_mode = core::BudgetMode::kAuto;
  const core::Placement auto_run = core::place_topology(
      occupancy, app, core::Algorithm::kBaStar, adaptive);
  if (!auto_run.feasible) {
    throw std::runtime_error(
        "BENCH_budget: auto mode failed to recover from the valve fire");
  }

  auto& f = fixture();
  core::SearchConfig sized;
  sized.budget_mode = core::BudgetMode::kAuto;
  sized.deadline_seconds = smoke ? 0.05 : 0.5;
  const core::Placement sized_run = core::place_topology(
      f.occupancy, f.app, core::Algorithm::kDbaStar, sized);

  util::JsonObject out;
  out["benchmark"] = "budget_controller";
  out["valve_seed_max_open_paths"] = static_cast<int>(tight.max_open_paths);
  out["valve_fixed_feasible"] = fixed_run.feasible;
  out["valve_fixed_hit_open_limit"] = fixed_run.stats.hit_open_limit;
  out["valve_auto_feasible"] = auto_run.feasible;
  out["valve_auto_retries"] = static_cast<int>(auto_run.stats.budget_retries);
  out["valve_auto_final_max_open_paths"] =
      static_cast<std::int64_t>(auto_run.stats.effective_max_open_paths);
  out["sized_dba_feasible"] = sized_run.feasible;
  out["sized_dba_max_open_paths"] =
      static_cast<std::int64_t>(sized_run.stats.effective_max_open_paths);
  out["sized_dba_beam_width"] =
      static_cast<std::int64_t>(sized_run.stats.effective_beam_width);
  out["sized_dba_open_queue_peak"] =
      static_cast<std::int64_t>(sized_run.stats.open_queue_peak);
  out["fixed_default_max_open_paths"] =
      static_cast<std::int64_t>(core::SearchConfig{}.max_open_paths);
  std::ofstream file("BENCH_budget.json");
  file << util::Json(std::move(out)).pretty() << '\n';
}

/// Quantifies the pooled search core (SearchCore::kPooled; DESIGN.md
/// section 11) against the reference containers at Figure-7 scale (2400
/// hosts, 200-VM multitier stack) and writes BENCH_search_core.json.
/// The data center is driven near capacity (every rack but each 20th is
/// exhausted) so the sharp-ordering search performs deep dives — depth
/// ~|app| chains are where the memory models diverge — and a fixed
/// expansion budget bounds the identical work both cores perform
/// (assignments are compared to prove it).  The comparison reports
/// expansions/sec, the speedup, heap allocations per plan on both cores,
/// the pooled core's steady-state allocation delta (zero: warm plans only
/// touch recycled arena memory), and the arena's retained bytes.
void write_search_core_json(bool smoke) {
  auto& f = fig7();
  dc::Occupancy occupancy(f.datacenter);
  for (const dc::Rack& rack : f.datacenter.racks()) {
    if (rack.id % 20 == 0) continue;  // stays open
    for (const dc::HostId h : rack.hosts) {
      occupancy.add_host_load(h, occupancy.available(h));
    }
  }
  util::Rng rng(11);
  const topo::AppTopology app =
      sim::make_multitier(smoke ? 60 : 200, sim::RequirementMix::kHeterogeneous,
                          rng);
  core::SearchConfig config;
  // Deterministic DBA* dive: an unlimited deadline disables the stochastic
  // pruning and the load-estimation checkpoints, the sharp ordering keeps
  // the search expanding deep states after the first incumbent, and the
  // expansion budget stops both cores at the exact same point of the exact
  // same search.  (The open-path valve cannot bound this workload: the
  // post-dive drain re-fills the open list below any valve level.)
  config.deadline_seconds = 0.0;
  config.initial_prune_range = 0.0;
  config.dba_beam_width = 8;
  config.max_expansions = smoke ? 400 : 2000;
  const core::Objective objective(app, f.datacenter, config);
  const int plans = smoke ? 2 : 4;

  struct CoreRun {
    double seconds = 0.0;
    std::uint64_t expanded = 0;
    std::vector<std::uint64_t> allocs;  // per-plan heap allocations
    core::SearchStats last_stats;
    net::Assignment assignment;
  };
  const auto measure = [&](core::SearchCore search_core) {
    core::SearchConfig run_config = config;
    run_config.search_core = search_core;
    // Warm-up plan: grows the pooled arena (and the allocator's own caches
    // for the reference core) so the measured plans are steady-state.
    (void)core::run_astar(
        core::PartialPlacement(app, occupancy, objective), run_config,
        true, nullptr);
    CoreRun run;
    for (int i = 0; i < plans; ++i) {
      const std::uint64_t allocs_before = heap_alloc_count();
      const util::WallTimer timer;
      const core::AStarOutcome outcome = core::run_astar(
          core::PartialPlacement(app, occupancy, objective), run_config,
          true, nullptr);
      run.seconds += timer.elapsed_seconds();
      run.allocs.push_back(heap_alloc_count() - allocs_before);
      run.expanded += outcome.stats.paths_expanded;
      run.last_stats = outcome.stats;
      run.assignment = outcome.state.assignment();
    }
    return run;
  };

  const CoreRun reference = measure(core::SearchCore::kReference);
  const CoreRun pooled = measure(core::SearchCore::kPooled);
  if (pooled.assignment != reference.assignment) {
    throw std::runtime_error(
        "BENCH_search_core: pooled assignment differs from reference");
  }
  if (pooled.last_stats.paths_expanded !=
      reference.last_stats.paths_expanded) {
    throw std::runtime_error(
        "BENCH_search_core: pooled expansion count differs from reference");
  }

  const auto mean = [](const std::vector<std::uint64_t>& v) {
    std::uint64_t sum = 0;
    for (const std::uint64_t x : v) sum += x;
    return static_cast<double>(sum) / static_cast<double>(v.size());
  };
  // Steady state: consecutive warm pooled plans must allocate identically;
  // report the largest consecutive difference (expected 0).
  std::uint64_t steady_delta = 0;
  for (std::size_t i = 1; i < pooled.allocs.size(); ++i) {
    const std::uint64_t a = pooled.allocs[i - 1];
    const std::uint64_t b = pooled.allocs[i];
    steady_delta = std::max(steady_delta, a > b ? a - b : b - a);
  }

  util::JsonObject out;
  out["benchmark"] = "search_core_fig7";
  out["hosts"] = static_cast<int>(f.datacenter.host_count());
  out["app_nodes"] = static_cast<int>(app.node_count());
  out["expansion_budget"] = static_cast<std::int64_t>(config.max_expansions);
  out["plans_measured"] = plans;
  out["expansions_per_plan"] = static_cast<double>(pooled.expanded) / plans;
  out["reference_expansions_per_sec"] =
      static_cast<double>(reference.expanded) / reference.seconds;
  out["pooled_expansions_per_sec"] =
      static_cast<double>(pooled.expanded) / pooled.seconds;
  out["speedup"] = reference.seconds / pooled.seconds;
  out["reference_allocs_per_plan"] = mean(reference.allocs);
  out["pooled_allocs_per_plan"] = mean(pooled.allocs);
  out["pooled_steady_state_alloc_delta"] =
      static_cast<std::int64_t>(steady_delta);
  out["pooled_bytes_per_plan"] =
      static_cast<std::int64_t>(pooled.last_stats.arena_bytes);
  out["pooled_arena_states"] =
      static_cast<std::int64_t>(pooled.last_stats.arena_states);
  out["pooled_arena_reused"] = pooled.last_stats.arena_reused;
  std::ofstream file("BENCH_search_core.json");
  file << util::Json(std::move(out)).pretty() << '\n';
}

/// Quantifies the precomputed prune labels (SearchConfig::use_prune_labels;
/// DESIGN.md section 12) and writes BENCH_labels.json.  Three sections:
///   1. Comparable dive — the exact workload of BENCH_search_core.json
///      (Figure-7 fleet, deterministic DBA* dive, pooled core) with labels
///      on; its pooled_expansions_per_sec is diffed against
///      BENCH_search_core.json by scripts/compare_bench.py in CI, gating
///      the labels overhead on the regime where they rarely fire.
///   2. BA* expansion drop — a fragmented near-full fleet (every rack down
///      to at most one feasible host, 10 open hosts across 150 racks):
///      the regime the labels were built for, where the separation ladder
///      and the host climb tighten nearly every edge bound.  Labels on vs
///      off, same final assignment required, expansion drop recorded.
///   3. Maintenance cost — label rebuild seconds at 2400 hosts and the
///      per-commit refresh cost on the live add/remove path.
void write_labels_json(bool smoke) {
  auto& f = fig7();

  // ---- 1. Comparable dive (same shaping as write_search_core_json) ----
  dc::Occupancy dive_occupancy(f.datacenter);
  for (const dc::Rack& rack : f.datacenter.racks()) {
    if (rack.id % 20 == 0) continue;  // stays open
    for (const dc::HostId h : rack.hosts) {
      dive_occupancy.add_host_load(h, dive_occupancy.available(h));
    }
  }
  util::Rng rng(11);
  const topo::AppTopology dive_app = sim::make_multitier(
      smoke ? 60 : 200, sim::RequirementMix::kHeterogeneous, rng);
  core::SearchConfig dive_config;
  dive_config.deadline_seconds = 0.0;
  dive_config.initial_prune_range = 0.0;
  dive_config.dba_beam_width = 8;
  dive_config.max_expansions = smoke ? 400 : 2000;
  dive_config.search_core = core::SearchCore::kPooled;
  dive_config.use_prune_labels = true;
  const core::Objective dive_objective(dive_app, f.datacenter, dive_config);
  const int plans = smoke ? 2 : 4;
  // Warm-up grows the arena so the measured plans are steady-state.
  (void)core::run_astar(
      core::PartialPlacement(dive_app, dive_occupancy, dive_objective,
                             dive_config.use_prune_labels),
      dive_config, true, nullptr);
  double dive_seconds = 0.0;
  std::uint64_t dive_expanded = 0;
  for (int i = 0; i < plans; ++i) {
    const util::WallTimer timer;
    const core::AStarOutcome outcome = core::run_astar(
        core::PartialPlacement(dive_app, dive_occupancy, dive_objective,
                               dive_config.use_prune_labels),
        dive_config, true, nullptr);
    dive_seconds += timer.elapsed_seconds();
    dive_expanded += outcome.stats.paths_expanded;
  }

  // ---- 2. BA* expansion drop on the fragmented near-full fleet ----
  // Ten hosts spread across ten racks keep (5, 10, 300) free — enough for
  // any single sim VM (at most 4 cores) but not for most pairs, so the
  // reference bound's same-host optimism is wrong on most edges while the
  // co-location escalate (root max_free) and the one-feasible-host-per-rack
  // separation ladder correct it to the true cross-rack distance.
  dc::Occupancy full_occupancy(f.datacenter);
  for (const dc::Rack& rack : f.datacenter.racks()) {
    for (std::size_t i = 0; i < rack.hosts.size(); ++i) {
      const dc::HostId h = rack.hosts[i];
      if (i == 0 && rack.id % 15 == 0) {
        const topo::Resources free = full_occupancy.available(h);
        full_occupancy.add_host_load(
            h, {free.vcpus - 5.0, free.mem_gb - 10.0, free.disk_gb - 300.0});
        continue;
      }
      full_occupancy.add_host_load(h, full_occupancy.available(h));
    }
  }
  util::Rng app_rng(13);
  const topo::AppTopology ba_app = sim::make_multitier(
      smoke ? 10 : 15, sim::RequirementMix::kHeterogeneous, app_rng);
  core::SearchConfig ba_config;
  ba_config.max_expansions = smoke ? 3000 : 20000;
  ba_config.search_core = core::SearchCore::kPooled;
  const core::Objective ba_objective(ba_app, f.datacenter, ba_config);

  struct LabelRun {
    double seconds = 0.0;
    core::SearchStats stats;
    bool feasible = false;
    net::Assignment assignment;
    std::uint64_t separation_escalations = 0;
    std::uint64_t host_escalations = 0;
  };
  const auto measure_ba = [&](bool use_labels) {
    auto& m_sep = util::metrics::counter("heuristic.separation_escalations");
    auto& m_host = util::metrics::counter("heuristic.host_escalations");
    const std::uint64_t sep_before = m_sep.value();
    const std::uint64_t host_before = m_host.value();
    LabelRun run;
    const util::WallTimer timer;
    const core::AStarOutcome outcome = core::run_astar(
        core::PartialPlacement(ba_app, full_occupancy, ba_objective,
                               use_labels),
        ba_config, false, nullptr);
    run.seconds = timer.elapsed_seconds();
    run.stats = outcome.stats;
    run.feasible = outcome.feasible;
    if (outcome.feasible) run.assignment = outcome.state.assignment();
    run.separation_escalations = m_sep.value() - sep_before;
    run.host_escalations = m_host.value() - host_before;
    return run;
  };
  const LabelRun labels_off = measure_ba(false);
  const LabelRun labels_on = measure_ba(true);
  if (labels_on.feasible != labels_off.feasible ||
      labels_on.assignment != labels_off.assignment) {
    throw std::runtime_error(
        "BENCH_labels: labels-on placement differs from labels-off");
  }
  const double drop_pct =
      labels_off.stats.paths_expanded == 0
          ? 0.0
          : 100.0 *
                (1.0 - static_cast<double>(labels_on.stats.paths_expanded) /
                           static_cast<double>(labels_off.stats.paths_expanded));

  // ---- 3. Maintenance cost at Figure-7 scale ----
  const int rebuilds = smoke ? 3 : 20;
  const util::WallTimer rebuild_timer;
  for (int i = 0; i < rebuilds; ++i) {
    dc::PruneLabels fresh;
    fresh.rebuild(f.datacenter, full_occupancy.feasibility());
    benchmark::DoNotOptimize(&fresh);
  }
  const double rebuild_seconds = rebuild_timer.elapsed_seconds() / rebuilds;

  auto& m_refreshes = util::metrics::counter("labels.refreshes");
  const std::uint64_t refreshes_before = m_refreshes.value();
  const int refresh_ops = smoke ? 2000 : 100000;
  const topo::Resources slice{1.0, 2.0, 10.0};
  const auto open_host = static_cast<dc::HostId>(0);
  const util::WallTimer refresh_timer;
  for (int i = 0; i < refresh_ops; ++i) {
    // Alternating add/remove flips host 0's feasibility every other op, so
    // the measured cost covers both the early-out and the cascade path.
    full_occupancy.add_host_load(open_host, slice);
    full_occupancy.remove_host_load(open_host, slice);
  }
  const double refresh_seconds = refresh_timer.elapsed_seconds();
  const std::uint64_t refreshes = m_refreshes.value() - refreshes_before;

  util::JsonObject out;
  out["benchmark"] = "prune_labels_fig7";
  out["hosts"] = static_cast<int>(f.datacenter.host_count());
  out["dive_app_nodes"] = static_cast<int>(dive_app.node_count());
  out["dive_plans_measured"] = plans;
  out["dive_expansions_per_plan"] =
      static_cast<double>(dive_expanded) / plans;
  out["pooled_expansions_per_sec"] =
      static_cast<double>(dive_expanded) / dive_seconds;
  out["ba_app_nodes"] = static_cast<int>(ba_app.node_count());
  out["ba_feasible"] = labels_on.feasible;
  out["ba_on_expansions"] =
      static_cast<std::int64_t>(labels_on.stats.paths_expanded);
  out["ba_off_expansions"] =
      static_cast<std::int64_t>(labels_off.stats.paths_expanded);
  out["ba_expansion_drop_pct"] = drop_pct;
  out["ba_on_open_queue_peak"] =
      static_cast<std::int64_t>(labels_on.stats.open_queue_peak);
  out["ba_off_open_queue_peak"] =
      static_cast<std::int64_t>(labels_off.stats.open_queue_peak);
  out["ba_on_seconds_per_plan"] = labels_on.seconds;
  out["ba_off_seconds_per_plan"] = labels_off.seconds;
  out["ba_speedup"] = labels_off.seconds / labels_on.seconds;
  out["ba_separation_escalations"] =
      static_cast<std::int64_t>(labels_on.separation_escalations);
  out["ba_host_escalations"] =
      static_cast<std::int64_t>(labels_on.host_escalations);
  out["label_rebuild_seconds"] = rebuild_seconds;
  out["label_refresh_ns_per_commit"] =
      refresh_seconds * 1e9 / (2.0 * refresh_ops);
  out["label_refreshes_per_commit"] =
      static_cast<double>(refreshes) / (2.0 * refresh_ops);
  std::ofstream file("BENCH_labels.json");
  file << util::Json(std::move(out)).pretty() << '\n';
}

}  // namespace

// google-benchmark rejects unknown flags, so --smoke (the CI sanity mode:
// every benchmark runs, but only for ~10 ms each) and
// --search-core=<pooled|reference> (the memory model the search benchmarks
// run on) are peeled off before Initialize.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    const std::string_view view(argv[i]);
    if (view == "--smoke") {
      smoke = true;
      continue;
    }
    if (view.rfind("--search-core=", 0) == 0) {
      g_bench_search_core = core::parse_search_core(
          std::string(view.substr(std::string_view("--search-core=").size())));
      continue;
    }
    args.push_back(argv[i]);
  }
  std::string min_time = "--benchmark_min_time=0.01";
  if (smoke) args.push_back(min_time.data());
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  write_candidates_json(smoke);
  write_budget_json(smoke);
  write_search_core_json(smoke);
  write_labels_json(smoke);
  benchmark::Shutdown();
  return 0;
}
