// Micro-benchmarks (google-benchmark) for the placement hot paths: the
// constraint checks and estimates that the searches evaluate millions of
// times, path enumeration in the data-center tree, placement application,
// and the max-min fair solver that backs the QFS simulator.
#include <benchmark/benchmark.h>

#include "core/candidates.h"
#include "core/estimator.h"
#include "core/greedy.h"
#include "core/objective.h"
#include "core/partial.h"
#include "core/symmetry.h"
#include "net/maxmin.h"
#include "sim/clusters.h"
#include "sim/workloads.h"
#include "util/metrics.h"

namespace {

using namespace ostro;

struct MicroFixture {
  dc::DataCenter datacenter = sim::make_sim_datacenter(20, 16);  // 320 hosts
  dc::Occupancy occupancy{datacenter};
  topo::AppTopology app;
  core::SearchConfig config;
  core::Objective objective;

  MicroFixture()
      : app([] {
          util::Rng rng(7);
          return sim::make_multitier(50, sim::RequirementMix::kHeterogeneous,
                                     rng);
        }()),
        objective(app, datacenter, config) {
    util::Rng rng(7);
    sim::apply_sim_preload(occupancy, rng);
  }
};

MicroFixture& fixture() {
  static MicroFixture f;
  return f;
}

void BM_CanPlace(benchmark::State& state) {
  auto& f = fixture();
  core::PartialPlacement partial(f.app, f.occupancy, f.objective);
  partial.place(0, 0);
  partial.place(10, 1);
  dc::HostId host = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(partial.can_place(11, host));
    host = (host + 1) % static_cast<dc::HostId>(f.datacenter.host_count());
  }
}
BENCHMARK(BM_CanPlace);

void BM_GetCandidates(benchmark::State& state) {
  auto& f = fixture();
  core::PartialPlacement partial(f.app, f.occupancy, f.objective);
  partial.place(0, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::get_candidates(partial, 10));
  }
}
BENCHMARK(BM_GetCandidates);

void BM_CandidateEstimate(benchmark::State& state) {
  auto& f = fixture();
  core::PartialPlacement partial(f.app, f.occupancy, f.objective);
  partial.place(0, 0);
  partial.place(10, 1);
  const double rest = core::Estimator::rest_bound(partial, 11);
  dc::HostId host = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::Estimator::candidate_estimate(partial, 11, host, rest));
    host = (host + 1) % static_cast<dc::HostId>(f.datacenter.host_count());
  }
}
BENCHMARK(BM_CandidateEstimate);

void BM_ImaginaryCompletion(benchmark::State& state) {
  auto& f = fixture();
  core::PartialPlacement partial(f.app, f.occupancy, f.objective);
  partial.place(0, 0);
  partial.place(10, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Estimator::imaginary_completion(partial));
  }
}
BENCHMARK(BM_ImaginaryCompletion);

void BM_PlaceAndClone(benchmark::State& state) {
  auto& f = fixture();
  core::PartialPlacement base(f.app, f.occupancy, f.objective);
  for (topo::NodeId v = 0; v < 20; ++v) {
    base.place(v, static_cast<dc::HostId>(v % 16));
  }
  for (auto _ : state) {
    core::PartialPlacement clone = base;
    clone.place(20, 17);
    benchmark::DoNotOptimize(clone.utility_bound());
  }
}
BENCHMARK(BM_PlaceAndClone);

void BM_PathLinks(benchmark::State& state) {
  auto& f = fixture();
  std::vector<dc::LinkId> links;
  dc::HostId a = 0;
  for (auto _ : state) {
    links.clear();
    f.datacenter.path_links(a, 300, links);
    benchmark::DoNotOptimize(links.data());
    a = (a + 7) % 300;
  }
}
BENCHMARK(BM_PathLinks);

void BM_EgSmall(benchmark::State& state) {
  auto& f = fixture();
  const auto order = core::eg_sort_order(f.app);
  for (auto _ : state) {
    core::GreedyOutcome outcome = core::run_greedy(
        core::Algorithm::kEg,
        core::PartialPlacement(f.app, f.occupancy, f.objective), order,
        nullptr);
    benchmark::DoNotOptimize(outcome.feasible);
  }
}
BENCHMARK(BM_EgSmall)->Unit(benchmark::kMillisecond);

void BM_MaxMinFair(benchmark::State& state) {
  auto& f = fixture();
  std::vector<net::Flow> flows;
  util::Rng rng(3);
  for (int i = 0; i < 64; ++i) {
    flows.push_back({static_cast<dc::HostId>(rng.next_below(320)),
                     static_cast<dc::HostId>(rng.next_below(320)), 500.0});
  }
  for (auto& flow : flows) {
    if (flow.src == flow.dst) flow.dst = (flow.dst + 1) % 320;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::max_min_fair_rates(f.datacenter, flows));
  }
}
BENCHMARK(BM_MaxMinFair);

void BM_VerifySignatureDetect(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::detect_symmetry_groups(f.app));
  }
}
BENCHMARK(BM_VerifySignatureDetect);

// Per-event cost of the observability layer itself, enabled vs disabled —
// the margin every instrumented hot path pays (ISSUE acceptance: enabled
// must stay within 2% on the placement micro-benchmarks above).
void BM_MetricsCounterEnabled(benchmark::State& state) {
  util::metrics::set_enabled(true);
  auto& counter = util::metrics::counter("bench.micro_counter");
  for (auto _ : state) counter.inc();
}
BENCHMARK(BM_MetricsCounterEnabled);

void BM_MetricsCounterDisabled(benchmark::State& state) {
  util::metrics::set_enabled(false);
  auto& counter = util::metrics::counter("bench.micro_counter");
  for (auto _ : state) counter.inc();
  util::metrics::set_enabled(true);
}
BENCHMARK(BM_MetricsCounterDisabled);

void BM_MetricsSummaryObserve(benchmark::State& state) {
  util::metrics::set_enabled(true);
  auto& summary = util::metrics::summary("bench.micro_summary");
  double v = 0.0;
  for (auto _ : state) summary.observe(v += 1.0);
}
BENCHMARK(BM_MetricsSummaryObserve);

}  // namespace

BENCHMARK_MAIN();
