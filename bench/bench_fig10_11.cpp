// Figures 10 and 11 of the paper: the mesh-communication application
// scalability sweep on the 2400-host simulated data center.
//   Figure 10a/10b — reserved bandwidth vs size (het 25..200 / hom 35..280);
//   Figure 10c/10d — run time vs size;
//   Figure 11      — total used hosts vs size (heterogeneous).
// Expected shape: bandwidth much larger than the multi-tier case (denser
// pipes), run times higher for every algorithm, and DBA* beating all the
// greedy baselines including EG_BW on bandwidth.
#include "scaling.h"

int main(int argc, char** argv) {
  using namespace ostro;
  util::ArgParser args("bench_fig10_11", "Figures 10-11: mesh sweep");
  bench::add_common_flags(args);
  args.add_string("het-sizes", "25,50,100,150,200",
                  "heterogeneous sizes (VMs, multiples of 5)");
  args.add_string("hom-sizes", "35,70,140,210,280",
                  "homogeneous sizes (VMs, multiples of 5)");
  args.add_int("racks", 150, "data-center racks (16 hosts each)");
  if (!args.parse(argc, argv)) return 0;
  bench::apply_metrics_flags(args);

  const auto algorithms = bench::figure_algorithms();
  for (const auto mix : {sim::RequirementMix::kHeterogeneous,
                         sim::RequirementMix::kHomogeneous}) {
    const bool het = mix == sim::RequirementMix::kHeterogeneous;
    std::vector<int> sizes;
    if (args.flag("full")) {
      sizes = het ? std::vector<int>{25, 50, 75, 100, 125, 150, 175, 200}
                  : std::vector<int>{35, 70, 105, 140, 175, 210, 245, 280};
    } else {
      sizes = util::parse_int_list(
          args.get_string(het ? "het-sizes" : "hom-sizes"));
    }
    const bool uniform = !het;  // paper pairing, as in Figures 7-9
    const auto sweep = bench::run_scaling_sweep(
        bench::Workload::kMesh, mix, sizes, algorithms,
        static_cast<int>(args.get_int("runs")),
        static_cast<std::uint64_t>(args.get_int("seed")),
        static_cast<int>(args.get_int("racks")), uniform);
    const std::string suffix =
        std::string(sim::to_string(mix)) +
        (uniform ? ", uniform availability" : ", non-uniform availability");

    bench::emit_sweep_metric(
        sweep, sizes, algorithms,
        [](const bench::SweepCell& cell) {
          return bench::mean_pm(cell.bandwidth_gbps, 1);
        },
        "reserved bandwidth (Gbps)", args,
        "Figure 10 (mesh, " + suffix + ")");
    bench::emit_sweep_metric(
        sweep, sizes, algorithms,
        [](const bench::SweepCell& cell) {
          return bench::mean_pm(cell.runtime_seconds, 2);
        },
        "run time (sec)", args, "Figure 10 (mesh, " + suffix + ")");
    if (het) {
      bench::emit_sweep_metric(
          sweep, sizes, algorithms,
          [](const bench::SweepCell& cell) {
            return bench::mean_pm(cell.total_hosts, 0);
          },
          "total used hosts", args, "Figure 11 (mesh, " + suffix + ")");
    }
  }
  bench::emit_metrics(args);
  return 0;
}
