// Max-min fair bandwidth allocation over the data-center tree.
//
// The QFS testbed experiments of the paper observe application throughput as
// a function of placement; this solver reproduces that observable in
// simulation.  Given a set of flows (host pairs with a demand), progressive
// filling assigns each flow the max-min fair rate subject to every link
// capacity along its path: rates grow together until a link saturates, flows
// through saturated links freeze, and the rest keep growing until all flows
// are frozen at a bottleneck or at their demand.
#pragma once

#include <vector>

#include "datacenter/datacenter.h"
#include "datacenter/occupancy.h"

namespace ostro::net {

struct Flow {
  dc::HostId src = dc::kInvalidHost;
  dc::HostId dst = dc::kInvalidHost;
  /// Offered load (Mbps); the allocated rate never exceeds it. Must be > 0.
  double demand_mbps = 0.0;
};

struct FairShareResult {
  /// Allocated rate per flow, parallel to the input vector.
  std::vector<double> rate_mbps;
  /// Sum of allocated rates.
  double total_mbps = 0.0;
  /// Number of progressive-filling rounds performed.
  int rounds = 0;
};

/// Solves max-min fairness against the full link capacities of `dc`.
[[nodiscard]] FairShareResult max_min_fair_rates(const dc::DataCenter& dc,
                                                 const std::vector<Flow>& flows);

/// Same, but capacities are reduced by what `occupancy` has already
/// reserved (background traffic from other tenants).
[[nodiscard]] FairShareResult max_min_fair_rates(const dc::Occupancy& occupancy,
                                                 const std::vector<Flow>& flows);

}  // namespace ostro::net
