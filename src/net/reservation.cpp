#include "net/reservation.h"

#include <stdexcept>

namespace ostro::net {

PlacementTransaction::~PlacementTransaction() {
  if (!committed_) rollback();
}

void PlacementTransaction::rollback() noexcept {
  // Undo in reverse order; release/remove cannot throw for amounts that were
  // successfully reserved.
  for (auto it = link_ops_.rbegin(); it != link_ops_.rend(); ++it) {
    occupancy_->release_link(it->link, it->mbps);
  }
  for (auto it = host_ops_.rbegin(); it != host_ops_.rend(); ++it) {
    occupancy_->remove_host_load(it->host, it->load);
    occupancy_->set_active(it->host, it->was_active);
  }
  host_ops_.clear();
  link_ops_.clear();
  committed_ = true;  // nothing left to roll back
}

void PlacementTransaction::apply(const topo::AppTopology& topology,
                                 const Assignment& assignment) {
  if (assignment.size() != topology.node_count()) {
    throw std::invalid_argument(
        "PlacementTransaction::apply: assignment size mismatch");
  }
  const dc::DataCenter& datacenter = occupancy_->datacenter();
  try {
    for (const auto& node : topology.nodes()) {
      const dc::HostId host = assignment[node.id];
      if (host == dc::kInvalidHost || host >= datacenter.host_count()) {
        throw std::invalid_argument("node " + node.name + " is unplaced");
      }
      const bool was_active = occupancy_->is_active(host);
      occupancy_->add_host_load(host, node.requirements);
      host_ops_.push_back({host, node.requirements, was_active});
    }
    std::vector<dc::LinkId> links;
    for (const auto& edge : topology.edges()) {
      links.clear();
      datacenter.path_links(assignment[edge.a], assignment[edge.b], links);
      for (const dc::LinkId link : links) {
        occupancy_->reserve_link(link, edge.bandwidth_mbps);
        link_ops_.push_back({link, edge.bandwidth_mbps});
      }
    }
  } catch (...) {
    rollback();
    committed_ = false;  // transaction stays live (empty) after failure
    throw;
  }
}

void commit_placement(dc::Occupancy& occupancy,
                      const topo::AppTopology& topology,
                      const Assignment& assignment) {
  PlacementTransaction txn(occupancy);
  txn.apply(topology, assignment);
  txn.commit();
}

double reserved_bandwidth_mbps(const dc::DataCenter& dc,
                               const topo::AppTopology& topology,
                               const Assignment& assignment) {
  if (assignment.size() != topology.node_count()) {
    throw std::invalid_argument("reserved_bandwidth_mbps: size mismatch");
  }
  double total = 0.0;
  for (const auto& edge : topology.edges()) {
    const auto scope = dc.scope_between(assignment[edge.a], assignment[edge.b]);
    total += edge.bandwidth_mbps * dc::hop_count(scope);
  }
  return total;
}

}  // namespace ostro::net
