#include "net/reservation.h"

#include <stdexcept>

#include "util/metrics.h"
#include "util/timer.h"

namespace ostro::net {

PlacementTransaction::~PlacementTransaction() { rollback(); }

void PlacementTransaction::commit() noexcept {
  static util::metrics::Counter& m_commits =
      util::metrics::counter("reservation.commits");
  if (!empty()) m_commits.inc();
  host_ops_.clear();
  link_ops_.clear();
}

void PlacementTransaction::rollback() noexcept {
  static util::metrics::Counter& m_rollbacks =
      util::metrics::counter("reservation.rollbacks");
  static util::metrics::Summary& m_seconds =
      util::metrics::summary("reservation.rollback_seconds");
  if (empty()) return;  // committed, rolled back, or never applied
  const util::metrics::ScopedTimer phase_timer(m_seconds);
  m_rollbacks.inc();
  // Undo in reverse order; release/remove cannot throw for amounts that were
  // successfully reserved.
  for (auto it = link_ops_.rbegin(); it != link_ops_.rend(); ++it) {
    occupancy_->release_link(it->link, it->mbps);
  }
  for (auto it = host_ops_.rbegin(); it != host_ops_.rend(); ++it) {
    occupancy_->remove_host_load(it->host, it->load);
    occupancy_->set_active(it->host, it->was_active);
  }
  host_ops_.clear();
  link_ops_.clear();
}

void PlacementTransaction::apply(const topo::AppTopology& topology,
                                 const Assignment& assignment) {
  static util::metrics::Counter& m_applies =
      util::metrics::counter("reservation.applies");
  static util::metrics::Counter& m_failures =
      util::metrics::counter("reservation.apply_failures");
  static util::metrics::Summary& m_seconds =
      util::metrics::summary("reservation.apply_seconds");
  const util::metrics::ScopedTimer phase_timer(m_seconds);
  m_applies.inc();
  if (assignment.size() != topology.node_count()) {
    m_failures.inc();
    throw std::invalid_argument(
        "PlacementTransaction::apply: assignment size mismatch");
  }
  const dc::DataCenter& datacenter = occupancy_->datacenter();
  // Record how much was already applied before this call so a failure rolls
  // back only this call's partial work, preserving earlier reservations.
  const std::size_t host_mark = host_ops_.size();
  const std::size_t link_mark = link_ops_.size();
  // One host op per node, at most hop_count(max_scope) link ops per edge:
  // reserve the op-log capacity up front instead of re-growing per push.
  const auto max_links_per_edge =
      static_cast<std::size_t>(dc::hop_count(datacenter.max_scope()));
  host_ops_.reserve(host_mark + topology.node_count());
  link_ops_.reserve(link_mark + topology.edge_count() * max_links_per_edge);

  if (mode_ == Mode::kStaged) {
    // Validate everything against the delta overlay; the occupancy is only
    // touched by the final one-batch flush, so a failing apply causes zero
    // reserve/release churn on the base.
    delta_.clear();
    try {
      for (const auto& node : topology.nodes()) {
        const dc::HostId host = assignment[node.id];
        if (host == dc::kInvalidHost || host >= datacenter.host_count()) {
          throw std::invalid_argument("node " + node.name + " is unplaced");
        }
        const bool was_active = delta_.is_active(host);
        delta_.add_host_load(host, node.requirements);
        host_ops_.push_back({host, node.requirements, was_active});
      }
      for (const auto& edge : topology.edges()) {
        const dc::PathLinks path =
            datacenter.path_between(assignment[edge.a], assignment[edge.b]);
        for (const dc::LinkId link : path) {
          delta_.reserve_link(link, edge.bandwidth_mbps);
          link_ops_.push_back({link, edge.bandwidth_mbps});
        }
      }
      occupancy_->apply_delta(delta_);
      delta_.clear();
    } catch (...) {
      m_failures.inc();
      host_ops_.resize(host_mark);
      link_ops_.resize(link_mark);
      delta_.clear();
      throw;
    }
    return;
  }

  try {
    for (const auto& node : topology.nodes()) {
      const dc::HostId host = assignment[node.id];
      if (host == dc::kInvalidHost || host >= datacenter.host_count()) {
        throw std::invalid_argument("node " + node.name + " is unplaced");
      }
      const bool was_active = occupancy_->is_active(host);
      occupancy_->add_host_load(host, node.requirements);
      host_ops_.push_back({host, node.requirements, was_active});
    }
    for (const auto& edge : topology.edges()) {
      const dc::PathLinks path =
          datacenter.path_between(assignment[edge.a], assignment[edge.b]);
      for (const dc::LinkId link : path) {
        occupancy_->reserve_link(link, edge.bandwidth_mbps);
        link_ops_.push_back({link, edge.bandwidth_mbps});
      }
    }
  } catch (...) {
    m_failures.inc();
    // Undo this call's partial work in reverse order; earlier, still-pending
    // reservations (prior successful apply() calls) are kept.
    while (link_ops_.size() > link_mark) {
      occupancy_->release_link(link_ops_.back().link, link_ops_.back().mbps);
      link_ops_.pop_back();
    }
    while (host_ops_.size() > host_mark) {
      occupancy_->remove_host_load(host_ops_.back().host,
                                   host_ops_.back().load);
      occupancy_->set_active(host_ops_.back().host,
                             host_ops_.back().was_active);
      host_ops_.pop_back();
    }
    throw;
  }
}

void commit_placement(dc::Occupancy& occupancy,
                      const topo::AppTopology& topology,
                      const Assignment& assignment) {
  PlacementTransaction txn(occupancy);
  txn.apply(topology, assignment);
  txn.commit();
}

void release_placement(dc::Occupancy& occupancy,
                       const topo::AppTopology& topology,
                       const Assignment& assignment,
                       bool deactivate_emptied) {
  static util::metrics::Counter& m_releases =
      util::metrics::counter("reservation.releases");
  static util::metrics::Counter& m_failures =
      util::metrics::counter("reservation.release_failures");
  static util::metrics::Summary& m_seconds =
      util::metrics::summary("reservation.release_seconds");
  const util::metrics::ScopedTimer phase_timer(m_seconds);
  if (assignment.size() != topology.node_count()) {
    m_failures.inc();
    throw std::invalid_argument(
        "release_placement: assignment size mismatch");
  }
  const dc::DataCenter& datacenter = occupancy.datacenter();
  dc::OccupancyDelta delta(occupancy);
  try {
    for (const auto& node : topology.nodes()) {
      const dc::HostId host = assignment[node.id];
      if (host == dc::kInvalidHost || host >= datacenter.host_count()) {
        throw std::invalid_argument("release_placement: node " + node.name +
                                    " is unplaced");
      }
      delta.remove_host_load(host, node.requirements);
    }
    for (const auto& edge : topology.edges()) {
      const dc::PathLinks path =
          datacenter.path_between(assignment[edge.a], assignment[edge.b]);
      for (const dc::LinkId link : path) {
        delta.release_link(link, edge.bandwidth_mbps);
      }
    }
    occupancy.apply_delta(delta);
  } catch (...) {
    m_failures.inc();
    throw;
  }
  if (deactivate_emptied) {
    for (const dc::HostId host : assignment) {
      occupancy.deactivate_if_idle(host);  // idempotent per distinct host
    }
  }
  m_releases.inc();
}

double reserved_bandwidth_mbps(const dc::DataCenter& dc,
                               const topo::AppTopology& topology,
                               const Assignment& assignment) {
  if (assignment.size() != topology.node_count()) {
    throw std::invalid_argument("reserved_bandwidth_mbps: size mismatch");
  }
  double total = 0.0;
  for (const auto& edge : topology.edges()) {
    const auto scope = dc.scope_between(assignment[edge.a], assignment[edge.b]);
    total += edge.bandwidth_mbps * dc::hop_count(scope);
  }
  return total;
}

}  // namespace ostro::net
