// Applying a finished placement to the data-center occupancy.
//
// PlacementTransaction reserves every node's host resources and every pipe's
// bandwidth along its physical path, with all-or-nothing semantics: if any
// reservation fails the partial work is rolled back and the occupancy is
// untouched.  The Heat engine (src/openstack) and the experiment runner use
// it to commit successive applications onto a shared data center.
#pragma once

#include <cstdint>
#include <vector>

#include "datacenter/occupancy.h"
#include "datacenter/state_delta.h"
#include "topology/app_topology.h"

namespace ostro::net {

/// Node-to-host mapping; index = NodeId, value = HostId
/// (dc::kInvalidHost for unplaced nodes is not allowed here).
using Assignment = std::vector<dc::HostId>;

/// RAII transaction: apply() reserves, commit() keeps, destruction rolls
/// back whatever is still pending.
///
/// State invariant: the transaction tracks exactly the reservations it has
/// made and not yet committed or rolled back.  A failed apply() rolls its
/// partial work back and leaves the transaction *empty but reusable* —
/// apply() may be called again (on the same or a corrected assignment), and
/// destruction is a no-op until it succeeds.  commit() and rollback() also
/// return the transaction to the empty, reusable state.
class PlacementTransaction {
 public:
  /// How apply() validates and applies its reservations.  Both modes yield
  /// bit-identical occupancy state on success (asserted by the differential
  /// tests); they differ in how a *failing* apply behaves internally.
  enum class Mode : std::uint8_t {
    /// Stage every op in an OccupancyDelta and flush with one
    /// Occupancy::apply_delta batch once everything validated.  A failed
    /// apply never touches the occupancy — no reserve/release churn.
    kStaged,
    /// Mutate the occupancy op by op and undo on failure.  The original
    /// reference path; kept for differential testing.
    kDirect,
  };

  explicit PlacementTransaction(dc::Occupancy& occupancy,
                                Mode mode = Mode::kStaged)
      : occupancy_(&occupancy), mode_(mode), delta_(occupancy) {}
  ~PlacementTransaction();

  PlacementTransaction(const PlacementTransaction&) = delete;
  PlacementTransaction& operator=(const PlacementTransaction&) = delete;

  /// Reserves all resources of `topology` mapped by `assignment`.
  /// Throws std::invalid_argument on any capacity violation or malformed
  /// assignment; the occupancy is left exactly as before the call and the
  /// transaction is empty and reusable.
  void apply(const topo::AppTopology& topology, const Assignment& assignment);

  /// Keeps the reservations; the transaction becomes empty and reusable.
  void commit() noexcept;

  /// Explicit rollback of everything applied and not yet committed; the
  /// transaction becomes empty and reusable.
  void rollback() noexcept;

  /// True when the transaction holds no pending reservations.
  [[nodiscard]] bool empty() const noexcept {
    return host_ops_.empty() && link_ops_.empty();
  }

 private:
  struct HostOp {
    dc::HostId host;
    topo::Resources load;
    bool was_active = false;  ///< active flag before this op (for rollback)
  };
  struct LinkOp {
    dc::LinkId link;
    double mbps;
  };

  dc::Occupancy* occupancy_;
  Mode mode_ = Mode::kStaged;
  /// Staging overlay reused across apply() calls (kStaged mode only).
  dc::OccupancyDelta delta_;
  std::vector<HostOp> host_ops_;
  std::vector<LinkOp> link_ops_;
};

/// One-shot convenience: apply and commit, or throw leaving `occupancy`
/// unchanged.
void commit_placement(dc::Occupancy& occupancy,
                      const topo::AppTopology& topology,
                      const Assignment& assignment);

/// Inverse of commit_placement: releases every node's host load and every
/// pipe's bandwidth along its physical path, staged in one OccupancyDelta
/// and flushed atomically (one epoch bump).  Throws std::invalid_argument
/// on a malformed assignment or when a release exceeds what is reserved
/// (e.g. a double release); `occupancy` is untouched in that case.  When
/// `deactivate_emptied` is set (the default), each distinct host in the
/// assignment that ends up with zero tracked load is also deactivated
/// (Occupancy::deactivate_if_idle) — pass false when hosts carry untracked
/// background tenants modeled via mark_active.
void release_placement(dc::Occupancy& occupancy,
                       const topo::AppTopology& topology,
                       const Assignment& assignment,
                       bool deactivate_emptied = true);

/// Bandwidth the placement reserves on physical links, i.e. the paper's
/// u_bw: each pipe contributes bandwidth × links-traversed (0 when both
/// endpoints share a host).
[[nodiscard]] double reserved_bandwidth_mbps(const dc::DataCenter& dc,
                                             const topo::AppTopology& topology,
                                             const Assignment& assignment);

}  // namespace ostro::net
