#include "net/maxmin.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace ostro::net {
namespace {

FairShareResult solve(const dc::DataCenter& datacenter,
                      const std::vector<double>& capacity,
                      const std::vector<Flow>& flows) {
  FairShareResult result;
  result.rate_mbps.assign(flows.size(), 0.0);
  if (flows.empty()) return result;

  // Precompute the link path of each flow.
  std::vector<std::vector<dc::LinkId>> paths(flows.size());
  for (std::size_t f = 0; f < flows.size(); ++f) {
    const Flow& flow = flows[f];
    if (flow.demand_mbps <= 0.0) {
      throw std::invalid_argument("max_min_fair_rates: non-positive demand");
    }
    datacenter.path_links(flow.src, flow.dst, paths[f]);
  }

  std::vector<double> residual = capacity;
  std::vector<int> unfrozen_on_link(capacity.size(), 0);
  std::vector<bool> frozen(flows.size(), false);
  std::size_t unfrozen_count = flows.size();
  for (std::size_t f = 0; f < flows.size(); ++f) {
    for (const auto link : paths[f]) ++unfrozen_on_link[link];
  }

  constexpr double kEps = 1e-9;
  const auto freeze = [&](std::size_t f, double rate) {
    frozen[f] = true;
    --unfrozen_count;
    result.rate_mbps[f] = rate;
    for (const auto link : paths[f]) {
      residual[link] = std::max(0.0, residual[link] - (rate - 0.0));
      --unfrozen_on_link[link];
    }
  };

  // Rates of unfrozen flows grow uniformly from `level`; each round advances
  // `level` to the next event: a link saturating or a demand being reached.
  double level = 0.0;
  while (unfrozen_count > 0) {
    ++result.rounds;
    // Next link saturation: level + residual_for_growth / flows_on_link,
    // where residual_for_growth discounts growth already granted below
    // `level` — since every unfrozen flow on the link grows from `level`,
    // the increment each can still take is (residual - n*level_delta)…
    // Simpler bookkeeping: recompute shares from scratch each round using
    // absolute rates: unfrozen flows currently all sit exactly at `level`.
    double next_event = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < capacity.size(); ++l) {
      if (unfrozen_on_link[l] == 0) continue;
      // residual[l] still contains the unfrozen flows' current usage
      // (level each) because freeze() only subtracts frozen rates.
      const double headroom =
          residual[l] - level * static_cast<double>(unfrozen_on_link[l]);
      const double cap_level =
          level + std::max(0.0, headroom) /
                      static_cast<double>(unfrozen_on_link[l]);
      next_event = std::min(next_event, cap_level);
    }
    // A flow between co-located hosts has an empty path: only its demand
    // limits it.
    double min_demand = std::numeric_limits<double>::infinity();
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (!frozen[f]) min_demand = std::min(min_demand, flows[f].demand_mbps);
    }
    next_event = std::min(next_event, min_demand);

    level = next_event;

    // Freeze all flows capped by demand at this level.
    bool froze_any = false;
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (!frozen[f] && flows[f].demand_mbps <= level + kEps) {
        freeze(f, flows[f].demand_mbps);
        froze_any = true;
      }
    }
    // Freeze all flows crossing a saturated link at `level`.
    for (std::size_t l = 0; l < capacity.size(); ++l) {
      if (unfrozen_on_link[l] == 0) continue;
      const double headroom =
          residual[l] - level * static_cast<double>(unfrozen_on_link[l]);
      if (headroom <= kEps * std::max(1.0, capacity[l])) {
        // Saturated: freeze every unfrozen flow on it.
        for (std::size_t f = 0; f < flows.size(); ++f) {
          if (frozen[f]) continue;
          const auto& path = paths[f];
          if (std::find(path.begin(), path.end(), static_cast<dc::LinkId>(l)) !=
              path.end()) {
            freeze(f, level);
            froze_any = true;
          }
        }
      }
    }
    if (!froze_any) {
      // Defensive: numerical stall should be impossible, but never loop.
      for (std::size_t f = 0; f < flows.size(); ++f) {
        if (!frozen[f]) freeze(f, level);
      }
    }
  }

  for (double rate : result.rate_mbps) result.total_mbps += rate;
  return result;
}

}  // namespace

FairShareResult max_min_fair_rates(const dc::DataCenter& datacenter,
                                   const std::vector<Flow>& flows) {
  std::vector<double> capacity(datacenter.link_count());
  for (std::size_t l = 0; l < capacity.size(); ++l) {
    capacity[l] = datacenter.link_capacity(static_cast<dc::LinkId>(l));
  }
  return solve(datacenter, capacity, flows);
}

FairShareResult max_min_fair_rates(const dc::Occupancy& occupancy,
                                   const std::vector<Flow>& flows) {
  const dc::DataCenter& datacenter = occupancy.datacenter();
  std::vector<double> capacity(datacenter.link_count());
  for (std::size_t l = 0; l < capacity.size(); ++l) {
    capacity[l] =
        std::max(0.0, occupancy.link_available_mbps(static_cast<dc::LinkId>(l)));
  }
  return solve(datacenter, capacity, flows);
}

}  // namespace ostro::net
