// Experiment runner shared by the benchmark harness: repeats
// (preload -> generate workload -> place -> measure) over seeded runs and
// aggregates the metrics each paper table/figure reports.
#pragma once

#include <functional>
#include <string>

#include "core/scheduler.h"
#include "util/rng.h"
#include "util/stats.h"

namespace ostro::sim {

/// Aggregated metrics over the runs of one experiment cell.
struct ExperimentMetrics {
  util::Samples reserved_bw_gbps;   ///< u_bw in Gbps (bw x links)
  util::Samples new_active_hosts;   ///< u_c
  util::Samples total_active_hosts; ///< active hosts DC-wide after commit
  util::Samples runtime_seconds;
  int infeasible_runs = 0;
  std::string first_failure;
};

struct ExperimentSpec {
  /// Builds the base occupancy for one run (pre-load goes here).
  std::function<dc::Occupancy(util::Rng&)> make_occupancy;
  /// Builds the application topology for one run.
  std::function<topo::AppTopology(util::Rng&)> make_topology;
  core::Algorithm algorithm = core::Algorithm::kEg;
  core::SearchConfig config;
  int runs = 3;
  std::uint64_t seed = 42;
  /// Verify every placement with core::verify_placement (throws
  /// std::runtime_error on violation).  On by default: a benchmark that
  /// reports numbers from an invalid placement would be meaningless.
  bool verify = true;
};

/// Runs the experiment; run r uses rng fork(r) for both occupancy and
/// topology so different algorithms see identical inputs per run.
[[nodiscard]] ExperimentMetrics run_experiment(const ExperimentSpec& spec);

}  // namespace ostro::sim
