#include "sim/workloads.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/string_util.h"

namespace ostro::sim {
namespace {

struct VmClass {
  topo::Resources requirements;
  double bandwidth_mbps;
};

// Table III of the paper.
constexpr VmClass kSmall{{1.0, 1.0, 0.0}, 100.0};
constexpr VmClass kMedium{{2.0, 2.0, 0.0}, 50.0};
constexpr VmClass kLarge{{4.0, 4.0, 0.0}, 10.0};
constexpr VmClass kHomogeneous{{2.0, 2.0, 0.0}, 50.0};

/// Class assignment for `count` VMs in the Table III proportions
/// (40% / 20% / 40%), shuffled by `rng` in the heterogeneous mix.
[[nodiscard]] std::vector<VmClass> assign_classes(int count,
                                                  RequirementMix mix,
                                                  util::Rng& rng) {
  std::vector<VmClass> classes;
  classes.reserve(static_cast<std::size_t>(count));
  if (mix == RequirementMix::kHomogeneous) {
    classes.assign(static_cast<std::size_t>(count), kHomogeneous);
    return classes;
  }
  const int small = (count * 40) / 100;
  const int medium = (count * 20) / 100;
  for (int i = 0; i < count; ++i) {
    if (i < small) {
      classes.push_back(kSmall);
    } else if (i < small + medium) {
      classes.push_back(kMedium);
    } else {
      classes.push_back(kLarge);
    }
  }
  rng.shuffle(classes);
  return classes;
}

}  // namespace

const char* to_string(RequirementMix mix) noexcept {
  switch (mix) {
    case RequirementMix::kHeterogeneous: return "heterogeneous";
    case RequirementMix::kHomogeneous: return "homogeneous";
  }
  return "?";
}

topo::AppTopology make_multitier(int num_vms, RequirementMix mix,
                                 util::Rng& rng) {
  constexpr int kTiers = 5;
  if (num_vms <= 0 || num_vms % kTiers != 0) {
    throw std::invalid_argument(
        "make_multitier: num_vms must be a positive multiple of 5");
  }
  const int per_tier = num_vms / kTiers;

  topo::TopologyBuilder builder;
  constexpr std::size_t kTierCount = 5;
  std::vector<std::vector<topo::NodeId>> tiers(kTierCount);
  std::vector<std::vector<double>> tier_bw(kTierCount);
  for (std::size_t t = 0; t < kTierCount; ++t) {
    const auto classes = assign_classes(per_tier, mix, rng);
    for (int i = 0; i < per_tier; ++i) {
      const auto& cls = classes[static_cast<std::size_t>(i)];
      const auto id = builder.add_vm(
          util::format("tier%zu-vm%d", t, i), cls.requirements);
      tiers[t].push_back(id);
      tier_bw[t].push_back(cls.bandwidth_mbps);
    }
  }

  // Complete bipartite pipes between adjacent tiers; each pipe carries the
  // min of the endpoint bandwidth classes.
  for (std::size_t t = 0; t + 1 < kTierCount; ++t) {
    for (std::size_t i = 0; i < tiers[t].size(); ++i) {
      for (std::size_t j = 0; j < tiers[t + 1].size(); ++j) {
        builder.connect(tiers[t][i], tiers[t + 1][j],
                        std::min(tier_bw[t][i], tier_bw[t + 1][j]));
      }
    }
  }

  // Each tier is divided into two host-level diversity zones (Section IV-C).
  for (std::size_t t = 0; t < kTierCount; ++t) {
    const std::size_t half = tiers[t].size() / 2;
    if (half >= 2) {
      builder.add_zone(util::format("tier%zu-dz0", t),
                       topo::DiversityLevel::kHost,
                       std::vector<topo::NodeId>(tiers[t].begin(),
                                                 tiers[t].begin() +
                                                     static_cast<long>(half)));
    }
    if (tiers[t].size() - half >= 2) {
      builder.add_zone(util::format("tier%zu-dz1", t),
                       topo::DiversityLevel::kHost,
                       std::vector<topo::NodeId>(tiers[t].begin() +
                                                     static_cast<long>(half),
                                                 tiers[t].end()));
    }
  }
  return builder.build();
}

topo::AppTopology make_mesh(int num_zones, RequirementMix mix, util::Rng& rng,
                            double connectivity) {
  constexpr int kZoneSize = 5;
  if (num_zones < 2) {
    throw std::invalid_argument("make_mesh: need at least 2 zones");
  }
  if (connectivity < 0.0 || connectivity > 1.0) {
    throw std::invalid_argument("make_mesh: connectivity out of [0,1]");
  }

  topo::TopologyBuilder builder;
  std::vector<std::vector<topo::NodeId>> zones(
      static_cast<std::size_t>(num_zones));
  std::vector<std::vector<double>> zone_bw(static_cast<std::size_t>(num_zones));
  for (int z = 0; z < num_zones; ++z) {
    const auto classes = assign_classes(kZoneSize, mix, rng);
    for (int i = 0; i < kZoneSize; ++i) {
      const auto& cls = classes[static_cast<std::size_t>(i)];
      const auto id = builder.add_vm(util::format("zone%d-vm%d", z, i),
                                     cls.requirements);
      zones[static_cast<std::size_t>(z)].push_back(id);
      zone_bw[static_cast<std::size_t>(z)].push_back(cls.bandwidth_mbps);
    }
    builder.add_zone(util::format("dz%d", z), topo::DiversityLevel::kHost,
                     zones[static_cast<std::size_t>(z)]);
  }

  // Each zone links to ~connectivity of the other zones (Section IV-C);
  // connected zones exchange one pipe per VM position.
  std::vector<std::vector<bool>> linked(
      static_cast<std::size_t>(num_zones),
      std::vector<bool>(static_cast<std::size_t>(num_zones), false));
  for (int a = 0; a < num_zones; ++a) {
    const auto k = static_cast<std::size_t>(
        connectivity * static_cast<double>(num_zones - 1) + 0.5);
    std::vector<int> others;
    for (int b = 0; b < num_zones; ++b) {
      if (b != a) others.push_back(b);
    }
    rng.shuffle(others);
    for (std::size_t i = 0; i < std::min(k, others.size()); ++i) {
      const int b = others[i];
      const auto lo = static_cast<std::size_t>(std::min(a, b));
      const auto hi = static_cast<std::size_t>(std::max(a, b));
      if (linked[lo][hi]) continue;
      linked[lo][hi] = true;
      for (int v = 0; v < kZoneSize; ++v) {
        const auto vi = static_cast<std::size_t>(v);
        builder.connect(zones[lo][vi], zones[hi][vi],
                        std::min(zone_bw[lo][vi], zone_bw[hi][vi]));
      }
    }
  }
  return builder.build();
}

topo::AppTopology make_qfs() {
  constexpr int kChunkServers = 12;
  topo::TopologyBuilder builder;
  // Figure 5: small VM = 2 vCPU / 2 GB, large VM = 4 vCPU / 8 GB.
  const auto meta = builder.add_vm("meta", {2.0, 2.0, 0.0});
  const auto client = builder.add_vm("client", {4.0, 8.0, 0.0});
  std::vector<topo::NodeId> chunk_volumes;
  for (int i = 0; i < kChunkServers; ++i) {
    const auto chunk =
        builder.add_vm(util::format("chunk%d", i), {2.0, 2.0, 0.0});
    const auto volume =
        builder.add_volume(util::format("chunk%d-vol", i), 120.0);
    builder.connect(chunk, volume, 100.0);   // high bandwidth
    builder.connect(client, chunk, 100.0);   // high bandwidth
    chunk_volumes.push_back(volume);
  }
  builder.connect(client, meta, 10.0);  // low bandwidth
  const auto meta_vol0 = builder.add_volume("meta-vol0", 10.0);
  const auto meta_vol1 = builder.add_volume("meta-vol1", 10.0);
  const auto client_vol = builder.add_volume("client-vol", 10.0);
  builder.connect(meta, meta_vol0, 10.0);
  builder.connect(meta, meta_vol1, 10.0);
  builder.connect(client, client_vol, 10.0);
  // Reliability: the 12 chunk volumes must sit on 12 separate disks
  // (= hosts in this model); see DESIGN.md for this reading of Figure 5.
  builder.add_zone("chunk-volumes", topo::DiversityLevel::kHost,
                   std::move(chunk_volumes));
  return builder.build();
}

topo::AppTopology grow_multitier(const topo::AppTopology& base,
                                 int num_vms_original, int extra_vms,
                                 int tier_index, RequirementMix mix,
                                 util::Rng& rng) {
  constexpr int kTiers = 5;
  if (tier_index < 0 || tier_index >= kTiers) {
    throw std::invalid_argument("grow_multitier: tier_index out of range");
  }
  if (extra_vms <= 0) {
    throw std::invalid_argument("grow_multitier: extra_vms must be positive");
  }
  const int per_tier = num_vms_original / kTiers;

  topo::TopologyBuilder builder;
  // Copy the base topology verbatim; ids are preserved because insertion
  // order is identical.
  for (const auto& node : base.nodes()) {
    if (node.kind == topo::NodeKind::kVm) {
      builder.add_vm(node.name, node.requirements);
    } else {
      builder.add_volume(node.name, node.requirements.disk_gb);
    }
  }
  for (const auto& edge : base.edges()) {
    builder.connect(edge.a, edge.b, edge.bandwidth_mbps);
  }

  // New VMs are "small" (Section IV-E adds 10% more small VMs) and connect
  // to the adjacent tiers exactly like existing members of the tier.
  (void)mix;
  std::vector<topo::NodeId> extras;
  for (int i = 0; i < extra_vms; ++i) {
    extras.push_back(builder.add_vm(
        util::format("tier%d-extra%d", tier_index, i), kSmall.requirements));
  }
  const auto tier_of = [per_tier](topo::NodeId id) {
    return static_cast<int>(id) / per_tier;
  };
  // Each extra talks to the first half of each adjacent tier — a scale-out
  // instance typically peers with a subset, and this keeps the delta small
  // enough that the Section IV-E incremental re-placement stays feasible on
  // a loaded fabric.
  for (const auto extra : extras) {
    for (const auto& node : base.nodes()) {
      const int t = tier_of(node.id);
      const int position = static_cast<int>(node.id) % per_tier;
      if ((t == tier_index - 1 || t == tier_index + 1) &&
          position < (per_tier + 1) / 2) {
        // Pipe bandwidth: min of the small class and the neighbor's class,
        // recovered from the neighbor's strongest incident pipe.
        double nbr_bw = kSmall.bandwidth_mbps;
        for (const auto& nb : base.neighbors(node.id)) {
          nbr_bw = std::max(nbr_bw, nb.bandwidth_mbps);
        }
        builder.connect(extra, node.id,
                        std::min(kSmall.bandwidth_mbps, nbr_bw));
      }
    }
  }

  // Copy zones, spreading the new VMs across the grown tier's two zones.
  for (const auto& zone : base.zones()) {
    std::vector<topo::NodeId> members = zone.members;
    const bool grown_tier_zone =
        zone.name == util::format("tier%d-dz0", tier_index) ||
        zone.name == util::format("tier%d-dz1", tier_index);
    if (grown_tier_zone) {
      const bool first = zone.name.back() == '0';
      for (std::size_t i = 0; i < extras.size(); ++i) {
        if ((i % 2 == 0) == first) members.push_back(extras[i]);
      }
    }
    builder.add_zone(zone.name, zone.level, std::move(members));
  }
  (void)rng;
  return builder.build();
}

}  // namespace ostro::sim
