// Workload generators reproducing the application topologies of the paper's
// evaluation (Section IV):
//
//  * multi-tier (Figure 2 left, Section IV-C): 5 tiers of equal size,
//    complete bipartite pipes between adjacent tiers, every tier split into
//    two host-level diversity zones;
//  * mesh communication (Figure 2 right): disjoint 5-VM host-level
//    diversity zones, ~80% of zone pairs connected, aligned one-pipe-per-
//    VM-position between connected zones;
//  * the QFS cloud-storage application of the testbed experiments
//    (Figure 5): 1 meta server, 1 client, 12 chunk servers, 15 volumes.
//
// Resource requirements follow Table III (heterogeneous: 40% small/20%
// medium/40% large VMs) or the homogeneous setting (all 2 vCPU / 2 GB /
// 50 Mbps); pipes carry the min of the endpoint VMs' bandwidth classes.
#pragma once

#include "topology/app_topology.h"
#include "util/rng.h"

namespace ostro::sim {

enum class RequirementMix : std::uint8_t {
  kHeterogeneous,  ///< Table III mix
  kHomogeneous,    ///< all VMs 2 vCPU, 2 GB, 50 Mbps
};

[[nodiscard]] const char* to_string(RequirementMix mix) noexcept;

/// 5-tier application with `num_vms` total VMs (must be a positive multiple
/// of 5).  Tier sizes num_vms/5 each; class assignment within a tier is
/// shuffled by `rng` in the heterogeneous mix.
[[nodiscard]] topo::AppTopology make_multitier(int num_vms, RequirementMix mix,
                                               util::Rng& rng);

/// Mesh application with `num_zones` disjoint 5-VM diversity zones
/// (num_zones >= 2).  Each zone links to ~`connectivity` (default 0.8) of
/// the other zones, chosen by `rng`.
[[nodiscard]] topo::AppTopology make_mesh(int num_zones, RequirementMix mix,
                                          util::Rng& rng,
                                          double connectivity = 0.8);

/// The QFS application topology of Figure 5: meta server (small VM),
/// client (large VM), 12 chunk servers (small VMs) each with a 120 GB
/// volume at 100 Mbps, 100 Mbps client-chunk pipes, 10 Mbps client-meta
/// pipe, and three 10 GB bookkeeping volumes.  The 12 chunk volumes form a
/// host-level diversity zone ("12 disk volumes on 12 separate disks").
[[nodiscard]] topo::AppTopology make_qfs();

/// Grows a multi-tier topology by `extra_vms` small VMs appended to tier
/// `tier_index` (0-based), reproducing the online-adaptation scenario of
/// Section IV-E.  Existing node ids (and therefore any saved assignment)
/// are preserved as a prefix of the result.
[[nodiscard]] topo::AppTopology grow_multitier(const topo::AppTopology& base,
                                               int num_vms_original,
                                               int extra_vms, int tier_index,
                                               RequirementMix mix,
                                               util::Rng& rng);

}  // namespace ostro::sim
