#include "sim/experiment.h"

#include <stdexcept>

#include "core/verify.h"
#include "net/reservation.h"

namespace ostro::sim {

ExperimentMetrics run_experiment(const ExperimentSpec& spec) {
  if (!spec.make_occupancy || !spec.make_topology) {
    throw std::invalid_argument("run_experiment: missing factories");
  }
  if (spec.runs <= 0) {
    throw std::invalid_argument("run_experiment: runs must be positive");
  }

  ExperimentMetrics metrics;
  const util::Rng root(spec.seed);
  for (int run = 0; run < spec.runs; ++run) {
    util::Rng occupancy_rng =
        root.fork(static_cast<std::uint64_t>(run) * 2);
    util::Rng topology_rng =
        root.fork(static_cast<std::uint64_t>(run) * 2 + 1);
    dc::Occupancy occupancy = spec.make_occupancy(occupancy_rng);
    const topo::AppTopology topology = spec.make_topology(topology_rng);

    core::SearchConfig config = spec.config;
    config.seed = spec.seed + static_cast<std::uint64_t>(run);
    const core::Placement placement = core::place_topology(
        occupancy, topology, spec.algorithm, config, nullptr, nullptr);

    if (!placement.feasible) {
      ++metrics.infeasible_runs;
      if (metrics.first_failure.empty()) {
        metrics.first_failure = placement.failure_reason;
      }
      continue;
    }
    // EG_C placements may overcommit links by definition; they are
    // reported but never verified or committed.
    if (!placement.bandwidth_overcommitted) {
      if (spec.verify) {
        const auto violations =
            core::verify_placement(occupancy, topology, placement.assignment);
        if (!violations.empty()) {
          throw std::runtime_error("run_experiment: invalid placement: " +
                                   violations.front());
        }
      }
      net::commit_placement(occupancy, topology, placement.assignment);
    }

    metrics.reserved_bw_gbps.add(placement.reserved_bandwidth_mbps / 1000.0);
    metrics.new_active_hosts.add(placement.new_active_hosts);
    metrics.total_active_hosts.add(static_cast<double>(
        placement.bandwidth_overcommitted
            ? occupancy.active_host_count() +
                  static_cast<std::size_t>(placement.new_active_hosts)
            : occupancy.active_host_count()));
    metrics.runtime_seconds.add(placement.stats.runtime_seconds);
  }
  return metrics;
}

}  // namespace ostro::sim
