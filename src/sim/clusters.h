// Data-center builders and background-load ("non-uniform resource
// availability") configurators reproducing the paper's two environments:
//
//  * the 16-host testbed of Section IV-A: one rack, hosts with 16 cores /
//    32 GB / 1 TB and 3200 Mbps uplinks, pre-loaded so that hosts 0-3 are
//    lightly used, 4-7 medium, 8-11 constrained and 12-15 idle;
//  * the simulated data center of Section IV-C: 2400 hosts in 150 racks of
//    16 (no pod layer — ToRs hang directly off the root), 10 Gbps host
//    uplinks, 100 Gbps ToR uplinks, pre-loaded per rack with the Table IV
//    quartiles (cpu/memory availability anti-correlated with bandwidth).
#pragma once

#include "datacenter/datacenter.h"
#include "datacenter/occupancy.h"
#include "util/rng.h"

namespace ostro::sim {

/// One-rack 16-host testbed (Section IV-A).
[[nodiscard]] dc::DataCenter make_testbed();

/// Applies the testbed's non-uniform pre-load (Section IV-A) to an all-idle
/// occupancy of make_testbed(); `rng` draws the within-band values (e.g.
/// "8 or 10 available cores").
void apply_testbed_preload(dc::Occupancy& occupancy, util::Rng& rng);

/// Simulation data center: `racks` racks of `hosts_per_rack` hosts
/// (defaults are the paper's 150 x 16 = 2400).
[[nodiscard]] dc::DataCenter make_sim_datacenter(int racks = 150,
                                                 int hosts_per_rack = 16);

/// Applies the Table IV non-uniform availability: per rack, one quartile of
/// hosts in each availability band.  Bandwidth availability is enforced by
/// reserving the complement on the host uplink.
void apply_sim_preload(dc::Occupancy& occupancy, util::Rng& rng);

/// Wide-area deployment: `sites` data centers, each with a pod layer
/// (`pods_per_site` pods of `racks_per_pod` racks of `hosts_per_rack`
/// hosts), behind a `wan_gbps` interconnect.  The paper's conclusion notes
/// Ostro "can serve as the basis for placement across multiple data
/// centers in the wide area as well" — datacenter-level diversity zones
/// and the 8-link cross-site paths exercise exactly that.
[[nodiscard]] dc::DataCenter make_wan(int sites = 3, int pods_per_site = 2,
                                      int racks_per_pod = 4,
                                      int hosts_per_rack = 8,
                                      double wan_gbps = 40.0);

}  // namespace ostro::sim
