#include "sim/lifecycle.h"

#include <cmath>
#include <utility>

#include "util/metrics.h"
#include "util/timer.h"

namespace ostro::sim {

namespace {

util::metrics::Counter& lifecycle_counter(const char* name) {
  return util::metrics::counter(name);
}

}  // namespace

Lifecycle::Lifecycle(core::PlacementService& service, LifecycleConfig config)
    : service_(&service),
      config_(config),
      defrag_(service, registry_, config.defrag_config),
      arrival_rng_(util::Rng(config.seed).fork(1)),
      lifetime_rng_(util::Rng(config.seed).fork(2)),
      workload_rng_(util::Rng(config.seed).fork(3)),
      failure_rng_(util::Rng(config.seed).fork(4)),
      quarantine_(service.datacenter().host_count()),
      failed_(service.datacenter().host_count(), 0) {}

void Lifecycle::push(double time, EventKind kind, std::uint64_t payload) {
  if (time > config_.duration_s) return;
  events_.push(Event{time, next_seq_++, kind, payload});
}

double Lifecycle::exponential(util::Rng& rng, double mean) {
  // Inverse-CDF sampling; uniform01() < 1 so the log argument stays > 0.
  return -mean * std::log(1.0 - rng.uniform01());
}

void Lifecycle::on_arrival(double now, LifecycleStats& stats) {
  static util::metrics::Counter& m_arrivals =
      lifecycle_counter("lifecycle.arrivals");
  static util::metrics::Counter& m_committed =
      lifecycle_counter("lifecycle.placements_committed");
  static util::metrics::Counter& m_failed =
      lifecycle_counter("lifecycle.placements_failed");
  ++stats.arrivals;
  m_arrivals.inc();

  auto topology = std::make_shared<const topo::AppTopology>(
      make_multitier(config_.stack_vms, config_.mix, workload_rng_));
  util::WallTimer timer;
  const core::ServiceResult result =
      service_->place(*topology, config_.algorithm);
  stats.plan_seconds.add(timer.elapsed_seconds());
  if (result.placement.committed) {
    ++stats.placements_committed;
    m_committed.inc();
    const core::StackId id = next_stack_id_++;
    registry_.add(id, std::move(topology), result.placement.assignment);
    push(now + exponential(lifetime_rng_, config_.mean_lifetime_s),
         EventKind::kDeparture, id);
  } else {
    ++stats.placements_failed;
    m_failed.inc();
  }
  // Poisson process: next arrival after an exponential gap.
  push(now + exponential(arrival_rng_, 1.0 / config_.arrival_rate_per_s),
       EventKind::kArrival, 0);
}

void Lifecycle::on_departure(core::StackId id, LifecycleStats& stats) {
  static util::metrics::Counter& m_departures =
      lifecycle_counter("lifecycle.departures");
  // false means a host failure already killed the stack — the registry's
  // exactly-once remove is the double-release guard.
  if (service_->release_stack(registry_, id)) {
    ++stats.departures;
    m_departures.inc();
  }
}

void Lifecycle::on_host_failure(double now, LifecycleStats& stats) {
  static util::metrics::Counter& m_failures =
      lifecycle_counter("lifecycle.host_failures");
  const std::size_t host_count = service_->datacenter().host_count();
  // Draw among currently-healthy hosts; with everything down (degenerate
  // configs), skip the event but keep the process alive.
  std::vector<dc::HostId> healthy;
  healthy.reserve(host_count);
  for (dc::HostId h = 0; h < host_count; ++h) {
    if (!failed_[h]) healthy.push_back(h);
  }
  if (!healthy.empty()) {
    const dc::HostId victim = healthy[static_cast<std::size_t>(
        failure_rng_.next_below(healthy.size()))];
    std::size_t killed = 0;
    quarantine_[victim] = service_->fail_host(registry_, victim, &killed);
    failed_[victim] = 1;
    ++stats.host_failures;
    stats.stacks_killed += killed;
    m_failures.inc();
    push(now + config_.host_repair_s, EventKind::kHostRepair, victim);
  }
  const double cluster_rate =
      static_cast<double>(host_count) / config_.host_mtbf_s;
  push(now + exponential(failure_rng_, 1.0 / cluster_rate),
       EventKind::kHostFailure, 0);
}

void Lifecycle::on_host_repair(dc::HostId host, LifecycleStats& stats) {
  static util::metrics::Counter& m_repairs =
      lifecycle_counter("lifecycle.host_repairs");
  service_->repair_host(host, quarantine_[host]);
  quarantine_[host] = {};
  failed_[host] = 0;
  ++stats.host_repairs;
  m_repairs.inc();
}

void Lifecycle::on_sample(double now, LifecycleStats& stats) {
  const dc::Occupancy snapshot = service_->snapshot();
  const dc::FragmentationStats frag =
      dc::observe_fragmentation(snapshot, config_.reference_vm);
  stats.trajectory.push_back(TrajectoryPoint{
      now, frag.frag_index, frag.unusable_free_cpu_fraction,
      frag.used_cpu_fraction, frag.feasible_host_fraction, registry_.size(),
      snapshot.active_host_count()});
  push(now + config_.sample_interval_s, EventKind::kSample, 0);
}

LifecycleStats Lifecycle::run() {
  LifecycleStats stats;
  push(exponential(arrival_rng_, 1.0 / config_.arrival_rate_per_s),
       EventKind::kArrival, 0);
  if (config_.host_mtbf_s > 0.0) {
    const double cluster_rate =
        static_cast<double>(service_->datacenter().host_count()) /
        config_.host_mtbf_s;
    push(exponential(failure_rng_, 1.0 / cluster_rate),
         EventKind::kHostFailure, 0);
  }
  if (config_.defrag && config_.defrag_interval_s > 0.0) {
    push(config_.defrag_interval_s, EventKind::kDefragTick, 0);
  }
  if (config_.sample_interval_s > 0.0) {
    push(config_.sample_interval_s, EventKind::kSample, 0);
  }

  while (!events_.empty()) {
    const Event event = events_.top();
    events_.pop();
    switch (event.kind) {
      case EventKind::kArrival:
        on_arrival(event.time, stats);
        break;
      case EventKind::kDeparture:
        on_departure(event.payload, stats);
        break;
      case EventKind::kHostFailure:
        on_host_failure(event.time, stats);
        break;
      case EventKind::kHostRepair:
        on_host_repair(static_cast<dc::HostId>(event.payload), stats);
        break;
      case EventKind::kDefragTick: {
        const core::DefragStats defrag_stats = defrag_.run_once();
        ++stats.defrag_runs;
        stats.defrag_moves += defrag_stats.moves_committed;
        push(event.time + config_.defrag_interval_s, EventKind::kDefragTick,
             0);
        break;
      }
      case EventKind::kSample:
        on_sample(event.time, stats);
        break;
    }
  }
  stats.final_frag =
      dc::observe_fragmentation(service_->snapshot(), config_.reference_vm);
  return stats;
}

}  // namespace ostro::sim
