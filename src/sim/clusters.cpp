#include "sim/clusters.h"

#include <stdexcept>

#include "util/string_util.h"

namespace ostro::sim {
namespace {

constexpr topo::Resources kHostCapacity{16.0, 32.0, 1000.0};

/// Consumes capacity on `host` so that exactly `avail` remains, and marks
/// the host active when anything was consumed.
void load_host_to(dc::Occupancy& occupancy, dc::HostId host, double avail_cores,
                  double avail_mem_gb, double avail_disk_gb,
                  double avail_uplink_mbps) {
  const dc::Host& h = occupancy.datacenter().host(host);
  const topo::Resources used{h.capacity.vcpus - avail_cores,
                             h.capacity.mem_gb - avail_mem_gb,
                             h.capacity.disk_gb - avail_disk_gb};
  topo::require_nonnegative(used, "preload of " + h.name);
  if (!used.is_zero()) {
    occupancy.add_host_load(host, used);
  }
  const double used_bw = h.uplink_mbps - avail_uplink_mbps;
  if (used_bw < 0.0) {
    throw std::invalid_argument("preload: uplink availability > capacity");
  }
  if (used_bw > 0.0) {
    occupancy.reserve_link(occupancy.datacenter().host_link(host), used_bw);
    occupancy.mark_active(host);
  }
}

}  // namespace

dc::DataCenter make_testbed() {
  dc::DataCenterBuilder builder;
  const auto site = builder.add_site("testbed", 40'000.0);
  const auto pod = builder.add_pod(site, "pod0", 40'000.0);
  const auto rack = builder.add_rack(pod, "rack0", 40'000.0);
  for (int i = 0; i < 16; ++i) {
    builder.add_host(rack, util::format("host%d", i), kHostCapacity, 3200.0);
  }
  return builder.build();
}

void apply_testbed_preload(dc::Occupancy& occupancy, util::Rng& rng) {
  if (occupancy.datacenter().host_count() != 16) {
    throw std::invalid_argument(
        "apply_testbed_preload: expected the 16-host testbed");
  }
  for (dc::HostId h = 0; h < 16; ++h) {
    if (h < 4) {
      // Lightly utilized: 8 or 10 available cores, > 20 GB free memory.
      const double cores = rng.chance(0.5) ? 8.0 : 10.0;
      const double mem = static_cast<double>(rng.uniform_int(21, 26));
      load_host_to(occupancy, h, cores, mem, 800.0, 3200.0);
    } else if (h < 8) {
      // Medium: 5 or 6 available cores, 15-19 GB available memory.
      const double cores = static_cast<double>(rng.uniform_int(5, 6));
      const double mem = static_cast<double>(rng.uniform_int(15, 19));
      load_host_to(occupancy, h, cores, mem, 700.0, 3200.0);
    } else if (h < 12) {
      // Constrained: < 5 cores, < 15 GB.
      const double cores = static_cast<double>(rng.uniform_int(2, 4));
      const double mem = static_cast<double>(rng.uniform_int(8, 14));
      load_host_to(occupancy, h, cores, mem, 600.0, 3200.0);
    }
    // Hosts 12-15 stay idle.
  }
}

dc::DataCenter make_sim_datacenter(int racks, int hosts_per_rack) {
  if (racks <= 0 || hosts_per_rack <= 0) {
    throw std::invalid_argument("make_sim_datacenter: non-positive sizes");
  }
  dc::DataCenterBuilder builder;
  const auto site = builder.add_site("sim-dc", 1'000'000.0);
  // The paper's simulated hierarchy has no pod switches: ToRs hang directly
  // off the root, so one pod spans all racks and intra-pod (cross-rack)
  // paths traverse exactly the two 100 Gbps ToR uplinks.
  const auto pod = builder.add_pod(site, "root", 1'000'000.0);
  for (int r = 0; r < racks; ++r) {
    const auto rack =
        builder.add_rack(pod, util::format("rack%d", r), 100'000.0);
    for (int h = 0; h < hosts_per_rack; ++h) {
      builder.add_host(rack, util::format("rack%d-host%d", r, h),
                       kHostCapacity, 10'000.0);
    }
  }
  return builder.build();
}

dc::DataCenter make_wan(int sites, int pods_per_site, int racks_per_pod,
                        int hosts_per_rack, double wan_gbps) {
  if (sites <= 0 || pods_per_site <= 0 || racks_per_pod <= 0 ||
      hosts_per_rack <= 0 || wan_gbps <= 0.0) {
    throw std::invalid_argument("make_wan: non-positive parameters");
  }
  dc::DataCenterBuilder builder;
  // Wide-area latencies: cross-site traffic costs milliseconds, not the
  // microseconds of the intra-DC defaults.
  builder.set_scope_latencies({5.0, 25.0, 80.0, 200.0, 20'000.0});
  for (int s = 0; s < sites; ++s) {
    const auto site =
        builder.add_site(util::format("site%d", s), wan_gbps * 1000.0);
    for (int p = 0; p < pods_per_site; ++p) {
      const auto pod = builder.add_pod(
          site, util::format("s%d-pod%d", s, p), 200'000.0);
      for (int r = 0; r < racks_per_pod; ++r) {
        const auto rack = builder.add_rack(
            pod, util::format("s%d-p%d-rack%d", s, p, r), 100'000.0);
        for (int h = 0; h < hosts_per_rack; ++h) {
          builder.add_host(rack,
                           util::format("s%d-p%d-r%d-host%d", s, p, r, h),
                           kHostCapacity, 10'000.0);
        }
      }
    }
  }
  return builder.build();
}

void apply_sim_preload(dc::Occupancy& occupancy, util::Rng& rng) {
  const dc::DataCenter& datacenter = occupancy.datacenter();
  for (const auto& rack : datacenter.racks()) {
    const std::size_t n = rack.hosts.size();
    for (std::size_t i = 0; i < n; ++i) {
      const dc::HostId host = rack.hosts[i];
      const std::size_t quartile = (i * 4) / n;
      switch (quartile) {
        case 0: {
          // 9-16 cores, 17-30 GB, 0-1.5 Gbps available.
          load_host_to(occupancy, host,
                       static_cast<double>(rng.uniform_int(9, 16)),
                       static_cast<double>(rng.uniform_int(17, 30)),
                       kHostCapacity.disk_gb, rng.uniform(0.0, 1500.0));
          break;
        }
        case 1: {
          // 6-8 cores, 8-16 GB, 2-5 Gbps available.
          load_host_to(occupancy, host,
                       static_cast<double>(rng.uniform_int(6, 8)),
                       static_cast<double>(rng.uniform_int(8, 16)),
                       kHostCapacity.disk_gb, rng.uniform(2000.0, 5000.0));
          break;
        }
        case 2: {
          // 0-5 cores, 0-7 GB, 6-8 Gbps available.
          load_host_to(occupancy, host,
                       static_cast<double>(rng.uniform_int(0, 5)),
                       static_cast<double>(rng.uniform_int(0, 7)),
                       kHostCapacity.disk_gb, rng.uniform(6000.0, 8000.0));
          break;
        }
        default:
          // Fully idle: 16 cores, 32 GB, 10 Gbps.
          break;
      }
    }
  }
}

}  // namespace ostro::sim
