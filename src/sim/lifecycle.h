// sim::Lifecycle — event-driven cluster churn (DESIGN.md section 13).
//
// Every other experiment in this repository places into a fresh or
// monotonically filling data center.  Lifecycle drives a
// core::PlacementService the way a long-running cluster is driven: Poisson
// stack arrivals, exponentially distributed per-stack lifetimes (departures
// release resources through the service's release path), and optional
// host failure/repair cycles — so occupancy fragments realistically and
// the fragmentation metrics / defragmentation planner have something real
// to measure and fix.
//
// Determinism: the simulator runs on *simulated* time with a single
// min-heap of events ordered by (time, insertion sequence); all randomness
// flows through util::Rng streams forked from one seed, so a fixed
// LifecycleConfig reproduces the identical event sequence bit for bit.
// Wall-clock time is only ever *measured* (per-plan latency samples), never
// used for control flow.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "core/defrag.h"
#include "core/service.h"
#include "datacenter/fragmentation.h"
#include "sim/workloads.h"
#include "util/rng.h"
#include "util/stats.h"

namespace ostro::sim {

struct LifecycleConfig {
  /// Poisson stack arrival rate, stacks per simulated second.
  double arrival_rate_per_s = 0.5;
  /// Mean exponential stack lifetime, simulated seconds.
  double mean_lifetime_s = 600.0;
  /// Per-host mean time between failures, simulated seconds (0 = no
  /// failures).  The cluster-wide failure rate is host_count / MTBF.
  double host_mtbf_s = 0.0;
  /// Downtime of a failed host before repair, simulated seconds.
  double host_repair_s = 120.0;
  /// Simulated horizon; events past it are dropped.
  double duration_s = 3600.0;
  /// VMs per arriving multi-tier stack (positive multiple of 5).
  int stack_vms = 10;
  /// VM requirement mix of arriving stacks.
  RequirementMix mix = RequirementMix::kHeterogeneous;
  /// Placement algorithm for arrivals.
  core::Algorithm algorithm = core::Algorithm::kEg;
  /// Master seed; every stochastic stream forks from it.
  std::uint64_t seed = 42;
  /// Run the DefragPlanner every defrag_interval_s simulated seconds.
  bool defrag = false;
  double defrag_interval_s = 60.0;
  core::DefragConfig defrag_config;
  /// Fragmentation sampling period (trajectory resolution).
  double sample_interval_s = 30.0;
  /// Reference VM shape for the fragmentation metrics.
  topo::Resources reference_vm = {2.0, 2.0, 0.0};
};

/// One fragmentation sample along the run.
struct TrajectoryPoint {
  double time_s = 0.0;
  double frag_index = 0.0;
  /// Free-cpu slivers too small for the reference VM — cpu is the binding
  /// dimension of the Table III classes, so this is the most sensitive
  /// member of the family (frag_index is usually dominated by structural
  /// memory stranding from the host cpu:mem shape).
  double unusable_free_cpu_fraction = 0.0;
  double used_cpu_fraction = 0.0;
  double feasible_host_fraction = 0.0;
  std::size_t live_stacks = 0;
  std::size_t active_hosts = 0;
};

struct LifecycleStats {
  std::uint64_t arrivals = 0;
  std::uint64_t placements_committed = 0;
  std::uint64_t placements_failed = 0;
  std::uint64_t departures = 0;
  std::uint64_t host_failures = 0;
  std::uint64_t host_repairs = 0;
  std::uint64_t stacks_killed = 0;  ///< evicted by host failures
  std::uint64_t defrag_runs = 0;
  std::uint64_t defrag_moves = 0;
  /// Wall-clock seconds per placement attempt (plan + commit gate).
  util::Samples plan_seconds;
  std::vector<TrajectoryPoint> trajectory;
  dc::FragmentationStats final_frag;

  [[nodiscard]] double success_rate() const noexcept {
    return arrivals == 0 ? 1.0
                         : static_cast<double>(placements_committed) /
                               static_cast<double>(arrivals);
  }
};

class Lifecycle {
 public:
  /// `service` must outlive the simulator.  The simulator owns the stack
  /// registry it maintains through the service's lifecycle entry points.
  Lifecycle(core::PlacementService& service, LifecycleConfig config);

  /// Runs the event loop to the horizon and returns the collected stats.
  /// Single-shot: construct a fresh Lifecycle per run.
  LifecycleStats run();

  /// The registry of stacks still live (inspectable after run(); the
  /// differential soak test releases them all and compares against a fresh
  /// occupancy).
  [[nodiscard]] core::StackRegistry& registry() noexcept { return registry_; }

 private:
  enum class EventKind : std::uint8_t {
    kArrival,
    kDeparture,
    kHostFailure,
    kHostRepair,
    kDefragTick,
    kSample,
  };
  struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;  ///< insertion order; the determinism tie-break
    EventKind kind = EventKind::kArrival;
    std::uint64_t payload = 0;  ///< stack id or host id
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const noexcept {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  void push(double time, EventKind kind, std::uint64_t payload);
  [[nodiscard]] double exponential(util::Rng& rng, double mean);

  void on_arrival(double now, LifecycleStats& stats);
  void on_departure(core::StackId id, LifecycleStats& stats);
  void on_host_failure(double now, LifecycleStats& stats);
  void on_host_repair(dc::HostId host, LifecycleStats& stats);
  void on_sample(double now, LifecycleStats& stats);

  core::PlacementService* service_;
  LifecycleConfig config_;
  core::StackRegistry registry_;
  core::DefragPlanner defrag_;
  util::Rng arrival_rng_;
  util::Rng lifetime_rng_;
  util::Rng workload_rng_;
  util::Rng failure_rng_;
  std::priority_queue<Event, std::vector<Event>, EventAfter> events_;
  std::uint64_t next_seq_ = 0;
  core::StackId next_stack_id_ = 1;
  /// Quarantine load per currently failed host (kInvalidHost slots unused).
  std::vector<topo::Resources> quarantine_;
  std::vector<char> failed_;
};

}  // namespace ostro::sim
