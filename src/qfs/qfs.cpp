#include "qfs/qfs.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/string_util.h"

namespace ostro::qfs {
namespace {

constexpr double kChunkMb = 64.0;  // QFS chunk size

[[nodiscard]] dc::HostId host_of(const topo::AppTopology& topology,
                                 const net::Assignment& assignment,
                                 const std::string& name) {
  const auto id = topology.find_node(name);
  if (!id) {
    throw std::invalid_argument("QfsCluster: topology has no node " + name);
  }
  const dc::HostId host = assignment[*id];
  if (host == dc::kInvalidHost) {
    throw std::invalid_argument("QfsCluster: node " + name + " is unplaced");
  }
  return host;
}

}  // namespace

QfsCluster::QfsCluster(const topo::AppTopology& topology,
                       const net::Assignment& assignment,
                       const dc::Occupancy& base)
    : base_(&base) {
  if (assignment.size() != topology.node_count()) {
    throw std::invalid_argument("QfsCluster: assignment size mismatch");
  }
  client_host_ = host_of(topology, assignment, "client");
  meta_host_ = host_of(topology, assignment, "meta");
  for (int i = 0;; ++i) {
    const std::string name = util::format("chunk%d", i);
    if (!topology.find_node(name)) break;
    chunk_hosts_.push_back(host_of(topology, assignment, name));
    volume_hosts_.push_back(host_of(topology, assignment, name + "-vol"));
  }
  if (chunk_hosts_.empty()) {
    throw std::invalid_argument("QfsCluster: no chunk servers in topology");
  }
}

BenchmarkResult QfsCluster::solve(const std::vector<net::Flow>& flows,
                                  double total_mb) const {
  BenchmarkResult result;
  result.flows = flows.size();

  // Split the flows: co-located ones move data at local-I/O speed and do
  // not contend on the network.
  std::vector<net::Flow> remote;
  for (const auto& flow : flows) {
    if (flow.src == flow.dst) {
      ++result.colocated_flows;
      result.aggregate_mbps += flow.demand_mbps;
    } else {
      remote.push_back(flow);
    }
  }
  double slowest = std::numeric_limits<double>::infinity();
  if (!remote.empty()) {
    const net::FairShareResult fair = net::max_min_fair_rates(*base_, remote);
    result.aggregate_mbps += fair.total_mbps;
    for (const double rate : fair.rate_mbps) {
      slowest = std::min(slowest, rate);
    }
  }
  result.slowest_flow_mbps =
      remote.empty() ? (flows.empty() ? 0.0 : flows.front().demand_mbps)
                     : slowest;
  // Megabytes -> megabits (x8), moved at the aggregate rate.
  result.completion_seconds =
      result.aggregate_mbps > 0.0 ? total_mb * 8.0 / result.aggregate_mbps
                                  : std::numeric_limits<double>::infinity();
  return result;
}

BenchmarkResult QfsCluster::write_benchmark(double file_mb, int replication,
                                            double offered_mbps) const {
  if (file_mb <= 0.0 || offered_mbps <= 0.0 || replication < 1) {
    throw std::invalid_argument("write_benchmark: bad parameters");
  }
  const auto servers = chunk_hosts_.size();
  const auto chunks =
      static_cast<std::size_t>((file_mb + kChunkMb - 1.0) / kChunkMb);

  // Round-robin striping: chunk c lands on server c % n with replicas on
  // the following servers.  One flow per (server pair) aggregate; demands
  // scale with how many chunks travel that leg.
  std::vector<double> primary_chunks(servers, 0.0);
  std::vector<double> replica_chunks(servers, 0.0);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t primary = c % servers;
    primary_chunks[primary] += 1.0;
    for (int r = 1; r < replication; ++r) {
      replica_chunks[(primary + static_cast<std::size_t>(r)) % servers] += 1.0;
    }
  }

  std::vector<net::Flow> flows;
  const double per_chunk_share =
      offered_mbps / static_cast<double>(std::max<std::size_t>(1, chunks));
  for (std::size_t s = 0; s < servers; ++s) {
    if (primary_chunks[s] > 0.0) {
      // client -> primary server, then server -> its volume.
      flows.push_back({client_host_, chunk_hosts_[s],
                       per_chunk_share * primary_chunks[s]});
      flows.push_back({chunk_hosts_[s], volume_hosts_[s],
                       per_chunk_share * primary_chunks[s]});
    }
    if (replica_chunks[s] > 0.0) {
      // primary forwards to the replica server (chain replication): the
      // sender is the previous server in the stripe ring.
      const std::size_t sender = (s + servers - 1) % servers;
      flows.push_back({chunk_hosts_[sender], chunk_hosts_[s],
                       per_chunk_share * replica_chunks[s]});
      flows.push_back({chunk_hosts_[s], volume_hosts_[s],
                       per_chunk_share * replica_chunks[s]});
    }
  }
  // Meta-server chatter: one small control flow from the client.
  flows.push_back({client_host_, meta_host_, 10.0});

  return solve(flows, file_mb * static_cast<double>(replication));
}

QfsCluster::DegradedResult QfsCluster::degraded_read_benchmark(
    double file_mb, dc::HostId failed_host, double offered_mbps) const {
  if (file_mb <= 0.0 || offered_mbps <= 0.0) {
    throw std::invalid_argument("degraded_read_benchmark: bad parameters");
  }
  const auto servers = chunk_hosts_.size();
  const auto chunks =
      static_cast<std::size_t>((file_mb + kChunkMb - 1.0) / kChunkMb);
  const double per_chunk_share =
      offered_mbps / static_cast<double>(std::max<std::size_t>(1, chunks));

  DegradedResult result;
  // Per serving server: how many chunks it must deliver in degraded mode.
  std::vector<double> serving(servers, 0.0);
  for (std::size_t c = 0; c < chunks; ++c) {
    std::size_t server = c % servers;
    if (chunk_hosts_[server] == failed_host) {
      // Primary down: the replica lives on the next server in the ring
      // (write_benchmark's chain replication).
      const std::size_t replica = (server + 1) % servers;
      if (chunk_hosts_[replica] == failed_host || replica == server) {
        ++result.lost_chunks;
        continue;
      }
      server = replica;
      ++result.rerouted_chunks;
    }
    serving[server] += 1.0;
  }

  std::vector<net::Flow> flows;
  double readable_mb = 0.0;
  for (std::size_t s = 0; s < servers; ++s) {
    if (serving[s] <= 0.0) continue;
    readable_mb += serving[s] * kChunkMb;
    flows.push_back({volume_hosts_[s], chunk_hosts_[s],
                     per_chunk_share * serving[s]});
    flows.push_back({chunk_hosts_[s], client_host_,
                     per_chunk_share * serving[s]});
  }
  flows.push_back({client_host_, meta_host_, 10.0});
  result.benchmark = solve(flows, std::min(readable_mb, file_mb));
  return result;
}

BenchmarkResult QfsCluster::read_benchmark(double file_mb,
                                           double offered_mbps) const {
  if (file_mb <= 0.0 || offered_mbps <= 0.0) {
    throw std::invalid_argument("read_benchmark: bad parameters");
  }
  const auto servers = chunk_hosts_.size();
  const auto chunks =
      static_cast<std::size_t>((file_mb + kChunkMb - 1.0) / kChunkMb);
  std::vector<double> primary_chunks(servers, 0.0);
  for (std::size_t c = 0; c < chunks; ++c) primary_chunks[c % servers] += 1.0;

  std::vector<net::Flow> flows;
  const double per_chunk_share =
      offered_mbps / static_cast<double>(std::max<std::size_t>(1, chunks));
  for (std::size_t s = 0; s < servers; ++s) {
    if (primary_chunks[s] <= 0.0) continue;
    // volume -> server -> client.
    flows.push_back({volume_hosts_[s], chunk_hosts_[s],
                     per_chunk_share * primary_chunks[s]});
    flows.push_back({chunk_hosts_[s], client_host_,
                     per_chunk_share * primary_chunks[s]});
  }
  flows.push_back({client_host_, meta_host_, 10.0});
  return solve(flows, file_mb);
}

}  // namespace ostro::qfs
