// QFS (Quantcast File System) cluster simulation — the "realistic cloud
// storage application" of the paper's testbed experiments (Section IV-A).
//
// The real experiment deploys QFS (meta server, chunk servers with disk
// volumes, a benchmarking client) and measures how the placement affects
// the file-system benchmark.  This module reproduces that observable in
// simulation: files are split into 64 MB chunks, striped over the chunk
// servers with a configurable replication factor, and every write/read is
// translated into network flows (client <-> chunk server, chunk server <->
// replica, chunk server <-> volume) whose rates are computed by the
// max-min fair solver of src/net against the placed cluster.  A placement
// that bin-packs the chunk servers onto few hosts (EG_C-style) shares few
// host uplinks across many flows and shows up directly as lower benchmark
// throughput.
#pragma once

#include <string>
#include <vector>

#include "datacenter/occupancy.h"
#include "net/maxmin.h"
#include "net/reservation.h"
#include "topology/app_topology.h"

namespace ostro::qfs {

struct BenchmarkResult {
  double aggregate_mbps = 0.0;       ///< sum of all data-flow rates
  double slowest_flow_mbps = 0.0;    ///< the straggler that gates the run
  double completion_seconds = 0.0;   ///< time to move all bytes
  std::size_t flows = 0;
  std::size_t colocated_flows = 0;   ///< flows with src == dst host (free)
};

class QfsCluster {
 public:
  /// `topology` must follow the naming of sim::make_qfs ("client",
  /// "chunk<i>", "chunk<i>-vol", "meta"); `assignment` is its placement.
  /// Throws std::invalid_argument when a required node is missing or
  /// unplaced.  `base` supplies background traffic (other tenants).
  QfsCluster(const topo::AppTopology& topology,
             const net::Assignment& assignment, const dc::Occupancy& base);

  [[nodiscard]] std::size_t chunk_server_count() const noexcept {
    return chunk_hosts_.size();
  }

  /// Writes `file_mb` megabytes: chunks are striped round-robin across the
  /// chunk servers; each chunk produces a client->server flow, replication
  /// flows to the next `replication - 1` servers, and server->volume I/O
  /// (free when co-located).  Demands are `offered_mbps` per flow.
  [[nodiscard]] BenchmarkResult write_benchmark(double file_mb,
                                                int replication = 2,
                                                double offered_mbps = 1000.0) const;

  /// Reads the same striping back: one server->client flow per chunk batch.
  [[nodiscard]] BenchmarkResult read_benchmark(double file_mb,
                                               double offered_mbps = 1000.0) const;

  /// Degraded read after `failed_host` dies: chunks whose primary lived
  /// there are fetched from the next server in the stripe ring (where the
  /// replica landed, see write_benchmark).  This is the reliability story
  /// behind the paper's diversity zones — with the 12 chunk volumes forced
  /// onto 12 separate disks, one host failure costs 1/12 of the primaries
  /// instead of all of them.  Returns the number of chunks that became
  /// unreadable (primary AND replica on the failed host) in `lost_chunks`.
  struct DegradedResult {
    BenchmarkResult benchmark;
    std::size_t rerouted_chunks = 0;
    std::size_t lost_chunks = 0;
  };
  [[nodiscard]] DegradedResult degraded_read_benchmark(
      double file_mb, dc::HostId failed_host,
      double offered_mbps = 1000.0) const;

 private:
  [[nodiscard]] BenchmarkResult solve(const std::vector<net::Flow>& flows,
                                      double total_mb) const;

  const dc::Occupancy* base_;
  dc::HostId client_host_ = dc::kInvalidHost;
  dc::HostId meta_host_ = dc::kInvalidHost;
  std::vector<dc::HostId> chunk_hosts_;
  std::vector<dc::HostId> volume_hosts_;
};

}  // namespace ostro::qfs
