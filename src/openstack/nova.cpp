#include "openstack/nova.h"

namespace ostro::os {

std::optional<dc::HostId> find_host_by_name(const dc::DataCenter& datacenter,
                                            const std::string& name) {
  return datacenter.find_host(name);
}

std::optional<dc::HostId> NovaScheduler::select_host(
    const dc::Occupancy& occupancy, const topo::Resources& flavor) {
  const dc::DataCenter& datacenter = occupancy.datacenter();
  std::optional<dc::HostId> best;
  double best_weight = -1.0;
  for (const auto& host : datacenter.hosts()) {
    const topo::Resources avail = occupancy.available(host.id);
    if (!flavor.fits_within(avail)) continue;  // Core/Ram/Disk filters
    // RAMWeigher + CPUWeigher (normalized free capacity, spread behavior).
    const double weight =
        (host.capacity.mem_gb > 0.0 ? avail.mem_gb / host.capacity.mem_gb
                                    : 0.0) +
        (host.capacity.vcpus > 0.0 ? avail.vcpus / host.capacity.vcpus : 0.0);
    if (weight > best_weight) {
      best_weight = weight;
      best = host.id;
    }
  }
  return best;
}

std::optional<dc::HostId> NovaScheduler::select_forced(
    const dc::Occupancy& occupancy, const topo::Resources& flavor,
    const std::string& host_name) {
  const auto host = find_host_by_name(occupancy.datacenter(), host_name);
  if (!host) return std::nullopt;
  if (!flavor.fits_within(occupancy.available(*host))) return std::nullopt;
  return host;
}

std::optional<dc::HostId> CinderScheduler::select_host(
    const dc::Occupancy& occupancy, double size_gb) {
  const dc::DataCenter& datacenter = occupancy.datacenter();
  std::optional<dc::HostId> best;
  double best_free = -1.0;
  for (const auto& host : datacenter.hosts()) {
    const double free = occupancy.available(host.id).disk_gb;
    if (free < size_gb) continue;  // CapacityFilter
    if (free > best_free) {        // CapacityWeigher
      best_free = free;
      best = host.id;
    }
  }
  return best;
}

std::optional<dc::HostId> CinderScheduler::select_forced(
    const dc::Occupancy& occupancy, double size_gb,
    const std::string& host_name) {
  const auto host = find_host_by_name(occupancy.datacenter(), host_name);
  if (!host) return std::nullopt;
  if (occupancy.available(*host).disk_gb < size_gb) return std::nullopt;
  return host;
}

}  // namespace ostro::os
