#include "openstack/heat_engine.h"

#include "core/verify.h"
#include "openstack/nova.h"

namespace ostro::os {

StackDeployment HeatEngine::deploy(const util::Json& annotated) {
  StackDeployment result;
  HeatTemplate parsed;
  try {
    parsed = HeatTemplate::parse(annotated);
  } catch (const TemplateError& e) {
    result.failure = e.what();
    return result;
  }
  const topo::AppTopology& topology = parsed.topology;
  const dc::DataCenter& datacenter = occupancy_->datacenter();

  // Select a host per resource.  Scheduling decisions observe the stack's
  // own partial consumption, so we track tentative loads on a scratch copy.
  dc::Occupancy scratch = *occupancy_;
  result.assignment.assign(topology.node_count(), dc::kInvalidHost);
  const auto& resources = annotated.at("resources").as_object();
  for (const auto& node : topology.nodes()) {
    const util::Json& resource = resources.at(node.name);
    std::string forced;
    if (resource.contains("scheduler_hints")) {
      forced = resource.at("scheduler_hints")
                   .string_or("ATT::Ostro::force_host", "");
    }
    std::optional<dc::HostId> host;
    if (node.kind == topo::NodeKind::kVm) {
      host = forced.empty()
                 ? NovaScheduler::select_host(scratch, node.requirements)
                 : NovaScheduler::select_forced(scratch, node.requirements,
                                                forced);
    } else {
      host = forced.empty()
                 ? CinderScheduler::select_host(scratch,
                                                node.requirements.disk_gb)
                 : CinderScheduler::select_forced(
                       scratch, node.requirements.disk_gb, forced);
    }
    if (!host) {
      result.failure = "no valid host for resource " + node.name +
                       (forced.empty() ? "" : " (forced to " + forced + ")");
      return result;
    }
    scratch.add_host_load(*host, node.requirements);
    result.assignment[node.id] = *host;
  }

  // Final validation gate (capacity, pipes, diversity zones) against the
  // real occupancy, then the transactional commit.
  const auto violations =
      core::verify_placement(*occupancy_, topology, result.assignment);
  if (!violations.empty()) {
    result.failure = "placement validation failed: " + violations.front();
    return result;
  }

  const std::size_t active_before = occupancy_->active_host_count();
  try {
    net::commit_placement(*occupancy_, topology, result.assignment);
  } catch (const std::invalid_argument& e) {
    result.failure = e.what();
    return result;
  }
  result.success = true;
  result.new_active_hosts = static_cast<int>(occupancy_->active_host_count() -
                                             active_before);
  result.reserved_bandwidth_mbps =
      net::reserved_bandwidth_mbps(datacenter, topology, result.assignment);
  return result;
}

StackDeployment HeatEngine::deploy_text(std::string_view template_text) {
  try {
    return deploy(util::Json::parse(template_text));
  } catch (const util::JsonError& e) {
    StackDeployment result;
    result.failure = std::string("invalid template JSON: ") + e.what();
    return result;
  }
}

}  // namespace ostro::os
