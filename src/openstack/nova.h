// Simulated OpenStack Nova and Cinder schedulers — the "naive" baseline of
// the paper's introduction: each VM or volume request is handled in
// isolation, with no knowledge of the application's pipes or of requests
// that will follow.
//
// Nova is modeled after the classic FilterScheduler: filters (CoreFilter,
// RamFilter, DiskFilter) drop hosts that lack capacity, then weighers rank
// the survivors — the stock RAMWeigher/CPUWeigher prefer the hosts with
// the most free memory/cores, which spreads load across the fleet.  Cinder
// analogously picks the backend (here: host-attached disk) with the most
// free capacity.  Both honor a force_host scheduler hint, which is how the
// Ostro wrapper drives them to the holistic placement (Figure 1).
#pragma once

#include <optional>
#include <string>

#include "datacenter/occupancy.h"
#include "topology/resources.h"

namespace ostro::os {

class NovaScheduler {
 public:
  /// Picks a host for one server request against the current occupancy, or
  /// nullopt when every host fails the filters.  Does not commit.
  [[nodiscard]] static std::optional<dc::HostId> select_host(
      const dc::Occupancy& occupancy, const topo::Resources& flavor);

  /// force_host path: validates that the named host passes the filters.
  [[nodiscard]] static std::optional<dc::HostId> select_forced(
      const dc::Occupancy& occupancy, const topo::Resources& flavor,
      const std::string& host_name);
};

class CinderScheduler {
 public:
  /// Picks a host-attached disk for one volume request (most free disk).
  [[nodiscard]] static std::optional<dc::HostId> select_host(
      const dc::Occupancy& occupancy, double size_gb);

  [[nodiscard]] static std::optional<dc::HostId> select_forced(
      const dc::Occupancy& occupancy, double size_gb,
      const std::string& host_name);
};

/// Looks a host up by name; nullopt when absent.
[[nodiscard]] std::optional<dc::HostId> find_host_by_name(
    const dc::DataCenter& datacenter, const std::string& name);

}  // namespace ostro::os
