// The Heat wrapper of Figure 1: intercepts a QoS-enhanced Heat template,
// asks Ostro for a holistic placement, annotates the template with the
// resulting force_host scheduler hints, and hands it to the Heat engine,
// which drives Nova/Cinder onto the designated hosts and disks.
#pragma once

#include "core/scheduler.h"
#include "openstack/heat_engine.h"
#include "openstack/heat_template.h"

namespace ostro::os {

struct WrapperResult {
  core::Placement placement;     ///< Ostro's decision (may be infeasible)
  util::Json annotated_template; ///< template with scheduler hints
  StackDeployment deployment;    ///< what the Heat engine then did
};

class OstroHeatWrapper {
 public:
  /// Scheduler and engine must share the same occupancy lifetime; the usual
  /// wiring is one OstroScheduler plus a HeatEngine over its occupancy.
  OstroHeatWrapper(core::OstroScheduler& scheduler, HeatEngine& engine)
      : scheduler_(&scheduler), engine_(&engine) {}

  /// Full pipeline: parse -> Ostro placement -> annotate -> Heat deploy.
  /// On any failure the returned deployment carries the reason and nothing
  /// is committed.
  [[nodiscard]] WrapperResult process(const util::Json& template_document,
                                      core::Algorithm algorithm);
  [[nodiscard]] WrapperResult process_text(std::string_view template_text,
                                           core::Algorithm algorithm);

 private:
  core::OstroScheduler* scheduler_;
  HeatEngine* engine_;
};

}  // namespace ostro::os
