// The Heat wrapper of Figure 1: intercepts a QoS-enhanced Heat template,
// asks Ostro for a holistic placement, annotates the template with the
// resulting force_host scheduler hints, and hands it to the Heat engine,
// which drives Nova/Cinder onto the designated hosts and disks.
//
// The plan→deploy pipeline runs through core::PlacementService, so it is
// atomic against concurrent stacks: the Heat-engine deploy executes under
// the service's writer lock after the validate-and-commit gate, and a
// competing commit that lands between Ostro's plan and the engine deploy
// produces a clean replan (not a spurious "placement validation failed").
#pragma once

#include <future>
#include <memory>

#include "core/scheduler.h"
#include "core/service.h"
#include "core/stream.h"
#include "openstack/heat_engine.h"
#include "openstack/heat_template.h"

namespace ostro::os {

struct WrapperResult {
  core::Placement placement;     ///< Ostro's decision (may be infeasible)
  util::Json annotated_template; ///< template with scheduler hints
  StackDeployment deployment;    ///< what the Heat engine then did
  std::uint32_t conflicts = 0;   ///< commit conflicts hit by this request
  std::uint32_t retries = 0;     ///< replans after conflicts
};

class OstroHeatWrapper {
 public:
  /// Scheduler and engine must share the same occupancy lifetime; the usual
  /// wiring is one OstroScheduler plus a HeatEngine over its occupancy.
  /// This constructor wraps the scheduler in an internally owned
  /// PlacementService; the scheduler must then not be driven concurrently
  /// outside the wrapper.
  OstroHeatWrapper(core::OstroScheduler& scheduler, HeatEngine& engine)
      : owned_service_(std::make_unique<core::PlacementService>(scheduler)),
        service_(owned_service_.get()),
        engine_(&engine) {}

  /// Shares an external service (and with it, the concurrency domain of
  /// every other request going through that service).  The engine must
  /// deploy into the occupancy of the service's scheduler.
  OstroHeatWrapper(core::PlacementService& service, HeatEngine& engine)
      : service_(&service), engine_(&engine) {}

  /// Full pipeline: parse -> Ostro placement -> annotate -> Heat deploy,
  /// with the annotate+deploy step running as the service's commit step.
  /// On any failure the returned deployment carries the reason and nothing
  /// is committed.
  [[nodiscard]] WrapperResult process(const util::Json& template_document,
                                      core::Algorithm algorithm);
  [[nodiscard]] WrapperResult process_text(std::string_view template_text,
                                           core::Algorithm algorithm);

  /// A stack admitted to the streaming front end.  `result` resolves when
  /// a dispatcher completes the request; `stack` is shared with the commit
  /// step and carries the annotated template and engine deployment once
  /// the result is ready (merge the placement from the StreamResult).
  struct StreamedStack {
    std::future<core::StreamResult> result;
    std::shared_ptr<WrapperResult> stack;
  };

  /// Streamed pipeline: parse, then enqueue on `stream` (which must front
  /// the same PlacementService this wrapper deploys through) with the
  /// annotate+deploy step as the request's commit step — the same
  /// TOCTOU-free shape as process(), but batched, prioritized and
  /// deadline-gated by the admission queue.  Template parse errors resolve
  /// the future immediately as kFailed.
  [[nodiscard]] StreamedStack submit_streamed(
      core::StreamingService& stream, const util::Json& template_document,
      core::Algorithm algorithm,
      core::StreamPriority priority = core::StreamPriority::kNormal,
      double deadline_seconds = 0.0);

 private:
  std::unique_ptr<core::PlacementService> owned_service_;
  core::PlacementService* service_;
  HeatEngine* engine_;
};

}  // namespace ostro::os
