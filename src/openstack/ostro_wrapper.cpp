#include "openstack/ostro_wrapper.h"

namespace ostro::os {

WrapperResult OstroHeatWrapper::process(const util::Json& template_document,
                                        core::Algorithm algorithm) {
  WrapperResult result;
  HeatTemplate parsed;
  try {
    parsed = HeatTemplate::parse(template_document);
  } catch (const TemplateError& e) {
    result.deployment.failure = e.what();
    return result;
  }

  // The annotate+deploy step is the service's committer: it runs under the
  // writer lock, after the validate-and-commit gate re-checked the plan
  // against the live occupancy, so the engine's own validation can only
  // fail for engine-level reasons — never because a competing stack
  // committed between plan and deploy.
  const core::ServiceResult service_result = service_->place_with(
      parsed.topology, algorithm, service_->scheduler().defaults(),
      [&](const core::Placement& placement, std::string& failure) {
        result.annotated_template = annotate_with_placement(
            template_document, parsed, placement.assignment,
            service_->datacenter());
        result.deployment = engine_->deploy(result.annotated_template);
        if (!result.deployment.success) failure = result.deployment.failure;
        return result.deployment.success;
      });

  result.placement = service_result.placement;
  result.conflicts = service_result.conflicts;
  result.retries = service_result.retries;
  if (!result.placement.feasible) {
    result.deployment.failure =
        "Ostro found no feasible placement: " + result.placement.failure_reason;
  } else if (!result.placement.committed && result.deployment.failure.empty()) {
    // Conflict ladder exhausted (or overcommitted): the committer never
    // ran, so surface the service's reason as the deployment failure.
    result.deployment.failure = result.placement.failure_reason;
  }
  return result;
}

WrapperResult OstroHeatWrapper::process_text(std::string_view template_text,
                                             core::Algorithm algorithm) {
  try {
    return process(util::Json::parse(template_text), algorithm);
  } catch (const util::JsonError& e) {
    WrapperResult result;
    result.deployment.failure = std::string("invalid template JSON: ") +
                                e.what();
    return result;
  }
}

}  // namespace ostro::os
