#include "openstack/ostro_wrapper.h"

namespace ostro::os {

WrapperResult OstroHeatWrapper::process(const util::Json& template_document,
                                        core::Algorithm algorithm) {
  WrapperResult result;
  HeatTemplate parsed;
  try {
    parsed = HeatTemplate::parse(template_document);
  } catch (const TemplateError& e) {
    result.deployment.failure = e.what();
    return result;
  }

  result.placement = scheduler_->plan(parsed.topology, algorithm);
  if (!result.placement.feasible) {
    result.deployment.failure =
        "Ostro found no feasible placement: " + result.placement.failure_reason;
    return result;
  }

  result.annotated_template = annotate_with_placement(
      template_document, parsed, result.placement.assignment,
      scheduler_->datacenter());
  result.deployment = engine_->deploy(result.annotated_template);
  return result;
}

WrapperResult OstroHeatWrapper::process_text(std::string_view template_text,
                                             core::Algorithm algorithm) {
  try {
    return process(util::Json::parse(template_text), algorithm);
  } catch (const util::JsonError& e) {
    WrapperResult result;
    result.deployment.failure = std::string("invalid template JSON: ") +
                                e.what();
    return result;
  }
}

}  // namespace ostro::os
