#include "openstack/ostro_wrapper.h"

namespace ostro::os {

WrapperResult OstroHeatWrapper::process(const util::Json& template_document,
                                        core::Algorithm algorithm) {
  WrapperResult result;
  HeatTemplate parsed;
  try {
    parsed = HeatTemplate::parse(template_document);
  } catch (const TemplateError& e) {
    result.deployment.failure = e.what();
    return result;
  }

  // The annotate+deploy step is the service's committer: it runs under the
  // writer lock, after the validate-and-commit gate re-checked the plan
  // against the live occupancy, so the engine's own validation can only
  // fail for engine-level reasons — never because a competing stack
  // committed between plan and deploy.
  const core::ServiceResult service_result = service_->place_with(
      parsed.topology, algorithm, service_->scheduler().defaults(),
      [&](const core::Placement& placement, std::string& failure) {
        result.annotated_template = annotate_with_placement(
            template_document, parsed, placement.assignment,
            service_->datacenter());
        result.deployment = engine_->deploy(result.annotated_template);
        if (!result.deployment.success) failure = result.deployment.failure;
        return result.deployment.success;
      });

  result.placement = service_result.placement;
  result.conflicts = service_result.conflicts;
  result.retries = service_result.retries;
  if (!result.placement.feasible) {
    result.deployment.failure =
        "Ostro found no feasible placement: " + result.placement.failure_reason;
  } else if (!result.placement.committed && result.deployment.failure.empty()) {
    // Conflict ladder exhausted (or overcommitted): the committer never
    // ran, so surface the service's reason as the deployment failure.
    result.deployment.failure = result.placement.failure_reason;
  }
  return result;
}

OstroHeatWrapper::StreamedStack OstroHeatWrapper::submit_streamed(
    core::StreamingService& stream, const util::Json& template_document,
    core::Algorithm algorithm, core::StreamPriority priority,
    double deadline_seconds) {
  StreamedStack streamed;
  streamed.stack = std::make_shared<WrapperResult>();

  HeatTemplate parsed;
  try {
    parsed = HeatTemplate::parse(template_document);
  } catch (const TemplateError& e) {
    streamed.stack->deployment.failure = e.what();
    std::promise<core::StreamResult> failed;
    core::StreamResult result;
    result.status = core::StreamStatus::kFailed;
    result.service.placement.failure_reason = e.what();
    failed.set_value(std::move(result));
    streamed.result = failed.get_future();
    return streamed;
  }

  core::StreamRequest request;
  request.topology = parsed.topology;
  request.algorithm = algorithm;
  request.priority = priority;
  request.deadline_seconds = deadline_seconds;
  // Same commit step as process(), shared with the caller through `stack`:
  // the dispatcher runs it under the service writer lock after the batch
  // gate validated the plan, so the engine deploy stays TOCTOU-free even
  // when the request was batched with others.
  request.committer = [state = streamed.stack, document = template_document,
                       parsed = std::move(parsed), this](
                          const core::Placement& placement,
                          std::string& failure) {
    state->annotated_template = annotate_with_placement(
        document, parsed, placement.assignment, service_->datacenter());
    state->deployment = engine_->deploy(state->annotated_template);
    if (!state->deployment.success) failure = state->deployment.failure;
    return state->deployment.success;
  };
  streamed.result = stream.submit(std::move(request));
  return streamed;
}

WrapperResult OstroHeatWrapper::process_text(std::string_view template_text,
                                             core::Algorithm algorithm) {
  try {
    return process(util::Json::parse(template_text), algorithm);
  } catch (const util::JsonError& e) {
    WrapperResult result;
    result.deployment.failure = std::string("invalid template JSON: ") +
                                e.what();
    return result;
  }
}

}  // namespace ostro::os
