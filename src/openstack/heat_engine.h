// Simulated Heat engine: turns a (possibly annotated) QoS-enhanced template
// into committed reservations on the data center.
//
// Every server/volume resource is scheduled through Nova/Cinder — honoring
// the "ATT::Ostro::force_host" scheduler hint when present, falling back to
// the stock filter/weigher behavior otherwise — and the pipes' bandwidth is
// reserved along the physical paths.  The deployment is transactional: any
// failure (no host passes the filters, a pipe does not fit the network, a
// diversity zone is violated) rolls everything back and reports the reason.
#pragma once

#include <string>

#include "datacenter/occupancy.h"
#include "openstack/heat_template.h"

namespace ostro::os {

struct StackDeployment {
  bool success = false;
  std::string failure;
  net::Assignment assignment;  ///< node-id -> host, valid when success
  double reserved_bandwidth_mbps = 0.0;
  int new_active_hosts = 0;
};

class HeatEngine {
 public:
  /// `occupancy` must outlive the engine; deployments commit into it.
  explicit HeatEngine(dc::Occupancy& occupancy) : occupancy_(&occupancy) {}

  /// Deploys the stack described by `annotated` (a template document whose
  /// resources may carry force_host scheduler hints).  Diversity zones are
  /// enforced as a final validation gate regardless of who chose the hosts,
  /// mirroring Valet's role as a placement validator.
  [[nodiscard]] StackDeployment deploy(const util::Json& annotated);

  /// Convenience: parse + deploy.
  [[nodiscard]] StackDeployment deploy_text(std::string_view template_text);

 private:
  dc::Occupancy* occupancy_;
};

}  // namespace ostro::os
