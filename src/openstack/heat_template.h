// QoS-enhanced Heat templates (Figure 1 / Section II of the paper).
//
// The paper describes the application topology as "a Heat template extended
// with diversity zones and a network pipe concept".  This module implements
// that template as a JSON document:
//
//   {
//     "heat_template_version": "2014-10-16",
//     "description": "three tier web app",
//     "resources": {
//       "web0":  {"type": "OS::Nova::Server",
//                 "properties": {"flavor": "m1.small"}},
//       "db0":   {"type": "OS::Nova::Server",
//                 "properties": {"flavor": {"vcpus": 4, "ram_gb": 8}}},
//       "vol0":  {"type": "OS::Cinder::Volume",
//                 "properties": {"size_gb": 120}},
//       "pipe0": {"type": "ATT::QoS::Pipe",
//                 "properties": {"from": "db0", "to": "vol0",
//                                "bandwidth_mbps": 100}},
//       "dz0":   {"type": "ATT::Valet::DiversityZone",
//                 "properties": {"level": "host",
//                                "members": ["web0", "db0"]}},
//       "ag0":   {"type": "ATT::Valet::AffinityGroup",
//                 "properties": {"level": "rack",
//                                "members": ["db0", "vol0"]}}
//     }
//   }
//
// Optional properties: servers may carry "required_tags": ["ssd", ...]
// (hardware affinity) and pipes "max_latency_us": 200 (latency budget,
// Section VI future work).
//
// parse() validates the document and produces the AppTopology the Ostro
// core consumes; annotate_with_placement() writes the scheduler hints
// ("ATT::Ostro::force_host") back into a copy of the template, which is
// what the Heat engine then enforces via Nova/Cinder — the exact flow of
// the paper's Figure 1.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "datacenter/datacenter.h"
#include "net/reservation.h"
#include "topology/app_topology.h"
#include "util/json.h"

namespace ostro::os {

/// Raised on malformed or semantically invalid templates.
class TemplateError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct HeatTemplate {
  std::string description;
  topo::AppTopology topology;
  /// Resource keys of VM/volume nodes in topology node-id order.
  std::vector<std::string> resource_keys;

  /// Parses and validates a template document.
  [[nodiscard]] static HeatTemplate parse(const util::Json& document);
  [[nodiscard]] static HeatTemplate parse_text(std::string_view text);
};

/// Known Nova flavors accepted as string flavor names.
/// m1.tiny (1/0.5), m1.small (2/2), m1.medium (2/4), m1.large (4/8),
/// m1.xlarge (8/16); throws TemplateError for unknown names.
[[nodiscard]] topo::Resources flavor_by_name(const std::string& name);

/// Returns a copy of `document` in which every server/volume resource
/// carries {"scheduler_hints": {"ATT::Ostro::force_host": "<host name>"}}
/// per `assignment`.
[[nodiscard]] util::Json annotate_with_placement(
    const util::Json& document, const HeatTemplate& parsed,
    const net::Assignment& assignment, const dc::DataCenter& datacenter);

}  // namespace ostro::os
