#include "openstack/heat_template.h"

#include <map>

namespace ostro::os {
namespace {

[[nodiscard]] topo::DiversityLevel parse_level(const std::string& text) {
  if (text == "host") return topo::DiversityLevel::kHost;
  if (text == "rack") return topo::DiversityLevel::kRack;
  if (text == "pod") return topo::DiversityLevel::kPod;
  if (text == "datacenter" || text == "dc") {
    return topo::DiversityLevel::kDatacenter;
  }
  throw TemplateError("unknown diversity level: " + text);
}

[[nodiscard]] topo::Resources parse_flavor(const util::Json& flavor) {
  if (flavor.is_string()) return flavor_by_name(flavor.as_string());
  if (flavor.is_object()) {
    topo::Resources r;
    r.vcpus = flavor.number_or("vcpus", 1.0);
    r.mem_gb = flavor.number_or("ram_gb", 1.0);
    r.disk_gb = flavor.number_or("disk_gb", 0.0);
    if (r.vcpus <= 0.0 || r.mem_gb <= 0.0 || r.disk_gb < 0.0) {
      throw TemplateError("flavor with non-positive vcpus/ram");
    }
    return r;
  }
  throw TemplateError("flavor must be a name or an object");
}

}  // namespace

topo::Resources flavor_by_name(const std::string& name) {
  static const std::map<std::string, topo::Resources> kFlavors = {
      {"m1.tiny", {1.0, 0.5, 0.0}},
      {"m1.small", {2.0, 2.0, 0.0}},
      {"m1.medium", {2.0, 4.0, 0.0}},
      {"m1.large", {4.0, 8.0, 0.0}},
      {"m1.xlarge", {8.0, 16.0, 0.0}},
  };
  const auto it = kFlavors.find(name);
  if (it == kFlavors.end()) throw TemplateError("unknown flavor: " + name);
  return it->second;
}

HeatTemplate HeatTemplate::parse_text(std::string_view text) {
  try {
    return parse(util::Json::parse(text));
  } catch (const util::JsonError& e) {
    throw TemplateError(std::string("template is not valid JSON: ") +
                        e.what());
  }
}

HeatTemplate HeatTemplate::parse(const util::Json& document) {
  if (!document.is_object()) {
    throw TemplateError("template root must be an object");
  }
  if (!document.contains("resources")) {
    throw TemplateError("template has no resources section");
  }

  HeatTemplate out;
  out.description = document.string_or("description", "");

  topo::TopologyBuilder builder;
  const auto& resources = document.at("resources").as_object();

  // Pass 1: nodes (servers and volumes), so pipes/zones can reference them.
  for (const auto& [key, resource] : resources) {
    const std::string type = resource.string_or("type", "");
    if (type.empty()) {
      throw TemplateError("resource " + key + " has no type");
    }
    const util::Json empty = util::JsonObject{};
    const util::Json& properties = resource.get_or("properties", empty);
    try {
      if (type == "OS::Nova::Server") {
        builder.add_vm(key, parse_flavor(properties.at("flavor")));
        if (properties.contains("required_tags")) {
          std::vector<std::string> tags;
          for (const auto& tag : properties.at("required_tags").as_array()) {
            tags.push_back(tag.as_string());
          }
          builder.require_tags(key, std::move(tags));
        }
        out.resource_keys.push_back(key);
      } else if (type == "OS::Cinder::Volume") {
        builder.add_volume(key, properties.at("size_gb").as_number());
        out.resource_keys.push_back(key);
      }
    } catch (const util::JsonError& e) {
      throw TemplateError("resource " + key + ": " + e.what());
    } catch (const std::invalid_argument& e) {
      throw TemplateError("resource " + key + ": " + e.what());
    }
  }

  // Pass 2: pipes and diversity zones.
  for (const auto& [key, resource] : resources) {
    const std::string type = resource.string_or("type", "");
    const util::Json empty = util::JsonObject{};
    const util::Json& properties = resource.get_or("properties", empty);
    try {
      if (type == "ATT::QoS::Pipe") {
        builder.connect(properties.at("from").as_string(),
                        properties.at("to").as_string(),
                        properties.at("bandwidth_mbps").as_number(),
                        properties.number_or("max_latency_us", 0.0));
      } else if (type == "ATT::Valet::DiversityZone") {
        std::vector<std::string> members;
        for (const auto& member : properties.at("members").as_array()) {
          members.push_back(member.as_string());
        }
        builder.add_zone(key, parse_level(properties.at("level").as_string()),
                         members);
      } else if (type == "ATT::Valet::AffinityGroup") {
        std::vector<std::string> members;
        for (const auto& member : properties.at("members").as_array()) {
          members.push_back(member.as_string());
        }
        builder.add_affinity(key,
                             parse_level(properties.at("level").as_string()),
                             members);
      } else if (type != "OS::Nova::Server" && type != "OS::Cinder::Volume") {
        throw TemplateError("resource " + key + " has unsupported type " +
                            type);
      }
    } catch (const util::JsonError& e) {
      throw TemplateError("resource " + key + ": " + e.what());
    } catch (const std::invalid_argument& e) {
      throw TemplateError("resource " + key + ": " + e.what());
    }
  }

  try {
    out.topology = builder.build();
  } catch (const std::invalid_argument& e) {
    throw TemplateError(e.what());
  }
  return out;
}

util::Json annotate_with_placement(const util::Json& document,
                                   const HeatTemplate& parsed,
                                   const net::Assignment& assignment,
                                   const dc::DataCenter& datacenter) {
  if (assignment.size() != parsed.topology.node_count()) {
    throw TemplateError("annotate_with_placement: assignment size mismatch");
  }
  util::Json annotated = document;  // deep copy
  auto& resources =
      annotated.as_object().at("resources").as_object();
  for (const auto& node : parsed.topology.nodes()) {
    const dc::HostId host = assignment[node.id];
    if (host == dc::kInvalidHost) {
      throw TemplateError("annotate_with_placement: node " + node.name +
                          " unplaced");
    }
    auto& resource = resources.at(node.name).as_object();
    util::JsonObject hints;
    hints["ATT::Ostro::force_host"] = datacenter.host(host).name;
    resource["scheduler_hints"] = util::Json(std::move(hints));
  }
  return annotated;
}

}  // namespace ostro::os
