#include "core/search_core.h"

#include <new>

namespace ostro::core {

SearchArena::~SearchArena() {
  // Slab storage is owned by the ChunkArena; only the destructors must run.
  for (PartialPlacement* state : states_) state->~PartialPlacement();
}

void SearchArena::begin_plan(bool depth_first, std::size_t open_reserve) {
  warm_ = plans_ > 0;
  active_ = true;
  in_use_ = 0;
  heap_.configure(depth_first, open_reserve);
  heap_.clear();
  closed_.clear();
  dedupe_seen_.clear();
}

void SearchArena::end_plan() noexcept {
  // States stay constructed with their capacities; the next plan rebuilds
  // them via assign_pooled_flat/branch_from.
  in_use_ = 0;
  active_ = false;
  ++plans_;
}

PartialPlacement& SearchArena::acquire(const PartialPlacement& proto) {
  if (in_use_ < states_.size()) return *states_[in_use_++];
  void* slot = slabs_.allocate(sizeof(PartialPlacement),
                               alignof(PartialPlacement));
  PartialPlacement* state = new (slot)
      PartialPlacement(proto.topology(), proto.base(), proto.objective());
  states_.push_back(state);
  ++in_use_;
  return *state;
}

std::size_t SearchArena::bytes_retained() const noexcept {
  std::size_t bytes = slabs_.bytes_reserved() + heap_.capacity_bytes() +
                      closed_.capacity_bytes() +
                      dedupe_seen_.capacity_bytes() +
                      dedupe_kept_.capacity() * sizeof(dc::HostId) +
                      signature_keys_.capacity() *
                          sizeof(std::pair<std::uint64_t, std::uint64_t>) +
                      children_.capacity() *
                          sizeof(std::pair<double, dc::HostId>);
  for (const PartialPlacement* state : states_) {
    bytes += state->pooled_bytes() - sizeof(PartialPlacement);
  }
  return bytes;
}

SearchArena& thread_search_arena() {
  thread_local SearchArena arena;
  return arena;
}

}  // namespace ostro::core
