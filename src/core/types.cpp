#include "core/types.h"

#include <stdexcept>

#include "util/string_util.h"

namespace ostro::core {

const char* to_string(Algorithm algorithm) noexcept {
  switch (algorithm) {
    case Algorithm::kEg: return "EG";
    case Algorithm::kEgC: return "EGC";
    case Algorithm::kEgBw: return "EGBW";
    case Algorithm::kBaStar: return "BA*";
    case Algorithm::kDbaStar: return "DBA*";
  }
  return "?";
}

Algorithm parse_algorithm(const std::string& name) {
  const std::string lower = util::to_lower(name);
  if (lower == "eg") return Algorithm::kEg;
  if (lower == "egc" || lower == "eg_c") return Algorithm::kEgC;
  if (lower == "egbw" || lower == "eg_bw") return Algorithm::kEgBw;
  if (lower == "ba" || lower == "ba*" || lower == "bastar") {
    return Algorithm::kBaStar;
  }
  if (lower == "dba" || lower == "dba*" || lower == "dbastar") {
    return Algorithm::kDbaStar;
  }
  throw std::invalid_argument("unknown algorithm: " + name);
}

const char* to_string(BudgetMode mode) noexcept {
  switch (mode) {
    case BudgetMode::kFixed: return "fixed";
    case BudgetMode::kAuto: return "auto";
  }
  return "?";
}

BudgetMode parse_budget_mode(const std::string& name) {
  const std::string lower = util::to_lower(name);
  if (lower == "fixed") return BudgetMode::kFixed;
  if (lower == "auto") return BudgetMode::kAuto;
  throw std::invalid_argument("unknown budget mode: " + name);
}

const char* to_string(SearchCore core) noexcept {
  switch (core) {
    case SearchCore::kReference: return "reference";
    case SearchCore::kPooled: return "pooled";
  }
  return "?";
}

SearchCore parse_search_core(const std::string& name) {
  const std::string lower = util::to_lower(name);
  if (lower == "reference") return SearchCore::kReference;
  if (lower == "pooled") return SearchCore::kPooled;
  throw std::invalid_argument("unknown search core: " + name);
}

void SearchConfig::validate() const {
  if (theta_bw < 0.0 || theta_c < 0.0 || theta_bw + theta_c <= 0.0) {
    throw std::invalid_argument(
        "SearchConfig: theta weights must be non-negative with positive sum");
  }
  if (initial_prune_range < 0.0) {
    throw std::invalid_argument("SearchConfig: negative initial_prune_range");
  }
  if (alpha_factor < 0.0) {
    throw std::invalid_argument("SearchConfig: negative alpha_factor");
  }
  if (budget_widen_factor <= 1.0) {
    throw std::invalid_argument(
        "SearchConfig: budget_widen_factor must be > 1");
  }
  if (stream_queue_capacity == 0) {
    throw std::invalid_argument(
        "SearchConfig: stream_queue_capacity must be >= 1");
  }
  if (stream_max_batch == 0) {
    throw std::invalid_argument("SearchConfig: stream_max_batch must be >= 1");
  }
  if (stream_dispatch_threads == 0) {
    throw std::invalid_argument(
        "SearchConfig: stream_dispatch_threads must be >= 1");
  }
}

}  // namespace ostro::core
