#include "core/candidates.h"

namespace ostro::core {

std::vector<dc::HostId> get_candidates(const PartialPlacement& p,
                                       topo::NodeId node,
                                       bool check_bandwidth) {
  std::vector<dc::HostId> out;
  const auto host_count =
      static_cast<dc::HostId>(p.datacenter().host_count());
  for (dc::HostId host = 0; host < host_count; ++host) {
    const bool ok = check_bandwidth
                        ? p.can_place(node, host)
                        : p.can_place_except_bandwidth(node, host);
    if (ok) out.push_back(host);
  }
  return out;
}

}  // namespace ostro::core
