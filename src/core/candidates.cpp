#include "core/candidates.h"

#include <algorithm>

#include "util/metrics.h"

namespace ostro::core {
namespace {

/// Same epsilon as PartialPlacement::bandwidth_ok's availability check.
constexpr double kBandwidthEps = 1e-9;

template <class T>
[[nodiscard]] bool contains(const std::vector<T>& values, T x) noexcept {
  return std::find(values.begin(), values.end(), x) != values.end();
}

/// Inputs of the per-subtree feasibility screen, shared across the descent.
struct PruneInputs {
  const topo::Resources* requirements = nullptr;
  /// Every requirement component strictly positive (beyond the fits_within
  /// epsilon) — only then is "no feasible host" a sound reason to prune.
  bool positive_requirements = false;
  bool check_bandwidth = false;
  /// Total bandwidth of pipes to already-placed neighbors.
  double neighbor_demand_mbps = 0.0;
  const std::vector<dc::HostId>* neighbor_hosts = nullptr;
};

/// True when the subtree behind `agg` may contain a feasible host.  All
/// three screens are upper-bound comparisons, so a rejected subtree holds
/// no host the linear scan would keep (never the other way around):
///  * capacity: the component-wise max free cannot satisfy the request;
///  * feasible count: every host is exhausted in some dimension and the
///    request needs all three;
///  * uplink: the pipes to placed neighbors exceed even the best free host
///    uplink, and no placed neighbor is inside the subtree, so every
///    candidate would have to carry the whole demand on its own uplink.
/// `neighbor_inside(host)` tells whether a placed neighbor host belongs to
/// the subtree being tested.
template <class NeighborInside>
[[nodiscard]] bool subtree_may_fit(const dc::FeasibilityIndex::Aggregate& agg,
                                   const PruneInputs& in,
                                   NeighborInside neighbor_inside) {
  if (!in.requirements->fits_within(agg.max_free)) return false;
  if (in.positive_requirements && agg.feasible_hosts == 0) return false;
  if (in.check_bandwidth &&
      in.neighbor_demand_mbps > agg.max_free_uplink_mbps + kBandwidthEps) {
    for (const dc::HostId nh : *in.neighbor_hosts) {
      if (neighbor_inside(nh)) return true;
    }
    return false;
  }
  return true;
}

}  // namespace

std::vector<dc::HostId> get_candidates(const PartialPlacement& p,
                                       topo::NodeId node,
                                       bool check_bandwidth) {
  std::vector<dc::HostId> out;
  const auto host_count =
      static_cast<dc::HostId>(p.datacenter().host_count());
  for (dc::HostId host = 0; host < host_count; ++host) {
    const bool ok = check_bandwidth
                        ? p.can_place(node, host)
                        : p.can_place_except_bandwidth(node, host);
    if (ok) out.push_back(host);
  }
  return out;
}

void get_candidates_indexed(const PartialPlacement& p, topo::NodeId node,
                            CandidateBuffer& buf, bool check_bandwidth) {
  static util::metrics::Counter& m_calls =
      util::metrics::counter("candidates.indexed_calls");
  static util::metrics::Counter& m_subtrees =
      util::metrics::counter("candidates.subtrees_pruned");
  static util::metrics::Counter& m_skipped =
      util::metrics::counter("candidates.hosts_skipped");
  static util::metrics::Counter& m_tag_prunes =
      util::metrics::counter("labels.tag_subtree_prunes");

  buf.hosts.clear();
  buf.excluded_hosts.clear();
  buf.excluded_racks.clear();
  buf.excluded_pods.clear();
  buf.excluded_sites.clear();
  buf.neighbor_hosts.clear();

  const topo::AppTopology& topology = p.topology();
  const dc::DataCenter& datacenter = p.datacenter();
  const dc::FeasibilityIndex& index = p.base().feasibility();

  // Diversity-zone exclusions as masks: a placed member of one of the
  // node's zones forbids the whole unit around itself (the exact complement
  // of separated_at), so the descent can skip that unit without touching
  // its hosts.
  for (const auto zone_index : topology.zones_of(node)) {
    const auto& zone = topology.zones()[zone_index];
    for (const topo::NodeId member : zone.members) {
      if (member == node) continue;
      const dc::HostId member_host = p.host_of(member);
      if (member_host == dc::kInvalidHost) continue;
      const dc::HostAncestors& anc = datacenter.ancestors(member_host);
      switch (zone.level) {
        case topo::DiversityLevel::kHost:
          buf.excluded_hosts.push_back(member_host);
          break;
        case topo::DiversityLevel::kRack:
          buf.excluded_racks.push_back(anc.rack);
          break;
        case topo::DiversityLevel::kPod:
          buf.excluded_pods.push_back(anc.pod);
          break;
        case topo::DiversityLevel::kDatacenter:
          buf.excluded_sites.push_back(anc.site);
          break;
      }
    }
  }

  PruneInputs in;
  const topo::Resources& requirements = topology.node(node).requirements;
  in.requirements = &requirements;
  in.positive_requirements = requirements.vcpus > kBandwidthEps &&
                             requirements.mem_gb > kBandwidthEps &&
                             requirements.disk_gb > kBandwidthEps;
  in.check_bandwidth = check_bandwidth;
  if (check_bandwidth) {
    in.neighbor_demand_mbps =
        p.placed_neighbor_demand(node, buf.neighbor_hosts);
  }
  in.neighbor_hosts = &buf.neighbor_hosts;

  // Tag-reachability prune (dc::PruneLabels): a subtree whose cached tag
  // bitmap lacks a required bit holds no host that could pass tags_ok, so
  // the descent skips it wholesale.  `tag_mask == 0` (no required tags, or
  // the registry overflowed 64 distinct tags) disables the screen; a
  // required tag carried by nowhere in the DC yields the all-ones mask,
  // which prunes everything — exactly what the per-host check would do.
  const dc::PruneLabels& labels = p.base().labels();
  std::uint64_t tag_mask = 0;
  if (p.use_prune_labels() && labels.tags_indexable() &&
      !topology.node(node).required_tags.empty()) {
    tag_mask = labels.required_tag_mask(topology.node(node).required_tags);
  }

  std::uint64_t subtrees_pruned = 0;
  std::uint64_t hosts_skipped = 0;
  std::uint64_t tag_prunes = 0;
  const auto prune = [&](std::uint32_t subtree_hosts) {
    ++subtrees_pruned;
    hosts_skipped += subtree_hosts;
  };
  const auto tags_unreachable = [&](std::uint64_t subtree_mask) {
    if ((tag_mask & subtree_mask) == tag_mask) return false;
    ++tag_prunes;
    return true;
  };

  for (const dc::Site& site : datacenter.sites()) {
    const dc::FeasibilityIndex::Aggregate& site_agg = index.site(site.id);
    if (contains(buf.excluded_sites, site.id) ||
        tags_unreachable(labels.site_tag_mask(site.id)) ||
        !subtree_may_fit(site_agg, in, [&](dc::HostId nh) {
          return datacenter.ancestors(nh).site == site.id;
        })) {
      prune(site_agg.host_count);
      continue;
    }
    for (const std::uint32_t pod_id : site.pods) {
      const dc::FeasibilityIndex::Aggregate& pod_agg = index.pod(pod_id);
      if (contains(buf.excluded_pods, pod_id) ||
          tags_unreachable(labels.pod_tag_mask(pod_id)) ||
          !subtree_may_fit(pod_agg, in, [&](dc::HostId nh) {
            return datacenter.ancestors(nh).pod == pod_id;
          })) {
        prune(pod_agg.host_count);
        continue;
      }
      for (const std::uint32_t rack_id : datacenter.pods()[pod_id].racks) {
        const dc::FeasibilityIndex::Aggregate& rack_agg = index.rack(rack_id);
        if (contains(buf.excluded_racks, rack_id) ||
            tags_unreachable(labels.rack_tag_mask(rack_id)) ||
            !subtree_may_fit(rack_agg, in, [&](dc::HostId nh) {
              return datacenter.ancestors(nh).rack == rack_id;
            })) {
          prune(rack_agg.host_count);
          continue;
        }
        for (const dc::HostId host : datacenter.racks()[rack_id].hosts) {
          if (contains(buf.excluded_hosts, host)) {
            ++hosts_skipped;
            continue;
          }
          // zones_ok is omitted deliberately: the exclusion masks above are
          // its exact complement (both consider only *placed* zone members,
          // and separated_at(host, member_host, level) fails precisely for
          // the masked unit), so any host reaching this line passes it.
          const bool ok = p.capacity_ok(node, host) && p.tags_ok(node, host) &&
                          p.affinity_ok(node, host) &&
                          p.latency_ok(node, host) &&
                          (!check_bandwidth || p.bandwidth_ok(node, host));
          if (ok) buf.hosts.push_back(host);
        }
      }
    }
  }

  // The tree visit emits hosts in rack order; the linear scan's contract is
  // ascending host id.  Host ids are usually already rack-contiguous, so
  // this sort is a near-free pass over an almost-sorted small vector.
  std::sort(buf.hosts.begin(), buf.hosts.end());

  m_calls.inc();
  m_subtrees.add(subtrees_pruned);
  m_skipped.add(hosts_skipped);
  m_tag_prunes.add(tag_prunes);
}

std::vector<dc::HostId>& get_candidates(const PartialPlacement& p,
                                        topo::NodeId node,
                                        CandidateBuffer& buf,
                                        bool check_bandwidth, bool use_index) {
  if (use_index) {
    get_candidates_indexed(p, node, buf, check_bandwidth);
  } else {
    buf.hosts = get_candidates(p, node, check_bandwidth);
  }
  return buf.hosts;
}

}  // namespace ostro::core
