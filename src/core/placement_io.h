// Placement serialization — operational tooling around the scheduler.
//
// A Placement can be exported as a JSON document (node names mapped to host
// names plus the reported metrics) and re-imported against the same
// topology/data-center pair, e.g. to persist decisions across scheduler
// restarts, diff two plans, or feed an external deployment system.  Import
// re-validates through core::verify_placement so a stale document cannot
// smuggle an invalid placement back in.
#pragma once

#include <string>

#include "core/types.h"
#include "datacenter/occupancy.h"
#include "util/json.h"

namespace ostro::core {

/// Raised on malformed or non-validating placement documents.
class PlacementIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serializes a feasible placement:
/// { "assignment": {"<node>": "<host>", ...},
///   "utility": ..., "reserved_bandwidth_mbps": ...,
///   "new_active_hosts": ..., "hosts_used": ... }
/// Throws PlacementIoError for infeasible placements.
[[nodiscard]] util::Json placement_to_json(const Placement& placement,
                                           const topo::AppTopology& topology,
                                           const dc::DataCenter& datacenter);

/// Parses and re-validates a placement document against `topology` and
/// `base`.  Metrics are recomputed from the assignment (the document's
/// numbers are informational only).  Throws PlacementIoError on unknown
/// node/host names, missing nodes, or constraint violations.
[[nodiscard]] Placement placement_from_json(const util::Json& document,
                                            const topo::AppTopology& topology,
                                            const dc::Occupancy& base,
                                            const SearchConfig& config);

/// Convenience text round-trips.
[[nodiscard]] std::string placement_to_text(const Placement& placement,
                                            const topo::AppTopology& topology,
                                            const dc::DataCenter& datacenter);
[[nodiscard]] Placement placement_from_text(const std::string& text,
                                            const topo::AppTopology& topology,
                                            const dc::Occupancy& base,
                                            const SearchConfig& config);

}  // namespace ostro::core
