// The estimate-based greedy algorithm EG (Algorithm 1 of the paper) and the
// two greedy baselines the evaluation compares against (Section IV-A):
//
//  * EG    — nodes sorted by the sum of relative resource weights; every
//            candidate host is scored with the accumulated usage plus the
//            heuristic estimate, and the best host wins (GetBest).
//  * EG_C  — bin-packing baseline: minimizes the number of hosts used by
//            best-fit on remaining compute capacity; ignores pipes.
//  * EG_BW — bandwidth-only baseline: places linked nodes as close to one
//            another as possible and otherwise prefers the hosts with the
//            most available bandwidth (the EGBW of the paper, in the spirit
//            of Oktopus/SecondNet/CloudMirror-style schedulers).
//
// run_greedy also serves as the RunEG subroutine of BA* (Algorithm 2): it
// completes an arbitrary partial placement greedily, which yields the upper
// bound used to bound and prune the A* search.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/partial.h"
#include "util/thread_pool.h"

namespace ostro::core {

/// Sort(V) of Algorithm 1: descending sum of relative resource weights
/// sum_x r_x / R_x over x in {cpu, mem, disk, incident bandwidth}, where
/// R_x is the mean requirement across all nodes.
[[nodiscard]] std::vector<topo::NodeId> eg_sort_order(
    const topo::AppTopology& topology);

/// Descending incident bandwidth (EG_BW's order and the order the heuristic
/// estimate uses for the remaining nodes).
[[nodiscard]] std::vector<topo::NodeId> bandwidth_sort_order(
    const topo::AppTopology& topology);

struct GreedyOutcome {
  bool feasible = false;
  std::string failure;
  PartialPlacement state;
  /// Greedy-side diagnostics: candidates_evaluated, heuristic_calls and
  /// runtime_seconds are filled; the search-only fields stay zero.
  SearchStats stats;

  explicit GreedyOutcome(PartialPlacement s) : state(std::move(s)) {}
};

/// Completes `state` by placing its unplaced nodes in `order` (already
/// placed entries are skipped), choosing hosts according to `variant`
/// (kEg, kEgC or kEgBw; the A* variants are rejected).  `pool` parallelizes
/// EG's candidate scoring when non-null.  `use_estimate_context` selects
/// EG's hoisted per-node estimate path and `use_candidate_index` the
/// feasibility-index candidate generation (both bit-identical to their
/// reference paths; see SearchConfig).
[[nodiscard]] GreedyOutcome run_greedy(Algorithm variant,
                                       PartialPlacement state,
                                       std::span<const topo::NodeId> order,
                                       util::ThreadPool* pool,
                                       bool use_estimate_context = true,
                                       bool use_candidate_index = true);

}  // namespace ostro::core
