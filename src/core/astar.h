// Bounded A* (Algorithm 2) and deadline-bounded A* (Section III-C).
//
// BA* explores placement prefixes in a best-first order keyed by
// u = committed utility + admissible heuristic.  The search is bounded by
// an incumbent: RunEG (the greedy of Algorithm 1) completes the initial
// state to obtain u_upper, is re-run whenever the search reaches a new
// depth ("once it captures that the search is advanced"), and every path
// whose bound meets u_upper is pruned.  With the admissible heuristic the
// first completed path popped is optimal; when the open queue's minimum
// reaches u_upper the incumbent greedy completion is returned.
//
// DBA* layers the paper's probabilistic pruning on top: a popped path of
// progress s = |V*_p| / |V| is discarded with probability P(x > s) for
// x ~ U[0, r); r starts at SearchConfig::initial_prune_range and grows by
// alpha = alpha_factor * (T / T_left) whenever the open-queue load estimate
// (the L[i] recurrence of Section III-C) says the search cannot finish
// within the remaining deadline.  Deeper paths are pruned less, biasing the
// search depth-first exactly as the paper describes.
#pragma once

#include <string>

#include "core/partial.h"
#include "core/types.h"
#include "util/thread_pool.h"

namespace ostro::core {

struct AStarOutcome {
  bool feasible = false;
  std::string failure;
  PartialPlacement state;
  SearchStats stats;

  explicit AStarOutcome(PartialPlacement s) : state(std::move(s)) {}
};

/// Runs BA* (deadline_bounded == false) or DBA* (true) from `initial`.
/// `pool` parallelizes the embedded EG runs.
[[nodiscard]] AStarOutcome run_astar(PartialPlacement initial,
                                     const SearchConfig& config,
                                     bool deadline_bounded,
                                     util::ThreadPool* pool);

}  // namespace ostro::core
