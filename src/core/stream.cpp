#include "core/stream.h"

#include <stdexcept>
#include <utility>

#include "util/metrics.h"
#include "util/string_util.h"

namespace ostro::core {

namespace {

[[nodiscard]] double seconds_between(AdmissionQueue::Clock::time_point from,
                                     AdmissionQueue::Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

const char* to_string(StreamPriority priority) noexcept {
  switch (priority) {
    case StreamPriority::kLow: return "low";
    case StreamPriority::kNormal: return "normal";
    case StreamPriority::kHigh: return "high";
  }
  return "?";
}

StreamPriority parse_stream_priority(const std::string& name) {
  const std::string lower = util::to_lower(name);
  if (lower == "low") return StreamPriority::kLow;
  if (lower == "normal") return StreamPriority::kNormal;
  if (lower == "high") return StreamPriority::kHigh;
  throw std::invalid_argument("unknown stream priority: " + name);
}

const char* to_string(StreamStatus status) noexcept {
  switch (status) {
    case StreamStatus::kCommitted: return "committed";
    case StreamStatus::kFailed: return "failed";
    case StreamStatus::kExpired: return "expired";
    case StreamStatus::kRejected: return "rejected";
  }
  return "?";
}

AdmissionQueue::AdmissionQueue(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("AdmissionQueue: capacity must be >= 1");
  }
}

bool AdmissionQueue::push(Entry& entry) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || size_ >= capacity_) return false;
    classes_[static_cast<std::size_t>(entry.request.priority)].push_back(
        std::move(entry));
    ++size_;
  }
  cv_.notify_one();
  return true;
}

std::vector<AdmissionQueue::Entry> AdmissionQueue::pop_batch(
    std::size_t max_batch, bool wait) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (wait) {
    cv_.wait(lock, [this] { return size_ > 0 || closed_; });
  }
  std::vector<Entry> batch;
  // Highest class first, FIFO within a class: a high-priority request
  // overtakes every queued normal/low one no matter when it arrived.
  for (std::size_t c = kStreamPriorityCount; c-- > 0 && batch.size() < max_batch;) {
    std::deque<Entry>& queue = classes_[c];
    while (!queue.empty() && batch.size() < max_batch) {
      batch.push_back(std::move(queue.front()));
      queue.pop_front();
      --size_;
    }
  }
  return batch;
}

void AdmissionQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t AdmissionQueue::depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return size_;
}

bool AdmissionQueue::closed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

StreamingService::StreamingService(PlacementService& service,
                                   SearchConfig config, bool start_dispatchers)
    : service_(&service),
      config_(std::move(config)),
      queue_(config_.stream_queue_capacity) {
  config_.validate();
  if (!start_dispatchers) return;
  dispatchers_.reserve(config_.stream_dispatch_threads);
  for (std::size_t i = 0; i < config_.stream_dispatch_threads; ++i) {
    dispatchers_.emplace_back([this] { dispatcher_loop(); });
  }
}

StreamingService::~StreamingService() { shutdown(); }

std::future<StreamResult> StreamingService::submit(StreamRequest request) {
  static util::metrics::Counter& m_submitted =
      util::metrics::counter("stream.submitted");
  static util::metrics::Counter& m_rejected =
      util::metrics::counter("stream.rejected_queue_full");
  static util::metrics::Summary& m_depth =
      util::metrics::summary("stream.queue_depth");
  m_submitted.inc();

  AdmissionQueue::Entry entry;
  entry.enqueued = AdmissionQueue::Clock::now();
  if (request.deadline_seconds > 0.0) {
    entry.deadline =
        entry.enqueued +
        std::chrono::duration_cast<AdmissionQueue::Clock::duration>(
            std::chrono::duration<double>(request.deadline_seconds));
  }
  entry.request = std::move(request);
  std::future<StreamResult> future = entry.promise.get_future();
  if (!queue_.push(entry)) {
    m_rejected.inc();
    StreamResult rejected;
    rejected.status = StreamStatus::kRejected;
    rejected.service.placement.failure_reason =
        queue_.closed() ? "streaming service closed"
                        : "admission queue full";
    entry.promise.set_value(std::move(rejected));
    return future;
  }
  m_depth.observe(static_cast<double>(queue_.depth()));
  return future;
}

void StreamingService::close() { queue_.close(); }

void StreamingService::shutdown() {
  const std::lock_guard<std::mutex> lock(shutdown_mutex_);
  if (shut_down_) return;
  shut_down_ = true;
  queue_.close();
  if (dispatchers_.empty()) {
    // Manual mode: drain inline so every queued promise resolves.
    while (dispatch_once() > 0) {
    }
  }
  for (std::thread& dispatcher : dispatchers_) dispatcher.join();
  dispatchers_.clear();
}

std::size_t StreamingService::dispatch_once() {
  return process_batch(
      queue_.pop_batch(config_.stream_max_batch, /*wait=*/false));
}

void StreamingService::dispatcher_loop() {
  for (;;) {
    std::vector<AdmissionQueue::Entry> batch =
        queue_.pop_batch(config_.stream_max_batch, /*wait=*/true);
    if (batch.empty()) return;  // closed and drained
    process_batch(std::move(batch));
  }
}

std::size_t StreamingService::process_batch(
    std::vector<AdmissionQueue::Entry> batch) {
  static util::metrics::Counter& m_misses =
      util::metrics::counter("stream.deadline_misses");
  static util::metrics::Counter& m_batches =
      util::metrics::counter("stream.batches");
  static util::metrics::Counter& m_spills =
      util::metrics::counter("stream.spills");
  static util::metrics::Counter& m_committed =
      util::metrics::counter("stream.committed");
  static util::metrics::Counter& m_failed =
      util::metrics::counter("stream.failed");
  static util::metrics::Counter& m_errors =
      util::metrics::counter("stream.dispatch_errors");
  static util::metrics::Summary& m_batch_size =
      util::metrics::summary("stream.batch_size");
  static util::metrics::Summary& m_wait =
      util::metrics::summary("stream.admission_wait_seconds");

  if (batch.empty()) return 0;
  std::size_t completed = 0;
  const auto now = AdmissionQueue::Clock::now();

  // Phase 0 — expiry: a member whose admission deadline passed while
  // queued completes immediately; a stale placement answer is worthless.
  struct Pending {
    AdmissionQueue::Entry entry;
    PlannedPlacement planned;
    double wait = 0.0;
  };
  std::vector<Pending> live;
  live.reserve(batch.size());
  for (AdmissionQueue::Entry& entry : batch) {
    const double wait = seconds_between(entry.enqueued, now);
    m_wait.observe(wait);
    if (now >= entry.deadline) {
      m_misses.inc();
      StreamResult expired;
      expired.status = StreamStatus::kExpired;
      expired.wait_seconds = wait;
      expired.service.placement.failure_reason =
          "admission deadline expired while queued";
      entry.promise.set_value(std::move(expired));
      ++completed;
      continue;
    }
    Pending pending;
    pending.entry = std::move(entry);
    pending.wait = wait;
    live.push_back(std::move(pending));
  }
  if (live.empty()) return completed;

  m_batches.inc();
  m_batch_size.observe(static_cast<double>(live.size()));
  const auto batch_members = static_cast<std::uint32_t>(live.size());

  // Phase 1 — plan every live member against ONE shared snapshot, no lock
  // held.  A member whose search throws resolves its future with that
  // exception; the dispatcher thread itself never dies.
  const dc::Occupancy snapshot = service_->snapshot();
  std::vector<Pending> planned;
  planned.reserve(live.size());
  for (Pending& pending : live) {
    const StreamRequest& request = pending.entry.request;
    try {
      pending.planned.epoch = snapshot.version();
      pending.planned.placement = service_->scheduler().plan_against(
          snapshot, request.topology, request.algorithm, config_);
    } catch (...) {
      // Non-std throws land here too; the promise is resolved exactly once
      // and the dispatcher stays alive.
      m_errors.inc();
      pending.entry.promise.set_exception(std::current_exception());
      ++completed;
      continue;
    }
    if (!pending.planned.placement.feasible) {
      m_failed.inc();
      StreamResult failed;
      failed.status = StreamStatus::kFailed;
      failed.wait_seconds = pending.wait;
      failed.batch_size = batch_members;
      failed.service.plan_epoch = pending.planned.epoch;
      failed.service.placement = std::move(pending.planned.placement);
      pending.entry.promise.set_value(std::move(failed));
      ++completed;
      continue;
    }
    planned.push_back(std::move(pending));
  }
  if (planned.empty()) return completed;

  // Phase 2 — group validate-and-commit under one writer-lock acquisition.
  std::vector<PlacementService::BatchCommitMember> members(planned.size());
  for (std::size_t i = 0; i < planned.size(); ++i) {
    members[i].topology = &planned[i].entry.request.topology;
    members[i].planned = &planned[i].planned;
    members[i].committer = &planned[i].entry.request.committer;
  }
  try {
    service_->try_commit_batch(members);
  } catch (...) {
    // One dispatch error per failed member: every planned promise is
    // resolved exactly once with the batch-commit exception, std or not.
    const auto error = std::current_exception();
    for (Pending& pending : planned) {
      m_errors.inc();
      pending.entry.promise.set_exception(error);
      ++completed;
    }
    return completed;
  }

  // Phase 3 — complete committed/rejected members; spill conflicted ones
  // back into the per-request conflict-replan ladder.
  for (std::size_t i = 0; i < planned.size(); ++i) {
    Pending& pending = planned[i];
    const StreamRequest& request = pending.entry.request;
    StreamResult result;
    result.wait_seconds = pending.wait;
    result.batch_size = batch_members;
    result.service.plan_epoch = pending.planned.epoch;
    switch (members[i].outcome) {
      case PlacementService::CommitOutcome::kCommitted:
        result.status = StreamStatus::kCommitted;
        result.service.commit_epoch = members[i].commit_epoch;
        result.service.placement = std::move(pending.planned.placement);
        m_committed.inc();
        break;
      case PlacementService::CommitOutcome::kRejected:
        result.status = StreamStatus::kFailed;
        result.service.placement = std::move(pending.planned.placement);
        m_failed.inc();
        break;
      case PlacementService::CommitOutcome::kConflict: {
        // Spill: a batch predecessor (or a concurrent request) consumed
        // this member's resources.  Hand it to the service's full
        // plan→commit ladder, which replans from a fresh snapshot.
        m_spills.inc();
        result.spills = 1;
        try {
          result.service = service_->place_with(
              request.topology, request.algorithm, config_, request.committer);
        } catch (...) {
          m_errors.inc();
          pending.entry.promise.set_exception(std::current_exception());
          ++completed;
          continue;
        }
        result.service.conflicts += 1;  // the batch-commit conflict itself
        result.status = result.service.placement.committed
                            ? StreamStatus::kCommitted
                            : StreamStatus::kFailed;
        if (result.status == StreamStatus::kCommitted) {
          m_committed.inc();
        } else {
          m_failed.inc();
        }
        break;
      }
    }
    pending.entry.promise.set_value(std::move(result));
    ++completed;
  }
  return completed;
}

}  // namespace ostro::core
