// The placement objective of Section II-B-1:
//
//     min( theta_bw * u_bw / û_bw  +  theta_c * u_c / û_c )
//
// u_bw is the bandwidth reserved on physical links (each pipe contributes
// bandwidth x links-traversed), u_c the number of previously idle hosts the
// placement activates.  Both are normalized against worst-case placements:
// û_bw assumes every pipe at the data center's maximal separation, û_c
// assumes every node activates a fresh host.
#pragma once

#include "core/types.h"
#include "datacenter/datacenter.h"
#include "topology/app_topology.h"

namespace ostro::core {

class Objective {
 public:
  /// Normalizers are derived from the concrete topology/data-center pair.
  Objective(const topo::AppTopology& topology, const dc::DataCenter& datacenter,
            const SearchConfig& config);

  /// Utility of raw usage numbers; in [0, 1] for any feasible placement.
  [[nodiscard]] double utility(double ubw_mbps, double new_hosts) const noexcept {
    return theta_bw_ * ubw_mbps / ubw_worst_ + theta_c_ * new_hosts / uc_worst_;
  }

  /// Link-weighted bandwidth cost of one pipe placed at `scope`.
  [[nodiscard]] static double edge_cost(double bandwidth_mbps,
                                        dc::Scope scope) noexcept {
    return bandwidth_mbps * dc::hop_count(scope);
  }

  [[nodiscard]] double theta_bw() const noexcept { return theta_bw_; }
  [[nodiscard]] double theta_c() const noexcept { return theta_c_; }
  [[nodiscard]] double ubw_worst() const noexcept { return ubw_worst_; }
  [[nodiscard]] double uc_worst() const noexcept { return uc_worst_; }

 private:
  double theta_bw_;
  double theta_c_;
  double ubw_worst_;
  double uc_worst_;
};

}  // namespace ostro::core
