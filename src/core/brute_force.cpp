#include "core/brute_force.h"

#include <limits>
#include <vector>

#include "core/candidates.h"

namespace ostro::core {
namespace {

struct Searcher {
  const std::vector<topo::NodeId>& order;
  bool use_bound_pruning;
  BruteForceResult result;
  double best = std::numeric_limits<double>::infinity();

  void dfs(const PartialPlacement& state, std::size_t depth) {
    ++result.nodes_visited;
    if (depth == order.size()) {
      const double utility = state.utility_committed();
      if (utility < best) {
        best = utility;
        result.feasible = true;
        result.state = state;
        result.utility = utility;
      }
      return;
    }
    if (use_bound_pruning && state.utility_bound() >= best) return;
    const topo::NodeId node = order[depth];
    for (const dc::HostId host : get_candidates(state, node)) {
      PartialPlacement child = state;
      child.place(node, host);
      dfs(child, depth + 1);
    }
  }
};

}  // namespace

BruteForceResult brute_force_optimal(const PartialPlacement& initial,
                                     bool use_bound_pruning) {
  std::vector<topo::NodeId> order;
  for (topo::NodeId v = 0; v < initial.topology().node_count(); ++v) {
    if (!initial.is_placed(v)) order.push_back(v);
  }
  Searcher searcher{order, use_bound_pruning, BruteForceResult{},
                    std::numeric_limits<double>::infinity()};
  searcher.dfs(initial, 0);
  return std::move(searcher.result);
}

}  // namespace ostro::core
