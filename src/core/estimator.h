// Heuristic utility estimates (GetHeuristic of Algorithm 1, Section
// III-A-2 of the paper).
//
// Two estimates are provided:
//
//  * candidate_estimate — the per-candidate score EG uses in GetBest.  It
//    combines (i) the exact cost of the node's pipes to already-placed
//    neighbors when put on the candidate host, (ii) a residual-aware bound
//    for its pipes to unplaced neighbors (can they still co-locate with the
//    node on this host?), (iii) the candidate-independent lower bound of all
//    other open pipes, and (iv) the host-activation cost.  O(degree) per
//    candidate, which keeps EG's full scan over thousands of hosts cheap.
//
//  * imaginary_completion — the paper's full estimate: remaining nodes are
//    approximately placed, sorted by bandwidth requirement, onto used hosts
//    or onto "imaginary hosts" created when capacity / diversity /
//    connectivity rules demand one (Figure 4).  Imaginary hosts carry the
//    maximum per-resource host capacity of the data center and do not count
//    toward u_c.  Sharper than the admissible bound but not guaranteed to
//    be a lower bound; BA* uses it only when
//    SearchConfig::greedy_estimate_in_astar is set (ablation).
#pragma once

#include <span>
#include <vector>

#include "core/partial.h"

namespace ostro::core {

/// Estimated additional usage to complete a partial placement.
struct Estimate {
  double ubw = 0.0;  ///< additional link-weighted bandwidth (Mbps x links)
  double uc = 0.0;   ///< additional newly-activated hosts
};

/// Reusable per-thread buffers for NodeEstimateContext::estimate.  One
/// instance per ThreadPool slot (see ThreadPool::parallel_for_slots) lets
/// the candidate fan run allocation-free once the buffers are warm.
struct EstimateScratch {
  std::vector<std::uint32_t> assumed;  ///< future indices assumed co-located
};

/// Per-node invariants of Estimator::candidate_estimate, hoisted out of the
/// per-candidate loop.  EG scores every candidate host for one node per
/// placement step; the node-side work of the estimate — partitioning the
/// neighbors into placed and future, sorting the future list, scanning the
/// node's diversity zones for unplaced mates and their attraction to used
/// hosts — is identical for every candidate, yet candidate_estimate redoes
/// it per (node x host).  A context computes it once per step; estimate()
/// then reproduces candidate_estimate's arithmetic exactly (same operations
/// on the same accumulators in the same order), so the scores are
/// bit-identical to the reference path (asserted by the differential
/// tests).  The context snapshots the placement: it is valid only until the
/// next mutation of `p`.
class NodeEstimateContext {
 public:
  /// `rest` must be Estimator::rest_bound(p, node).
  NodeEstimateContext(const PartialPlacement& p, topo::NodeId node,
                      double rest);

  /// Equivalent of Estimator::candidate_estimate(p, node, host, rest) for
  /// the captured (p, node, rest).
  [[nodiscard]] Estimate estimate(dc::HostId host,
                                  EstimateScratch& scratch) const;

 private:
  /// A neighbor already placed when the context was built, in original
  /// neighbor order (the order candidate_estimate's accumulators see).
  struct PlacedNeighbor {
    dc::HostId host = dc::kInvalidHost;
    double bandwidth_mbps = 0.0;
  };
  /// An unplaced neighbor, in the estimate's (bandwidth desc, node asc)
  /// packing order.
  struct FutureNeighbor {
    topo::NodeId node = topo::kInvalidNode;
    double bandwidth_mbps = 0.0;
    topo::Resources requirements;
    /// Scope already forced host-independently: required_separation between
    /// the node and this neighbor.
    dc::Scope forced = dc::Scope::kSameHost;
    /// Placed zone members of this neighbor (host, level): the candidate
    /// host must be separated from each, else the zone forces its scope
    /// (zone_scope_to_host, evaluated per candidate from this list).
    std::vector<std::pair<dc::HostId, topo::DiversityLevel>> zone_members;
    /// Per used host: the strongest single pipe from any unplaced
    /// host-level zone-mate of this neighbor to a resident.  Claim check
    /// (d) is then a lookup: claimed iff max_pipe >= bandwidth_mbps.
    std::vector<std::pair<dc::HostId, double>> mate_claim;
  };

  [[nodiscard]] static double lookup(
      const std::vector<std::pair<dc::HostId, double>>& table, dc::HostId host);

  const PartialPlacement* p_;
  const topo::AppTopology* topology_;
  const dc::DataCenter* datacenter_;
  topo::NodeId node_ = topo::kInvalidNode;
  double rest_ = 0.0;
  topo::Resources requirements_;
  std::vector<PlacedNeighbor> placed_;
  std::vector<FutureNeighbor> future_;
  /// sep_[i * future_.size() + j]: future i and j are zone-separated
  /// (required_separation), for assumed-conflict check (c).
  std::vector<char> sep_;
  /// Per host holding >= 1 neighbor of the node: summed pipe bandwidth from
  /// the node to its residents (own_bw_here of the reference path).
  std::vector<std::pair<dc::HostId, double>> own_bw_;
  /// Per host: strongest attraction of any unplaced host-level zone-mate of
  /// the node (sum of the mate's pipes to residents).  Seat-stealing term.
  std::vector<std::pair<dc::HostId, double>> attraction_;
};

class Estimator {
 public:
  /// Candidate-independent part of EG's score for placing `node` next: the
  /// lower bound of every open pipe not incident to `node`.
  [[nodiscard]] static double rest_bound(const PartialPlacement& p,
                                         topo::NodeId node);

  /// EG's per-candidate estimate (see file comment).  `rest` must be
  /// rest_bound(p, node).
  [[nodiscard]] static Estimate candidate_estimate(const PartialPlacement& p,
                                                   topo::NodeId node,
                                                   dc::HostId host,
                                                   double rest);

  /// The paper's imaginary-host completion estimate for the whole remaining
  /// node set of `p`.
  [[nodiscard]] static Estimate imaginary_completion(const PartialPlacement& p);
};

}  // namespace ostro::core
