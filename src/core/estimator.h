// Heuristic utility estimates (GetHeuristic of Algorithm 1, Section
// III-A-2 of the paper).
//
// Two estimates are provided:
//
//  * candidate_estimate — the per-candidate score EG uses in GetBest.  It
//    combines (i) the exact cost of the node's pipes to already-placed
//    neighbors when put on the candidate host, (ii) a residual-aware bound
//    for its pipes to unplaced neighbors (can they still co-locate with the
//    node on this host?), (iii) the candidate-independent lower bound of all
//    other open pipes, and (iv) the host-activation cost.  O(degree) per
//    candidate, which keeps EG's full scan over thousands of hosts cheap.
//
//  * imaginary_completion — the paper's full estimate: remaining nodes are
//    approximately placed, sorted by bandwidth requirement, onto used hosts
//    or onto "imaginary hosts" created when capacity / diversity /
//    connectivity rules demand one (Figure 4).  Imaginary hosts carry the
//    maximum per-resource host capacity of the data center and do not count
//    toward u_c.  Sharper than the admissible bound but not guaranteed to
//    be a lower bound; BA* uses it only when
//    SearchConfig::greedy_estimate_in_astar is set (ablation).
#pragma once

#include <span>

#include "core/partial.h"

namespace ostro::core {

/// Estimated additional usage to complete a partial placement.
struct Estimate {
  double ubw = 0.0;  ///< additional link-weighted bandwidth (Mbps x links)
  double uc = 0.0;   ///< additional newly-activated hosts
};

class Estimator {
 public:
  /// Candidate-independent part of EG's score for placing `node` next: the
  /// lower bound of every open pipe not incident to `node`.
  [[nodiscard]] static double rest_bound(const PartialPlacement& p,
                                         topo::NodeId node);

  /// EG's per-candidate estimate (see file comment).  `rest` must be
  /// rest_bound(p, node).
  [[nodiscard]] static Estimate candidate_estimate(const PartialPlacement& p,
                                                   topo::NodeId node,
                                                   dc::HostId host,
                                                   double rest);

  /// The paper's imaginary-host completion estimate for the whole remaining
  /// node set of `p`.
  [[nodiscard]] static Estimate imaginary_completion(const PartialPlacement& p);
};

}  // namespace ostro::core
