// DefragPlanner — bounded background defragmentation (DESIGN.md section 13).
//
// Churn strands free capacity on half-empty hosts (see
// datacenter/fragmentation.h).  The planner proposes small migration
// batches that vacate the sparsest active hosts into the densest ones —
// best-fit-decreasing in reverse — and commits them through
// PlacementService::try_commit_migration, the same validate-commit ladder
// live placements use, so a defrag batch racing a streamed placement is
// resolved per member (conflicted members are simply dropped and replanned
// later) and never blocks or corrupts foreground traffic.
//
// Every batch is bounded three ways, mirroring what production migration
// systems budget: at most `max_moves` relocated VMs, at most `max_move_gb`
// of memory shipped, and at most `downtime_budget_seconds` of cumulative
// blackout (moves x downtime_per_move_seconds).  Planning is all-or-nothing
// per vacated host: either every resident node of a host gets a valid
// target (capacity, bandwidth along the new paths, zones/affinity/latency
// re-checked) under the staged state, or the host is skipped — a
// half-vacated host would consume budget without freeing anything.
#pragma once

#include <cstdint>

#include "core/service.h"

namespace ostro::core {

struct DefragConfig {
  /// Max VMs relocated per batch (0 disables the planner).
  std::uint32_t max_moves = 8;
  /// Max memory shipped per batch, GB (live-migration byte budget).
  double max_move_gb = 64.0;
  /// Cumulative blackout budget per batch, seconds.
  double downtime_budget_seconds = 4.0;
  /// Blackout charged per relocated VM, seconds.
  double downtime_per_move_seconds = 0.5;
  /// Only hosts with at most this many resident nodes are vacate
  /// candidates (emptier hosts free capacity at lower move cost).
  std::uint32_t max_resident_nodes = 4;
  /// Fresh-snapshot replans when every member of a batch conflicts.
  std::uint32_t max_conflict_retries = 2;
};

/// What one run_once() did.
struct DefragStats {
  std::uint32_t moves_proposed = 0;   ///< VM relocations in the final batch
  std::uint32_t moves_committed = 0;  ///< relocations actually applied
  std::uint32_t members_committed = 0;  ///< stacks whose member committed
  std::uint32_t hosts_vacated = 0;    ///< source hosts fully planned out
  std::uint32_t conflicts = 0;        ///< members dropped at the commit gate
  std::uint32_t retries = 0;          ///< fresh-snapshot replans taken
  double moved_gb = 0.0;              ///< memory shipped by committed moves
  std::uint64_t commit_epoch = 0;     ///< epoch after the last commit (0: none)
};

class DefragPlanner {
 public:
  /// `service` and `registry` must outlive the planner.  The registry must
  /// be the one the service's lifecycle entry points maintain.
  DefragPlanner(PlacementService& service, StackRegistry& registry,
                DefragConfig config = {}) noexcept
      : service_(&service), registry_(&registry), config_(config) {}

  [[nodiscard]] const DefragConfig& config() const noexcept {
    return config_;
  }

  /// Plans one bounded batch against `snapshot` (a PlacementService
  /// snapshot) and the registry's current stack set.  Pure planning: no
  /// locks taken, nothing mutated.  An empty members list means nothing
  /// worth moving (or nothing movable within budget).
  [[nodiscard]] PlacementService::MigrationBatch plan_batch(
      const dc::Occupancy& snapshot) const;

  /// Snapshot -> plan_batch -> try_commit_migration, with up to
  /// max_conflict_retries fresh-snapshot replans when a batch commits
  /// nothing because every member conflicted.
  DefragStats run_once();

 private:
  PlacementService* service_;
  StackRegistry* registry_;
  DefragConfig config_;
};

}  // namespace ostro::core
