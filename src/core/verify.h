// Independent placement verifier.
//
// Re-checks every constraint of Section II-B-2 from first principles,
// sharing no accounting code with PartialPlacement: host capacities are
// summed per host, pipe bandwidth is aggregated per physical link, and
// diversity zones are checked pairwise.  The property-based test suite runs
// every algorithm's output through this verifier; it is also cheap enough
// for callers to use as a final sanity gate before committing a placement.
#pragma once

#include <string>
#include <vector>

#include "datacenter/occupancy.h"
#include "net/reservation.h"
#include "topology/app_topology.h"

namespace ostro::core {

/// Returns a human-readable description of every violated constraint;
/// empty means the placement is valid against `base`.
[[nodiscard]] std::vector<std::string> verify_placement(
    const dc::Occupancy& base, const topo::AppTopology& topology,
    const net::Assignment& assignment);

/// The occupancy-independent subset of verify_placement: shape (every node
/// placed on a valid host), hardware tags, pipe latency budgets, affinity
/// co-location, and diversity-zone separation.  These depend only on the
/// data-center structure, so they hold no matter what else is placed —
/// which is what migration planning needs: a relocated stack's capacity and
/// bandwidth are validated via delta staging (its own old load must not
/// double-count against it, so verify_placement would mis-reject), while
/// the structural constraints are re-checked here.
[[nodiscard]] std::vector<std::string> verify_assignment_structure(
    const dc::DataCenter& datacenter, const topo::AppTopology& topology,
    const net::Assignment& assignment);

}  // namespace ostro::core
