#include "core/stack_registry.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace ostro::core {

void StackRegistry::add(StackId id,
                        std::shared_ptr<const topo::AppTopology> topology,
                        net::Assignment assignment) {
  if (topology == nullptr) {
    throw std::invalid_argument("StackRegistry::add: null topology");
  }
  if (assignment.size() != topology->node_count()) {
    throw std::invalid_argument(
        "StackRegistry::add: assignment size mismatch");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = stacks_.try_emplace(
      id, DeployedStack{id, std::move(topology), std::move(assignment)});
  if (!inserted) {
    throw std::invalid_argument("StackRegistry::add: stack id already live");
  }
}

std::optional<DeployedStack> StackRegistry::remove(StackId id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = stacks_.find(id);
  if (it == stacks_.end()) return std::nullopt;
  DeployedStack stack = std::move(it->second);
  stacks_.erase(it);
  return stack;
}

bool StackRegistry::update_assignment(StackId id,
                                      const net::Assignment& expected,
                                      net::Assignment next) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = stacks_.find(id);
  if (it == stacks_.end()) return false;
  if (it->second.assignment != expected) return false;
  if (next.size() != it->second.topology->node_count()) return false;
  it->second.assignment = std::move(next);
  return true;
}

std::optional<DeployedStack> StackRegistry::get(StackId id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = stacks_.find(id);
  if (it == stacks_.end()) return std::nullopt;
  return it->second;
}

std::vector<DeployedStack> StackRegistry::snapshot() const {
  std::vector<DeployedStack> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(stacks_.size());
    for (const auto& [id, stack] : stacks_) out.push_back(stack);
  }
  std::sort(out.begin(), out.end(),
            [](const DeployedStack& a, const DeployedStack& b) {
              return a.id < b.id;
            });
  return out;
}

std::vector<StackId> StackRegistry::stacks_on_host(dc::HostId host) const {
  std::vector<StackId> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, stack] : stacks_) {
      for (const dc::HostId h : stack.assignment) {
        if (h == host) {
          out.push_back(id);
          break;
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t StackRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stacks_.size();
}

}  // namespace ostro::core
