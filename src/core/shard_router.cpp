#include "core/shard_router.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "datacenter/state_delta.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace ostro::core {

namespace {

/// Component-wise max node requirement of a stack: the cheapest sound
/// filter against a shard's root max_free aggregate.
topo::Resources max_node_requirement(const topo::AppTopology& topology) {
  topo::Resources max_req;
  for (const topo::Node& node : topology.nodes()) {
    max_req.vcpus = std::max(max_req.vcpus, node.requirements.vcpus);
    max_req.mem_gb = std::max(max_req.mem_gb, node.requirements.mem_gb);
    max_req.disk_gb = std::max(max_req.disk_gb, node.requirements.disk_gb);
  }
  return max_req;
}

net::Assignment to_global_assignment(const dc::ShardLayout& layout,
                                     std::uint32_t shard,
                                     const net::Assignment& local) {
  net::Assignment global(local.size());
  for (std::size_t i = 0; i < local.size(); ++i) {
    global[i] = layout.to_global_host(shard, local[i]);
  }
  return global;
}

const ShardConfig& validated(const ShardConfig& config) {
  config.validate();
  return config;
}

}  // namespace

void ShardConfig::validate() const {
  if (shards == 0) {
    throw std::invalid_argument("ShardConfig: shards must be >= 1");
  }
  if (router_max_shard_attempts == 0) {
    throw std::invalid_argument(
        "ShardConfig: router_max_shard_attempts must be >= 1");
  }
}

// ---------------------------------------------------------------- ledger

CrossShardLedger::CrossShardLedger(const dc::DataCenter& global)
    : dc_(&global), used_(global.link_count(), 0.0) {}

bool CrossShardLedger::try_reserve(const std::vector<Op>& ops) {
  static util::metrics::Counter& m_reservations =
      util::metrics::counter("shard.ledger_reservations");
  static util::metrics::Counter& m_conflicts =
      util::metrics::counter("shard.ledger_conflicts");
  if (ops.empty()) return true;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Op& op : ops) {
    if (op.link >= used_.size() || op.mbps < 0.0) {
      throw std::invalid_argument("CrossShardLedger: malformed reserve op");
    }
  }
  // Accumulate-and-check per op, exactly like Occupancy::reserve_link, with
  // the pre-op values saved for an exact restore on conflict.
  std::vector<std::pair<dc::LinkId, double>> saved;
  saved.reserve(ops.size());
  constexpr double kEps = 1e-9;
  for (const Op& op : ops) {
    if (used_[op.link] + op.mbps > dc_->link_capacity(op.link) + kEps) {
      for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
        used_[it->first] = it->second;
      }
      m_conflicts.inc();
      return false;
    }
    saved.emplace_back(op.link, used_[op.link]);
    used_[op.link] += op.mbps;
  }
  m_reservations.add(ops.size());
  return true;
}

void CrossShardLedger::release(const std::vector<Op>& ops) {
  static util::metrics::Counter& m_releases =
      util::metrics::counter("shard.ledger_releases");
  if (ops.empty()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Op& op : ops) {
    if (op.link >= used_.size() || op.mbps < 0.0) {
      throw std::invalid_argument("CrossShardLedger: malformed release op");
    }
    if (used_[op.link] - op.mbps < -1e-6) {
      throw std::invalid_argument(
          "CrossShardLedger: releasing more than reserved on " +
          dc_->link_name(op.link));
    }
  }
  // Same clamping arithmetic as Occupancy::release_link.
  for (const Op& op : ops) {
    used_[op.link] = std::max(0.0, used_[op.link] - op.mbps);
  }
  m_releases.add(ops.size());
}

double CrossShardLedger::used_mbps(dc::LinkId link) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return used_.at(link);
}

void CrossShardLedger::overlay(dc::Occupancy& global_occupancy) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (dc::LinkId link = 0; link < used_.size(); ++link) {
    if (used_[link] > 0.0) {
      global_occupancy.reserve_link(link, used_[link]);
    }
  }
}

// ------------------------------------------------------------- decompose

DecomposedOps decompose_ops(const dc::ShardLayout& layout,
                            const topo::AppTopology& topology,
                            const net::Assignment& assignment) {
  if (assignment.size() != topology.node_count()) {
    throw std::invalid_argument("decompose_ops: assignment size mismatch");
  }
  const dc::DataCenter& global = layout.global();
  DecomposedOps out;
  // Shard id -> index into out.shards, grown on first touch.
  std::vector<std::uint32_t> slot(layout.shard_count(),
                                  dc::ShardLayout::kLedgerOwned);
  const auto shard_ops = [&](std::uint32_t shard) -> ShardOps& {
    if (slot[shard] == dc::ShardLayout::kLedgerOwned) {
      slot[shard] = static_cast<std::uint32_t>(out.shards.size());
      out.shards.push_back(ShardOps{});
      out.shards.back().shard = shard;
    }
    return out.shards[slot[shard]];
  };
  // Host loads in node order, mirroring net::PlacementTransaction::apply.
  for (const topo::Node& node : topology.nodes()) {
    const dc::HostId host = assignment[node.id];
    if (host == dc::kInvalidHost || host >= global.host_count()) {
      throw std::invalid_argument("decompose_ops: node " + node.name +
                                  " is unplaced");
    }
    ShardOps& ops = shard_ops(layout.shard_of_host(host));
    const dc::HostId local = layout.to_local_host(host);
    ops.host_loads.emplace_back(local, node.requirements);
    ops.touched_hosts.push_back(local);
  }
  // Path links in edge-major path order; each link to its owner.
  for (const topo::Edge& edge : topology.edges()) {
    const dc::PathLinks path =
        global.path_between(assignment[edge.a], assignment[edge.b]);
    for (const dc::LinkId link : path) {
      const std::uint32_t owner = layout.link_owner(link);
      if (owner == dc::ShardLayout::kLedgerOwned) {
        out.ledger.push_back({link, edge.bandwidth_mbps});
      } else {
        shard_ops(owner).link_mbps.emplace_back(layout.to_local_link(link),
                                                edge.bandwidth_mbps);
      }
    }
  }
  std::sort(out.shards.begin(), out.shards.end(),
            [](const ShardOps& a, const ShardOps& b) {
              return a.shard < b.shard;
            });
  return out;
}

// ---------------------------------------------------------------- router

ShardRouter::ShardRouter(const dc::DataCenter& global,
                         const ShardConfig& config, SearchConfig defaults)
    : config_(validated(config)),
      layout_(global, config.shards),
      ledger_(global) {
  schedulers_.reserve(layout_.shard_count());
  services_.reserve(layout_.shard_count());
  for (std::uint32_t k = 0; k < layout_.shard_count(); ++k) {
    schedulers_.push_back(std::make_unique<OstroScheduler>(
        layout_.shard_datacenter(k), defaults));
    services_.push_back(std::make_unique<PlacementService>(*schedulers_[k]));
  }
}

std::uint64_t ShardRouter::append_commit(
    CommitKind kind, StackId stack_id, bool cross_shard,
    const std::shared_ptr<const topo::AppTopology>& topology,
    const net::Assignment& assignment) {
  const std::lock_guard<std::mutex> lock(log_mutex_);
  const std::uint64_t epoch = ++global_epoch_;
  if (config_.router_commit_log) {
    log_.push_back(
        {epoch, kind, stack_id, cross_shard, topology, assignment});
  }
  return epoch;
}

std::vector<ShardRouter::CommitRecord> ShardRouter::commit_log() const {
  const std::lock_guard<std::mutex> lock(log_mutex_);
  return log_;
}

std::size_t ShardRouter::live_stacks() const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  return stacks_.size();
}

dc::Occupancy ShardRouter::stitched_snapshot() const {
  static util::metrics::Summary& m_stitch =
      util::metrics::summary("router.stitch_seconds");
  const util::metrics::ScopedTimer timer(m_stitch);
  dc::Occupancy stitched(layout_.global());
  for (std::uint32_t k = 0; k < layout_.shard_count(); ++k) {
    const dc::Occupancy snap = services_[k]->snapshot();
    layout_.overlay(stitched, k, snap);
  }
  ledger_.overlay(stitched);
  return stitched;
}

ShardRouter::Result ShardRouter::place(
    std::shared_ptr<const topo::AppTopology> topology, Algorithm algorithm) {
  return place(std::move(topology), algorithm, schedulers_[0]->defaults());
}

ShardRouter::Result ShardRouter::place(
    std::shared_ptr<const topo::AppTopology> topology, Algorithm algorithm,
    const SearchConfig& config) {
  static util::metrics::Counter& m_requests =
      util::metrics::counter("router.requests");
  static util::metrics::Counter& m_attempts =
      util::metrics::counter("router.shard_attempts");
  static util::metrics::Counter& m_single =
      util::metrics::counter("router.single_shard_committed");
  static util::metrics::Counter& m_cross_plans =
      util::metrics::counter("router.cross_shard_plans");
  static util::metrics::Counter& m_cross_committed =
      util::metrics::counter("router.cross_shard_committed");
  static util::metrics::Counter& m_cross_aborts =
      util::metrics::counter("router.cross_shard_aborts");
  m_requests.inc();

  Result result;
  const topo::AppTopology& topo_ref = *topology;

  // ---- single-shard fast path: score shards from root aggregates ----
  std::vector<std::uint32_t> candidates;
  if (shard_count() == 1) {
    // Monolithic configuration: always attempt the one shard, exactly like
    // a plain PlacementService would (the bit-identical differential).
    candidates.push_back(0);
  } else {
    const topo::Resources max_req = max_node_requirement(topo_ref);
    struct Scored {
      std::uint32_t shard;
      std::uint32_t feasible_hosts;
    };
    std::vector<Scored> scored;
    scored.reserve(shard_count());
    for (std::uint32_t k = 0; k < shard_count(); ++k) {
      const dc::FeasibilityIndex::Aggregate agg =
          services_[k]->root_aggregate();
      if (agg.feasible_hosts == 0) continue;
      if (!max_req.fits_within(agg.max_free)) continue;
      scored.push_back({k, agg.feasible_hosts});
    }
    std::sort(scored.begin(), scored.end(),
              [](const Scored& a, const Scored& b) {
                if (a.feasible_hosts != b.feasible_hosts) {
                  return a.feasible_hosts > b.feasible_hosts;
                }
                return a.shard < b.shard;
              });
    const std::size_t attempts = std::min<std::size_t>(
        scored.size(), config_.router_max_shard_attempts);
    for (std::size_t i = 0; i < attempts; ++i) {
      candidates.push_back(scored[i].shard);
    }
  }

  for (const std::uint32_t k : candidates) {
    ++result.shard_attempts;
    m_attempts.inc();
    StackId stack_id = 0;
    std::uint64_t epoch = 0;
    net::Assignment global_assignment;
    // The committer applies the shard-local commit AND draws the global
    // epoch while the shard writer lock is held, so the commit-log order
    // matches the shard's actual mutation order.
    const PlacementService::Committer committer =
        [&](const Placement& placement, std::string&) -> bool {
      schedulers_[k]->commit(topo_ref, placement);
      global_assignment =
          to_global_assignment(layout_, k, placement.assignment);
      stack_id = next_stack_id_.fetch_add(1, std::memory_order_relaxed);
      epoch = append_commit(CommitKind::kPlace, stack_id,
                            /*cross_shard=*/false, topology,
                            global_assignment);
      return true;
    };
    ServiceResult sr =
        services_[k]->place_with(topo_ref, algorithm, config, committer);
    result.service.conflicts += sr.conflicts;
    result.service.retries += sr.retries;
    result.service.plan_epoch = sr.plan_epoch;
    if (sr.placement.committed) {
      sr.placement.assignment = std::move(global_assignment);
      result.service.placement = std::move(sr.placement);
      result.service.commit_epoch = sr.commit_epoch;
      result.shard = k;
      result.stack_id = stack_id;
      result.global_epoch = epoch;
      {
        const std::lock_guard<std::mutex> lock(registry_mutex_);
        stacks_.emplace(stack_id,
                        RouterStack{topology,
                                    result.service.placement.assignment,
                                    /*cross_shard=*/false});
      }
      m_single.inc();
      return result;
    }
    // Keep the last shard's verdict (in global ids where it placed) for
    // reporting if every fallback fails too.
    if (sr.placement.feasible) {
      sr.placement.assignment =
          to_global_assignment(layout_, k, sr.placement.assignment);
    }
    result.service.placement = std::move(sr.placement);
  }

  // ---- cross-shard fallback: stitched plan + two-phase commit ----
  if (shard_count() == 1 || !config_.router_allow_cross_shard) {
    if (candidates.empty()) {
      result.service.placement.feasible = false;
      result.service.placement.failure_reason =
          "router: no shard aggregate fits the stack";
    }
    return result;
  }

  for (std::uint32_t attempt = 0;; ++attempt) {
    m_cross_plans.inc();
    const dc::Occupancy stitched = stitched_snapshot();
    Placement planned =
        place_topology(stitched, topo_ref, algorithm, config);
    if (!planned.feasible) {
      result.service.placement = std::move(planned);
      return result;
    }
    if (planned.bandwidth_overcommitted) {
      planned.failure_reason =
          "placement overcommits link bandwidth; not committed";
      result.service.placement = std::move(planned);
      return result;
    }
    if (pre_commit_hook_) pre_commit_hook_(attempt);
    const StackId stack_id =
        next_stack_id_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t epoch = 0;
    if (try_two_phase_commit(topology, planned.assignment, stack_id,
                             &epoch)) {
      planned.committed = true;
      {
        const std::lock_guard<std::mutex> lock(registry_mutex_);
        stacks_.emplace(stack_id, RouterStack{topology, planned.assignment,
                                              /*cross_shard=*/true});
      }
      result.service.placement = std::move(planned);
      result.stack_id = stack_id;
      result.cross_shard = true;
      result.global_epoch = epoch;
      m_cross_committed.inc();
      return result;
    }
    m_cross_aborts.inc();
    ++result.service.conflicts;
    if (attempt >= config_.router_max_cross_retries) {
      planned.committed = false;
      planned.failure_reason =
          "cross-shard commit conflict: " +
          std::to_string(config_.router_max_cross_retries) +
          " replan(s) exhausted";
      result.service.placement = std::move(planned);
      return result;
    }
    ++result.service.retries;
  }
}

bool ShardRouter::try_two_phase_commit(
    const std::shared_ptr<const topo::AppTopology>& topology,
    const net::Assignment& assignment, StackId stack_id,
    std::uint64_t* epoch) {
  const DecomposedOps ops = decompose_ops(layout_, *topology, assignment);
  // Phase 1a — lock every participant in ascending shard id (decompose_ops
  // sorts), the global order that makes concurrent two-phase commits
  // deadlock-free.
  std::vector<PlacementService::ExclusiveSession> sessions;
  sessions.reserve(ops.shards.size());
  for (const ShardOps& shard_ops : ops.shards) {
    sessions.push_back(services_[shard_ops.shard]->exclusive());
  }
  // Phase 1b — stage one delta per participant against its LIVE occupancy.
  // Staging validates capacity and bandwidth with the exact Occupancy
  // arithmetic; a std::invalid_argument is a benign conflict (the plan was
  // against a stale stitch) and aborts with nothing touched — the sessions
  // unlock via RAII.  Any other exception is corruption and propagates.
  std::vector<dc::OccupancyDelta> deltas;
  deltas.reserve(ops.shards.size());
  try {
    for (std::size_t i = 0; i < ops.shards.size(); ++i) {
      dc::OccupancyDelta& delta = deltas.emplace_back(sessions[i].occupancy());
      for (const auto& [host, load] : ops.shards[i].host_loads) {
        delta.add_host_load(host, load);
      }
      for (const auto& [link, mbps] : ops.shards[i].link_mbps) {
        delta.reserve_link(link, mbps);
      }
    }
  } catch (const std::invalid_argument&) {
    return false;
  }
  // Phase 1c — the shared wide-area uplinks, all-or-nothing.
  if (!ledger_.try_reserve(ops.ledger)) {
    return false;
  }
  // Phase 2 — commit: flush every staged delta.  Cannot fail: each delta
  // was validated against the occupancy it flushes into, and the writer
  // locks are still held.
  for (std::size_t i = 0; i < ops.shards.size(); ++i) {
    sessions[i].occupancy().apply_delta(deltas[i]);
  }
  *epoch = append_commit(CommitKind::kPlace, stack_id, /*cross_shard=*/true,
                         topology, assignment);
  return true;
}

bool ShardRouter::release_stack(StackId id) {
  static util::metrics::Counter& m_releases =
      util::metrics::counter("router.releases");
  RouterStack stack;
  {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    const auto it = stacks_.find(id);
    if (it == stacks_.end()) return false;  // double-release guard
    stack = std::move(it->second);
    stacks_.erase(it);
  }
  const DecomposedOps ops = decompose_ops(layout_, *stack.topology,
                                          stack.assignment);
  std::vector<PlacementService::ExclusiveSession> sessions;
  sessions.reserve(ops.shards.size());
  for (const ShardOps& shard_ops : ops.shards) {
    sessions.push_back(services_[shard_ops.shard]->exclusive());
  }
  // Exact mirror of net::release_placement per shard: stage every removal
  // in one delta (node order, then edge/path order), flush, then the
  // deactivate_if_idle walk over the assignment's hosts.  A throw here
  // means corrupted accounting and propagates.
  for (std::size_t i = 0; i < ops.shards.size(); ++i) {
    dc::Occupancy& occupancy = sessions[i].occupancy();
    dc::OccupancyDelta delta(occupancy);
    for (const auto& [host, load] : ops.shards[i].host_loads) {
      delta.remove_host_load(host, load);
    }
    for (const auto& [link, mbps] : ops.shards[i].link_mbps) {
      delta.release_link(link, mbps);
    }
    occupancy.apply_delta(delta);
    for (const dc::HostId host : ops.shards[i].touched_hosts) {
      occupancy.deactivate_if_idle(host);
    }
  }
  ledger_.release(ops.ledger);
  append_commit(CommitKind::kRelease, id, stack.cross_shard, stack.topology,
                stack.assignment);
  m_releases.inc();
  return true;
}

// ----------------------------------------------------------------- replay

std::vector<dc::Occupancy> replay_commit_log(
    const dc::ShardLayout& layout, std::vector<ShardRouter::CommitRecord> log,
    CrossShardLedger* ledger) {
  std::sort(log.begin(), log.end(),
            [](const ShardRouter::CommitRecord& a,
               const ShardRouter::CommitRecord& b) {
              return a.global_epoch < b.global_epoch;
            });
  std::vector<dc::Occupancy> occupancies;
  occupancies.reserve(layout.shard_count());
  for (std::uint32_t k = 0; k < layout.shard_count(); ++k) {
    occupancies.emplace_back(layout.shard_datacenter(k));
  }
  CrossShardLedger local_ledger(layout.global());
  CrossShardLedger& led = ledger != nullptr ? *ledger : local_ledger;
  for (const ShardRouter::CommitRecord& record : log) {
    const DecomposedOps ops =
        decompose_ops(layout, *record.topology, record.assignment);
    for (const ShardOps& shard_ops : ops.shards) {
      dc::Occupancy& occupancy = occupancies[shard_ops.shard];
      dc::OccupancyDelta delta(occupancy);
      if (record.kind == ShardRouter::CommitKind::kPlace) {
        for (const auto& [host, load] : shard_ops.host_loads) {
          delta.add_host_load(host, load);
        }
        for (const auto& [link, mbps] : shard_ops.link_mbps) {
          delta.reserve_link(link, mbps);
        }
        occupancy.apply_delta(delta);
      } else {
        for (const auto& [host, load] : shard_ops.host_loads) {
          delta.remove_host_load(host, load);
        }
        for (const auto& [link, mbps] : shard_ops.link_mbps) {
          delta.release_link(link, mbps);
        }
        occupancy.apply_delta(delta);
        for (const dc::HostId host : shard_ops.touched_hosts) {
          occupancy.deactivate_if_idle(host);
        }
      }
    }
    if (record.kind == ShardRouter::CommitKind::kPlace) {
      if (!led.try_reserve(ops.ledger)) {
        throw std::logic_error(
            "replay_commit_log: ledger reservation failed in serial order");
      }
    } else {
      led.release(ops.ledger);
    }
  }
  return occupancies;
}

}  // namespace ostro::core
