// Exhaustive optimal placement, used as the test oracle for BA* optimality
// and heuristic admissibility on small instances.  Exponential — intended
// for |V| and |H| in the single digits.
#pragma once

#include <cstdint>
#include <optional>

#include "core/partial.h"

namespace ostro::core {

struct BruteForceResult {
  bool feasible = false;
  std::optional<PartialPlacement> state;  ///< the optimal completion
  double utility = 0.0;
  std::uint64_t nodes_visited = 0;
};

/// Depth-first enumeration of every feasible completion of `initial`,
/// pruned only by the admissible bound when `use_bound_pruning` (the
/// default keeps it exact either way; disable to stress admissibility
/// tests, which compare against the fully unpruned optimum).
[[nodiscard]] BruteForceResult brute_force_optimal(
    const PartialPlacement& initial, bool use_bound_pruning = true);

}  // namespace ostro::core
