#include "core/partial.h"

#include <algorithm>
#include <stdexcept>

namespace ostro::core {
namespace {

/// Scope a diversity level forces between two co-zoned nodes.
[[nodiscard]] dc::Scope forced_scope(topo::DiversityLevel level) noexcept {
  switch (level) {
    case topo::DiversityLevel::kHost: return dc::Scope::kSameRack;
    case topo::DiversityLevel::kRack: return dc::Scope::kSamePod;
    case topo::DiversityLevel::kPod: return dc::Scope::kSameSite;
    case topo::DiversityLevel::kDatacenter: return dc::Scope::kCrossSite;
  }
  return dc::Scope::kSameRack;
}

/// Positive compute requirements (vcpus and mem_gb): only then does "no
/// compute-feasible host" imply "this node cannot land there".  The label
/// counters track compute feasibility and ignore disk, so a zero-disk VM is
/// still covered; a volume (zero compute) fits a compute-exhausted host,
/// which the counters don't see, and must not be tightened dynamically.
[[nodiscard]] bool requires_compute(const topo::Resources& r) noexcept {
  constexpr double kEps = 1e-9;
  return r.vcpus > kEps && r.mem_gb > kEps;
}

}  // namespace

PartialPlacement::PartialPlacement(const topo::AppTopology& topology,
                                   const dc::Occupancy& base,
                                   const Objective& objective,
                                   bool use_prune_labels)
    : topology_(&topology),
      base_(&base),
      objective_(&objective),
      use_prune_labels_(use_prune_labels),
      assignment_(topology.node_count(), dc::kInvalidHost) {
  for (const auto& edge : topology_->edges()) {
    bound_sum_ += edge_lower_bound(edge);
  }
}

PartialPlacement::PartialPlacement(const PartialPlacement& other)
    : topology_(other.topology_),
      base_(other.base_),
      objective_(other.objective_),
      use_prune_labels_(other.use_prune_labels_),
      assignment_(other.assignment_),
      placed_count_(other.placed_count_),
      host_delta_(other.host_delta_),
      link_delta_(other.link_delta_),
      pending_uplink_(other.pending_uplink_),
      pending_rack_uplink_(other.pending_rack_uplink_),
      newly_active_(other.newly_active_),
      used_hosts_(other.used_hosts_),
      ubw_(other.ubw_),
      bound_sum_(other.bound_sum_),
      rep_(other.rep_),
      parent_(other.parent_),
      chain_len_(other.chain_len_),
      host_flat_(other.host_flat_),
      link_flat_(other.link_flat_),
      pending_flat_(other.pending_flat_),
      rack_flat_(other.rack_flat_),
      host_local_(other.host_local_),
      link_local_(other.link_local_),
      pending_local_(other.pending_local_),
      rack_local_(other.rack_local_) {
  // A copied chain state is flattened so the copy never references the
  // original's arena-owned ancestors (incumbents and EG reruns copy states
  // that must outlive the search).
  if (rep_ == Rep::kChain) flatten_in_place();
}

PartialPlacement& PartialPlacement::operator=(const PartialPlacement& other) {
  if (this != &other) {
    PartialPlacement tmp(other);
    *this = std::move(tmp);
  }
  return *this;
}

topo::Resources PartialPlacement::available(dc::HostId host) const {
  topo::Resources avail = base_->available(host);
  if (const topo::Resources* delta = host_delta_find(host)) avail -= *delta;
  return avail;
}

double PartialPlacement::link_available(dc::LinkId link) const {
  double avail = base_->link_available_mbps(link);
  if (const double* delta = link_delta_find(link)) avail -= *delta;
  return avail;
}

bool PartialPlacement::is_active(dc::HostId host) const {
  if (base_->is_active(host)) return true;
  return std::find(newly_active_.begin(), newly_active_.end(), host) !=
         newly_active_.end();
}

bool PartialPlacement::capacity_ok(topo::NodeId node, dc::HostId host) const {
  return topology_->node(node).requirements.fits_within(available(host));
}

bool PartialPlacement::zones_ok(topo::NodeId node, dc::HostId host) const {
  const dc::DataCenter& datacenter = base_->datacenter();
  for (const auto zone_index : topology_->zones_of(node)) {
    const auto& zone = topology_->zones()[zone_index];
    for (const topo::NodeId member : zone.members) {
      if (member == node) continue;
      const dc::HostId member_host = assignment_[member];
      if (member_host == dc::kInvalidHost) continue;
      if (!datacenter.separated_at(host, member_host, zone.level)) {
        return false;
      }
    }
  }
  return true;
}

bool PartialPlacement::bandwidth_ok(topo::NodeId node, dc::HostId host) const {
  // Pipes from `node` to already-placed neighbors may share physical links
  // (e.g. both traverse the candidate host's uplink), so demands are
  // aggregated per link before the availability check.  The distinct-link
  // fan is tiny (at most 4 + 4 x degree, mostly shared), so a flat scratch
  // with linear-scan aggregation replaces the per-call hash map and
  // allocates nothing once warm.
  thread_local std::vector<std::pair<dc::LinkId, double>> demand;
  demand.clear();
  const dc::DataCenter& datacenter = base_->datacenter();
  for (const auto& nb : topology_->neighbors(node)) {
    const dc::HostId other = assignment_[nb.node];
    if (other == dc::kInvalidHost) continue;
    const dc::PathLinks path = datacenter.path_between(host, other);
    for (const dc::LinkId link : path) {
      bool found = false;
      for (auto& [seen, mbps] : demand) {
        if (seen == link) {
          mbps += nb.bandwidth_mbps;
          found = true;
          break;
        }
      }
      if (!found) demand.emplace_back(link, nb.bandwidth_mbps);
    }
  }
  constexpr double kEps = 1e-9;
  for (const auto& [link, mbps] : demand) {
    if (mbps > link_available(link) + kEps) return false;
  }
  return true;
}

bool PartialPlacement::tags_ok(topo::NodeId node, dc::HostId host) const {
  const auto& required = topology_->node(node).required_tags;
  if (required.empty()) return true;
  return datacenter().host(host).has_all_tags(required);
}

bool PartialPlacement::affinity_ok(topo::NodeId node, dc::HostId host) const {
  const dc::DataCenter& datacenter_ref = base_->datacenter();
  for (const auto group_index : topology_->affinities_of(node)) {
    const auto& group = topology_->affinities()[group_index];
    for (const topo::NodeId member : group.members) {
      if (member == node) continue;
      const dc::HostId member_host = assignment_[member];
      if (member_host == dc::kInvalidHost) continue;
      // Affinity is the negation of diversity at the same level: the two
      // hosts must NOT be separated at `group.level`.
      if (datacenter_ref.separated_at(host, member_host, group.level)) {
        return false;
      }
    }
  }
  return true;
}

bool PartialPlacement::latency_ok(topo::NodeId node, dc::HostId host) const {
  const dc::DataCenter& datacenter_ref = base_->datacenter();
  for (const auto& nb : topology_->neighbors(node)) {
    const auto& edge = topology_->edges()[nb.edge_index];
    if (edge.max_latency_us <= 0.0) continue;
    const dc::HostId other = assignment_[nb.node];
    if (other == dc::kInvalidHost) continue;
    const dc::Scope scope = datacenter_ref.scope_between(host, other);
    if (datacenter_ref.scope_latency_us(scope) > edge.max_latency_us) {
      return false;
    }
  }
  return true;
}

dc::Scope PartialPlacement::zone_scope_to_host(topo::NodeId node,
                                               dc::HostId host) const {
  const dc::DataCenter& datacenter = base_->datacenter();
  dc::Scope scope = dc::Scope::kSameHost;
  for (const auto zone_index : topology_->zones_of(node)) {
    const auto& zone = topology_->zones()[zone_index];
    for (const topo::NodeId member : zone.members) {
      if (member == node) continue;
      const dc::HostId member_host = assignment_[member];
      if (member_host == dc::kInvalidHost) continue;
      // `node` must sit at least `zone.level`-separated from member_host;
      // that matters for its distance to `host` only when `host` is within
      // the forbidden unit around member_host.
      if (!datacenter.separated_at(host, member_host, zone.level)) {
        scope = std::max(scope, forced_scope(zone.level));
      }
    }
  }
  return scope;
}

dc::Scope PartialPlacement::min_scope_to_host(topo::NodeId node,
                                              dc::HostId host) const {
  dc::Scope scope = zone_scope_to_host(node, host);
  if (scope == dc::Scope::kSameHost &&
      !topology_->node(node).requirements.fits_within(available(host))) {
    scope = dc::Scope::kSameRack;  // cannot co-locate; >= 2 links away
  }
  return scope;
}

double PartialPlacement::edge_lower_bound(const topo::Edge& edge) const {
  const bool a_placed = assignment_[edge.a] != dc::kInvalidHost;
  const bool b_placed = assignment_[edge.b] != dc::kInvalidHost;
  if (a_placed && b_placed) return 0.0;  // actual cost lives in ubw_

  if (!a_placed && !b_placed) {
    const topo::Resources& req_a = topology_->node(edge.a).requirements;
    const topo::Resources& req_b = topology_->node(edge.b).requirements;
    dc::Scope scope = dc::Scope::kSameHost;
    if (const auto level = topology_->required_separation(edge.a, edge.b)) {
      scope = forced_scope(*level);
    }
    if (scope == dc::Scope::kSameHost) {
      const topo::Resources combined = req_a + req_b;
      if (!combined.fits_within(datacenter().max_host_capacity())) {
        scope = dc::Scope::kSameRack;
      } else if (use_prune_labels_ &&
                 !combined.fits_within(
                     base_->feasibility().root().max_free)) {
        // No host currently offers the combined free capacity, and search
        // overlays only consume more: co-location is impossible in any
        // completion of this plan.
        scope = dc::Scope::kSameRack;
      }
    }
    if (use_prune_labels_ && scope != dc::Scope::kSameHost) {
      scope = base_->labels().tighten_separation(
          scope, requires_compute(req_a) && requires_compute(req_b));
    }
    return Objective::edge_cost(edge.bandwidth_mbps, scope);
  }

  const topo::NodeId placed = a_placed ? edge.a : edge.b;
  const topo::NodeId free = a_placed ? edge.b : edge.a;
  dc::Scope scope = min_scope_to_host(free, assignment_[placed]);
  if (use_prune_labels_ && scope != dc::Scope::kSameHost) {
    const topo::Resources& req = topology_->node(free).requirements;
    scope = base_->labels().tighten_to_host(
        scope, assignment_[placed], req, requires_compute(req),
        edge.bandwidth_mbps, base_->feasibility());
  }
  return Objective::edge_cost(edge.bandwidth_mbps, scope);
}

bool PartialPlacement::has_link_overcommit() const {
  constexpr double kEps = 1e-6;
  const auto over = [&](std::uint64_t link, double used) {
    return used >
           base_->link_available_mbps(static_cast<dc::LinkId>(link)) + kEps;
  };
  if (rep_ == Rep::kMap) {
    for (const auto& [link, used] : link_delta_) {
      if (over(link, used)) return true;
    }
    return false;
  }
  if (rep_ == Rep::kFlat) {
    bool found = false;
    link_flat_.for_each([&](std::uint64_t link, double used) {
      if (!found && over(link, used)) found = true;
    });
    return found;
  }
  // Chain iteration is cold (final placements are flat or map states): walk
  // newest-first, skipping keys already seen at a newer level.
  std::vector<std::uint64_t> seen;
  const auto is_seen = [&seen](std::uint64_t key) {
    return std::find(seen.begin(), seen.end(), key) != seen.end();
  };
  for (const PartialPlacement* p = this;; p = p->parent_) {
    if (p->rep_ == Rep::kChain) {
      for (const auto& [link, used] : p->link_local_) {
        if (is_seen(link)) continue;
        seen.push_back(link);
        if (over(link, used)) return true;
      }
      continue;
    }
    if (p->rep_ == Rep::kFlat) {
      bool found = false;
      p->link_flat_.for_each([&](std::uint64_t link, double used) {
        if (!found && !is_seen(link) && over(link, used)) found = true;
      });
      return found;
    }
    for (const auto& [link, used] : p->link_delta_) {
      if (!is_seen(link) && over(link, used)) return true;
    }
    return false;
  }
}

double PartialPlacement::pending_uplink_mbps(dc::HostId host) const {
  const double* pending = pending_find(host);
  return pending == nullptr ? 0.0 : *pending;
}

double PartialPlacement::pending_rack_uplink_mbps(std::uint32_t rack) const {
  const double* pending = rack_pending_find(rack);
  return pending == nullptr ? 0.0 : *pending;
}

double PartialPlacement::placed_neighbor_demand(
    topo::NodeId node, std::vector<dc::HostId>& hosts_out) const {
  double demand = 0.0;
  for (const auto& nb : topology_->neighbors(node)) {
    const dc::HostId other = assignment_[nb.node];
    if (other == dc::kInvalidHost) continue;
    demand += nb.bandwidth_mbps;
    hosts_out.push_back(other);
  }
  return demand;
}

double PartialPlacement::edge_bound(std::uint32_t edge_index) const {
  if (edge_index >= topology_->edge_count()) {
    throw std::out_of_range("PartialPlacement::edge_bound: bad index");
  }
  return edge_lower_bound(topology_->edges()[edge_index]);
}

void PartialPlacement::collect_affected_edges(
    topo::NodeId node, dc::HostId host,
    std::vector<std::uint32_t>& out) const {
  // (1) Pipes of the node itself.
  for (const auto& nb : topology_->neighbors(node)) {
    out.push_back(nb.edge_index);
  }
  // (2) Pipes from residents of `host` to unplaced endpoints: the host's
  // residual shrinks, which may push their co-location bound to >= 1 rack.
  for (topo::NodeId v = 0; v < assignment_.size(); ++v) {
    if (assignment_[v] != host) continue;
    for (const auto& nb : topology_->neighbors(v)) {
      if (assignment_[nb.node] == dc::kInvalidHost) {
        out.push_back(nb.edge_index);
      }
    }
  }
  // (3) Pipes of unplaced zone-mates of `node` whose other endpoint is
  // placed: the new member placement may tighten zone_scope_to_host.
  for (const auto zone_index : topology_->zones_of(node)) {
    const auto& zone = topology_->zones()[zone_index];
    for (const topo::NodeId member : zone.members) {
      if (member == node || assignment_[member] != dc::kInvalidHost) continue;
      for (const auto& nb : topology_->neighbors(member)) {
        if (assignment_[nb.node] != dc::kInvalidHost) {
          out.push_back(nb.edge_index);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

void PartialPlacement::place(topo::NodeId node, dc::HostId host) {
  if (node >= assignment_.size()) {
    throw std::logic_error("PartialPlacement::place: bad node id");
  }
  if (assignment_[node] != dc::kInvalidHost) {
    throw std::logic_error("PartialPlacement::place: node already placed");
  }
  if (host >= datacenter().host_count()) {
    throw std::logic_error("PartialPlacement::place: bad host id");
  }

  // Reused scratch: the affected-edge list is bounded by the edge count, so
  // it is reserved once per thread instead of growing per place() call.
  thread_local std::vector<std::uint32_t> affected;
  affected.clear();
  if (affected.capacity() < topology_->edge_count()) {
    affected.reserve(topology_->edge_count());
  }
  collect_affected_edges(node, host, affected);
  double old_bounds = 0.0;
  for (const auto e : affected) {
    old_bounds += edge_lower_bound(topology_->edges()[e]);
  }

  const topo::Node& n = topology_->node(node);
  bool inserted = false;
  host_delta_slot(host, inserted) += n.requirements;
  if (inserted) used_hosts_.push_back(host);
  if (!base_->is_active(host) &&
      std::find(newly_active_.begin(), newly_active_.end(), host) ==
          newly_active_.end()) {
    newly_active_.push_back(host);
  }
  assignment_[node] = host;
  ++placed_count_;

  // Pipes that are now fully placed: add their actual cost, reserve
  // bandwidth along the physical path, and resolve the counterpart host's
  // pending-uplink obligation.  Pipes to still-unplaced neighbors become
  // this host's pending obligation.
  const dc::DataCenter& datacenter_ref = base_->datacenter();
  const std::uint32_t host_rack = datacenter_ref.ancestors(host).rack;
  for (const auto& nb : topology_->neighbors(node)) {
    const dc::HostId other = assignment_[nb.node];
    if (other == dc::kInvalidHost) {
      pending_slot(host) += nb.bandwidth_mbps;
      rack_pending_slot(host_rack) += nb.bandwidth_mbps;
      continue;
    }
    if (double* pending = pending_find_mut(other)) {
      *pending = std::max(0.0, *pending - nb.bandwidth_mbps);
    }
    if (double* rack_pending =
            rack_pending_find_mut(datacenter_ref.ancestors(other).rack)) {
      *rack_pending = std::max(0.0, *rack_pending - nb.bandwidth_mbps);
    }
    const dc::Scope scope = datacenter_ref.scope_between(host, other);
    ubw_ += Objective::edge_cost(nb.bandwidth_mbps, scope);
    const dc::PathLinks path = datacenter_ref.path_between(host, other);
    for (const dc::LinkId link : path) {
      link_delta_slot(link) += nb.bandwidth_mbps;
    }
  }

  double new_bounds = 0.0;
  for (const auto e : affected) {
    new_bounds += edge_lower_bound(topology_->edges()[e]);
  }
  bound_sum_ += new_bounds - old_bounds;
}

// ---- pooled search-core representation ------------------------------------

void PartialPlacement::reserve_flat_tables() {
  // Every delta key is bounded by the topology: at most |V| distinct hosts
  // (and their racks) ever receive a node, and each fully placed pipe
  // reserves along at most 6 physical links.
  const std::size_t n = topology_->node_count();
  const std::size_t e = topology_->edge_count();
  host_flat_.reserve(n + 1);
  pending_flat_.reserve(n + 1);
  rack_flat_.reserve(n + 1);
  link_flat_.reserve(
      std::min<std::size_t>(datacenter().link_count(), 6 * e + 2 * n) + 1);
}

void PartialPlacement::flatten_tables_from(const PartialPlacement& src) {
  // Walk newest level first; insert_if_absent makes the first (= newest)
  // write per key win, which is exactly the chain's shadowing rule.
  for (const PartialPlacement* p = &src;; p = p->parent_) {
    if (p->rep_ == Rep::kChain) {
      for (const auto& [k, v] : p->host_local_) host_flat_.insert_if_absent(k, v);
      for (const auto& [k, v] : p->link_local_) link_flat_.insert_if_absent(k, v);
      for (const auto& [k, v] : p->pending_local_) {
        pending_flat_.insert_if_absent(k, v);
      }
      for (const auto& [k, v] : p->rack_local_) rack_flat_.insert_if_absent(k, v);
      continue;
    }
    if (p->rep_ == Rep::kFlat) {
      p->host_flat_.for_each([this](std::uint64_t k, const topo::Resources& v) {
        host_flat_.insert_if_absent(k, v);
      });
      p->link_flat_.for_each(
          [this](std::uint64_t k, double v) { link_flat_.insert_if_absent(k, v); });
      p->pending_flat_.for_each([this](std::uint64_t k, double v) {
        pending_flat_.insert_if_absent(k, v);
      });
      p->rack_flat_.for_each(
          [this](std::uint64_t k, double v) { rack_flat_.insert_if_absent(k, v); });
    } else {
      for (const auto& [k, v] : p->host_delta_) host_flat_.insert_if_absent(k, v);
      for (const auto& [k, v] : p->link_delta_) link_flat_.insert_if_absent(k, v);
      for (const auto& [k, v] : p->pending_uplink_) {
        pending_flat_.insert_if_absent(k, v);
      }
      for (const auto& [k, v] : p->pending_rack_uplink_) {
        rack_flat_.insert_if_absent(k, v);
      }
    }
    return;
  }
}

void PartialPlacement::flatten_in_place() {
  // Only a delta chain has anything to flatten.  A kFlat state must not
  // fall through: flatten_tables_from(*this) would read the flat tables
  // this function is about to clear.
  if (rep_ != Rep::kChain) return;
  reserve_flat_tables();
  host_flat_.clear();
  link_flat_.clear();
  pending_flat_.clear();
  rack_flat_.clear();
  flatten_tables_from(*this);
  host_local_.clear();
  link_local_.clear();
  pending_local_.clear();
  rack_local_.clear();
  parent_ = nullptr;
  chain_len_ = 0;
  rep_ = Rep::kFlat;
}

void PartialPlacement::assign_pooled_flat(const PartialPlacement& src) {
  topology_ = src.topology_;
  base_ = src.base_;
  objective_ = src.objective_;
  use_prune_labels_ = src.use_prune_labels_;
  assignment_ = src.assignment_;
  placed_count_ = src.placed_count_;
  newly_active_ = src.newly_active_;
  used_hosts_ = src.used_hosts_;
  ubw_ = src.ubw_;
  bound_sum_ = src.bound_sum_;
  host_delta_.clear();
  link_delta_.clear();
  pending_uplink_.clear();
  pending_rack_uplink_.clear();
  host_local_.clear();
  link_local_.clear();
  pending_local_.clear();
  rack_local_.clear();
  parent_ = nullptr;
  chain_len_ = 0;
  reserve_flat_tables();
  host_flat_.clear();
  link_flat_.clear();
  pending_flat_.clear();
  rack_flat_.clear();
  flatten_tables_from(src);
  rep_ = Rep::kFlat;
}

void PartialPlacement::branch_from(const PartialPlacement& parent) {
  topology_ = parent.topology_;
  base_ = parent.base_;
  objective_ = parent.objective_;
  use_prune_labels_ = parent.use_prune_labels_;
  assignment_ = parent.assignment_;  // O(|V|) flat copy, capacity reused
  placed_count_ = parent.placed_count_;
  newly_active_ = parent.newly_active_;
  used_hosts_ = parent.used_hosts_;
  ubw_ = parent.ubw_;
  bound_sum_ = parent.bound_sum_;
  host_local_.clear();
  link_local_.clear();
  pending_local_.clear();
  rack_local_.clear();
  if (parent.rep_ == Rep::kChain && parent.chain_len_ >= kFlattenThreshold) {
    // The chain is at the flatten threshold: aggregate it into a
    // self-contained flat state instead of growing the walk depth further.
    parent_ = nullptr;
    chain_len_ = 0;
    reserve_flat_tables();
    host_flat_.clear();
    link_flat_.clear();
    pending_flat_.clear();
    rack_flat_.clear();
    flatten_tables_from(parent);
    rep_ = Rep::kFlat;
    return;
  }
  parent_ = &parent;
  chain_len_ = parent.rep_ == Rep::kChain ? parent.chain_len_ + 1 : 1;
  rep_ = Rep::kChain;
}

std::size_t PartialPlacement::pooled_bytes() const noexcept {
  return sizeof(*this) + assignment_.capacity() * sizeof(dc::HostId) +
         newly_active_.capacity() * sizeof(dc::HostId) +
         used_hosts_.capacity() * sizeof(dc::HostId) +
         host_flat_.capacity_bytes() + link_flat_.capacity_bytes() +
         pending_flat_.capacity_bytes() + rack_flat_.capacity_bytes() +
         host_local_.capacity() *
             sizeof(std::pair<dc::HostId, topo::Resources>) +
         link_local_.capacity() * sizeof(std::pair<dc::LinkId, double>) +
         pending_local_.capacity() * sizeof(std::pair<dc::HostId, double>) +
         rack_local_.capacity() * sizeof(std::pair<std::uint32_t, double>);
}

const topo::Resources* PartialPlacement::host_delta_find(
    dc::HostId host) const {
  if (rep_ == Rep::kMap) {
    const auto it = host_delta_.find(host);
    return it == host_delta_.end() ? nullptr : &it->second;
  }
  for (const PartialPlacement* p = this;; p = p->parent_) {
    if (p->rep_ == Rep::kChain) {
      for (const auto& [k, v] : p->host_local_) {
        if (k == host) return &v;
      }
      continue;
    }
    if (p->rep_ == Rep::kFlat) return p->host_flat_.find(host);
    const auto it = p->host_delta_.find(host);
    return it == p->host_delta_.end() ? nullptr : &it->second;
  }
}

const double* PartialPlacement::link_delta_find(dc::LinkId link) const {
  if (rep_ == Rep::kMap) {
    const auto it = link_delta_.find(link);
    return it == link_delta_.end() ? nullptr : &it->second;
  }
  for (const PartialPlacement* p = this;; p = p->parent_) {
    if (p->rep_ == Rep::kChain) {
      for (const auto& [k, v] : p->link_local_) {
        if (k == link) return &v;
      }
      continue;
    }
    if (p->rep_ == Rep::kFlat) return p->link_flat_.find(link);
    const auto it = p->link_delta_.find(link);
    return it == p->link_delta_.end() ? nullptr : &it->second;
  }
}

const double* PartialPlacement::pending_find(dc::HostId host) const {
  if (rep_ == Rep::kMap) {
    const auto it = pending_uplink_.find(host);
    return it == pending_uplink_.end() ? nullptr : &it->second;
  }
  for (const PartialPlacement* p = this;; p = p->parent_) {
    if (p->rep_ == Rep::kChain) {
      for (const auto& [k, v] : p->pending_local_) {
        if (k == host) return &v;
      }
      continue;
    }
    if (p->rep_ == Rep::kFlat) return p->pending_flat_.find(host);
    const auto it = p->pending_uplink_.find(host);
    return it == p->pending_uplink_.end() ? nullptr : &it->second;
  }
}

const double* PartialPlacement::rack_pending_find(std::uint32_t rack) const {
  if (rep_ == Rep::kMap) {
    const auto it = pending_rack_uplink_.find(rack);
    return it == pending_rack_uplink_.end() ? nullptr : &it->second;
  }
  for (const PartialPlacement* p = this;; p = p->parent_) {
    if (p->rep_ == Rep::kChain) {
      for (const auto& [k, v] : p->rack_local_) {
        if (k == rack) return &v;
      }
      continue;
    }
    if (p->rep_ == Rep::kFlat) return p->rack_flat_.find(rack);
    const auto it = p->pending_rack_uplink_.find(rack);
    return it == p->pending_rack_uplink_.end() ? nullptr : &it->second;
  }
}

topo::Resources& PartialPlacement::host_delta_slot(dc::HostId host,
                                                   bool& inserted) {
  if (rep_ == Rep::kMap) {
    auto [it, fresh] = host_delta_.try_emplace(host);
    inserted = fresh;
    return it->second;
  }
  if (rep_ == Rep::kFlat) return host_flat_.get_or_insert(host, inserted);
  for (auto& [k, v] : host_local_) {
    if (k == host) {
      inserted = false;
      return v;
    }
  }
  const topo::Resources* up = parent_->host_delta_find(host);
  inserted = up == nullptr;
  host_local_.emplace_back(host, up ? *up : topo::Resources{});
  return host_local_.back().second;
}

double& PartialPlacement::link_delta_slot(dc::LinkId link) {
  if (rep_ == Rep::kMap) return link_delta_[link];
  if (rep_ == Rep::kFlat) {
    bool inserted = false;
    return link_flat_.get_or_insert(link, inserted);
  }
  for (auto& [k, v] : link_local_) {
    if (k == link) return v;
  }
  const double* up = parent_->link_delta_find(link);
  link_local_.emplace_back(link, up ? *up : 0.0);
  return link_local_.back().second;
}

double& PartialPlacement::pending_slot(dc::HostId host) {
  if (rep_ == Rep::kMap) return pending_uplink_[host];
  if (rep_ == Rep::kFlat) {
    bool inserted = false;
    return pending_flat_.get_or_insert(host, inserted);
  }
  for (auto& [k, v] : pending_local_) {
    if (k == host) return v;
  }
  const double* up = parent_->pending_find(host);
  pending_local_.emplace_back(host, up ? *up : 0.0);
  return pending_local_.back().second;
}

double& PartialPlacement::rack_pending_slot(std::uint32_t rack) {
  if (rep_ == Rep::kMap) return pending_rack_uplink_[rack];
  if (rep_ == Rep::kFlat) {
    bool inserted = false;
    return rack_flat_.get_or_insert(rack, inserted);
  }
  for (auto& [k, v] : rack_local_) {
    if (k == rack) return v;
  }
  const double* up = parent_->rack_pending_find(rack);
  rack_local_.emplace_back(rack, up ? *up : 0.0);
  return rack_local_.back().second;
}

double* PartialPlacement::pending_find_mut(dc::HostId host) {
  if (rep_ == Rep::kMap) {
    const auto it = pending_uplink_.find(host);
    return it == pending_uplink_.end() ? nullptr : &it->second;
  }
  if (rep_ == Rep::kFlat) {
    return pending_flat_.find(static_cast<std::uint64_t>(host));
  }
  for (auto& [k, v] : pending_local_) {
    if (k == host) return &v;
  }
  const double* up = parent_->pending_find(host);
  if (up == nullptr) return nullptr;
  pending_local_.emplace_back(host, *up);
  return &pending_local_.back().second;
}

double* PartialPlacement::rack_pending_find_mut(std::uint32_t rack) {
  if (rep_ == Rep::kMap) {
    const auto it = pending_rack_uplink_.find(rack);
    return it == pending_rack_uplink_.end() ? nullptr : &it->second;
  }
  if (rep_ == Rep::kFlat) {
    return rack_flat_.find(static_cast<std::uint64_t>(rack));
  }
  for (auto& [k, v] : rack_local_) {
    if (k == rack) return &v;
  }
  const double* up = parent_->rack_pending_find(rack);
  if (up == nullptr) return nullptr;
  rack_local_.emplace_back(rack, *up);
  return &rack_local_.back().second;
}

}  // namespace ostro::core
