#include "core/partial.h"

#include <algorithm>
#include <stdexcept>

namespace ostro::core {
namespace {

/// Scope a diversity level forces between two co-zoned nodes.
[[nodiscard]] dc::Scope forced_scope(topo::DiversityLevel level) noexcept {
  switch (level) {
    case topo::DiversityLevel::kHost: return dc::Scope::kSameRack;
    case topo::DiversityLevel::kRack: return dc::Scope::kSamePod;
    case topo::DiversityLevel::kPod: return dc::Scope::kSameSite;
    case topo::DiversityLevel::kDatacenter: return dc::Scope::kCrossSite;
  }
  return dc::Scope::kSameRack;
}

}  // namespace

PartialPlacement::PartialPlacement(const topo::AppTopology& topology,
                                   const dc::Occupancy& base,
                                   const Objective& objective)
    : topology_(&topology),
      base_(&base),
      objective_(&objective),
      assignment_(topology.node_count(), dc::kInvalidHost) {
  for (const auto& edge : topology_->edges()) {
    bound_sum_ += edge_lower_bound(edge);
  }
}

topo::Resources PartialPlacement::available(dc::HostId host) const {
  topo::Resources avail = base_->available(host);
  const auto it = host_delta_.find(host);
  if (it != host_delta_.end()) avail -= it->second;
  return avail;
}

double PartialPlacement::link_available(dc::LinkId link) const {
  double avail = base_->link_available_mbps(link);
  const auto it = link_delta_.find(link);
  if (it != link_delta_.end()) avail -= it->second;
  return avail;
}

bool PartialPlacement::is_active(dc::HostId host) const {
  if (base_->is_active(host)) return true;
  return std::find(newly_active_.begin(), newly_active_.end(), host) !=
         newly_active_.end();
}

bool PartialPlacement::capacity_ok(topo::NodeId node, dc::HostId host) const {
  return topology_->node(node).requirements.fits_within(available(host));
}

bool PartialPlacement::zones_ok(topo::NodeId node, dc::HostId host) const {
  const dc::DataCenter& datacenter = base_->datacenter();
  for (const auto zone_index : topology_->zones_of(node)) {
    const auto& zone = topology_->zones()[zone_index];
    for (const topo::NodeId member : zone.members) {
      if (member == node) continue;
      const dc::HostId member_host = assignment_[member];
      if (member_host == dc::kInvalidHost) continue;
      if (!datacenter.separated_at(host, member_host, zone.level)) {
        return false;
      }
    }
  }
  return true;
}

bool PartialPlacement::bandwidth_ok(topo::NodeId node, dc::HostId host) const {
  // Pipes from `node` to already-placed neighbors may share physical links
  // (e.g. both traverse the candidate host's uplink), so demands are
  // aggregated per link before the availability check.  The distinct-link
  // fan is tiny (at most 4 + 4 x degree, mostly shared), so a flat scratch
  // with linear-scan aggregation replaces the per-call hash map and
  // allocates nothing once warm.
  thread_local std::vector<std::pair<dc::LinkId, double>> demand;
  demand.clear();
  const dc::DataCenter& datacenter = base_->datacenter();
  for (const auto& nb : topology_->neighbors(node)) {
    const dc::HostId other = assignment_[nb.node];
    if (other == dc::kInvalidHost) continue;
    const dc::PathLinks path = datacenter.path_between(host, other);
    for (const dc::LinkId link : path) {
      bool found = false;
      for (auto& [seen, mbps] : demand) {
        if (seen == link) {
          mbps += nb.bandwidth_mbps;
          found = true;
          break;
        }
      }
      if (!found) demand.emplace_back(link, nb.bandwidth_mbps);
    }
  }
  constexpr double kEps = 1e-9;
  for (const auto& [link, mbps] : demand) {
    if (mbps > link_available(link) + kEps) return false;
  }
  return true;
}

bool PartialPlacement::tags_ok(topo::NodeId node, dc::HostId host) const {
  const auto& required = topology_->node(node).required_tags;
  if (required.empty()) return true;
  return datacenter().host(host).has_all_tags(required);
}

bool PartialPlacement::affinity_ok(topo::NodeId node, dc::HostId host) const {
  const dc::DataCenter& datacenter_ref = base_->datacenter();
  for (const auto group_index : topology_->affinities_of(node)) {
    const auto& group = topology_->affinities()[group_index];
    for (const topo::NodeId member : group.members) {
      if (member == node) continue;
      const dc::HostId member_host = assignment_[member];
      if (member_host == dc::kInvalidHost) continue;
      // Affinity is the negation of diversity at the same level: the two
      // hosts must NOT be separated at `group.level`.
      if (datacenter_ref.separated_at(host, member_host, group.level)) {
        return false;
      }
    }
  }
  return true;
}

bool PartialPlacement::latency_ok(topo::NodeId node, dc::HostId host) const {
  const dc::DataCenter& datacenter_ref = base_->datacenter();
  for (const auto& nb : topology_->neighbors(node)) {
    const auto& edge = topology_->edges()[nb.edge_index];
    if (edge.max_latency_us <= 0.0) continue;
    const dc::HostId other = assignment_[nb.node];
    if (other == dc::kInvalidHost) continue;
    const dc::Scope scope = datacenter_ref.scope_between(host, other);
    if (datacenter_ref.scope_latency_us(scope) > edge.max_latency_us) {
      return false;
    }
  }
  return true;
}

dc::Scope PartialPlacement::zone_scope_to_host(topo::NodeId node,
                                               dc::HostId host) const {
  const dc::DataCenter& datacenter = base_->datacenter();
  dc::Scope scope = dc::Scope::kSameHost;
  for (const auto zone_index : topology_->zones_of(node)) {
    const auto& zone = topology_->zones()[zone_index];
    for (const topo::NodeId member : zone.members) {
      if (member == node) continue;
      const dc::HostId member_host = assignment_[member];
      if (member_host == dc::kInvalidHost) continue;
      // `node` must sit at least `zone.level`-separated from member_host;
      // that matters for its distance to `host` only when `host` is within
      // the forbidden unit around member_host.
      if (!datacenter.separated_at(host, member_host, zone.level)) {
        scope = std::max(scope, forced_scope(zone.level));
      }
    }
  }
  return scope;
}

dc::Scope PartialPlacement::min_scope_to_host(topo::NodeId node,
                                              dc::HostId host) const {
  dc::Scope scope = zone_scope_to_host(node, host);
  if (scope == dc::Scope::kSameHost &&
      !topology_->node(node).requirements.fits_within(available(host))) {
    scope = dc::Scope::kSameRack;  // cannot co-locate; >= 2 links away
  }
  return scope;
}

double PartialPlacement::edge_lower_bound(const topo::Edge& edge) const {
  const bool a_placed = assignment_[edge.a] != dc::kInvalidHost;
  const bool b_placed = assignment_[edge.b] != dc::kInvalidHost;
  if (a_placed && b_placed) return 0.0;  // actual cost lives in ubw_

  if (!a_placed && !b_placed) {
    dc::Scope scope = dc::Scope::kSameHost;
    if (const auto level = topology_->required_separation(edge.a, edge.b)) {
      scope = forced_scope(*level);
    }
    if (scope == dc::Scope::kSameHost) {
      const topo::Resources combined = topology_->node(edge.a).requirements +
                                       topology_->node(edge.b).requirements;
      if (!combined.fits_within(datacenter().max_host_capacity())) {
        scope = dc::Scope::kSameRack;
      }
    }
    return Objective::edge_cost(edge.bandwidth_mbps, scope);
  }

  const topo::NodeId placed = a_placed ? edge.a : edge.b;
  const topo::NodeId free = a_placed ? edge.b : edge.a;
  const dc::Scope scope = min_scope_to_host(free, assignment_[placed]);
  return Objective::edge_cost(edge.bandwidth_mbps, scope);
}

bool PartialPlacement::has_link_overcommit() const {
  constexpr double kEps = 1e-6;
  for (const auto& [link, used] : link_delta_) {
    if (used > base_->link_available_mbps(link) + kEps) return true;
  }
  return false;
}

double PartialPlacement::pending_uplink_mbps(dc::HostId host) const {
  const auto it = pending_uplink_.find(host);
  return it == pending_uplink_.end() ? 0.0 : it->second;
}

double PartialPlacement::pending_rack_uplink_mbps(std::uint32_t rack) const {
  const auto it = pending_rack_uplink_.find(rack);
  return it == pending_rack_uplink_.end() ? 0.0 : it->second;
}

double PartialPlacement::placed_neighbor_demand(
    topo::NodeId node, std::vector<dc::HostId>& hosts_out) const {
  double demand = 0.0;
  for (const auto& nb : topology_->neighbors(node)) {
    const dc::HostId other = assignment_[nb.node];
    if (other == dc::kInvalidHost) continue;
    demand += nb.bandwidth_mbps;
    hosts_out.push_back(other);
  }
  return demand;
}

double PartialPlacement::edge_bound(std::uint32_t edge_index) const {
  if (edge_index >= topology_->edge_count()) {
    throw std::out_of_range("PartialPlacement::edge_bound: bad index");
  }
  return edge_lower_bound(topology_->edges()[edge_index]);
}

void PartialPlacement::collect_affected_edges(
    topo::NodeId node, dc::HostId host,
    std::vector<std::uint32_t>& out) const {
  // (1) Pipes of the node itself.
  for (const auto& nb : topology_->neighbors(node)) {
    out.push_back(nb.edge_index);
  }
  // (2) Pipes from residents of `host` to unplaced endpoints: the host's
  // residual shrinks, which may push their co-location bound to >= 1 rack.
  for (topo::NodeId v = 0; v < assignment_.size(); ++v) {
    if (assignment_[v] != host) continue;
    for (const auto& nb : topology_->neighbors(v)) {
      if (assignment_[nb.node] == dc::kInvalidHost) {
        out.push_back(nb.edge_index);
      }
    }
  }
  // (3) Pipes of unplaced zone-mates of `node` whose other endpoint is
  // placed: the new member placement may tighten zone_scope_to_host.
  for (const auto zone_index : topology_->zones_of(node)) {
    const auto& zone = topology_->zones()[zone_index];
    for (const topo::NodeId member : zone.members) {
      if (member == node || assignment_[member] != dc::kInvalidHost) continue;
      for (const auto& nb : topology_->neighbors(member)) {
        if (assignment_[nb.node] != dc::kInvalidHost) {
          out.push_back(nb.edge_index);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

void PartialPlacement::place(topo::NodeId node, dc::HostId host) {
  if (node >= assignment_.size()) {
    throw std::logic_error("PartialPlacement::place: bad node id");
  }
  if (assignment_[node] != dc::kInvalidHost) {
    throw std::logic_error("PartialPlacement::place: node already placed");
  }
  if (host >= datacenter().host_count()) {
    throw std::logic_error("PartialPlacement::place: bad host id");
  }

  std::vector<std::uint32_t> affected;
  collect_affected_edges(node, host, affected);
  double old_bounds = 0.0;
  for (const auto e : affected) {
    old_bounds += edge_lower_bound(topology_->edges()[e]);
  }

  const topo::Node& n = topology_->node(node);
  auto [it, inserted] = host_delta_.try_emplace(host);
  it->second += n.requirements;
  if (inserted) used_hosts_.push_back(host);
  if (!base_->is_active(host) &&
      std::find(newly_active_.begin(), newly_active_.end(), host) ==
          newly_active_.end()) {
    newly_active_.push_back(host);
  }
  assignment_[node] = host;
  ++placed_count_;

  // Pipes that are now fully placed: add their actual cost, reserve
  // bandwidth along the physical path, and resolve the counterpart host's
  // pending-uplink obligation.  Pipes to still-unplaced neighbors become
  // this host's pending obligation.
  const dc::DataCenter& datacenter_ref = base_->datacenter();
  const std::uint32_t host_rack = datacenter_ref.ancestors(host).rack;
  for (const auto& nb : topology_->neighbors(node)) {
    const dc::HostId other = assignment_[nb.node];
    if (other == dc::kInvalidHost) {
      pending_uplink_[host] += nb.bandwidth_mbps;
      pending_rack_uplink_[host_rack] += nb.bandwidth_mbps;
      continue;
    }
    auto pending_it = pending_uplink_.find(other);
    if (pending_it != pending_uplink_.end()) {
      pending_it->second = std::max(0.0, pending_it->second - nb.bandwidth_mbps);
    }
    auto rack_it =
        pending_rack_uplink_.find(datacenter_ref.ancestors(other).rack);
    if (rack_it != pending_rack_uplink_.end()) {
      rack_it->second = std::max(0.0, rack_it->second - nb.bandwidth_mbps);
    }
    const dc::Scope scope = datacenter_ref.scope_between(host, other);
    ubw_ += Objective::edge_cost(nb.bandwidth_mbps, scope);
    const dc::PathLinks path = datacenter_ref.path_between(host, other);
    for (const dc::LinkId link : path) {
      link_delta_[link] += nb.bandwidth_mbps;
    }
  }

  double new_bounds = 0.0;
  for (const auto e : affected) {
    new_bounds += edge_lower_bound(topology_->edges()[e]);
  }
  bound_sum_ += new_bounds - old_bounds;
}

}  // namespace ostro::core
