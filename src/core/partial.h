// Partial placement state used by every search algorithm.
//
// A PartialPlacement layers the tentative placement of one application on
// top of a const base Occupancy: per-host resource deltas, per-link
// bandwidth deltas, the set of newly activated hosts, the committed
// bandwidth cost u_bw, and an admissible lower bound on the bandwidth cost
// of the pipes that are not fully placed yet.  Copying a PartialPlacement is
// cheap — O(|V| + deltas), independent of |E| — which is what lets BA*
// branch thousands of search paths off a shared base state (Section III-B
// of the paper).
//
// The lower bound per pipe is the separation the constraints *force*:
//  - a diversity zone covering both endpoints forces at least its level;
//  - two endpoints whose combined requirements exceed the largest host in
//    the data center can never share a host (>= rack scope, 2 links);
//  - once one endpoint is placed on host h, zone members already placed
//    tighten the scope the free endpoint can reach relative to h, and a
//    free endpoint that no longer fits h's residual capacity cannot land
//    on h (>= 2 links).
// Everything else is optimistically assumed co-locatable (0 links), so the
// bound never exceeds the true completion cost; BA* relies on this for
// optimality (the "admissible heuristic" of Section III-A-2).  The sum of
// all pipe bounds is maintained incrementally and exactly: place() visits
// precisely the pipes whose bound its mutation can change (the new node's
// pipes, pipes of other residents of the chosen host, and pipes constrained
// by the node's zones) and applies the delta.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/objective.h"
#include "core/types.h"
#include "datacenter/occupancy.h"
#include "topology/app_topology.h"
#include "util/arena.h"

namespace ostro::core {

class PartialPlacement {
 public:
  /// `use_prune_labels` opts the admissible bound into the precomputed
  /// dc::PruneLabels tighteners (SearchConfig::use_prune_labels); the
  /// default keeps the reference bound so direct constructions (tests,
  /// differential baselines) are unaffected.
  PartialPlacement(const topo::AppTopology& topology,
                   const dc::Occupancy& base, const Objective& objective,
                   bool use_prune_labels = false);

  /// Copies are always self-contained: copying a pooled chain state (see
  /// branch_from) flattens it, so the copy never references arena memory
  /// and may outlive the SearchArena that produced the original.  This is
  /// what makes incumbent hand-off and EG reruns safe under kPooled.
  PartialPlacement(const PartialPlacement& other);
  PartialPlacement& operator=(const PartialPlacement& other);
  PartialPlacement(PartialPlacement&&) = default;
  PartialPlacement& operator=(PartialPlacement&&) = default;
  ~PartialPlacement() = default;

  // ---- placement progress ----
  [[nodiscard]] bool is_placed(topo::NodeId node) const {
    return assignment_[node] != dc::kInvalidHost;
  }
  [[nodiscard]] dc::HostId host_of(topo::NodeId node) const {
    return assignment_[node];
  }
  [[nodiscard]] std::size_t placed_count() const noexcept { return placed_count_; }
  [[nodiscard]] bool complete() const noexcept {
    return placed_count_ == assignment_.size();
  }
  [[nodiscard]] const net::Assignment& assignment() const noexcept {
    return assignment_;
  }

  // ---- resource views (base occupancy minus this placement's deltas) ----
  [[nodiscard]] topo::Resources available(dc::HostId host) const;
  [[nodiscard]] double link_available(dc::LinkId link) const;
  /// Host is active in the base occupancy or has a node of this placement.
  [[nodiscard]] bool is_active(dc::HostId host) const;

  // ---- constraint checks (Section II-B-2; tags/affinity/latency are the
  // ---- property extensions of the introduction and Section VI) ----
  [[nodiscard]] bool capacity_ok(topo::NodeId node, dc::HostId host) const;
  [[nodiscard]] bool zones_ok(topo::NodeId node, dc::HostId host) const;
  /// Pipes to already-placed neighbors, aggregated per physical link.
  [[nodiscard]] bool bandwidth_ok(topo::NodeId node, dc::HostId host) const;
  /// Host carries every hardware tag the node requires.
  [[nodiscard]] bool tags_ok(topo::NodeId node, dc::HostId host) const;
  /// Placed members of the node's affinity groups share `host`'s unit.
  [[nodiscard]] bool affinity_ok(topo::NodeId node, dc::HostId host) const;
  /// Latency-capped pipes to placed neighbors stay within budget.
  [[nodiscard]] bool latency_ok(topo::NodeId node, dc::HostId host) const;
  /// Every constraint except pipe bandwidth — what the EG_C baseline
  /// checks ("merely performs bin-packing based on available host
  /// resources", Section IV-A); its placements may overcommit links.
  [[nodiscard]] bool can_place_except_bandwidth(topo::NodeId node,
                                                dc::HostId host) const {
    return capacity_ok(node, host) && tags_ok(node, host) &&
           zones_ok(node, host) && affinity_ok(node, host) &&
           latency_ok(node, host);
  }
  [[nodiscard]] bool can_place(topo::NodeId node, dc::HostId host) const {
    return can_place_except_bandwidth(node, host) && bandwidth_ok(node, host);
  }

  /// True when some physical link carries more than its availability —
  /// only possible for placements built without the bandwidth constraint.
  [[nodiscard]] bool has_link_overcommit() const;

  /// Commits `node` to `host`; the caller must have verified can_place().
  /// Throws std::logic_error for an already-placed node or invalid host.
  void place(topo::NodeId node, dc::HostId host);

  // ---- objective bookkeeping ----
  /// Committed u_bw: link-weighted bandwidth of fully placed pipes.
  [[nodiscard]] double ubw() const noexcept { return ubw_; }
  /// Committed u_c: hosts idle in the base that this placement activated.
  [[nodiscard]] int new_active_hosts() const noexcept {
    return static_cast<int>(newly_active_.size());
  }
  /// Admissible lower bound on the u_bw still to be added.
  [[nodiscard]] double remaining_bw_bound() const noexcept { return bound_sum_; }
  /// Objective value of the committed part only.
  [[nodiscard]] double utility_committed() const noexcept {
    return objective_->utility(ubw_, new_active_hosts());
  }
  /// Committed + admissible bound: never exceeds the utility of any feasible
  /// completion of this partial placement.
  [[nodiscard]] double utility_bound() const noexcept {
    return objective_->utility(ubw_ + bound_sum_, new_active_hosts());
  }

  [[nodiscard]] const topo::AppTopology& topology() const noexcept {
    return *topology_;
  }
  [[nodiscard]] const dc::Occupancy& base() const noexcept { return *base_; }
  [[nodiscard]] const dc::DataCenter& datacenter() const noexcept {
    return base_->datacenter();
  }
  [[nodiscard]] const Objective& objective() const noexcept {
    return *objective_;
  }

  /// Whether the admissible bound (and the candidate descent) consult the
  /// base occupancy's dc::PruneLabels.  Fixed at construction; copies,
  /// branch_from and assign_pooled_flat all inherit it so every state of
  /// one search prices pipes identically (the lazy-priority invariant).
  [[nodiscard]] bool use_prune_labels() const noexcept {
    return use_prune_labels_;
  }

  /// Hosts carrying at least one node of this placement (the H* of
  /// Algorithm 1), in placement order without duplicates.
  [[nodiscard]] const std::vector<dc::HostId>& used_hosts() const noexcept {
    return used_hosts_;
  }

  /// Lowest scope `node` could have relative to `host` given zone members
  /// already placed and `host`'s residual capacity (kSameHost when nothing
  /// forbids co-location).
  [[nodiscard]] dc::Scope min_scope_to_host(topo::NodeId node,
                                            dc::HostId host) const;
  /// Zone-forced part of min_scope_to_host (ignores capacity).
  [[nodiscard]] dc::Scope zone_scope_to_host(topo::NodeId node,
                                             dc::HostId host) const;

  /// Current lower bound of one pipe (0 for fully placed pipes); computed
  /// on demand from the current state.
  [[nodiscard]] double edge_bound(std::uint32_t edge_index) const;

  /// Total bandwidth of pipes from nodes placed on `host` to still-unplaced
  /// nodes — the uplink demand this host will face if none of those
  /// neighbors co-locate.  EG's feasibility-risk screen compares it against
  /// the uplink headroom (see Estimator::candidate_estimate).
  [[nodiscard]] double pending_uplink_mbps(dc::HostId host) const;

  /// Same obligation aggregated at the rack level: pipes from nodes placed
  /// in `rack` to still-unplaced nodes, i.e. the ToR-uplink demand if none
  /// of them land in the same rack.  Guards against a whole tier being
  /// packed into one rack until its ToR uplink can no longer carry the
  /// remaining pipes.
  [[nodiscard]] double pending_rack_uplink_mbps(std::uint32_t rack) const;

  /// Total bandwidth of `node`'s pipes to already-placed neighbors, with
  /// those neighbors' hosts appended to `hosts_out` (one entry per pipe).
  /// These are the inputs of candidate generation's uplink prune: every
  /// candidate host must carry the whole demand on its own uplink unless a
  /// placed neighbor sits in the same subtree (see core/candidates.h).
  [[nodiscard]] double placed_neighbor_demand(
      topo::NodeId node, std::vector<dc::HostId>& hosts_out) const;

  // ---- pooled search-core representation (SearchCore::kPooled) ----
  //
  // Under the pooled core the four delta maps switch to one of two
  // alternative representations (DESIGN.md section 11):
  //  * flat — self-contained open-addressing tables reserved once from the
  //    topology/DC bounds (util::FlatMap64);
  //  * chain — a parent pointer plus small per-level vectors of *absolute*
  //    shadowing entries, so branching costs O(delta) instead of
  //    O(|placed|).  Entries shadow (newest level wins) rather than add:
  //    the pending-uplink update is a non-additive clamp and floating-point
  //    summation order matters, so only replaying the reference operation
  //    sequence on absolute values stays bit-identical.
  // Chains longer than kFlattenThreshold are flattened eagerly; copies
  // always flatten (see the copy constructor).  The map representation —
  // the reference mode — is untouched.

  /// Rebuilds this object as a self-contained flat-representation copy of
  /// `src` (any representation), reusing every owned container's capacity.
  /// Used to convert the scheduler-built root state when a pooled search
  /// begins.
  void assign_pooled_flat(const PartialPlacement& src);

  /// Rebuilds this object as an O(delta) child of `parent`, which must be
  /// pooled and must outlive this object (both live in the same
  /// SearchArena).  Subsequent place() calls record deltas locally.
  void branch_from(const PartialPlacement& parent);

  /// True for flat/chain states (arena-managed); false for reference-mode
  /// map states.
  [[nodiscard]] bool pooled() const noexcept { return rep_ != Rep::kMap; }

  /// Approximate bytes retained by this state's owned containers; feeds the
  /// arena's "search.bytes_per_plan" accounting.
  [[nodiscard]] std::size_t pooled_bytes() const noexcept;

  /// Chain depth at which branch_from flattens: long chains make every
  /// lookup walk parents, while flattening costs one O(|placed|) copy.
  static constexpr std::uint32_t kFlattenThreshold = 8;

  /// Converts a chain state into a self-contained flat state in place by
  /// aggregating the parent chain newest-entry-first (no-op on non-chain
  /// states).  The pooled search flattens a state once it survives to
  /// expansion, so the whole child fan reads flat tables.
  void flatten_in_place();

  /// Chain depth from which an expanded state is flattened before its
  /// child fan is generated.  An expanded state is read by its entire
  /// candidate fan plus every child's branch_from, so deep chains tax
  /// every one of those reads; but the flatten itself costs an
  /// O(|placed|) table rebuild, which a shallow chain's reads never
  /// amortize.  Measured crossover on the Fig. 7 drain workloads: 4.
  static constexpr std::uint32_t kExpandFlattenDepth = 4;

  void flatten_for_expand() {
    if (rep_ == Rep::kChain && chain_len_ >= kExpandFlattenDepth) {
      flatten_in_place();
    }
  }

 private:
  enum class Rep : std::uint8_t { kMap, kFlat, kChain };
  /// Fills this state's (reserved, cleared) flat tables with the aggregate
  /// of `src`'s chain, newest level first.
  void flatten_tables_from(const PartialPlacement& src);
  /// Sizes the flat tables from the topology/DC bounds so steady-state
  /// inserts never rehash.
  void reserve_flat_tables();

  // Representation-dispatching accessors for the four delta tables.  The
  // kMap branches perform exactly the operation sequence the reference
  // containers did, so both modes stay bit-identical.
  [[nodiscard]] const topo::Resources* host_delta_find(dc::HostId host) const;
  [[nodiscard]] const double* link_delta_find(dc::LinkId link) const;
  [[nodiscard]] const double* pending_find(dc::HostId host) const;
  [[nodiscard]] const double* rack_pending_find(std::uint32_t rack) const;
  topo::Resources& host_delta_slot(dc::HostId host, bool& inserted);
  double& link_delta_slot(dc::LinkId link);
  double& pending_slot(dc::HostId host);
  double& rack_pending_slot(std::uint32_t rack);
  /// Mutable lookup that preserves find() semantics: returns nullptr when
  /// the key has never been written anywhere in the chain, otherwise a
  /// writable this-level slot seeded with the current absolute value.
  double* pending_find_mut(dc::HostId host);
  double* rack_pending_find_mut(std::uint32_t rack);
  [[nodiscard]] double edge_lower_bound(const topo::Edge& edge) const;
  /// Edge indices whose bound can change when `node` lands on `host`.
  void collect_affected_edges(topo::NodeId node, dc::HostId host,
                              std::vector<std::uint32_t>& out) const;

  const topo::AppTopology* topology_;
  const dc::Occupancy* base_;
  const Objective* objective_;
  bool use_prune_labels_ = false;

  net::Assignment assignment_;
  std::size_t placed_count_ = 0;
  // Reference (kMap) representation of the four delta tables; empty and
  // unused while pooled.
  std::unordered_map<dc::HostId, topo::Resources> host_delta_;
  std::unordered_map<dc::LinkId, double> link_delta_;
  std::unordered_map<dc::HostId, double> pending_uplink_;
  std::unordered_map<std::uint32_t, double> pending_rack_uplink_;
  std::vector<dc::HostId> newly_active_;
  std::vector<dc::HostId> used_hosts_;

  double ubw_ = 0.0;
  double bound_sum_ = 0.0;

  // Pooled representation.  kFlat states own the four flat tables; kChain
  // states own only the per-level shadow vectors and read through parent_.
  Rep rep_ = Rep::kMap;
  const PartialPlacement* parent_ = nullptr;  // kChain only; same arena
  std::uint32_t chain_len_ = 0;
  util::FlatMap64<topo::Resources> host_flat_;
  util::FlatMap64<double> link_flat_;
  util::FlatMap64<double> pending_flat_;
  util::FlatMap64<double> rack_flat_;
  std::vector<std::pair<dc::HostId, topo::Resources>> host_local_;
  std::vector<std::pair<dc::LinkId, double>> link_local_;
  std::vector<std::pair<dc::HostId, double>> pending_local_;
  std::vector<std::pair<std::uint32_t, double>> rack_local_;
};

}  // namespace ostro::core
