// ShardRouter — the sharded scale-out front end (ROADMAP item 1).
//
// One PlacementService per dc::ShardLayout shard, each with its own writer
// lock, FeasibilityIndex, PruneLabels and commit epochs, composed behind a
// router that:
//
//   1. *scores* shards from their FeasibilityIndex root aggregates (filter:
//      the component-wise max free capacity must fit the stack's largest
//      node; score: feasible-host count, descending, ties to the lowest
//      shard id) and tries to place the whole stack inside each of the top
//      ShardConfig::router_max_shard_attempts shards — the common case,
//      touching exactly one shard lock;
//   2. falls back to *cross-shard* placement when no single shard commits:
//      plan against a stitched global snapshot (per-shard snapshots overlaid
//      onto one global Occupancy plus the ledger's shared-uplink usage),
//      then run a two-phase validate-commit — lock every straddled shard's
//      writer lock in ascending shard-id order, stage one OccupancyDelta per
//      participant (staging validates capacity/bandwidth against the live
//      state), reserve the shared wide-area uplinks through the
//      CrossShardLedger, and either apply every delta or abort with nothing
//      touched.  An abort replans from a fresh stitch, up to
//      router_max_cross_retries times.
//
// Global commit order: every commit (single-shard or cross-shard) and every
// release draws a strictly increasing global epoch under the router's log
// mutex WHILE the participating shard writer lock(s) are held, so the
// per-shard subsequences of the global epoch order match each shard's
// actual mutation order — a serial replay of the (optional) commit log in
// global-epoch order reproduces every shard's occupancy bit for bit
// (replay_commit_log; raced under TSan by tests/core/shard_race_test.cpp).
//
// Lock order (deadlock freedom): shard writer locks in ascending shard id
// -> ledger mutex -> log mutex.  The registry mutex is only ever held
// alone.
//
// Telemetry under "router." / "shard.": counters router.requests,
// router.shard_attempts, router.single_shard_committed,
// router.cross_shard_plans, router.cross_shard_committed,
// router.cross_shard_aborts, router.releases, shard.ledger_reservations,
// shard.ledger_conflicts, shard.ledger_releases; summary
// router.stitch_seconds.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/service.h"
#include "datacenter/shard.h"

namespace ostro::core {

/// Shard-layer knobs, separate from SearchConfig (which shapes one search;
/// these shape the fleet).
struct ShardConfig {
  /// Number of occupancy shards (1 = monolithic, bit-identical to a plain
  /// PlacementService).  Must not exceed the datacenter's pod count.
  std::uint32_t shards = 1;
  /// How many of the best-scoring shards to try before falling back to
  /// cross-shard placement.
  std::uint32_t router_max_shard_attempts = 2;
  /// Replans of the cross-shard path after a two-phase-commit abort.
  std::uint32_t router_max_cross_retries = 2;
  /// When false, a stack no single shard can hold fails instead of taking
  /// the cross-shard path.
  bool router_allow_cross_shard = true;
  /// Records every commit/release in the router's commit log (the serial-
  /// replay correctness harness; unbounded memory — tests/benches only).
  bool router_commit_log = false;

  /// Throws std::invalid_argument on out-of-range values.
  void validate() const;
};

/// Bandwidth ledger for the shared uplinks of split sites: the only links a
/// cross-shard placement can touch that no participant shard owns.
/// Internally synchronized; reserve order is preserved per link so a serial
/// replay of the same op sequence reproduces the accumulators bit for bit.
class CrossShardLedger {
 public:
  struct Op {
    dc::LinkId link = 0;  ///< GLOBAL link id
    double mbps = 0.0;
  };

  explicit CrossShardLedger(const dc::DataCenter& global);

  /// All-or-nothing: applies every op in order with the same accumulate-
  /// and-check arithmetic as dc::Occupancy::reserve_link, or restores the
  /// prior state and returns false when any op would exceed capacity.
  [[nodiscard]] bool try_reserve(const std::vector<Op>& ops);
  /// Releases previously reserved amounts (same clamping as
  /// Occupancy::release_link).  Throws std::invalid_argument when an op
  /// releases more than is reserved — corrupted accounting, never benign.
  void release(const std::vector<Op>& ops);

  [[nodiscard]] double used_mbps(dc::LinkId link) const;
  /// Adds the ledger's usage onto a global-datacenter occupancy (the final
  /// stitch step of ShardRouter::stitched_snapshot).
  void overlay(dc::Occupancy& global_occupancy) const;

 private:
  const dc::DataCenter* dc_;
  mutable std::mutex mutex_;
  std::vector<double> used_;  // by global LinkId; nonzero only on shared links
};

/// One shard's slice of a placement: the staged ops `decompose_ops` routes
/// to it.  Local ids; op order mirrors net::PlacementTransaction exactly
/// (nodes in topology order, then path links in edge/path order).
struct ShardOps {
  std::uint32_t shard = 0;
  /// (local host, requirements) per node of the stack on this shard.
  std::vector<std::pair<dc::HostId, topo::Resources>> host_loads;
  /// (local link, mbps) per traversed owned link, edge-major path order.
  std::vector<std::pair<dc::LinkId, double>> link_mbps;
  /// Local hosts of this shard in assignment order (duplicates kept):
  /// the release path's deactivate_if_idle walk, mirroring
  /// net::release_placement.
  std::vector<dc::HostId> touched_hosts;
};

/// A placement split by owning shard plus the ledger ops for shared links.
struct DecomposedOps {
  std::vector<ShardOps> shards;           ///< participants, ascending shard id
  std::vector<CrossShardLedger::Op> ledger;  ///< shared-link ops, edge order
};

/// Splits a stack's global assignment into per-shard staged ops and ledger
/// ops.  Every link of every edge path is routed to its owner (the
/// ShardLayout invariant guarantees totality).  Shared by the router's
/// two-phase commit, the release path, and replay_commit_log — one routing
/// function, so live and replayed commits cannot diverge.
[[nodiscard]] DecomposedOps decompose_ops(const dc::ShardLayout& layout,
                                          const topo::AppTopology& topology,
                                          const net::Assignment& assignment);

class ShardRouter {
 public:
  enum class CommitKind : std::uint8_t { kPlace, kRelease };

  /// One entry of the global-epoch commit log (router_commit_log).
  struct CommitRecord {
    std::uint64_t global_epoch = 0;
    CommitKind kind = CommitKind::kPlace;
    StackId stack_id = 0;
    bool cross_shard = false;
    std::shared_ptr<const topo::AppTopology> topology;
    net::Assignment assignment;  ///< GLOBAL host ids
  };

  /// Outcome of one routed placement request.
  struct Result {
    /// Final placement (assignment in GLOBAL host ids once committed) plus
    /// aggregated conflict/retry counts across every shard attempt.
    ServiceResult service;
    StackId stack_id = 0;           ///< nonzero iff committed
    std::uint32_t shard = 0;        ///< committing shard (single-shard only)
    bool cross_shard = false;
    std::uint32_t shard_attempts = 0;
    std::uint64_t global_epoch = 0;  ///< router epoch of the commit
  };

  /// Partitions `global` per `config.shards` and builds one scheduler +
  /// service per shard, each with `defaults` as its SearchConfig.
  /// `global` must outlive the router.
  ShardRouter(const dc::DataCenter& global, const ShardConfig& config,
              SearchConfig defaults = {});

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  [[nodiscard]] const dc::ShardLayout& layout() const noexcept {
    return layout_;
  }
  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return layout_.shard_count();
  }
  [[nodiscard]] const ShardConfig& config() const noexcept { return config_; }
  [[nodiscard]] PlacementService& service(std::uint32_t shard) {
    return *services_.at(shard);
  }
  [[nodiscard]] const CrossShardLedger& ledger() const noexcept {
    return ledger_;
  }

  /// Routes one stack: single-shard fast path, then cross-shard fallback.
  /// The topology is shared (kept alive in the router's stack registry
  /// until release_stack).
  Result place(std::shared_ptr<const topo::AppTopology> topology,
               Algorithm algorithm);
  Result place(std::shared_ptr<const topo::AppTopology> topology,
               Algorithm algorithm, const SearchConfig& config);

  /// Releases a routed stack: exact per-shard staged release (mirroring
  /// net::release_placement bit for bit) plus the ledger's shared-link
  /// amounts.  Returns false when the id is not (or no longer) live.
  bool release_stack(StackId id);

  [[nodiscard]] std::size_t live_stacks() const;

  /// Global-datacenter occupancy equal to the sum of every shard's state
  /// plus the ledger — the planning base of the cross-shard path, and the
  /// differential anchor of the cross-shard accounting tests (bit-identical
  /// to a monolithic occupancy that performed the same logical mutations).
  [[nodiscard]] dc::Occupancy stitched_snapshot() const;

  /// Copy of the commit log (empty unless ShardConfig::router_commit_log).
  [[nodiscard]] std::vector<CommitRecord> commit_log() const;

  /// Test instrumentation: runs before each cross-shard two-phase-commit
  /// attempt, after planning, with no lock held.  Deterministic abort tests
  /// inject competing commits here.  Set before concurrent use.
  void set_pre_commit_hook(std::function<void(std::uint32_t attempt)> hook) {
    pre_commit_hook_ = std::move(hook);
  }

 private:
  struct RouterStack {
    std::shared_ptr<const topo::AppTopology> topology;
    net::Assignment assignment;  // global host ids
    bool cross_shard = false;
  };

  /// Draws the next global epoch and (when enabled) appends a log record.
  /// Called while the participating shard writer lock(s) are held.
  std::uint64_t append_commit(CommitKind kind, StackId stack_id,
                              bool cross_shard,
                              const std::shared_ptr<const topo::AppTopology>& topology,
                              const net::Assignment& assignment);

  /// The cross-shard two-phase validate-commit.  True on commit (fills the
  /// epoch); false on a capacity/ledger conflict with no state touched.
  bool try_two_phase_commit(
      const std::shared_ptr<const topo::AppTopology>& topology,
      const net::Assignment& assignment, StackId stack_id,
      std::uint64_t* epoch);

  ShardConfig config_;
  dc::ShardLayout layout_;
  std::vector<std::unique_ptr<OstroScheduler>> schedulers_;
  std::vector<std::unique_ptr<PlacementService>> services_;
  CrossShardLedger ledger_;

  std::atomic<StackId> next_stack_id_{1};
  mutable std::mutex registry_mutex_;
  std::unordered_map<StackId, RouterStack> stacks_;

  mutable std::mutex log_mutex_;
  std::uint64_t global_epoch_ = 0;
  std::vector<CommitRecord> log_;

  std::function<void(std::uint32_t)> pre_commit_hook_;
};

/// Serial replay of a commit log: sorts `log` by global epoch and re-applies
/// every record through the same decompose/stage/apply path the live router
/// used, onto fresh occupancies over `layout`'s shard DataCenters (index =
/// shard id) and, when non-null, a fresh `ledger`.  The TSan-raced stress
/// test asserts the result equals every live shard's occupancy bit for bit.
[[nodiscard]] std::vector<dc::Occupancy> replay_commit_log(
    const dc::ShardLayout& layout, std::vector<ShardRouter::CommitRecord> log,
    CrossShardLedger* ledger = nullptr);

}  // namespace ostro::core
