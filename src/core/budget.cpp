#include "core/budget.h"

#include <algorithm>
#include <cmath>

#include "util/metrics.h"

namespace ostro::core {
namespace {

[[nodiscard]] std::size_t clamp_budget(double value, std::size_t lo,
                                       std::size_t hi) noexcept {
  if (value <= static_cast<double>(lo)) return lo;
  if (value >= static_cast<double>(hi)) return hi;
  return static_cast<std::size_t>(value);
}

}  // namespace

std::size_t BudgetController::static_estimate(
    std::size_t node_count, std::size_t host_count) const noexcept {
  return node_count * std::min(host_count, policy_.fan_cap);
}

BudgetDecision BudgetController::decide(std::size_t node_count,
                                        std::size_t host_count,
                                        const SearchConfig& config) {
  if (config.budget_mode == BudgetMode::kFixed) {
    return {config.max_open_paths, config.dba_beam_width, 0, false};
  }
  static util::metrics::Counter& m_auto =
      util::metrics::counter("budget.auto_decisions");
  static util::metrics::Counter& m_warm =
      util::metrics::counter("budget.warm_decisions");
  static util::metrics::Summary& m_open =
      util::metrics::summary("budget.max_open_paths");
  static util::metrics::Summary& m_beam =
      util::metrics::summary("budget.beam_width");

  BudgetDecision decision;
  decision.beam_width = config.dba_beam_width;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (has_history_) {
      // Warm start: the measured peaks own the decision; the configured
      // seed ceiling no longer applies (in kAuto it seeds, not bounds).
      // Weakly-bounded searches (few bound prunes per generated path) grow
      // their queue faster than a truncated prior peak suggests, so they
      // get double headroom.
      decision.warm = true;
      const double headroom =
          policy_.peak_headroom *
          (ewma_bound_prune_ratio_ < 0.1 ? 2.0 : 1.0);
      decision.max_open_paths =
          clamp_budget(ewma_peak_ * headroom, policy_.floor_open_paths,
                       policy_.cap_open_paths);
    } else {
      // Cold start: static estimate, clamped, then capped by the
      // configured seed ceiling (an explicit ceiling below the floor is an
      // intentional tight-memory request and is honored verbatim).
      const double predicted =
          static_cast<double>(static_estimate(node_count, host_count)) *
          policy_.peak_headroom;
      decision.max_open_paths = clamp_budget(
          predicted, policy_.floor_open_paths, policy_.cap_open_paths);
      if (config.max_open_paths != 0) {
        decision.max_open_paths =
            std::min(decision.max_open_paths, config.max_open_paths);
      }
    }
  }
  m_auto.inc();
  if (decision.warm) m_warm.inc();
  m_open.observe(static_cast<double>(decision.max_open_paths));
  m_beam.observe(static_cast<double>(decision.beam_width));
  return decision;
}

std::optional<BudgetDecision> BudgetController::widen(
    const BudgetDecision& previous, const SearchConfig& config) {
  if (previous.attempt >=
      static_cast<int>(config.budget_max_retries)) {
    return std::nullopt;
  }
  // An unlimited budget that still valve-fired cannot happen (the valve
  // never fires at 0), and a budget already at the cap has nowhere to go.
  if (previous.max_open_paths == 0 ||
      previous.max_open_paths >= policy_.cap_open_paths) {
    return std::nullopt;
  }
  static util::metrics::Counter& m_retries =
      util::metrics::counter("budget.retries");
  static util::metrics::Summary& m_open =
      util::metrics::summary("budget.max_open_paths");

  BudgetDecision next = previous;
  ++next.attempt;
  const double widened = static_cast<double>(previous.max_open_paths) *
                         config.budget_widen_factor;
  // Jump at least to the floor: a deliberately tiny seed ceiling should
  // reach a workable budget in one rung, not crawl up from single digits.
  next.max_open_paths =
      clamp_budget(std::max(widened,
                            static_cast<double>(policy_.floor_open_paths)),
                   1, policy_.cap_open_paths);
  if (next.beam_width != 0) {
    next.beam_width = std::min(next.beam_width * 2, policy_.beam_cap);
  }
  m_retries.inc();
  m_open.observe(static_cast<double>(next.max_open_paths));
  return next;
}

void BudgetController::observe(const BudgetDecision& decision,
                               const SearchStats& stats) {
  static util::metrics::Counter& m_valve =
      util::metrics::counter("budget.valve_fires");
  if (stats.hit_open_limit) m_valve.inc();
  (void)decision;
  const auto peak = static_cast<double>(stats.open_queue_peak);
  const double prune_ratio =
      static_cast<double>(stats.paths_pruned_bound) /
      static_cast<double>(std::max<std::uint64_t>(1, stats.paths_generated));
  const std::lock_guard<std::mutex> lock(mutex_);
  if (has_history_) {
    ewma_peak_ = policy_.ewma_alpha * peak +
                 (1.0 - policy_.ewma_alpha) * ewma_peak_;
    ewma_bound_prune_ratio_ =
        policy_.ewma_alpha * prune_ratio +
        (1.0 - policy_.ewma_alpha) * ewma_bound_prune_ratio_;
  } else {
    ewma_peak_ = peak;
    ewma_bound_prune_ratio_ = prune_ratio;
    has_history_ = true;
  }
}

void BudgetController::note_greedy_fallback() {
  static util::metrics::Counter& m_fallbacks =
      util::metrics::counter("budget.greedy_fallbacks");
  m_fallbacks.inc();
}

double BudgetController::smoothed_peak() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return has_history_ ? ewma_peak_ : 0.0;
}

}  // namespace ostro::core
