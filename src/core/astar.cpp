#include "core/astar.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <memory>
#include <optional>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "core/candidates.h"
#include "core/estimator.h"
#include "core/greedy.h"
#include "core/search_core.h"
#include "core/symmetry.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/timer.h"

namespace ostro::core {
namespace {

constexpr double kEps = 1e-12;

// Reference-mode open-list backing reservation (the quick win riding along
// with the pooled core): sized to max_open_paths but capped so the default
// 2M-path valve does not blindly reserve ~100 MB per plan.
constexpr std::size_t kOpenReserveCap = 64 * 1024;
constexpr std::size_t kDefaultOpenReserve = 4 * 1024;

[[nodiscard]] std::size_t open_reserve_hint(
    const SearchConfig& config) noexcept {
  if (config.max_open_paths == 0) return kDefaultOpenReserve;
  return std::min<std::size_t>(config.max_open_paths + 1, kOpenReserveCap);
}

[[nodiscard]] dc::Scope forced_scope(topo::DiversityLevel level) noexcept {
  switch (level) {
    case topo::DiversityLevel::kHost: return dc::Scope::kSameRack;
    case topo::DiversityLevel::kRack: return dc::Scope::kSamePod;
    case topo::DiversityLevel::kPod: return dc::Scope::kSameSite;
    case topo::DiversityLevel::kDatacenter: return dc::Scope::kCrossSite;
  }
  return dc::Scope::kSameRack;
}

/// Mirror of PartialPlacement's guard: the label feasibility counters track
/// compute (vcpus, mem_gb) and only bound nodes that require it.
[[nodiscard]] bool requires_compute(const topo::Resources& r) noexcept {
  constexpr double kReqEps = 1e-9;
  return r.vcpus > kReqEps && r.mem_gb > kReqEps;
}

/// BA* pops the least-priority path (best-first on the admissible bound,
/// Algorithm 2).  DBA* pops the deepest path first and breaks depth ties by
/// priority: a best-child-first depth-first search with backtracking.  This
/// is the concrete form of the paper's "the search is biased to be depth
/// first" — it guarantees the search keeps completing placements (one dive
/// is at most |V| pops), which is what makes DBA* an anytime algorithm
/// whose result improves with T.
///
/// Sequence numbers are unique among queued entries, so this comparator
/// defines a strict total order — the popped minimum is unique, which is
/// why the pooled core's OpenHeap (implementing the same order over packed
/// keys) pops the identical entry sequence.
struct PathOrder {
  bool depth_first = false;

  template <typename Entry>
  bool operator()(const Entry& a, const Entry& b) const noexcept {
    if (depth_first && a.depth != b.depth) {
      return a.depth < b.depth;  // max-heap on depth
    }
    if (a.priority != b.priority) return a.priority > b.priority;  // min-heap
    if (a.depth != b.depth) return a.depth < b.depth;  // deeper first
    return a.sequence > b.sequence;
  }
};

/// Admissible lower bound on the utility of completing `parent` with
/// `node` placed on `host`, computed without cloning the parent:
///   - pipes to placed neighbors get their actual cost;
///   - pipes to free neighbors get the separation that placing node@host
///     already forces (zones, pairwise zone with the node, residual);
///   - all other open pipes keep their parent bound.
/// Ignoring the zone-mate bound refreshes place() would do only loosens the
/// bound, so the estimate never exceeds the materialized value.
struct ChildScore {
  double ubw = 0.0;        ///< committed link-weighted bandwidth after the move
  double bound_rem = 0.0;  ///< admissible bound on the remaining pipes
  double uc = 0.0;         ///< newly-active hosts after the move
};

[[nodiscard]] ChildScore child_priority(const PartialPlacement& parent,
                                        topo::NodeId node, dc::HostId host) {
  const topo::AppTopology& topology = parent.topology();
  const dc::DataCenter& datacenter = parent.datacenter();
  double ubw = parent.ubw();
  double bound = parent.remaining_bw_bound();
  const topo::Resources residual =
      parent.available(host) - topology.node(node).requirements;
  for (const auto& nb : topology.neighbors(node)) {
    bound -= parent.edge_bound(nb.edge_index);
    const dc::HostId other = parent.host_of(nb.node);
    if (other != dc::kInvalidHost) {
      ubw += Objective::edge_cost(nb.bandwidth_mbps,
                                  datacenter.scope_between(host, other));
      continue;
    }
    dc::Scope scope = parent.zone_scope_to_host(nb.node, host);
    if (const auto level = topology.required_separation(node, nb.node)) {
      scope = std::max(scope, forced_scope(*level));
    }
    if (scope == dc::Scope::kSameHost &&
        !topology.node(nb.node).requirements.fits_within(residual)) {
      scope = dc::Scope::kSameRack;
    }
    if (parent.use_prune_labels() && scope != dc::Scope::kSameHost) {
      // Same climb the materialized child's edge_lower_bound will run; the
      // climb is monotone in the entry scope and reads only base-occupancy
      // aggregates (constant during one search), so this lazy priority
      // never exceeds the exact bound — the open queue's re-queue test
      // stays sound.
      const topo::Resources& req = topology.node(nb.node).requirements;
      scope = parent.base().labels().tighten_to_host(
          scope, host, req, requires_compute(req), nb.bandwidth_mbps,
          parent.base().feasibility());
    }
    bound += Objective::edge_cost(nb.bandwidth_mbps, scope);
  }
  ChildScore score;
  score.ubw = ubw;
  score.bound_rem = std::max(0.0, bound);
  score.uc = parent.new_active_hosts() +
             (parent.is_active(host) ? 0.0 : 1.0);
  return score;
}

/// Canonical signature of a partial assignment: hosts of interchangeable
/// nodes are sorted within their symmetry group, so permuted duplicates
/// collide (the closed-queue check of Algorithm 2, line 10).  `keys` is
/// caller-owned scratch reused across expansions.
[[nodiscard]] std::uint64_t canonical_signature(
    const PartialPlacement& state, const SymmetryGroups& groups,
    std::vector<std::pair<std::uint64_t, std::uint64_t>>& keys) {
  const auto& assignment = state.assignment();
  keys.clear();
  if (keys.capacity() < state.placed_count()) keys.reserve(state.placed_count());
  for (topo::NodeId v = 0; v < assignment.size(); ++v) {
    if (assignment[v] == dc::kInvalidHost) continue;
    keys.emplace_back(groups.group_of[v], assignment[v]);
  }
  std::sort(keys.begin(), keys.end());
  std::uint64_t h = 0x243f6a8885a308d3ULL ^ keys.size();
  for (const auto& [group, host] : keys) {
    std::uint64_t word = (group << 32) ^ host;
    h ^= util::splitmix64(word) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

/// Equivalence hash of one candidate host: identical available resources,
/// identical available bandwidth on every uplink of its hierarchy path,
/// identical active flag and tags, and an identical hierarchy relation
/// (scope) to every host the partial placement already uses.
[[nodiscard]] std::uint64_t host_equivalence_hash(
    const PartialPlacement& state, dc::HostId host) {
  const dc::DataCenter& datacenter = state.datacenter();
  const auto mix = [](std::uint64_t& h, std::uint64_t v) {
    h ^= util::splitmix64(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  const auto mix_double = [&mix](std::uint64_t& h, double d) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof d);
    std::memcpy(&bits, &d, sizeof bits);
    mix(h, bits);
  };
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  const topo::Resources avail = state.available(host);
  mix_double(h, avail.vcpus);
  mix_double(h, avail.mem_gb);
  mix_double(h, avail.disk_gb);
  mix_double(h, state.link_available(datacenter.host_link(host)));
  const dc::Host& meta = datacenter.host(host);
  mix_double(h, state.link_available(datacenter.rack_link(meta.rack)));
  mix_double(h, state.link_available(datacenter.pod_link(meta.pod)));
  mix_double(h, state.link_available(datacenter.site_link(meta.datacenter)));
  mix(h, state.is_active(host) ? 1 : 0);
  for (const auto& tag : meta.tags) {
    std::uint64_t th = 1469598103934665603ULL;
    for (const char c : tag) {
      th ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      th *= 1099511628211ULL;
    }
    mix(h, th);
  }
  for (const dc::HostId u : state.used_hosts()) {
    mix(h, static_cast<std::uint64_t>(datacenter.scope_between(host, u)));
  }
  return h;
}

/// Drops candidate hosts that are *placement-equivalent* to an earlier one.
/// Two equivalent hosts generate isomorphic search subtrees — every
/// constraint check and cost term depends only on the hashed quantities —
/// so expanding one per equivalence class preserves optimality while
/// cutting the branching factor from |H| to the number of distinct host
/// configurations (dozens instead of thousands in a 2400-host fleet).
void dedupe_equivalent_hosts(const PartialPlacement& state,
                             std::vector<dc::HostId>& candidates) {
  std::unordered_set<std::uint64_t> seen;
  std::vector<dc::HostId> kept;
  kept.reserve(candidates.size());
  for (const dc::HostId host : candidates) {
    if (seen.insert(host_equivalence_hash(state, host)).second) {
      kept.push_back(host);
    }
  }
  candidates = std::move(kept);
}

/// Pooled-core variant over recycled scratch: same exact u64 membership
/// test (hence identical survivors), zero allocations once warm.
void dedupe_equivalent_hosts_pooled(const PartialPlacement& state,
                                    std::vector<dc::HostId>& candidates,
                                    util::StampedSet64& seen,
                                    std::vector<dc::HostId>& kept) {
  seen.clear();
  kept.clear();
  if (kept.capacity() < candidates.size()) kept.reserve(candidates.size());
  for (const dc::HostId host : candidates) {
    if (seen.insert(host_equivalence_hash(state, host))) {
      kept.push_back(host);
    }
  }
  candidates.assign(kept.begin(), kept.end());
}

/// Probability that a popped path at progress s is pruned: P(x > s) for
/// x ~ U[0, r); 0 when r == 0 (pruning disabled until pressure builds).
[[nodiscard]] double prune_probability(double r, double s) noexcept {
  if (r <= 0.0 || s >= r) return 0.0;
  return (r - s) / r;
}

/// Incumbent: the best complete placement known so far.  offer() copies (or
/// moves a self-contained state), so under the pooled core the incumbent
/// never references arena memory (PartialPlacement's copy flattens chains).
struct Incumbent {
  std::optional<PartialPlacement> state;
  double utility = std::numeric_limits<double>::infinity();

  void offer(PartialPlacement candidate) {
    const double u = candidate.utility_committed();
    if (u < utility) {
      utility = u;
      state = std::move(candidate);
    }
  }
};

/// Process-wide counters mirroring the per-run SearchStats; BA* and DBA*
/// share the "astar." namespace.  Bundled as references so the templated
/// loop registers each name once.
struct AstarMetrics {
  util::metrics::Counter& expanded;
  util::metrics::Counter& generated;
  util::metrics::Counter& pruned_bound;
  util::metrics::Counter& pruned_random;
  util::metrics::Counter& deduped;
  util::metrics::Counter& symmetry;
  util::metrics::Counter& eg_reruns;
  util::metrics::Summary& open_size;
  util::metrics::Summary& eg_seconds;
};

/// Reference memory model (SearchCore::kReference): shared_ptr-linked
/// states, std::priority_queue open list, unordered_set closed set — the
/// original containers, kept as the differential baseline.
struct ReferenceCore {
  using StateRef = std::shared_ptr<const PartialPlacement>;

  /// A search path.  Children are *lazy*: they hold their parent's
  /// materialized state plus the one (node -> host) decision and a cheap
  /// admissible priority; the actual PartialPlacement is built only if the
  /// path is popped.  This makes generating a child O(degree) instead of
  /// O(|V| + place), which is what lets the search expand thousands of
  /// paths per second against a 2400-host data center.
  struct Entry {
    StateRef parent;                         // materialized ancestor
    topo::NodeId node = topo::kInvalidNode;  // decision on top of parent
    dc::HostId host = dc::kInvalidHost;
    double priority = 0.0;  // ordering key (see sharp_ordering)
    bool exact = false;     // priority was computed on the materialized state
    std::uint32_t depth = 0;
    std::uint64_t sequence = 0;  // insertion order; deterministic tie-break
  };

  ReferenceCore(bool sharp, const SearchConfig& config)
      : open(PathOrder{sharp}, reserved_backing(config)) {}

  static std::vector<Entry> reserved_backing(const SearchConfig& config) {
    std::vector<Entry> backing;
    backing.reserve(open_reserve_hint(config));
    return backing;
  }

  void push(StateRef parent, topo::NodeId node, dc::HostId host,
            double priority, bool exact, std::uint32_t depth,
            std::uint64_t sequence) {
    open.push(Entry{std::move(parent), node, host, priority, exact, depth,
                    sequence});
  }
  Entry pop() {
    Entry entry = open.top();
    open.pop();
    return entry;
  }
  [[nodiscard]] std::size_t open_size() const { return open.size(); }
  [[nodiscard]] bool open_empty() const { return open.empty(); }

  bool closed_insert(std::uint64_t signature) {
    return closed.insert(signature).second;
  }

  StateRef make_root(const PartialPlacement& initial) {
    return std::make_shared<PartialPlacement>(initial);
  }
  StateRef materialize(const Entry& entry) {
    auto state = std::make_shared<PartialPlacement>(*entry.parent);
    state->place(entry.node, entry.host);
    return state;
  }

  void dedupe(const PartialPlacement& state,
              std::vector<dc::HostId>& candidates) {
    dedupe_equivalent_hosts(state, candidates);
  }
  std::uint64_t signature_of(const PartialPlacement& state,
                             const SymmetryGroups& groups) {
    return canonical_signature(state, groups, signature_keys);
  }
  [[nodiscard]] std::vector<std::pair<double, dc::HostId>>&
  children_scratch() {
    return children;
  }
  /// The reference state is already self-contained; nothing to prepare.
  void prepare_expand(const StateRef&) {}
  void finish_stats(SearchStats&) const {}

  std::priority_queue<Entry, std::vector<Entry>, PathOrder> open;
  std::unordered_set<std::uint64_t> closed;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> signature_keys;
  std::vector<std::pair<double, dc::HostId>> children;
};

/// Pooled memory model (SearchCore::kPooled): states live in the
/// per-thread SearchArena, the open list is the packed-key OpenHeap, and
/// the closed/dedup sets are epoch-stamped flat tables.  Steady-state
/// (warm arena, capacities grown) the whole search loop allocates nothing.
struct PooledCore {
  using StateRef = const PartialPlacement*;

  struct Entry {
    StateRef parent = nullptr;
    topo::NodeId node = topo::kInvalidNode;
    dc::HostId host = dc::kInvalidHost;
    double priority = 0.0;
    bool exact = false;
    std::uint32_t depth = 0;
    std::uint64_t sequence = 0;
  };

  PooledCore(SearchArena& arena_in, bool sharp, const SearchConfig& config)
      : arena(arena_in), open(arena_in.heap()) {
    arena.begin_plan(sharp, open_reserve_hint(config));
  }
  ~PooledCore() { arena.end_plan(); }
  PooledCore(const PooledCore&) = delete;
  PooledCore& operator=(const PooledCore&) = delete;

  void push(StateRef parent, topo::NodeId node, dc::HostId host,
            double priority, bool exact, std::uint32_t depth,
            std::uint64_t sequence) {
    open.push(HeapEntry{pack_priority(priority), sequence, parent, node, host,
                        depth, exact});
  }
  Entry pop() {
    const HeapEntry top = open.pop();
    return Entry{top.parent,  top.node,  top.host, unpack_priority(top.key),
                 top.exact,   top.depth, top.sequence};
  }
  [[nodiscard]] std::size_t open_size() const { return open.size(); }
  [[nodiscard]] bool open_empty() const { return open.empty(); }

  bool closed_insert(std::uint64_t signature) {
    return arena.closed().insert(signature);
  }

  StateRef make_root(const PartialPlacement& initial) {
    PartialPlacement& root = arena.acquire(initial);
    root.assign_pooled_flat(initial);
    return &root;
  }
  StateRef materialize(const Entry& entry) {
    PartialPlacement& state = arena.acquire(*entry.parent);
    state.branch_from(*entry.parent);
    state.place(entry.node, entry.host);
    return &state;
  }

  void dedupe(const PartialPlacement& state,
              std::vector<dc::HostId>& candidates) {
    dedupe_equivalent_hosts_pooled(state, candidates, arena.dedupe_seen(),
                                   arena.dedupe_kept());
  }
  std::uint64_t signature_of(const PartialPlacement& state,
                             const SymmetryGroups& groups) {
    return canonical_signature(state, groups, arena.signature_scratch());
  }
  [[nodiscard]] std::vector<std::pair<double, dc::HostId>>&
  children_scratch() {
    return arena.children_scratch();
  }

  /// Flatten a state that survived to expansion.  Most pops are
  /// bound-pruned right after the O(delta) branch; only survivors pay the
  /// flatten, and from then on every hot read during the candidate fan,
  /// the EG re-bound, and the children's own branch_from hits a flat
  /// table instead of walking a delta chain.
  void prepare_expand(const StateRef& state) {
    const_cast<PartialPlacement*>(state)->flatten_for_expand();
  }

  void finish_stats(SearchStats& stats) const {
    static util::metrics::Counter& m_pooled_runs =
        util::metrics::counter("search.pooled_runs");
    static util::metrics::Counter& m_arena_reuse =
        util::metrics::counter("search.arena_reuse");
    static util::metrics::Summary& m_bytes =
        util::metrics::summary("search.bytes_per_plan");
    static util::metrics::Summary& m_states =
        util::metrics::summary("search.arena_states");
    stats.arena_states = arena.states_in_use();
    stats.arena_bytes = arena.bytes_retained();
    stats.arena_reused = arena.warm();
    m_pooled_runs.inc();
    if (stats.arena_reused) m_arena_reuse.inc();
    m_bytes.observe(static_cast<double>(stats.arena_bytes));
    m_states.observe(static_cast<double>(stats.arena_states));
  }

  SearchArena& arena;
  OpenHeap& open;
};

/// The BA*/DBA* loop, shared by both memory models.  Every policy decision
/// (bounds, pruning, EG re-bounding strides, DBA* load estimation) is
/// identical; `Core` only decides how states, the open list, and the
/// closed/dedup sets are stored.  Both instantiations therefore pop the
/// same entries in the same order and apply the same floating-point
/// operations — the bit-identical contract the differential suite checks.
template <typename Core>
AStarOutcome run_astar_impl(Core& core, PartialPlacement initial,
                            const SearchConfig& config, bool deadline_bounded,
                            util::ThreadPool* pool,
                            const AstarMetrics& metrics) {
  util::WallTimer timer;
  const topo::AppTopology& topology = initial.topology();

  AStarOutcome outcome(initial);
  SearchStats& stats = outcome.stats;

  // Expansion order: the free (not pre-placed/pinned) nodes in EG's sort
  // order.  BA* does not *require* sorting (Section III-B-1) — any fixed
  // order preserves optimality — but expanding heavy nodes first lets the
  // bound grow early and makes DBA*'s dives coincide with EG's decision
  // sequence, so its very first completed dive already matches the greedy
  // incumbent and every later dive explores a deviation from it.
  const std::vector<topo::NodeId> greedy_order = eg_sort_order(topology);
  std::vector<topo::NodeId> order;
  for (const topo::NodeId v : greedy_order) {
    if (!initial.is_placed(v)) order.push_back(v);
  }

  // Symmetry reduction (Section III-B-3): ordering constraint between
  // interchangeable free nodes.  prev_in_group[i] = index into `order` of
  // the previous free node in the same group, or -1.
  SymmetryGroups groups = detect_symmetry_groups(topology);
  std::vector<std::int64_t> prev_in_group(order.size(), -1);
  if (config.symmetry_reduction) {
    std::unordered_map<std::uint32_t, std::size_t> last_of_group;
    for (std::size_t i = 0; i < order.size(); ++i) {
      const auto g = groups.group_of[order[i]];
      const auto it = last_of_group.find(g);
      if (it != last_of_group.end()) {
        prev_in_group[i] = static_cast<std::int64_t>(it->second);
      }
      last_of_group[g] = i;
    }
  }

  // The deadline covers the initial EG run too — the paper's usable lower
  // bound for T is two times EG's running time (Section III-C).
  const util::Deadline deadline(deadline_bounded ? config.deadline_seconds
                                                 : 0.0);

  // RunEG (Algorithm 2, lines 3 and 17): greedy completion as upper bound.
  Incumbent incumbent;
  double last_eg_seconds = 0.0;
  const auto run_eg = [&](const PartialPlacement& from) {
    const util::WallTimer eg_timer;
    ++stats.eg_reruns;
    metrics.eg_reruns.inc();
    GreedyOutcome eg = run_greedy(Algorithm::kEg, from, greedy_order, pool,
                                  config.use_estimate_context,
                                  config.use_candidate_index);
    stats.candidates_evaluated += eg.stats.candidates_evaluated;
    stats.heuristic_calls += eg.stats.heuristic_calls;
    if (eg.feasible) incumbent.offer(std::move(eg.state));
    last_eg_seconds = eg_timer.elapsed_seconds();
    metrics.eg_seconds.observe(last_eg_seconds);
  };
  run_eg(initial);
  // Re-bounding cadence: a full EG completion costs seconds at paper scale,
  // so it is re-run only when the search has advanced a meaningful stride
  // deeper ("u_upper decreases over time since the remaining V_p gets
  // smaller", Section III-B-2) and only when the deadline can afford it.
  const std::uint32_t eg_stride = static_cast<std::uint32_t>(
      std::max<std::size_t>(1, order.size() / 10));
  std::uint32_t last_eg_depth = 0;

  // Ordering regime.  BA* orders strictly by the admissible bound, which
  // makes the first completed pop provably optimal (Algorithm 2 lines 6-7).
  // DBA* gives up optimality anyway, so it orders by the *sharper* (not
  // necessarily admissible) imaginary-host estimate of Section III-A-2:
  // with the weak bound a best-first search degenerates into breadth-first
  // near the root, while the sharp estimate makes shallow and deep paths
  // comparable and biases the search into productive dives.  Pruning and
  // incumbent comparisons always use the admissible bound, so no path that
  // could beat the incumbent is ever discarded by the estimate.
  const bool sharp_ordering =
      deadline_bounded || config.greedy_estimate_in_astar;
  // Budgets in force for this attempt, echoed so callers (and the
  // BudgetController's feedback loop) can see what the run actually got.
  stats.effective_max_open_paths = config.max_open_paths;
  stats.effective_beam_width = sharp_ordering ? config.dba_beam_width : 0;

  std::uint64_t sequence = 0;
  core.push(typename Core::StateRef{}, topo::kInvalidNode, dc::kInvalidHost,
            initial.utility_bound(), !sharp_ordering, 0, sequence++);
  ++stats.paths_generated;
  metrics.generated.inc();

  // DBA* machinery.
  util::Rng rng(config.seed);
  double prune_range = deadline_bounded ? config.initial_prune_range : 0.0;
  std::vector<double> open_by_depth(order.size() + 1, 0.0);
  open_by_depth[0] = 1.0;
  double avg_pop_seconds = 1e-4;   // refined from the measured pop rate
  double avg_branching = 2.0;      // |P̄| of Section III-C
  double eg_total_seconds = 0.0;
  std::uint64_t pops_total = 0;
  double next_check_elapsed =
      deadline.is_unlimited() ? std::numeric_limits<double>::infinity()
                              : deadline.budget_seconds() / 2.0;

  const auto finish = [&](bool feasible, std::string why) {
    outcome.feasible = feasible;
    outcome.failure = std::move(why);
    if (incumbent.state) outcome.state = std::move(*incumbent.state);
    stats.runtime_seconds = timer.elapsed_seconds();
    core.finish_stats(stats);
    return outcome;
  };

  std::uint32_t max_depth_seen = 0;
  EstimateScratch estimate_scratch;  // reused across expansions
  CandidateBuffer candidate_buf;     // reused across expansions

  while (!core.open_empty()) {
    if (deadline_bounded && deadline.expired()) {
      return finish(incumbent.state.has_value(),
                    incumbent.state ? "" : "deadline expired with no solution");
    }

    stats.open_queue_peak =
        std::max<std::uint64_t>(stats.open_queue_peak, core.open_size());
    typename Core::Entry entry = core.pop();
    ++pops_total;

    // Algorithm 2 line 6: the least-u path cannot beat the incumbent.
    // Sound only when the queue is ordered by the admissible bound.
    if (!sharp_ordering && entry.priority >= incumbent.utility - kEps) {
      return finish(incumbent.state.has_value(),
                    incumbent.state ? "" : "search exhausted; infeasible");
    }

    // Materialize the state: clone parent + apply the decision, unless this
    // is the root or a re-queued already-materialized entry.
    typename Core::StateRef state;
    if (!entry.parent) {
      state = core.make_root(initial);
    } else if (entry.node == topo::kInvalidNode) {
      state = entry.parent;  // re-queued exact entry: state IS the parent
    } else {
      state = core.materialize(entry);
    }

    // Pop-time bound check (line 11 semantics, applied lazily): discard a
    // materialized path that can no longer beat the incumbent.
    const double exact_bound = state->utility_bound();
    if (exact_bound >= incumbent.utility - kEps) {
      ++stats.paths_pruned_bound;
      metrics.pruned_bound.inc();
      open_by_depth[entry.depth] -= 1.0;
      continue;
    }

    // Lazy priorities may under-estimate.  Under admissible ordering the
    // best-first order must stay truthful, so the entry is re-queued with
    // the exact value when it moved; under sharp ordering the priorities
    // are heuristic anyway and a re-queue would put every child on a
    // materialize-punish-bury treadmill (the pop-time estimate does not
    // shrink the way the generation-time proxy assumed), so the path is
    // simply expanded with the priority it was popped at.
    if (!sharp_ordering && !entry.exact) {
      if (exact_bound > entry.priority + kEps) {
        // Keep the materialized state: a later pop reuses it directly.
        core.push(state, topo::kInvalidNode, dc::kInvalidHost, exact_bound,
                  true, entry.depth, entry.sequence);
        continue;
      }
    }
    open_by_depth[entry.depth] -= 1.0;

    // Algorithm 2 line 7: a complete path with least u is the answer under
    // admissible ordering; under sharp ordering it is a new incumbent and
    // the search continues until the deadline or the queue drains.
    if (state->complete()) {
      incumbent.offer(*state);
      if (!sharp_ordering) return finish(true, "");
      continue;
    }

    // Closed-queue dedup (line 10, via canonical signatures).
    const std::uint64_t signature = core.signature_of(*state, groups);
    if (!core.closed_insert(signature)) {
      ++stats.paths_deduped;
      metrics.deduped.inc();
      continue;
    }

    // This state will be expanded: it becomes the parent the whole child
    // fan (and possibly an EG re-bound) reads from, so the pooled core
    // flattens its delta chain here — once per expansion instead of once
    // per pop.  Reads return identical values before and after, so the
    // search stays bit-identical to the reference core.
    core.prepare_expand(state);

    // Re-bound with EG (lines 15-18; u_upper tightens as the remaining node
    // set shrinks).  This is where most of DBA*'s quality comes from: a raw
    // search path rarely survives the probabilistic pruning all the way to
    // depth |V|, so the solutions the search actually returns are greedy
    // completions of the diverse prefixes it explored — "the search can be
    // safely finished with u_upper".  DBA* therefore spends up to half of
    // its elapsed time running EG completions from popped states; BA* (and
    // deadline-less DBA*, which must stay deterministic) re-bounds only
    // when the search reaches a new depth.
    bool want_eg = false;
    if (entry.depth > max_depth_seen) {
      max_depth_seen = entry.depth;
      stats.max_depth = max_depth_seen;
      want_eg = entry.depth - last_eg_depth >= eg_stride;
    }
    if (want_eg) {
      const bool affordable =
          !deadline_bounded ||
          deadline.remaining_seconds() > 1.5 * last_eg_seconds;
      if (affordable) {
        last_eg_depth = std::max(last_eg_depth, entry.depth);
        run_eg(*state);
        eg_total_seconds += last_eg_seconds;
      }
    }

    // Branch: all candidate hosts for the next free node (line 8).
    const topo::NodeId node = order[entry.depth];
    std::vector<dc::HostId>& candidates = get_candidates(
        *state, node, candidate_buf, true, config.use_candidate_index);
    const std::size_t fan_before = candidates.size();
    if (config.symmetry_reduction && prev_in_group[entry.depth] >= 0) {
      const topo::NodeId prev =
          order[static_cast<std::size_t>(prev_in_group[entry.depth])];
      const dc::HostId floor_host = state->host_of(prev);
      std::erase_if(candidates,
                    [floor_host](dc::HostId h) { return h < floor_host; });
    }
    core.dedupe(*state, candidates);
    const std::uint64_t symmetry_dropped = fan_before - candidates.size();
    stats.symmetry_pruned += symmetry_dropped;
    metrics.symmetry.add(symmetry_dropped);

    ++stats.paths_expanded;
    metrics.expanded.inc();
    metrics.open_size.observe(static_cast<double>(core.open_size()));
    std::uint64_t inserted = 0;
    const typename Core::StateRef parent = state;
    // Children are (order_utility, host) pairs; the pair's lexicographic
    // order matches the old (order, host) comparator exactly.
    std::vector<std::pair<double, dc::HostId>>& children =
        core.children_scratch();
    children.clear();
    if (children.capacity() < candidates.size()) {
      children.reserve(candidates.size());
    }
    // DBA* ranks siblings with EG's candidate estimate (GetHeuristic of
    // Algorithm 1): the dive's first choice at every level is then exactly
    // the host EG would pick, and backtracking alternatives are the
    // next-best estimates.  BA* orders by the admissible bound.
    const double rest_bound =
        sharp_ordering ? Estimator::rest_bound(*parent, node) : 0.0;
    // The per-node invariants of the estimate are shared by the whole
    // sibling fan; hoist them once per expansion (results bit-identical to
    // per-candidate calls; see NodeEstimateContext).
    std::optional<NodeEstimateContext> estimate_context;
    if (sharp_ordering && config.use_estimate_context) {
      estimate_context.emplace(*parent, node, rest_bound);
    }
    for (const dc::HostId host : candidates) {
      const ChildScore score = child_priority(*parent, node, host);
      const double bound_utility =
          parent->objective().utility(score.ubw + score.bound_rem, score.uc);
      if (bound_utility >= incumbent.utility - kEps) {  // line 11 bounding
        ++stats.paths_pruned_bound;
        metrics.pruned_bound.inc();
        continue;
      }
      double order_utility = bound_utility;
      if (sharp_ordering) {
        ++stats.heuristic_calls;
        const Estimate est =
            estimate_context
                ? estimate_context->estimate(host, estimate_scratch)
                : Estimator::candidate_estimate(*parent, node, host,
                                                rest_bound);
        order_utility = parent->objective().utility(
            parent->ubw() + est.ubw, parent->new_active_hosts() + est.uc);
      }
      // DBA* probabilistic pruning (Section III-C): "these new paths are
      // pruned at the rate p(x > s) as well before being inserted into
      // OQ".  Applied to the full candidate fan before the beam, so the
      // wide fan replenishes the shallow frontier faster than the pruning
      // kills it — with per-pop pruning on top, no lineage could ever
      // survive to depth |V|.
      if (deadline_bounded) {
        const double s = static_cast<double>(entry.depth + 1) /
                         static_cast<double>(order.size());
        if (rng.chance(prune_probability(prune_range, s))) {
          ++stats.paths_pruned_random;
          metrics.pruned_random.inc();
          continue;
        }
      }
      children.push_back({order_utility, host});
    }
    // DBA* children beam (see SearchConfig::dba_beam_width): keep only the
    // most promising children; BA* keeps all of them for optimality.
    if (sharp_ordering && config.dba_beam_width > 0 &&
        children.size() > config.dba_beam_width) {
      std::nth_element(
          children.begin(),
          children.begin() + static_cast<long>(config.dba_beam_width),
          children.end());
      stats.paths_pruned_random +=
          children.size() - config.dba_beam_width;
      metrics.pruned_random.add(children.size() - config.dba_beam_width);
      children.resize(config.dba_beam_width);
      std::sort(children.begin(), children.end());
    }
    for (const auto& [order_utility, child_host] : children) {
      core.push(parent, node, child_host, order_utility, false,
                entry.depth + 1, sequence++);
      open_by_depth[entry.depth + 1] += 1.0;
      ++stats.paths_generated;
      ++inserted;
    }
    metrics.generated.add(inserted);
    avg_branching = 0.9 * avg_branching + 0.1 * static_cast<double>(inserted);
    // Average pop cost over every pop so far (pruned pops are far cheaper
    // than expansions; an expansion-only average overestimates the load by
    // orders of magnitude and drives the pruning rate into a death spiral).
    avg_pop_seconds =
        std::max(1e-7, (timer.elapsed_seconds() - eg_total_seconds) /
                           static_cast<double>(pops_total));

    if (config.max_open_paths != 0 && core.open_size() > config.max_open_paths) {
      stats.truncated = true;
      stats.hit_open_limit = true;
      return finish(incumbent.state.has_value(),
                    incumbent.state ? "" : "open-queue limit hit; no solution");
    }

    // Deterministic expansion budget (SearchConfig::max_expansions): caps
    // the work directly, independent of how pruning shapes the frontier.
    // Deliberately does NOT set hit_open_limit — the kAuto controller must
    // not respond to a fixed work cap by widening the open-queue budget.
    if (config.max_expansions != 0 &&
        stats.paths_expanded >= config.max_expansions) {
      stats.truncated = true;
      return finish(incumbent.state.has_value(),
                    incumbent.state ? "" : "expansion budget hit; no solution");
    }

    // DBA* load estimation at the half-deadline checkpoints.
    if (deadline_bounded && deadline.elapsed_seconds() >= next_check_elapsed) {
      const double t_left = deadline.remaining_seconds();
      if (t_left <= 0.0) {
        return finish(incumbent.state.has_value(),
                      incumbent.state ? "" : "deadline expired");
      }
      // |P|: paths we can still handle; |P_left|: expected paths to handle,
      // via the L[i] recurrence of Section III-C.
      const double can_handle = t_left / std::max(1e-9, avg_pop_seconds);
      std::vector<double> load = open_by_depth;
      double expected = 0.0;
      for (std::size_t i = 0; i < order.size(); ++i) {
        const double s =
            static_cast<double>(i) / static_cast<double>(order.size());
        const double survive = 1.0 - prune_probability(prune_range, s);
        expected += load[i] * survive;
        load[i + 1] += load[i] * survive * survive * avg_branching;
      }
      if (expected > can_handle) {
        prune_range = std::min(
            config.max_prune_range,
            prune_range +
                config.alpha_factor * (deadline.budget_seconds() / t_left));
      }
      next_check_elapsed = deadline.elapsed_seconds() + t_left / 2.0;
    }
  }

  return finish(incumbent.state.has_value(),
                incumbent.state ? "" : "no feasible placement exists");
}

}  // namespace

AStarOutcome run_astar(PartialPlacement initial, const SearchConfig& config,
                       bool deadline_bounded, util::ThreadPool* pool) {
  static util::metrics::Counter& m_runs = util::metrics::counter("astar.runs");
  static util::metrics::Counter& m_expanded =
      util::metrics::counter("astar.nodes_expanded");
  static util::metrics::Counter& m_generated =
      util::metrics::counter("astar.paths_generated");
  static util::metrics::Counter& m_pruned_bound =
      util::metrics::counter("astar.paths_pruned_bound");
  static util::metrics::Counter& m_pruned_random =
      util::metrics::counter("astar.paths_pruned_random");
  static util::metrics::Counter& m_deduped =
      util::metrics::counter("astar.paths_deduped");
  static util::metrics::Counter& m_symmetry =
      util::metrics::counter("astar.symmetry_candidates_pruned");
  static util::metrics::Counter& m_eg_reruns =
      util::metrics::counter("astar.eg_reruns");
  static util::metrics::Summary& m_open_size =
      util::metrics::summary("astar.open_queue_size");
  static util::metrics::Summary& m_run_seconds =
      util::metrics::summary("astar.run_seconds");
  static util::metrics::Summary& m_eg_seconds =
      util::metrics::summary("astar.eg_rerun_seconds");
  const util::metrics::ScopedTimer phase_timer(m_run_seconds);
  m_runs.inc();

  const AstarMetrics metrics{m_expanded,      m_generated, m_pruned_bound,
                             m_pruned_random, m_deduped,   m_symmetry,
                             m_eg_reruns,     m_open_size, m_eg_seconds};
  const bool sharp_ordering =
      deadline_bounded || config.greedy_estimate_in_astar;

  // The pooled core requires the thread's arena; fall back to the reference
  // containers in the (not expected) case of a re-entrant search on the
  // same thread.
  if (config.search_core == SearchCore::kPooled &&
      !thread_search_arena().active()) {
    PooledCore core(thread_search_arena(), sharp_ordering, config);
    return run_astar_impl(core, std::move(initial), config, deadline_bounded,
                          pool, metrics);
  }
  ReferenceCore core(sharp_ordering, config);
  return run_astar_impl(core, std::move(initial), config, deadline_bounded,
                        pool, metrics);
}

}  // namespace ostro::core
